/**
 * @file
 * Spark-shuffle scenario: the workload that motivates the paper's
 * end-to-end evaluation. A map stage produces shuffle partitions; each
 * partition is compressed before hitting disk/network and decompressed
 * on the reduce side. The example compares total codec time for the
 * software path vs the accelerator path over one simulated shuffle.
 */

#include <cstdio>

#include "core/device.h"
#include "core/topology.h"
#include "util/table.h"
#include "workloads/tpcds_gen.h"

int
main()
{
    const int partitions = 16;
    const size_t partition_bytes = 2 << 20;

    auto chip = core::power9Chip();
    core::NxDevice dev(chip.accel);
    core::SoftwareCodec sw(1);    // Spark's speed-oriented level

    double sw_secs = 0.0, accel_secs = 0.0;
    uint64_t raw = 0, sw_out = 0, accel_out = 0;

    for (int p = 0; p < partitions; ++p) {
        workloads::TpcdsConfig cfg;
        cfg.seed = 4000 + static_cast<uint64_t>(p);
        auto part = workloads::makeShufflePartition(partition_bytes,
                                                    cfg);
        raw += part.size();

        // Software path: compress + decompress on a core.
        auto sc = sw.compress(part, nx::Framing::Gzip);
        auto sd = sw.decompress(sc.data, nx::Framing::Gzip);
        if (!sc.ok() || !sd.ok() || sd.data != part) {
            std::fprintf(stderr, "software path failed on p%d\n", p);
            return 1;
        }
        sw_secs += sc.seconds + sd.seconds;
        sw_out += sc.data.size();

        // Accelerator path: same bytes through the device.
        auto ac = dev.compress(part, nx::Framing::Gzip,
                               core::Mode::DhtSampled);
        auto ad = dev.decompress(ac.data, nx::Framing::Gzip);
        if (!ac.ok() || !ad.ok() || ad.data != part) {
            std::fprintf(stderr, "accelerator path failed on p%d\n", p);
            return 1;
        }
        accel_secs += ac.seconds + ad.seconds;
        accel_out += ac.data.size();
    }

    util::Table t("spark_shuffle: 16 x 2 MiB shuffle partitions");
    t.header({"path", "codec time", "output bytes", "ratio"});
    t.row({"software (level 1, measured)",
           util::Table::fmt(sw_secs * 1e3, 1) + " ms",
           util::Table::fmtBytes(sw_out),
           util::Table::fmt(static_cast<double>(raw) / sw_out)});
    t.row({"accelerator (modelled)",
           util::Table::fmt(accel_secs * 1e3, 3) + " ms",
           util::Table::fmtBytes(accel_out),
           util::Table::fmt(static_cast<double>(raw) / accel_out)});
    t.note("codec speedup: " +
           util::Table::fmt(sw_secs / accel_secs, 0) +
           "x — this is the per-byte gain the 23% end-to-end Spark "
           "number composes from (see bench_e7)");
    t.print();
    return 0;
}
