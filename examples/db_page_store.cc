/**
 * @file
 * Database page-store scenario: compressing fixed-size DB pages before
 * they hit storage (the z15/zEDC motivating use: DB2 and file-system
 * compression with bounded request latency).
 *
 * The interesting constraint is latency, not just throughput: a page
 * write sits on the commit path. The example drives an nx::Session per
 * Huffman mode — the same policy-owning layer a DB engine would hold
 * per table space — compresses a batch of 8/16/32 KiB pages, and
 * reports per-page latency and ratio for FHT (latency-optimal) vs
 * sampled DHT (ratio-optimal). All pages sit above the session's
 * 4 KiB routing threshold, so they ride the accelerator; the session
 * would transparently complete them in software if the device faulted
 * or saturated, which the final stats line would show as fallbacks.
 */

#include <cstdio>

#include "core/session.h"
#include "core/topology.h"
#include "util/stats.h"
#include "util/table.h"
#include "workloads/tpcds_gen.h"

int
main()
{
    auto chip = core::z15Chip();

    util::Table t("db_page_store: page compression on z15 "
                  "(latency on the commit path)");
    t.header({"page size", "mode", "mean latency us", "p99-ish max us",
              "ratio"});

    uint64_t accelPages = 0, fallbackPages = 0;
    for (size_t page_bytes : {size_t{8} << 10, size_t{16} << 10,
                              size_t{32} << 10}) {
        for (auto mode : {core::Mode::Fht, core::Mode::DhtSampled}) {
            nx::SessionPolicy policy;
            policy.format = nx::SessionFormat::Zlib;
            policy.mode = mode;
            policy.accelThresholdBytes = 4096;
            nx::Session sess(chip.accel, policy);

            util::RunningStat lat;
            uint64_t raw = 0, out = 0;
            for (int p = 0; p < 64; ++p) {
                workloads::TpcdsConfig cfg;
                cfg.seed = 9000 + static_cast<uint64_t>(p);
                auto page = workloads::makeStoreSales(page_bytes, cfg);
                auto job = sess.compress(page);
                if (!job.ok) {
                    std::fprintf(stderr, "page compress failed: %s\n",
                                 job.error.c_str());
                    return 1;
                }
                lat.add(job.seconds * 1e6);
                raw += page.size();
                out += job.data.size();

                // Verify the page decompresses intact.
                auto back = sess.decompress(job.data);
                if (!back.ok || back.data != page) {
                    std::fprintf(stderr, "page verify failed\n");
                    return 1;
                }
            }
            auto st = sess.stats();
            accelPages += st.accelRouted - st.fallbacks;
            fallbackPages += st.fallbacks;
            sess.close();
            t.row({util::Table::fmtBytes(page_bytes),
                   mode == core::Mode::Fht ? "FHT" : "DHT(sampled)",
                   util::Table::fmt(lat.mean(), 1),
                   util::Table::fmt(lat.max(), 1),
                   util::Table::fmt(static_cast<double>(raw) /
                                    static_cast<double>(out))});
        }
    }
    t.note("FHT skips table generation: the right choice on the "
           "commit path; DHT pays ~table-build latency for ratio");
    t.print();
    std::printf("%llu page requests on the accelerator, %llu completed "
                "by software fallback\n",
                static_cast<unsigned long long>(accelPages),
                static_cast<unsigned long long>(fallbackPages));
    return 0;
}
