/**
 * @file
 * Log-ingest pipeline scenario: a stream of log batches is compressed
 * for cold storage while the system keeps serving. Demonstrates the
 * throughput story (engine saturation under many submitting threads,
 * via the VAS queueing simulation) next to the functional API on real
 * batch bytes.
 */

#include <cstdio>

#include "core/nxzip.h"
#include "nx/vas.h"
#include "util/table.h"
#include "workloads/corpus.h"

int
main()
{
    // Functional slice: one batch through the API.
    nxzip::Context ctx(core::power9Chip());
    auto batch = workloads::makeLog(1 << 20, 31);
    auto c = ctx.compress(batch);
    if (!c.ok) {
        std::fprintf(stderr, "compress failed: %s\n", c.error.c_str());
        return 1;
    }
    std::printf("one 1 MiB log batch: ratio %.2f, modelled %.1f us\n",
                c.ratio(), c.seconds * 1e6);

    // Capacity planning slice: how many ingest threads saturate the
    // chip's engine, and what latency do they see?
    util::Table t("log_pipeline: ingest threads vs chip capacity "
                  "(1 MiB batches, POWER9)");
    t.header({"ingest threads", "sustained rate", "mean latency us",
              "p99 latency us"});
    for (int threads : {1, 2, 4, 8, 16, 32}) {
        nx::VasSimConfig sc;
        sc.chip = core::power9Chip().accel;
        sc.requesters = threads;
        sc.jobBytes = 1 << 20;
        sc.horizonCycles = 10000000;
        sc.warmupCycles = 500000;
        auto res = simulateChip(sc);
        t.row({std::to_string(threads),
               util::Table::fmtRate(res.aggregateBps),
               util::Table::fmt(sc.chip.clock.toSeconds(
                   static_cast<sim::Tick>(res.meanLatencyCycles)) * 1e6,
                   1),
               util::Table::fmt(sc.chip.clock.toSeconds(
                   static_cast<sim::Tick>(res.p99LatencyCycles)) * 1e6,
                   1)});
    }
    t.note("a handful of threads saturate one engine; beyond that "
           "only queueing latency grows — provision accordingly");
    t.print();
    return 0;
}
