/**
 * @file
 * Quickstart: open an nx::Session on a POWER9 chip, compress a buffer
 * to gzip, decompress it back, and print where each request ran. This
 * is the 30-second tour of the session API — the policy-owning layer
 * the production stacks (zlibNX, zEDC, QATzip) put in front of the
 * accelerator.
 */

#include <cstdio>

#include "core/session.h"
#include "core/topology.h"
#include "util/table.h"
#include "workloads/corpus.h"

int
main()
{
    // 1. Open a session on a POWER9 chip (z15Chip() also works). The
    //    policy says: gzip streams, and only requests of at least 4 KiB
    //    go to the accelerator — below that the CRB round trip costs
    //    more than it saves, so the software codec runs them.
    nx::SessionPolicy policy;
    policy.format = nx::SessionFormat::Gzip;
    policy.accelThresholdBytes = 4096;
    nx::Session sess(core::power9Chip().accel, policy);

    // 2. Some data: 4 MiB of log-like text.
    auto input = workloads::makeLog(4 << 20, 7);

    // 3. Compress. 4 MiB >= the threshold, so the session pastes this
    //    to the modelled accelerator (and would fall back to software
    //    if the device were busy, closed, or faulting).
    auto c = sess.compress(input);
    if (!c.ok) {
        std::fprintf(stderr, "compress failed: %s\n", c.error.c_str());
        return 1;
    }
    std::printf("compressed %zu -> %zu bytes (ratio %.2f) on the %s "
                "path in %.1f us%s\n",
                input.size(), c.data.size(), c.ratio(),
                toString(c.backend), c.seconds * 1e6,
                c.fellBack ? " (after device fallback)" : "");
    std::printf("throughput: %s\n",
                util::Table::fmtRate(
                    static_cast<double>(input.size()) / c.seconds)
                    .c_str());

    // 4. Decompress and verify.
    auto d = sess.decompress(c.data);
    if (!d.ok) {
        std::fprintf(stderr, "decompress failed: %s\n",
                     d.error.c_str());
        return 1;
    }
    bool same = d.data == input;
    std::printf("decompressed %zu bytes on the %s path in %.1f us — %s\n",
                d.data.size(), toString(d.backend), d.seconds * 1e6,
                same ? "round trip OK" : "MISMATCH");

    // 5. A tiny request takes the other route: the policy keeps it on
    //    the software codec, no device round trip.
    auto tiny = workloads::makeText(512, 1);
    auto t = sess.compress(tiny);
    if (!t.ok) {
        std::fprintf(stderr, "small compress failed: %s\n",
                     t.error.c_str());
        return 1;
    }
    std::printf("512 B request ran on the %s path (threshold %llu B)\n",
                toString(t.backend),
                static_cast<unsigned long long>(
                    sess.policy().accelThresholdBytes));

    // 6. The session counts every routing decision.
    auto st = sess.stats();
    std::printf("session stats: %llu requests, %llu accelerator / %llu "
                "software, %llu fallbacks\n",
                static_cast<unsigned long long>(st.requests),
                static_cast<unsigned long long>(st.accelRouted),
                static_cast<unsigned long long>(st.softwareRouted),
                static_cast<unsigned long long>(st.fallbacks));
    return same ? 0 : 1;
}
