/**
 * @file
 * Quickstart: open a POWER9 accelerator context, compress a buffer to
 * gzip, decompress it back, and print what happened. This is the
 * 30-second tour of the nxzip public API.
 */

#include <cstdio>

#include "core/nxzip.h"
#include "util/table.h"
#include "workloads/corpus.h"

int
main()
{
    // 1. Open a context on a POWER9 chip (z15Chip() also works).
    nxzip::Context ctx(core::power9Chip());

    // 2. Some data: 4 MiB of log-like text.
    auto input = workloads::makeLog(4 << 20, 7);

    // 3. Compress. The context routes this to the on-chip accelerator
    //    (small requests would stay on the core).
    auto c = ctx.compress(input);
    if (!c.ok) {
        std::fprintf(stderr, "compress failed: %s\n", c.error.c_str());
        return 1;
    }

    std::printf("compressed %zu -> %zu bytes (ratio %.2f) on the %s "
                "path in %.1f us (modelled)\n",
                input.size(), c.data.size(), c.ratio(),
                c.path == nxzip::Path::Accelerator ? "accelerator"
                                                   : "software",
                c.seconds * 1e6);
    std::printf("throughput: %s\n",
                util::Table::fmtRate(
                    static_cast<double>(input.size()) / c.seconds)
                    .c_str());

    // 4. Decompress and verify.
    auto d = ctx.decompress(c.data);
    if (!d.ok) {
        std::fprintf(stderr, "decompress failed: %s\n",
                     d.error.c_str());
        return 1;
    }
    bool same = d.data == input;
    std::printf("decompressed %zu bytes in %.1f us — %s\n",
                d.data.size(), d.seconds * 1e6,
                same ? "round trip OK" : "MISMATCH");
    return same ? 0 : 1;
}
