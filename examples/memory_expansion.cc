/**
 * @file
 * Active-Memory-Expansion scenario: the OS compresses cold 4 KiB
 * memory pages with the NX 842 engine to grow effective RAM. The
 * metric that matters is round-trip page latency (a compressed page
 * fault must decompress on demand) and the expansion factor achieved.
 */

#include <cstdio>

#include "e842/e842_engine.h"
#include "util/stats.h"
#include "util/table.h"
#include "workloads/corpus.h"

int
main()
{
    e842::E842Engine eng;
    const size_t page = 4096;
    const int pages = 256;

    util::Table t("memory_expansion: 842-compressed page pool");
    t.header({"page kind", "expansion factor", "compress us/page",
              "fault (decompress) us/page"});

    struct Kind
    {
        const char *name;
        std::vector<uint8_t> data;
    };
    std::vector<Kind> kinds;
    kinds.push_back({"heap (binary records)",
                     workloads::makeBinary(page * pages, 61)});
    kinds.push_back({"page cache (text)",
                     workloads::makeText(page * pages, 62)});
    kinds.push_back({"zeroed", workloads::makeZeros(page * pages)});

    for (const auto &kind : kinds) {
        util::RunningStat comp, decomp;
        uint64_t stored = 0;
        for (int p = 0; p < pages; ++p) {
            std::span<const uint8_t> pg(
                kind.data.data() + static_cast<size_t>(p) * page,
                page);
            auto c = eng.compressJob(pg);
            if (!c.ok) {
                std::fprintf(stderr, "compress failed\n");
                return 1;
            }
            comp.add(c.seconds * 1e6);
            stored += c.output.size();

            auto d = eng.decompressJob(c.output);
            if (!d.ok ||
                !std::equal(d.output.begin(), d.output.end(),
                            pg.begin(), pg.end())) {
                std::fprintf(stderr, "page round trip failed\n");
                return 1;
            }
            decomp.add(d.seconds * 1e6);
        }
        double expansion = static_cast<double>(page) * pages /
            static_cast<double>(stored);
        t.row({kind.name, util::Table::fmt(expansion),
               util::Table::fmt(comp.mean(), 2),
               util::Table::fmt(decomp.mean(), 2)});
    }
    t.note("on-demand page decompression costs ~1-2 us — cheap enough "
           "to treat compressed memory as a slow RAM tier");
    t.print();
    return 0;
}
