#!/usr/bin/env sh
# CI pipeline for nxsim. Stages:
#
#   1. ci preset       warnings-as-errors build + full ctest
#   2. nxlint          project static analysis over the whole tree
#                      (tools/nxlint; also registered as a ctest, the
#                      explicit stage gives findings on stdout)
#   3. nxdeps          include-graph layering checker over the whole
#                      tree (tools/nxdeps; also a ctest)
#   4. nxtaint         untrusted-input dataflow analysis from BitReader
#                      sources to memory sinks (tools/nxtaint; also a
#                      ctest)
#   5. asan-ubsan      full ctest under ASan+UBSan (no recover)
#   6. tsan            ThreadSanitizer build; runs the `concurrency`
#                      ctest label (the core::JobServer dispatch suite)
#   7. clang-tsa       Clang -Wthread-safety over the lock annotations
#                      (src/util/thread_annotations.h); skipped with a
#                      notice when clang++ is absent
#   8. lint            clang-tidy over files changed vs origin/main
#                      (skipped with a notice when clang-tidy absent)
#   9. fuzz smoke      30 s of each fuzz target on the seeded corpus
#                      (libFuzzer with Clang; the standalone driver
#                      otherwise — see fuzz/standalone_main.cc)
#
# Usage: ./ci.sh [--quick]   --quick skips stages 8 and 9.
set -eu

cd "$(dirname "$0")"
jobs=$(nproc 2>/dev/null || echo 4)
quick=${1:-}

echo "=== [1/9] ci preset (warnings-as-errors) ==="
cmake --preset ci
cmake --build build-ci -j "$jobs"
ctest --test-dir build-ci --output-on-failure -j "$jobs"

echo "=== [2/9] nxlint (project static analysis) ==="
./build-ci/tools/nxlint/nxlint .

echo "=== [3/9] nxdeps (include-graph layering) ==="
./build-ci/tools/nxdeps/nxdeps .

echo "=== [4/9] nxtaint (untrusted-input dataflow) ==="
./build-ci/tools/nxtaint/nxtaint .

echo "=== [5/9] asan-ubsan preset ==="
cmake --preset asan-ubsan
cmake --build build-asan -j "$jobs"
ctest --test-dir build-asan --output-on-failure -j "$jobs"

echo "=== [6/9] tsan preset (concurrency label) ==="
cmake --preset tsan
cmake --build build-tsan -j "$jobs"
ctest --test-dir build-tsan -L concurrency --output-on-failure -j "$jobs"

echo "=== [7/9] clang-tsa (thread-safety annotations) ==="
if command -v clang++ >/dev/null 2>&1; then
    cmake --preset clang-tsa
    cmake --build build-clang-tsa -j "$jobs"
else
    echo "clang++ not found; skipping clang-tsa stage"
fi

if [ "$quick" = "--quick" ]; then
    echo "=== --quick: skipping lint and fuzz smoke ==="
    exit 0
fi

echo "=== [8/9] clang-tidy on changed files ==="
if git rev-parse --verify origin/main >/dev/null 2>&1; then
    changed=$(git diff --name-only origin/main -- 'src/*.cc' || true)
else
    changed=$(git diff --name-only HEAD~1 -- 'src/*.cc' || true)
fi
if [ -n "$changed" ]; then
    # shellcheck disable=SC2086
    tools/run_clang_tidy.sh -p build-ci $changed
else
    echo "no changed src/*.cc files; skipping clang-tidy"
fi

echo "=== [9/9] fuzz smoke (30 s per target) ==="
cmake --preset fuzz
cmake --build build-fuzz -j "$jobs"
for t in fuzz_inflate fuzz_gzip fuzz_e842 fuzz_roundtrip; do
    echo "--- $t ---"
    # libFuzzer and the standalone driver share this CLI subset; both
    # default to the target's dir under fuzz/corpus when built here.
    if ./build-fuzz/fuzz/$t -help 2>&1 | grep -q libFuzzer; then
        ./build-fuzz/fuzz/$t -max_total_time=30 -max_len=4096 \
            "fuzz/corpus/${t#fuzz_}"
    else
        ./build-fuzz/fuzz/$t -time=30
    fi
done

echo "=== CI green ==="
