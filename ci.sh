#!/usr/bin/env sh
# CI pipeline for nxsim. Stages:
#
#   1. ci preset       warnings-as-errors build + full ctest
#   2. nxlint          project static analysis over the whole tree
#                      (tools/nxlint; also registered as a ctest, the
#                      explicit stage gives findings on stdout)
#   3. nxdeps          include-graph layering checker over the whole
#                      tree (tools/nxdeps; also a ctest)
#   4. nxtaint         untrusted-input dataflow analysis from BitReader
#                      sources to memory sinks (tools/nxtaint; also a
#                      ctest)
#   5. nxstate         typestate protocol + lock-order analyzer
#                      (tools/nxstate; also a ctest)
#   6. asan-ubsan      full ctest under ASan+UBSan (no recover)
#   7. tsan            ThreadSanitizer build; runs the `concurrency`
#                      and `load` ctest labels (JobServer dispatch,
#                      multi-session stress, load-generator suites)
#   8. coverage        gcov build; runs the `session` and `load` ctest
#                      labels and gates src/core/session.cc line
#                      coverage against tools/coverage_baseline.txt
#   9. clang-tsa       Clang -Wthread-safety over the lock annotations
#                      (src/util/thread_annotations.h); skipped with a
#                      notice when clang++ is absent
#  10. bench smoke     bench_l1_serving --smoke --json out of build-ci:
#                      schema-checks the emitted BENCH json and diffs
#                      its scenario names/digests against the committed
#                      BENCH_l1_serving.json (plan determinism)
#  11. lint            clang-tidy over files changed vs origin/main
#                      (skipped with a notice when clang-tidy absent)
#  12. fuzz smoke      30 s of each fuzz target on the seeded corpus
#                      (libFuzzer with Clang; the standalone driver
#                      otherwise — see fuzz/standalone_main.cc)
#
# Stages 2-5 are all binaries out of the stage-1 build-ci tree: one
# configure, one build, four analyzers. Each stage prints its wall time
# when it finishes, and a summary table prints at the end.
#
# Usage: ./ci.sh [--quick]   --quick skips stages 12 and 13.
set -eu

cd "$(dirname "$0")"
jobs=$(nproc 2>/dev/null || echo 4)
quick=${1:-}

stage_times=""
stage_name=""
stage_t0=0

stage() {
    stage_end
    stage_name=$1
    stage_t0=$(date +%s)
    echo "=== [$2] $1 ==="
}

stage_end() {
    if [ -n "$stage_name" ]; then
        dt=$(( $(date +%s) - stage_t0 ))
        echo "--- $stage_name: ${dt}s ---"
        stage_times="${stage_times}  ${dt}s\t$stage_name\n"
        stage_name=""
    fi
}

# Run one whole-tree analyzer under the 30 s wall-time budget. The
# analyzers gate every push via tools/analyze_changed.sh, so a slow
# analyzer is itself a CI failure, not a curiosity.
analyzer_budget=30
analyzer() {
    a_t0=$(date +%s)
    "./build-ci/tools/$1/$1" .
    a_dt=$(( $(date +%s) - a_t0 ))
    if [ "$a_dt" -gt "$analyzer_budget" ]; then
        echo "FAIL: $1 took ${a_dt}s (budget: ${analyzer_budget}s)" >&2
        exit 1
    fi
}

stage "ci preset (warnings-as-errors)" "1/13"
cmake --preset ci
cmake --build build-ci -j "$jobs"
ctest --test-dir build-ci --output-on-failure -j "$jobs"

stage "nxlint (project static analysis)" "2/13"
analyzer nxlint

stage "nxdeps (include-graph layering)" "3/13"
analyzer nxdeps

stage "nxtaint (untrusted-input dataflow)" "4/13"
analyzer nxtaint

stage "nxstate (typestate + lock order)" "5/13"
analyzer nxstate

stage "nxown (resource ownership)" "6/13"
analyzer nxown

stage "asan-ubsan preset" "7/13"
cmake --preset asan-ubsan
cmake --build build-asan -j "$jobs"
ctest --test-dir build-asan --output-on-failure -j "$jobs"

stage "tsan preset (concurrency|load labels)" "8/13"
cmake --preset tsan
cmake --build build-tsan -j "$jobs"
ctest --test-dir build-tsan -L 'concurrency|load' --output-on-failure -j "$jobs"

stage "coverage (session|load labels + gcov gate)" "9/13"
cmake --preset coverage
cmake --build build-coverage -j "$jobs"
ctest --test-dir build-coverage -L 'session|load' --output-on-failure -j "$jobs"
tools/coverage_gate.sh build-coverage

stage "clang-tsa (thread-safety annotations)" "10/13"
if command -v clang++ >/dev/null 2>&1; then
    cmake --preset clang-tsa
    cmake --build build-clang-tsa -j "$jobs"
else
    echo "clang++ not found; skipping clang-tsa stage"
fi

stage "bench smoke (L1 serving harness)" "11/13"
./build-ci/bench/bench_l1_serving --smoke --json \
    > build-ci/bench_l1_smoke.json
grep -q '"schema_version": 1' build-ci/bench_l1_smoke.json
grep -q '"bench": "bench_l1_serving"' build-ci/bench_l1_smoke.json
# Plan determinism: a fresh smoke run must agree with the committed
# trajectory file on scenario names, arrival kinds and schedule
# digests. Measured numbers (latency, throughput) may differ.
if grep -q '"smoke": true' BENCH_l1_serving.json; then
    for f in build-ci/bench_l1_smoke.json BENCH_l1_serving.json; do
        grep -E '"(name|arrival|schedule_digest)":' "$f" \
            > "build-ci/$(basename "$f").schema"
    done
    diff -u build-ci/BENCH_l1_serving.json.schema \
        build-ci/bench_l1_smoke.json.schema
fi

if [ "$quick" = "--quick" ]; then
    stage_end
    echo "=== --quick: skipping lint and fuzz smoke ==="
    printf "=== stage times ===\n$stage_times"
    exit 0
fi

stage "clang-tidy on changed files" "12/13"
if git rev-parse --verify origin/main >/dev/null 2>&1; then
    changed=$(git diff --name-only origin/main -- 'src/*.cc' || true)
else
    changed=$(git diff --name-only HEAD~1 -- 'src/*.cc' || true)
fi
if [ -n "$changed" ]; then
    # shellcheck disable=SC2086
    tools/run_clang_tidy.sh -p build-ci $changed
else
    echo "no changed src/*.cc files; skipping clang-tidy"
fi

stage "fuzz smoke (30 s per target)" "13/13"
cmake --preset fuzz
cmake --build build-fuzz -j "$jobs"
for t in fuzz_inflate fuzz_gzip fuzz_e842 fuzz_roundtrip fuzz_session; do
    echo "--- $t ---"
    # libFuzzer and the standalone driver share this CLI subset; both
    # default to the target's dir under fuzz/corpus when built here.
    if ./build-fuzz/fuzz/$t -help 2>&1 | grep -q libFuzzer; then
        ./build-fuzz/fuzz/$t -max_total_time=30 -max_len=4096 \
            "fuzz/corpus/${t#fuzz_}"
    else
        ./build-fuzz/fuzz/$t -time=30
    fi
done

stage_end
printf "=== stage times ===\n$stage_times"
echo "=== CI green ==="
