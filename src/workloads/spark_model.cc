#include "workloads/spark_model.h"

#include <algorithm>

#include "util/prng.h"
#include "util/checked.h"

namespace workloads {

std::vector<QueryPlan>
makeTpcdsQueries(int n, uint64_t seed, double scale_gb)
{
    util::Xoshiro256 rng(seed);
    std::vector<QueryPlan> queries;
    double scale_bytes = scale_gb * 1e9;

    for (int q = 0; q < n; ++q) {
        QueryPlan plan;
        plan.name = "q" + std::to_string(q + 1);
        int nstages = 3 + nx::checked_cast<int>(rng.below(5));

        // Query "size": how much of the fact data it scans.
        double scan_frac = 0.05 + rng.uniform() * 0.45;
        auto scan_bytes = static_cast<uint64_t>(
            scale_bytes * scan_frac);

        for (int s = 0; s < nstages; ++s) {
            SparkStage stage;
            stage.name = plan.name + ".s" + std::to_string(s);
            if (s == 0) {
                // Scan stage: read compressed-at-rest tables, project,
                // shuffle out a reduced set.
                stage.storageReadBytes = scan_bytes;
                stage.shuffleWriteBytes = scan_bytes / 4;
                // Core-seconds: JVM query processing moves ~30 MB/s
                // per core on scan-project-filter work.
                stage.cpuSeconds =
                    static_cast<double>(scan_bytes) / 30e6;
            } else if (s + 1 == nstages) {
                // Final aggregation: small read, tiny output.
                stage.shuffleReadBytes = scan_bytes / 64;
                stage.cpuSeconds =
                    static_cast<double>(stage.shuffleReadBytes) / 20e6;
            } else {
                // Join/aggregate stages: read the previous shuffle,
                // emit a smaller one.
                uint64_t in = scan_bytes / (4u << (s - 1));
                stage.shuffleReadBytes = in;
                stage.shuffleWriteBytes = in / 2;
                // Join/aggregation work is heavier per byte than scans.
                stage.cpuSeconds = static_cast<double>(in) / 20e6;
            }
            plan.stages.push_back(stage);
        }
        queries.push_back(std::move(plan));
    }
    return queries;
}

QueryTime
runQuery(const QueryPlan &plan, const ClusterConfig &cluster,
         const CodecModel &codec)
{
    QueryTime qt;
    qt.query = plan.name;
    double total_cores = static_cast<double>(cluster.executorCores) *
        cluster.nodes;
    double disk = cluster.diskBps * cluster.nodes;
    double net = cluster.networkBps * cluster.nodes;
    int devices = std::max(1, cluster.accelPerNode * cluster.nodes);

    for (const SparkStage &st : plan.stages) {
        double compute = st.cpuSeconds / total_cores;

        double comp_bytes = static_cast<double>(st.shuffleWriteBytes);
        double decomp_bytes = static_cast<double>(
            st.shuffleReadBytes + st.storageReadBytes);

        double codec_wall;
        if (codec.onCore) {
            // Codec work is task work: it serializes with compute on
            // the same cores (rates are per-core).
            double core_secs = comp_bytes / codec.compressBps +
                decomp_bytes / codec.decompressBps;
            codec_wall = core_secs / total_cores;
        } else {
            // Device codec: compress and decompress engines are
            // distinct hardware, so the two flows overlap.
            double c = comp_bytes / (codec.compressBps * devices);
            double d = decomp_bytes / (codec.decompressBps * devices);
            codec_wall = std::max(c, d);
        }

        // I/O moves compressed bytes.
        double disk_bytes =
            (comp_bytes + static_cast<double>(st.storageReadBytes) +
             static_cast<double>(st.shuffleReadBytes)) / codec.ratio;
        double net_bytes =
            static_cast<double>(st.shuffleReadBytes) / codec.ratio;
        double io_wall = std::max(disk_bytes / disk, net_bytes / net);

        double stage_wall;
        if (codec.onCore)
            stage_wall = std::max(compute + codec_wall, io_wall);
        else
            stage_wall = std::max({compute, codec_wall, io_wall});

        qt.totalSeconds += stage_wall;
        qt.computeSeconds += compute;
        qt.codecSeconds += codec_wall;
        qt.ioSeconds += io_wall;
    }
    return qt;
}

SuiteComparison
compareSuite(const std::vector<QueryPlan> &queries,
             const ClusterConfig &cluster, const CodecModel &a,
             const CodecModel &b)
{
    SuiteComparison cmp;
    for (const QueryPlan &q : queries) {
        QueryTime ta = runQuery(q, cluster, a);
        QueryTime tb = runQuery(q, cluster, b);
        cmp.totalA += ta.totalSeconds;
        cmp.totalB += tb.totalSeconds;
        cmp.perQueryA.push_back(ta);
        cmp.perQueryB.push_back(tb);
    }
    if (cmp.totalA > 0.0)
        cmp.speedupPct = 100.0 * (cmp.totalA - cmp.totalB) / cmp.totalA;
    return cmp;
}

} // namespace workloads
