/**
 * @file
 * Deterministic synthetic corpus generators.
 *
 * The paper evaluates on standard corpora (Calgary/Silesia class) and
 * customer data we cannot redistribute; these generators produce
 * stand-ins with the statistical properties the experiments depend on:
 * natural-text word repetition, log-line templates with variable
 * fields, structured JSON/CSV, source code, binary records with
 * correlated fields, plus the incompressible and trivially
 * compressible extremes. Every generator is seeded and reproducible.
 */

#ifndef NXSIM_WORKLOADS_CORPUS_H
#define NXSIM_WORKLOADS_CORPUS_H

#include <cstdint>
#include <string>
#include <vector>

namespace workloads {

/** One named corpus member. */
struct CorpusFile
{
    std::string name;
    std::vector<uint8_t> data;
};

/** English-like word salad with Zipfian word frequencies. */
std::vector<uint8_t> makeText(size_t bytes, uint64_t seed);

/** Server-log lines: timestamp, level, template, variable fields. */
std::vector<uint8_t> makeLog(size_t bytes, uint64_t seed);

/** JSON documents with a recurring schema and varied values. */
std::vector<uint8_t> makeJson(size_t bytes, uint64_t seed);

/** CSV rows: ids, enums, decimals, dates. */
std::vector<uint8_t> makeCsv(size_t bytes, uint64_t seed);

/** C-like source code with repeated identifiers and idioms. */
std::vector<uint8_t> makeSource(size_t bytes, uint64_t seed);

/** HTML with nested repeated tags around text content. */
std::vector<uint8_t> makeHtml(size_t bytes, uint64_t seed);

/** Binary records: packed structs with correlated numeric fields. */
std::vector<uint8_t> makeBinary(size_t bytes, uint64_t seed);

/** Uniform random bytes (incompressible). */
std::vector<uint8_t> makeRandom(size_t bytes, uint64_t seed);

/** All zero bytes (maximally compressible). */
std::vector<uint8_t> makeZeros(size_t bytes);

/** Concatenated mix of the above in fixed proportions. */
std::vector<uint8_t> makeMixed(size_t bytes, uint64_t seed);

/**
 * The standard evaluation suite: eight named members of @p bytes each,
 * ordered from most to least compressible. Seeded deterministically
 * from the member index.
 */
std::vector<CorpusFile> standardCorpus(size_t bytes_per_file);

} // namespace workloads

#endif // NXSIM_WORKLOADS_CORPUS_H
