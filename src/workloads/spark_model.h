/**
 * @file
 * Analytic pipeline model of a Spark TPC-DS job, for the end-to-end
 * experiment (E7): how much does swapping the shuffle/storage codec
 * from software zlib to the on-chip accelerator improve whole-job time?
 *
 * The paper reports 23 % on a POWER9 system. That number is an
 * Amdahl-style composition: (share of job time spent in compression +
 * decompression) x (codec speedup), minus second-order effects (I/O
 * shrinks with better ratio, cores freed from codec work speed up the
 * compute phase slightly). The model makes the composition explicit:
 *
 *   stage time = max(cpu, disk, network) per pipeline phase, where
 *     write path: compress at codec rate, write compressed bytes
 *     read path:  read compressed bytes, decompress at codec rate
 *
 * Codec rates and ratios are *inputs*, measured by the caller on
 * representative bytes (see tpcds_gen.h) — the model contains no
 * hard-coded speedup.
 */

#ifndef NXSIM_WORKLOADS_SPARK_MODEL_H
#define NXSIM_WORKLOADS_SPARK_MODEL_H

#include <cstdint>
#include <string>
#include <vector>

namespace workloads {

/** A codec as the pipeline model sees it. */
struct CodecModel
{
    std::string name;
    double compressBps = 0.0;     ///< per executor-core (sw) or device
    double decompressBps = 0.0;
    double ratio = 1.0;           ///< original / compressed
    /**
     * True when the codec runs on the cores, stealing cycles from the
     * compute phase; false for the accelerator.
     */
    bool onCore = true;
};

/** One Spark stage of a query. */
struct SparkStage
{
    std::string name;
    double cpuSeconds = 0.0;          ///< pure compute, all cores busy
    uint64_t shuffleWriteBytes = 0;   ///< uncompressed map output
    uint64_t shuffleReadBytes = 0;    ///< uncompressed reduce input
    uint64_t storageReadBytes = 0;    ///< compressed-at-rest input scans
};

/** Cluster resources. */
struct ClusterConfig
{
    int executorCores = 40;           ///< cores running tasks per node
    int nodes = 2;
    double diskBps = 2.0e9;           ///< per node aggregate
    double networkBps = 5.0e9;        ///< per node
    /** Accelerator devices per node (0 = software only). */
    int accelPerNode = 1;
};

/** Per-query outcome. */
struct QueryTime
{
    std::string query;
    double totalSeconds = 0.0;
    double computeSeconds = 0.0;
    double codecSeconds = 0.0;        ///< time attributable to codec
    double ioSeconds = 0.0;
};

/** A TPC-DS-like query plan: a list of stages. */
struct QueryPlan
{
    std::string name;
    std::vector<SparkStage> stages;
};

/** Generate a deterministic suite of @p n query plans. */
std::vector<QueryPlan> makeTpcdsQueries(int n, uint64_t seed,
                                        double scale_gb);

/** Run one query through the pipeline model with the given codec. */
QueryTime runQuery(const QueryPlan &plan, const ClusterConfig &cluster,
                   const CodecModel &codec);

/** Aggregate speedup of codec B over codec A across a query suite. */
struct SuiteComparison
{
    double totalA = 0.0;
    double totalB = 0.0;
    double speedupPct = 0.0;          ///< 100 * (A - B) / A
    std::vector<QueryTime> perQueryA;
    std::vector<QueryTime> perQueryB;
};

SuiteComparison compareSuite(const std::vector<QueryPlan> &queries,
                             const ClusterConfig &cluster,
                             const CodecModel &a, const CodecModel &b);

} // namespace workloads

#endif // NXSIM_WORKLOADS_SPARK_MODEL_H
