/**
 * @file
 * TPC-DS-like table data generator.
 *
 * The Spark experiment (E7) compresses shuffle and storage data whose
 * statistical character is decision-support fact tables: wide rows of
 * surrogate keys, dates, decimals and low-cardinality dimensions. This
 * generator produces store_sales-shaped rows in the columnar-ish text
 * layout Spark shuffles carry, with realistic key skew, so the codec
 * rates and ratios fed into the pipeline model come from representative
 * bytes rather than guesses.
 */

#ifndef NXSIM_WORKLOADS_TPCDS_GEN_H
#define NXSIM_WORKLOADS_TPCDS_GEN_H

#include <cstddef>
#include <cstdint>
#include <vector>

namespace workloads {

/** Generator parameters. */
struct TpcdsConfig
{
    uint64_t seed = 2020;
    uint64_t customers = 100000;
    uint64_t items = 18000;
    uint64_t stores = 500;
};

/** Generate ~@p bytes of store_sales-like rows. */
std::vector<uint8_t> makeStoreSales(size_t bytes,
                                    const TpcdsConfig &cfg = {});

/** Generate ~@p bytes of shuffle-partition-like key/value records. */
std::vector<uint8_t> makeShufflePartition(size_t bytes,
                                          const TpcdsConfig &cfg = {});

} // namespace workloads

#endif // NXSIM_WORKLOADS_TPCDS_GEN_H
