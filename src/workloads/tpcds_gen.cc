#include "workloads/tpcds_gen.h"

#include <cstdio>
#include <cstring>

#include "util/prng.h"
#include "util/checked.h"

namespace workloads {

std::vector<uint8_t>
makeStoreSales(size_t bytes, const TpcdsConfig &cfg)
{
    util::Xoshiro256 rng(cfg.seed);
    std::vector<uint8_t> v;
    v.reserve(bytes + 256);
    uint64_t ticket = 1;
    while (v.size() < bytes) {
        // ss_sold_date_sk|ss_item_sk|ss_customer_sk|ss_store_sk|
        // ss_ticket_number|ss_quantity|ss_sales_price|ss_net_profit
        uint64_t date_sk = 2450815 + rng.below(1823);
        uint64_t item = 1 + rng.zipf(cfg.items, 1.1);
        uint64_t cust = 1 + rng.zipf(cfg.customers, 1.05);
        uint64_t store = 1 + rng.zipf(cfg.stores, 1.2);
        unsigned qty = nx::checked_cast<unsigned>(1 + rng.below(100));
        unsigned price_c = nx::checked_cast<unsigned>(50 + rng.below(29950));
        int profit_c = nx::checked_cast<int>(rng.below(8000)) - 2000;
        char buf[160];
        std::snprintf(buf, sizeof(buf),
                      "%llu|%llu|%llu|%llu|%llu|%u|%u.%02u|%d.%02u|\n",
                      static_cast<unsigned long long>(date_sk),
                      static_cast<unsigned long long>(item),
                      static_cast<unsigned long long>(cust),
                      static_cast<unsigned long long>(store),
                      static_cast<unsigned long long>(ticket++),
                      qty, price_c / 100, price_c % 100,
                      profit_c / 100,
                      nx::checked_cast<unsigned>(std::abs(profit_c) % 100));
        v.insert(v.end(), buf, buf + std::strlen(buf));
    }
    v.resize(bytes);
    return v;
}

std::vector<uint8_t>
makeShufflePartition(size_t bytes, const TpcdsConfig &cfg)
{
    util::Xoshiro256 rng(cfg.seed + 77);
    std::vector<uint8_t> v;
    v.reserve(bytes + 256);
    // Aggregation shuffle records: group key (join of dims) + partial
    // aggregates. Keys repeat heavily (that is why shuffles compress).
    while (v.size() < bytes) {
        uint64_t item = 1 + rng.zipf(cfg.items, 1.3);
        uint64_t store = 1 + rng.zipf(cfg.stores, 1.3);
        unsigned year = 1998 + nx::checked_cast<unsigned>(rng.below(5));
        unsigned cnt = nx::checked_cast<unsigned>(1 + rng.below(50));
        unsigned sum_c = nx::checked_cast<unsigned>(rng.below(5000000));
        char buf[128];
        std::snprintf(buf, sizeof(buf),
                      "(%llu,%llu,%u)\t{count:%u,sum:%u.%02u}\n",
                      static_cast<unsigned long long>(item),
                      static_cast<unsigned long long>(store),
                      year, cnt, sum_c / 100, sum_c % 100);
        v.insert(v.end(), buf, buf + std::strlen(buf));
    }
    v.resize(bytes);
    return v;
}

} // namespace workloads
