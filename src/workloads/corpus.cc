#include "workloads/corpus.h"

#include <array>
#include <cstring>

#include "util/prng.h"
#include "util/checked.h"

namespace workloads {

namespace {

/** Append a string to a byte vector. */
void
put(std::vector<uint8_t> &v, const char *s)
{
    v.insert(v.end(), s, s + std::strlen(s));
}

const std::array<const char *, 64> kWords = {
    "the", "of", "and", "a", "to", "in", "is", "was", "he", "for",
    "it", "with", "as", "his", "on", "be", "at", "by", "had", "not",
    "are", "but", "from", "or", "have", "an", "they", "which", "one",
    "you", "were", "her", "all", "she", "there", "would", "their",
    "we", "him", "been", "has", "when", "who", "will", "more", "no",
    "if", "out", "so", "said", "what", "up", "its", "about", "into",
    "than", "them", "can", "only", "other", "new", "some", "could",
    "time",
};

const std::array<const char *, 8> kLogTemplates = {
    "connection accepted from",
    "request completed in",
    "cache miss for key",
    "retrying operation after transient failure on",
    "flushed dirty pages to volume",
    "authentication succeeded for user",
    "garbage collection pause of",
    "replicated segment to peer",
};

const std::array<const char *, 12> kIdentifiers = {
    "buffer", "offset", "length", "result", "status", "handle",
    "request", "response", "context", "index", "count", "value",
};

} // namespace

std::vector<uint8_t>
makeText(size_t bytes, uint64_t seed)
{
    util::Xoshiro256 rng(seed);
    std::vector<uint8_t> v;
    v.reserve(bytes + 16);
    size_t sentence = 0;
    while (v.size() < bytes) {
        // Zipf-ranked word choice models natural-language repetition.
        const char *w = kWords[rng.zipf(kWords.size(), 1.3)];
        if (sentence == 0 && !v.empty())
            v.push_back(' ');
        put(v, w);
        ++sentence;
        if (rng.chance(0.08)) {
            put(v, ". ");
            sentence = 0;
        } else {
            v.push_back(' ');
        }
    }
    v.resize(bytes);
    return v;
}

std::vector<uint8_t>
makeLog(size_t bytes, uint64_t seed)
{
    util::Xoshiro256 rng(seed);
    std::vector<uint8_t> v;
    v.reserve(bytes + 128);
    uint64_t ts = 1700000000;
    while (v.size() < bytes) {
        ts += rng.below(5);
        char head[64];
        std::snprintf(head, sizeof(head),
                      "2024-11-%02u %02u:%02u:%02u.%03u ",
                      nx::checked_cast<unsigned>(1 + ts % 28),
                      nx::checked_cast<unsigned>(ts / 3600 % 24),
                      nx::checked_cast<unsigned>(ts / 60 % 60),
                      nx::checked_cast<unsigned>(ts % 60),
                      nx::checked_cast<unsigned>(rng.below(1000)));
        put(v, head);
        put(v, rng.chance(0.9) ? "INFO " : "WARN ");
        put(v, kLogTemplates[rng.zipf(kLogTemplates.size(), 1.1)]);
        char tail[64];
        std::snprintf(tail, sizeof(tail), " 10.%u.%u.%u:%u id=%llu\n",
                      nx::checked_cast<unsigned>(rng.below(4)),
                      nx::checked_cast<unsigned>(rng.below(256)),
                      nx::checked_cast<unsigned>(rng.below(256)),
                      nx::checked_cast<unsigned>(1024 + rng.below(60000)),
                      static_cast<unsigned long long>(rng.below(
                          100000)));
        put(v, tail);
    }
    v.resize(bytes);
    return v;
}

std::vector<uint8_t>
makeJson(size_t bytes, uint64_t seed)
{
    util::Xoshiro256 rng(seed);
    std::vector<uint8_t> v;
    v.reserve(bytes + 256);
    put(v, "[\n");
    uint64_t id = 1;
    while (v.size() < bytes) {
        char buf[256];
        std::snprintf(buf, sizeof(buf),
            "  {\"id\": %llu, \"user\": \"user_%llu\", "
            "\"active\": %s, \"score\": %u.%02u, "
            "\"tags\": [\"%s\", \"%s\"], \"region\": \"%s\"},\n",
            static_cast<unsigned long long>(id++),
            static_cast<unsigned long long>(rng.zipf(5000, 1.2)),
            rng.chance(0.8) ? "true" : "false",
            nx::checked_cast<unsigned>(rng.below(100)),
            nx::checked_cast<unsigned>(rng.below(100)),
            kWords[rng.zipf(kWords.size(), 1.3)],
            kWords[rng.zipf(kWords.size(), 1.3)],
            rng.chance(0.6) ? "us-east" : "eu-west");
        put(v, buf);
    }
    v.resize(bytes);
    return v;
}

std::vector<uint8_t>
makeCsv(size_t bytes, uint64_t seed)
{
    util::Xoshiro256 rng(seed);
    std::vector<uint8_t> v;
    v.reserve(bytes + 128);
    put(v, "order_id,customer_id,sku,qty,price,date,status\n");
    uint64_t order = 100000;
    while (v.size() < bytes) {
        char buf[128];
        std::snprintf(buf, sizeof(buf),
            "%llu,%llu,SKU-%04u,%u,%u.%02u,2024-%02u-%02u,%s\n",
            static_cast<unsigned long long>(order++),
            static_cast<unsigned long long>(rng.zipf(20000, 1.1)),
            nx::checked_cast<unsigned>(rng.zipf(3000, 1.2)),
            nx::checked_cast<unsigned>(1 + rng.below(9)),
            nx::checked_cast<unsigned>(1 + rng.below(500)),
            nx::checked_cast<unsigned>(rng.below(100)),
            nx::checked_cast<unsigned>(1 + rng.below(12)),
            nx::checked_cast<unsigned>(1 + rng.below(28)),
            rng.chance(0.85) ? "shipped" : "pending");
        put(v, buf);
    }
    v.resize(bytes);
    return v;
}

std::vector<uint8_t>
makeSource(size_t bytes, uint64_t seed)
{
    util::Xoshiro256 rng(seed);
    std::vector<uint8_t> v;
    v.reserve(bytes + 256);
    unsigned fn = 0;
    while (v.size() < bytes) {
        const char *a = kIdentifiers[rng.zipf(kIdentifiers.size(), 1.1)];
        const char *b = kIdentifiers[rng.zipf(kIdentifiers.size(), 1.1)];
        char buf[256];
        std::snprintf(buf, sizeof(buf),
            "static int\nprocess_%u(struct %s *%s, size_t %s)\n{\n"
            "    if (%s == NULL || %s == 0)\n        return -EINVAL;\n"
            "    for (size_t i = 0; i < %s; ++i)\n"
            "        %s->%s[i] = compute(%s, i);\n"
            "    return 0;\n}\n\n",
            fn++, a, a, b, a, b, b, a, b, a);
        put(v, buf);
    }
    v.resize(bytes);
    return v;
}

std::vector<uint8_t>
makeHtml(size_t bytes, uint64_t seed)
{
    util::Xoshiro256 rng(seed);
    std::vector<uint8_t> v;
    v.reserve(bytes + 256);
    put(v, "<!DOCTYPE html>\n<html><head><title>report</title></head>"
           "<body>\n");
    while (v.size() < bytes) {
        put(v, "<div class=\"row\"><span class=\"label\">");
        put(v, kWords[rng.zipf(kWords.size(), 1.3)]);
        put(v, "</span><span class=\"value\">");
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%u",
                      nx::checked_cast<unsigned>(rng.below(100000)));
        put(v, buf);
        put(v, "</span></div>\n");
    }
    v.resize(bytes);
    return v;
}

std::vector<uint8_t>
makeBinary(size_t bytes, uint64_t seed)
{
    util::Xoshiro256 rng(seed);
    std::vector<uint8_t> v;
    v.reserve(bytes + 32);
    // 32-byte records: monotone id, small-delta timestamp, enum bytes,
    // a float-ish field, zero padding. Correlations make this ~2-3x
    // compressible, like real binary telemetry.
    uint64_t id = 0;
    uint64_t ts = 0x5f000000;
    while (v.size() < bytes) {
        id += 1 + rng.below(3);
        ts += rng.below(1000);
        auto put64 = [&](uint64_t x) {
            for (int i = 0; i < 8; ++i)
                v.push_back(nx::truncate_cast<uint8_t>(x >> (8 * i)));
        };
        put64(id);
        put64(ts);
        v.push_back(nx::checked_cast<uint8_t>(rng.below(4)));
        v.push_back(nx::checked_cast<uint8_t>(rng.below(2)));
        v.push_back(0);
        v.push_back(0);
        uint32_t val = nx::checked_cast<uint32_t>(rng.below(1 << 16));
        for (int i = 0; i < 4; ++i)
            v.push_back(nx::truncate_cast<uint8_t>(val >> (8 * i)));
        for (int i = 0; i < 8; ++i)
            v.push_back(0);
    }
    v.resize(bytes);
    return v;
}

std::vector<uint8_t>
makeRandom(size_t bytes, uint64_t seed)
{
    util::Xoshiro256 rng(seed);
    std::vector<uint8_t> v(bytes);
    for (auto &b : v)
        b = nx::truncate_cast<uint8_t>(rng.next());
    return v;
}

std::vector<uint8_t>
makeZeros(size_t bytes)
{
    return std::vector<uint8_t>(bytes, 0);
}

std::vector<uint8_t>
makeMixed(size_t bytes, uint64_t seed)
{
    // Fixed proportions: text 30 %, log 20 %, json 15 %, csv 15 %,
    // binary 15 %, random 5 % — an enterprise-data-lake-ish blend.
    std::vector<uint8_t> v;
    v.reserve(bytes);
    auto append = [&](std::vector<uint8_t> part) {
        v.insert(v.end(), part.begin(), part.end());
    };
    append(makeText(bytes * 30 / 100, seed + 1));
    append(makeLog(bytes * 20 / 100, seed + 2));
    append(makeJson(bytes * 15 / 100, seed + 3));
    append(makeCsv(bytes * 15 / 100, seed + 4));
    append(makeBinary(bytes * 15 / 100, seed + 5));
    append(makeRandom(bytes * 5 / 100, seed + 6));
    v.resize(bytes);
    return v;
}

std::vector<CorpusFile>
standardCorpus(size_t bytes_per_file)
{
    std::vector<CorpusFile> files;
    files.push_back({"zeros", makeZeros(bytes_per_file)});
    files.push_back({"html", makeHtml(bytes_per_file, 11)});
    files.push_back({"source", makeSource(bytes_per_file, 12)});
    files.push_back({"log", makeLog(bytes_per_file, 13)});
    files.push_back({"json", makeJson(bytes_per_file, 14)});
    files.push_back({"csv", makeCsv(bytes_per_file, 15)});
    files.push_back({"text", makeText(bytes_per_file, 16)});
    files.push_back({"binary", makeBinary(bytes_per_file, 17)});
    files.push_back({"random", makeRandom(bytes_per_file, 18)});
    return files;
}

} // namespace workloads
