/**
 * @file
 * Minimal discrete-event simulation kernel for the queueing experiments
 * (VAS dispatch, multi-engine scaling, Spark stage pipelines).
 *
 * Engines with closed-form cycle counts (the compress/decompress pipes)
 * do not need this; it exists for experiments where *contention* between
 * many requesters is the phenomenon being measured.
 */

#ifndef NXSIM_SIM_EVENT_QUEUE_H
#define NXSIM_SIM_EVENT_QUEUE_H

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "sim/ticks.h"
#include "util/checked.h"
#include "util/contracts.h"

namespace sim {

/** Discrete-event kernel: schedule closures at absolute ticks. */
class EventQueue
{
  public:
    using Handler = std::function<void()>;

    /**
     * Schedule @p fn at absolute time @p when. Scheduling in the past
     * is a contract violation, not a silent clamp-to-now: a time-travel
     * event means a model computed a stale tick (the VAS scaling
     * experiments hit exactly this class of bug), and rounding it up
     * would quietly reorder causally-dependent events.
     */
    void
    schedule(Tick when, Handler fn)
    {
        NXSIM_EXPECT(when >= now_, "event scheduled in the past");
        heap_.push(Event{when, seq_++, std::move(fn)});
    }

    /** Schedule @p fn @p delta ticks from now (overflow-checked). */
    void
    scheduleIn(Tick delta, Handler fn)
    {
        schedule(nx::checkedAdd(now_, delta), std::move(fn));
    }

    /** Current simulated time. */
    Tick now() const { return now_; }

    /** Run until the queue drains or @p limit ticks pass. */
    void
    run(Tick limit = ~Tick{0})
    {
        while (!heap_.empty()) {
            // Copy out; pop before invoking so handlers can schedule.
            const Event &top = heap_.top();
            if (top.when > limit) {
                now_ = limit;
                return;
            }
            now_ = top.when;
            Handler fn = std::move(const_cast<Event &>(top).fn);
            heap_.pop();
            fn();
        }
    }

    /** Number of pending events. */
    size_t pending() const { return heap_.size(); }

  private:
    struct Event
    {
        Tick when;
        uint64_t seq;    // FIFO among same-tick events, deterministic
        Handler fn;

        bool
        operator>(const Event &o) const
        {
            if (when != o.when)
                return when > o.when;
            return seq > o.seq;
        }
    };

    std::priority_queue<Event, std::vector<Event>, std::greater<>> heap_;
    Tick now_ = 0;
    uint64_t seq_ = 0;
};

} // namespace sim

#endif // NXSIM_SIM_EVENT_QUEUE_H
