#include "sim/memory_model.h"

// DmaPort is header-only today; this TU anchors the library target.
