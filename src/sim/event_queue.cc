#include "sim/event_queue.h"

// EventQueue is header-only today; this TU anchors the library target and
// keeps a home for future out-of-line kernel features (tracing, stats).
