/**
 * @file
 * Simulation time base. One Tick is one cycle of the owning clock domain;
 * conversions to wall time go through a Frequency.
 */

#ifndef NXSIM_SIM_TICKS_H
#define NXSIM_SIM_TICKS_H

#include <cstdint>

namespace sim {

/** One cycle of a clock domain. */
using Tick = uint64_t;

/** A clock-domain frequency with tick/time conversion helpers. */
class Frequency
{
  public:
    constexpr explicit Frequency(double hz = 2.0e9) : hz_(hz) {}

    constexpr double hz() const { return hz_; }
    constexpr double ghz() const { return hz_ / 1e9; }

    /** Seconds represented by @p ticks. */
    constexpr double
    toSeconds(Tick ticks) const
    {
        return static_cast<double>(ticks) / hz_;
    }

    /** Ticks required to cover @p seconds (rounded up). */
    constexpr Tick
    fromSeconds(double seconds) const
    {
        double t = seconds * hz_;
        auto ticks = static_cast<Tick>(t);
        return (static_cast<double>(ticks) < t) ? ticks + 1 : ticks;
    }

    /** Throughput in bytes/s for @p bytes processed in @p ticks. */
    constexpr double
    rate(uint64_t bytes, Tick ticks) const
    {
        if (ticks == 0)
            return 0.0;
        return static_cast<double>(bytes) / toSeconds(ticks);
    }

  private:
    double hz_;
};

/** Ceiling division helper used all over the timing models. */
constexpr Tick
ceilDiv(uint64_t num, uint64_t den)
{
    return (num + den - 1) / den;
}

} // namespace sim

#endif // NXSIM_SIM_TICKS_H
