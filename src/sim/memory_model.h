/**
 * @file
 * Bandwidth/latency model of the path between an on-chip accelerator and
 * memory: DMA reads of source data and writes of results, as issued by
 * the NX DMA engine from the CRB's scatter/gather lists.
 *
 * The model is deliberately coarse — fixed startup latency plus a
 * bytes/cycle ceiling with a utilization tracker — because the paper's
 * throughput phenomena (engine-bound vs DMA-bound crossover, queueing at
 * high requester counts) only need those two parameters.
 */

#ifndef NXSIM_SIM_MEMORY_MODEL_H
#define NXSIM_SIM_MEMORY_MODEL_H

#include <cstdint>

#include "sim/ticks.h"
#include "util/stats.h"

namespace sim {

/** Parameters of one DMA port. */
struct DmaParams
{
    /** Sustained bytes per engine-clock cycle on this port. */
    double bytesPerCycle = 64.0;
    /** Fixed startup cost per transfer (address translation, setup). */
    Tick startupCycles = 100;
    /** Per-4KiB-page overhead (TCE/ERAT lookups on the nest bus). */
    Tick perPageCycles = 4;
};

/** One direction of DMA movement with utilization accounting. */
class DmaPort
{
  public:
    explicit DmaPort(const DmaParams &params) : params_(params) {}

    /** Cycles to move @p bytes in one transfer. */
    Tick
    transferCycles(uint64_t bytes) const
    {
        if (bytes == 0)
            return 0;
        Tick data = ceilDiv(static_cast<uint64_t>(
            static_cast<double>(bytes) / params_.bytesPerCycle * 1024.0),
            1024);
        Tick pages = ceilDiv(bytes, 4096) * params_.perPageCycles;
        return params_.startupCycles + data + pages;
    }

    /** Record a completed transfer for utilization stats. */
    void
    recordTransfer(uint64_t bytes)
    {
        stats_.inc("transfers");
        stats_.inc("bytes", bytes);
        stats_.inc("cycles", transferCycles(bytes));
    }

    const util::StatSet &stats() const { return stats_; }
    const DmaParams &params() const { return params_; }

  private:
    DmaParams params_;
    util::StatSet stats_;
};

} // namespace sim

#endif // NXSIM_SIM_MEMORY_MODEL_H
