/**
 * @file
 * RFC 1951 (DEFLATE) constants: alphabet sizes, the length and distance
 * code tables, and the code-length-code transmission order. Shared by the
 * software codec and the accelerator model — both must speak exactly this
 * format for cross round trips to succeed.
 */

#ifndef NXSIM_DEFLATE_CONSTANTS_H
#define NXSIM_DEFLATE_CONSTANTS_H

#include <array>
#include <cstddef>
#include <cstdint>
#include "util/checked.h"

namespace deflate {

/** Literal/length alphabet size (0-255 literals, 256 EOB, 257-285 lengths). */
constexpr int kNumLitLen = 286;
/** Distance alphabet size. */
constexpr int kNumDist = 30;
/** Code-length alphabet size (for the dynamic block header). */
constexpr int kNumClc = 19;
/** End-of-block symbol. */
constexpr int kEob = 256;
/** Maximum Huffman code length for litlen/dist alphabets. */
constexpr int kMaxBits = 15;
/** Maximum Huffman code length for the code-length alphabet. */
constexpr int kMaxClcBits = 7;
/** Match length bounds. */
constexpr int kMinMatch = 3;
constexpr int kMaxMatch = 258;
/** History window size. */
constexpr int kWindowSize = 32 * 1024;

/** Order in which code-length-code lengths are transmitted (RFC 1951). */
constexpr std::array<uint8_t, kNumClc> kClcOrder = {
    16, 17, 18, 0, 8, 7, 9, 6, 10, 5, 11, 4, 12, 3, 13, 2, 14, 1, 15
};

/** Base match length for each length code 257..285 (index 0 = code 257). */
constexpr std::array<uint16_t, 29> kLengthBase = {
    3, 4, 5, 6, 7, 8, 9, 10, 11, 13, 15, 17, 19, 23, 27, 31,
    35, 43, 51, 59, 67, 83, 99, 115, 131, 163, 195, 227, 258
};

/** Extra bits for each length code 257..285. */
constexpr std::array<uint8_t, 29> kLengthExtra = {
    0, 0, 0, 0, 0, 0, 0, 0, 1, 1, 1, 1, 2, 2, 2, 2,
    3, 3, 3, 3, 4, 4, 4, 4, 5, 5, 5, 5, 0
};

/** Base distance for each distance code 0..29. */
constexpr std::array<uint16_t, 30> kDistBase = {
    1, 2, 3, 4, 5, 7, 9, 13, 17, 25, 33, 49, 65, 97, 129, 193,
    257, 385, 513, 769, 1025, 1537, 2049, 3073, 4097, 6145,
    8193, 12289, 16385, 24577
};

/** Extra bits for each distance code 0..29. */
constexpr std::array<uint8_t, 30> kDistExtra = {
    0, 0, 0, 0, 1, 1, 2, 2, 3, 3, 4, 4, 5, 5, 6, 6,
    7, 7, 8, 8, 9, 9, 10, 10, 11, 11, 12, 12, 13, 13
};

/** Map a match length (3..258) to its length code (257..285). */
int lengthToCode(int length);

/** Map a match distance (1..32768) to its distance code (0..29). */
int distToCode(int dist);

/** Block type field values (BTYPE). */
enum class BlockType : uint8_t
{
    Stored = 0,
    FixedHuffman = 1,
    DynamicHuffman = 2,
};

namespace detail {

/** Length code lookup built at static-init time; index by length - 3. */
struct LengthCodeTable
{
    std::array<uint8_t, kMaxMatch - kMinMatch + 1> code{};

    LengthCodeTable()
    {
        for (size_t c = 0; c < 29; ++c) {
            int base = kLengthBase[c];
            int span = 1 << kLengthExtra[c];
            for (int l = base; l < base + span && l <= kMaxMatch; ++l)
                code[static_cast<size_t>(l - kMinMatch)] =
                    nx::checked_cast<uint8_t>(c);
        }
        // Length 258 is its own code (285), overriding code 284's range.
        code[kMaxMatch - kMinMatch] = 28;
    }
};

inline const LengthCodeTable kLengthCodeTable;

} // namespace detail

inline int
lengthToCode(int length)
{
    return 257 +
        detail::kLengthCodeTable.code[static_cast<size_t>(length -
                                                          kMinMatch)];
}

inline int
distToCode(int dist)
{
    // Binary search over the 30-entry base table.
    int lo = 0;
    int hi = kNumDist - 1;
    while (lo < hi) {
        int mid = (lo + hi + 1) / 2;
        if (kDistBase[static_cast<size_t>(mid)] <= dist)
            lo = mid;
        else
            hi = mid - 1;
    }
    return lo;
}

} // namespace deflate

#endif // NXSIM_DEFLATE_CONSTANTS_H
