#include "deflate/inflate_decoder.h"

#include "deflate/constants.h"
#include "deflate/huffman.h"
#include "util/bitstream.h"
#include "util/checked.h"
#include "util/taint.h"

namespace deflate {

const char *
toString(InflateStatus s)
{
    switch (s) {
      case InflateStatus::Ok: return "Ok";
      case InflateStatus::TruncatedInput: return "TruncatedInput";
      case InflateStatus::BadBlockType: return "BadBlockType";
      case InflateStatus::BadStoredLength: return "BadStoredLength";
      case InflateStatus::BadCodeLengths: return "BadCodeLengths";
      case InflateStatus::BadSymbol: return "BadSymbol";
      case InflateStatus::BadDistance: return "BadDistance";
      case InflateStatus::OutputLimit: return "OutputLimit";
    }
    return "Unknown";
}

namespace {

/** Decode the dynamic block header into litlen/dist decode tables. */
InflateStatus
readDynamicHeader(util::BitReader &br, HuffmanDecodeTable &litlen,
                  HuffmanDecodeTable &dist)
{
    unsigned hlit = br.readBits(5) + 257;
    unsigned hdist = br.readBits(5) + 1;
    unsigned hclen = br.readBits(4) + 4;
    if (br.overrun())
        return InflateStatus::TruncatedInput;
    if (hlit > 286 || hdist > 30)
        return InflateStatus::BadCodeLengths;

    std::vector<uint8_t> clLengths(kNumClc, 0);
    // nxtaint: allow(taint-loop-bound): hclen = readBits(4) + 4 is at
    // most 19 == kNumClc by field width, so i stays inside kClcOrder
    // and clLengths.
    for (unsigned i = 0; i < hclen; ++i)
        clLengths[kClcOrder[i]] = nx::checked_cast<uint8_t>(br.readBits(3));
    if (br.overrun())
        return InflateStatus::TruncatedInput;

    HuffmanDecodeTable clTable;
    if (!clTable.init(clLengths, kMaxClcBits))
        return InflateStatus::BadCodeLengths;

    std::vector<uint8_t> lengths;
    lengths.reserve(hlit + hdist);
    while (lengths.size() < hlit + hdist) {
        int sym = clTable.decode(br);
        if (sym < 0)
            return br.overrun() ? InflateStatus::TruncatedInput
                                : InflateStatus::BadCodeLengths;
        if (sym < 16) {
            lengths.push_back(nx::checked_cast<uint8_t>(sym));
        } else {
            unsigned n = 0;
            uint8_t fill = 0;
            if (sym == 16) {
                if (lengths.empty())
                    return InflateStatus::BadCodeLengths;
                n = 3 + br.readBits(2);
                fill = lengths.back();
            } else if (sym == 17) {
                n = 3 + br.readBits(3);
            } else {
                n = 11 + br.readBits(7);
            }
            if (br.overrun())
                return InflateStatus::TruncatedInput;
            // The run length is attacker-chosen (up to 138): reject a
            // run that overshoots the declared hlit+hdist before it
            // grows the array, as zlib does.
            if (lengths.size() + n > hlit + hdist)
                return InflateStatus::BadCodeLengths;
            lengths.insert(lengths.end(), n, fill);
        }
        if (br.overrun())
            return InflateStatus::TruncatedInput;
    }
    if (lengths.size() != hlit + hdist)
        return InflateStatus::BadCodeLengths;

    std::span<const uint8_t> all(lengths);
    if (!litlen.init(all.subspan(0, hlit)))
        return InflateStatus::BadCodeLengths;
    if (!dist.init(all.subspan(hlit, hdist)))
        return InflateStatus::BadCodeLengths;
    return InflateStatus::Ok;
}

} // namespace

InflateResult
inflateDecompress(NXSIM_UNTRUSTED std::span<const uint8_t> input,
                  size_t max_output)
{
    return inflateDecompressWithDict(input, {}, max_output);
}

InflateResult
inflateDecompressWithDict(NXSIM_UNTRUSTED std::span<const uint8_t> input,
                          std::span<const uint8_t> dict,
                          size_t max_output)
{
    InflateResult res;
    util::BitReader br(input);

    // Seed the output with the dictionary's window-reachable tail;
    // it is stripped before returning. All distance checks operate on
    // the seeded vector, which is exactly the FDICT semantics.
    if (dict.size() > static_cast<size_t>(kWindowSize))
        dict = dict.subspan(dict.size() - kWindowSize);
    const size_t base = dict.size();
    res.bytes.assign(dict.begin(), dict.end());

    // Fixed tables are built once.
    static const HuffmanDecodeTable *fixedLit = [] {
        auto *t = new HuffmanDecodeTable;
        std::vector<uint8_t> lengths(288);
        for (size_t s = 0; s <= 143; ++s) lengths[s] = 8;
        for (size_t s = 144; s <= 255; ++s) lengths[s] = 9;
        for (size_t s = 256; s <= 279; ++s) lengths[s] = 7;
        for (size_t s = 280; s <= 287; ++s) lengths[s] = 8;
        t->init(lengths);
        return t;
    }();
    static const HuffmanDecodeTable *fixedDst = [] {
        auto *t = new HuffmanDecodeTable;
        // The fixed distance code covers 32 symbols of 5 bits (30-31
        // never appear in valid streams but are part of the code space).
        std::vector<uint8_t> lengths(32, 5);
        t->init(lengths);
        return t;
    }();

    bool final = false;
    while (!final) {
        final = br.readBits(1) != 0;
        unsigned btype = br.readBits(2);
        if (br.overrun()) {
            res.status = InflateStatus::TruncatedInput;
            return res;
        }

        if (btype == 0) {
            // Stored block.
            br.alignToByte();
            uint16_t len = br.readU16le();
            uint16_t nlen = br.readU16le();
            if (br.overrun()) {
                res.status = InflateStatus::TruncatedInput;
                return res;
            }
            if ((len ^ nlen) != 0xffff) {
                res.status = InflateStatus::BadStoredLength;
                return res;
            }
            if (res.bytes.size() - base + len > max_output) {
                res.status = InflateStatus::OutputLimit;
                return res;
            }
            size_t old = res.bytes.size();
            res.bytes.resize(old + len);
            if (!br.readBytes(res.bytes.data() + old, len)) {
                res.status = InflateStatus::TruncatedInput;
                return res;
            }
            ++res.stats.storedBlocks;
            continue;
        }

        const HuffmanDecodeTable *lit = nullptr;
        const HuffmanDecodeTable *dst = nullptr;
        HuffmanDecodeTable dynLit, dynDst;
        if (btype == 1) {
            lit = fixedLit;
            dst = fixedDst;
            ++res.stats.fixedBlocks;
        } else if (btype == 2) {
            InflateStatus st = readDynamicHeader(br, dynLit, dynDst);
            if (st != InflateStatus::Ok) {
                res.status = st;
                return res;
            }
            lit = &dynLit;
            dst = &dynDst;
            ++res.stats.dynamicBlocks;
        } else {
            res.status = InflateStatus::BadBlockType;
            return res;
        }

        while (true) {
            int sym = lit->decode(br);
            if (sym < 0) {
                res.status = br.overrun() ? InflateStatus::TruncatedInput
                                          : InflateStatus::BadSymbol;
                return res;
            }
            if (sym < 256) {
                if (res.bytes.size() - base >= max_output) {
                    res.status = InflateStatus::OutputLimit;
                    return res;
                }
                res.bytes.push_back(nx::checked_cast<uint8_t>(sym));
                ++res.stats.literals;
                continue;
            }
            if (sym == kEob)
                break;
            if (sym > 285) {
                res.status = InflateStatus::BadSymbol;
                return res;
            }
            auto li = static_cast<size_t>(sym - 257);
            unsigned lextra = kLengthExtra[li];
            unsigned length = kLengthBase[li] + br.readBits(lextra);

            int dsym = dst->decode(br);
            if (dsym < 0 || dsym > 29) {
                res.status = br.overrun() ? InflateStatus::TruncatedInput
                                          : InflateStatus::BadSymbol;
                return res;
            }
            auto di = static_cast<size_t>(dsym);
            unsigned dextra = kDistExtra[di];
            unsigned dist = kDistBase[di] + br.readBits(dextra);
            if (br.overrun()) {
                res.status = InflateStatus::TruncatedInput;
                return res;
            }
            if (dist == 0 || dist > res.bytes.size() ||
                dist > kWindowSize) {
                res.status = InflateStatus::BadDistance;
                return res;
            }
            if (res.bytes.size() - base + length > max_output) {
                res.status = InflateStatus::OutputLimit;
                return res;
            }
            size_t from = res.bytes.size() - dist;
            for (unsigned i = 0; i < length; ++i)
                res.bytes.push_back(res.bytes[from + i]);
            ++res.stats.matches;
            res.stats.matchedBytes += length;
        }
    }

    res.stats.inputBits = br.bitsConsumed();
    res.consumedBytes = br.bytesConsumed();
    res.status = InflateStatus::Ok;
    res.bytes.erase(res.bytes.begin(),
                    res.bytes.begin() + static_cast<long>(base));
    return res;
}

} // namespace deflate
