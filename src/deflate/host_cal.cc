#include "deflate/host_cal.h"

#include <chrono>

#include "deflate/deflate_encoder.h"
#include "deflate/inflate_decoder.h"

namespace deflate {

namespace {

using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point t0)
{
    return std::chrono::duration<double>(Clock::now() - t0).count();
}

} // namespace

SwCodecRates
measureSoftwareRates(std::span<const uint8_t> sample,
                     std::span<const int> levels, double min_seconds)
{
    SwCodecRates rates;
    std::vector<uint8_t> compressed6;

    for (int level : levels) {
        deflate::DeflateOptions opts;
        opts.level = level;
        uint64_t bytes = 0;
        int iters = 0;
        auto t0 = Clock::now();
        deflate::DeflateResult res;
        do {
            res = deflate::deflateCompress(sample, opts);
            bytes += sample.size();
            ++iters;
        } while (secondsSince(t0) < min_seconds);
        double secs = secondsSince(t0);
        rates.compressBps[level] = static_cast<double>(bytes) / secs;
        rates.ratio[level] = res.bytes.empty()
            ? 1.0
            : static_cast<double>(sample.size()) /
                static_cast<double>(res.bytes.size());
        if (level == 6 || compressed6.empty())
            compressed6 = std::move(res.bytes);
    }

    // Decompression rate over the last compressed stream.
    if (!compressed6.empty()) {
        uint64_t bytes = 0;
        auto t0 = Clock::now();
        do {
            auto out = deflate::inflateDecompress(compressed6);
            bytes += out.bytes.size();
        } while (secondsSince(t0) < min_seconds);
        double secs = secondsSince(t0);
        rates.decompressBps = static_cast<double>(bytes) / secs;
    }
    return rates;
}

} // namespace deflate
