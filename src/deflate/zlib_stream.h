/**
 * @file
 * zlib (RFC 1950) container framing: 2-byte CMF/FLG header and Adler-32
 * trailer around a raw DEFLATE stream.
 */

#ifndef NXSIM_DEFLATE_ZLIB_STREAM_H
#define NXSIM_DEFLATE_ZLIB_STREAM_H

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "deflate/inflate_decoder.h"
#include "util/taint.h"

namespace deflate {

/** Wrap a raw DEFLATE stream in a zlib container. */
std::vector<uint8_t> zlibWrap(std::span<const uint8_t> deflate_stream,
                              std::span<const uint8_t> original,
                              int level = 6);

/** Result of unwrapping a zlib stream. */
struct ZlibUnwrapResult
{
    bool ok = false;
    std::string error;
    InflateResult inflate;
};

/** Parse header, inflate, verify Adler-32. */
[[nodiscard]] ZlibUnwrapResult
zlibUnwrap(NXSIM_UNTRUSTED std::span<const uint8_t> stream);

/**
 * Wrap a preset-dictionary stream (RFC 1950 FDICT): the header
 * carries DICTID = Adler-32 of @p dict, and the payload must have
 * been produced by deflateCompressWithDict(input, dict).
 */
std::vector<uint8_t> zlibWrapWithDict(
    std::span<const uint8_t> deflate_stream,
    std::span<const uint8_t> original, std::span<const uint8_t> dict,
    int level = 6);

/**
 * Unwrap a possibly-FDICT stream. When the header demands a
 * dictionary, @p dict is checked against DICTID and used for the
 * inflate history; a mismatch or a missing dictionary fails.
 */
[[nodiscard]] ZlibUnwrapResult
zlibUnwrapWithDict(NXSIM_UNTRUSTED std::span<const uint8_t> stream,
                   std::span<const uint8_t> dict);

} // namespace deflate

#endif // NXSIM_DEFLATE_ZLIB_STREAM_H
