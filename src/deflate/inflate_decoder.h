/**
 * @file
 * Raw DEFLATE (RFC 1951) stream decoder.
 *
 * Fully independent of the encoder (no shared emission code), so a
 * successful round trip really exercises the format. Reports per-block
 * stats the accelerator decompress model uses for its timing estimate.
 */

#ifndef NXSIM_DEFLATE_INFLATE_DECODER_H
#define NXSIM_DEFLATE_INFLATE_DECODER_H

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "util/taint.h"

namespace deflate {

/** Outcome of an inflate() call. */
enum class InflateStatus
{
    Ok,
    TruncatedInput,
    BadBlockType,
    BadStoredLength,
    BadCodeLengths,
    BadSymbol,
    BadDistance,
    OutputLimit,
};

/** Human-readable status name. */
const char *toString(InflateStatus s);

/** Decoded stream statistics (inputs to the decompress timing model). */
struct InflateStats
{
    uint64_t storedBlocks = 0;
    uint64_t fixedBlocks = 0;
    uint64_t dynamicBlocks = 0;
    uint64_t literals = 0;
    uint64_t matches = 0;
    uint64_t matchedBytes = 0;
    uint64_t inputBits = 0;

    uint64_t symbols() const { return literals + matches; }
};

/** Result of inflating a raw DEFLATE stream. */
struct InflateResult
{
    InflateStatus status = InflateStatus::Ok;
    std::vector<uint8_t> bytes;
    InflateStats stats;
    size_t consumedBytes = 0;   ///< input bytes consumed (incl. final bits)

    bool ok() const { return status == InflateStatus::Ok; }
};

/**
 * Inflate a raw DEFLATE stream.
 *
 * @param input compressed bytes (stream must start at offset 0)
 * @param max_output safety cap on decompressed size (default 1 GiB)
 */
[[nodiscard]] InflateResult inflateDecompress(
    NXSIM_UNTRUSTED std::span<const uint8_t> input,
    size_t max_output = size_t{1} << 30);

/**
 * Inflate a stream produced with a preset dictionary: back-references
 * may reach into the last 32 KiB of @p dict before output starts.
 * The dictionary bytes are NOT part of the returned output.
 */
[[nodiscard]] InflateResult inflateDecompressWithDict(
    NXSIM_UNTRUSTED std::span<const uint8_t> input,
    std::span<const uint8_t> dict, size_t max_output = size_t{1} << 30);

} // namespace deflate

#endif // NXSIM_DEFLATE_INFLATE_DECODER_H
