#include "deflate/zlib_stream.h"

#include "util/adler32.h"
#include "util/taint.h"

#include <algorithm>
#include "util/checked.h"

namespace deflate {

std::vector<uint8_t>
zlibWrap(std::span<const uint8_t> deflate_stream,
         std::span<const uint8_t> original, int level)
{
    std::vector<uint8_t> out;
    out.reserve(deflate_stream.size() + 6);
    // CMF: method 8, 32K window (CINFO=7).
    uint8_t cmf = 0x78;
    // FLEVEL from the nominal level.
    uint8_t flevel = level >= 7 ? 3 : level >= 5 ? 2 : level >= 2 ? 1 : 0;
    uint8_t flg = nx::checked_cast<uint8_t>(flevel << 6);
    // FCHECK makes (cmf*256 + flg) a multiple of 31.
    unsigned rem = (nx::checked_cast<unsigned>(cmf) * 256 + flg) % 31;
    if (rem != 0)
        flg = nx::checked_cast<uint8_t>(flg + (31 - rem));
    out.push_back(cmf);
    out.push_back(flg);
    out.insert(out.end(), deflate_stream.begin(), deflate_stream.end());
    uint32_t adler = util::adler32(original);
    for (int i = 3; i >= 0; --i)    // Adler is stored big-endian
        out.push_back(nx::checked_cast<uint8_t>((adler >> (8 * i)) & 0xff));
    return out;
}

ZlibUnwrapResult
zlibUnwrap(NXSIM_UNTRUSTED std::span<const uint8_t> stream)
{
    ZlibUnwrapResult res;
    if (stream.size() < 6) {
        res.error = "stream too short";
        return res;
    }
    uint8_t cmf = stream[0];
    uint8_t flg = stream[1];
    if ((cmf & 0x0f) != 8) {
        res.error = "unsupported method";
        return res;
    }
    if ((nx::checked_cast<unsigned>(cmf) * 256 + flg) % 31 != 0) {
        res.error = "FCHECK failed";
        return res;
    }
    if (flg & 0x20) {
        res.error = "preset dictionary unsupported";
        return res;
    }

    res.inflate = inflateDecompress(stream.subspan(2, stream.size() - 6));
    if (!res.inflate.ok()) {
        res.error = std::string("inflate: ") +
            toString(res.inflate.status);
        return res;
    }
    size_t tpos = 2 + res.inflate.consumedBytes;
    if (tpos + 4 > stream.size()) {
        res.error = "trailer overlaps payload";
        return res;
    }
    uint32_t adler = (nx::checked_cast<uint32_t>(stream[tpos]) << 24) |
        (nx::checked_cast<uint32_t>(stream[tpos + 1]) << 16) |
        (nx::checked_cast<uint32_t>(stream[tpos + 2]) << 8) |
        nx::checked_cast<uint32_t>(stream[tpos + 3]);
    if (adler != util::adler32(res.inflate.bytes)) {
        res.error = "Adler-32 mismatch";
        return res;
    }
    res.ok = true;
    return res;
}

std::vector<uint8_t>
zlibWrapWithDict(std::span<const uint8_t> deflate_stream,
                 std::span<const uint8_t> original,
                 std::span<const uint8_t> dict, int level)
{
    std::vector<uint8_t> out;
    out.reserve(deflate_stream.size() + 10);
    uint8_t cmf = 0x78;
    uint8_t flevel = level >= 7 ? 3 : level >= 5 ? 2 : level >= 2 ? 1
                                                                  : 0;
    uint8_t flg = nx::checked_cast<uint8_t>((flevel << 6) | 0x20);  // FDICT
    unsigned rem = (nx::checked_cast<unsigned>(cmf) * 256 + flg) % 31;
    if (rem != 0)
        flg = nx::checked_cast<uint8_t>(flg + (31 - rem));
    out.push_back(cmf);
    out.push_back(flg);
    uint32_t dictid = util::adler32(dict);
    for (int i = 3; i >= 0; --i)
        out.push_back(nx::checked_cast<uint8_t>((dictid >> (8 * i)) & 0xff));
    out.insert(out.end(), deflate_stream.begin(), deflate_stream.end());
    uint32_t adler = util::adler32(original);
    for (int i = 3; i >= 0; --i)
        out.push_back(nx::checked_cast<uint8_t>((adler >> (8 * i)) & 0xff));
    return out;
}

ZlibUnwrapResult
zlibUnwrapWithDict(NXSIM_UNTRUSTED std::span<const uint8_t> stream,
                   std::span<const uint8_t> dict)
{
    ZlibUnwrapResult res;
    if (stream.size() < 6) {
        res.error = "stream too short";
        return res;
    }
    uint8_t cmf = stream[0];
    uint8_t flg = stream[1];
    if ((cmf & 0x0f) != 8) {
        res.error = "unsupported method";
        return res;
    }
    if ((nx::checked_cast<unsigned>(cmf) * 256 + flg) % 31 != 0) {
        res.error = "FCHECK failed";
        return res;
    }
    size_t payload = 2;
    if (flg & 0x20) {
        if (stream.size() < 10) {
            res.error = "truncated DICTID";
            return res;
        }
        uint32_t dictid = (nx::checked_cast<uint32_t>(stream[2]) << 24) |
            (nx::checked_cast<uint32_t>(stream[3]) << 16) |
            (nx::checked_cast<uint32_t>(stream[4]) << 8) |
            nx::checked_cast<uint32_t>(stream[5]);
        if (dict.empty()) {
            res.error = "dictionary required";
            return res;
        }
        if (dictid != util::adler32(dict)) {
            res.error = "DICTID mismatch";
            return res;
        }
        payload = 6;
    }

    res.inflate = inflateDecompressWithDict(
        stream.subspan(payload, stream.size() - payload - 4),
        (flg & 0x20) ? dict : std::span<const uint8_t>{});
    if (!res.inflate.ok()) {
        res.error = std::string("inflate: ") +
            toString(res.inflate.status);
        return res;
    }
    size_t tpos = payload + res.inflate.consumedBytes;
    if (tpos + 4 > stream.size()) {
        res.error = "trailer overlaps payload";
        return res;
    }
    uint32_t adler = (nx::checked_cast<uint32_t>(stream[tpos]) << 24) |
        (nx::checked_cast<uint32_t>(stream[tpos + 1]) << 16) |
        (nx::checked_cast<uint32_t>(stream[tpos + 2]) << 8) |
        nx::checked_cast<uint32_t>(stream[tpos + 3]);
    if (adler != util::adler32(res.inflate.bytes)) {
        res.error = "Adler-32 mismatch";
        return res;
    }
    res.ok = true;
    return res;
}

} // namespace deflate
