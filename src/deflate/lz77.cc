#include "deflate/lz77.h"

#include <algorithm>
#include <cstring>
#include "util/checked.h"

namespace deflate {

TokenStats
summarize(std::span<const Token> tokens)
{
    TokenStats s;
    for (const Token &t : tokens) {
        if (t.isLiteral()) {
            ++s.literals;
        } else {
            ++s.matches;
            s.matchedBytes += t.length;
        }
    }
    return s;
}

std::vector<uint8_t>
expandTokens(std::span<const Token> tokens)
{
    std::vector<uint8_t> out;
    for (const Token &t : tokens) {
        if (t.isLiteral()) {
            out.push_back(t.literal);
            continue;
        }
        if (t.dist == 0 || t.dist > out.size())
            return {};    // invalid reference; caller treats as failure
        size_t start = out.size() - static_cast<size_t>(t.dist);
        for (size_t i = 0; i < static_cast<size_t>(t.length); ++i)
            out.push_back(out[start + i]);    // handles overlap correctly
    }
    return out;
}

bool
tokensReproduce(std::span<const Token> tokens,
                std::span<const uint8_t> input)
{
    size_t pos = 0;
    for (const Token &t : tokens) {
        if (t.isLiteral()) {
            if (pos >= input.size() || input[pos] != t.literal)
                return false;
            ++pos;
            continue;
        }
        if (t.length < kMinMatch || t.length > kMaxMatch)
            return false;
        if (t.dist == 0 || t.dist > pos || t.dist > kWindowSize)
            return false;
        if (pos + t.length > input.size())
            return false;
        for (size_t i = 0; i < static_cast<size_t>(t.length); ++i)
            if (input[pos + i] !=
                input[pos - static_cast<size_t>(t.dist) + i])
                return false;
        pos += static_cast<size_t>(t.length);
    }
    return pos == input.size();
}

Lz77Matcher::Lz77Matcher(const LevelParams &params)
    : params_(params),
      head_(size_t{1} << kHashBits, kNoPos),
      prev_(kWindowSize, kNoPos)
{
}

void
Lz77Matcher::insert(std::span<const uint8_t> in, size_t pos)
{
    if (pos + kMinMatch > in.size())
        return;
    uint32_t h = hash3(in.data() + pos);
    prev_[pos & (kWindowSize - 1)] = head_[h];
    head_[h] = nx::checked_cast<uint32_t>(pos);
}

int
Lz77Matcher::findMatch(std::span<const uint8_t> in, size_t pos,
                       int max_chain, int nice_length, int &match_dist)
{
    if (pos + kMinMatch > in.size())
        return 0;

    const uint8_t *cur = in.data() + pos;
    size_t max_len = std::min<size_t>(kMaxMatch, in.size() - pos);
    size_t limit = pos >= kWindowSize ? pos - kWindowSize + 1 : 0;

    int best_len = 0;
    int best_dist = 0;

    uint32_t cand = head_[hash3(cur)];
    int chain = max_chain;
    while (cand != kNoPos && cand >= limit && cand < pos && chain-- > 0) {
        ++chainSteps_;
        const uint8_t *ref = in.data() + cand;
        // Quick reject: match must beat best_len, so check that byte first.
        if (best_len > 0 &&
            (static_cast<size_t>(best_len) >= max_len ||
             ref[best_len] != cur[best_len])) {
            cand = prev_[cand & (kWindowSize - 1)];
            continue;
        }
        size_t len = 0;
        while (len < max_len && ref[len] == cur[len])
            ++len;
        if (nx::checked_cast<int>(len) > best_len) {
            best_len = nx::checked_cast<int>(len);
            best_dist = nx::checked_cast<int>(pos - cand);
            if (best_len >= nice_length)
                break;
        }
        cand = prev_[cand & (kWindowSize - 1)];
    }

    if (best_len < kMinMatch)
        return 0;
    match_dist = best_dist;
    return best_len;
}

std::vector<Token>
Lz77Matcher::tokenize(std::span<const uint8_t> input)
{
    return tokenize(input, 0);
}

std::vector<Token>
Lz77Matcher::tokenize(std::span<const uint8_t> input, size_t start)
{
    std::fill(head_.begin(), head_.end(), kNoPos);
    std::fill(prev_.begin(), prev_.end(), kNoPos);
    chainSteps_ = 0;

    std::vector<Token> out;
    out.reserve((input.size() - start) / 3);

    if (params_.store) {
        for (size_t p = start; p < input.size(); ++p)
            out.push_back(Token::lit(input[p]));
        return out;
    }

    // Prime the hash table with the history prefix (only the last
    // window's worth can ever be referenced).
    size_t prime_from = start > static_cast<size_t>(kWindowSize)
        ? start - kWindowSize : 0;
    for (size_t p = prime_from; p < start; ++p)
        insert(input, p);

    size_t pos = start;
    // State for lazy matching: a pending match from the previous position.
    bool have_prev = false;
    int prev_len = 0;
    int prev_dist = 0;

    while (pos < input.size()) {
        int dist = 0;
        int chain = params_.maxChain;
        // zlib halves the chain effort when the previous match was already
        // "good"; model the same economy.
        if (have_prev && prev_len >= params_.goodLength)
            chain >>= 2;
        int len = findMatch(input, pos, chain, params_.niceLength, dist);

        if (!params_.lazy) {
            // deflate_fast: take matches greedily.
            if (len >= kMinMatch) {
                out.push_back(Token::match(len, dist));
                // Insert hash entries for the match body (bounded, as in
                // zlib, to keep long matches cheap).
                size_t end = pos + static_cast<size_t>(len);
                insert(input, pos);
                for (size_t p = pos + 1; p < end; ++p)
                    insert(input, p);
                pos = end;
            } else {
                out.push_back(Token::lit(input[pos]));
                insert(input, pos);
                ++pos;
            }
            continue;
        }

        // deflate_slow: defer the decision one byte to catch longer
        // matches starting at pos+1.
        if (have_prev) {
            bool cur_better = len > prev_len &&
                prev_len < params_.maxLazy;
            if (!cur_better) {
                // Emit the previous match; positions pos-1 .. pos-1+len-1
                // are consumed. We already inserted pos-1 and pos.
                out.push_back(Token::match(prev_len, prev_dist));
                size_t end = (pos - 1) + static_cast<size_t>(prev_len);
                for (size_t p = pos; p < end; ++p)
                    insert(input, p);
                pos = end;
                have_prev = false;
                continue;
            }
            // Current position has a longer match: previous byte becomes
            // a literal.
            out.push_back(Token::lit(input[pos - 1]));
        }

        if (len >= kMinMatch) {
            have_prev = true;
            prev_len = len;
            prev_dist = dist;
            insert(input, pos);
            ++pos;
        } else {
            have_prev = false;
            out.push_back(Token::lit(input[pos]));
            insert(input, pos);
            ++pos;
        }
    }

    if (have_prev) {
        // Input ended while holding a pending match: the final decision
        // defaults to emitting it.
        out.push_back(Token::match(prev_len, prev_dist));
        // prev match started at input.size()-? — it consumed through the
        // end; any tail bytes it did not cover were already handled since
        // pos only advances past consumed bytes. Trim overhang:
        // (cannot happen: findMatch caps length at buffer end).
    }

    return out;
}

} // namespace deflate
