/**
 * @file
 * Host calibration of the software codec.
 *
 * The paper's headline speedups compare the accelerator against zlib
 * running on a general-purpose core. We keep that comparison honest by
 * *measuring* our software codec's bytes/second on the host machine at
 * bench time (rather than hard-coding a number), then treating the host
 * as a stand-in for the POWER9 core. DESIGN.md documents this
 * substitution; the shape of the result (hundreds-of-x single core,
 * ~13x whole chip) is insensitive to the exact core chosen.
 *
 * This lives in deflate/ (not sim/): it times the deflate module's own
 * encoder/decoder, and the declared layer order (see tools/nxdeps)
 * puts sim below deflate — a sim file including deflate headers would
 * be a layering inversion nxdeps rejects.
 */

#ifndef NXSIM_DEFLATE_HOST_CAL_H
#define NXSIM_DEFLATE_HOST_CAL_H

#include <cstdint>
#include <map>
#include <span>
#include <vector>

namespace deflate {

/** Measured software codec rates on this host. */
struct SwCodecRates
{
    /** Compression bytes/second per zlib-style level. */
    std::map<int, double> compressBps;
    /** Decompression bytes/second. */
    double decompressBps = 0.0;
    /** Compressed-size ratio (original/compressed) per level. */
    std::map<int, double> ratio;
};

/**
 * Measure software deflate/inflate rates on @p sample.
 *
 * @param sample representative input (a few MiB of corpus data)
 * @param levels which levels to measure
 * @param min_seconds minimum wall time per level (repeats as needed)
 */
SwCodecRates measureSoftwareRates(std::span<const uint8_t> sample,
                                  std::span<const int> levels,
                                  double min_seconds = 0.1);

} // namespace deflate

#endif // NXSIM_DEFLATE_HOST_CAL_H
