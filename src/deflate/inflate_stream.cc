#include "deflate/inflate_stream.h"

#include "deflate/constants.h"
#include "util/checked.h"
#include "util/taint.h"

namespace deflate {

namespace {

/** Fixed decode tables shared by every stream instance. */
const HuffmanDecodeTable &
fixedLitTable()
{
    static const HuffmanDecodeTable t = [] {
        HuffmanDecodeTable table;
        std::vector<uint8_t> lengths(288);
        for (size_t s = 0; s <= 143; ++s) lengths[s] = 8;
        for (size_t s = 144; s <= 255; ++s) lengths[s] = 9;
        for (size_t s = 256; s <= 279; ++s) lengths[s] = 7;
        for (size_t s = 280; s <= 287; ++s) lengths[s] = 8;
        table.init(lengths);
        return table;
    }();
    return t;
}

const HuffmanDecodeTable &
fixedDistTable()
{
    static const HuffmanDecodeTable t = [] {
        HuffmanDecodeTable table;
        std::vector<uint8_t> lengths(32, 5);
        table.init(lengths);
        return table;
    }();
    return t;
}

} // namespace

size_t
InflateStream::bufferedBits() const
{
    return bits_.available();
}

StreamStatus
InflateStream::feed(NXSIM_UNTRUSTED std::span<const uint8_t> data,
                    std::vector<uint8_t> &out)
{
    bits_.append(data);

    bool progressed = true;
    while (progressed) {
        switch (state_) {
          case State::BlockHeader:
            progressed = stepBlockHeader();
            break;
          case State::StoredLen:
            progressed = stepStoredLen();
            break;
          case State::StoredBody:
            progressed = stepStoredBody(out);
            break;
          case State::DynHeaderCounts:
            progressed = stepDynHeaderCounts();
            break;
          case State::DynCodeLengths:
            progressed = stepDynCodeLengths();
            break;
          case State::Symbols:
            progressed = stepSymbols(out);
            break;
          case State::Done:
            return StreamStatus::Done;
          case State::Error:
            return StreamStatus::Error;
        }
    }
    bits_.compact();
    if (state_ == State::Done)
        return StreamStatus::Done;
    if (state_ == State::Error)
        return StreamStatus::Error;
    return StreamStatus::NeedMoreInput;
}

bool
InflateStream::stepBlockHeader()
{
    if (bits_.available() < 3)
        return false;
    uint32_t hdr = bits_.peek(3);
    bits_.consume(3);
    finalBlock_ = (hdr & 1) != 0;
    unsigned btype = hdr >> 1;
    switch (btype) {
      case 0:
        bits_.align();
        state_ = State::StoredLen;
        return true;
      case 1:
        litlen_ = fixedLitTable();
        dist_ = fixedDistTable();
        haveLength_ = false;
        state_ = State::Symbols;
        return true;
      case 2:
        state_ = State::DynHeaderCounts;
        return true;
      default:
        fail(InflateStatus::BadBlockType);
        return true;
    }
}

bool
InflateStream::stepStoredLen()
{
    if (bits_.available() < 32)
        return false;
    uint32_t v = bits_.peek(32);
    bits_.consume(32);
    uint16_t len = nx::checked_cast<uint16_t>(v & 0xffff);
    uint16_t nlen = nx::checked_cast<uint16_t>(v >> 16);
    if ((len ^ nlen) != 0xffff) {
        fail(InflateStatus::BadStoredLength);
        return true;
    }
    storedRemaining_ = len;
    state_ = State::StoredBody;
    return true;
}

bool
InflateStream::stepStoredBody(std::vector<uint8_t> &out)
{
    bool moved = false;
    while (storedRemaining_ > 0 && bits_.available() >= 8) {
        push(bits_.popByte(), out);
        --storedRemaining_;
        moved = true;
    }
    if (storedRemaining_ == 0) {
        state_ = finalBlock_ ? State::Done : State::BlockHeader;
        return true;
    }
    return moved;
}

bool
InflateStream::stepDynHeaderCounts()
{
    // 5 + 5 + 4 count bits plus the 3-bit CL lengths; consume counts
    // and CL lengths together once enough bits are buffered, to keep
    // the resume points few.
    if (bits_.available() < 14)
        return false;
    uint32_t v = bits_.peek(14);
    unsigned hlit = (v & 0x1f) + 257;
    unsigned hdist = ((v >> 5) & 0x1f) + 1;
    unsigned hclen = ((v >> 10) & 0xf) + 4;
    if (bits_.available() < 14 + hclen * 3)
        return false;
    bits_.consume(14);
    if (hlit > 286 || hdist > 30) {
        fail(InflateStatus::BadCodeLengths);
        return true;
    }
    hlit_ = hlit;
    hdist_ = hdist;
    hclen_ = hclen;
    clLengths_.assign(kNumClc, 0);
    for (unsigned i = 0; i < hclen; ++i) {
        clLengths_[kClcOrder[i]] =
            nx::checked_cast<uint8_t>(bits_.peek(3));
        bits_.consume(3);
    }
    if (!clTable_.init(clLengths_, kMaxClcBits)) {
        fail(InflateStatus::BadCodeLengths);
        return true;
    }
    lengths_.clear();
    lengths_.reserve(hlit_ + hdist_);
    clRead_ = 0;
    state_ = State::DynCodeLengths;
    return true;
}

bool
InflateStream::stepDynCodeLengths()
{
    while (lengths_.size() < hlit_ + hdist_) {
        size_t avail = bits_.available();
        // Decode one CL symbol + its extra bits atomically: probe the
        // table through a shim reader over the peeked (zero-padded)
        // window, and only consume when len + extra bits are really
        // available.
        int sym = -1;
        unsigned len = 0;
        {
            uint8_t shim[4];
            uint32_t w = bits_.peek(24);
            shim[0] = nx::checked_cast<uint8_t>(w & 0xff);
            shim[1] = nx::checked_cast<uint8_t>((w >> 8) & 0xff);
            shim[2] = nx::checked_cast<uint8_t>((w >> 16) & 0xff);
            shim[3] = 0;
            util::BitReader br({shim, 4});
            sym = clTable_.decode(br);
            len = nx::checked_cast<unsigned>(br.bitsConsumed());
        }
        if (sym < 0) {
            if (avail >= nx::checked_cast<unsigned>(kMaxClcBits)) {
                fail(InflateStatus::BadCodeLengths);
                return true;
            }
            return false;    // genuinely short of input
        }
        unsigned extra = sym == 16 ? 2 : sym == 17 ? 3
                       : sym == 18 ? 7 : 0;
        if (avail < len + extra)
            return false;
        bits_.consume(len);
        if (sym < 16) {
            lengths_.push_back(nx::checked_cast<uint8_t>(sym));
        } else {
            unsigned n = 0;
            uint8_t fill = 0;
            if (sym == 16) {
                if (lengths_.empty()) {
                    fail(InflateStatus::BadCodeLengths);
                    return true;
                }
                n = 3 + bits_.peek(2);
                bits_.consume(2);
                fill = lengths_.back();
            } else if (sym == 17) {
                n = 3 + bits_.peek(3);
                bits_.consume(3);
            } else {
                n = 11 + bits_.peek(7);
                bits_.consume(7);
            }
            // The run length is attacker-chosen (up to 138): reject a
            // run that overshoots the declared hlit+hdist before it
            // grows the array, as zlib does.
            if (lengths_.size() + n > hlit_ + hdist_) {
                fail(InflateStatus::BadCodeLengths);
                return true;
            }
            lengths_.insert(lengths_.end(), n, fill);
        }
    }
    if (lengths_.size() != hlit_ + hdist_) {
        fail(InflateStatus::BadCodeLengths);
        return true;
    }
    std::span<const uint8_t> all(lengths_);
    if (!litlen_.init(all.subspan(0, hlit_)) ||
        !dist_.init(all.subspan(hlit_, hdist_))) {
        fail(InflateStatus::BadCodeLengths);
        return true;
    }
    haveLength_ = false;
    state_ = State::Symbols;
    return true;
}

bool
InflateStream::stepSymbols(std::vector<uint8_t> &out)
{
    bool moved = false;
    while (true) {
        size_t avail = bits_.available();

        if (!haveLength_) {
            // Decode a litlen symbol with its length-extra atomically.
            uint8_t shim[8];
            uint32_t w0 = bits_.peek(32);
            for (int i = 0; i < 4; ++i)
                shim[i] = nx::checked_cast<uint8_t>((w0 >> (8 * i)) & 0xff);
            shim[4] = shim[5] = shim[6] = shim[7] = 0;
            util::BitReader br({shim, 8});
            int sym = litlen_.decode(br);
            auto len = nx::checked_cast<unsigned>(br.bitsConsumed());
            if (sym < 0) {
                if (avail >= 15) {
                    fail(InflateStatus::BadSymbol);
                    return true;
                }
                return moved;
            }
            if (sym < 256) {
                if (avail < len)
                    return moved;
                bits_.consume(len);
                push(nx::checked_cast<uint8_t>(sym), out);
                moved = true;
                continue;
            }
            if (sym == kEob) {
                if (avail < len)
                    return moved;
                bits_.consume(len);
                state_ = finalBlock_ ? State::Done
                                     : State::BlockHeader;
                return true;
            }
            if (sym > 285) {
                fail(InflateStatus::BadSymbol);
                return true;
            }
            auto li = static_cast<size_t>(sym - 257);
            unsigned lextra = kLengthExtra[li];
            if (avail < len + lextra)
                return moved;
            bits_.consume(len);
            matchLength_ = kLengthBase[li] + bits_.peek(lextra);
            if (lextra > 0)
                bits_.consume(lextra);
            haveLength_ = true;
            avail = bits_.available();
        }

        // Decode the distance symbol + extras atomically.
        {
            uint8_t shim[8];
            uint32_t w0 = bits_.peek(32);
            for (int i = 0; i < 4; ++i)
                shim[i] = nx::checked_cast<uint8_t>((w0 >> (8 * i)) & 0xff);
            shim[4] = shim[5] = shim[6] = shim[7] = 0;
            util::BitReader br({shim, 8});
            int dsym = dist_.decode(br);
            auto dlen = nx::checked_cast<unsigned>(br.bitsConsumed());
            if (dsym < 0) {
                if (avail >= 15) {
                    fail(InflateStatus::BadSymbol);
                    return true;
                }
                return moved;
            }
            if (dsym > 29) {
                fail(InflateStatus::BadSymbol);
                return true;
            }
            auto di = static_cast<size_t>(dsym);
            unsigned dextra = kDistExtra[di];
            if (avail < dlen + dextra)
                return moved;
            bits_.consume(dlen);
            unsigned dist = kDistBase[di] + bits_.peek(dextra);
            if (dextra > 0)
                bits_.consume(dextra);

            if (dist == 0 || dist > window_.size()) {
                fail(InflateStatus::BadDistance);
                return true;
            }
            // Copy from the window (handles overlap byte-by-byte).
            // nxtaint: allow(taint-loop-bound): matchLength_ is
            // kLengthBase[sym] plus its extra bits, at most kMaxMatch
            // (258) by table construction, and push() maintains the
            // window-size invariant on every iteration.
            for (unsigned i = 0; i < matchLength_; ++i)
                push(window_[window_.size() - dist], out);
            haveLength_ = false;
            moved = true;
        }
    }
}

} // namespace deflate
