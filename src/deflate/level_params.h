/**
 * @file
 * Per-level tuning knobs of the software compressor, mirroring zlib's
 * configuration_table so the baseline has zlib's speed/ratio shape.
 */

#ifndef NXSIM_DEFLATE_LEVEL_PARAMS_H
#define NXSIM_DEFLATE_LEVEL_PARAMS_H

namespace deflate {

/** Tuning knobs for one compression level. */
struct LevelParams
{
    int level = 6;          ///< nominal level 0..9
    int goodLength = 8;     ///< reduce chain effort above this match length
    int maxLazy = 16;       ///< only lazy-match below this current length
    int niceLength = 128;   ///< stop chain search at this match length
    int maxChain = 128;     ///< max hash-chain links to follow
    bool lazy = true;       ///< deflate_slow (true) vs deflate_fast
    bool store = false;     ///< level 0: stored blocks only
};

/** zlib-equivalent parameters for levels 0..9. */
LevelParams levelParams(int level);

} // namespace deflate

#endif // NXSIM_DEFLATE_LEVEL_PARAMS_H
