#include "deflate/huffman.h"

#include <algorithm>
#include "util/contracts.h"
#include <queue>
#include "util/checked.h"

namespace deflate {

namespace {

/** Internal tree node for the frequency heap. */
struct Node
{
    uint64_t freq;
    int symbol;       // >= 0 for leaves, -1 for internal
    int left = -1;    // indices into the node pool
    int right = -1;
};

/** Depth-assigning DFS over the built tree. */
void
assignDepths(const std::vector<Node> &pool, int idx, int depth,
             std::vector<uint8_t> &lengths)
{
    const Node &n = pool[static_cast<size_t>(idx)];
    if (n.symbol >= 0) {
        lengths[static_cast<size_t>(n.symbol)] =
            nx::checked_cast<uint8_t>(std::max(depth, 1));
        return;
    }
    assignDepths(pool, n.left, depth + 1, lengths);
    assignDepths(pool, n.right, depth + 1, lengths);
}

/**
 * Enforce the max_bits limit the way zlib does: demote overlong codes to
 * max_bits, then repair the Kraft sum by lengthening the cheapest codes.
 */
void
limitLengths(std::vector<uint8_t> &lengths, int max_bits,
             std::span<const uint64_t> freqs)
{
    const auto maxBits = static_cast<size_t>(max_bits);
    bool overflow = false;
    for (uint8_t l : lengths) {
        if (l > max_bits) {
            overflow = true;
            break;
        }
    }
    if (!overflow)
        return;

    // Count codes per length, clamping overlong ones.
    std::vector<int> blCount(maxBits + 1, 0);
    for (auto &l : lengths) {
        if (l == 0)
            continue;
        if (l > max_bits)
            l = nx::checked_cast<uint8_t>(max_bits);
        ++blCount[l];
    }

    // Kraft sum in units of 2^-max_bits.
    uint64_t kraft = 0;
    for (size_t bits = 1; bits <= maxBits; ++bits)
        kraft += static_cast<uint64_t>(blCount[bits])
            << (maxBits - bits);
    uint64_t budget = 1ull << maxBits;

    // Overfull: repeatedly find a code at length < max_bits to lengthen
    // (moving one leaf down costs 2^-(l+1)), preferring the lowest
    // frequency symbol so the ratio impact is minimal.
    while (kraft > budget) {
        // Take one code of the longest length < max_bits with entries...
        // zlib's approach: find max length bits with blCount[bits] > 0 and
        // bits < max_bits is wrong direction; instead shorten the tree:
        // move a leaf from max_bits to max_bits (no-op) doesn't help.
        // Standard fix: find the largest bits < max_bits with a code,
        // turn one of its codes into two max-ish codes.
        size_t bits = maxBits - 1;
        while (bits > 0 && blCount[bits] == 0)
            --bits;
        NXSIM_ASSERT(bits > 0, "cannot repair Kraft overflow");
        --blCount[bits];
        ++blCount[bits + 1];
        // One code of length bits became length bits+1:
        kraft -= (1ull << (maxBits - bits));
        kraft += (1ull << (maxBits - bits - 1));
    }

    // Underfull (possible after clamping): shorten codes to use the slack.
    while (kraft < budget) {
        size_t bits = maxBits;
        while (bits > 1 && blCount[bits] == 0)
            --bits;
        if (blCount[bits] == 0)
            break;
        --blCount[bits];
        ++blCount[bits - 1];
        kraft -= (1ull << (maxBits - bits));
        kraft += (1ull << (maxBits - bits + 1));
    }
    NXSIM_ENSURE(kraft == budget);

    // Reassign lengths: sort used symbols by (freq desc) so frequent
    // symbols get the shorter lengths, then dole out blCount.
    std::vector<size_t> used;
    for (size_t s = 0; s < lengths.size(); ++s)
        if (lengths[s] != 0)
            used.push_back(s);
    std::sort(used.begin(), used.end(), [&](size_t a, size_t b) {
        if (freqs[a] != freqs[b])
            return freqs[a] > freqs[b];
        return a < b;
    });
    size_t i = 0;
    for (size_t bits = 1; bits <= maxBits; ++bits) {
        for (int k = 0; k < blCount[bits]; ++k)
            lengths[used[i++]] = nx::checked_cast<uint8_t>(bits);
    }
    NXSIM_ENSURE(i == used.size());
}

} // namespace

std::vector<uint8_t>
buildCodeLengths(std::span<const uint64_t> freqs, int max_bits)
{
    std::vector<uint8_t> lengths(freqs.size(), 0);

    std::vector<Node> pool;
    pool.reserve(freqs.size() * 2);
    // Min-heap of pool indices by (freq, tie-break on index for
    // determinism).
    auto cmp = [&pool](size_t a, size_t b) {
        if (pool[a].freq != pool[b].freq)
            return pool[a].freq > pool[b].freq;
        return a > b;
    };
    std::priority_queue<size_t, std::vector<size_t>, decltype(cmp)>
        heap(cmp);

    for (size_t s = 0; s < freqs.size(); ++s) {
        if (freqs[s] == 0)
            continue;
        pool.push_back({freqs[s], nx::checked_cast<int>(s)});
        heap.push(pool.size() - 1);
    }

    if (heap.empty())
        return lengths;
    if (heap.size() == 1) {
        lengths[static_cast<size_t>(pool[heap.top()].symbol)] = 1;
        return lengths;
    }

    while (heap.size() > 1) {
        size_t a = heap.top();
        heap.pop();
        size_t b = heap.top();
        heap.pop();
        pool.push_back({pool[a].freq + pool[b].freq, -1,
                        nx::checked_cast<int>(a), nx::checked_cast<int>(b)});
        heap.push(pool.size() - 1);
    }

    assignDepths(pool, nx::checked_cast<int>(heap.top()), 0, lengths);
    limitLengths(lengths, max_bits, freqs);
    return lengths;
}

HuffmanCode::HuffmanCode(std::span<const uint8_t> lengths)
    : codes_(lengths.size(), 0), lengths_(lengths.begin(), lengths.end())
{
    // Canonical code assignment per RFC 1951 3.2.2.
    std::vector<int> blCount(kMaxBits + 1, 0);
    for (uint8_t l : lengths_)
        ++blCount[l];
    blCount[0] = 0;

    std::vector<uint32_t> nextCode(kMaxBits + 2, 0);
    uint32_t code = 0;
    for (size_t bits = 1; bits <= kMaxBits; ++bits) {
        code = (code + nx::checked_cast<uint32_t>(blCount[bits - 1])) << 1;
        nextCode[bits] = code;
    }
    for (size_t s = 0; s < lengths_.size(); ++s) {
        uint8_t len = lengths_[s];
        if (len == 0)
            continue;
        // Store bit-reversed so BitWriter's LSB-first write emits the code
        // MSB-first as DEFLATE requires.
        codes_[s] = nx::checked_cast<uint16_t>(
            util::reverseBits(nextCode[len]++, len));
    }
}

uint64_t
HuffmanCode::costBits(std::span<const uint64_t> freqs) const
{
    uint64_t bits = 0;
    for (size_t s = 0; s < freqs.size() && s < lengths_.size(); ++s)
        bits += freqs[s] * lengths_[s];
    return bits;
}

const HuffmanCode &
HuffmanCode::fixedLitLen()
{
    static const HuffmanCode code = [] {
        std::vector<uint8_t> lengths(288);
        for (size_t s = 0; s <= 143; ++s)
            lengths[s] = 8;
        for (size_t s = 144; s <= 255; ++s)
            lengths[s] = 9;
        for (size_t s = 256; s <= 279; ++s)
            lengths[s] = 7;
        for (size_t s = 280; s <= 287; ++s)
            lengths[s] = 8;
        return HuffmanCode(lengths);
    }();
    return code;
}

const HuffmanCode &
HuffmanCode::fixedDist()
{
    static const HuffmanCode code = [] {
        std::vector<uint8_t> lengths(30, 5);
        return HuffmanCode(lengths);
    }();
    return code;
}

bool
HuffmanDecodeTable::init(std::span<const uint8_t> lengths, int max_bits)
{
    maxBits_ = max_bits;
    const auto maxBits = static_cast<size_t>(max_bits);
    table_.assign(size_t{1} << maxBits, Entry{});

    // Canonical codes, not reversed this time — we build the table by
    // enumerating all suffix-extended windows of each code.
    std::vector<int> blCount(maxBits + 1, 0);
    for (uint8_t l : lengths) {
        if (l > max_bits)
            return false;
        ++blCount[l];
    }
    blCount[0] = 0;

    // Kraft check: reject over-subscribed codes; allow incomplete codes
    // only in the degenerate 1-symbol case (common in dynamic headers).
    uint64_t kraft = 0;
    int usedSymbols = 0;
    for (size_t bits = 1; bits <= maxBits; ++bits) {
        kraft += static_cast<uint64_t>(blCount[bits])
            << (maxBits - bits);
        usedSymbols += blCount[bits];
    }
    uint64_t budget = 1ull << maxBits;
    if (kraft > budget)
        return false;
    if (kraft < budget && usedSymbols > 1)
        return false;
    if (usedSymbols == 0)
        return false;

    std::vector<uint32_t> nextCode(maxBits + 2, 0);
    uint32_t code = 0;
    for (size_t bits = 1; bits <= maxBits; ++bits) {
        code = (code + nx::checked_cast<uint32_t>(blCount[bits - 1])) << 1;
        nextCode[bits] = code;
    }

    for (size_t s = 0; s < lengths.size(); ++s) {
        uint8_t len = lengths[s];
        if (len == 0)
            continue;
        uint32_t c = nextCode[len]++;
        uint32_t reversed = util::reverseBits(c, len);
        // Every window whose low `len` bits equal `reversed` maps to s.
        uint32_t step = 1u << len;
        for (uint32_t w = reversed; w < (1u << maxBits); w += step) {
            table_[w].symbol = nx::checked_cast<int16_t>(s);
            table_[w].length = len;
        }
    }
    return true;
}

} // namespace deflate
