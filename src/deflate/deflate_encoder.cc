#include "deflate/deflate_encoder.h"

#include <algorithm>
#include "util/checked.h"

namespace deflate {

void
SymbolFreqs::accumulate(std::span<const Token> tokens)
{
    for (const Token &t : tokens) {
        if (t.isLiteral()) {
            ++litlen[static_cast<size_t>(t.literal)];
        } else {
            ++litlen[static_cast<size_t>(lengthToCode(t.length))];
            ++dist[static_cast<size_t>(distToCode(t.dist))];
        }
    }
    ++litlen[kEob];
}

BlockCodes
buildDynamicCodes(const SymbolFreqs &freqs)
{
    BlockCodes bc;
    bc.litlenLengths = buildCodeLengths(freqs.litlen, kMaxBits);
    bc.distLengths = buildCodeLengths(freqs.dist, kMaxBits);
    // RFC 1951: HDIST >= 1, i.e. at least one distance code is described.
    // If the block has no matches, describe a 1-length code for dist 0.
    bool any_dist = std::any_of(bc.distLengths.begin(),
                                bc.distLengths.end(),
                                [](uint8_t l) { return l != 0; });
    if (!any_dist)
        bc.distLengths[0] = 1;
    bc.litlen = HuffmanCode(bc.litlenLengths);
    bc.dist = HuffmanCode(bc.distLengths);
    return bc;
}

namespace {

/** One RLE-coded code-length symbol (16/17/18 carry extra bits). */
struct ClSym
{
    uint8_t sym;
    uint8_t extra;
    uint8_t extraBits;
};

/** RLE-encode code lengths per RFC 1951 3.2.7. */
std::vector<ClSym>
rleCodeLengths(std::span<const uint8_t> lengths)
{
    std::vector<ClSym> out;
    size_t i = 0;
    while (i < lengths.size()) {
        uint8_t v = lengths[i];
        size_t run = 1;
        while (i + run < lengths.size() && lengths[i + run] == v)
            ++run;
        if (v == 0) {
            size_t left = run;
            while (left >= 11) {
                size_t n = std::min<size_t>(left, 138);
                out.push_back({18, nx::checked_cast<uint8_t>(n - 11), 7});
                left -= n;
            }
            while (left >= 3) {
                size_t n = std::min<size_t>(left, 10);
                out.push_back({17, nx::checked_cast<uint8_t>(n - 3), 3});
                left -= n;
            }
            while (left > 0) {
                out.push_back({0, 0, 0});
                --left;
            }
        } else {
            out.push_back({v, 0, 0});
            size_t left = run - 1;
            while (left >= 3) {
                size_t n = std::min<size_t>(left, 6);
                out.push_back({16, nx::checked_cast<uint8_t>(n - 3), 2});
                left -= n;
            }
            while (left > 0) {
                out.push_back({v, 0, 0});
                --left;
            }
        }
        i += run;
    }
    return out;
}

/** Trailing-zero-trimmed length count with a floor. */
size_t
trimmedCount(std::span<const uint8_t> lengths, size_t min_count)
{
    size_t n = lengths.size();
    while (n > min_count && lengths[n - 1] == 0)
        --n;
    return n;
}

} // namespace

uint64_t
writeDynamicHeader(util::BitWriter &bw, const BlockCodes &codes)
{
    uint64_t start = bw.bitsWritten();

    size_t hlit = trimmedCount(codes.litlenLengths, 257);
    size_t hdist = trimmedCount(codes.distLengths, 1);

    // Concatenate the two trimmed length arrays and RLE-encode them.
    std::vector<uint8_t> all(codes.litlenLengths.begin(),
                             codes.litlenLengths.begin() +
                                 static_cast<long>(hlit));
    all.insert(all.end(), codes.distLengths.begin(),
               codes.distLengths.begin() + static_cast<long>(hdist));
    auto rle = rleCodeLengths(all);

    // Code-length-code from RLE symbol frequencies.
    std::vector<uint64_t> clFreq(kNumClc, 0);
    for (const ClSym &c : rle)
        ++clFreq[c.sym];
    auto clLengths = buildCodeLengths(clFreq, kMaxClcBits);
    // Degenerate single-symbol case already gets length 1; ensure at
    // least one coded symbol exists (rle is never empty here).
    HuffmanCode clCode(clLengths);

    size_t hclen = kNumClc;
    while (hclen > 4 && clLengths[kClcOrder[hclen - 1]] == 0)
        --hclen;

    bw.writeBits(nx::checked_cast<uint32_t>(hlit - 257), 5);
    bw.writeBits(nx::checked_cast<uint32_t>(hdist - 1), 5);
    bw.writeBits(nx::checked_cast<uint32_t>(hclen - 4), 4);
    for (size_t i = 0; i < hclen; ++i)
        bw.writeBits(clLengths[kClcOrder[i]], 3);
    for (const ClSym &c : rle) {
        clCode.writeSymbol(bw, c.sym);
        if (c.extraBits > 0)
            bw.writeBits(c.extra, c.extraBits);
    }
    return bw.bitsWritten() - start;
}

uint64_t
emitTokens(util::BitWriter &bw, std::span<const Token> tokens,
           const HuffmanCode &litlen, const HuffmanCode &dist)
{
    uint64_t start = bw.bitsWritten();
    for (const Token &t : tokens) {
        if (t.isLiteral()) {
            litlen.writeSymbol(bw, t.literal);
            continue;
        }
        int lc = lengthToCode(t.length);
        litlen.writeSymbol(bw, lc);
        auto li = static_cast<size_t>(lc - 257);
        unsigned lextra = kLengthExtra[li];
        if (lextra > 0)
            bw.writeBits(nx::checked_cast<uint32_t>(
                             t.length - kLengthBase[li]),
                         lextra);
        int dc = distToCode(t.dist);
        dist.writeSymbol(bw, dc);
        auto di = static_cast<size_t>(dc);
        unsigned dextra = kDistExtra[di];
        if (dextra > 0)
            bw.writeBits(nx::checked_cast<uint32_t>(t.dist - kDistBase[di]),
                         dextra);
    }
    litlen.writeSymbol(bw, kEob);
    return bw.bitsWritten() - start;
}

uint64_t
tokenCostBits(const SymbolFreqs &freqs, const HuffmanCode &litlen,
              const HuffmanCode &dist)
{
    uint64_t bits = litlen.costBits(freqs.litlen) +
        dist.costBits(freqs.dist);
    // Extra bits for length and distance codes.
    for (size_t c = 257; c < kNumLitLen; ++c)
        bits += freqs.litlen[c] * kLengthExtra[c - 257];
    for (size_t c = 0; c < kNumDist; ++c)
        bits += freqs.dist[c] * kDistExtra[c];
    return bits;
}

namespace {

/** Emit one stored block (BFINAL already decided by caller). */
void
writeStoredBlock(util::BitWriter &bw, std::span<const uint8_t> data,
                 bool final)
{
    bw.writeBits(final ? 1 : 0, 1);
    bw.writeBits(nx::checked_cast<uint32_t>(BlockType::Stored), 2);
    bw.alignToByte();
    auto len = nx::checked_cast<uint16_t>(data.size());
    bw.writeU16le(len);
    bw.writeU16le(nx::truncate_cast<uint16_t>(~len));
    bw.writeBytes(data);
}

} // namespace

DeflateResult
deflateCompress(std::span<const uint8_t> input, const DeflateOptions &opts)
{
    DeflateResult res;
    util::BitWriter bw;
    LevelParams params = levelParams(opts.level);
    Lz77Matcher matcher(params);

    size_t pos = 0;
    bool emitted_any = false;
    while (pos < input.size() || !emitted_any) {
        size_t n = std::min(opts.blockBytes, input.size() - pos);
        std::span<const uint8_t> chunk = input.subspan(pos, n);
        pos += n;
        bool final = pos >= input.size();
        emitted_any = true;

        if (params.store) {
            // Level 0: stored blocks, capped at 65535 bytes each.
            size_t off = 0;
            do {
                size_t sn = std::min<size_t>(chunk.size() - off, 65535);
                bool sub_final = final && off + sn >= chunk.size();
                writeStoredBlock(bw, chunk.subspan(off, sn), sub_final);
                ++res.storedBlocks;
                off += sn;
            } while (off < chunk.size());
            continue;
        }

        // Note: the matcher restarts per block, so matches do not cross
        // block boundaries. With >= 256 KiB blocks the ratio impact is
        // well under 1 %, matching zlib's behaviour at flush points.
        auto tokens = matcher.tokenize(chunk);
        res.tokenCount += tokens.size();
        res.chainSteps += matcher.chainSteps();

        SymbolFreqs freqs;
        freqs.accumulate(tokens);

        uint64_t fixed_cost = 3 + tokenCostBits(
            freqs, HuffmanCode::fixedLitLen(), HuffmanCode::fixedDist());

        if (opts.forceFixed) {
            bw.writeBits(final ? 1 : 0, 1);
            bw.writeBits(nx::checked_cast<uint32_t>(BlockType::FixedHuffman),
                         2);
            emitTokens(bw, tokens, HuffmanCode::fixedLitLen(),
                       HuffmanCode::fixedDist());
            ++res.fixedBlocks;
            continue;
        }

        BlockCodes codes = buildDynamicCodes(freqs);
        // Dynamic header cost is found by writing into a scratch writer.
        util::BitWriter scratch;
        uint64_t hdr_bits = writeDynamicHeader(scratch, codes);
        uint64_t dyn_cost = 3 + hdr_bits +
            tokenCostBits(freqs, codes.litlen, codes.dist);

        uint64_t stored_cost = (chunk.size() + 5 * (chunk.size() / 65535
            + 1)) * 8 + 8 /* worst-case align */;

        if (stored_cost < dyn_cost && stored_cost < fixed_cost) {
            size_t off = 0;
            do {
                size_t sn = std::min<size_t>(chunk.size() - off, 65535);
                bool sub_final = final && off + sn >= chunk.size();
                writeStoredBlock(bw, chunk.subspan(off, sn), sub_final);
                ++res.storedBlocks;
                off += sn;
            } while (off < chunk.size());
        } else if (fixed_cost <= dyn_cost) {
            bw.writeBits(final ? 1 : 0, 1);
            bw.writeBits(nx::checked_cast<uint32_t>(BlockType::FixedHuffman),
                         2);
            emitTokens(bw, tokens, HuffmanCode::fixedLitLen(),
                       HuffmanCode::fixedDist());
            ++res.fixedBlocks;
        } else {
            bw.writeBits(final ? 1 : 0, 1);
            bw.writeBits(nx::checked_cast<uint32_t>(BlockType::DynamicHuffman),
                         2);
            writeDynamicHeader(bw, codes);
            emitTokens(bw, tokens, codes.litlen, codes.dist);
            ++res.dynamicBlocks;
        }
    }

    res.bytes = bw.take();
    return res;
}

DeflateResult
deflateCompressWithDict(std::span<const uint8_t> input,
                        std::span<const uint8_t> dict,
                        const DeflateOptions &opts)
{
    // The streaming compressor already implements window priming;
    // one-shot-with-dictionary is a Finish-only stream.
    DeflateResult res;
    // deflate_stream.h is not included here to avoid a cycle; the
    // window-primed tokenizer path is reproduced directly.
    LevelParams params = levelParams(opts.level);
    if (params.store || input.empty())
        return deflateCompress(input, opts);

    std::span<const uint8_t> window = dict;
    if (window.size() > static_cast<size_t>(kWindowSize))
        window = window.subspan(window.size() - kWindowSize);

    util::BitWriter bw;
    Lz77Matcher matcher(params);
    std::vector<uint8_t> buf;
    buf.reserve(window.size() + opts.blockBytes);

    size_t pos = 0;
    while (pos < input.size()) {
        size_t n = std::min(opts.blockBytes, input.size() - pos);
        bool final = pos + n >= input.size();

        buf.assign(window.begin(), window.end());
        buf.insert(buf.end(), input.begin() + static_cast<long>(pos),
                   input.begin() + static_cast<long>(pos + n));
        auto tokens = matcher.tokenize(buf, window.size());
        res.tokenCount += tokens.size();
        res.chainSteps += matcher.chainSteps();

        SymbolFreqs freqs;
        freqs.accumulate(tokens);
        uint64_t fixed_cost = 3 + tokenCostBits(
            freqs, HuffmanCode::fixedLitLen(), HuffmanCode::fixedDist());
        BlockCodes codes = buildDynamicCodes(freqs);
        util::BitWriter scratch;
        uint64_t dyn_cost = 3 + writeDynamicHeader(scratch, codes) +
            tokenCostBits(freqs, codes.litlen, codes.dist);

        bw.writeBits(final ? 1 : 0, 1);
        if (fixed_cost <= dyn_cost) {
            bw.writeBits(nx::checked_cast<uint32_t>(
                             BlockType::FixedHuffman), 2);
            emitTokens(bw, tokens, HuffmanCode::fixedLitLen(),
                       HuffmanCode::fixedDist());
            ++res.fixedBlocks;
        } else {
            bw.writeBits(nx::checked_cast<uint32_t>(
                             BlockType::DynamicHuffman), 2);
            writeDynamicHeader(bw, codes);
            emitTokens(bw, tokens, codes.litlen, codes.dist);
            ++res.dynamicBlocks;
        }

        pos += n;
        // Subsequent blocks see the tail of everything emitted so far.
        window = std::span<const uint8_t>(input).subspan(
            pos > static_cast<size_t>(kWindowSize)
                ? pos - kWindowSize : 0,
            std::min<size_t>(pos, kWindowSize));
    }

    res.bytes = bw.take();
    return res;
}

} // namespace deflate
