/**
 * @file
 * Streaming DEFLATE decompressor: a resumable state machine that
 * accepts compressed input in arbitrary chunks and produces output as
 * soon as it is decodable — the decode-side counterpart of
 * DeflateStream, and the software mirror of how the accelerator's
 * decompressor consumes its source DDE as the DMA engine streams it.
 *
 * Unlike the one-shot inflateDecompress(), this class suspends and
 * resumes at any input-bit boundary: mid block header, mid symbol,
 * mid stored-block payload.
 */

#ifndef NXSIM_DEFLATE_INFLATE_STREAM_H
#define NXSIM_DEFLATE_INFLATE_STREAM_H

#include <cstdint>
#include <deque>
#include <span>
#include <vector>

#include "deflate/huffman.h"
#include "deflate/inflate_decoder.h"
#include "util/checked.h"
#include "util/protocol.h"
#include "util/taint.h"

namespace deflate {

/** Outcome of a feed() call. */
enum class StreamStatus
{
    NeedMoreInput,   ///< consumed everything decodable so far
    Done,            ///< final block fully decoded
    Error,           ///< malformed stream (see error())
};

/** Incremental inflater: feed() is the only mutator, callable any
 * number of times (it reports Done/Error through its return). */
NXSIM_PROTOCOL(InflateStream, feed*);
class InflateStream
{
  public:
    InflateStream() = default;

    /**
     * Feed more compressed bytes; decoded bytes are appended to
     * @p out. May be called with empty input to re-drive the machine.
     */
    [[nodiscard]] StreamStatus feed(NXSIM_UNTRUSTED std::span<const uint8_t> data,
                      std::vector<uint8_t> &out);

    /** True once the final block has been consumed. */
    bool done() const { return state_ == State::Done; }

    /** Error detail when feed() returned Error. */
    [[nodiscard]] InflateStatus error() const { return error_; }

    /** Total decompressed bytes produced. */
    uint64_t totalOut() const { return totalOut_; }

    /**
     * Unconsumed input bits currently buffered (diagnostics; after
     * Done this is the trailer/extra data the caller should reclaim).
     */
    size_t bufferedBits() const;

  private:
    /** Decode states. */
    enum class State
    {
        BlockHeader,
        StoredLen,
        StoredBody,
        DynHeaderCounts,
        DynCodeLengths,
        Symbols,
        Done,
        Error,
    };

    /** Bit-level input buffer that survives across feed() calls. */
    class BitBuffer
    {
      public:
        void
        append(std::span<const uint8_t> data)
        {
            bytes_.insert(bytes_.end(), data.begin(), data.end());
        }

        /** Bits available to read. */
        size_t
        available() const
        {
            return bitCount_ + (bytes_.size() - pos_) * 8;
        }

        /** Peek up to 32 bits (zero-padded past end). */
        uint32_t
        peek(unsigned nbits)
        {
            fill();
            return nx::truncate_cast<uint32_t>(buf_) &
                (nbits >= 32 ? 0xffffffffu : ((1u << nbits) - 1));
        }

        /** Consume nbits; caller must have checked available(). */
        void
        consume(unsigned nbits)
        {
            fill();
            buf_ >>= nbits;
            bitCount_ -= nbits;
        }

        /** Discard to byte boundary. */
        void
        align()
        {
            unsigned drop = bitCount_ % 8;
            buf_ >>= drop;
            bitCount_ -= drop;
        }

        /** Pop one whole byte (requires alignment + availability). */
        uint8_t
        popByte()
        {
            fill();
            auto b = nx::checked_cast<uint8_t>(buf_ & 0xff);
            buf_ >>= 8;
            bitCount_ -= 8;
            return b;
        }

        /** Drop storage already consumed (bounded memory). */
        void
        compact()
        {
            if (pos_ > 4096) {
                bytes_.erase(bytes_.begin(),
                             bytes_.begin() + static_cast<long>(pos_));
                pos_ = 0;
            }
        }

      private:
        void
        fill()
        {
            while (bitCount_ <= 56 && pos_ < bytes_.size()) {
                buf_ |= static_cast<uint64_t>(bytes_[pos_++])
                    << bitCount_;
                bitCount_ += 8;
            }
        }

        std::vector<uint8_t> bytes_;
        size_t pos_ = 0;
        uint64_t buf_ = 0;
        unsigned bitCount_ = 0;
    };

    /** Emit one output byte, maintaining the 32 KiB window. */
    void
    push(uint8_t b, std::vector<uint8_t> &out)
    {
        out.push_back(b);
        window_.push_back(b);
        if (window_.size() > static_cast<size_t>(kWindowSize))
            window_.pop_front();
        ++totalOut_;
    }

    bool stepBlockHeader();
    bool stepStoredLen();
    bool stepStoredBody(std::vector<uint8_t> &out);
    bool stepDynHeaderCounts();
    bool stepDynCodeLengths();
    bool stepSymbols(std::vector<uint8_t> &out);

    void
    fail(InflateStatus status)
    {
        state_ = State::Error;
        error_ = status;
    }

    State state_ = State::BlockHeader;
    InflateStatus error_ = InflateStatus::Ok;
    BitBuffer bits_;
    std::deque<uint8_t> window_;
    uint64_t totalOut_ = 0;

    // Per-block state.
    bool finalBlock_ = false;
    unsigned storedRemaining_ = 0;
    HuffmanDecodeTable litlen_;
    HuffmanDecodeTable dist_;
    // Dynamic-header parsing state.
    unsigned hlit_ = 0;
    unsigned hdist_ = 0;
    unsigned hclen_ = 0;
    unsigned clRead_ = 0;
    std::vector<uint8_t> clLengths_;
    HuffmanDecodeTable clTable_;
    std::vector<uint8_t> lengths_;
    // Pending match copy interrupted by output (never happens today,
    // matches are copied whole once decoded) — length decode state:
    bool haveLength_ = false;
    unsigned matchLength_ = 0;
};

} // namespace deflate

#endif // NXSIM_DEFLATE_INFLATE_STREAM_H
