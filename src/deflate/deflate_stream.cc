#include "deflate/deflate_stream.h"

#include <algorithm>
#include "util/contracts.h"
#include "util/checked.h"

namespace deflate {

DeflateStream::DeflateStream(const DeflateOptions &opts)
    : opts_(opts), matcher_(levelParams(opts.level))
{
}

void
DeflateStream::setDictionary(std::span<const uint8_t> dict)
{
    NXSIM_EXPECT(totalIn_ == 0 && !finished_,
                 "setDictionary after writing");
    if (dict.size() > static_cast<size_t>(kWindowSize))
        dict = dict.subspan(dict.size() - kWindowSize);
    window_.assign(dict.begin(), dict.end());
}

void
DeflateStream::write(std::span<const uint8_t> data, Flush flush,
                     std::vector<uint8_t> &out)
{
    NXSIM_EXPECT(!finished_, "write after Finish");
    pending_.insert(pending_.end(), data.begin(), data.end());
    totalIn_ += data.size();

    // Emit full blocks as they accumulate.
    while (pending_.size() >= opts_.blockBytes)
        emitBlock(false, false, out);

    switch (flush) {
      case Flush::None:
        break;
      case Flush::Sync:
        emitBlock(false, true, out);
        break;
      case Flush::Finish:
        emitBlock(true, false, out);
        finished_ = true;
        break;
    }
}

void
DeflateStream::emitBlock(bool final, bool sync,
                         std::vector<uint8_t> &out)
{
    // Take up to one block of pending input.
    size_t n = std::min(pending_.size(), opts_.blockBytes);

    if (n > 0 || final) {
        // Assemble [window | chunk] so matches can cross the boundary.
        std::vector<uint8_t> buf;
        buf.reserve(window_.size() + n);
        buf.insert(buf.end(), window_.begin(), window_.end());
        buf.insert(buf.end(), pending_.begin(),
                   pending_.begin() + static_cast<long>(n));

        std::span<const uint8_t> chunk(buf.data() + window_.size(), n);
        auto tokens = matcher_.tokenize(buf, window_.size());

        SymbolFreqs freqs;
        freqs.accumulate(tokens);
        uint64_t fixed_cost = 3 + tokenCostBits(
            freqs, HuffmanCode::fixedLitLen(), HuffmanCode::fixedDist());

        bool use_fixed = true;
        BlockCodes codes;
        uint64_t dyn_cost = UINT64_MAX;
        if (!opts_.forceFixed) {
            codes = buildDynamicCodes(freqs);
            util::BitWriter scratch;
            uint64_t hdr = writeDynamicHeader(scratch, codes);
            dyn_cost = 3 + hdr +
                tokenCostBits(freqs, codes.litlen, codes.dist);
            use_fixed = fixed_cost <= dyn_cost;
        }

        uint64_t stored_cost =
            (n + 5 * (n / 65535 + 1)) * 8 + 8;
        bool use_stored = !opts_.forceFixed &&
            stored_cost < std::min(fixed_cost, dyn_cost);

        if (use_stored) {
            size_t off = 0;
            do {
                size_t sn = std::min<size_t>(n - off, 65535);
                bool sub_final = final && off + sn >= n;
                bw_.writeBits(sub_final ? 1 : 0, 1);
                bw_.writeBits(0, 2);
                bw_.alignToByte();
                auto len = nx::checked_cast<uint16_t>(sn);
                bw_.writeU16le(len);
                bw_.writeU16le(nx::truncate_cast<uint16_t>(~len));
                bw_.writeBytes(chunk.subspan(off, sn));
                off += sn;
            } while (off < n);
            if (final)
                emittedFinal_ = true;
        } else {
            bw_.writeBits(final ? 1 : 0, 1);
            if (use_fixed) {
                bw_.writeBits(
                    nx::checked_cast<uint32_t>(BlockType::FixedHuffman), 2);
                emitTokens(bw_, tokens, HuffmanCode::fixedLitLen(),
                           HuffmanCode::fixedDist());
            } else {
                bw_.writeBits(
                    nx::checked_cast<uint32_t>(BlockType::DynamicHuffman),
                    2);
                writeDynamicHeader(bw_, codes);
                emitTokens(bw_, tokens, codes.litlen, codes.dist);
            }
            if (final)
                emittedFinal_ = true;
        }

        // Update the carry window with the newly consumed bytes.
        window_.insert(window_.end(), chunk.begin(), chunk.end());
        if (window_.size() > static_cast<size_t>(kWindowSize)) {
            window_.erase(window_.begin(),
                          window_.end() - kWindowSize);
        }
        pending_.erase(pending_.begin(),
                       pending_.begin() + static_cast<long>(n));
    }

    if (sync) {
        // Z_SYNC_FLUSH marker: empty non-final stored block, which
        // also byte-aligns the stream (00 00 FF FF after the header).
        bw_.writeBits(0, 1);
        bw_.writeBits(0, 2);
        bw_.alignToByte();
        bw_.writeU16le(0);
        bw_.writeU16le(0xffff);
    }

    if (final) {
        NXSIM_ASSERT(emittedFinal_);
        bw_.alignToByte();
    }

    auto bytes = final ? bw_.take() : bw_.drain();
    totalOut_ += bytes.size();
    out.insert(out.end(), bytes.begin(), bytes.end());
}

} // namespace deflate
