/**
 * @file
 * gzip (RFC 1952) container framing around raw DEFLATE: 10-byte header,
 * optional name field, CRC-32 + ISIZE trailer. This is the wire format
 * both the software path and the accelerator path produce, and what the
 * POWER9/z15 accelerators accept natively (gzip/zlib/raw selectable in
 * the CRB function code).
 */

#ifndef NXSIM_DEFLATE_GZIP_STREAM_H
#define NXSIM_DEFLATE_GZIP_STREAM_H

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "deflate/inflate_decoder.h"
#include "util/taint.h"

namespace deflate {

/** Parsed gzip member header fields we care about. */
struct GzipHeader
{
    uint8_t flags = 0;
    uint32_t mtime = 0;
    std::string name;
    std::string comment;
    std::vector<uint8_t> extra;
    bool hcrcPresent = false;
    bool hcrcValid = false;
};

/** Header options for gzipWrapEx (full RFC 1952 field support). */
struct GzipWriteOptions
{
    std::string name;
    std::string comment;
    std::vector<uint8_t> extra;    ///< FEXTRA payload (subfields)
    uint32_t mtime = 0;
    bool headerCrc = false;        ///< emit FHCRC
};

/** Wrap a raw DEFLATE stream in a gzip member. */
std::vector<uint8_t> gzipWrap(std::span<const uint8_t> deflate_stream,
                              std::span<const uint8_t> original,
                              const std::string &name = {});

/** Wrap with full header-field control. */
std::vector<uint8_t> gzipWrapEx(std::span<const uint8_t> deflate_stream,
                                std::span<const uint8_t> original,
                                const GzipWriteOptions &opts);

/** Result of unwrapping a gzip member. */
struct GzipUnwrapResult
{
    bool ok = false;
    std::string error;
    GzipHeader header;
    InflateResult inflate;
    /** Total bytes of this member (header + payload + trailer). */
    size_t memberBytes = 0;
};

/** Parse the header, inflate the payload, verify CRC-32 and ISIZE. */
[[nodiscard]] GzipUnwrapResult
gzipUnwrap(NXSIM_UNTRUSTED std::span<const uint8_t> member);

/** Result of unwrapping a whole (possibly multi-member) gzip file. */
struct GzipFileResult
{
    bool ok = false;
    std::string error;
    std::vector<uint8_t> bytes;      ///< concatenated payloads
    size_t members = 0;
};

/**
 * Decode a gzip file that may contain several concatenated members
 * (the `cat a.gz b.gz` form gunzip accepts).
 */
[[nodiscard]] GzipFileResult
gzipUnwrapAll(NXSIM_UNTRUSTED std::span<const uint8_t> file);

} // namespace deflate

#endif // NXSIM_DEFLATE_GZIP_STREAM_H
