/**
 * @file
 * LZ77 string matching with hash chains and lazy evaluation — the same
 * algorithm family as zlib's deflate_slow/deflate_fast, parameterised by
 * the per-level tuning knobs in LevelParams.
 *
 * The matcher turns an input buffer into a stream of Tokens (literal or
 * length/distance reference). Token streams are the interchange format
 * between the match stage and the entropy-coding stage in both the
 * software codec and the accelerator model.
 */

#ifndef NXSIM_DEFLATE_LZ77_H
#define NXSIM_DEFLATE_LZ77_H

#include <cstdint>
#include <span>
#include <vector>

#include "deflate/constants.h"
#include "deflate/level_params.h"
#include "util/checked.h"

namespace deflate {

/** One LZ77 token: a literal byte or a (length, distance) back-reference. */
struct Token
{
    uint16_t length = 0;    // 0 => literal
    uint16_t dist = 0;      // 1..32768 for matches
    uint8_t literal = 0;    // valid when length == 0

    static Token
    lit(uint8_t b)
    {
        return Token{0, 0, b};
    }

    static Token
    match(int len, int d)
    {
        return Token{nx::checked_cast<uint16_t>(len),
                     nx::checked_cast<uint16_t>(d), 0};
    }

    bool isLiteral() const { return length == 0; }
};

/** Aggregate statistics of a token stream, used by cost models. */
struct TokenStats
{
    uint64_t literals = 0;
    uint64_t matches = 0;
    uint64_t matchedBytes = 0;

    /** Bytes of input the stream covers. */
    uint64_t coveredBytes() const { return literals + matchedBytes; }
};

/** Compute aggregate stats of @p tokens. */
TokenStats summarize(std::span<const Token> tokens);

/**
 * Verify that a token stream reproduces @p input exactly (every match
 * points inside the 32 KB window at previously emitted data). Used by
 * tests and by the accelerator model's self-check mode.
 */
bool tokensReproduce(std::span<const Token> tokens,
                     std::span<const uint8_t> input);

/** Expand a token stream back into bytes (reference decoder for tests). */
std::vector<uint8_t> expandTokens(std::span<const Token> tokens);

/**
 * Hash-chain LZ77 matcher.
 *
 * Single-shot: feed the whole buffer, get the whole token stream. The
 * window behaviour (max distance 32 KB) matches streaming zlib; only the
 * buffering model differs, which does not affect ratio.
 */
class Lz77Matcher
{
  public:
    explicit Lz77Matcher(const LevelParams &params);

    /** Tokenize @p input. Deterministic for a given (input, params). */
    std::vector<Token> tokenize(std::span<const uint8_t> input);

    /**
     * Tokenize @p input starting at byte @p start, treating bytes
     * [0, start) as already-emitted history: they are inserted into
     * the hash table and matches may reference them, but no tokens
     * are produced for them. This is the streaming-compression
     * primitive — the caller passes [last-32K-window | new chunk].
     */
    std::vector<Token> tokenize(std::span<const uint8_t> input,
                                size_t start);

    /** Number of hash-chain links walked during the last tokenize(). */
    uint64_t chainSteps() const { return chainSteps_; }

  private:
    /** 3-byte rolling hash, zlib-style. */
    static uint32_t
    hash3(const uint8_t *p)
    {
        uint32_t v = nx::checked_cast<uint32_t>(p[0]) |
            (nx::checked_cast<uint32_t>(p[1]) << 8) |
            (nx::checked_cast<uint32_t>(p[2]) << 16);
        return (v * 0x9e3779b1u) >> (32 - kHashBits);
    }

    /**
     * Longest match at @p pos against chain candidates.
     * @return length (0 or >= kMinMatch) and sets @p match_dist
     */
    int findMatch(std::span<const uint8_t> in, size_t pos, int max_chain,
                  int nice_length, int &match_dist);

    void insert(std::span<const uint8_t> in, size_t pos);

    static constexpr int kHashBits = 15;
    static constexpr uint32_t kNoPos = 0xffffffffu;

    LevelParams params_;
    std::vector<uint32_t> head_;   // hash -> most recent position
    std::vector<uint32_t> prev_;   // position & window mask -> older pos
    uint64_t chainSteps_ = 0;
};

} // namespace deflate

#endif // NXSIM_DEFLATE_LZ77_H
