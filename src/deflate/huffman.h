/**
 * @file
 * Canonical Huffman coding for DEFLATE alphabets.
 *
 * Three layers:
 *  - buildCodeLengths(): frequencies -> length-limited code lengths
 *    (Huffman tree via a heap, with zlib-style overflow fix-up to respect
 *    the 15-bit / 7-bit limits);
 *  - HuffmanCode: code lengths -> canonical codes ready for a BitWriter;
 *  - HuffmanDecodeTable: code lengths -> single-level lookup table for the
 *    inflater (peek kMaxBits, index, consume length).
 *
 * Both the software codec and the accelerator's Huffman stage use these.
 */

#ifndef NXSIM_DEFLATE_HUFFMAN_H
#define NXSIM_DEFLATE_HUFFMAN_H

#include <cstdint>
#include <span>
#include <vector>

#include "deflate/constants.h"
#include "util/bitstream.h"
#include "util/checked.h"

namespace deflate {

/**
 * Compute length-limited Huffman code lengths from symbol frequencies.
 *
 * @param freqs frequency of each symbol; zero-frequency symbols get
 *              length 0 (not coded)
 * @param max_bits maximum permitted code length (15 or 7 in DEFLATE)
 * @return per-symbol code lengths, Kraft-complete over used symbols
 *
 * If only one symbol has nonzero frequency it still receives length 1,
 * as DEFLATE requires at least one bit per coded symbol.
 */
std::vector<uint8_t> buildCodeLengths(std::span<const uint64_t> freqs,
                                      int max_bits);

/** A canonical Huffman code: per-symbol (code, length) pairs. */
class HuffmanCode
{
  public:
    HuffmanCode() = default;

    /** Build canonical codes from code lengths (RFC 1951 section 3.2.2). */
    explicit HuffmanCode(std::span<const uint8_t> lengths);

    /** Emit symbol @p sym (codes are emitted MSB-first via bit reversal). */
    void
    writeSymbol(util::BitWriter &bw, int sym) const
    {
        auto s = static_cast<size_t>(sym);
        bw.writeBits(codes_[s], lengths_[s]);
    }

    /** Code length of @p sym in bits (0 = not coded). */
    uint8_t
    length(int sym) const
    {
        return lengths_[static_cast<size_t>(sym)];
    }

    /** Bit-reversed (write-ready) code of @p sym. */
    uint16_t
    code(int sym) const
    {
        return codes_[static_cast<size_t>(sym)];
    }

    /** Number of symbols in the alphabet. */
    size_t size() const { return lengths_.size(); }

    /** Total encoded size in bits for a frequency vector. */
    uint64_t costBits(std::span<const uint64_t> freqs) const;

    /** The fixed literal/length code of RFC 1951 section 3.2.6. */
    static const HuffmanCode &fixedLitLen();

    /** The fixed distance code (all 5-bit). */
    static const HuffmanCode &fixedDist();

  private:
    std::vector<uint16_t> codes_;
    std::vector<uint8_t> lengths_;
};

/**
 * Single-level decode table: peek kMaxBits bits, index, get (symbol, len).
 *
 * 2^15 entries * 4 bytes = 128 KiB per table; fine for a simulator. The
 * accelerator model reports its own (smaller, two-level) table in the
 * area inventory; functional decode goes through this class.
 */
class HuffmanDecodeTable
{
  public:
    HuffmanDecodeTable() = default;

    /**
     * Build from code lengths.
     * @return false if lengths are not a valid (sub-)Kraft code.
     */
    bool init(std::span<const uint8_t> lengths, int max_bits = kMaxBits);

    /**
     * Decode one symbol from @p br.
     * @return symbol index, or -1 on invalid code / input overrun.
     */
    int
    decode(util::BitReader &br) const
    {
        uint32_t window = br.peekBits(nx::checked_cast<unsigned>(maxBits_));
        // nxtaint: allow(taint-index): peekBits(maxBits_) masks the
        // window to maxBits_ bits and table_ holds 1 << maxBits_
        // entries (see init), so the subscript is in range by
        // construction.
        Entry e = table_[window];
        if (e.length == 0)
            return -1;
        br.consumeBits(e.length);
        if (br.overrun())
            return -1;
        return e.symbol;
    }

    bool valid() const { return !table_.empty(); }

  private:
    struct Entry
    {
        int16_t symbol = -1;
        uint8_t length = 0;
    };

    std::vector<Entry> table_;
    int maxBits_ = 0;
};

} // namespace deflate

#endif // NXSIM_DEFLATE_HUFFMAN_H
