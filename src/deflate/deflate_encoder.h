/**
 * @file
 * Raw DEFLATE (RFC 1951) stream encoder.
 *
 * Pipeline: LZ77 tokenize -> per-block entropy decision (stored vs fixed
 * vs dynamic Huffman by exact bit cost, like zlib's _tr_flush_block) ->
 * canonical Huffman emission including the code-length-code header.
 *
 * The encoder is also reused piecemeal by the accelerator model: the
 * token-to-bits path (emitBlock with caller-supplied codes) is exactly
 * what the hardware Huffman stage performs.
 */

#ifndef NXSIM_DEFLATE_DEFLATE_ENCODER_H
#define NXSIM_DEFLATE_DEFLATE_ENCODER_H

#include <cstdint>
#include <span>
#include <vector>

#include "deflate/huffman.h"
#include "deflate/lz77.h"
#include "util/bitstream.h"

namespace deflate {

/** Frequency histograms of a token stream over the two alphabets. */
struct SymbolFreqs
{
    std::vector<uint64_t> litlen = std::vector<uint64_t>(kNumLitLen, 0);
    std::vector<uint64_t> dist = std::vector<uint64_t>(kNumDist, 0);

    /** Count @p tokens plus one end-of-block symbol. */
    void accumulate(std::span<const Token> tokens);
};

/** A built pair of codes for one dynamic-Huffman block. */
struct BlockCodes
{
    HuffmanCode litlen;
    HuffmanCode dist;
    std::vector<uint8_t> litlenLengths;
    std::vector<uint8_t> distLengths;
};

/** Build optimal (two-pass) dynamic codes for a token stream. */
BlockCodes buildDynamicCodes(const SymbolFreqs &freqs);

/**
 * Emit the dynamic block header (HLIT/HDIST/HCLEN + code length codes +
 * RLE-coded lengths per RFC 1951 3.2.7).
 * @return bits written
 */
uint64_t writeDynamicHeader(util::BitWriter &bw, const BlockCodes &codes);

/**
 * Emit tokens + EOB using the given codes. Does not write the 3-bit block
 * header.
 * @return bits written
 */
uint64_t emitTokens(util::BitWriter &bw, std::span<const Token> tokens,
                    const HuffmanCode &litlen, const HuffmanCode &dist);

/** Exact bit cost of emitting tokens+EOB under the given codes. */
uint64_t tokenCostBits(const SymbolFreqs &freqs, const HuffmanCode &litlen,
                       const HuffmanCode &dist);

/** Encoder options. */
struct DeflateOptions
{
    int level = 6;              ///< zlib-style level 0..9
    size_t blockBytes = 1u << 18;  ///< input bytes per DEFLATE block

    /** Force fixed-Huffman blocks (accelerator FHT mode uses this path). */
    bool forceFixed = false;
};

/** Result of a deflate() call with cost accounting for the timing model. */
struct DeflateResult
{
    std::vector<uint8_t> bytes;      ///< raw DEFLATE stream
    uint64_t tokenCount = 0;
    uint64_t chainSteps = 0;         ///< LZ77 work metric
    uint64_t storedBlocks = 0;
    uint64_t fixedBlocks = 0;
    uint64_t dynamicBlocks = 0;
};

/** Compress @p input into a raw DEFLATE stream. */
[[nodiscard]] DeflateResult deflateCompress(std::span<const uint8_t> input,
                              const DeflateOptions &opts = {});

/**
 * Compress @p input with a preset dictionary: matches may reference
 * @p dict (its last 32 KiB) as if it immediately preceded the input —
 * zlib's deflateSetDictionary semantics. The decoder must be given
 * the same dictionary (inflateDecompressWithDict / zlib FDICT).
 */
[[nodiscard]] DeflateResult deflateCompressWithDict(std::span<const uint8_t> input,
                                      std::span<const uint8_t> dict,
                                      const DeflateOptions &opts = {});

} // namespace deflate

#endif // NXSIM_DEFLATE_DEFLATE_ENCODER_H
