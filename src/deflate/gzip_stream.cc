#include "deflate/gzip_stream.h"

#include "util/crc32.h"
#include "util/checked.h"
#include "util/taint.h"

namespace deflate {

namespace {
constexpr uint8_t kId1 = 0x1f;
constexpr uint8_t kId2 = 0x8b;
constexpr uint8_t kCmDeflate = 8;
constexpr uint8_t kFlagName = 0x08;
constexpr uint8_t kOsUnix = 3;
} // namespace

std::vector<uint8_t>
gzipWrap(std::span<const uint8_t> deflate_stream,
         std::span<const uint8_t> original, const std::string &name)
{
    GzipWriteOptions opts;
    opts.name = name;
    return gzipWrapEx(deflate_stream, original, opts);
}

std::vector<uint8_t>
gzipWrapEx(std::span<const uint8_t> deflate_stream,
           std::span<const uint8_t> original,
           const GzipWriteOptions &opts)
{
    std::vector<uint8_t> out;
    out.reserve(deflate_stream.size() + 24 + opts.name.size() +
                opts.comment.size() + opts.extra.size());
    uint8_t flg = 0;
    if (!opts.extra.empty())
        flg |= 0x04;    // FEXTRA
    if (!opts.name.empty())
        flg |= kFlagName;
    if (!opts.comment.empty())
        flg |= 0x10;    // FCOMMENT
    if (opts.headerCrc)
        flg |= 0x02;    // FHCRC

    out.push_back(kId1);
    out.push_back(kId2);
    out.push_back(kCmDeflate);
    out.push_back(flg);
    for (int i = 0; i < 4; ++i)
        out.push_back(nx::checked_cast<uint8_t>(
            (opts.mtime >> (8 * i)) & 0xff));
    out.push_back(0);        // XFL
    out.push_back(kOsUnix);  // OS
    if (!opts.extra.empty()) {
        auto xlen = nx::checked_cast<uint16_t>(opts.extra.size());
        out.push_back(nx::checked_cast<uint8_t>(xlen & 0xff));
        out.push_back(nx::checked_cast<uint8_t>(xlen >> 8));
        out.insert(out.end(), opts.extra.begin(), opts.extra.end());
    }
    if (!opts.name.empty()) {
        out.insert(out.end(), opts.name.begin(), opts.name.end());
        out.push_back(0);
    }
    if (!opts.comment.empty()) {
        out.insert(out.end(), opts.comment.begin(),
                   opts.comment.end());
        out.push_back(0);
    }
    if (opts.headerCrc) {
        // CRC16 of everything written so far (low 16 bits of CRC-32).
        uint16_t hcrc = nx::checked_cast<uint16_t>(
            util::crc32(out) & 0xffff);
        out.push_back(nx::checked_cast<uint8_t>(hcrc & 0xff));
        out.push_back(nx::checked_cast<uint8_t>(hcrc >> 8));
    }
    out.insert(out.end(), deflate_stream.begin(), deflate_stream.end());

    uint32_t crc = util::crc32(original);
    auto isize = nx::truncate_cast<uint32_t>(original.size());
    for (int i = 0; i < 4; ++i)
        out.push_back(nx::checked_cast<uint8_t>((crc >> (8 * i)) & 0xff));
    for (int i = 0; i < 4; ++i)
        out.push_back(nx::checked_cast<uint8_t>((isize >> (8 * i)) & 0xff));
    return out;
}

GzipUnwrapResult
gzipUnwrap(NXSIM_UNTRUSTED std::span<const uint8_t> member)
{
    GzipUnwrapResult res;
    if (member.size() < 18) {
        res.error = "member too short";
        return res;
    }
    if (member[0] != kId1 || member[1] != kId2) {
        res.error = "bad magic";
        return res;
    }
    if (member[2] != kCmDeflate) {
        res.error = "unsupported compression method";
        return res;
    }
    uint8_t flg = member[3];
    res.header.flags = flg;
    res.header.mtime = nx::checked_cast<uint32_t>(member[4]) |
        (nx::checked_cast<uint32_t>(member[5]) << 8) |
        (nx::checked_cast<uint32_t>(member[6]) << 16) |
        (nx::checked_cast<uint32_t>(member[7]) << 24);

    size_t pos = 10;
    if (flg & 0x04) {    // FEXTRA
        if (pos + 2 > member.size()) {
            res.error = "truncated FEXTRA";
            return res;
        }
        size_t xlen = static_cast<size_t>(member[pos]) |
            (static_cast<size_t>(member[pos + 1]) << 8);
        pos += 2;
        if (pos + xlen > member.size()) {
            res.error = "truncated FEXTRA";
            return res;
        }
        res.header.extra.assign(member.begin() + static_cast<long>(pos),
                                member.begin() +
                                    static_cast<long>(pos + xlen));
        pos += xlen;
    }
    if (flg & kFlagName) {
        while (pos < member.size() && member[pos] != 0)
            res.header.name.push_back(nx::truncate_cast<char>(member[pos++]));
        ++pos;    // NUL
    }
    if (flg & 0x10) {    // FCOMMENT
        while (pos < member.size() && member[pos] != 0)
            res.header.comment.push_back(
                nx::truncate_cast<char>(member[pos++]));
        ++pos;
    }
    if (flg & 0x02) {    // FHCRC
        res.header.hcrcPresent = true;
        if (pos + 2 > member.size()) {
            res.error = "truncated FHCRC";
            return res;
        }
        uint16_t want = nx::checked_cast<uint16_t>(
            member[pos] | (member[pos + 1] << 8));
        uint16_t got = nx::checked_cast<uint16_t>(
            util::crc32(member.subspan(0, pos)) & 0xffff);
        res.header.hcrcValid = want == got;
        pos += 2;
        if (!res.header.hcrcValid) {
            res.error = "header CRC mismatch";
            return res;
        }
    }
    if (pos + 8 > member.size()) {
        res.error = "truncated member";
        return res;
    }

    res.inflate = inflateDecompress(member.subspan(pos,
        member.size() - pos - 8));
    if (!res.inflate.ok()) {
        res.error = std::string("inflate: ") +
            toString(res.inflate.status);
        return res;
    }

    size_t tpos = pos + res.inflate.consumedBytes;
    if (tpos + 8 > member.size()) {
        res.error = "trailer overlaps payload";
        return res;
    }
    auto rd32 = [&](size_t p) {
        return nx::checked_cast<uint32_t>(member[p]) |
            (nx::checked_cast<uint32_t>(member[p + 1]) << 8) |
            (nx::checked_cast<uint32_t>(member[p + 2]) << 16) |
            (nx::checked_cast<uint32_t>(member[p + 3]) << 24);
    };
    uint32_t crc = rd32(tpos);
    uint32_t isize = rd32(tpos + 4);
    if (crc != util::crc32(res.inflate.bytes)) {
        res.error = "CRC mismatch";
        return res;
    }
    if (isize != nx::truncate_cast<uint32_t>(res.inflate.bytes.size())) {
        res.error = "ISIZE mismatch";
        return res;
    }
    res.memberBytes = tpos + 8;
    res.ok = true;
    return res;
}

GzipFileResult
gzipUnwrapAll(NXSIM_UNTRUSTED std::span<const uint8_t> file)
{
    GzipFileResult out;
    size_t off = 0;
    while (off < file.size()) {
        auto res = gzipUnwrap(file.subspan(off));
        if (!res.ok) {
            out.error = res.error;
            return out;
        }
        out.bytes.insert(out.bytes.end(), res.inflate.bytes.begin(),
                         res.inflate.bytes.end());
        ++out.members;
        off += res.memberBytes;
    }
    if (out.members == 0) {
        out.error = "empty file";
        return out;
    }
    out.ok = true;
    return out;
}

} // namespace deflate
