#include "deflate/level_params.h"

namespace deflate {

LevelParams
levelParams(int level)
{
    // Mirrors zlib's configuration_table: {good, lazy, nice, chain}.
    switch (level) {
      case 0:
        return {0, 0, 0, 0, 0, false, true};
      case 1:
        return {1, 4, 4, 8, 4, false, false};
      case 2:
        return {2, 4, 5, 16, 8, false, false};
      case 3:
        return {3, 4, 6, 32, 32, false, false};
      case 4:
        return {4, 4, 4, 16, 16, true, false};
      case 5:
        return {5, 8, 16, 32, 32, true, false};
      case 6:
        return {6, 8, 16, 128, 128, true, false};
      case 7:
        return {7, 8, 32, 128, 256, true, false};
      case 8:
        return {8, 32, 128, 258, 1024, true, false};
      case 9:
      default:
        return {9, 32, 258, 258, 4096, true, false};
    }
}

} // namespace deflate
