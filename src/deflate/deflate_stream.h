/**
 * @file
 * Streaming DEFLATE compressor — the z_stream-shaped API.
 *
 * Accepts input in arbitrary chunks and emits a single conforming
 * DEFLATE stream. Matches may reference the previous 32 KiB across
 * chunk boundaries (window carry), exactly like zlib's streaming
 * deflate. Three flush semantics:
 *
 *  - Flush::None    buffer until a full block accumulates;
 *  - Flush::Sync    end the current block and emit the empty-stored
 *                   sync marker (00 00 FF FF) so the receiver can
 *                   decode everything written so far (Z_SYNC_FLUSH);
 *  - Flush::Finish  end the stream (final block).
 *
 * The accelerator analogue: each CRB is one request, but the CRB
 * carries window-continuation state between calls on z15 (and libnxz
 * emulates it on POWER9); this class is the software equivalent used
 * by the streaming tests and the CLI tool.
 */

#ifndef NXSIM_DEFLATE_DEFLATE_STREAM_H
#define NXSIM_DEFLATE_DEFLATE_STREAM_H

#include <cstdint>
#include <span>
#include <vector>

#include "deflate/deflate_encoder.h"
#include "deflate/lz77.h"
#include "util/protocol.h"

namespace deflate {

/** Flush semantics for DeflateStream::write(). */
enum class Flush
{
    None,
    Sync,
    Finish,
};

/** Incremental DEFLATE compressor with 32 KiB window carry. */
NXSIM_PROTOCOL(DeflateStream,
               setDictionary? -> write* -> write[Finish]);
class DeflateStream
{
  public:
    explicit DeflateStream(const DeflateOptions &opts = {});

    /**
     * Prime the match window with a preset dictionary (zlib
     * deflateSetDictionary semantics). Must be called before the
     * first write(); only the last 32 KiB are retained.
     */
    void setDictionary(std::span<const uint8_t> dict);

    /**
     * Feed @p data; append any produced bytes to @p out.
     *
     * After Flush::Finish no more input is accepted. Multiple Sync
     * flushes are permitted, including with no intervening input.
     */
    void write(std::span<const uint8_t> data, Flush flush,
               std::vector<uint8_t> &out);

    /** True once Finish has been processed. */
    bool finished() const { return finished_; }

    /** Total input bytes consumed so far. */
    uint64_t totalIn() const { return totalIn_; }

    /** Total output bytes produced so far. */
    uint64_t totalOut() const { return totalOut_; }

  private:
    /** Compress everything pending into one block. */
    void emitBlock(bool final, bool sync, std::vector<uint8_t> &out);

    DeflateOptions opts_;
    Lz77Matcher matcher_;
    std::vector<uint8_t> window_;    ///< last <= 32 KiB of past input
    std::vector<uint8_t> pending_;   ///< not yet compressed
    util::BitWriter bw_;
    bool finished_ = false;
    bool emittedFinal_ = false;
    uint64_t totalIn_ = 0;
    uint64_t totalOut_ = 0;
};

} // namespace deflate

#endif // NXSIM_DEFLATE_DEFLATE_STREAM_H
