/**
 * @file
 * Cycle-level model of the multi-byte-per-cycle LZ77 match pipeline.
 *
 * Each cycle the pipe accepts a row of W input bytes (W = 4 on POWER9,
 * 8 on z15). For every row position not already covered by an accepted
 * match, the engine looks up the banked hash table, extends the
 * candidate matches against the 32 KB history buffer, and greedily
 * accepts the longest one >= minMatch. Bank conflicts within a row cost
 * stall cycles (each bank serves one access per cycle).
 *
 * The model is *functional and timed at once*: it emits a real token
 * stream (verified reproducible by tests) and, from the same walk,
 * derives the cycle count:
 *
 *   cycles = rows + bankStalls
 *   rows   = ceil(n / W)                (input streaming floor)
 *   stalls = sum over rows of (max bank load - 1)
 *
 * Long matches reduce lookups (covered positions skip the table), which
 * is why highly compressible data runs *faster* than incompressible
 * data — a first-order effect the paper's throughput plots show.
 */

#ifndef NXSIM_NX_MATCH_PIPELINE_H
#define NXSIM_NX_MATCH_PIPELINE_H

#include <cstdint>
#include <span>
#include <vector>

#include "deflate/lz77.h"
#include "nx/hash_table.h"
#include "nx/nx_config.h"
#include "sim/ticks.h"
#include "util/stats.h"

namespace nx {

/** Outcome of one pass through the match pipe. */
struct MatchResult
{
    std::vector<deflate::Token> tokens;
    sim::Tick cycles = 0;          ///< total match-stage cycles
    uint64_t rows = 0;             ///< streaming cycles (no stalls)
    uint64_t bankStallCycles = 0;
    uint64_t lookups = 0;
    uint64_t candidatesTried = 0;
    uint64_t matches = 0;
    uint64_t matchedBytes = 0;
};

/** The hardware LZ77 stage. */
class MatchPipeline
{
  public:
    explicit MatchPipeline(const NxConfig &cfg);

    /**
     * Tokenize @p input, counting cycles.
     *
     * @param input whole source of one CRB (window resets at entry,
     *              as the hardware resets per request)
     */
    [[nodiscard]] MatchResult run(std::span<const uint8_t> input);

    /** Cumulative event counters across run() calls. */
    const util::StatSet &stats() const { return stats_; }

  private:
    /** Longest valid match at @p pos among table candidates. */
    int bestMatch(std::span<const uint8_t> in, size_t pos,
                  uint64_t &tried, int &out_dist) const;

    NxConfig cfg_;
    BankedHashTable table_;
    util::StatSet stats_;
};

} // namespace nx

#endif // NXSIM_NX_MATCH_PIPELINE_H
