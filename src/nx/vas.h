/**
 * @file
 * Virtual Accelerator Switchboard (VAS) model: user-mode job dispatch
 * and queueing in front of the chip's compression engines.
 *
 * On POWER9, a user thread memory-maps a VAS "window" and issues a CRB
 * with a single `paste` instruction — no system call, no interrupt on
 * the submit path. The switchboard enqueues the CRB on the accelerator
 * unit's receive FIFO; free engines pop requests in order. z15 reaches
 * its unit through a CP-chip-local queue with the same shape.
 *
 * This file provides a discrete-event simulation of that path for the
 * scaling experiments: many requester threads (closed-loop) feeding a
 * chip's engines, measuring aggregate throughput, queue depth and
 * latency percentiles. Service times come from the same closed-form
 * timing the cycle-level engines produce, so the two layers agree.
 */

#ifndef NXSIM_NX_VAS_H
#define NXSIM_NX_VAS_H

#include <cstdint>
#include <vector>

#include "nx/nx_config.h"
#include "nx/window.h"
#include "sim/event_queue.h"
#include "sim/ticks.h"
#include "util/stats.h"

namespace nx {

/** Closed-form service model of one compress/decompress engine. */
struct ServiceModel
{
    NxConfig cfg;

    /**
     * Engine-occupancy cycles for one compress job of @p bytes
     * (dispatch overhead is charged to the engine, as the engine
     * front-end fetches and decodes the CRB).
     */
    sim::Tick
    compressCycles(uint64_t bytes) const
    {
        sim::Tick stream = std::max<sim::Tick>(
            sim::ceilDiv(bytes,
                static_cast<uint64_t>(cfg.compressBytesPerCycle)),
            sim::DmaPort(cfg.dmaIn).transferCycles(bytes));
        return cfg.dispatchCycles + stream + cfg.completionCycles;
    }

    /** Engine-occupancy cycles for one decompress job. */
    sim::Tick
    decompressCycles(uint64_t out_bytes) const
    {
        sim::Tick stream = sim::ceilDiv(out_bytes,
            static_cast<uint64_t>(cfg.decompressBytesPerCycle));
        return cfg.dispatchCycles + stream + cfg.completionCycles;
    }
};

/**
 * Alias under the name the benches and docs use: the analytic VAS/
 * engine model that measured JobServer percentiles are cross-checked
 * against (E6, A6).
 */
using VasModel = ServiceModel;

/** Configuration of one scaling simulation. */
struct VasSimConfig
{
    NxConfig chip;                 ///< engine + queue parameters
    int requesters = 8;            ///< closed-loop submitting threads
    uint64_t jobBytes = 1 << 20;   ///< source size per job
    sim::Tick thinkCycles = 2000;  ///< requester gap between jobs
    sim::Tick warmupCycles = 200000;
    sim::Tick horizonCycles = 10000000;
    bool decompress = false;

    /**
     * Open-arrival mode: instead of closed-loop requesters, jobs
     * arrive as a Poisson process at @p arrivalsPerSec (requesters is
     * then ignored). The regime of interest is latency vs offered
     * load approaching the engine's service rate.
     */
    bool openArrival = false;
    double arrivalsPerSec = 0.0;
    uint64_t seed = 1;

    /**
     * Receive-FIFO model. The default (fifoDepth 0, unbounded) keeps
     * the legacy analytic behaviour; a bounded window busy-rejects
     * pastes when full and the requester retries after
     * window.retryCycles — the same contract core::JobServer enforces
     * with real threads.
     */
    WindowConfig window{.fifoDepth = 0};
};

/** Results of one scaling simulation. */
struct VasSimResult
{
    double aggregateBps = 0.0;       ///< source bytes/s through engines
    double utilization = 0.0;        ///< engine busy fraction
    double meanQueueDepth = 0.0;
    double meanLatencyCycles = 0.0;  ///< paste-to-CSB mean
    double p99LatencyCycles = 0.0;
    uint64_t jobsCompleted = 0;
    uint64_t busyRejects = 0;        ///< pastes bounced off a full FIFO
};

/** Run a closed-loop multi-requester simulation of one chip. */
[[nodiscard]] VasSimResult simulateChip(const VasSimConfig &cfg);

/**
 * Aggregate rate of a multi-chip system (chips are independent: VAS
 * windows bind a requester to its local chip's unit).
 */
[[nodiscard]] VasSimResult simulateSystem(const VasSimConfig &per_chip, int chips);

} // namespace nx

#endif // NXSIM_NX_VAS_H
