/**
 * @file
 * Accelerator page-fault handling model.
 *
 * The NX engines access user memory through address translation; a
 * miss on a page the OS has not resident yields CSB condition code
 * "translation fault" with the faulting address and the count of bytes
 * already processed. The library then either (a) touches the faulting
 * page and resubmits the CRB starting at the reported offset, or (b)
 * proactively touches every source/target page before first submission
 * ("touch pages" protocol), trading a known up-front cost for fault-free
 * execution. The paper discusses this software protocol as part of the
 * user-mode integration story; this model reproduces the throughput
 * effect of both strategies under a sweepable fault probability.
 */

#ifndef NXSIM_NX_PAGE_FAULT_MODEL_H
#define NXSIM_NX_PAGE_FAULT_MODEL_H

#include <cstdint>

#include "nx/nx_config.h"
#include "sim/ticks.h"
#include "util/prng.h"

namespace nx {

/** Strategy the submitting library uses against faults. */
enum class FaultStrategy
{
    ResubmitOnFault,   ///< run, fault, touch one page, resubmit
    TouchPagesFirst,   ///< pre-touch all pages, then run fault-free
};

/** Parameters of one fault-model run. */
struct FaultModelConfig
{
    NxConfig chip;
    uint64_t jobBytes = 1 << 20;
    double faultProbPerPage = 0.0;   ///< P(source page not resident)
    uint64_t pageBytes = 4096;
    /** OS cost to make one page resident (cycles on the core). */
    sim::Tick faultServiceCycles = 20000;    // ~10 us at 2 GHz
    /** Core cost to touch one already-resident page. */
    sim::Tick touchCycles = 200;
    FaultStrategy strategy = FaultStrategy::ResubmitOnFault;
    uint64_t seed = 1;
    int jobs = 100;
};

/** Aggregate outcome. */
struct FaultModelResult
{
    double effectiveBps = 0.0;      ///< goodput incl. fault overhead
    double faultFreeBps = 0.0;      ///< same jobs with zero faults
    double slowdown = 1.0;          ///< faultFree / effective
    double meanResubmits = 0.0;     ///< CRB resubmissions per job
    uint64_t totalFaults = 0;
};

/** Run the model. */
[[nodiscard]] FaultModelResult runFaultModel(const FaultModelConfig &cfg);

} // namespace nx

#endif // NXSIM_NX_PAGE_FAULT_MODEL_H
