#include "nx/match_pipeline.h"

#include <algorithm>
#include "util/checked.h"

namespace nx {

using deflate::kMaxMatch;
using deflate::kWindowSize;
using deflate::Token;

MatchPipeline::MatchPipeline(const NxConfig &cfg)
    : cfg_(cfg), table_(cfg.hash)
{
}

int
MatchPipeline::bestMatch(std::span<const uint8_t> in, size_t pos,
                         uint64_t &tried, int &out_dist) const
{
    size_t max_len = std::min<size_t>(kMaxMatch, in.size() - pos);
    if (max_len < static_cast<size_t>(cfg_.hash.minMatch))
        return 0;

    size_t limit = pos >= static_cast<size_t>(cfg_.windowBytes)
        ? pos - static_cast<size_t>(cfg_.windowBytes) + 1 : 0;
    const uint8_t *cur = in.data() + pos;

    int best_len = 0;
    int best_dist = 0;
    for (uint32_t cand : table_.lookup(table_.hashAt(cur))) {
        ++tried;
        if (cand >= pos || cand < limit)
            continue;    // stale entry outside the window
        const uint8_t *ref = in.data() + cand;
        size_t len = 0;
        while (len < max_len && ref[len] == cur[len])
            ++len;
        if (nx::checked_cast<int>(len) > best_len) {
            best_len = nx::checked_cast<int>(len);
            best_dist = nx::checked_cast<int>(pos - cand);
        }
    }
    if (best_len < cfg_.hash.minMatch)
        return 0;
    out_dist = best_dist;
    return best_len;
}

MatchResult
MatchPipeline::run(std::span<const uint8_t> input)
{
    MatchResult res;
    table_.clear();

    const size_t n = input.size();
    const auto W = static_cast<size_t>(cfg_.compressBytesPerCycle);
    res.rows = sim::ceilDiv(n, W == 0 ? 1 : W);

    // Per-row bank load tracking for stall accounting.
    std::vector<uint16_t> bankLoad(
        static_cast<size_t>(cfg_.hash.banks), 0);
    size_t currentRow = 0;
    uint16_t rowMaxLoad = 0;
    auto flushRow = [&]() {
        if (rowMaxLoad > 1)
            res.bankStallCycles += rowMaxLoad - 1;
        std::fill(bankLoad.begin(), bankLoad.end(), 0);
        rowMaxLoad = 0;
    };

    size_t pos = 0;
    while (pos < n) {
        size_t row = pos / W;
        if (row != currentRow) {
            flushRow();
            currentRow = row;
        }

        bool can_hash =
            pos + static_cast<size_t>(cfg_.hash.minMatch) <= n;
        uint32_t set = 0;
        if (can_hash) {
            set = table_.hashAt(input.data() + pos);
            int bank = table_.bankOf(set);
            ++res.lookups;
            uint16_t load = ++bankLoad[static_cast<size_t>(bank)];
            rowMaxLoad = std::max(rowMaxLoad, load);
        }

        int dist = 0;
        int len = can_hash
            ? bestMatch(input, pos, res.candidatesTried, dist) : 0;

        if (len > 0) {
            res.tokens.push_back(Token::match(len, dist));
            ++res.matches;
            res.matchedBytes += static_cast<uint64_t>(len);
            // The hardware inserts a bounded number of positions from
            // the match body (it cannot afford a table write per byte
            // of a 258-byte match). Inserting the *tail* keeps the
            // most recent window positions in the table, so runs and
            // periodic data keep matching at short distances.
            size_t end = pos + static_cast<size_t>(len);
            auto ins = [&](size_t p) {
                if (p + static_cast<size_t>(cfg_.hash.minMatch) <= n)
                    table_.insert(table_.hashAt(input.data() + p),
                                  nx::checked_cast<uint32_t>(p));
            };
            if (len <= 8) {
                for (size_t p = pos; p < end; ++p)
                    ins(p);
            } else {
                // Head keeps pattern starts findable; tail keeps the
                // most recent window positions hot (runs, periodic
                // data). Eight writes bound the port cost per match.
                for (size_t p = pos; p < pos + 4; ++p)
                    ins(p);
                for (size_t p = end - 4; p < end; ++p)
                    ins(p);
            }
            pos = end;
        } else {
            res.tokens.push_back(Token::lit(input[pos]));
            if (can_hash)
                table_.insert(set, nx::checked_cast<uint32_t>(pos));
            ++pos;
        }
    }
    flushRow();

    res.cycles = res.rows + res.bankStallCycles;

    stats_.inc("runs");
    stats_.inc("bytes", n);
    stats_.inc("cycles", res.cycles);
    stats_.inc("bank_stall_cycles", res.bankStallCycles);
    stats_.inc("lookups", res.lookups);
    stats_.inc("matches", res.matches);
    return res;
}

} // namespace nx
