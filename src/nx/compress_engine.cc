#include "nx/compress_engine.h"

#include <algorithm>

#include "nx/memory_image.h"

#include "deflate/gzip_stream.h"
#include "deflate/zlib_stream.h"
#include "util/adler32.h"
#include "util/bitstream.h"
#include "util/crc32.h"
#include "util/checked.h"

namespace nx {

CompressEngine::CompressEngine(const NxConfig &cfg)
    : cfg_(cfg), matchPipe_(cfg), dhtGen_(cfg), huffman_(cfg),
      dmaIn_(cfg.dmaIn), dmaOut_(cfg.dmaOut)
{
}

namespace {

/** Emit stored blocks for the Wrap function code. */
EncodeResult
encodeStored(std::span<const uint8_t> data, const NxConfig &cfg)
{
    EncodeResult res;
    util::BitWriter bw;
    size_t off = 0;
    do {
        size_t n = std::min<size_t>(data.size() - off, 65535);
        bool final = off + n >= data.size();
        bw.writeBits(final ? 1 : 0, 1);
        bw.writeBits(0, 2);
        bw.alignToByte();
        auto len = nx::checked_cast<uint16_t>(n);
        bw.writeU16le(len);
        bw.writeU16le(nx::truncate_cast<uint16_t>(~len));
        bw.writeBytes(data.subspan(off, n));
        off += n;
    } while (off < data.size());
    res.bits = bw.bitsWritten();
    res.bytes = bw.take();
    // Stored blocks drain at the output DMA width, not the bit packer.
    res.cycles = sim::ceilDiv(res.bytes.size(),
        static_cast<uint64_t>(cfg.compressBytesPerCycle));
    return res;
}

} // namespace

CompressJobResult
CompressEngine::run(const Crb &crb, std::span<const uint8_t> source,
                    DhtMode dht_mode, uint64_t dht_sample_bytes)
{
    CompressJobResult job;

    CondCode cc = validateCrb(crb);
    if (cc != CondCode::Success || crb.func == FuncCode::Decompress) {
        job.csb.cc = cc != CondCode::Success ? cc : CondCode::BadCrb;
        job.csb.valid = true;
        stats_.inc("bad_crbs");
        return job;
    }

    job.timing.dispatch = cfg_.dispatchCycles;
    job.timing.completion = cfg_.completionCycles;
    job.timing.dmaIn = dmaIn_.transferCycles(source.size());
    dmaIn_.recordTransfer(source.size());

    EncodeResult enc;
    if (crb.func == FuncCode::Wrap) {
        enc = encodeStored(source, cfg_);
        job.timing.match = sim::ceilDiv(source.size(),
            static_cast<uint64_t>(cfg_.compressBytesPerCycle));
    } else {
        job.matchInfo = matchPipe_.run(source);
        job.timing.match = job.matchInfo.cycles;

        if (crb.func == FuncCode::CompressDht) {
            DhtResult dht = dhtGen_.generate(job.matchInfo.tokens,
                source.size(), dht_mode, dht_sample_bytes);
            job.timing.dhtGen = dht.cycles;
            enc = huffman_.encodeDynamic(job.matchInfo.tokens,
                                         dht.codes);
        } else {
            enc = huffman_.encodeFixed(job.matchInfo.tokens);
        }
    }
    job.timing.encode = enc.cycles;

    // Framing + checksums, computed inline with the data pipe (no extra
    // cycles beyond the streaming floor already counted).
    std::vector<uint8_t> framed;
    switch (crb.framing) {
      case Framing::Raw:
        framed = std::move(enc.bytes);
        job.csb.checksum = util::crc32(source);
        break;
      case Framing::Gzip:
        framed = deflate::gzipWrap(enc.bytes, source);
        job.csb.checksum = util::crc32(source);
        break;
      case Framing::Zlib:
        framed = deflate::zlibWrap(enc.bytes, source);
        job.csb.checksum = util::adler32(source);
        break;
    }

    if (framed.size() > crb.target.totalBytes()) {
        job.csb.cc = CondCode::OutputOverflow;
        job.csb.valid = true;
        job.csb.processedBytes = 0;
        job.csb.producedBytes = 0;
        stats_.inc("output_overflows");
        return job;
    }

    job.timing.dmaOut = dmaOut_.transferCycles(framed.size());
    dmaOut_.recordTransfer(framed.size());

    job.csb.cc = CondCode::Success;
    job.csb.valid = true;
    job.csb.processedBytes = source.size();
    job.csb.producedBytes = framed.size();
    job.output = std::move(framed);

    stats_.inc("jobs");
    stats_.inc("source_bytes", source.size());
    stats_.inc("output_bytes", job.output.size());
    stats_.inc("cycles", job.timing.total());
    return job;
}

CompressJobResult
CompressEngine::runDma(const Crb &crb, MemoryImage &mem,
                       DhtMode dht_mode, uint64_t dht_sample_bytes)
{
    // Gather the source, skipping the resume offset.
    auto all = mem.gather(crb.source);
    std::span<const uint8_t> source(all);
    if (crb.sourceOffset <= all.size())
        source = source.subspan(crb.sourceOffset);

    CompressJobResult job = run(crb, source, dht_mode,
                                dht_sample_bytes);

    // Per-DDE-entry DMA setup beyond the first of each list.
    constexpr sim::Tick kSgSetup = 64;
    auto extra = [&](const DdeList &l) {
        return l.entries.size() > 1
            ? kSgSetup * (l.entries.size() - 1) : 0;
    };
    job.timing.dmaIn += extra(crb.source);
    job.timing.dmaOut += extra(crb.target);

    if (job.csb.cc == CondCode::Success) {
        bool fit = mem.scatter(crb.target, job.output);
        if (!fit) {
            job.csb.cc = CondCode::OutputOverflow;
            job.output.clear();
        }
    }
    return job;
}

} // namespace nx
