/**
 * @file
 * Energy model: joules per byte for the accelerator vs a core running
 * the software codec.
 *
 * The abstract claims the accelerators advance the state of the art in
 * "power/energy efficiency". With no silicon we model it as activity x
 * power: a small fixed-function engine at nest clock versus a wide OoO
 * core at full tilt. The *ratio* — three-plus orders of magnitude per
 * byte — is robust to the exact wattages, which are parameters.
 */

#ifndef NXSIM_NX_ENERGY_MODEL_H
#define NXSIM_NX_ENERGY_MODEL_H

#include <cstdint>

#include "nx/nx_config.h"

namespace nx {

/** Power parameters (tunable; defaults are order-of-magnitude). */
struct EnergyParams
{
    /**
     * Active power of one accelerator engine. A few-hundred-KB
     * fixed-function block at 2 GHz: ~0.3 W is generous.
     */
    double engineWatts = 0.3;
    /** Idle (clock-gated) engine power. */
    double engineIdleWatts = 0.03;
    /** One general-purpose core + its cache slice, running flat out. */
    double coreWatts = 5.0;
};

/** Energy accounting for moving @p bytes through a codec path. */
struct EnergyResult
{
    double joules = 0.0;
    double nanojoulesPerByte = 0.0;
    double seconds = 0.0;
};

/** Energy for the accelerator path at @p bytes_per_sec. */
[[nodiscard]] EnergyResult acceleratorEnergy(const EnergyParams &p, uint64_t bytes,
                               double bytes_per_sec);

/** Energy for the software path on one core at @p bytes_per_sec. */
[[nodiscard]] EnergyResult softwareEnergy(const EnergyParams &p, uint64_t bytes,
                            double bytes_per_sec);

} // namespace nx

#endif // NXSIM_NX_ENERGY_MODEL_H
