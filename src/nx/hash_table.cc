#include "nx/hash_table.h"

#include <algorithm>
#include "util/checked.h"

namespace nx {

BankedHashTable::BankedHashTable(const HashConfig &cfg) : cfg_(cfg)
{
    size_t sets = size_t{1} << cfg_.indexBits;
    entries_.assign(sets * static_cast<size_t>(cfg_.ways), 0);
    fill_.assign(sets, 0);
    head_.assign(sets, 0);
    scratch_.resize(static_cast<size_t>(cfg_.ways));
}

void
BankedHashTable::clear()
{
    std::fill(fill_.begin(), fill_.end(), 0);
    std::fill(head_.begin(), head_.end(), 0);
}

std::span<const uint32_t>
BankedHashTable::lookup(uint32_t set) const
{
    int n = fill_[set];
    const uint32_t *base = entries_.data() +
        static_cast<size_t>(set) * static_cast<size_t>(cfg_.ways);
    // Most-recent-first: head_ points at the next victim, so the newest
    // entry sits just behind it.
    for (int i = 0; i < n; ++i) {
        int idx = (head_[set] - 1 - i + cfg_.ways * 2) % cfg_.ways;
        scratch_[static_cast<size_t>(i)] =
            base[static_cast<size_t>(idx)];
    }
    return {scratch_.data(), static_cast<size_t>(n)};
}

void
BankedHashTable::insert(uint32_t set, uint32_t pos)
{
    uint32_t *base = entries_.data() +
        static_cast<size_t>(set) * static_cast<size_t>(cfg_.ways);
    base[head_[set]] = pos;
    head_[set] = nx::checked_cast<uint8_t>((head_[set] + 1) % cfg_.ways);
    if (fill_[set] < cfg_.ways)
        ++fill_[set];
}

uint64_t
BankedHashTable::sramBits() const
{
    uint64_t sets = uint64_t{1} << cfg_.indexBits;
    // Each entry stores a 16-bit window-relative position plus a valid
    // bit; per-set FIFO pointer is log2(ways) bits.
    uint64_t entry_bits = 17;
    uint64_t ptr_bits = 1;
    while ((1u << ptr_bits) < nx::checked_cast<unsigned>(cfg_.ways))
        ++ptr_bits;
    return sets * (static_cast<uint64_t>(cfg_.ways) * entry_bits +
                   ptr_bits);
}

} // namespace nx
