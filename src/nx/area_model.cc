#include "nx/area_model.h"

#include "nx/hash_table.h"

namespace nx {

uint64_t
AreaInventory::totalBits() const
{
    uint64_t n = 0;
    for (const AreaItem &i : items)
        n += i.bits;
    return n;
}

double
AreaInventory::totalKiB() const
{
    return static_cast<double>(totalBits()) / 8.0 / 1024.0;
}

AreaInventory
buildAreaInventory(const NxConfig &cfg)
{
    AreaInventory inv;
    auto add = [&](std::string name, uint64_t bits, std::string note) {
        inv.items.push_back({std::move(name), bits, std::move(note)});
    };

    BankedHashTable table(cfg.hash);
    uint64_t window_bits = static_cast<uint64_t>(cfg.windowBytes) * 8;

    int ceng = cfg.compressEnginesPerUnit;
    int deng = cfg.decompressEnginesPerUnit;

    add("compress history window",
        window_bits * static_cast<uint64_t>(ceng),
        "32 KiB per compress engine");
    add("compress hash table",
        table.sramBits() * static_cast<uint64_t>(ceng),
        "sets x ways position store");
    add("compress token FIFO",
        static_cast<uint64_t>(ceng) * 4096 * 24,
        "4K tokens x ~24 bits between match and encode");
    add("DHT generator state",
        static_cast<uint64_t>(ceng) *
            (286 + 30) * 16 * 2,
        "two histogram banks of 16-bit counters");
    add("encode tables",
        static_cast<uint64_t>(ceng) * (288 * (15 + 4) + 30 * (15 + 4)),
        "code + length per symbol");
    add("decompress history window",
        window_bits * static_cast<uint64_t>(deng),
        "32 KiB per decompress engine");
    add("decode tables",
        static_cast<uint64_t>(deng) * 2 * (1u << 10) * 20,
        "two-level canonical decode tables");
    add("DMA + CRB buffers",
        static_cast<uint64_t>(ceng + deng) * 4 * 4096 * 8,
        "4 outstanding 4 KiB line buffers per engine");

    return inv;
}

uint64_t
chipSramBitsReference(const NxConfig &cfg)
{
    // POWER9: ~120 MB L3 + L2; z15: ~256 MB nest/cache SRAM. Order of
    // magnitude only.
    if (cfg.name == "z15")
        return uint64_t{256} * 1024 * 1024 * 8;
    return uint64_t{120} * 1024 * 1024 * 8;
}

} // namespace nx
