/**
 * @file
 * The match engine's candidate store: a set-associative, banked hash
 * table of recent window positions.
 *
 * This is where the hardware diverges from software zlib. Software keeps
 * unbounded hash *chains* and walks up to thousands of links per
 * position; hardware keeps a fixed number of ways per set (so lookup is
 * one SRAM access) and banks the table so several positions can be
 * looked up in the same cycle. The cost is match quality — the table
 * forgets all but the `ways` most recent positions per hash — which is
 * exactly the compression-ratio-for-throughput trade the paper
 * describes.
 */

#ifndef NXSIM_NX_HASH_TABLE_H
#define NXSIM_NX_HASH_TABLE_H

#include <cstdint>
#include <span>
#include <vector>

#include "nx/nx_config.h"
#include "util/stats.h"
#include "util/checked.h"

namespace nx {

/** Banked, set-associative position store. */
class BankedHashTable
{
  public:
    explicit BankedHashTable(const HashConfig &cfg);

    /** Forget everything (engine reset between CRBs). */
    void clear();

    /** Hash of the @p minMatch-byte prefix at @p p. */
    uint32_t
    hashAt(const uint8_t *p) const
    {
        uint32_t v = nx::checked_cast<uint32_t>(p[0]) |
            (nx::checked_cast<uint32_t>(p[1]) << 8) |
            (nx::checked_cast<uint32_t>(p[2]) << 16);
        if (cfg_.minMatch >= 4)
            v ^= nx::checked_cast<uint32_t>(p[3]) << 20;
        return (v * 0x9e3779b1u) >> (32 - cfg_.indexBits);
    }

    /** Bank a set index maps to (low bits, as hardware would). */
    int
    bankOf(uint32_t set) const
    {
        return nx::checked_cast<int>(set & (nx::checked_cast<uint32_t>(
            cfg_.banks) - 1));
    }

    /**
     * Read the candidate positions stored in @p set (most recent
     * first). Entries may be stale (outside the window); the match
     * comparators filter those.
     */
    std::span<const uint32_t> lookup(uint32_t set) const;

    /** Insert @p pos into @p set, evicting the oldest way (FIFO). */
    void insert(uint32_t set, uint32_t pos);

    const HashConfig &config() const { return cfg_; }

    /** Total SRAM bits the table occupies (for the area model). */
    uint64_t sramBits() const;

  private:
    HashConfig cfg_;
    // sets x ways position entries plus a per-set fill count.
    std::vector<uint32_t> entries_;
    std::vector<uint8_t> fill_;
    std::vector<uint8_t> head_;    // FIFO replacement pointer per set
    // Scratch for lookup() to return recency-ordered views.
    mutable std::vector<uint32_t> scratch_;
};

} // namespace nx

#endif // NXSIM_NX_HASH_TABLE_H
