/**
 * @file
 * A sparse model of user virtual memory for exercising the CRB's
 * scatter/gather path.
 *
 * Real CRBs carry virtual addresses in DDE lists; the engine's DMA
 * unit gathers the source from possibly many discontiguous ranges and
 * scatters the result back. MemoryImage stands in for the user
 * address space: pages materialize on first touch, reads of untouched
 * memory return zeroes (like anonymous mappings), and the gather/
 * scatter helpers implement exactly the DDE traversal the hardware
 * front-end performs.
 */

#ifndef NXSIM_NX_MEMORY_IMAGE_H
#define NXSIM_NX_MEMORY_IMAGE_H

#include <array>
#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "nx/crb.h"

namespace nx {

/** Sparse byte-addressable address space. */
class MemoryImage
{
  public:
    static constexpr uint64_t kPageBytes = 4096;

    /** Copy @p data into the image at @p addr. */
    void write(uint64_t addr, std::span<const uint8_t> data);

    /** Read @p len bytes at @p addr (untouched memory reads as 0). */
    std::vector<uint8_t> read(uint64_t addr, uint64_t len) const;

    /** Gather all ranges of @p list, in order. */
    std::vector<uint8_t> gather(const DdeList &list) const;

    /**
     * Scatter @p data across @p list in order.
     * @return false when the list is too small for the data
     */
    bool scatter(const DdeList &list, std::span<const uint8_t> data);

    /** Number of materialized pages (diagnostics). */
    size_t pageCount() const { return pages_.size(); }

  private:
    using Page = std::array<uint8_t, kPageBytes>;

    Page &pageFor(uint64_t addr);
    const Page *pageIfPresent(uint64_t addr) const;

    std::unordered_map<uint64_t, Page> pages_;
};

} // namespace nx

#endif // NXSIM_NX_MEMORY_IMAGE_H
