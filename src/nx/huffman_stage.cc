#include "nx/huffman_stage.h"

#include "util/bitstream.h"
#include "util/checked.h"

namespace nx {

using deflate::BlockType;
using deflate::HuffmanCode;

EncodeResult
HuffmanStage::encodeFixed(std::span<const deflate::Token> tokens) const
{
    EncodeResult res;
    util::BitWriter bw;
    bw.writeBits(1, 1);    // BFINAL: the engine emits one block per CRB
    bw.writeBits(nx::checked_cast<uint32_t>(BlockType::FixedHuffman), 2);
    deflate::emitTokens(bw, tokens, HuffmanCode::fixedLitLen(),
                        HuffmanCode::fixedDist());
    res.bits = bw.bitsWritten();
    res.bytes = bw.take();
    res.cycles = drainCycles(res.bits);
    return res;
}

EncodeResult
HuffmanStage::encodeDynamic(std::span<const deflate::Token> tokens,
                            const deflate::BlockCodes &codes) const
{
    EncodeResult res;
    util::BitWriter bw;
    bw.writeBits(1, 1);
    bw.writeBits(nx::checked_cast<uint32_t>(BlockType::DynamicHuffman), 2);
    deflate::writeDynamicHeader(bw, codes);
    deflate::emitTokens(bw, tokens, codes.litlen, codes.dist);
    res.bits = bw.bitsWritten();
    res.bytes = bw.take();
    res.cycles = drainCycles(res.bits);
    return res;
}

} // namespace nx
