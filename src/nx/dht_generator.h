/**
 * @file
 * Dynamic Huffman table (DHT) generation strategies.
 *
 * zlib builds per-block optimal codes from a full first pass over the
 * token stream. An on-chip engine cannot afford to buffer an entire
 * request, so the shipped accelerators use two cheaper strategies the
 * paper discusses:
 *
 *  - Sampled: scan only the first S bytes of the request, build the DHT
 *    from that sample's symbol statistics, and use it for the whole
 *    request (the POWER9 software stack's approach). Symbols absent
 *    from the sample still receive a code (frequency floor of 1) so any
 *    later occurrence remains encodable — the hardware equivalent is a
 *    complete code over the full alphabet.
 *
 *  - TwoPass: exact per-request statistics (the z15 hardware runs the
 *    LZ77 pass, buffers tokens, then encodes), costing a second pass of
 *    latency but giving zlib-quality tables.
 *
 * FHT mode (fixed tables) costs nothing and is the latency-optimal
 * choice for small requests.
 */

#ifndef NXSIM_NX_DHT_GENERATOR_H
#define NXSIM_NX_DHT_GENERATOR_H

#include <cstdint>
#include <span>

#include "deflate/deflate_encoder.h"
#include "deflate/lz77.h"
#include "nx/nx_config.h"
#include "sim/ticks.h"

namespace nx {

/** How the dynamic tables are derived. */
enum class DhtMode
{
    Sampled,
    TwoPass,
};

/** Generated tables plus the cycle cost of generating them. */
struct DhtResult
{
    deflate::BlockCodes codes;
    sim::Tick cycles = 0;
    uint64_t sampleBytes = 0;   ///< bytes of input the stats came from
};

/** DHT generation engine. */
class DhtGenerator
{
  public:
    explicit DhtGenerator(const NxConfig &cfg) : cfg_(cfg) {}

    /**
     * Build tables for a request whose LZ77 pass produced @p tokens.
     *
     * @param tokens   full token stream of the request
     * @param input_bytes  total source bytes (for sample accounting)
     * @param mode     Sampled or TwoPass
     * @param sample_bytes  sample size override (0 = config default)
     */
    [[nodiscard]] DhtResult generate(std::span<const deflate::Token> tokens,
                       uint64_t input_bytes, DhtMode mode,
                       uint64_t sample_bytes = 0) const;

  private:
    NxConfig cfg_;
};

} // namespace nx

#endif // NXSIM_NX_DHT_GENERATOR_H
