/**
 * @file
 * One hardware compression engine: executes compress-class CRBs.
 *
 * Stage structure (all overlapped in hardware, so the job's engine time
 * is the max of the stage times plus a fixed pipeline fill):
 *
 *   source DMA -> [DHT sample pass] -> LZ77 match pipe -> Huffman
 *   encode -> checksum -> target DMA
 *
 * The engine produces a *real* gzip/zlib/raw stream (functionally
 * verified against the independent software inflater in tests) and a
 * cycle count derived from the modelled microarchitecture.
 */

#ifndef NXSIM_NX_COMPRESS_ENGINE_H
#define NXSIM_NX_COMPRESS_ENGINE_H

#include <cstdint>
#include <span>
#include <vector>

#include "nx/crb.h"
#include "nx/dht_generator.h"
#include "nx/huffman_stage.h"
#include "nx/match_pipeline.h"
#include "nx/nx_config.h"
#include "sim/memory_model.h"
#include "sim/ticks.h"
#include "util/stats.h"

namespace nx {

/** Per-job timing breakdown (E4 latency decomposition). */
struct CompressTiming
{
    sim::Tick dispatch = 0;     ///< paste + queue + CRB fetch
    sim::Tick dmaIn = 0;
    sim::Tick dhtGen = 0;
    sim::Tick match = 0;
    sim::Tick encode = 0;
    sim::Tick dmaOut = 0;
    sim::Tick completion = 0;

    /**
     * End-to-end cycles. DMA-in, match and encode stream concurrently;
     * the DHT sample pass (when present) serializes in front because
     * the tables must exist before encoding starts.
     */
    sim::Tick
    total() const
    {
        sim::Tick stream = std::max({dmaIn, match, encode, dmaOut});
        return dispatch + dhtGen + stream + completion;
    }
};

/** Result of one compress CRB execution. */
struct CompressJobResult
{
    Csb csb;
    std::vector<uint8_t> output;    ///< framed compressed stream
    CompressTiming timing;
    MatchResult matchInfo;          ///< tokens dropped, stats kept

    /** Original-size / compressed-size. */
    double
    ratio() const
    {
        return output.empty() ? 0.0
            : static_cast<double>(csb.processedBytes) /
                static_cast<double>(output.size());
    }
};

/** A single compression engine instance. */
class CompressEngine
{
  public:
    explicit CompressEngine(const NxConfig &cfg);

    /**
     * Execute a compress CRB over in-memory data.
     *
     * @param crb     request (func must be a compress/wrap code)
     * @param source  bytes the source DDEs describe
     * @param dht_mode  table strategy for CompressDht requests
     * @param dht_sample_bytes  sample-size override (0 = config)
     */
    [[nodiscard]] CompressJobResult run(const Crb &crb,
                          std::span<const uint8_t> source,
                          DhtMode dht_mode = DhtMode::Sampled,
                          uint64_t dht_sample_bytes = 0);

    /**
     * Execute a compress CRB against a memory image: the DMA unit
     * gathers the source from the CRB's (possibly fragmented) source
     * DDE list — honouring crb.sourceOffset for resubmissions — and
     * scatters the framed result across the target DDE list. Each
     * additional DDE entry costs extra DMA setup cycles.
     */
    [[nodiscard]] CompressJobResult runDma(const Crb &crb, class MemoryImage &mem,
                             DhtMode dht_mode = DhtMode::Sampled,
                             uint64_t dht_sample_bytes = 0);

    const NxConfig &config() const { return cfg_; }
    const util::StatSet &stats() const { return stats_; }

  private:
    NxConfig cfg_;
    MatchPipeline matchPipe_;
    DhtGenerator dhtGen_;
    HuffmanStage huffman_;
    sim::DmaPort dmaIn_;
    sim::DmaPort dmaOut_;
    util::StatSet stats_;
};

} // namespace nx

#endif // NXSIM_NX_COMPRESS_ENGINE_H
