#include "nx/memory_image.h"

#include <algorithm>
#include "util/checked.h"

namespace nx {

MemoryImage::Page &
MemoryImage::pageFor(uint64_t addr)
{
    auto [it, inserted] = pages_.try_emplace(addr / kPageBytes);
    if (inserted)
        it->second.fill(0);
    return it->second;
}

const MemoryImage::Page *
MemoryImage::pageIfPresent(uint64_t addr) const
{
    auto it = pages_.find(addr / kPageBytes);
    return it == pages_.end() ? nullptr : &it->second;
}

void
MemoryImage::write(uint64_t addr, std::span<const uint8_t> data)
{
    size_t done = 0;
    while (done < data.size()) {
        uint64_t a = addr + done;
        uint64_t in_page = a % kPageBytes;
        size_t n = std::min<size_t>(data.size() - done,
                                    kPageBytes - in_page);
        nx::copyBytes(pageFor(a).data() + in_page, data.data() + done,
                      n);
        done += n;
    }
}

std::vector<uint8_t>
MemoryImage::read(uint64_t addr, uint64_t len) const
{
    std::vector<uint8_t> out(len, 0);
    uint64_t done = 0;
    while (done < len) {
        uint64_t a = addr + done;
        uint64_t in_page = a % kPageBytes;
        uint64_t n = std::min<uint64_t>(len - done,
                                        kPageBytes - in_page);
        if (const Page *p = pageIfPresent(a))
            nx::copyBytes(out.data() + done, p->data() + in_page, n);
        done += n;
    }
    return out;
}

std::vector<uint8_t>
MemoryImage::gather(const DdeList &list) const
{
    std::vector<uint8_t> out;
    out.reserve(list.totalBytes());
    for (const Dde &d : list.entries) {
        auto part = read(d.address, d.length);
        out.insert(out.end(), part.begin(), part.end());
    }
    return out;
}

bool
MemoryImage::scatter(const DdeList &list, std::span<const uint8_t> data)
{
    if (data.size() > list.totalBytes())
        return false;
    size_t done = 0;
    for (const Dde &d : list.entries) {
        if (done >= data.size())
            break;
        size_t n = std::min<size_t>(d.length, data.size() - done);
        write(d.address, data.subspan(done, n));
        done += n;
    }
    return true;
}

} // namespace nx
