/**
 * @file
 * Qualitative area model: an inventory of the SRAM and register state
 * the modelled microarchitecture implies, supporting the paper's
 * "< 0.5 % of the chip" claim at the order-of-magnitude level.
 *
 * This is explicitly a proxy (we have no physical design); the bench
 * that prints it (E9) labels it as such. The interesting output is the
 * *composition* — the history window and hash table dominate — and the
 * observation that total accelerator state is a few hundred KB against
 * a chip carrying ~120 MB of cache SRAM.
 */

#ifndef NXSIM_NX_AREA_MODEL_H
#define NXSIM_NX_AREA_MODEL_H

#include <cstdint>
#include <string>
#include <vector>

#include "nx/nx_config.h"

namespace nx {

/** One line of the state inventory. */
struct AreaItem
{
    std::string name;
    uint64_t bits = 0;
    std::string note;
};

/** Full inventory for one accelerator unit. */
struct AreaInventory
{
    std::vector<AreaItem> items;

    uint64_t totalBits() const;
    double totalKiB() const;
};

/** Build the inventory implied by @p cfg. */
AreaInventory buildAreaInventory(const NxConfig &cfg);

/**
 * Reference point: approximate SRAM carried by the host chip (caches),
 * used to express the accelerator state as a fraction. POWER9: ~120 MB
 * of L3 eDRAM + L2; z15: ~256 MB across the cache hierarchy.
 */
uint64_t chipSramBitsReference(const NxConfig &cfg);

} // namespace nx

#endif // NXSIM_NX_AREA_MODEL_H
