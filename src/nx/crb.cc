#include "nx/crb.h"

namespace nx {

const char *
toString(CondCode cc)
{
    switch (cc) {
      case CondCode::Success: return "Success";
      case CondCode::TranslationFault: return "TranslationFault";
      case CondCode::OutputOverflow: return "OutputOverflow";
      case CondCode::BadCrb: return "BadCrb";
      case CondCode::BadData: return "BadData";
    }
    return "Unknown";
}

uint64_t
DdeList::totalBytes() const
{
    uint64_t n = 0;
    for (const Dde &d : entries)
        n += d.length;
    return n;
}

DdeList
DdeList::direct(uint64_t address, uint32_t length)
{
    DdeList l;
    l.entries.push_back({address, length});
    return l;
}

CondCode
validateCrb(const Crb &crb)
{
    if (crb.target.entries.empty())
        return CondCode::BadCrb;
    if (crb.source.totalBytes() < crb.sourceOffset)
        return CondCode::BadCrb;
    for (const Dde &d : crb.source.entries)
        if (d.length == 0 && crb.source.entries.size() > 1)
            return CondCode::BadCrb;
    return CondCode::Success;
}

} // namespace nx
