/**
 * @file
 * The encoder back-end: serializes the token stream into DEFLATE bits
 * using fixed or generated dynamic tables, and models the bit-packer's
 * drain rate (encodeBitsPerCycle).
 *
 * The functional emission reuses the software codec's canonical-Huffman
 * primitives — the streams must be bit-identical in format — while the
 * timing is the accelerator's own.
 */

#ifndef NXSIM_NX_HUFFMAN_STAGE_H
#define NXSIM_NX_HUFFMAN_STAGE_H

#include <cstdint>
#include <span>
#include <vector>

#include "deflate/deflate_encoder.h"
#include "nx/nx_config.h"
#include "sim/ticks.h"

namespace nx {

/** Output of the encode stage. */
struct EncodeResult
{
    std::vector<uint8_t> bytes;    ///< raw DEFLATE stream
    uint64_t bits = 0;
    sim::Tick cycles = 0;
};

/** The Huffman encode stage. */
class HuffmanStage
{
  public:
    explicit HuffmanStage(const NxConfig &cfg) : cfg_(cfg) {}

    /** Emit one final fixed-Huffman block. */
    [[nodiscard]] EncodeResult encodeFixed(std::span<const deflate::Token> tokens) const;

    /** Emit one final dynamic-Huffman block with the given codes. */
    [[nodiscard]] EncodeResult encodeDynamic(std::span<const deflate::Token> tokens,
                               const deflate::BlockCodes &codes) const;

  private:
    sim::Tick
    drainCycles(uint64_t bits) const
    {
        return sim::ceilDiv(bits,
            static_cast<uint64_t>(cfg_.encodeBitsPerCycle));
    }

    NxConfig cfg_;
};

} // namespace nx

#endif // NXSIM_NX_HUFFMAN_STAGE_H
