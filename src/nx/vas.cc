#include "nx/vas.h"

#include <algorithm>
#include <deque>

#include "util/prng.h"
#include "util/stats.h"
#include "util/checked.h"

namespace nx {

namespace {

/** Closed-loop chip simulation state. */
class ChipSim
{
  public:
    explicit ChipSim(const VasSimConfig &cfg)
        : cfg_(cfg), service_{cfg.chip}, rng_(cfg.seed)
    {
        int engines = cfg.decompress
            ? cfg.chip.decompressEnginesPerUnit
            : cfg.chip.compressEnginesPerUnit;
        engines *= cfg.chip.unitsPerChip;
        engineFreeAt_.assign(static_cast<size_t>(engines), 0);
    }

    VasSimResult
    run()
    {
        if (cfg_.openArrival)
            scheduleArrival();
        else
            for (int r = 0; r < cfg_.requesters; ++r)
                submit(r);
        eq_.run(cfg_.horizonCycles);
        finalize();
        return result_;
    }

  private:
    struct Job
    {
        sim::Tick pasteTime;
        uint64_t bytes;
        int requester;
    };

    void
    scheduleArrival()
    {
        double gap_s = rng_.exponential(1.0 / cfg_.arrivalsPerSec);
        sim::Tick gap = cfg_.chip.clock.fromSeconds(gap_s);
        eq_.scheduleIn(gap < 1 ? 1 : gap, [this] {
            submit(-1);
            scheduleArrival();
        });
    }

    void
    submit(int requester)
    {
        // Bounded window: a full receive FIFO busy-rejects the paste
        // and the requester re-pastes after a back-off, exactly the
        // RC-busy loop the threaded core::JobServer clients run.
        if (cfg_.window.bounded() &&
            queue_.size() >=
                static_cast<size_t>(cfg_.window.fifoDepth)) {
            ++busyRejects_;
            eq_.scheduleIn(std::max<sim::Tick>(cfg_.window.retryCycles,
                                               1),
                           [this, requester] { submit(requester); });
            return;
        }
        Job job{eq_.now(), cfg_.jobBytes, requester};
        queue_.push_back(job);
        queueSamples_.add(static_cast<double>(queue_.size()));
        tryDispatch();
    }

    void
    tryDispatch()
    {
        while (!queue_.empty()) {
            // Find a free engine now.
            int eng = -1;
            for (size_t e = 0; e < engineFreeAt_.size(); ++e) {
                if (engineFreeAt_[e] <= eq_.now()) {
                    eng = nx::checked_cast<int>(e);
                    break;
                }
            }
            if (eng < 0)
                return;

            Job job = queue_.front();
            queue_.pop_front();
            sim::Tick svc = cfg_.decompress
                ? service_.decompressCycles(job.bytes)
                : service_.compressCycles(job.bytes);
            sim::Tick done = eq_.now() + svc;
            engineFreeAt_[static_cast<size_t>(eng)] = done;
            busyCycles_ += svc;

            eq_.schedule(done, [this, job, done] {
                complete(job, done);
            });
        }
    }

    void
    complete(const Job &job, sim::Tick done)
    {
        if (done >= cfg_.warmupCycles) {
            ++completed_;
            bytesDone_ += job.bytes;
            sim::Tick lat = done - job.pasteTime;
            latency_.add(static_cast<double>(lat));
            latencyPct_.add(static_cast<double>(lat));
        }
        // Closed loop: requester thinks, then submits the next job.
        // Open-arrival jobs (requester < 0) do not respawn.
        if (job.requester >= 0) {
            eq_.scheduleIn(cfg_.thinkCycles, [this, r = job.requester] {
                submit(r);
            });
        }
        tryDispatch();
    }

    void
    finalize()
    {
        sim::Tick measured = cfg_.horizonCycles > cfg_.warmupCycles
            ? cfg_.horizonCycles - cfg_.warmupCycles : 1;
        double secs = cfg_.chip.clock.toSeconds(measured);
        result_.aggregateBps = static_cast<double>(bytesDone_) / secs;
        result_.utilization = static_cast<double>(busyCycles_) /
            (static_cast<double>(cfg_.horizonCycles) *
             static_cast<double>(engineFreeAt_.size()));
        if (result_.utilization > 1.0)
            result_.utilization = 1.0;
        result_.meanQueueDepth = queueSamples_.mean();
        result_.meanLatencyCycles = latency_.mean();
        result_.p99LatencyCycles = latencyPct_.percentile(99);
        result_.jobsCompleted = completed_;
        result_.busyRejects = busyRejects_;
    }

    VasSimConfig cfg_;
    ServiceModel service_;
    util::Xoshiro256 rng_{1};
    sim::EventQueue eq_;
    std::deque<Job> queue_;
    std::vector<sim::Tick> engineFreeAt_;

    uint64_t completed_ = 0;
    uint64_t bytesDone_ = 0;
    uint64_t busyCycles_ = 0;
    uint64_t busyRejects_ = 0;
    util::RunningStat latency_;
    util::Percentiles latencyPct_;
    util::RunningStat queueSamples_;
    VasSimResult result_;
};

} // namespace

VasSimResult
simulateChip(const VasSimConfig &cfg)
{
    ChipSim sim(cfg);
    return sim.run();
}

VasSimResult
simulateSystem(const VasSimConfig &per_chip, int chips)
{
    // Chips are independent in the dispatch path; run one and scale the
    // aggregate rate. Latency statistics are per chip.
    VasSimResult one = simulateChip(per_chip);
    VasSimResult sys = one;
    sys.aggregateBps = one.aggregateBps * chips;
    sys.jobsCompleted = one.jobsCompleted * static_cast<uint64_t>(chips);
    sys.busyRejects = one.busyRejects * static_cast<uint64_t>(chips);
    return sys;
}

} // namespace nx
