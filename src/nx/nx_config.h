/**
 * @file
 * Microarchitectural parameters of the modelled compression accelerator.
 *
 * Two presets mirror the two shipped implementations: power9() (the NX
 * GZIP unit in the POWER9 nest) and z15() (the on-chip Integrated
 * Accelerator for zEDC, which the paper states doubles the POWER9
 * compression rate). All benches sweep or compare through this struct;
 * nothing downstream hard-codes a generation.
 */

#ifndef NXSIM_NX_NX_CONFIG_H
#define NXSIM_NX_NX_CONFIG_H

#include <cstdint>
#include <string>

#include "sim/memory_model.h"
#include "sim/ticks.h"

namespace nx {

/** Hash-table geometry of the match engine. */
struct HashConfig
{
    int indexBits = 12;      ///< log2(number of sets)
    int ways = 8;            ///< candidate positions kept per set
    int banks = 8;           ///< parallel lookup banks
    int minMatch = 4;        ///< hardware hashes 4-byte prefixes
};

/** One accelerator's engine parameters. */
struct NxConfig
{
    std::string name = "power9";

    /** Engine (nest) clock. */
    sim::Frequency clock{2.0e9};

    /** Input bytes consumed per cycle by the compress match pipe. */
    int compressBytesPerCycle = 4;

    /** Output bytes produced per cycle by the decompress pipe. */
    int decompressBytesPerCycle = 8;

    /** Huffman encoder drain width in bits per cycle. */
    int encodeBitsPerCycle = 64;

    /** Huffman decoder symbols resolved per cycle. */
    int decodeSymbolsPerCycle = 2;

    /** History window (RFC 1951 caps this at 32 KiB). */
    int windowBytes = 32 * 1024;

    HashConfig hash;

    /** DHT generation: cycles to scan one sample byte + build the tree. */
    int dhtSampleBytes = 32 * 1024;
    sim::Tick dhtBuildCycles = 4096;

    /**
     * Engines per accelerator unit. One compress + one decompress
     * engine reproduces the per-chip rates the abstract implies
     * (POWER9 ~8 GB/s peak; z15 doubles it, and 20 z15 chips sustain
     * ~280 GB/s).
     */
    int compressEnginesPerUnit = 1;
    int decompressEnginesPerUnit = 1;

    /** Accelerator units per processor chip. */
    int unitsPerChip = 1;

    /** CRB dispatch overhead (paste + queue pop + CRB fetch), cycles. */
    sim::Tick dispatchCycles = 4000;

    /** Completion/notification overhead (CSB write, wakeup), cycles. */
    sim::Tick completionCycles = 1000;

    /** DMA ports. */
    sim::DmaParams dmaIn;
    sim::DmaParams dmaOut;

    /** Preset: POWER9 NX GZIP unit. */
    static NxConfig power9();

    /** Preset: z15 on-chip compression unit (2x POWER9 rate). */
    static NxConfig z15();

    /** Peak compress input rate in bytes/second (engine bound). */
    double
    peakCompressBps() const
    {
        return clock.hz() * compressBytesPerCycle;
    }

    /** Peak decompress output rate in bytes/second (engine bound). */
    double
    peakDecompressBps() const
    {
        return clock.hz() * decompressBytesPerCycle;
    }
};

inline NxConfig
NxConfig::power9()
{
    NxConfig c;
    c.name = "power9";
    c.clock = sim::Frequency(2.0e9);
    c.compressBytesPerCycle = 4;
    c.decompressBytesPerCycle = 8;
    c.encodeBitsPerCycle = 64;
    c.decodeSymbolsPerCycle = 2;
    c.dispatchCycles = 4000;     // ~2 us at 2 GHz
    c.completionCycles = 1000;
    return c;
}

inline NxConfig
NxConfig::z15()
{
    NxConfig c;
    c.name = "z15";
    c.clock = sim::Frequency(2.0e9);
    c.compressBytesPerCycle = 8;         // doubles the POWER9 rate
    c.decompressBytesPerCycle = 16;
    c.encodeBitsPerCycle = 128;
    c.decodeSymbolsPerCycle = 4;
    c.hash.indexBits = 13;               // larger table for the wider pipe
    c.dispatchCycles = 2000;             // ~1 us, tighter CP integration
    c.completionCycles = 800;
    c.dmaIn.bytesPerCycle = 128.0;
    c.dmaOut.bytesPerCycle = 128.0;
    return c;
}

} // namespace nx

#endif // NXSIM_NX_NX_CONFIG_H
