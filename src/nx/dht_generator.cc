#include "nx/dht_generator.h"

#include <algorithm>

namespace nx {

using deflate::kNumDist;
using deflate::kNumLitLen;
using deflate::SymbolFreqs;
using deflate::Token;

DhtResult
DhtGenerator::generate(std::span<const Token> tokens,
                       uint64_t input_bytes, DhtMode mode,
                       uint64_t sample_bytes) const
{
    DhtResult res;

    if (mode == DhtMode::TwoPass) {
        SymbolFreqs freqs;
        freqs.accumulate(tokens);
        res.codes = deflate::buildDynamicCodes(freqs);
        res.sampleBytes = input_bytes;
        // Second pass over the whole request through the match-rate
        // datapath, plus the tree build.
        res.cycles = sim::ceilDiv(input_bytes,
            static_cast<uint64_t>(cfg_.compressBytesPerCycle)) +
            cfg_.dhtBuildCycles;
        return res;
    }

    // Sampled: accumulate token statistics until the covered input
    // prefix reaches the sample size.
    uint64_t target = sample_bytes != 0
        ? sample_bytes : static_cast<uint64_t>(cfg_.dhtSampleBytes);
    target = std::min(target, input_bytes);

    SymbolFreqs freqs;
    uint64_t covered = 0;
    size_t i = 0;
    for (; i < tokens.size() && covered < target; ++i) {
        const Token &t = tokens[i];
        if (t.isLiteral()) {
            ++freqs.litlen[t.literal];
            covered += 1;
        } else {
            ++freqs.litlen[static_cast<size_t>(
                deflate::lengthToCode(t.length))];
            ++freqs.dist[static_cast<size_t>(
                deflate::distToCode(t.dist))];
            covered += t.length;
        }
    }
    ++freqs.litlen[deflate::kEob];

    // Frequency floor: every alphabet symbol keeps a code so the tail
    // of the request (not represented in the sample) stays encodable.
    for (auto &f : freqs.litlen)
        f = f * 16 + 1;
    for (auto &f : freqs.dist)
        f = f * 16 + 1;

    res.codes = deflate::buildDynamicCodes(freqs);
    res.sampleBytes = covered;
    res.cycles = sim::ceilDiv(covered,
        static_cast<uint64_t>(cfg_.compressBytesPerCycle)) +
        cfg_.dhtBuildCycles;
    return res;
}

} // namespace nx
