/**
 * @file
 * VAS window primitives shared by the analytic queueing model
 * (nx/vas.h) and the real threaded dispatch layer (core/job_server.h).
 *
 * On POWER9 a user thread memory-maps a VAS window and submits CRBs
 * with the `paste` instruction. Paste returns a condition code: the
 * switchboard either accepted the CRB onto the unit's bounded receive
 * FIFO, or the FIFO was full and the paste is *rejected* — the thread
 * is expected to back off and re-paste (there is no blocking submit in
 * hardware). Both the discrete-event model and the thread-pool server
 * implement exactly this contract, so their stats are comparable.
 */

#ifndef NXSIM_NX_WINDOW_H
#define NXSIM_NX_WINDOW_H

#include "sim/ticks.h"

namespace nx {

/**
 * Condition code of one paste attempt. The hardware reports
 * busy-reject through CR0 on `paste.`; software must treat Busy as
 * retryable and anything else as terminal.
 */
enum class PasteStatus
{
    Accepted,    ///< CRB is on the receive FIFO
    Busy,        ///< FIFO full: back off and re-paste
    Closed,      ///< window is draining/closed: do not retry
};

/** Human-readable paste status name. */
inline const char *
toString(PasteStatus st)
{
    switch (st) {
      case PasteStatus::Accepted: return "Accepted";
      case PasteStatus::Busy: return "Busy";
      case PasteStatus::Closed: return "Closed";
    }
    return "?";
}

/** Receive-FIFO geometry and retry behaviour of one VAS window. */
struct WindowConfig
{
    /**
     * CRBs the receive FIFO holds before paste is busy-rejected.
     * <= 0 models an unbounded queue (the legacy analytic mode, where
     * backpressure is not the phenomenon under study).
     */
    int fifoDepth = 16;

    /**
     * Modelled requester back-off after a busy-reject before the next
     * paste attempt (analytic model only; the threaded server's
     * clients use core::BackoffPolicy wall-clock delays instead).
     */
    sim::Tick retryCycles = 2000;

    bool bounded() const { return fifoDepth > 0; }
};

} // namespace nx

#endif // NXSIM_NX_WINDOW_H
