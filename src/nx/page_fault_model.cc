#include "nx/page_fault_model.h"

#include <vector>

#include "nx/vas.h"

namespace nx {

FaultModelResult
runFaultModel(const FaultModelConfig &cfg)
{
    FaultModelResult res;
    util::Xoshiro256 rng(cfg.seed);
    ServiceModel service{cfg.chip};

    uint64_t pages = sim::ceilDiv(cfg.jobBytes, cfg.pageBytes);
    sim::Tick faultFreePerJob = service.compressCycles(cfg.jobBytes);

    uint64_t totalCycles = 0;
    uint64_t resubmits = 0;

    for (int j = 0; j < cfg.jobs; ++j) {
        // Residency of each source page for this job.
        std::vector<bool> resident(pages);
        for (auto &&r : resident)
            r = !rng.chance(cfg.faultProbPerPage);

        if (cfg.strategy == FaultStrategy::TouchPagesFirst) {
            // Touch every page on the core first: faulted pages cost a
            // fault service, resident ones a cheap touch. Then one
            // clean accelerator pass.
            for (uint64_t p = 0; p < pages; ++p) {
                if (!resident[p]) {
                    totalCycles += cfg.faultServiceCycles;
                    ++res.totalFaults;
                } else {
                    totalCycles += cfg.touchCycles;
                }
            }
            totalCycles += faultFreePerJob;
            continue;
        }

        // ResubmitOnFault: the engine streams until it hits the first
        // non-resident page, reports partial progress, the library
        // touches that page and resubmits from the fault offset.
        uint64_t offset = 0;
        while (offset < cfg.jobBytes) {
            uint64_t firstFault = pages;
            for (uint64_t p = offset / cfg.pageBytes; p < pages; ++p) {
                if (!resident[p]) {
                    firstFault = p;
                    break;
                }
            }
            uint64_t runEnd = firstFault == pages
                ? cfg.jobBytes : firstFault * cfg.pageBytes;
            uint64_t chunk = runEnd - offset;

            if (firstFault == pages) {
                // Clean run to the end.
                totalCycles += service.compressCycles(chunk);
                offset = cfg.jobBytes;
                break;
            }

            // Partial run: engine overhead is paid even for the
            // aborted attempt (dispatch + the streaming done so far +
            // fault reporting as a completion).
            totalCycles += service.compressCycles(chunk);
            ++res.totalFaults;
            ++resubmits;
            totalCycles += cfg.faultServiceCycles;    // OS touches page
            resident[firstFault] = true;
            offset = runEnd;
        }
    }

    double secs = cfg.chip.clock.toSeconds(totalCycles);
    double ffSecs = cfg.chip.clock.toSeconds(
        faultFreePerJob * static_cast<uint64_t>(cfg.jobs));
    uint64_t totalBytes = cfg.jobBytes * static_cast<uint64_t>(cfg.jobs);
    res.effectiveBps = static_cast<double>(totalBytes) / secs;
    res.faultFreeBps = static_cast<double>(totalBytes) / ffSecs;
    res.slowdown = res.faultFreeBps / res.effectiveBps;
    res.meanResubmits = static_cast<double>(resubmits) / cfg.jobs;
    return res;
}

} // namespace nx
