#include "nx/energy_model.h"

namespace nx {

namespace {

EnergyResult
energyAt(double watts, uint64_t bytes, double bytes_per_sec)
{
    EnergyResult r;
    if (bytes_per_sec <= 0.0)
        return r;
    r.seconds = static_cast<double>(bytes) / bytes_per_sec;
    r.joules = watts * r.seconds;
    r.nanojoulesPerByte = bytes == 0 ? 0.0
        : r.joules * 1e9 / static_cast<double>(bytes);
    return r;
}

} // namespace

EnergyResult
acceleratorEnergy(const EnergyParams &p, uint64_t bytes,
                  double bytes_per_sec)
{
    return energyAt(p.engineWatts, bytes, bytes_per_sec);
}

EnergyResult
softwareEnergy(const EnergyParams &p, uint64_t bytes,
               double bytes_per_sec)
{
    return energyAt(p.coreWatts, bytes, bytes_per_sec);
}

} // namespace nx
