/**
 * @file
 * One hardware decompression engine: executes Decompress CRBs.
 *
 * The functional decode accepts any conforming DEFLATE/gzip/zlib stream
 * (delegating bit-exact parsing to the shared inflater), while the
 * timing model charges the microarchitecture's own costs:
 *
 *   cycles = max(symbol decode, output copy, DMA) per stream, where
 *     symbol decode = symbols / decodeSymbolsPerCycle
 *     output copy   = output bytes / decompressBytesPerCycle
 *   plus a per-dynamic-block table-load penalty (the hardware must
 *   build its decode tables from the block header before any symbol
 *   of that block can decode).
 */

#ifndef NXSIM_NX_DECOMPRESS_ENGINE_H
#define NXSIM_NX_DECOMPRESS_ENGINE_H

#include <cstdint>
#include <span>
#include <vector>

#include "nx/crb.h"
#include "nx/nx_config.h"
#include "sim/memory_model.h"
#include "sim/ticks.h"
#include "util/stats.h"

namespace nx {

/** Per-job decompress timing breakdown. */
struct DecompressTiming
{
    sim::Tick dispatch = 0;
    sim::Tick dmaIn = 0;
    sim::Tick tableLoads = 0;
    sim::Tick decode = 0;
    sim::Tick copyOut = 0;
    sim::Tick dmaOut = 0;
    sim::Tick completion = 0;

    sim::Tick
    total() const
    {
        sim::Tick stream = std::max({dmaIn, decode, copyOut, dmaOut});
        return dispatch + tableLoads + stream + completion;
    }
};

/** Result of one decompress CRB execution. */
struct DecompressJobResult
{
    Csb csb;
    std::vector<uint8_t> output;
    DecompressTiming timing;
};

/** A single decompression engine instance. */
class DecompressEngine
{
  public:
    explicit DecompressEngine(const NxConfig &cfg);

    /**
     * Execute a decompress CRB.
     *
     * @param crb    request (func must be Decompress; framing selects
     *               the parser)
     * @param source the compressed bytes the source DDEs describe
     */
    [[nodiscard]] DecompressJobResult run(const Crb &crb,
                            std::span<const uint8_t> source);

    /** Scatter/gather variant of run(); see CompressEngine::runDma. */
    [[nodiscard]] DecompressJobResult runDma(const Crb &crb, class MemoryImage &mem);

    const NxConfig &config() const { return cfg_; }
    const util::StatSet &stats() const { return stats_; }

  private:
    NxConfig cfg_;
    sim::DmaPort dmaIn_;
    sim::DmaPort dmaOut_;
    util::StatSet stats_;
};

} // namespace nx

#endif // NXSIM_NX_DECOMPRESS_ENGINE_H
