#include "nx/decompress_engine.h"

#include "nx/memory_image.h"

#include "deflate/gzip_stream.h"
#include "deflate/inflate_decoder.h"
#include "deflate/zlib_stream.h"
#include "util/adler32.h"
#include "util/crc32.h"

namespace nx {

DecompressEngine::DecompressEngine(const NxConfig &cfg)
    : cfg_(cfg), dmaIn_(cfg.dmaIn), dmaOut_(cfg.dmaOut)
{
}

DecompressJobResult
DecompressEngine::run(const Crb &crb, std::span<const uint8_t> source)
{
    DecompressJobResult job;

    CondCode cc = validateCrb(crb);
    if (cc != CondCode::Success || crb.func != FuncCode::Decompress) {
        job.csb.cc = cc != CondCode::Success ? cc : CondCode::BadCrb;
        job.csb.valid = true;
        stats_.inc("bad_crbs");
        return job;
    }

    job.timing.dispatch = cfg_.dispatchCycles;
    job.timing.completion = cfg_.completionCycles;
    job.timing.dmaIn = dmaIn_.transferCycles(source.size());
    dmaIn_.recordTransfer(source.size());

    deflate::InflateResult inf;
    uint32_t checksum = 0;
    switch (crb.framing) {
      case Framing::Raw: {
        inf = deflate::inflateDecompress(source);
        if (inf.ok())
            checksum = util::crc32(inf.bytes);
        break;
      }
      case Framing::Gzip: {
        auto res = deflate::gzipUnwrap(source);
        if (!res.ok) {
            job.csb.cc = CondCode::BadData;
            job.csb.valid = true;
            stats_.inc("bad_data");
            return job;
        }
        inf = std::move(res.inflate);
        checksum = util::crc32(inf.bytes);
        break;
      }
      case Framing::Zlib: {
        auto res = deflate::zlibUnwrap(source);
        if (!res.ok) {
            job.csb.cc = CondCode::BadData;
            job.csb.valid = true;
            stats_.inc("bad_data");
            return job;
        }
        inf = std::move(res.inflate);
        checksum = util::adler32(inf.bytes);
        break;
      }
    }
    if (!inf.ok()) {
        job.csb.cc = CondCode::BadData;
        job.csb.valid = true;
        stats_.inc("bad_data");
        return job;
    }

    if (inf.bytes.size() > crb.target.totalBytes()) {
        job.csb.cc = CondCode::OutputOverflow;
        job.csb.valid = true;
        stats_.inc("output_overflows");
        return job;
    }

    // Timing from the decoded stream's statistics.
    const auto &st = inf.stats;
    job.timing.decode = sim::ceilDiv(st.symbols(),
        static_cast<uint64_t>(cfg_.decodeSymbolsPerCycle));
    job.timing.copyOut = sim::ceilDiv(inf.bytes.size(),
        static_cast<uint64_t>(cfg_.decompressBytesPerCycle));
    // Each dynamic block header serializes a table build in front of
    // its symbols; model a fixed cost per table (two tables per block).
    job.timing.tableLoads = (st.dynamicBlocks * 2) * 512;
    job.timing.dmaOut = dmaOut_.transferCycles(inf.bytes.size());
    dmaOut_.recordTransfer(inf.bytes.size());

    job.csb.cc = CondCode::Success;
    job.csb.valid = true;
    job.csb.processedBytes = source.size();
    job.csb.producedBytes = inf.bytes.size();
    job.csb.checksum = checksum;
    job.output = std::move(inf.bytes);

    stats_.inc("jobs");
    stats_.inc("source_bytes", source.size());
    stats_.inc("output_bytes", job.output.size());
    stats_.inc("cycles", job.timing.total());
    return job;
}

DecompressJobResult
DecompressEngine::runDma(const Crb &crb, MemoryImage &mem)
{
    auto all = mem.gather(crb.source);
    std::span<const uint8_t> source(all);
    if (crb.sourceOffset <= all.size())
        source = source.subspan(crb.sourceOffset);

    DecompressJobResult job = run(crb, source);

    constexpr sim::Tick kSgSetup = 64;
    auto extra = [&](const DdeList &l) {
        return l.entries.size() > 1
            ? kSgSetup * (l.entries.size() - 1) : 0;
    };
    job.timing.dmaIn += extra(crb.source);
    job.timing.dmaOut += extra(crb.target);

    if (job.csb.cc == CondCode::Success) {
        if (!mem.scatter(crb.target, job.output)) {
            job.csb.cc = CondCode::OutputOverflow;
            job.output.clear();
        }
    }
    return job;
}

} // namespace nx
