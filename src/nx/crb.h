/**
 * @file
 * Coprocessor Request Block (CRB) and Coprocessor Status Block (CSB) —
 * the software/hardware job interface of the NX accelerators.
 *
 * A user thread builds a CRB describing the function (compress /
 * decompress, gzip/zlib/raw framing, fixed or dynamic Huffman), source
 * and target buffers as scatter/gather lists (DDEs), then issues it to
 * the accelerator with a "paste" to its VAS window. Completion is
 * signalled by the engine writing the CSB, including a condition code;
 * page faults surface as CC=translation-fault with the faulting address
 * and a count of bytes already processed, and software resubmits the
 * CRB for the remainder (see PageFaultModel).
 */

#ifndef NXSIM_NX_CRB_H
#define NXSIM_NX_CRB_H

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace nx {

/** Accelerator function codes. */
enum class FuncCode : uint8_t
{
    CompressFht,     ///< compress, fixed Huffman tables
    CompressDht,     ///< compress, (sampled) dynamic Huffman tables
    Decompress,      ///< inflate any conforming stream
    Wrap,            ///< stored blocks only (memcpy-with-framing)
};

/** Stream framing selected in the CRB. */
enum class Framing : uint8_t
{
    Raw,     ///< raw DEFLATE
    Gzip,    ///< RFC 1952 member
    Zlib,    ///< RFC 1950 stream
};

/** CSB condition codes (subset that matters for the model). */
enum class CondCode : uint8_t
{
    Success = 0,
    TranslationFault = 5,    ///< page fault at csb.faultAddress
    OutputOverflow = 13,     ///< target DDE exhausted
    BadCrb = 17,             ///< malformed request
    BadData = 21,            ///< invalid DEFLATE stream (decompress)
};

/** Human-readable condition code name. */
const char *toString(CondCode cc);

/** One data descriptor entry: a contiguous virtual range. */
struct Dde
{
    uint64_t address = 0;
    uint32_t length = 0;
};

/**
 * Scatter/gather list. The hardware supports direct (1 entry) and
 * indirect (list of entries) DDEs; the model keeps a flat vector.
 */
struct DdeList
{
    std::vector<Dde> entries;

    uint64_t totalBytes() const;

    /** Direct DDE covering one range. */
    static DdeList direct(uint64_t address, uint32_t length);
};

/** Coprocessor Request Block. */
struct Crb
{
    FuncCode func = FuncCode::CompressFht;
    Framing framing = Framing::Gzip;
    DdeList source;
    DdeList target;

    /**
     * Resume state for fault resubmission: bytes of source already
     * consumed by a prior partial execution.
     */
    uint64_t sourceOffset = 0;

    /** Sequence number assigned at paste time (debug/tracing). */
    uint64_t seq = 0;
};

/** Coprocessor Status Block, written by the engine at completion. */
struct Csb
{
    CondCode cc = CondCode::Success;
    bool valid = false;              ///< engine sets when CSB is written
    uint64_t processedBytes = 0;     ///< source bytes consumed
    uint64_t producedBytes = 0;      ///< target bytes written
    uint64_t faultAddress = 0;       ///< valid when cc == TranslationFault
    uint32_t checksum = 0;           ///< CRC-32 (gzip) or Adler-32 (zlib)
};

/** Validate a CRB the way the hardware's front-end decoder would. */
[[nodiscard]] CondCode validateCrb(const Crb &crb);

} // namespace nx

#endif // NXSIM_NX_CRB_H
