/**
 * @file
 * Console table printer used by every bench binary so the regenerated
 * paper tables/series share one readable format.
 */

#ifndef NXSIM_UTIL_TABLE_H
#define NXSIM_UTIL_TABLE_H

#include <cstdint>
#include <string>
#include <vector>

namespace util {

/** Fixed-column text table with an optional title and footnote. */
class Table
{
  public:
    explicit Table(std::string title) : title_(std::move(title)) {}

    /** Set the header row. */
    void header(std::vector<std::string> cols) { header_ = std::move(cols); }

    /** Append a data row (stringified cells). */
    void row(std::vector<std::string> cells);

    /** Append a footnote line printed under the table. */
    void note(const std::string &text) { notes_.push_back(text); }

    /** Render to a string. */
    std::string str() const;

    /** Render to stdout. */
    void print() const;

    /** Format helpers for bench code. */
    static std::string fmt(double v, int precision = 2);
    static std::string fmtBytes(uint64_t bytes);
    static std::string fmtRate(double bytes_per_sec);

  private:
    std::string title_;
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
    std::vector<std::string> notes_;
};

} // namespace util

#endif // NXSIM_UTIL_TABLE_H
