/**
 * @file
 * Thread-safe sample recorder for the concurrent dispatch layer.
 *
 * util::RunningStat and util::Percentiles (util/stats.h) are
 * deliberately lock-free single-threaded helpers for the benches; the
 * JobServer's workers and clients record from many threads at once, so
 * this wraps the pair behind one mutex and hands out consistent
 * snapshots. Recording is a short critical section (a few arithmetic
 * ops plus one push_back); snapshotting sorts the reservoir and is
 * meant for end-of-run reporting, not per-job paths.
 */

#ifndef NXSIM_UTIL_LATENCY_RECORDER_H
#define NXSIM_UTIL_LATENCY_RECORDER_H

#include <cstdint>

#include "util/stats.h"
#include "util/thread_annotations.h"

namespace util {

/** Mutex-guarded running stat + exact percentiles. */
class LatencyRecorder
{
  public:
    explicit LatencyRecorder(size_t reservoir_cap = 1u << 20)
        : pct_(reservoir_cap)
    {
    }

    /** Fold one sample in (any thread). */
    void record(double x);

    /** Consistent view of everything recorded so far. */
    struct Snapshot
    {
        uint64_t count = 0;
        double mean = 0.0;
        double min = 0.0;
        double max = 0.0;
        double p50 = 0.0;
        double p90 = 0.0;
        double p99 = 0.0;
        double p999 = 0.0;   ///< tail SLO percentile (99.9th)
    };

    /** Take a snapshot (any thread; locks out recorders briefly). */
    Snapshot snapshot() const;

    /** Total samples recorded. */
    uint64_t count() const;

  private:
    mutable nx::Mutex mu_;
    RunningStat stat_ NXSIM_GUARDED_BY(mu_);
    Percentiles pct_ NXSIM_GUARDED_BY(mu_);
};

} // namespace util

#endif // NXSIM_UTIL_LATENCY_RECORDER_H
