#include "util/latency_recorder.h"

namespace util {

void
LatencyRecorder::record(double x)
{
    nx::MutexLock lk(mu_);
    stat_.add(x);
    pct_.add(x);
}

LatencyRecorder::Snapshot
LatencyRecorder::snapshot() const
{
    nx::MutexLock lk(mu_);
    Snapshot s;
    s.count = stat_.count();
    s.mean = stat_.mean();
    s.min = stat_.min();
    s.max = stat_.max();
    if (!pct_.empty()) {
        s.p50 = pct_.percentile(50);
        s.p90 = pct_.percentile(90);
        s.p99 = pct_.percentile(99);
        s.p999 = pct_.percentile(99.9);
    }
    return s;
}

uint64_t
LatencyRecorder::count() const
{
    nx::MutexLock lk(mu_);
    return stat_.count();
}

} // namespace util
