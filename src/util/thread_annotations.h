/**
 * @file
 * Clang thread-safety annotations plus the annotated lock vocabulary.
 *
 * TSan (the `tsan` preset) only catches a lock-discipline bug when a
 * test happens to interleave it; Clang's `-Wthread-safety` analysis
 * proves the discipline at compile time, for every path, from
 * declarations. This header wraps the attributes behind `NXSIM_*`
 * macros that expand to nothing on non-Clang compilers, and provides
 * the annotated primitives the dispatch layer states its locking in:
 *
 *   nx::Mutex      an annotated capability over std::mutex
 *   nx::MutexLock  scoped acquire/release (std::lock_guard shape)
 *   nx::CondVar    condition variable whose wait() REQUIRES the mutex
 *
 * Discipline, enforced by the `clang-tsa` preset
 * (-Werror=thread-safety) and backstopped by nxlint's
 * `mutex-annotation` rule:
 *
 *   - every member a mutex protects is declared NXSIM_GUARDED_BY(mu_)
 *   - private helpers that assume the lock say NXSIM_REQUIRES(mu_)
 *   - public entry points that take the lock say NXSIM_EXCLUDES(mu_),
 *     so re-entry deadlocks are rejected at compile time
 *
 * On GCC the macros vanish and the classes degrade to thin inline
 * wrappers over std::mutex / std::lock_guard semantics — same code,
 * no analysis, zero overhead.
 */

#ifndef NXSIM_UTIL_THREAD_ANNOTATIONS_H
#define NXSIM_UTIL_THREAD_ANNOTATIONS_H

#include <condition_variable>
#include <mutex>

#if defined(__clang__)
#define NXSIM_TSA_ATTRIBUTE__(x) __attribute__((x))
#else
#define NXSIM_TSA_ATTRIBUTE__(x)
#endif

/** Marks a type as a lockable capability (argument names it). */
#define NXSIM_CAPABILITY(x) NXSIM_TSA_ATTRIBUTE__(capability(x))

/** Marks an RAII type that acquires in its ctor, releases in its dtor. */
#define NXSIM_SCOPED_CAPABILITY NXSIM_TSA_ATTRIBUTE__(scoped_lockable)

/** Member data that may only be touched while holding the capability. */
#define NXSIM_GUARDED_BY(x) NXSIM_TSA_ATTRIBUTE__(guarded_by(x))

/** Pointer member whose pointee is protected by the capability. */
#define NXSIM_PT_GUARDED_BY(x) NXSIM_TSA_ATTRIBUTE__(pt_guarded_by(x))

/** The function may only be called while holding the capability. */
#define NXSIM_REQUIRES(...) \
    NXSIM_TSA_ATTRIBUTE__(requires_capability(__VA_ARGS__))

/** The function acquires the capability and does not release it. */
#define NXSIM_ACQUIRE(...) \
    NXSIM_TSA_ATTRIBUTE__(acquire_capability(__VA_ARGS__))

/** The function releases a capability the caller holds. */
#define NXSIM_RELEASE(...) \
    NXSIM_TSA_ATTRIBUTE__(release_capability(__VA_ARGS__))

/** The function acquires the capability iff it returns the given value. */
#define NXSIM_TRY_ACQUIRE(...) \
    NXSIM_TSA_ATTRIBUTE__(try_acquire_capability(__VA_ARGS__))

/** The caller must NOT hold the capability (anti-deadlock contract). */
#define NXSIM_EXCLUDES(...) NXSIM_TSA_ATTRIBUTE__(locks_excluded(__VA_ARGS__))

/** The function returns a reference to the named capability. */
#define NXSIM_RETURN_CAPABILITY(x) NXSIM_TSA_ATTRIBUTE__(lock_returned(x))

/** Runtime assertion that the capability is held (trusted by analysis). */
#define NXSIM_ASSERT_CAPABILITY(x) \
    NXSIM_TSA_ATTRIBUTE__(assert_capability(x))

/** Escape hatch; every use needs a comment saying why analysis fails. */
#define NXSIM_NO_THREAD_SAFETY_ANALYSIS \
    NXSIM_TSA_ATTRIBUTE__(no_thread_safety_analysis)

namespace nx {

/**
 * std::mutex as an annotated capability. BasicLockable, so it also
 * works directly with std::lock_guard and nx::CondVar::wait.
 */
class NXSIM_CAPABILITY("mutex") Mutex
{
  public:
    Mutex() = default;
    Mutex(const Mutex &) = delete;
    Mutex &operator=(const Mutex &) = delete;

    void lock() NXSIM_ACQUIRE() { mu_.lock(); }
    void unlock() NXSIM_RELEASE() { mu_.unlock(); }
    [[nodiscard]] bool try_lock() NXSIM_TRY_ACQUIRE(true)
    {
        return mu_.try_lock();
    }

  private:
    // The raw mutex's single audited home: this class IS the wrapper.
    // nxlint: allow(mutex-annotation): nothing to guard in the wrapper itself
    std::mutex mu_;
};

/**
 * Scoped lock of an nx::Mutex — std::lock_guard semantics, visible to
 * the analysis as holding the capability for the enclosing scope.
 */
class NXSIM_SCOPED_CAPABILITY MutexLock
{
  public:
    explicit MutexLock(Mutex &mu) NXSIM_ACQUIRE(mu) : mu_(mu)
    {
        mu.lock();
    }
    ~MutexLock() NXSIM_RELEASE() { mu_.unlock(); }

    MutexLock(const MutexLock &) = delete;
    MutexLock &operator=(const MutexLock &) = delete;

  private:
    Mutex &mu_;
};

/**
 * Condition variable bound to nx::Mutex. wait() REQUIRES the mutex so
 * a wait outside the critical section is a compile error under the
 * clang-tsa preset; the predicate loop stays at the call site (an
 * explicit `while (!cond) cv.wait(mu);`), where the analysis can see
 * the guarded reads happen under the lock.
 */
class CondVar
{
  public:
    CondVar() = default;
    CondVar(const CondVar &) = delete;
    CondVar &operator=(const CondVar &) = delete;

    void notifyOne() { cv_.notify_one(); }
    void notifyAll() { cv_.notify_all(); }

    /** Atomically release @p mu, sleep, and reacquire before return. */
    void wait(Mutex &mu) NXSIM_REQUIRES(mu) { cv_.wait(mu); }

  private:
    std::condition_variable_any cv_;
};

} // namespace nx

#endif // NXSIM_UTIL_THREAD_ANNOTATIONS_H
