/**
 * @file
 * Typestate protocol declarations for nxstate (tools/nxstate).
 *
 * A protocol names the legal call order of a class's mutating methods;
 * nxstate walks every function body in the tree and flags callers that
 * violate it (protocol-order, use-after-finish, double-finish,
 * ticket-double-claim). The macros expand to a harmless static_assert
 * so the compiler sees nothing but the analyzer sees a declarative
 * table right next to the class it governs.
 *
 * Grammar (full description in tools/nxstate/nxstate.h):
 *
 *     NXSIM_PROTOCOL(Class, phase -> phase -> ...)
 *         phase := method | method[Marker] | {m1|m2|...}
 *                  optionally suffixed * (zero+), + (one+), ? (0/1);
 *                  no suffix means exactly once.
 *         method[Marker] matches only calls whose argument list
 *         mentions the identifier Marker, e.g. write[Finish] matches
 *         s.write(data, Flush::Finish, out).
 *
 *     NXSIM_TICKET_PROTOCOL(Class, issue(m...), claim(m...),
 *                           poll(m...), drain(m...), stop(m...))
 *         issue methods return a ticket (callers bind `r.ticket`);
 *         claim methods consume it exactly once; poll methods check it
 *         without consuming; drain methods claim every outstanding
 *         ticket of that object; stop methods shut the object down.
 *
 * Classes that must stay macro-free can use the comment form instead:
 *
 *     // nxstate: protocol(BitWriter: {writeBits|drain}* -> take)
 */

#ifndef NXSIM_UTIL_PROTOCOL_H
#define NXSIM_UTIL_PROTOCOL_H

/** Declare the legal call order for one class. Analyzer-only. */
#define NXSIM_PROTOCOL(Class, Spec) \
    static_assert(true, "nxstate protocol for " #Class)

/** Declare the ticket lifecycle roles for one class. Analyzer-only. */
#define NXSIM_TICKET_PROTOCOL(Class, ...) \
    static_assert(true, "nxstate ticket protocol for " #Class)

#endif // NXSIM_UTIL_PROTOCOL_H
