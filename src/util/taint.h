/**
 * @file
 * Taint annotations for untrusted input — the vocabulary nxtaint reads.
 *
 * The accelerator modelled by this repo ingests adversarial compressed
 * streams; every value decoded from one (a length, a distance, a header
 * count) is attacker-controlled until a bounds check says otherwise.
 * `tools/nxtaint` tracks those values from their sources (BitReader
 * reads, header bytes, buffers marked here) to memory sinks (copy
 * sizes, container growth, indexing, shift amounts, loop bounds) and
 * demands a dominating sanitizer in between.
 *
 * NXSIM_UNTRUSTED marks a parameter whose value — and, for buffers,
 * whose *contents* — arrive from outside the trust boundary:
 *
 *     GzipStatus gzipUnwrap(NXSIM_UNTRUSTED const std::vector<uint8_t> &member,
 *                           std::vector<uint8_t> &out);
 *
 * The macro expands to nothing: it is an annotation for the analyzer
 * (and the reader), not the compiler. Values loaded from an annotated
 * buffer, or the annotated scalar itself, start tainted inside the
 * function body; comparisons against capacities, checked_cast /
 * truncate_cast, NXSIM_EXPECT-family contracts, and bit-masking with a
 * constant clear the taint. See DESIGN.md "Static analysis stack" for
 * the full source/sink/sanitizer table and the suppression grammar
 * (`// nxtaint: allow(rule): why`).
 */

#ifndef NXSIM_UTIL_TAINT_H
#define NXSIM_UTIL_TAINT_H

#define NXSIM_UNTRUSTED /* annotation consumed by tools/nxtaint */

#endif // NXSIM_UTIL_TAINT_H
