/**
 * @file
 * Deterministic PRNG (xoshiro256**) plus small sampling helpers.
 *
 * Every workload generator in this project derives all randomness from a
 * seeded Xoshiro so that corpora, fault injections and arrival processes
 * are reproducible bit-for-bit across runs and platforms.
 */

#ifndef NXSIM_UTIL_PRNG_H
#define NXSIM_UTIL_PRNG_H

#include <cstdint>
#include <cmath>

namespace util {

/** xoshiro256** 1.0 — fast, high-quality, deterministic across platforms. */
class Xoshiro256
{
  public:
    explicit Xoshiro256(uint64_t seed = 0x9e3779b97f4a7c15ull)
    {
        // SplitMix64 seeding, as recommended by the xoshiro authors.
        uint64_t z = seed;
        for (auto &s : s_) {
            z += 0x9e3779b97f4a7c15ull;
            uint64_t x = z;
            x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
            x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
            s = x ^ (x >> 31);
        }
    }

    /** Next raw 64-bit value. */
    uint64_t
    next()
    {
        auto rotl = [](uint64_t x, int k) {
            return (x << k) | (x >> (64 - k));
        };
        uint64_t result = rotl(s_[1] * 5, 7) * 9;
        uint64_t t = s_[1] << 17;
        s_[2] ^= s_[0];
        s_[3] ^= s_[1];
        s_[1] ^= s_[2];
        s_[0] ^= s_[3];
        s_[2] ^= t;
        s_[3] = rotl(s_[3], 45);
        return result;
    }

    /** Uniform integer in [0, bound). bound must be > 0. */
    uint64_t
    below(uint64_t bound)
    {
        // Lemire-style rejection-free reduction is fine for simulation use.
        return next() % bound;
    }

    /** Uniform integer in [lo, hi]. */
    int64_t
    range(int64_t lo, int64_t hi)
    {
        return lo + static_cast<int64_t>(below(
            static_cast<uint64_t>(hi - lo + 1)));
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Bernoulli trial with probability @p p. */
    bool chance(double p) { return uniform() < p; }

    /** Exponentially distributed value with mean @p mean (> 0). */
    double
    exponential(double mean)
    {
        double u = uniform();
        if (u <= 0.0)
            u = 1e-300;
        return -mean * std::log(u);
    }

    /** Zipf-like rank in [0, n): rank r with weight 1/(r+1)^s. */
    uint64_t
    zipf(uint64_t n, double s = 1.0)
    {
        // Inverse-CDF by linear scan over a truncated harmonic sum is too
        // slow for large n; use the standard rejection sampler instead.
        double b = std::pow(2.0, s - 1.0);
        while (true) {
            double u = uniform();
            double v = uniform();
            double x = std::floor(std::pow(u, -1.0 / (s - 1.0 + 1e-9)));
            double t = std::pow(1.0 + 1.0 / x, s - 1.0 + 1e-9);
            if (v * x * (t - 1.0) / (b - 1.0) <= t / b) {
                auto r = static_cast<uint64_t>(x) - 1;
                if (r < n)
                    return r;
            }
        }
    }

  private:
    uint64_t s_[4] = {};
};

} // namespace util

#endif // NXSIM_UTIL_PRNG_H
