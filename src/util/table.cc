#include "util/table.h"

#include <cstdio>
#include <iomanip>
#include <iostream>
#include <sstream>

namespace util {

void
Table::row(std::vector<std::string> cells)
{
    rows_.push_back(std::move(cells));
}

std::string
Table::str() const
{
    // Column widths over header + all rows.
    size_t ncols = header_.size();
    for (const auto &r : rows_)
        ncols = std::max(ncols, r.size());
    std::vector<size_t> width(ncols, 0);
    auto widen = [&](const std::vector<std::string> &cells) {
        for (size_t i = 0; i < cells.size(); ++i)
            width[i] = std::max(width[i], cells[i].size());
    };
    widen(header_);
    for (const auto &r : rows_)
        widen(r);

    std::ostringstream os;
    os << "== " << title_ << " ==\n";
    auto emit = [&](const std::vector<std::string> &cells) {
        for (size_t i = 0; i < ncols; ++i) {
            std::string c = i < cells.size() ? cells[i] : "";
            os << std::left << std::setw(static_cast<int>(width[i]) + 2)
               << c;
        }
        os << "\n";
    };
    if (!header_.empty()) {
        emit(header_);
        size_t total = 0;
        for (size_t w : width)
            total += w + 2;
        os << std::string(total, '-') << "\n";
    }
    for (const auto &r : rows_)
        emit(r);
    for (const auto &n : notes_)
        os << "  note: " << n << "\n";
    return os.str();
}

void
Table::print() const
{
    std::cout << str() << std::flush;
}

std::string
Table::fmt(double v, int precision)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << v;
    return os.str();
}

std::string
Table::fmtBytes(uint64_t bytes)
{
    const char *units[] = {"B", "KiB", "MiB", "GiB", "TiB"};
    double v = static_cast<double>(bytes);
    int u = 0;
    while (v >= 1024.0 && u < 4) {
        v /= 1024.0;
        ++u;
    }
    std::ostringstream os;
    os << std::fixed << std::setprecision(v < 10 ? 2 : 1) << v << " "
       << units[u];
    return os.str();
}

std::string
Table::fmtRate(double bytes_per_sec)
{
    const char *units[] = {"B/s", "KB/s", "MB/s", "GB/s", "TB/s"};
    double v = bytes_per_sec;
    int u = 0;
    while (v >= 1000.0 && u < 4) {
        v /= 1000.0;
        ++u;
    }
    std::ostringstream os;
    os << std::fixed << std::setprecision(2) << v << " " << units[u];
    return os.str();
}

} // namespace util
