#include "util/bitstream.h"

#include "util/contracts.h"
#include <cstring>

namespace util {

void
BitWriter::writeByte(uint8_t b)
{
    NXSIM_EXPECT(aligned(), "requires byte alignment");
    bytes_.push_back(b);
}

void
BitWriter::writeBytes(std::span<const uint8_t> data)
{
    NXSIM_EXPECT(aligned(), "requires byte alignment");
    bytes_.insert(bytes_.end(), data.begin(), data.end());
}

void
BitWriter::writeU16le(uint16_t v)
{
    NXSIM_EXPECT(aligned(), "requires byte alignment");
    bytes_.push_back(static_cast<uint8_t>(v & 0xff));
    bytes_.push_back(static_cast<uint8_t>(v >> 8));
}

void
BitWriter::writeU32le(uint32_t v)
{
    NXSIM_EXPECT(aligned(), "requires byte alignment");
    for (int i = 0; i < 4; ++i)
        bytes_.push_back(static_cast<uint8_t>((v >> (8 * i)) & 0xff));
}

std::vector<uint8_t>
BitWriter::take()
{
    alignToByte();
    return std::move(bytes_);
}

void
BitReader::alignToByte()
{
    unsigned drop = bitCount_ % 8;
    bitBuf_ >>= drop;
    bitCount_ -= drop;
}

uint16_t
BitReader::readU16le()
{
    alignToByte();
    uint16_t lo = static_cast<uint16_t>(readBits(8));
    uint16_t hi = static_cast<uint16_t>(readBits(8));
    return static_cast<uint16_t>(lo | (hi << 8));
}

uint32_t
BitReader::readU32le()
{
    alignToByte();
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
        v |= readBits(8) << (8 * i);
    return v;
}

bool
BitReader::readBytes(uint8_t *out, size_t n)
{
    alignToByte();
    // Drain any bytes still sitting in the bit buffer first.
    size_t i = 0;
    while (i < n && bitCount_ >= 8) {
        out[i++] = static_cast<uint8_t>(bitBuf_ & 0xff);
        bitBuf_ >>= 8;
        bitCount_ -= 8;
    }
    size_t remain = n - i;
    if (pos_ + remain > data_.size()) {
        overrun_ = true;
        return false;
    }
    if (remain != 0) {
        std::memcpy(out + i, data_.data() + pos_, remain);
        pos_ += remain;
    }
    return true;
}

} // namespace util
