/**
 * @file
 * Resource-ownership annotations — the vocabulary nxown reads.
 *
 * The accelerator protocol modelled by this repo is a chain of
 * ownership hand-offs: a pinned buffer is acquired from the pool,
 * pasted to the device, and must be released exactly once on every
 * outcome path — including the busy-exhaustion fallback, the
 * translation-fault resubmit ladder, and early returns. JobServer
 * tickets follow the same discipline (issued by submit, consumed by
 * exactly one wait/drain). `tools/nxown` checks that discipline
 * per function over a path-sensitive CFG walk; these macros declare
 * which calls move a resource between states.
 *
 * Each macro takes a *tag* naming the resource class (an identifier,
 * e.g. `pool_buffer`, `job_ticket`); acquire/release pairs match only
 * within a tag.
 *
 *     class BufferPool {
 *       class Lease {
 *         ~Lease() NXSIM_RELEASES(pool_buffer);        // RAII holder
 *         void release() NXSIM_RELEASES(pool_buffer);
 *       };
 *       Lease acquire(size_t) NXSIM_ACQUIRES(pool_buffer);
 *       void releaseSlab(uint8_t *p) NXSIM_RELEASES(pool_buffer);
 *     };
 *
 * NXSIM_ACQUIRES(tag)   — the call's result holds one unit of `tag`.
 *                         Every path to function exit must release or
 *                         transfer it; a path that exits holding it is
 *                         an own-leak. When the acquiring method's
 *                         class declares a RELEASES destructor, the
 *                         returned holder is RAII and exits clean.
 * NXSIM_RELEASES(tag)   — the call consumes one unit. On a destructor
 *                         it marks the class as an RAII holder; with
 *                         no arguments on a method of an acquiring
 *                         class it drains *all* handles from that
 *                         source (JobServer::drainAndStop); releasing
 *                         twice is own-double-release, releasing a
 *                         never-acquired handle is
 *                         own-release-unacquired.
 * NXSIM_TRANSFERS(tag)  — the call passes ownership elsewhere (into a
 *                         queue, another thread, the caller); the
 *                         local obligation ends without a release.
 *                         Returning the handle and std::move() also
 *                         transfer, as does passing it to any function
 *                         the analyzer cannot see into — unknown
 *                         callees are conservatively sinks, never
 *                         findings.
 *
 * The macros expand to nothing: they are annotations for the analyzer
 * (and the reader), not the compiler. See DESIGN.md "Static analysis
 * stack" for the full state machine and the suppression grammar
 * (`// nxown: allow(rule): why`).
 */

#ifndef NXSIM_UTIL_OWNERSHIP_H
#define NXSIM_UTIL_OWNERSHIP_H

#define NXSIM_ACQUIRES(tag)  /* annotation consumed by tools/nxown */
#define NXSIM_RELEASES(tag)  /* annotation consumed by tools/nxown */
#define NXSIM_TRANSFERS(tag) /* annotation consumed by tools/nxown */

#endif // NXSIM_UTIL_OWNERSHIP_H
