#include "util/stats.h"

#include <cmath>
#include <sstream>

namespace util {

double
RunningStat::stddev() const
{
    return std::sqrt(variance());
}

double
Percentiles::percentile(double p) const
{
    if (samples_.empty())
        return 0.0;
    std::sort(samples_.begin(), samples_.end());
    double rank = (p / 100.0) * static_cast<double>(samples_.size() - 1);
    size_t lo = static_cast<size_t>(rank);
    size_t hi = std::min(lo + 1, samples_.size() - 1);
    double frac = rank - static_cast<double>(lo);
    return samples_[lo] * (1.0 - frac) + samples_[hi] * frac;
}

uint64_t
StatSet::get(const std::string &name) const
{
    auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second;
}

std::string
StatSet::dump(const std::string &prefix) const
{
    std::ostringstream os;
    for (const auto &[name, value] : counters_)
        os << prefix << "." << name << " = " << value << "\n";
    return os.str();
}

} // namespace util
