/**
 * @file
 * Lightweight statistics helpers shared by the simulator and the benches:
 * running mean/stddev, percentile-capable histograms, and a named counter
 * registry in the spirit of gem5's Stats package (much simplified).
 */

#ifndef NXSIM_UTIL_STATS_H
#define NXSIM_UTIL_STATS_H

#include <algorithm>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace util {

/** Welford running mean / variance / min / max. */
class RunningStat
{
  public:
    /** Fold one sample in. */
    void
    add(double x)
    {
        ++n_;
        double d = x - mean_;
        mean_ += d / static_cast<double>(n_);
        m2_ += d * (x - mean_);
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
        sum_ += x;
    }

    uint64_t count() const { return n_; }
    double mean() const { return n_ ? mean_ : 0.0; }
    double variance() const { return n_ > 1 ? m2_ / double(n_ - 1) : 0.0; }
    double stddev() const;
    double min() const { return n_ ? min_ : 0.0; }
    double max() const { return n_ ? max_ : 0.0; }
    double sum() const { return sum_; }

  private:
    uint64_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 1e300;
    double max_ = -1e300;
    double sum_ = 0.0;
};

/**
 * Sample reservoir with exact percentiles.
 *
 * Benches record at most a few million latency samples, so keeping them all
 * and sorting on demand is simpler and exact; a reservoir cap guards the
 * pathological case.
 */
class Percentiles
{
  public:
    explicit Percentiles(size_t cap = 1u << 22) : cap_(cap) {}

    /** Record one sample (dropped once the reservoir cap is hit). */
    void
    add(double x)
    {
        ++total_;
        if (samples_.size() < cap_)
            samples_.push_back(x);
    }

    /** Exact percentile @p p in [0, 100] over retained samples. */
    double percentile(double p) const;

    uint64_t count() const { return total_; }
    bool empty() const { return samples_.empty(); }

  private:
    size_t cap_;
    uint64_t total_ = 0;
    mutable std::vector<double> samples_;
};

/**
 * Named monotonic counters grouped under an owner prefix.
 *
 * Engines expose a StatSet so tests can assert on microarchitectural
 * event counts (bank conflicts, stall cycles, resubmissions, ...).
 */
class StatSet
{
  public:
    /** Add @p delta to counter @p name (creating it at zero). */
    void
    inc(const std::string &name, uint64_t delta = 1)
    {
        counters_[name] += delta;
    }

    /** Set counter @p name to an absolute value. */
    void
    set(const std::string &name, uint64_t value)
    {
        counters_[name] = value;
    }

    /** Current value (zero when never touched). */
    uint64_t get(const std::string &name) const;

    /** All counters, sorted by name. */
    const std::map<std::string, uint64_t> &all() const { return counters_; }

    /** Reset every counter to zero. */
    void clear() { counters_.clear(); }

    /** Render as "name = value" lines with an owner prefix. */
    std::string dump(const std::string &prefix) const;

  private:
    std::map<std::string, uint64_t> counters_;
};

} // namespace util

#endif // NXSIM_UTIL_STATS_H
