/**
 * @file
 * Runtime contracts for the simulator: the vocabulary nxlint enforces.
 *
 * The hardware modelled by this repo gets its size/alignment invariants
 * right by construction; the software model has to state them. Three
 * macros cover the three positions a contract can occupy:
 *
 *   NXSIM_EXPECT(cond, ...)   precondition at an API boundary
 *   NXSIM_ENSURE(cond, ...)   postcondition / result invariant
 *   NXSIM_ASSERT(cond, ...)   internal invariant inside an algorithm
 *
 * All three behave identically at runtime; the distinction is for the
 * reader. With NXSIM_CONTRACTS_ENABLED (the default, and forced by the
 * debug/sanitizer presets) a violated contract prints
 * `file:line: NXSIM_<KIND> failed: <expr> [msg]` and aborts — so fuzz
 * targets and death tests see a crash, not a silent clamp. With
 * contracts compiled out (-DNXSIM_CONTRACTS=OFF, the max-performance
 * release configuration) the condition becomes an optimizer assumption.
 *
 * The optional trailing argument is a string literal appended to the
 * diagnostic: NXSIM_EXPECT(when >= now_, "scheduling in the past").
 */

#ifndef NXSIM_UTIL_CONTRACTS_H
#define NXSIM_UTIL_CONTRACTS_H

// nxlint: allow(banned-call): this header implements the contract
// machinery itself; std::abort/fprintf are the mechanism, not a bypass.

#include <cstdio>
#include <cstdlib>

#ifndef NXSIM_CONTRACTS_ENABLED
#define NXSIM_CONTRACTS_ENABLED 1
#endif

namespace nx {

/** Abort with a source location; the single funnel for all contracts. */
[[noreturn]] inline void
contractFail(const char *kind, const char *expr, const char *file, int line,
             const char *msg)
{
    std::fprintf(stderr, "%s:%d: %s failed: %s%s%s\n", file, line, kind,
                 expr, msg[0] != '\0' ? " — " : "", msg);
    std::abort();
}

} // namespace nx

#if NXSIM_CONTRACTS_ENABLED

// `"" __VA_ARGS__` concatenates an optional message literal (and keeps
// a zero-argument tail well-formed).
#define NXSIM_CONTRACT_(kind, cond, ...)                                    \
    do {                                                                    \
        if (!(cond)) [[unlikely]]                                           \
            ::nx::contractFail(kind, #cond, __FILE__, __LINE__,             \
                               "" __VA_ARGS__);                             \
    } while (0)

#else // contracts compiled out: feed the condition to the optimizer.

#if defined(__clang__)
#define NXSIM_CONTRACT_(kind, cond, ...)                                    \
    __builtin_assume(static_cast<bool>(cond))
#elif defined(__GNUC__)
#define NXSIM_CONTRACT_(kind, cond, ...)                                    \
    do {                                                                    \
        if (!(cond))                                                        \
            __builtin_unreachable();                                        \
    } while (0)
#else
#define NXSIM_CONTRACT_(kind, cond, ...) ((void)0)
#endif

#endif // NXSIM_CONTRACTS_ENABLED

#define NXSIM_EXPECT(cond, ...)                                             \
    NXSIM_CONTRACT_("NXSIM_EXPECT", cond, __VA_ARGS__)
#define NXSIM_ENSURE(cond, ...)                                             \
    NXSIM_CONTRACT_("NXSIM_ENSURE", cond, __VA_ARGS__)
#define NXSIM_ASSERT(cond, ...)                                             \
    NXSIM_CONTRACT_("NXSIM_ASSERT", cond, __VA_ARGS__)

/** An unconditionally-fatal "can't happen" branch (switch defaults). */
#define NXSIM_UNREACHABLE(...)                                              \
    ::nx::contractFail("NXSIM_UNREACHABLE", "reached", __FILE__, __LINE__,  \
                       "" __VA_ARGS__)

#endif // NXSIM_UTIL_CONTRACTS_H
