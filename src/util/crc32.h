/**
 * @file
 * CRC-32 (IEEE 802.3 polynomial, reflected) as used by gzip (RFC 1952).
 *
 * The accelerator computes the CRC inline with the data pipe; software
 * computes it table-driven. Both ends of every round trip in this project
 * check the CRC, which is what catches functional bugs in the match
 * pipeline or Huffman stages.
 */

#ifndef NXSIM_UTIL_CRC32_H
#define NXSIM_UTIL_CRC32_H

#include <cstdint>
#include <cstddef>
#include <span>

namespace util {

/** Incremental CRC-32 (gzip polynomial 0xEDB88320, reflected form). */
class Crc32
{
  public:
    Crc32() = default;

    /** Fold @p data into the running CRC. */
    void update(std::span<const uint8_t> data);

    /** Finalized CRC value over everything updated so far. */
    uint32_t value() const { return ~state_; }

    /** Reset to the empty-message state. */
    void reset() { state_ = 0xffffffffu; }

  private:
    uint32_t state_ = 0xffffffffu;
};

/** One-shot CRC-32 of @p data. */
uint32_t crc32(std::span<const uint8_t> data);

/**
 * CRC of a concatenation from the parts' CRCs: given crc(A), crc(B)
 * and len(B), returns crc(A||B) without touching the data (zlib's
 * crc32_combine). Lets parallel engines checksum independent chunks
 * and stitch the gzip trailer afterwards.
 */
uint32_t crc32Combine(uint32_t crc_a, uint32_t crc_b, uint64_t len_b);

} // namespace util

#endif // NXSIM_UTIL_CRC32_H
