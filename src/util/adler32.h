/**
 * @file
 * Adler-32 checksum as used by the zlib container (RFC 1950).
 */

#ifndef NXSIM_UTIL_ADLER32_H
#define NXSIM_UTIL_ADLER32_H

#include <cstdint>
#include <cstddef>
#include <span>

namespace util {

/** Incremental Adler-32. Initial state is 1 per RFC 1950. */
class Adler32
{
  public:
    Adler32() = default;

    /** Fold @p data into the running checksum. */
    void update(std::span<const uint8_t> data);

    /** Checksum over everything updated so far. */
    uint32_t value() const { return (b_ << 16) | a_; }

    /** Reset to the empty-message state. */
    void reset() { a_ = 1; b_ = 0; }

  private:
    uint32_t a_ = 1;
    uint32_t b_ = 0;
};

/** One-shot Adler-32 of @p data. */
uint32_t adler32(std::span<const uint8_t> data);

/** Adler-32 of a concatenation from the parts' checksums. */
uint32_t adler32Combine(uint32_t adler_a, uint32_t adler_b,
                        uint64_t len_b);

} // namespace util

#endif // NXSIM_UTIL_ADLER32_H
