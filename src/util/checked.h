/**
 * @file
 * Checked conversions and arithmetic for size/tick math.
 *
 * DEFLATE and the NX pipeline models shuffle values between size_t,
 * uint32_t DDE lengths, 16-bit stored-block fields and 8-bit stream
 * bytes; every one of those boundaries is a place the e842 SHORT_DATA
 * bug class can hide. nxlint bans bare narrowing `static_cast`s in
 * library code and points here instead:
 *
 *   nx::checked_cast<T>(v)    value-preserving narrowing; a contract
 *                             violation if v does not fit in T
 *   nx::truncate_cast<T>(v)   intentional truncation (low-byte
 *                             extraction, checksum folding) — spelled
 *                             out so a reader knows bits may drop
 *   nx::checkedAdd / Mul      overflow-checked unsigned arithmetic
 *   nx::copyBytes             null-safe memcpy for runtime-sized copies
 *
 * checked_cast compiles to a compare-and-branch under the default and
 * sanitizer presets and to a plain cast with -DNXSIM_CONTRACTS=OFF.
 */

#ifndef NXSIM_UTIL_CHECKED_H
#define NXSIM_UTIL_CHECKED_H

#include <cstddef>
#include <cstring>
#include <type_traits>
#include <utility>

#include "util/contracts.h"

namespace nx {

/**
 * Narrow @p v to @p To, aborting (under contracts) on value change.
 * Enum sources convert through their underlying type, so
 * `checked_cast<uint32_t>(BlockType::Stored)` reads naturally.
 */
template <typename To, typename From>
constexpr To
checked_cast(From v)
{
    if constexpr (std::is_enum_v<From>) {
        return checked_cast<To>(
            static_cast<std::underlying_type_t<From>>(v));
    } else {
        static_assert(std::is_integral_v<To> && std::is_integral_v<From>,
                      "checked_cast is for integral conversions");
        NXSIM_EXPECT(std::in_range<To>(v), "narrowing changed the value");
        return static_cast<To>(v);
    }
}

/** Truncate @p v to @p To on purpose; the name is the documentation. */
template <typename To, typename From>
constexpr To
truncate_cast(From v)
{
    if constexpr (std::is_enum_v<From>) {
        return truncate_cast<To>(
            static_cast<std::underlying_type_t<From>>(v));
    } else {
        static_assert(std::is_integral_v<To> && std::is_integral_v<From>,
                      "truncate_cast is for integral conversions");
        return static_cast<To>(v);
    }
}

/** a + b with an overflow contract (unsigned only). */
template <typename T>
constexpr T
checkedAdd(T a, T b)
{
    static_assert(std::is_unsigned_v<T>, "checkedAdd is unsigned-only");
    T out{};
    NXSIM_EXPECT(!__builtin_add_overflow(a, b, &out), "add overflow");
    return out;
}

/** a * b with an overflow contract (unsigned only). */
template <typename T>
constexpr T
checkedMul(T a, T b)
{
    static_assert(std::is_unsigned_v<T>, "checkedMul is unsigned-only");
    T out{};
    NXSIM_EXPECT(!__builtin_mul_overflow(a, b, &out), "mul overflow");
    return out;
}

/**
 * memcpy for runtime-sized copies: n == 0 is a no-op (so null spans are
 * fine), and non-zero copies contract-check the pointers instead of
 * handing nullptr UB to memcpy — the BitReader bug class.
 */
inline void
copyBytes(void *dst, const void *src, size_t n)
{
    if (n == 0)
        return;
    NXSIM_EXPECT(dst != nullptr && src != nullptr, "copyBytes(nullptr)");
    std::memcpy(dst, src, n);
}

} // namespace nx

#endif // NXSIM_UTIL_CHECKED_H
