/**
 * @file
 * Bit-granular I/O in the LSB-first convention used by DEFLATE (RFC 1951).
 *
 * DEFLATE packs the first bit of the stream into the least significant bit
 * of the first byte. Huffman codes are written most-significant-bit first
 * (i.e. bit-reversed relative to the packing order), while extra-bits fields
 * are written LSB first. BitWriter/BitReader expose exactly those two
 * primitives so the codec layers never deal with bit order directly.
 */

#ifndef NXSIM_UTIL_BITSTREAM_H
#define NXSIM_UTIL_BITSTREAM_H

#include <cstdint>
#include <cstddef>
#include <span>
#include <utility>
#include <vector>

namespace util {

/**
 * Accumulates bits LSB-first into a growing byte buffer.
 *
 * All write methods take the value in "natural" (LSB-first) order; Huffman
 * codes must be pre-reversed by the encoder (see reverseBits()).
 */
// nxstate: protocol(BitWriter: {writeBits|alignToByte|writeByte|writeBytes|writeU16le|writeU32le|drain}* -> take)
class BitWriter
{
  public:
    BitWriter() = default;

    /** Append the low @p nbits bits of @p value, LSB first. nbits <= 32. */
    void
    writeBits(uint32_t value, unsigned nbits)
    {
        bitBuf_ |= static_cast<uint64_t>(value & mask(nbits)) << bitCount_;
        bitCount_ += nbits;
        while (bitCount_ >= 8) {
            bytes_.push_back(static_cast<uint8_t>(bitBuf_ & 0xff));
            bitBuf_ >>= 8;
            bitCount_ -= 8;
        }
    }

    /** Pad with zero bits to the next byte boundary. */
    void
    alignToByte()
    {
        if (bitCount_ > 0) {
            bytes_.push_back(static_cast<uint8_t>(bitBuf_ & 0xff));
            bitBuf_ = 0;
            bitCount_ = 0;
        }
    }

    /** Append a whole byte; requires byte alignment. */
    void writeByte(uint8_t b);

    /** Append raw bytes; requires byte alignment. */
    void writeBytes(std::span<const uint8_t> data);

    /** Append a 16-bit little-endian value; requires byte alignment. */
    void writeU16le(uint16_t v);

    /** Append a 32-bit little-endian value; requires byte alignment. */
    void writeU32le(uint32_t v);

    /** Total bits written so far (including unflushed ones). */
    uint64_t bitsWritten() const { return bytes_.size() * 8 + bitCount_; }

    /** True when the cursor sits on a byte boundary. */
    bool aligned() const { return bitCount_ == 0; }

    /** Finish the stream (zero-pad) and move the bytes out. */
    std::vector<uint8_t> take();

    /**
     * Move out the bytes completed so far WITHOUT finishing: any
     * partial byte stays buffered, so writing can continue with bit
     * continuity. This is the streaming-compressor drain primitive.
     */
    std::vector<uint8_t>
    drain()
    {
        return std::exchange(bytes_, {});
    }

    /** Access bytes flushed so far without finishing the stream. */
    const std::vector<uint8_t> &bytes() const { return bytes_; }

  private:
    static uint32_t
    mask(unsigned nbits)
    {
        return nbits >= 32 ? 0xffffffffu : ((1u << nbits) - 1u);
    }

    std::vector<uint8_t> bytes_;
    uint64_t bitBuf_ = 0;
    unsigned bitCount_ = 0;
};

/**
 * Reads bits LSB-first from a byte buffer.
 *
 * Reading past the end is reported via overrun() rather than by throwing,
 * so the inflate hot loop stays branch-light; callers check overrun() at
 * block boundaries.
 */
class BitReader
{
  public:
    explicit BitReader(std::span<const uint8_t> data) : data_(data) {}

    /** Read @p nbits (<= 32) LSB-first; returns 0 and sets overrun at EOF. */
    uint32_t
    readBits(unsigned nbits)
    {
        fill(nbits);
        if (bitCount_ < nbits) {
            overrun_ = true;
            bitCount_ = 0;
            bitBuf_ = 0;
            return 0;
        }
        uint32_t v = static_cast<uint32_t>(bitBuf_) &
            (nbits >= 32 ? 0xffffffffu : ((1u << nbits) - 1u));
        bitBuf_ >>= nbits;
        bitCount_ -= nbits;
        return v;
    }

    /**
     * Peek up to @p nbits without consuming. Missing high bits beyond EOF
     * read as zero; the caller consumes only what a decode table says is
     * valid, and true overrun is caught on consume.
     */
    uint32_t
    peekBits(unsigned nbits)
    {
        fill(nbits);
        return static_cast<uint32_t>(bitBuf_) &
            (nbits >= 32 ? 0xffffffffu : ((1u << nbits) - 1u));
    }

    /** Consume @p nbits previously peeked. */
    void
    consumeBits(unsigned nbits)
    {
        if (bitCount_ < nbits) {
            overrun_ = true;
            bitCount_ = 0;
            bitBuf_ = 0;
            return;
        }
        bitBuf_ >>= nbits;
        bitCount_ -= nbits;
    }

    /** Discard bits to the next byte boundary. */
    void alignToByte();

    /** Read a whole little-endian 16-bit value (must be byte-aligned). */
    uint16_t readU16le();

    /** Read a whole little-endian 32-bit value (must be byte-aligned). */
    uint32_t readU32le();

    /** Copy @p n raw bytes (must be byte-aligned). Returns false at EOF. */
    bool readBytes(uint8_t *out, size_t n);

    /** True once any read ran past the end of the input. */
    bool overrun() const { return overrun_; }

    /** Bits consumed so far. */
    uint64_t bitsConsumed() const { return pos_ * 8 - bitCount_; }

    /** Bytes fully or partially consumed, rounded up. */
    size_t bytesConsumed() const { return (bitsConsumed() + 7) / 8; }

    /** True when all input bits have been consumed. */
    bool
    exhausted() const
    {
        return pos_ == data_.size() && bitCount_ == 0;
    }

  private:
    void
    fill(unsigned need)
    {
        while (bitCount_ < need && pos_ < data_.size()) {
            bitBuf_ |= static_cast<uint64_t>(data_[pos_++]) << bitCount_;
            bitCount_ += 8;
        }
    }

    std::span<const uint8_t> data_;
    size_t pos_ = 0;
    uint64_t bitBuf_ = 0;
    unsigned bitCount_ = 0;
    bool overrun_ = false;
};

/** Reverse the low @p nbits of @p v (used to emit Huffman codes MSB-first). */
inline uint32_t
reverseBits(uint32_t v, unsigned nbits)
{
    uint32_t r = 0;
    for (unsigned i = 0; i < nbits; ++i) {
        r = (r << 1) | (v & 1);
        v >>= 1;
    }
    return r;
}

} // namespace util

#endif // NXSIM_UTIL_BITSTREAM_H
