#include "util/adler32.h"

namespace util {

namespace {
constexpr uint32_t kMod = 65521;
// Largest n such that 255n(n+1)/2 + (n+1)(kMod-1) fits in 32 bits.
constexpr size_t kNmax = 5552;
} // namespace

void
Adler32::update(std::span<const uint8_t> data)
{
    size_t i = 0;
    while (i < data.size()) {
        size_t chunk = std::min(kNmax, data.size() - i);
        for (size_t j = 0; j < chunk; ++j) {
            a_ += data[i + j];
            b_ += a_;
        }
        a_ %= kMod;
        b_ %= kMod;
        i += chunk;
    }
}

uint32_t
adler32(std::span<const uint8_t> data)
{
    Adler32 a;
    a.update(data);
    return a.value();
}

uint32_t
adler32Combine(uint32_t adler_a, uint32_t adler_b, uint64_t len_b)
{
    // Processing B after A: the running a continues from aA, so
    //   a = aA + (aB - 1)
    //   b = bA + bB + lenB * (aA - 1)
    uint64_t a1 = adler_a & 0xffff;
    uint64_t b1 = (adler_a >> 16) & 0xffff;
    uint64_t a2 = adler_b & 0xffff;
    uint64_t b2 = (adler_b >> 16) & 0xffff;
    uint64_t rem = len_b % kMod;

    uint64_t a = (a1 + a2 + kMod - 1) % kMod;
    uint64_t b = (b1 + b2 + rem * ((a1 + kMod - 1) % kMod)) % kMod;
    return static_cast<uint32_t>((b << 16) | a);
}

} // namespace util
