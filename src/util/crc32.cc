#include "util/crc32.h"

#include <array>

namespace util {

namespace {

constexpr uint32_t kPoly = 0xedb88320u;

constexpr std::array<uint32_t, 256>
makeTable()
{
    std::array<uint32_t, 256> t{};
    for (uint32_t i = 0; i < 256; ++i) {
        uint32_t c = i;
        for (int k = 0; k < 8; ++k)
            c = (c & 1) ? (kPoly ^ (c >> 1)) : (c >> 1);
        t[i] = c;
    }
    return t;
}

constexpr auto kTable = makeTable();

} // namespace

void
Crc32::update(std::span<const uint8_t> data)
{
    uint32_t c = state_;
    for (uint8_t b : data)
        c = kTable[(c ^ b) & 0xff] ^ (c >> 8);
    state_ = c;
}

uint32_t
crc32(std::span<const uint8_t> data)
{
    Crc32 c;
    c.update(data);
    return c.value();
}

namespace {

/** Multiply GF(2) 32x32 matrix by vector. */
uint32_t
gf2MatTimesVec(const std::array<uint32_t, 32> &mat, uint32_t vec)
{
    uint32_t sum = 0;
    size_t i = 0;
    while (vec) {
        if (vec & 1)
            sum ^= mat[i];
        vec >>= 1;
        ++i;
    }
    return sum;
}

/** Square a GF(2) matrix. */
std::array<uint32_t, 32>
gf2MatSquare(const std::array<uint32_t, 32> &mat)
{
    std::array<uint32_t, 32> sq{};
    for (size_t i = 0; i < 32; ++i)
        sq[i] = gf2MatTimesVec(mat, mat[i]);
    return sq;
}

} // namespace

uint32_t
crc32Combine(uint32_t crc_a, uint32_t crc_b, uint64_t len_b)
{
    if (len_b == 0)
        return crc_a;

    // odd = matrix advancing the CRC register by one zero bit.
    std::array<uint32_t, 32> odd{};
    odd[0] = kPoly;
    for (size_t i = 1; i < 32; ++i)
        odd[i] = 1u << (i - 1);
    auto even = gf2MatSquare(odd);    // two zero bits
    odd = gf2MatSquare(even);         // four zero bits

    // Advance crc_a through len_b zero BYTES by repeated squaring.
    uint64_t len = len_b;
    do {
        even = gf2MatSquare(odd);
        if (len & 1)
            crc_a = gf2MatTimesVec(even, crc_a);
        len >>= 1;
        if (len == 0)
            break;
        odd = gf2MatSquare(even);
        if (len & 1)
            crc_a = gf2MatTimesVec(odd, crc_a);
        len >>= 1;
    } while (len != 0);

    return crc_a ^ crc_b;
}

} // namespace util
