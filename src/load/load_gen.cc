#include "load/load_gen.h"

#include <algorithm>
#include <bit>
#include <chrono>
#include <thread>

#include "util/checked.h"
#include "util/contracts.h"

namespace load {

namespace {

using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point t0)
{
    return std::chrono::duration<double>(Clock::now() - t0).count();
}

/** FNV-1a fold of one 64-bit value. */
uint64_t
fnv64(uint64_t h, uint64_t v)
{
    for (int i = 0; i < 8; ++i) {
        h ^= (v >> (8 * i)) & 0xffu;
        h *= 0x100000001b3ull;
    }
    return h;
}

uint64_t
bitsOf(double d)
{
    return std::bit_cast<uint64_t>(d);
}

/** Deterministic per-client seed split (SplitMix64 step). */
uint64_t
splitSeed(uint64_t seed, uint64_t lane)
{
    uint64_t z = seed + 0x9e3779b97f4a7c15ull * (lane + 1);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

} // namespace

uint64_t
planScheduleDigest(const LoadGenConfig &cfg)
{
    // Construction plans the full traffic; nothing runs.
    return LoadGen(cfg).scheduleDigest();
}

LoadGen::LoadGen(const LoadGenConfig &cfg) : cfg_(cfg), mix_(cfg.mix)
{
    NXSIM_EXPECT(cfg_.clients > 0, "load needs >= 1 client");
    NXSIM_EXPECT(cfg_.requestsPerClient > 0,
                 "load needs >= 1 request per client");
    NXSIM_EXPECT(cfg_.warmupFraction >= 0.0 && cfg_.warmupFraction < 1.0,
                 "warmup fraction must be in [0, 1)");
    NXSIM_EXPECT(cfg_.workers > 0 && cfg_.windows > 0,
                 "load geometry needs >= 1 worker and window");
    for (const MixClass &mc : cfg_.mix.classes)
        if (std::find(formats_.begin(), formats_.end(), mc.format) ==
            formats_.end())
            formats_.push_back(mc.format);
    buildPlan();
}

void
LoadGen::buildPlan()
{
    size_t nc = nx::checked_cast<size_t>(cfg_.clients);
    size_t nr = nx::checked_cast<size_t>(cfg_.requestsPerClient);
    plan_.resize(nc);
    uint64_t h = 0xcbf29ce484222325ull;   // FNV offset basis
    for (size_t c = 0; c < nc; ++c) {
        // Two independent deterministic streams per client: arrival
        // timing and request sampling. Thread scheduling can never
        // perturb either — the whole plan exists before any thread.
        ArrivalProcess arr(cfg_.arrival, splitSeed(cfg_.seed, 2 * c));
        util::Xoshiro256 pick(splitSeed(cfg_.seed, 2 * c + 1));
        auto &pl = plan_[c];
        pl.reserve(nr);
        double t = 0.0;
        for (size_t i = 0; i < nr; ++i) {
            Planned p;
            double d = arr.nextDelaySeconds();
            // Open-loop plans carry absolute offsets; closed-loop
            // plans carry the per-request think delay.
            t += d;
            p.at = cfg_.arrival.kind == ArrivalKind::ClosedLoop ? d : t;
            p.req = mix_.sample(pick);
            h = fnv64(h, c);
            h = fnv64(h, i);
            h = fnv64(h, p.req.classIndex);
            h = fnv64(h, p.req.variantIndex);
            h = fnv64(h, p.req.kind == core::JobKind::Compress ? 0 : 1);
            h = fnv64(h, p.req.payload->size());
            h = fnv64(h, bitsOf(p.at));
            pl.push_back(std::move(p));
        }
    }
    digest_ = h;
}

LoadReport
LoadGen::run(const nx::NxConfig &chip)
{
    core::JobServerConfig jcfg;
    jcfg.workers = cfg_.workers;
    jcfg.windows = cfg_.windows;
    jcfg.window.fifoDepth = cfg_.fifoDepth;
    core::JobServer server(chip, jcfg);
    LoadReport rep = run(server);
    server.drainAndStop();
    return rep;
}

LoadReport
LoadGen::run(core::JobServer &server)
{
    size_t nc = plan_.size();
    outcomes_.assign(nc, {});

    // One session per (client, format) over the shared server — a
    // session speaks one stream format, so a mixed-format client owns
    // one per format, all pasting into the client's window (windows
    // assigned round-robin): the many-requesters/one-engine-pool shape.
    std::vector<std::vector<std::unique_ptr<nx::Session>>> sessions(nc);
    for (size_t c = 0; c < nc; ++c) {
        sessions[c].reserve(formats_.size());
        for (nx::SessionFormat f : formats_) {
            nx::SessionPolicy pol = cfg_.policy;
            pol.format = f;
            pol.window = nx::checked_cast<int>(c) % server.windowCount();
            sessions[c].push_back(
                std::make_unique<nx::Session>(server, pol));
        }
    }

    std::vector<std::vector<CapturedResult>> captured(
        cfg_.captureResults ? nc : 0);

    {
        nx::MutexLock lk(mu_);
        gateOpen_ = false;
    }
    std::vector<std::thread> clients;
    clients.reserve(nc);
    for (size_t c = 0; c < nc; ++c) {
        clients.emplace_back([this, c, &sessions, &captured] {
            clientLoop(nx::checked_cast<int>(c), sessions[c],
                       cfg_.captureResults ? &captured[c] : nullptr);
        });
    }

    Clock::time_point t0 = Clock::now();
    {
        nx::MutexLock lk(mu_);
        t0_ = t0;
        gateOpen_ = true;
    }
    gateCv_.notifyAll();
    // A startPaused server is released only after every client is at
    // the gate, so acceptance order is a pure function of the plan.
    server.resume();

    for (auto &t : clients)
        t.join();
    double elapsed = secondsSince(t0);

    LoadReport rep = finish(server, elapsed);
    for (auto &perClient : sessions) {
        for (auto &s : perClient) {
            auto st = s->stats();
            rep.accelRouted += st.accelRouted;
            rep.softwareRouted += st.softwareRouted;
            rep.fallbacks += st.fallbacks;
            rep.deviceFaults += st.deviceFaults;
            rep.bytesIn += st.bytesIn;
            rep.bytesOut += st.bytesOut;
            s->close();
        }
    }
    rep.fallbackRate = rep.accelRouted > 0
        ? static_cast<double>(rep.fallbacks) /
            static_cast<double>(rep.accelRouted)
        : 0.0;
    rep.throughputBps = elapsed > 0.0
        ? static_cast<double>(rep.bytesIn) / elapsed
        : 0.0;
    if (cfg_.captureResults)
        for (auto &per : captured)
            for (auto &r : per)
                rep.captured.push_back(std::move(r));
    return rep;
}

void
LoadGen::clientLoop(
    int client,
    const std::vector<std::unique_ptr<nx::Session>> &sessions,
    std::vector<CapturedResult> *capture)
{
    Clock::time_point t0;
    {
        nx::MutexLock lk(mu_);
        while (!gateOpen_)
            gateCv_.wait(mu_);
        t0 = t0_;
    }

    const auto &pl = plan_[nx::checked_cast<size_t>(client)];
    ClientOutcome &oc = outcomes_[nx::checked_cast<size_t>(client)];
    const bool open = cfg_.arrival.kind != ArrivalKind::ClosedLoop;
    const size_t warmup = static_cast<size_t>(
        cfg_.warmupFraction *
        static_cast<double>(cfg_.requestsPerClient));

    for (size_t i = 0; i < pl.size(); ++i) {
        const Planned &p = pl[i];
        Clock::time_point ref;
        if (open) {
            // Latency is measured from the *scheduled* arrival: when
            // the client is running behind, the backlog it accrued is
            // charged to every late request (no coordinated omission).
            ref = t0 + std::chrono::duration_cast<Clock::duration>(
                           std::chrono::duration<double>(p.at));
            std::this_thread::sleep_until(ref);
        } else {
            ref = Clock::now();
        }

        size_t fi = nx::checked_cast<size_t>(
            std::find(formats_.begin(), formats_.end(), p.req.format) -
            formats_.begin());
        nx::Session &session = *sessions[fi];
        auto res = p.req.kind == core::JobKind::Compress
            ? session.compress(*p.req.payload)
            : session.decompress(*p.req.payload);
        double lat = secondsSince(ref);

        ++oc.submitted;
        if (res.ok)
            ++oc.completed;
        else
            ++oc.failed;
        if (i >= warmup) {
            ++oc.measured;
            latency_.record(lat);
        }
        if (capture != nullptr) {
            CapturedResult cr;
            cr.client = client;
            cr.requestIndex = i;
            cr.classIndex = p.req.classIndex;
            cr.variantIndex = p.req.variantIndex;
            cr.kind = p.req.kind;
            cr.ok = res.ok;
            cr.fellBack = res.fellBack;
            cr.backend = res.backend;
            cr.data = std::move(res.data);
            capture->push_back(std::move(cr));
        }

        if (!open)
            std::this_thread::sleep_for(
                std::chrono::duration_cast<Clock::duration>(
                    std::chrono::duration<double>(p.at)));
    }
}

LoadReport
LoadGen::finish(core::JobServer &server, double elapsed)
{
    LoadReport rep;
    rep.clients = cfg_.clients;
    rep.requestsPerClient = cfg_.requestsPerClient;
    rep.arrival = cfg_.arrival.kind;
    rep.seed = cfg_.seed;
    rep.workers = server.workerCount();
    rep.windows = server.windowCount();
    rep.fifoDepth = cfg_.fifoDepth;
    rep.scheduleDigest = digest_;
    rep.elapsedSeconds = elapsed;

    rep.perClientCompleted.reserve(outcomes_.size());
    for (const ClientOutcome &oc : outcomes_) {
        rep.submitted += oc.submitted;
        rep.completed += oc.completed;
        rep.failed += oc.failed;
        rep.measured += oc.measured;
        rep.perClientCompleted.push_back(oc.completed);
    }
    uint64_t mn = ~uint64_t{0};
    uint64_t mx = 0;
    for (uint64_t c : rep.perClientCompleted) {
        mn = std::min(mn, c);
        mx = std::max(mx, c);
    }
    rep.fairnessMinOverMax = mx > 0
        ? static_cast<double>(mn) / static_cast<double>(mx)
        : 1.0;

    rep.throughputRps = elapsed > 0.0
        ? static_cast<double>(rep.completed) / elapsed
        : 0.0;
    rep.latency = latency_.snapshot();

    // All requests are synchronous, so by join time the server has
    // completed everything this run pasted: the snapshot is settled.
    auto ss = server.stats();
    rep.busyRejects = ss.busyRejects;
    rep.pasteAttempts = ss.submitted + ss.busyRejects;
    rep.busyRejectRate = rep.pasteAttempts > 0
        ? static_cast<double>(rep.busyRejects) /
            static_cast<double>(rep.pasteAttempts)
        : 0.0;
    rep.queueDepthHighWater = ss.queueDepthHighWater;
    rep.windowBusyRejects = ss.windowBusyRejects;
    return rep;
}

} // namespace load
