#include "load/slo_report.h"

#include <cinttypes>
#include <cstdio>

#include "util/table.h"

namespace load {

namespace {

/** Shortest round-trippable-enough stable double rendering. */
std::string
num(double v)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.9g", v);
    return buf;
}

std::string
hex64(uint64_t v)
{
    char buf[24];
    std::snprintf(buf, sizeof(buf), "0x%016" PRIx64, v);
    return buf;
}

void
kv(std::string &out, int indent, const char *key, const std::string &val,
   bool last = false)
{
    out.append(static_cast<size_t>(indent), ' ');
    out += "\"";
    out += key;
    out += "\": ";
    out += val;
    out += last ? "\n" : ",\n";
}

std::string
quoted(const std::string &s)
{
    // Keys and values here are internal identifiers (no quotes or
    // control characters by construction); quoting stays trivial.
    return "\"" + s + "\"";
}

std::string
u64(uint64_t v)
{
    return std::to_string(v);
}

std::string
arr(const std::vector<uint64_t> &vs)
{
    std::string out = "[";
    for (size_t i = 0; i < vs.size(); ++i) {
        if (i > 0)
            out += ", ";
        out += std::to_string(vs[i]);
    }
    out += "]";
    return out;
}

void
scenarioJson(std::string &out, const NamedReport &nr, bool last)
{
    const LoadReport &r = nr.second;
    out += "    {\n";
    kv(out, 6, "name", quoted(nr.first));
    out += "      \"config\": {\n";
    kv(out, 8, "arrival", quoted(toString(r.arrival)));
    kv(out, 8, "clients", std::to_string(r.clients));
    kv(out, 8, "requests_per_client",
       std::to_string(r.requestsPerClient));
    kv(out, 8, "seed", u64(r.seed));
    kv(out, 8, "workers", std::to_string(r.workers));
    kv(out, 8, "windows", std::to_string(r.windows));
    kv(out, 8, "fifo_depth", std::to_string(r.fifoDepth), true);
    out += "      },\n";
    kv(out, 6, "schedule_digest", quoted(hex64(r.scheduleDigest)));
    out += "      \"results\": {\n";
    kv(out, 8, "elapsed_seconds", num(r.elapsedSeconds));
    kv(out, 8, "submitted", u64(r.submitted));
    kv(out, 8, "completed", u64(r.completed));
    kv(out, 8, "failed", u64(r.failed));
    kv(out, 8, "measured", u64(r.measured));
    kv(out, 8, "bytes_in", u64(r.bytesIn));
    kv(out, 8, "bytes_out", u64(r.bytesOut));
    kv(out, 8, "throughput_rps", num(r.throughputRps));
    kv(out, 8, "throughput_bps", num(r.throughputBps));
    out += "        \"latency_seconds\": {\n";
    kv(out, 10, "count", u64(r.latency.count));
    kv(out, 10, "mean", num(r.latency.mean));
    kv(out, 10, "min", num(r.latency.min));
    kv(out, 10, "max", num(r.latency.max));
    kv(out, 10, "p50", num(r.latency.p50));
    kv(out, 10, "p90", num(r.latency.p90));
    kv(out, 10, "p99", num(r.latency.p99));
    kv(out, 10, "p999", num(r.latency.p999), true);
    out += "        },\n";
    kv(out, 8, "paste_attempts", u64(r.pasteAttempts));
    kv(out, 8, "busy_rejects", u64(r.busyRejects));
    kv(out, 8, "busy_reject_rate", num(r.busyRejectRate));
    kv(out, 8, "accel_routed", u64(r.accelRouted));
    kv(out, 8, "software_routed", u64(r.softwareRouted));
    kv(out, 8, "fallbacks", u64(r.fallbacks));
    kv(out, 8, "fallback_rate", num(r.fallbackRate));
    kv(out, 8, "device_faults", u64(r.deviceFaults));
    kv(out, 8, "queue_depth_high_water", u64(r.queueDepthHighWater));
    kv(out, 8, "window_busy_rejects", arr(r.windowBusyRejects));
    kv(out, 8, "fairness_min_over_max", num(r.fairnessMinOverMax));
    kv(out, 8, "per_client_completed", arr(r.perClientCompleted), true);
    out += "      }\n";
    out += last ? "    }\n" : "    },\n";
}

} // namespace

std::string
benchJson(const BenchRunInfo &info, const std::vector<NamedReport> &runs)
{
    std::string out = "{\n";
    kv(out, 2, "schema_version",
       std::to_string(kBenchJsonSchemaVersion));
    kv(out, 2, "bench", quoted(info.bench));
    kv(out, 2, "chip", quoted(info.chip));
    kv(out, 2, "smoke", info.smoke ? "true" : "false");
    if (runs.empty()) {
        out += "  \"scenarios\": []\n";
    } else {
        out += "  \"scenarios\": [\n";
        for (size_t i = 0; i < runs.size(); ++i)
            scenarioJson(out, runs[i], i + 1 == runs.size());
        out += "  ]\n";
    }
    out += "}\n";
    return out;
}

void
printReport(const std::string &name, const LoadReport &r)
{
    util::Table t("L1: " + name + " (" + toString(r.arrival) + ", " +
                  std::to_string(r.clients) + " clients x " +
                  std::to_string(r.requestsPerClient) + " reqs, " +
                  std::to_string(r.workers) + "w/" +
                  std::to_string(r.windows) + "win/fifo " +
                  std::to_string(r.fifoDepth) + ")");
    t.header({"metric", "value"});
    t.row({"throughput", util::Table::fmt(r.throughputRps, 0) +
                             " req/s, " +
                             util::Table::fmtRate(r.throughputBps)});
    t.row({"latency p50/p99/p999 us",
           util::Table::fmt(r.latency.p50 * 1e6, 1) + " / " +
               util::Table::fmt(r.latency.p99 * 1e6, 1) + " / " +
               util::Table::fmt(r.latency.p999 * 1e6, 1)});
    t.row({"completed/submitted", std::to_string(r.completed) + "/" +
                                      std::to_string(r.submitted)});
    t.row({"busy-reject rate",
           util::Table::fmt(100.0 * r.busyRejectRate, 2) + "% (" +
               std::to_string(r.busyRejects) + ")"});
    t.row({"fallback rate",
           util::Table::fmt(100.0 * r.fallbackRate, 2) + "% (" +
               std::to_string(r.fallbacks) + " of " +
               std::to_string(r.accelRouted) + " accel-routed)"});
    t.row({"fairness min/max", util::Table::fmt(r.fairnessMinOverMax, 3)});
    t.row({"queue high-water", std::to_string(r.queueDepthHighWater)});
    t.print();
}

} // namespace load
