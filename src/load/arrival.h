/**
 * @file
 * Seeded deterministic arrival-process generators for the serving
 * load harness.
 *
 * The paper's headline is shared-queue scaling under *traffic*, not
 * single-stream speed, and traffic has a shape: steady open-loop
 * services see Poisson arrivals, batchy clients (Spark shuffle
 * spills, log shippers) arrive in on/off bursts, and interactive
 * clients are closed loops that think between requests. Each shape
 * stresses the VAS window FIFOs differently — Poisson probes the
 * steady-state queue, bursts probe the busy-reject path, closed loops
 * self-throttle and probe fairness — so the harness models all three:
 *
 *  - OpenPoisson: exponential inter-arrivals at a configured mean
 *    rate; the client fires on schedule regardless of completions.
 *  - Bursty: a two-state Markov-modulated process — exponentially
 *    distributed ON dwells emitting Poisson arrivals at a burst rate,
 *    separated by silent OFF dwells. Long-run rate is
 *    burstRate x dutyCycle().
 *  - ClosedLoop: no schedule; the generator emits exponential think
 *    times the client sleeps between a completion and its next
 *    request (the classic interactive-client model).
 *
 * Everything derives from one util::Xoshiro256 seed: the same seed
 * always yields the identical delay sequence, which is what lets the
 * bench pin a schedule digest into BENCH_l1_serving.json and lets
 * tests replay a run exactly.
 */

#ifndef NXSIM_LOAD_ARRIVAL_H
#define NXSIM_LOAD_ARRIVAL_H

#include <cstdint>
#include <vector>

#include "util/prng.h"

namespace load {

/** Traffic shape a simulated client follows. */
enum class ArrivalKind : uint8_t
{
    OpenPoisson,   ///< open loop, exponential inter-arrivals
    Bursty,        ///< open loop, Markov-modulated on/off Poisson
    ClosedLoop,    ///< request -> completion -> think -> request
};

/** Human-readable arrival-kind name (stable: appears in BENCH json). */
const char *toString(ArrivalKind k);

/** Parameters of one client's arrival process. */
struct ArrivalConfig
{
    ArrivalKind kind = ArrivalKind::OpenPoisson;

    /** OpenPoisson: mean arrivals per second per client. */
    double ratePerSec = 2000.0;

    /** Bursty: mean ON-dwell seconds (arrivals flow). */
    double burstOnSeconds = 0.005;
    /** Bursty: mean OFF-dwell seconds (silence). */
    double burstOffSeconds = 0.015;
    /** Bursty: arrival rate while ON, per second. */
    double burstRatePerSec = 8000.0;

    /** ClosedLoop: mean think seconds between completion and next. */
    double thinkSeconds = 0.0005;

    /** Long-run ON fraction of the bursty process. */
    double
    dutyCycle() const
    {
        return burstOnSeconds / (burstOnSeconds + burstOffSeconds);
    }

    /**
     * Long-run mean arrival rate of the open-loop shapes (ClosedLoop
     * has no offered rate; it is completion-driven).
     */
    double meanRatePerSec() const;
};

/**
 * One client's deterministic delay stream. Construction validates the
 * config (positive rates/dwells) by contract.
 */
class ArrivalProcess
{
  public:
    ArrivalProcess(const ArrivalConfig &cfg, uint64_t seed);

    /**
     * Next delay in seconds: inter-arrival gap for the open-loop
     * kinds, think time for ClosedLoop.
     */
    double nextDelaySeconds();

    /**
     * The next @p n delays, accumulated into absolute offsets from
     * zero (an open-loop client's paste schedule; for ClosedLoop the
     * cumulative think budget). Advances the stream.
     */
    std::vector<double> schedule(size_t n);

    const ArrivalConfig &config() const { return cfg_; }

  private:
    ArrivalConfig cfg_;
    util::Xoshiro256 rng_;
    bool on_ = true;          ///< bursty modulation state
    double dwellLeft_ = 0.0;  ///< seconds left in the current dwell
};

} // namespace load

#endif // NXSIM_LOAD_ARRIVAL_H
