#include "load/workload_mix.h"

#include "core/device.h"
#include "e842/e842.h"
#include "util/checked.h"
#include "util/contracts.h"
#include "workloads/corpus.h"

namespace load {

namespace {

std::vector<uint8_t>
generate(Content c, size_t bytes, uint64_t seed)
{
    switch (c) {
      case Content::Text: return workloads::makeText(bytes, seed);
      case Content::Log: return workloads::makeLog(bytes, seed);
      case Content::Json: return workloads::makeJson(bytes, seed);
      case Content::Binary: return workloads::makeBinary(bytes, seed);
      case Content::Random: return workloads::makeRandom(bytes, seed);
      case Content::Zeros: return workloads::makeZeros(bytes);
      case Content::Mixed: break;
    }
    return workloads::makeMixed(bytes, seed);
}

nx::Framing
framingOf(nx::SessionFormat f)
{
    switch (f) {
      case nx::SessionFormat::Gzip: return nx::Framing::Gzip;
      case nx::SessionFormat::Zlib: return nx::Framing::Zlib;
      case nx::SessionFormat::RawDeflate: return nx::Framing::Raw;
      case nx::SessionFormat::E842: break;
    }
    return nx::Framing::Raw;
}

/**
 * The stream a decompress request replays, produced by the software
 * path — the output every backend is bit-compatible with, so a
 * decompress request is valid on either route.
 */
std::vector<uint8_t>
compressFor(nx::SessionFormat format,
            const std::vector<uint8_t> &source)
{
    if (format == nx::SessionFormat::E842)
        return e842::compress(source).bytes;
    core::SoftwareCodec codec(6);
    auto r = codec.compress(source, framingOf(format));
    NXSIM_ENSURE(r.ok(), "mix preparation: software compress failed");
    return std::move(r.data);
}

} // namespace

const char *
toString(Content c)
{
    switch (c) {
      case Content::Text: return "text";
      case Content::Log: return "log";
      case Content::Json: return "json";
      case Content::Binary: return "binary";
      case Content::Random: return "random";
      case Content::Zeros: return "zeros";
      case Content::Mixed: return "mixed";
    }
    return "?";
}

WorkloadMixConfig
defaultServingMix()
{
    WorkloadMixConfig cfg;
    cfg.classes = {
        // Small hot-path requests sit below the 4 KiB crossover and
        // exercise the software route.
        {"text-small", 3.0, nx::SessionFormat::Gzip, Content::Text,
         512, 4 * 1024, 0.25},
        // Bulk log batches ride the accelerator.
        {"log-bulk", 2.0, nx::SessionFormat::Gzip, Content::Log,
         32 * 1024, 256 * 1024, 0.25},
        // API documents straddle the crossover.
        {"json-api", 2.0, nx::SessionFormat::Zlib, Content::Json,
         2 * 1024, 64 * 1024, 0.5},
        // Memory-expansion pages on the 842 engines.
        {"page-842", 1.5, nx::SessionFormat::E842, Content::Binary,
         4 * 1024, 64 * 1024, 0.5},
        // Already-compressed tail: worst-case ratio, real in serving.
        {"opaque", 0.5, nx::SessionFormat::Gzip, Content::Random,
         8 * 1024, 32 * 1024, 0.0},
    };
    return cfg;
}

WorkloadMix::WorkloadMix(const WorkloadMixConfig &cfg) : cfg_(cfg)
{
    NXSIM_EXPECT(!cfg_.classes.empty(), "a mix needs >= 1 class");
    NXSIM_EXPECT(cfg_.variantsPerClass > 0,
                 "a mix needs >= 1 variant per class");

    pool_.resize(cfg_.classes.size());
    cumWeight_.reserve(cfg_.classes.size());
    for (size_t c = 0; c < cfg_.classes.size(); ++c) {
        const MixClass &mc = cfg_.classes[c];
        NXSIM_EXPECT(mc.weight > 0.0, "class weights must be positive");
        NXSIM_EXPECT(mc.minBytes > 0 && mc.minBytes <= mc.maxBytes,
                     "class size range must be non-empty");
        NXSIM_EXPECT(mc.decompressFraction >= 0.0 &&
                         mc.decompressFraction <= 1.0,
                     "decompress fraction must be in [0, 1]");
        totalWeight_ += mc.weight;
        cumWeight_.push_back(totalWeight_);

        auto &variants = pool_[c];
        variants.resize(nx::checked_cast<size_t>(cfg_.variantsPerClass));
        for (size_t v = 0; v < variants.size(); ++v) {
            // Deterministic per-(class, variant) seed; sizes drawn
            // from a side stream so adding a class never reshapes
            // another class's payloads.
            uint64_t seed = cfg_.seed ^ (0x9e3779b97f4a7c15ull * (c + 1))
                ^ (0xbf58476d1ce4e5b9ull * (v + 1));
            util::Xoshiro256 rng(seed);
            size_t bytes = nx::checked_cast<size_t>(rng.range(
                nx::checked_cast<int64_t>(mc.minBytes),
                nx::checked_cast<int64_t>(mc.maxBytes)));
            variants[v].source = generate(mc.content, bytes, seed);
            variants[v].compressed =
                compressFor(mc.format, variants[v].source);
        }
    }
}

SampledRequest
WorkloadMix::sample(util::Xoshiro256 &rng) const
{
    // Class by weight (CDF walk: the class list is short), then
    // variant uniformly, then operation by the class's split.
    double u = rng.uniform() * totalWeight_;
    size_t cls = 0;
    while (cls + 1 < cumWeight_.size() && u >= cumWeight_[cls])
        ++cls;
    const MixClass &mc = cfg_.classes[cls];
    size_t var = rng.below(pool_[cls].size());
    bool dec = rng.chance(mc.decompressFraction);

    SampledRequest out;
    out.classIndex = cls;
    out.variantIndex = var;
    out.format = mc.format;
    out.kind = dec ? core::JobKind::Decompress : core::JobKind::Compress;
    out.payload = dec ? &pool_[cls][var].compressed
                      : &pool_[cls][var].source;
    out.original = dec ? &pool_[cls][var].source : nullptr;
    return out;
}

const std::vector<uint8_t> &
WorkloadMix::variant(size_t cls, size_t var) const
{
    NXSIM_EXPECT(cls < pool_.size() && var < pool_[cls].size(),
                 "variant index out of range");
    return pool_[cls][var].source;
}

} // namespace load
