/**
 * @file
 * Canonical L1 serving scenario sets, shared by bench_l1_serving and
 * the bench-json tests.
 *
 * The bench and the golden-schema test must agree on what "the smoke
 * sweep" is — the test recomputes each scenario's schedule digest from
 * the config and checks it against the persisted BENCH_l1_serving.json
 * — so the scenario definitions live here, in the library, not in the
 * bench binary.
 */

#ifndef NXSIM_LOAD_SCENARIOS_H
#define NXSIM_LOAD_SCENARIOS_H

#include <string>
#include <vector>

#include "load/load_gen.h"

namespace load {

/** One named point of the sweep. */
struct Scenario
{
    std::string name;
    LoadGenConfig cfg;
};

/**
 * The CI smoke sweep: a 3x3 workers x fifoDepth grid under Poisson
 * arrivals plus one bursty and one closed-loop scenario, all scaled to
 * finish in seconds. Deterministic: fixed seeds, fixed mixes.
 */
std::vector<Scenario> l1SmokeScenarios();

/**
 * The full sweep the paper-style serving table comes from: the same
 * grid shape at @p clients clients with a full request budget.
 */
std::vector<Scenario> l1FullScenarios(int clients);

} // namespace load

#endif // NXSIM_LOAD_SCENARIOS_H
