/**
 * @file
 * Multi-client serving load generator over nx::Session.
 *
 * The measurement layer ROADMAP item 3 calls for: N simulated clients
 * — each an nx::Session sharing one core::JobServer engine pool, the
 * paper's many-requesters/one-shared-queue shape — driven by a seeded
 * arrival process (load/arrival.h) over a request mix drawn from the
 * corpus generators (load/workload_mix.h), with SLO-grade aggregation
 * of what happened:
 *
 *  - throughput (requests/s and bytes/s over the measured window),
 *  - wall-latency percentiles p50/p99/p999 via util::LatencyRecorder
 *    — for open-loop clients, latency is measured from the *scheduled*
 *    arrival, not the actual issue time, so queueing delay behind a
 *    slow response is charged to the SLO instead of silently dropped
 *    (the coordinated-omission correction),
 *  - busy-reject and software-fallback rates from the dispatch layer,
 *  - per-client fairness as the min/max completed-request ratio,
 *  - the JobServer's queue-depth high-water mark and per-window
 *    busy-reject counters (surfaced for exactly this report).
 *
 * Determinism: the full request plan — who sends what, when — is
 * derived from LoadGenConfig::seed before any thread starts, and
 * summarised as an FNV-1a scheduleDigest. The same config always
 * plans the same traffic; only wall-clock timings vary run to run.
 * Tests replay plans exactly; BENCH_l1_serving.json pins the digest
 * so CI notices if the schedule ever drifts.
 *
 * Each client's first warmupFraction of requests is excluded from the
 * latency/throughput windows (counters still see them), the standard
 * warmup/measure split.
 */

#ifndef NXSIM_LOAD_LOAD_GEN_H
#define NXSIM_LOAD_LOAD_GEN_H

#include <cstdint>
#include <memory>
#include <vector>

#include "core/job_server.h"
#include "core/session.h"
#include "load/arrival.h"
#include "load/workload_mix.h"
#include "util/latency_recorder.h"
#include "util/thread_annotations.h"

namespace load {

/** One load run: traffic shape, mix, and system-under-test geometry. */
struct LoadGenConfig
{
    int clients = 8;              ///< simulated clients (one thread each)
    int requestsPerClient = 64;   ///< fixed request budget per client
    /** Leading fraction of each client's requests excluded from SLOs. */
    double warmupFraction = 0.125;

    ArrivalConfig arrival;
    WorkloadMixConfig mix = defaultServingMix();
    uint64_t seed = 1;

    /** Geometry for run(chip); ignored when an external server is given. */
    int workers = 4;
    int windows = 4;
    int fifoDepth = 16;

    /**
     * Base per-client session policy. A session speaks one stream
     * format, so each client opens one session per distinct format in
     * the mix (the qzSession-per-format shape) and picks by request;
     * the policy's format field is overridden accordingly, and the
     * window is overridden round-robin per client so traffic spreads
     * across all FIFOs.
     */
    nx::SessionPolicy policy;

    /** Retain per-request outputs for differential tests (memory!). */
    bool captureResults = false;
};

/** One retained request outcome (captureResults mode). */
struct CapturedResult
{
    int client = 0;
    size_t requestIndex = 0;      ///< position in the client's plan
    size_t classIndex = 0;
    size_t variantIndex = 0;
    core::JobKind kind = core::JobKind::Compress;
    bool ok = false;
    bool fellBack = false;
    nx::Backend backend = nx::Backend::Software;
    std::vector<uint8_t> data;
};

/** Everything one run measured. */
struct LoadReport
{
    // --- config echo (what BENCH json readers key on) ---
    int clients = 0;
    int requestsPerClient = 0;
    ArrivalKind arrival = ArrivalKind::OpenPoisson;
    uint64_t seed = 0;
    int workers = 0;
    int windows = 0;
    int fifoDepth = 0;
    uint64_t scheduleDigest = 0;

    // --- totals ---
    double elapsedSeconds = 0.0;   ///< gate-open to last join
    uint64_t submitted = 0;        ///< requests issued (incl. warmup)
    uint64_t completed = 0;        ///< requests that returned ok
    uint64_t failed = 0;
    uint64_t measured = 0;         ///< requests in the SLO window
    uint64_t bytesIn = 0;
    uint64_t bytesOut = 0;
    double throughputRps = 0.0;    ///< completed / elapsed
    double throughputBps = 0.0;    ///< bytesIn / elapsed

    /** Wall seconds per measured request (p50/p90/p99/p999). */
    util::LatencyRecorder::Snapshot latency;

    // --- dispatch layer ---
    uint64_t pasteAttempts = 0;    ///< accepted + busy-rejected pastes
    uint64_t busyRejects = 0;
    double busyRejectRate = 0.0;   ///< busyRejects / pasteAttempts
    uint64_t accelRouted = 0;
    uint64_t softwareRouted = 0;
    uint64_t fallbacks = 0;
    double fallbackRate = 0.0;     ///< fallbacks / accelRouted
    uint64_t deviceFaults = 0;
    uint64_t queueDepthHighWater = 0;
    std::vector<uint64_t> windowBusyRejects;   ///< per VAS window

    // --- fairness ---
    std::vector<uint64_t> perClientCompleted;
    /** min/max of perClientCompleted in [0, 1]; 1 = perfectly fair. */
    double fairnessMinOverMax = 0.0;

    /** Filled only in captureResults mode. */
    std::vector<CapturedResult> captured;
};

/**
 * FNV-1a digest of the traffic plan @p cfg generates — every client's
 * request identities, sizes and arrival offsets — without running
 * anything. Fixed seed => fixed digest, on any thread count.
 */
[[nodiscard]] uint64_t planScheduleDigest(const LoadGenConfig &cfg);

/** The generator. One instance plans and runs one configuration. */
class LoadGen
{
  public:
    explicit LoadGen(const LoadGenConfig &cfg);

    /**
     * Run against a private JobServer built from the config geometry
     * on @p chip; the server is drained and stopped before returning.
     */
    [[nodiscard]] LoadReport run(const nx::NxConfig &chip);

    /**
     * Run against an external (possibly shared, possibly startPaused)
     * @p server. A paused server is resumed once every client thread
     * is at the start gate, so acceptance order is deterministic up to
     * per-window FIFO order. The server is left running.
     */
    [[nodiscard]] LoadReport run(core::JobServer &server);

    const LoadGenConfig &config() const { return cfg_; }

    /** Digest of the planned traffic (see planScheduleDigest). */
    [[nodiscard]] uint64_t scheduleDigest() const { return digest_; }

  private:
    /** One planned request: when, and what. */
    struct Planned
    {
        double at = 0.0;   ///< open-loop: offset from gate; closed: think
        SampledRequest req;
    };

    void buildPlan();
    void clientLoop(
        int client,
        const std::vector<std::unique_ptr<nx::Session>> &sessions,
        std::vector<CapturedResult> *capture);
    [[nodiscard]] LoadReport finish(core::JobServer &server,
                                    double elapsed);

    LoadGenConfig cfg_;
    WorkloadMix mix_;
    /** Distinct formats in the mix, in first-appearance order. */
    std::vector<nx::SessionFormat> formats_;
    std::vector<std::vector<Planned>> plan_;   ///< [client][request]
    uint64_t digest_ = 0;

    util::LatencyRecorder latency_;

    // Start gate: clients block until the main thread opens it, so
    // thread-spawn cost never skews the first arrivals.
    mutable nx::Mutex mu_;
    nx::CondVar gateCv_;
    bool gateOpen_ NXSIM_GUARDED_BY(mu_) = false;
    std::chrono::steady_clock::time_point t0_ NXSIM_GUARDED_BY(mu_);

    // Per-client outcome slots; each is touched by exactly one client
    // thread between gate-open and join, then read by the main thread.
    struct ClientOutcome
    {
        uint64_t submitted = 0;
        uint64_t completed = 0;
        uint64_t failed = 0;
        uint64_t measured = 0;
    };
    std::vector<ClientOutcome> outcomes_;
};

} // namespace load

#endif // NXSIM_LOAD_LOAD_GEN_H
