#include "load/arrival.h"

#include "util/contracts.h"

namespace load {

const char *
toString(ArrivalKind k)
{
    switch (k) {
      case ArrivalKind::OpenPoisson: return "open-poisson";
      case ArrivalKind::Bursty: return "bursty";
      case ArrivalKind::ClosedLoop: return "closed-loop";
    }
    return "?";
}

double
ArrivalConfig::meanRatePerSec() const
{
    switch (kind) {
      case ArrivalKind::OpenPoisson:
        return ratePerSec;
      case ArrivalKind::Bursty:
        return burstRatePerSec * dutyCycle();
      case ArrivalKind::ClosedLoop:
        return 0.0;
    }
    return 0.0;
}

ArrivalProcess::ArrivalProcess(const ArrivalConfig &cfg, uint64_t seed)
    : cfg_(cfg), rng_(seed)
{
    switch (cfg_.kind) {
      case ArrivalKind::OpenPoisson:
        NXSIM_EXPECT(cfg_.ratePerSec > 0.0,
                     "Poisson arrivals need a positive rate");
        break;
      case ArrivalKind::Bursty:
        NXSIM_EXPECT(cfg_.burstOnSeconds > 0.0 &&
                         cfg_.burstOffSeconds > 0.0,
                     "bursty arrivals need positive dwell means");
        NXSIM_EXPECT(cfg_.burstRatePerSec > 0.0,
                     "bursty arrivals need a positive burst rate");
        // The stream starts at the beginning of an ON dwell: the
        // first request of a bursty client is part of a burst, not a
        // coin flip on the modulation state.
        dwellLeft_ = rng_.exponential(cfg_.burstOnSeconds);
        break;
      case ArrivalKind::ClosedLoop:
        NXSIM_EXPECT(cfg_.thinkSeconds > 0.0,
                     "closed-loop arrivals need a positive think time");
        break;
    }
}

double
ArrivalProcess::nextDelaySeconds()
{
    switch (cfg_.kind) {
      case ArrivalKind::OpenPoisson:
        return rng_.exponential(1.0 / cfg_.ratePerSec);
      case ArrivalKind::ClosedLoop:
        return rng_.exponential(cfg_.thinkSeconds);
      case ArrivalKind::Bursty:
        break;
    }

    // Markov-modulated Poisson: spend ON dwell time emitting
    // exponential gaps; when a gap would cross the dwell boundary,
    // charge the remainder, serve the OFF dwell in full, and continue
    // the draw in the next ON dwell.
    double delay = 0.0;
    for (;;) {
        if (!on_) {
            delay += dwellLeft_;
            on_ = true;
            dwellLeft_ = rng_.exponential(cfg_.burstOnSeconds);
            continue;
        }
        double gap = rng_.exponential(1.0 / cfg_.burstRatePerSec);
        if (gap <= dwellLeft_) {
            dwellLeft_ -= gap;
            return delay + gap;
        }
        delay += dwellLeft_;
        on_ = false;
        dwellLeft_ = rng_.exponential(cfg_.burstOffSeconds);
    }
}

std::vector<double>
ArrivalProcess::schedule(size_t n)
{
    std::vector<double> at;
    at.reserve(n);
    double t = 0.0;
    for (size_t i = 0; i < n; ++i) {
        t += nextDelaySeconds();
        at.push_back(t);
    }
    return at;
}

} // namespace load
