/**
 * @file
 * Request sampling for the serving load harness.
 *
 * Production compression traffic is not one buffer repeated: sizes,
 * formats and compressibility all vary per request, and the routing
 * layer's behaviour (software below the crossover, accelerator above,
 * 842 vs DEFLATE engines) depends on exactly that variation. A
 * WorkloadMix turns a declarative set of weighted request classes —
 * each naming a corpus-generator content family, a size range, a
 * session format and a compress/decompress split — into a prepared
 * pool of concrete request payloads, then serves deterministic samples
 * from it.
 *
 * Payloads are prepared once at construction (including the
 * pre-compressed streams that decompress requests replay), so the
 * driving threads only index into immutable data: sampling is a few
 * PRNG draws, never a corpus-generator call, and the mix can be shared
 * read-only by thousands of clients.
 */

#ifndef NXSIM_LOAD_WORKLOAD_MIX_H
#define NXSIM_LOAD_WORKLOAD_MIX_H

#include <cstdint>
#include <string>
#include <vector>

#include "core/job_server.h"
#include "core/session.h"
#include "util/prng.h"

namespace load {

/** Content family a class draws from (workloads/corpus.h generators). */
enum class Content : uint8_t
{
    Text,     ///< Zipfian word salad
    Log,      ///< templated server-log lines
    Json,     ///< recurring-schema documents
    Binary,   ///< packed records, correlated fields
    Random,   ///< incompressible
    Zeros,    ///< maximally compressible
    Mixed,    ///< fixed-proportion blend
};

/** Human-readable content name (stable: appears in BENCH json). */
const char *toString(Content c);

/** One weighted request class in the mix. */
struct MixClass
{
    std::string name;          ///< label for reports
    double weight = 1.0;       ///< relative sampling weight (> 0)
    nx::SessionFormat format = nx::SessionFormat::Gzip;
    Content content = Content::Mixed;
    size_t minBytes = 1024;    ///< request size range, inclusive
    size_t maxBytes = 64 * 1024;
    /** Fraction of this class's requests that are decompress. */
    double decompressFraction = 0.0;
};

/** The whole mix. */
struct WorkloadMixConfig
{
    std::vector<MixClass> classes;
    /** Distinct prepared payloads per class (size/content variants). */
    int variantsPerClass = 4;
    uint64_t seed = 0x10ad;
};

/**
 * A serving-shaped default: small hot text, bulk logs, JSON documents,
 * 842 memory pages, and an incompressible tail, with a decompress
 * share on the read-heavy classes.
 */
WorkloadMixConfig defaultServingMix();

/** One sampled request, pointing into the mix's prepared pool. */
struct SampledRequest
{
    size_t classIndex = 0;
    size_t variantIndex = 0;
    core::JobKind kind = core::JobKind::Compress;
    nx::SessionFormat format = nx::SessionFormat::Gzip;
    /** Bytes to submit: source for compress, stream for decompress. */
    const std::vector<uint8_t> *payload = nullptr;
    /** For decompress requests, the original source (oracle checks). */
    const std::vector<uint8_t> *original = nullptr;
};

/** Prepared, immutable-after-construction sampling pool. */
class WorkloadMix
{
  public:
    explicit WorkloadMix(const WorkloadMixConfig &cfg);

    /**
     * Draw one request using @p rng. Thread-safe for concurrent
     * callers with private generators (the pool is read-only).
     */
    [[nodiscard]] SampledRequest sample(util::Xoshiro256 &rng) const;

    const WorkloadMixConfig &config() const { return cfg_; }
    size_t classCount() const { return cfg_.classes.size(); }

    /** Prepared source payload of (class, variant). */
    const std::vector<uint8_t> &variant(size_t cls, size_t var) const;

  private:
    struct Variant
    {
        std::vector<uint8_t> source;       ///< generated payload
        std::vector<uint8_t> compressed;   ///< its session-format stream
    };

    WorkloadMixConfig cfg_;
    std::vector<std::vector<Variant>> pool_;   ///< [class][variant]
    std::vector<double> cumWeight_;            ///< sampling CDF
    double totalWeight_ = 0.0;
};

} // namespace load

#endif // NXSIM_LOAD_WORKLOAD_MIX_H
