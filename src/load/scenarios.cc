#include "load/scenarios.h"

namespace load {

namespace {

/** Grid axes shared by both sweeps (>= 3x3 workers x fifoDepth). */
constexpr int kSmokeWorkers[] = {1, 2, 4};
constexpr int kSmokeFifos[] = {2, 4, 8};
constexpr int kFullWorkers[] = {2, 4, 8};
constexpr int kFullFifos[] = {4, 8, 16};
constexpr int kFullWindows[] = {1, 2, 8};

std::string
gridName(const char *prefix, int workers, int fifo)
{
    return std::string(prefix) + "-w" + std::to_string(workers) + "-f" +
        std::to_string(fifo);
}

ArrivalConfig
bursty()
{
    ArrivalConfig a;
    a.kind = ArrivalKind::Bursty;
    return a;
}

ArrivalConfig
closedLoop()
{
    ArrivalConfig a;
    a.kind = ArrivalKind::ClosedLoop;
    return a;
}

} // namespace

std::vector<Scenario>
l1SmokeScenarios()
{
    // Scaled so the whole sweep finishes in seconds on one core while
    // still crossing every code path: software + accelerator routes,
    // both engine families, busy rejects at fifo 2, all three arrival
    // shapes. Seeds are per-scenario constants so digests distinguish
    // the points.
    LoadGenConfig base;
    base.clients = 6;
    base.requestsPerClient = 12;
    base.windows = 2;
    base.mix.variantsPerClass = 2;
    base.arrival.ratePerSec = 1500.0;

    std::vector<Scenario> out;
    uint64_t seed = 0x511;
    for (int w : kSmokeWorkers) {
        for (int f : kSmokeFifos) {
            LoadGenConfig cfg = base;
            cfg.workers = w;
            cfg.fifoDepth = f;
            cfg.seed = seed++;
            out.push_back({gridName("poisson", w, f), cfg});
        }
    }
    {
        LoadGenConfig cfg = base;
        cfg.workers = 2;
        cfg.fifoDepth = 4;
        cfg.windows = 4;
        cfg.seed = seed++;
        out.push_back({"poisson-win4", cfg});
    }
    {
        LoadGenConfig cfg = base;
        cfg.arrival = bursty();
        cfg.workers = 2;
        cfg.fifoDepth = 4;
        cfg.seed = seed++;
        out.push_back({"bursty-w2-f4", cfg});
    }
    {
        LoadGenConfig cfg = base;
        cfg.arrival = closedLoop();
        cfg.workers = 2;
        cfg.fifoDepth = 4;
        cfg.seed = seed++;
        out.push_back({"closed-w2-f4", cfg});
    }
    return out;
}

std::vector<Scenario>
l1FullScenarios(int clients)
{
    LoadGenConfig base;
    base.clients = clients;
    base.requestsPerClient = 128;
    base.windows = 4;

    std::vector<Scenario> out;
    uint64_t seed = 0xF011;
    for (int w : kFullWorkers) {
        for (int f : kFullFifos) {
            LoadGenConfig cfg = base;
            cfg.workers = w;
            cfg.fifoDepth = f;
            cfg.seed = seed++;
            out.push_back({gridName("poisson", w, f), cfg});
        }
    }
    for (int win : kFullWindows) {
        LoadGenConfig cfg = base;
        cfg.workers = 4;
        cfg.fifoDepth = 8;
        cfg.windows = win;
        cfg.seed = seed++;
        out.push_back({"poisson-win" + std::to_string(win), cfg});
    }
    {
        LoadGenConfig cfg = base;
        cfg.arrival = bursty();
        cfg.workers = 4;
        cfg.fifoDepth = 8;
        cfg.seed = seed++;
        out.push_back({"bursty-w4-f8", cfg});
    }
    {
        LoadGenConfig cfg = base;
        cfg.arrival = closedLoop();
        cfg.workers = 4;
        cfg.fifoDepth = 8;
        cfg.seed = seed++;
        out.push_back({"closed-w4-f8", cfg});
    }
    return out;
}

} // namespace load
