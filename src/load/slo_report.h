/**
 * @file
 * Machine-readable SLO report: the BENCH_*.json emission layer.
 *
 * The repo's perf trajectory convention: every serving-class bench
 * persists one schema-versioned JSON file at the repository root
 * (BENCH_<bench>.json) so future PRs diff a measured trajectory
 * instead of rediscovering numbers. The format is hand-rolled and
 * byte-stable — fixed key order, fixed indentation, "%.9g" doubles —
 * and held to a golden file (tests/golden/bench_l1.json) exactly like
 * the SARIF serializer, because downstream tooling diffs on content.
 *
 * Schema contract (checked by tests/test_bench_json.cc):
 *  - top level: schema_version, bench, chip, smoke, scenarios[]
 *  - per scenario: name, config echo, schedule_digest (hex string),
 *    results with latency_seconds.{p50,p90,p99,p999} monotone
 *    non-decreasing.
 *
 * Bump kBenchJsonSchemaVersion on any key change; readers key on it.
 */

#ifndef NXSIM_LOAD_SLO_REPORT_H
#define NXSIM_LOAD_SLO_REPORT_H

#include <string>
#include <utility>
#include <vector>

#include "load/load_gen.h"

namespace load {

/** Version stamp of the BENCH json layout. */
inline constexpr int kBenchJsonSchemaVersion = 1;

/** Run-level metadata echoed at the top of the file. */
struct BenchRunInfo
{
    std::string bench = "bench_l1_serving";
    std::string chip;          ///< modelled chip name ("POWER9"/"z15")
    bool smoke = false;        ///< scaled-down CI sweep
};

/** One named scenario and what it measured. */
using NamedReport = std::pair<std::string, LoadReport>;

/**
 * Serialize a whole run. Output is deterministic for deterministic
 * inputs and ends with a newline.
 */
[[nodiscard]] std::string benchJson(const BenchRunInfo &info,
                                    const std::vector<NamedReport> &runs);

/** Render one scenario's report as a human table block (stdout mode). */
void printReport(const std::string &name, const LoadReport &r);

} // namespace load

#endif // NXSIM_LOAD_SLO_REPORT_H
