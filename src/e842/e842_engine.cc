#include "e842/e842_engine.h"

namespace e842 {

E842Job
E842Engine::compressJob(std::span<const uint8_t> input) const
{
    E842Job job;
    auto res = compress(input);
    job.stats = res.stats;
    job.cycles = streamCycles(input.size(), res.bytes.size());
    job.seconds = cfg_.clock.toSeconds(job.cycles);
    job.output = std::move(res.bytes);
    job.ok = true;
    return job;
}

E842Job
E842Engine::decompressJob(std::span<const uint8_t> stream,
                          size_t max_output) const
{
    E842Job job;
    auto res = decompress(stream, max_output);
    if (!res.ok)
        return job;
    job.cycles = streamCycles(res.bytes.size(), stream.size());
    job.seconds = cfg_.clock.toSeconds(job.cycles);
    job.output = std::move(res.bytes);
    job.ok = true;
    return job;
}

} // namespace e842
