/**
 * @file
 * An 842-class compression codec.
 *
 * Besides the gzip engines this paper focuses on, the POWER9 NX unit
 * carries "842" engines: a low-latency memory-compression codec used
 * for in-memory data (and by AIX/PowerVM Active Memory Expansion).
 * 842 trades ratio for simplicity: input is processed in 8-byte
 * chunks; each chunk is emitted under a 5-bit template that splits it
 * into 8/4/2-byte granules, each either literal data or a short index
 * into a ring dictionary of recently seen granules.
 *
 * This implementation follows the structure of the 842 family
 * (templates, per-granule-size ring dictionaries, ZEROS/REPEAT/
 * SHORT_DATA/END opcodes) but is its own self-consistent bit format —
 * we make no claim of interoperability with IBM hardware streams,
 * which we cannot test against. See DESIGN.md (substitutions).
 *
 * Dictionary model (identical in encoder and decoder, so indices are
 * deterministic): every 2-byte granule of reconstructed output is
 * appended to a 256-slot ring; every 4-byte granule to a 512-slot
 * ring; every 8-byte chunk to a 256-slot ring. An index operand
 * addresses a slot in the corresponding ring.
 */

#ifndef NXSIM_E842_E842_H
#define NXSIM_E842_E842_H

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "util/taint.h"

namespace e842 {

/** Encoder statistics (inputs to the engine timing model). */
struct E842Stats
{
    uint64_t chunks = 0;
    uint64_t literalBits = 0;
    uint64_t indexBits = 0;
    uint64_t zeroOps = 0;
    uint64_t repeatOps = 0;
    uint64_t shortDataOps = 0;
};

/** Result of an 842 compression. */
struct E842Result
{
    std::vector<uint8_t> bytes;
    E842Stats stats;
};

/** Compress @p input into an 842-class stream. */
[[nodiscard]] E842Result compress(std::span<const uint8_t> input);

/** Decompression outcome. */
struct E842DecompressResult
{
    bool ok = false;
    std::string error;
    std::vector<uint8_t> bytes;
};

/** Decompress an 842-class stream. */
[[nodiscard]] E842DecompressResult decompress(
    NXSIM_UNTRUSTED std::span<const uint8_t> stream,
    size_t max_output = size_t{1} << 30);

} // namespace e842

#endif // NXSIM_E842_E842_H
