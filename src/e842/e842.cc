#include "e842/e842.h"

#include <array>
#include <cstring>
#include <unordered_map>

#include "util/bitstream.h"
#include "util/checked.h"
#include "util/taint.h"

namespace e842 {

namespace {

// Opcode space (5 bits).
constexpr uint32_t kOpD8 = 0;
constexpr uint32_t kOpI8 = 1;
constexpr uint32_t kOp44Base = 1;      // + mask(1..3) -> 2..4
constexpr uint32_t kOp422Base = 4;     // + mask(1..7) -> 5..11
constexpr uint32_t kOp2222Base = 11;   // + mask(1..15) -> 12..26
constexpr uint32_t kOpZeros = 27;
constexpr uint32_t kOpRepeat = 28;
constexpr uint32_t kOpShortData = 29;
constexpr uint32_t kOpEnd = 30;

constexpr unsigned kI2Bits = 8;
constexpr unsigned kI4Bits = 9;
constexpr unsigned kI8Bits = 8;
constexpr size_t kRing2 = 1u << kI2Bits;
constexpr size_t kRing4 = 1u << kI4Bits;
constexpr size_t kRing8 = 1u << kI8Bits;
constexpr unsigned kRepeatBits = 6;
constexpr unsigned kMaxRepeat = 1u << kRepeatBits;

uint16_t
get16(const uint8_t *p)
{
    return nx::checked_cast<uint16_t>(p[0] | (p[1] << 8));
}

uint32_t
get32(const uint8_t *p)
{
    uint32_t v;
    std::memcpy(&v, p, 4);
    return v;
}

uint64_t
get64(const uint8_t *p)
{
    uint64_t v;
    std::memcpy(&v, p, 8);
    return v;
}

/**
 * The shared dictionary state: ring buffers per granule size, updated
 * identically by encoder and decoder for every reconstructed chunk.
 */
struct Rings
{
    std::array<uint16_t, kRing2> r2{};
    std::array<uint32_t, kRing4> r4{};
    std::array<uint64_t, kRing8> r8{};
    uint64_t c2 = 0;
    uint64_t c4 = 0;
    uint64_t c8 = 0;

    void
    addChunk(const uint8_t *p)
    {
        for (int i = 0; i < 4; ++i)
            r2[(c2 + static_cast<uint64_t>(i)) % kRing2] =
                get16(p + 2 * i);
        c2 += 4;
        r4[c4 % kRing4] = get32(p);
        r4[(c4 + 1) % kRing4] = get32(p + 4);
        c4 += 2;
        r8[c8 % kRing8] = get64(p);
        ++c8;
    }
};

/** Encoder-side value -> most-recent-slot maps. */
struct Lookup
{
    std::unordered_map<uint16_t, uint16_t> m2;
    std::unordered_map<uint32_t, uint16_t> m4;
    std::unordered_map<uint64_t, uint16_t> m8;

    void
    addChunk(const uint8_t *p, const Rings &r)
    {
        // Slots just written by Rings::addChunk.
        for (int i = 0; i < 4; ++i) {
            uint64_t slot = (r.c2 - 4 + static_cast<uint64_t>(i)) %
                kRing2;
            m2[get16(p + 2 * i)] = nx::checked_cast<uint16_t>(slot);
        }
        m4[get32(p)] = nx::checked_cast<uint16_t>((r.c4 - 2) % kRing4);
        m4[get32(p + 4)] = nx::checked_cast<uint16_t>((r.c4 - 1) % kRing4);
        m8[get64(p)] = nx::checked_cast<uint16_t>((r.c8 - 1) % kRing8);
    }

    /** Find a live slot holding @p v (ring content is authoritative). */
    template <typename Map, typename Ring, typename V>
    static int
    find(const Map &map, const Ring &ring, V v)
    {
        auto it = map.find(v);
        if (it == map.end())
            return -1;
        if (ring[it->second] != v)
            return -1;    // slot was overwritten since
        return it->second;
    }
};

} // namespace

E842Result
compress(std::span<const uint8_t> input)
{
    E842Result res;
    util::BitWriter bw;
    Rings rings;
    Lookup lut;

    size_t pos = 0;
    const size_t n = input.size();
    uint64_t prev_chunk = 0;
    bool have_prev = false;

    while (pos + 8 <= n) {
        const uint8_t *p = input.data() + pos;
        uint64_t v8 = get64(p);

        // REPEAT run of the previous chunk.
        if (have_prev && v8 == prev_chunk) {
            unsigned count = 0;
            while (pos + 8 <= n && get64(input.data() + pos) ==
                   prev_chunk && count < kMaxRepeat) {
                ++count;
                pos += 8;
            }
            bw.writeBits(kOpRepeat, 5);
            bw.writeBits(count - 1, kRepeatBits);
            ++res.stats.repeatOps;
            res.stats.chunks += count;
            for (unsigned i = 0; i < count; ++i) {
                const uint8_t *cp = input.data() + pos - 8;
                rings.addChunk(cp);
                lut.addChunk(cp, rings);
            }
            continue;
        }

        if (v8 == 0) {
            bw.writeBits(kOpZeros, 5);
            ++res.stats.zeroOps;
            ++res.stats.chunks;
            rings.addChunk(p);
            lut.addChunk(p, rings);
            prev_chunk = v8;
            have_prev = true;
            pos += 8;
            continue;
        }

        // Candidate costs. Pieces: i8; (4,4); (4,2,2); (2,2,2,2).
        int i8 = Lookup::find(lut.m8, rings.r8, v8);
        int i4a = Lookup::find(lut.m4, rings.r4, get32(p));
        int i4b = Lookup::find(lut.m4, rings.r4, get32(p + 4));
        int i2[4];
        for (int k = 0; k < 4; ++k)
            i2[k] = Lookup::find(lut.m2, rings.r2, get16(p + 2 * k));

        unsigned best_cost = 5 + 64;    // D8
        enum class Kind { D8, I8, T44, T422, T2222 } kind = Kind::D8;
        unsigned mask = 0;

        if (i8 >= 0 && 5 + kI8Bits < best_cost) {
            best_cost = 5 + kI8Bits;
            kind = Kind::I8;
        }
        {
            unsigned m = (i4a >= 0 ? 2u : 0u) | (i4b >= 0 ? 1u : 0u);
            if (m != 0) {
                unsigned cost = 5 + (i4a >= 0 ? kI4Bits : 32) +
                    (i4b >= 0 ? kI4Bits : 32);
                if (cost < best_cost) {
                    best_cost = cost;
                    kind = Kind::T44;
                    mask = m;
                }
            }
        }
        {
            unsigned m = (i4a >= 0 ? 4u : 0u) |
                (i2[2] >= 0 ? 2u : 0u) | (i2[3] >= 0 ? 1u : 0u);
            if (m != 0) {
                unsigned cost = 5 + (i4a >= 0 ? kI4Bits : 32) +
                    (i2[2] >= 0 ? kI2Bits : 16) +
                    (i2[3] >= 0 ? kI2Bits : 16);
                if (cost < best_cost) {
                    best_cost = cost;
                    kind = Kind::T422;
                    mask = m;
                }
            }
        }
        {
            unsigned m = 0;
            unsigned cost = 5;
            for (int k = 0; k < 4; ++k) {
                m = (m << 1) | (i2[k] >= 0 ? 1u : 0u);
                cost += i2[k] >= 0 ? kI2Bits : 16;
            }
            if (m != 0 && cost < best_cost) {
                best_cost = cost;
                kind = Kind::T2222;
                mask = m;
            }
        }

        switch (kind) {
          case Kind::D8:
            bw.writeBits(kOpD8, 5);
            bw.writeBits(get32(p), 32);
            bw.writeBits(get32(p + 4), 32);
            res.stats.literalBits += 64;
            break;
          case Kind::I8:
            bw.writeBits(kOpI8, 5);
            bw.writeBits(nx::checked_cast<uint32_t>(i8), kI8Bits);
            res.stats.indexBits += kI8Bits;
            break;
          case Kind::T44:
            bw.writeBits(kOp44Base + mask, 5);
            if (mask & 2) {
                bw.writeBits(nx::checked_cast<uint32_t>(i4a), kI4Bits);
                res.stats.indexBits += kI4Bits;
            } else {
                bw.writeBits(get32(p), 32);
                res.stats.literalBits += 32;
            }
            if (mask & 1) {
                bw.writeBits(nx::checked_cast<uint32_t>(i4b), kI4Bits);
                res.stats.indexBits += kI4Bits;
            } else {
                bw.writeBits(get32(p + 4), 32);
                res.stats.literalBits += 32;
            }
            break;
          case Kind::T422:
            bw.writeBits(kOp422Base + mask, 5);
            if (mask & 4) {
                bw.writeBits(nx::checked_cast<uint32_t>(i4a), kI4Bits);
                res.stats.indexBits += kI4Bits;
            } else {
                bw.writeBits(get32(p), 32);
                res.stats.literalBits += 32;
            }
            for (int k = 2; k < 4; ++k) {
                bool idx = (mask >> (3 - k)) & 1;
                if (idx) {
                    bw.writeBits(nx::checked_cast<uint32_t>(i2[k]),
                                 kI2Bits);
                    res.stats.indexBits += kI2Bits;
                } else {
                    bw.writeBits(get16(p + 2 * k), 16);
                    res.stats.literalBits += 16;
                }
            }
            break;
          case Kind::T2222:
            bw.writeBits(kOp2222Base + mask, 5);
            for (int k = 0; k < 4; ++k) {
                bool idx = (mask >> (3 - k)) & 1;
                if (idx) {
                    bw.writeBits(nx::checked_cast<uint32_t>(i2[k]),
                                 kI2Bits);
                    res.stats.indexBits += kI2Bits;
                } else {
                    bw.writeBits(get16(p + 2 * k), 16);
                    res.stats.literalBits += 16;
                }
            }
            break;
        }

        ++res.stats.chunks;
        rings.addChunk(p);
        lut.addChunk(p, rings);
        prev_chunk = v8;
        have_prev = true;
        pos += 8;
    }

    if (pos < n) {
        auto count = nx::checked_cast<uint32_t>(n - pos);
        bw.writeBits(kOpShortData, 5);
        bw.writeBits(count, 3);
        for (size_t i = pos; i < n; ++i)
            bw.writeBits(input[i], 8);
        ++res.stats.shortDataOps;
    }
    bw.writeBits(kOpEnd, 5);
    res.bytes = bw.take();
    return res;
}

E842DecompressResult
decompress(NXSIM_UNTRUSTED std::span<const uint8_t> stream,
           size_t max_output)
{
    E842DecompressResult res;
    util::BitReader br(stream);
    Rings rings;

    uint8_t chunk[8];
    uint8_t prev_chunk[8] = {};
    bool have_prev = false;

    auto emitChunk = [&]() {
        res.bytes.insert(res.bytes.end(), chunk, chunk + 8);
        rings.addChunk(chunk);
        std::memcpy(prev_chunk, chunk, 8);
        have_prev = true;
    };

    while (true) {
        uint32_t op = br.readBits(5);
        if (br.overrun()) {
            res.error = "truncated stream";
            return res;
        }
        if (res.bytes.size() + 8 > max_output && op != kOpEnd &&
            op != kOpShortData) {
            res.error = "output limit";
            return res;
        }

        if (op == kOpEnd)
            break;

        if (op == kOpZeros) {
            std::memset(chunk, 0, 8);
            emitChunk();
            continue;
        }
        if (op == kOpRepeat) {
            if (!have_prev) {
                res.error = "repeat with no previous chunk";
                return res;
            }
            uint32_t count = br.readBits(kRepeatBits) + 1;
            if (br.overrun()) {
                res.error = "truncated repeat";
                return res;
            }
            if (res.bytes.size() + 8ull * count > max_output) {
                res.error = "output limit";
                return res;
            }
            for (uint32_t i = 0; i < count; ++i) {
                std::memcpy(chunk, prev_chunk, 8);
                emitChunk();
            }
            continue;
        }
        if (op == kOpShortData) {
            uint32_t count = br.readBits(3);
            if (count == 0) {
                res.error = "empty short data";
                return res;
            }
            if (res.bytes.size() + count > max_output) {
                res.error = "output limit";
                return res;
            }
            for (uint32_t i = 0; i < count; ++i)
                res.bytes.push_back(
                    nx::checked_cast<uint8_t>(br.readBits(8)));
            if (br.overrun()) {
                res.error = "truncated short data";
                return res;
            }
            continue;
        }

        auto readD32 = [&](uint8_t *dst) {
            uint32_t v = br.readBits(32);
            std::memcpy(dst, &v, 4);
        };
        auto readD16 = [&](uint8_t *dst) {
            auto v = nx::checked_cast<uint16_t>(br.readBits(16));
            std::memcpy(dst, &v, 2);
        };
        bool bad_index = false;
        auto readI2 = [&](uint8_t *dst) {
            uint32_t idx = br.readBits(kI2Bits);
            if (rings.c2 <= idx && rings.c2 < kRing2)
                bad_index = true;
            uint16_t v = rings.r2[idx];
            std::memcpy(dst, &v, 2);
        };
        auto readI4 = [&](uint8_t *dst) {
            uint32_t idx = br.readBits(kI4Bits);
            if (rings.c4 <= idx && rings.c4 < kRing4)
                bad_index = true;
            uint32_t v = rings.r4[idx];
            std::memcpy(dst, &v, 4);
        };

        if (op == kOpD8) {
            readD32(chunk);
            readD32(chunk + 4);
        } else if (op == kOpI8) {
            uint32_t idx = br.readBits(kI8Bits);
            if (rings.c8 <= idx && rings.c8 < kRing8) {
                res.error = "I8 index beyond history";
                return res;
            }
            uint64_t v = rings.r8[idx];
            std::memcpy(chunk, &v, 8);
        } else if (op >= kOp44Base + 1 && op <= kOp44Base + 3) {
            unsigned mask = op - kOp44Base;
            if (mask & 2)
                readI4(chunk);
            else
                readD32(chunk);
            if (mask & 1)
                readI4(chunk + 4);
            else
                readD32(chunk + 4);
        } else if (op >= kOp422Base + 1 && op <= kOp422Base + 7) {
            unsigned mask = op - kOp422Base;
            if (mask & 4)
                readI4(chunk);
            else
                readD32(chunk);
            for (int k = 2; k < 4; ++k) {
                if ((mask >> (3 - k)) & 1)
                    readI2(chunk + 2 * k);
                else
                    readD16(chunk + 2 * k);
            }
        } else if (op >= kOp2222Base + 1 && op <= kOp2222Base + 15) {
            unsigned mask = op - kOp2222Base;
            for (int k = 0; k < 4; ++k) {
                if ((mask >> (3 - k)) & 1)
                    readI2(chunk + 2 * k);
                else
                    readD16(chunk + 2 * k);
            }
        } else {
            res.error = "reserved opcode";
            return res;
        }
        if (br.overrun()) {
            res.error = "truncated operands";
            return res;
        }
        if (bad_index) {
            res.error = "index beyond history";
            return res;
        }
        emitChunk();
    }

    res.ok = true;
    return res;
}

} // namespace e842
