/**
 * @file
 * Cycle model of an NX 842 engine.
 *
 * The 842 design point is latency: no Huffman pass, no table
 * generation, fixed-format operands — the engine streams 8-byte
 * chunks per cycle through the template selector, so both directions
 * run at memory-ish speeds with microsecond request latency. That is
 * why POWER uses it for *memory* compression while DEFLATE serves
 * storage/network data.
 */

#ifndef NXSIM_E842_E842_ENGINE_H
#define NXSIM_E842_E842_ENGINE_H

#include <cstdint>
#include <span>
#include <vector>

#include "e842/e842.h"
#include "sim/memory_model.h"
#include "sim/ticks.h"

namespace e842 {

/** Engine parameters. */
struct E842EngineConfig
{
    sim::Frequency clock{2.0e9};
    /** Input chunks processed per cycle (one 8-byte chunk). */
    int chunksPerCycle = 1;
    sim::Tick dispatchCycles = 2000;
    sim::Tick completionCycles = 800;
    sim::DmaParams dma;
};

/** One executed 842 job. */
struct E842Job
{
    bool ok = false;
    std::vector<uint8_t> output;
    sim::Tick cycles = 0;
    double seconds = 0.0;
    E842Stats stats;
};

/** The 842 engine model (functional codec + closed-form timing). */
class E842Engine
{
  public:
    explicit E842Engine(const E842EngineConfig &cfg = {}) : cfg_(cfg) {}

    /** Compress @p input; returns output + modelled time. */
    E842Job compressJob(std::span<const uint8_t> input) const;

    /** Decompress @p stream; returns output + modelled time. */
    E842Job decompressJob(std::span<const uint8_t> stream,
                          size_t max_output = size_t{1} << 30) const;

    const E842EngineConfig &config() const { return cfg_; }

  private:
    sim::Tick
    streamCycles(uint64_t raw_bytes, uint64_t stream_bytes) const
    {
        sim::Tick chunks = sim::ceilDiv(raw_bytes,
            uint64_t{8} * static_cast<uint64_t>(cfg_.chunksPerCycle));
        sim::Tick dma = sim::DmaPort(cfg_.dma).transferCycles(
            std::max(raw_bytes, stream_bytes));
        return cfg_.dispatchCycles + std::max(chunks, dma) +
            cfg_.completionCycles;
    }

    E842EngineConfig cfg_;
};

} // namespace e842

#endif // NXSIM_E842_E842_ENGINE_H
