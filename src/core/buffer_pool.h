/**
 * @file
 * BufferPool — a page-aligned pinned-buffer pool with a page-table
 * free-list lookup, modeled on QATzip's qzMalloc/qatzip_mem layer.
 *
 * Production accelerator stacks never hand user heap pointers to the
 * DMA engine: the session layer copies each request into a buffer that
 * is page-aligned, pinned (never paged out while a CRB references it)
 * and recycled across requests, because pin/unpin and allocator churn
 * on the request path costs more than the copy. This class models that
 * pool:
 *
 *  - construction carves `slabCount` slabs of `slabBytes` each, all
 *    aligned to the 4 KiB page size (the "pinned" memory — in this
 *    model that simply means pre-faulted and never reallocated);
 *  - acquire() pops a free slab in O(1); when the pool is exhausted or
 *    the request is larger than a slab it falls back to a page-aligned
 *    heap allocation and counts it (stats().heapFallbacks), exactly
 *    like qzMalloc falling back to malloc when the huge-page pool is
 *    dry;
 *  - release is by *pointer*, resolved through a two-level page table
 *    (page address -> slab index, the qatzip_page_table.h technique),
 *    so callers need no side-channel to say which slab a buffer was —
 *    and a release of a slab that is already free is a contract
 *    violation, not a silent free-list corruption;
 *  - released slabs are poisoned (every byte 0xA5) so a stale pointer
 *    into returned memory reads deterministic garbage instead of the
 *    previous request's payload — use-after-release becomes a test
 *    failure today rather than a data-leak bug later.
 *
 * Thread-safety: all public methods may be called from any thread; the
 * free list, page table and counters are guarded by mu_ (stated in the
 * types, checked by the clang-tsa preset).
 */

#ifndef NXSIM_CORE_BUFFER_POOL_H
#define NXSIM_CORE_BUFFER_POOL_H

#include <cstddef>
#include <cstdint>
#include <map>
#include <span>
#include <vector>

#include "util/ownership.h"
#include "util/thread_annotations.h"

namespace nx {

/** Pool geometry. */
struct BufferPoolConfig
{
    /** Bytes per slab; rounded up to a whole number of pages. */
    size_t slabBytes = size_t{64} << 10;

    /** Slabs carved at construction (the "pinned" capacity). */
    size_t slabCount = 32;

    /** Fill released slabs with kPoisonByte (stale-use detection). */
    bool poisonOnRelease = true;
};

/** Counters exposed through BufferPool::stats(). */
struct BufferPoolStats
{
    uint64_t acquires = 0;       ///< total acquire() calls
    uint64_t releases = 0;       ///< buffers returned (pool + heap)
    uint64_t poolHits = 0;       ///< acquires served from a slab
    uint64_t heapFallbacks = 0;  ///< exhausted pool or oversize request
    size_t freeSlabs = 0;        ///< slabs currently on the free list
    size_t slabCount = 0;        ///< total slabs
    size_t slabBytes = 0;        ///< bytes per slab (page-rounded)
    size_t pinnedBytes = 0;      ///< slabCount * slabBytes
};

/** The pool. Non-copyable; owns its slabs for its whole lifetime. */
class BufferPool
{
  public:
    /** Modelled page size: every buffer is aligned to this. */
    static constexpr size_t kPageBytes = 4096;

    /** Poison pattern written over a slab when it is released. */
    static constexpr uint8_t kPoisonByte = 0xA5;

    explicit BufferPool(const BufferPoolConfig &cfg = {});
    ~BufferPool();

    BufferPool(const BufferPool &) = delete;
    BufferPool &operator=(const BufferPool &) = delete;

    /**
     * RAII handle over one acquired buffer. Movable, not copyable;
     * returns the buffer on destruction (or an explicit release()).
     */
    class Lease
    {
      public:
        Lease() = default;
        Lease(Lease &&o) noexcept { moveFrom(o); }
        Lease &
        operator=(Lease &&o) noexcept
        {
            if (this != &o) {
                release();
                moveFrom(o);
            }
            return *this;
        }
        ~Lease() NXSIM_RELEASES(pool_buffer) { release(); }

        Lease(const Lease &) = delete;
        Lease &operator=(const Lease &) = delete;

        uint8_t *data() const { return data_; }

        /** Usable bytes (>= the size passed to acquire()). */
        size_t size() const { return size_; }

        /** Whole buffer as a span. */
        std::span<uint8_t>
        span() const
        {
            return {data_, size_};
        }

        /** First @p n bytes (n <= size()). */
        std::span<uint8_t> prefix(size_t n) const;

        /** True when backed by a pool slab (false: heap fallback). */
        bool fromPool() const { return fromPool_; }

        bool valid() const { return data_ != nullptr; }

        /** Return the buffer now; idempotent. */
        void release() NXSIM_RELEASES(pool_buffer);

      private:
        friend class BufferPool;
        Lease(BufferPool *pool, uint8_t *data, size_t size,
              bool from_pool)
            : pool_(pool), data_(data), size_(size),
              fromPool_(from_pool)
        {
        }
        void
        moveFrom(Lease &o)
        {
            pool_ = o.pool_;
            data_ = o.data_;
            size_ = o.size_;
            fromPool_ = o.fromPool_;
            o.pool_ = nullptr;
            o.data_ = nullptr;
            o.size_ = 0;
            o.fromPool_ = false;
        }

        BufferPool *pool_ = nullptr;  ///< null only for an empty Lease
        uint8_t *data_ = nullptr;
        size_t size_ = 0;
        bool fromPool_ = false;
    };

    /**
     * Acquire a buffer of at least @p bytes. Served from a free slab
     * when @p bytes fits one and the pool is not exhausted; otherwise
     * a page-aligned heap allocation (counted as a heap fallback).
     * Never fails for sane sizes; @p bytes may be 0 (smallest buffer).
     */
    [[nodiscard]] Lease acquire(size_t bytes) NXSIM_EXCLUDES(mu_)
        NXSIM_ACQUIRES(pool_buffer);

    /**
     * Return slab @p p to the free list, resolving which slab it is
     * through the page table. @p p must be the base pointer of a slab
     * that is currently leased: releasing a pointer the pool does not
     * own, a non-base interior pointer, or a slab that is already free
     * is a contract violation (abort) — the double-free is reported at
     * the faulty release, not as later free-list corruption.
     */
    void releaseSlab(uint8_t *p) NXSIM_EXCLUDES(mu_)
        NXSIM_RELEASES(pool_buffer);

    /**
     * True when @p p points anywhere inside pool-owned slab memory
     * (the page-table probe that backs releaseSlab).
     */
    [[nodiscard]] bool owns(const uint8_t *p) const NXSIM_EXCLUDES(mu_);

    [[nodiscard]] BufferPoolStats stats() const NXSIM_EXCLUDES(mu_);

    /** Bytes per slab after page rounding. */
    size_t slabBytes() const { return slabBytes_; }

  private:
    // Two-level page-table geometry: a page's slab is found by
    // directory = pageNumber >> kDirShift, entry = low kDirShift bits.
    static constexpr unsigned kPageShift = 12;  // log2(kPageBytes)
    static constexpr unsigned kDirShift = 9;    // 512 entries/directory
    static constexpr size_t kDirEntries = size_t{1} << kDirShift;

    /** One directory of the two-level table. -1: page not pool-owned. */
    struct PageDir
    {
        std::vector<int32_t> slabOf =
            std::vector<int32_t>(kDirEntries, -1);
    };

    /** Slab index for @p p, or -1 when the pool does not own it. */
    [[nodiscard]] int32_t lookupLocked(const uint8_t *p) const
        NXSIM_REQUIRES(mu_);

    /** Free a heap-fallback buffer and count its release. */
    void releaseHeap(uint8_t *p) NXSIM_EXCLUDES(mu_);

    mutable nx::Mutex mu_;

    // Slab storage: the pointers are fixed at construction (the pool
    // never grows or shrinks) but lease/free state is dynamic.
    std::vector<uint8_t *> slabs_ NXSIM_GUARDED_BY(mu_);
    std::vector<bool> slabFree_ NXSIM_GUARDED_BY(mu_);
    std::vector<uint32_t> freeList_ NXSIM_GUARDED_BY(mu_);  ///< LIFO
    std::map<uint64_t, PageDir> pageTable_ NXSIM_GUARDED_BY(mu_);

    uint64_t acquires_ NXSIM_GUARDED_BY(mu_) = 0;
    uint64_t releases_ NXSIM_GUARDED_BY(mu_) = 0;
    uint64_t poolHits_ NXSIM_GUARDED_BY(mu_) = 0;
    uint64_t heapFallbacks_ NXSIM_GUARDED_BY(mu_) = 0;

    size_t slabBytes_ = 0;  ///< immutable after construction
    bool poison_ = true;    ///< immutable after construction
};

} // namespace nx

#endif // NXSIM_CORE_BUFFER_POOL_H
