/**
 * @file
 * NxDevice — the per-chip accelerator handle a user program opens.
 *
 * Mirrors the shape of the production software stack (libnxz / zEDC):
 * open a device (VAS window), build jobs, submit synchronously or in
 * batches, read back the CSB and the modelled completion time. The
 * device multiplexes requests across its compress and decompress
 * engines round-robin, which is what the switchboard does for a single
 * window on real hardware.
 */

#ifndef NXSIM_CORE_DEVICE_H
#define NXSIM_CORE_DEVICE_H

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "nx/compress_engine.h"
#include "nx/decompress_engine.h"
#include "nx/nx_config.h"
#include "util/checked.h"

namespace core {

/** User-visible compression mode. */
enum class Mode
{
    Fht,          ///< fixed Huffman: lowest latency
    DhtSampled,   ///< sampled dynamic Huffman: default for big jobs
    DhtTwoPass,   ///< exact dynamic Huffman (z15-style second pass)
    Auto,         ///< pick by job size (libnxz-style policy)
};

/** One completed job as the API reports it. */
struct JobResult
{
    nx::Csb csb;
    std::vector<uint8_t> data;       ///< output payload
    sim::Tick engineCycles = 0;      ///< modelled accelerator cycles
    double seconds = 0.0;            ///< engineCycles on the nest clock

    bool ok() const { return csb.cc == nx::CondCode::Success; }

    /** Source-side throughput implied by the modelled time. */
    double
    sourceBps() const
    {
        return seconds > 0.0
            ? static_cast<double>(csb.processedBytes) / seconds : 0.0;
    }
};

/**
 * Build and execute one compress CRB on @p eng. This is the single
 * code path shared by the synchronous NxDevice API and the
 * core::JobServer workers, which is what keeps async outputs
 * bit-identical to the sync path (the property suite enforces it).
 *
 * @param seq  CRB sequence number (debug/tracing; never affects the
 *             produced stream)
 */
[[nodiscard]] JobResult runCompressJob(nx::CompressEngine &eng,
                                       const nx::NxConfig &cfg,
                                       std::span<const uint8_t> source,
                                       nx::Framing framing, Mode mode,
                                       uint64_t seq);

/** Build and execute one decompress CRB on @p eng (see runCompressJob). */
[[nodiscard]] JobResult runDecompressJob(nx::DecompressEngine &eng,
                                         const nx::NxConfig &cfg,
                                         std::span<const uint8_t> stream,
                                         nx::Framing framing,
                                         uint64_t max_output,
                                         uint64_t seq);

/** A per-chip accelerator device handle. */
class NxDevice
{
  public:
    explicit NxDevice(const nx::NxConfig &cfg);

    /**
     * Compress @p source into a framed stream.
     *
     * @param mode  table policy (Auto: FHT below autoFhtThreshold(),
     *              sampled DHT otherwise)
     */
    [[nodiscard]] JobResult compress(std::span<const uint8_t> source,
                       nx::Framing framing = nx::Framing::Gzip,
                       Mode mode = Mode::Auto);

    /** Decompress a framed stream produced by any conforming encoder. */
    [[nodiscard]] JobResult decompress(std::span<const uint8_t> stream,
                         nx::Framing framing = nx::Framing::Gzip,
                         uint64_t max_output = uint64_t{1} << 30);

    /**
     * Compress a large buffer by splitting it into @p chunk_bytes
     * jobs issued round-robin across all compress engines; the output
     * is a multi-member gzip file (gunzip-compatible concatenation).
     * The modelled time assumes the engines run in parallel: it is
     * the max over engines of the sum of their jobs' cycles.
     */
    [[nodiscard]] JobResult compressLarge(std::span<const uint8_t> source,
                            size_t chunk_bytes = 4u << 20,
                            Mode mode = Mode::DhtSampled);

    /** Decompress a multi-member gzip file (see compressLarge). */
    [[nodiscard]] JobResult decompressLarge(std::span<const uint8_t> file,
                              uint64_t max_output = uint64_t{1} << 30);

    /** Job size below which Auto mode selects FHT. */
    static constexpr uint64_t autoFhtThreshold() { return 32 * 1024; }

    const nx::NxConfig &config() const { return cfg_; }

    /** Engine pool introspection (tests, benches). */
    nx::CompressEngine &
    compressEngine(int i)
    {
        return *comp_[static_cast<size_t>(i)];
    }
    nx::DecompressEngine &
    decompressEngine(int i)
    {
        return *decomp_[static_cast<size_t>(i)];
    }
    int compressEngineCount() const { return nx::checked_cast<int>(
        comp_.size()); }
    int decompressEngineCount() const { return nx::checked_cast<int>(
        decomp_.size()); }

  private:
    nx::NxConfig cfg_;
    std::vector<std::unique_ptr<nx::CompressEngine>> comp_;
    std::vector<std::unique_ptr<nx::DecompressEngine>> decomp_;
    size_t nextComp_ = 0;
    size_t nextDecomp_ = 0;
    uint64_t seq_ = 0;
};

/**
 * SoftwareCodec — the zlib-equivalent path, with the same JobResult
 * shape so benches can treat both sides uniformly. `seconds` is wall
 * time measured on the host (the baseline-core stand-in; see
 * deflate/host_cal.h).
 */
class SoftwareCodec
{
  public:
    explicit SoftwareCodec(int level = 6) : level_(level) {}

    [[nodiscard]] JobResult compress(std::span<const uint8_t> source,
                       nx::Framing framing = nx::Framing::Gzip);
    [[nodiscard]] JobResult decompress(std::span<const uint8_t> stream,
                         nx::Framing framing = nx::Framing::Gzip);

    int level() const { return level_; }

  private:
    int level_;
};

} // namespace core

#endif // NXSIM_CORE_DEVICE_H
