/**
 * @file
 * nxzip — the top-level convenience API a downstream application links
 * against (the analogue of libnxz's zlib-compatible surface).
 *
 * One call compresses or decompresses a buffer, transparently choosing
 * between the accelerator and the software codec the way the production
 * library does: tiny requests stay on the core (the CRB round trip
 * costs more than it saves), everything else goes to the device.
 */

#ifndef NXSIM_CORE_NXZIP_H
#define NXSIM_CORE_NXZIP_H

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/device.h"
#include "core/topology.h"

namespace nxzip {

/** Where a request actually executed. */
enum class Path
{
    Accelerator,
    Software,
};

/** Result of a top-level (de)compress call. */
struct Result
{
    bool ok = false;
    std::string error;
    std::vector<uint8_t> data;
    Path path = Path::Accelerator;
    /** Modelled (accelerator) or measured (software) seconds. */
    double seconds = 0.0;
    uint64_t inputBytes = 0;

    double
    ratio() const
    {
        return data.empty() ? 0.0
            : static_cast<double>(inputBytes) /
                static_cast<double>(data.size());
    }
};

/** Tunables of a Context. */
struct Options
{
    nx::Framing framing = nx::Framing::Gzip;
    core::Mode mode = core::Mode::Auto;
    /** Requests below this many bytes run in software (like libnxz). */
    uint64_t minAccelBytes = 4096;
    /** Software level used for the fallback path. */
    int softwareLevel = 6;
};

/** A process-wide handle to one chip's accelerator plus fallback. */
class Context
{
  public:
    /** Open a context on the given chip generation. */
    explicit Context(const core::ChipTopology &chip,
                     const Options &opts = {});

    /** Compress @p input per the context options. */
    Result compress(std::span<const uint8_t> input);

    /** Decompress @p stream (framing from the context options). */
    Result decompress(std::span<const uint8_t> stream,
                      uint64_t max_output = uint64_t{1} << 30);

    const Options &options() const { return opts_; }
    core::NxDevice &device() { return *device_; }

  private:
    Options opts_;
    std::unique_ptr<core::NxDevice> device_;
    core::SoftwareCodec software_;
};

} // namespace nxzip

#endif // NXSIM_CORE_NXZIP_H
