#include "core/job_server.h"

#include <algorithm>

#include "util/checked.h"
#include "util/contracts.h"

namespace core {

namespace {

using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point t0)
{
    return std::chrono::duration<double>(Clock::now() - t0).count();
}

/** Run one 842 job on @p eng, shaped like the DEFLATE JobResult. */
JobResult
runE842Job(const e842::E842Engine &eng, const JobSpec &spec)
{
    e842::E842Job job = spec.kind == JobKind::Compress
        ? eng.compressJob(spec.payload)
        : eng.decompressJob(spec.payload,
                            nx::checked_cast<size_t>(spec.maxOutput));
    JobResult out;
    out.csb.valid = true;
    out.csb.cc = job.ok ? nx::CondCode::Success : nx::CondCode::BadData;
    out.csb.processedBytes = spec.payload.size();
    out.csb.producedBytes = job.output.size();
    out.data = std::move(job.output);
    out.engineCycles = job.cycles;
    out.seconds = job.seconds;
    return out;
}

/** A CSB-failure completion for an injected device fault. */
JobResult
faultedResult(nx::CondCode cc)
{
    JobResult out;
    out.csb.valid = true;
    out.csb.cc = cc;
    return out;
}

} // namespace

JobServer::JobServer(const nx::NxConfig &cfg, const JobServerConfig &jcfg)
    : cfg_(cfg), jcfg_(jcfg)
{
    NXSIM_EXPECT(jcfg_.windows > 0, "job server needs >= 1 window");
    int workers = jcfg_.workers;
    if (workers <= 0) {
        workers = std::max(cfg.compressEnginesPerUnit,
                           cfg.decompressEnginesPerUnit) *
            cfg.unitsPerChip;
        workers = std::max(workers, 1);
    }
    jcfg_.workers = workers;

    size_t nw = nx::checked_cast<size_t>(workers);
    comp_.reserve(nw);
    decomp_.reserve(nw);
    e842_.reserve(nw);
    for (size_t i = 0; i < nw; ++i) {
        comp_.push_back(std::make_unique<nx::CompressEngine>(cfg_));
        decomp_.push_back(std::make_unique<nx::DecompressEngine>(cfg_));
        e842_.push_back(std::make_unique<e842::E842Engine>(jcfg_.e842));
    }
    workerCycles_.assign(nw, 0);
    fifo_.resize(nx::checked_cast<size_t>(jcfg_.windows));
    windowPastes_.assign(fifo_.size(), 0);
    windowBusyRejects_.assign(fifo_.size(), 0);
    paused_ = jcfg_.startPaused;

    workers_.reserve(nw);
    for (int w = 0; w < workers; ++w)
        workers_.emplace_back([this, w] { workerLoop(w); });
}

JobServer::~JobServer()
{
    drainAndStop();
}

SubmitResult
JobServer::submitAsync(const JobSpec &spec, int window)
{
    SubmitResult out;
    {
        nx::MutexLock lk(mu_);
        NXSIM_EXPECT(window >= 0 && window < jcfg_.windows,
                     "paste into a window that does not exist");
        if (draining_ || stopping_) {
            out.status = nx::PasteStatus::Closed;
            return out;
        }
        size_t w = nx::checked_cast<size_t>(window);
        if (jcfg_.window.bounded() &&
            fifo_[w].size() >=
                nx::checked_cast<size_t>(jcfg_.window.fifoDepth)) {
            ++busyRejects_;
            ++windowBusyRejects_[w];
            out.status = nx::PasteStatus::Busy;
            return out;
        }
        Pending p;
        p.ticket = nextTicket_++;
        p.window = window;
        p.windowSeq = windowPastes_[w]++;
        p.spec = spec;    // payload copied only on acceptance
        p.pasteTime = Clock::now();
        fifo_[w].push_back(std::move(p));
        ++queuedTotal_;
        ++accepted_;
        queueDepth_.add(static_cast<double>(queuedTotal_));
        queueHighWater_ = std::max<uint64_t>(queueHighWater_, queuedTotal_);
        out.status = nx::PasteStatus::Accepted;
        out.ticket = nextTicket_ - 1;
    }
    workCv_.notifyOne();
    return out;
}

SubmitResult
JobServer::submitWithRetry(const JobSpec &spec, int window,
                           const BackoffPolicy &policy)
{
    NXSIM_EXPECT(policy.maxAttempts > 0, "retry policy needs >= 1 attempt");
    auto delay = policy.initialDelay;
    SubmitResult res;
    for (int attempt = 1; attempt <= policy.maxAttempts; ++attempt) {
        res = submitAsync(spec, window);
        res.attempts = attempt;
        if (res.status != nx::PasteStatus::Busy)
            return res;
        if (attempt == policy.maxAttempts)
            break;
        std::this_thread::sleep_for(delay);
        delay = std::min(delay * 2, policy.maxDelay);
    }
    {
        // The give-up is the event routing layers act on (software
        // fallback); count it here so they need not re-derive it.
        nx::MutexLock lk(mu_);
        ++busyExhausted_;
    }
    return res;    // still Busy after maxAttempts
}

void
JobServer::workerLoop(int w)
{
    size_t wi = nx::checked_cast<size_t>(w);
    for (;;) {
        Pending p;
        uint64_t dispatch = 0;
        uint64_t crbSeq = 0;
        {
            nx::MutexLock lk(mu_);
            // Explicit predicate loop: the guarded reads stay in this
            // function, where the analysis can see the lock is held.
            while (!stopping_ && (paused_ || queuedTotal_ == 0))
                workCv_.wait(mu_);
            if (queuedTotal_ == 0)
                return;    // stopping_ and nothing left to run
            // Round-robin window scan so no window starves.
            size_t nw = fifo_.size();
            size_t picked = nw;
            for (size_t k = 0; k < nw; ++k) {
                size_t idx = (rrWindow_ + k) % nw;
                if (!fifo_[idx].empty()) {
                    picked = idx;
                    break;
                }
            }
            NXSIM_ASSERT(picked < nw, "queuedTotal_ out of sync");
            p = std::move(fifo_[picked].front());
            fifo_[picked].pop_front();
            rrWindow_ = (picked + 1) % nw;
            --queuedTotal_;
            ++inFlight_;
            dispatch = dispatchSeq_++;
            crbSeq = crbSeq_++;
        }

        // The fault hook models engine-reported failures (translation
        // fault, DDE overflow): the job completes with a failure CSB
        // and no output, and the requester decides what to do — which
        // is exactly the contract real faults arrive under.
        JobResult r;
        bool injected = false;
        nx::CondCode injectedCc = nx::CondCode::TranslationFault;
        if (jcfg_.faultInjector != nullptr &&
            jcfg_.faultInjector->shouldFail(&injectedCc)) {
            r = faultedResult(injectedCc);
            injected = true;
        } else if (p.spec.codec == Codec::E842) {
            r = runE842Job(*e842_[wi], p.spec);
        } else {
            r = p.spec.kind == JobKind::Compress
                ? runCompressJob(*comp_[wi], cfg_, p.spec.payload,
                                 p.spec.framing, p.spec.mode, crbSeq)
                : runDecompressJob(*decomp_[wi], cfg_, p.spec.payload,
                                   p.spec.framing, p.spec.maxOutput,
                                   crbSeq);
        }

        double waited = secondsSince(p.pasteTime);
        waitLatency_.record(waited);
        serviceCycles_.record(static_cast<double>(r.engineCycles));

        {
            nx::MutexLock lk(mu_);
            workerCycles_[wi] += r.engineCycles;
            bytesIn_ += p.spec.payload.size();
            bytesOut_ += r.data.size();
            --inFlight_;
            ++completed_;
            if (!r.ok())
                ++jobFaults_;
            if (injected)
                ++faultsInjected_;

            AsyncJob done;
            done.ticket = p.ticket;
            done.window = p.window;
            done.windowSeq = p.windowSeq;
            done.dispatchSeq = dispatch;
            done.worker = w;
            done.waitSeconds = waited;
            done.result = std::move(r);
            done_.emplace(p.ticket, std::move(done));
        }
        doneCv_.notifyAll();
    }
}

AsyncJob
JobServer::claimLocked(Ticket t)
{
    auto it = done_.find(t);
    NXSIM_ASSERT(it != done_.end(), "claim of a ticket not completed");
    AsyncJob out = std::move(it->second);
    done_.erase(it);
    claimed_.insert(t);
    return out;
}

bool
JobServer::poll(Ticket t, AsyncJob *out)
{
    nx::MutexLock lk(mu_);
    NXSIM_EXPECT(t != 0 && t < nextTicket_, "poll of an unknown ticket");
    NXSIM_EXPECT(claimed_.count(t) == 0, "ticket already claimed");
    if (done_.count(t) == 0)
        return false;
    AsyncJob job = claimLocked(t);
    if (out != nullptr)
        *out = std::move(job);
    return true;
}

AsyncJob
JobServer::wait(Ticket t)
{
    nx::MutexLock lk(mu_);
    NXSIM_EXPECT(t != 0 && t < nextTicket_, "wait on an unknown ticket");
    NXSIM_EXPECT(claimed_.count(t) == 0, "ticket already claimed");
    while (done_.count(t) == 0)
        doneCv_.wait(mu_);
    return claimLocked(t);
}

std::vector<AsyncJob>
JobServer::drain()
{
    nx::MutexLock lk(mu_);
    while (completed_ != accepted_)
        doneCv_.wait(mu_);
    std::vector<AsyncJob> out;
    out.reserve(done_.size());
    for (auto &kv : done_) {
        claimed_.insert(kv.first);
        out.push_back(std::move(kv.second));
    }
    done_.clear();
    return out;    // std::map iteration order: sorted by ticket
}

void
JobServer::drainAndStop()
{
    {
        nx::MutexLock lk(mu_);
        draining_ = true;
        if (paused_) {
            paused_ = false;    // gated engines must run to drain
            workCv_.notifyAll();
        }
        while (completed_ != accepted_)
            doneCv_.wait(mu_);
        stopping_ = true;
        if (joined_)
            return;
        joined_ = true;
    }
    workCv_.notifyAll();
    for (auto &t : workers_)
        if (t.joinable())
            t.join();
}

void
JobServer::resume()
{
    {
        nx::MutexLock lk(mu_);
        paused_ = false;
    }
    workCv_.notifyAll();
}

JobServerStats
JobServer::stats() const
{
    JobServerStats s;
    {
        nx::MutexLock lk(mu_);
        s.submitted = accepted_;
        s.completed = completed_;
        s.busyRejects = busyRejects_;
        s.busyExhausted = busyExhausted_;
        s.jobFaults = jobFaults_;
        s.faultsInjected = faultsInjected_;
        s.bytesIn = bytesIn_;
        s.bytesOut = bytesOut_;
        for (sim::Tick c : workerCycles_) {
            s.engineCyclesSum += c;
            s.engineCyclesMax = std::max(s.engineCyclesMax, c);
        }
        s.meanQueueDepth = queueDepth_.mean();
        s.queueDepthHighWater = queueHighWater_;
        s.windowBusyRejects = windowBusyRejects_;
    }
    s.wait = waitLatency_.snapshot();
    s.service = serviceCycles_.snapshot();
    return s;
}

int
JobServer::workerCount() const
{
    return jcfg_.workers;
}

int
JobServer::windowCount() const
{
    return jcfg_.windows;
}

} // namespace core
