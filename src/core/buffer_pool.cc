#include "core/buffer_pool.h"

#include <algorithm>
#include <new>

#include "util/checked.h"
#include "util/contracts.h"

namespace nx {

namespace {

/** Round @p n up to a whole number of pages (at least one). */
size_t
pageRound(size_t n)
{
    size_t pages = n / BufferPool::kPageBytes +
        (n % BufferPool::kPageBytes != 0 ? 1 : 0);
    return std::max<size_t>(pages, 1) * BufferPool::kPageBytes;
}

uint8_t *
alignedAlloc(size_t bytes)
{
    return static_cast<uint8_t *>(::operator new(
        bytes, std::align_val_t{BufferPool::kPageBytes}));
}

void
alignedFree(uint8_t *p)
{
    ::operator delete(p, std::align_val_t{BufferPool::kPageBytes});
}

} // namespace

std::span<uint8_t>
BufferPool::Lease::prefix(size_t n) const
{
    NXSIM_EXPECT(n <= size_, "lease prefix larger than the buffer");
    return {data_, n};
}

void
BufferPool::Lease::release()
{
    if (data_ == nullptr)
        return;
    if (fromPool_)
        pool_->releaseSlab(data_);
    else
        pool_->releaseHeap(data_);
    pool_ = nullptr;
    data_ = nullptr;
    size_ = 0;
    fromPool_ = false;
}

BufferPool::BufferPool(const BufferPoolConfig &cfg)
    : slabBytes_(pageRound(cfg.slabBytes)), poison_(cfg.poisonOnRelease)
{
    nx::MutexLock lk(mu_);
    slabs_.reserve(cfg.slabCount);
    slabFree_.assign(cfg.slabCount, true);
    freeList_.reserve(cfg.slabCount);
    for (size_t i = 0; i < cfg.slabCount; ++i) {
        uint8_t *slab = alignedAlloc(slabBytes_);
        // Pre-fault every page: the model's stand-in for pinning (the
        // real pool mlocks so the DMA engine never takes a fault).
        for (size_t off = 0; off < slabBytes_; off += kPageBytes)
            slab[off] = 0;
        slabs_.push_back(slab);
        // Enter every page of the slab into the two-level table.
        auto base = reinterpret_cast<uintptr_t>(slab);
        for (size_t off = 0; off < slabBytes_; off += kPageBytes) {
            uint64_t page = (base + off) >> kPageShift;
            PageDir &dir = pageTable_[page >> kDirShift];
            dir.slabOf[page & (kDirEntries - 1)] =
                nx::checked_cast<int32_t>(i);
        }
    }
    // LIFO free list, lowest slab on top: a released slab is the next
    // one handed out, which maximises cache reuse across requests.
    for (size_t i = cfg.slabCount; i > 0; --i)
        freeList_.push_back(nx::checked_cast<uint32_t>(i - 1));
}

BufferPool::~BufferPool()
{
    nx::MutexLock lk(mu_);
    NXSIM_EXPECT(freeList_.size() == slabs_.size(),
                 "buffer pool destroyed with leased slabs outstanding");
    for (uint8_t *s : slabs_)
        alignedFree(s);
}

int32_t
BufferPool::lookupLocked(const uint8_t *p) const
{
    uint64_t page = reinterpret_cast<uintptr_t>(p) >> kPageShift;
    auto it = pageTable_.find(page >> kDirShift);
    if (it == pageTable_.end())
        return -1;
    return it->second.slabOf[page & (kDirEntries - 1)];
}

BufferPool::Lease
BufferPool::acquire(size_t bytes)
{
    {
        nx::MutexLock lk(mu_);
        ++acquires_;
        if (bytes <= slabBytes_ && !freeList_.empty()) {
            uint32_t idx = freeList_.back();
            freeList_.pop_back();
            NXSIM_ASSERT(slabFree_[idx], "free list holds a leased slab");
            slabFree_[idx] = false;
            ++poolHits_;
            return Lease(this, slabs_[idx], slabBytes_, true);
        }
        ++heapFallbacks_;
    }
    // Heap fallback keeps the alignment guarantee so callers can rely
    // on page alignment regardless of where the buffer came from.
    size_t rounded = pageRound(bytes);
    return Lease(this, alignedAlloc(rounded), rounded, false);
}

void
BufferPool::releaseSlab(uint8_t *p)
{
    nx::MutexLock lk(mu_);
    int32_t idx = lookupLocked(p);
    NXSIM_EXPECT(idx >= 0, "release of a pointer the pool does not own");
    size_t i = nx::checked_cast<size_t>(idx);
    NXSIM_EXPECT(p == slabs_[i],
                 "release of an interior pointer, not the slab base");
    NXSIM_EXPECT(!slabFree_[i], "double release of a pool slab");
    if (poison_)
        std::fill(p, p + slabBytes_, kPoisonByte);
    slabFree_[i] = true;
    freeList_.push_back(nx::checked_cast<uint32_t>(i));
    ++releases_;
}

void
BufferPool::releaseHeap(uint8_t *p)
{
    alignedFree(p);
    nx::MutexLock lk(mu_);
    ++releases_;
}

bool
BufferPool::owns(const uint8_t *p) const
{
    nx::MutexLock lk(mu_);
    return lookupLocked(p) >= 0;
}

BufferPoolStats
BufferPool::stats() const
{
    nx::MutexLock lk(mu_);
    BufferPoolStats s;
    s.acquires = acquires_;
    s.releases = releases_;
    s.poolHits = poolHits_;
    s.heapFallbacks = heapFallbacks_;
    s.freeSlabs = freeList_.size();
    s.slabCount = slabs_.size();
    s.slabBytes = slabBytes_;
    s.pinnedBytes = slabs_.size() * slabBytes_;
    return s;
}

} // namespace nx
