#include "core/topology.h"

namespace core {

ChipTopology
power9Chip()
{
    ChipTopology t;
    t.name = "POWER9";
    t.accel = nx::NxConfig::power9();
    t.cores = 24;
    t.smtPerCore = 4;
    t.coreClock = sim::Frequency(3.8e9);
    return t;
}

ChipTopology
z15Chip()
{
    ChipTopology t;
    t.name = "z15";
    t.accel = nx::NxConfig::z15();
    t.cores = 12;
    t.smtPerCore = 2;
    t.coreClock = sim::Frequency(5.2e9);
    return t;
}

SystemTopology
power9TwoSocket()
{
    SystemTopology s;
    s.name = "POWER9 2-socket";
    s.chip = power9Chip();
    s.chips = 2;
    return s;
}

SystemTopology
power9MaxSystem()
{
    SystemTopology s;
    s.name = "POWER9 16-socket";
    s.chip = power9Chip();
    s.chips = 16;
    return s;
}

SystemTopology
z15MaxSystem()
{
    SystemTopology s;
    s.name = "z15 5-drawer max";
    s.chip = z15Chip();
    s.chips = 20;    // 5 CPC drawers x 4 CP chips
    return s;
}

} // namespace core
