#include "core/nxzip.h"

namespace nxzip {

Context::Context(const core::ChipTopology &chip, const Options &opts)
    : opts_(opts),
      device_(std::make_unique<core::NxDevice>(chip.accel)),
      software_(opts.softwareLevel)
{
}

Result
Context::compress(std::span<const uint8_t> input)
{
    Result res;
    res.inputBytes = input.size();

    core::JobResult job;
    if (input.size() < opts_.minAccelBytes) {
        job = software_.compress(input, opts_.framing);
        res.path = Path::Software;
    } else {
        job = device_->compress(input, opts_.framing, opts_.mode);
        res.path = Path::Accelerator;
        if (!job.ok()) {
            // Production libraries fall back to software on any
            // accelerator error rather than failing the request.
            job = software_.compress(input, opts_.framing);
            res.path = Path::Software;
        }
    }

    if (!job.ok()) {
        res.error = std::string("compress failed: cc=") +
            nx::toString(job.csb.cc);
        return res;
    }
    res.ok = true;
    res.seconds = job.seconds;
    res.data = std::move(job.data);
    return res;
}

Result
Context::decompress(std::span<const uint8_t> stream, uint64_t max_output)
{
    Result res;
    res.inputBytes = stream.size();

    core::JobResult job;
    if (stream.size() < opts_.minAccelBytes) {
        job = software_.decompress(stream, opts_.framing);
        res.path = Path::Software;
    } else {
        job = device_->decompress(stream, opts_.framing, max_output);
        res.path = Path::Accelerator;
        if (!job.ok()) {
            job = software_.decompress(stream, opts_.framing);
            res.path = Path::Software;
        }
    }

    if (!job.ok()) {
        res.error = std::string("decompress failed: cc=") +
            nx::toString(job.csb.cc);
        return res;
    }
    res.ok = true;
    res.seconds = job.seconds;
    res.data = std::move(job.data);
    return res;
}

} // namespace nxzip
