/**
 * @file
 * core::JobServer — the real multithreaded asynchronous dispatch layer
 * in front of the accelerator engines.
 *
 * The paper's scaling story is many requester threads pasting CRBs
 * into VAS windows with no syscall on the submit path, free engines
 * popping a shared receive FIFO in order, and busy-reject/re-paste as
 * the only backpressure mechanism. NxDevice models the per-job
 * functional/timing contract synchronously; this class adds the
 * concurrent half:
 *
 *   client threads --paste--> per-window bounded FIFOs --pop--> engine
 *   workers (one modelled engine each) --CSB--> completion table
 *
 * - submitAsync() is non-blocking: a full window FIFO returns
 *   PasteStatus::Busy (never blocks, never queues elsewhere), exactly
 *   the hardware's paste RC. submitWithRetry() is the client-side
 *   helper that re-pastes with capped exponential backoff.
 * - Workers execute the *actual* compress/decompress through the same
 *   runCompressJob/runDecompressJob helpers as the synchronous device,
 *   so async outputs are bit-identical to NxDevice::compress/
 *   decompress for the same job list — while charging the modelled
 *   engine cycles to their worker, so aggregate modelled throughput
 *   can be cross-checked against the analytic nx::VasModel / vas.h
 *   queueing predictions (E6/A6).
 * - Per-window FIFO order is a hard guarantee: jobs pasted into one
 *   window are dispatched to engines in paste order (completions may
 *   reorder across windows/engines, as on hardware).
 * - Each worker also owns a modelled 842 engine: a JobSpec selects its
 *   engine family per CRB (Codec::Deflate / Codec::E842), the way one
 *   VAS window serves both engine types on the real unit.
 * - An optional nx::FaultInjector hook (JobServerConfig::faultInjector)
 *   makes engine-reported failures injectable: a tripped job completes
 *   with the injected CSB condition code and no output, and is counted
 *   in stats().jobFaults / faultsInjected — the observable the session
 *   layer's software-fallback decision rests on.
 *
 * Thread-safety: every public method may be called from any thread.
 * Shutdown (drainAndStop or destruction) completes every accepted job
 * — a saturated server drains cleanly with no lost or double-completed
 * tickets.
 *
 * The lock discipline is stated in the types (util/thread_annotations.h)
 * and machine-checked by the `clang-tsa` preset: everything mu_
 * protects is NXSIM_GUARDED_BY(mu_), lock-assuming helpers are
 * NXSIM_REQUIRES(mu_), and public entry points are NXSIM_EXCLUDES(mu_)
 * so calling one with the lock held is a compile error, not a deadlock
 * found in production.
 */

#ifndef NXSIM_CORE_JOB_SERVER_H
#define NXSIM_CORE_JOB_SERVER_H

#include <chrono>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <set>
#include <thread>
#include <vector>

#include "core/device.h"
#include "core/fault_injector.h"
#include "e842/e842_engine.h"
#include "nx/window.h"
#include "sim/ticks.h"
#include "util/latency_recorder.h"
#include "util/ownership.h"
#include "util/protocol.h"
#include "util/thread_annotations.h"

namespace core {

/** What a job asks the engine pool to do. */
enum class JobKind
{
    Compress,
    Decompress,
};

/**
 * Which engine family executes a job. The NX unit carries gzip
 * (DEFLATE) and 842 engines side by side; a window serves both, so
 * the codec is per-CRB, not per-server.
 */
enum class Codec : uint8_t
{
    Deflate,   ///< gzip/zlib/raw-deflate engines
    E842,      ///< 842 memory-compression engines
};

/** One asynchronous request as pasted into a window FIFO. */
struct JobSpec
{
    JobKind kind = JobKind::Compress;
    Codec codec = Codec::Deflate;
    Mode mode = Mode::Auto;               ///< compress-only (Deflate)
    nx::Framing framing = nx::Framing::Gzip;  ///< Deflate-only
    uint64_t maxOutput = uint64_t{1} << 30;  ///< decompress-only cap
    std::vector<uint8_t> payload;         ///< source or framed stream
};

/** Completion handle returned by an accepted paste. Never 0. */
using Ticket = uint64_t;

/** Outcome of one paste attempt. */
struct SubmitResult
{
    nx::PasteStatus status = nx::PasteStatus::Busy;
    Ticket ticket = 0;                    ///< valid iff accepted()
    int attempts = 1;                     ///< pastes issued (retry helper)

    bool accepted() const
    {
        return status == nx::PasteStatus::Accepted;
    }
};

/** One completed job with its dispatch provenance. */
struct AsyncJob
{
    Ticket ticket = 0;
    int window = 0;
    uint64_t windowSeq = 0;     ///< paste order within the window
    uint64_t dispatchSeq = 0;   ///< global engine-pop order
    int worker = -1;            ///< engine that executed the job
    double waitSeconds = 0.0;   ///< wall paste-to-completion time
    JobResult result;
};

/** Client-side re-paste policy for busy-rejected submissions. */
struct BackoffPolicy
{
    int maxAttempts = 16;
    std::chrono::microseconds initialDelay{50};
    std::chrono::microseconds maxDelay{2000};   ///< exponential cap
};

/** Pool geometry. */
struct JobServerConfig
{
    /**
     * Engine workers (each owns one modelled compress + decompress
     * engine). 0 derives the count from the chip config:
     * max(compress, decompress engines) x unitsPerChip.
     */
    int workers = 0;

    /** VAS windows (independent bounded FIFOs) clients paste into. */
    int windows = 4;

    /** Receive-FIFO depth and retry model per window. */
    nx::WindowConfig window;

    /**
     * Start with the engine pool gated (no job is popped until
     * resume()). Deterministic backpressure tests and benches use this
     * to fill FIFOs without racing the workers; it models engines
     * held in reset.
     */
    bool startPaused = false;

    /** 842 engine parameters (one engine per worker, like DEFLATE). */
    e842::E842EngineConfig e842;

    /**
     * Optional fault hook, consulted once per job before it runs: an
     * injected fault completes the job with the injected condition
     * code and no output, exactly like an engine-reported CSB failure.
     * Not owned; must outlive the server. Null: never fault.
     */
    nx::FaultInjector *faultInjector = nullptr;
};

/** Aggregate view of the server's thread-safe stats block. */
struct JobServerStats
{
    uint64_t submitted = 0;       ///< accepted pastes
    uint64_t completed = 0;
    uint64_t busyRejects = 0;     ///< pastes bounced off a full FIFO
    /** submitWithRetry calls that exhausted their attempt budget. */
    uint64_t busyExhausted = 0;
    /** Jobs completed with a non-success CSB (real or injected). */
    uint64_t jobFaults = 0;
    /** Subset of jobFaults produced by the fault-injector hook. */
    uint64_t faultsInjected = 0;
    uint64_t bytesIn = 0;
    uint64_t bytesOut = 0;
    sim::Tick engineCyclesSum = 0;   ///< total modelled engine occupancy
    sim::Tick engineCyclesMax = 0;   ///< busiest worker (parallel makespan)
    double meanQueueDepth = 0.0;     ///< sampled at each accepted paste
    /** Deepest total backlog (all FIFOs) seen at any accepted paste. */
    uint64_t queueDepthHighWater = 0;
    /** Busy rejects per VAS window (who bounced off which FIFO). */
    std::vector<uint64_t> windowBusyRejects;
    util::LatencyRecorder::Snapshot wait;      ///< wall seconds, paste->CSB
    util::LatencyRecorder::Snapshot service;   ///< modelled cycles per job

    /** Modelled wall time of the run assuming engines ran in parallel. */
    double
    modelledSeconds(const nx::NxConfig &cfg) const
    {
        return cfg.clock.toSeconds(engineCyclesMax);
    }
};

/** The dispatch layer. Non-copyable; owns its worker threads. */
NXSIM_PROTOCOL(JobServer, {submitAsync|submitWithRetry}* -> drainAndStop+);
NXSIM_TICKET_PROTOCOL(JobServer, issue(submitAsync, submitWithRetry),
                      claim(wait), poll(poll), drain(drain),
                      stop(drainAndStop));
class JobServer
{
  public:
    explicit JobServer(const nx::NxConfig &cfg,
                       const JobServerConfig &jcfg = {});
    ~JobServer();

    JobServer(const JobServer &) = delete;
    JobServer &operator=(const JobServer &) = delete;

    /**
     * Paste one job into @p window. Non-blocking: returns Busy when
     * the window FIFO is at capacity and Closed once draining began.
     * The payload is copied only on acceptance.
     */
    [[nodiscard]] SubmitResult submitAsync(const JobSpec &spec,
                                           int window = 0)
        NXSIM_EXCLUDES(mu_) NXSIM_ACQUIRES(job_ticket);

    /**
     * Paste with the paper's RC-busy loop: on Busy, back off
     * (exponential, capped at policy.maxDelay) and re-paste, up to
     * policy.maxAttempts total attempts.
     */
    [[nodiscard]] SubmitResult submitWithRetry(
        const JobSpec &spec, int window = 0,
        const BackoffPolicy &policy = {}) NXSIM_EXCLUDES(mu_)
        NXSIM_ACQUIRES(job_ticket);

    /**
     * Non-blocking completion check. Returns true once @p t has
     * completed, moving the record into @p out (when non-null); each
     * ticket can be claimed exactly once across poll/wait/drain.
     */
    [[nodiscard]] bool poll(Ticket t, AsyncJob *out = nullptr)
        NXSIM_EXCLUDES(mu_);

    /** Block until @p t completes and claim its record. */
    [[nodiscard]] AsyncJob wait(Ticket t) NXSIM_EXCLUDES(mu_)
        NXSIM_RELEASES(job_ticket);

    /**
     * Batch drain: block until every accepted job has completed, then
     * claim all still-unclaimed records, sorted by ticket.
     */
    std::vector<AsyncJob> drain() NXSIM_EXCLUDES(mu_)
        NXSIM_RELEASES(job_ticket);

    /**
     * Stop accepting work (subsequent pastes return Closed), finish
     * every queued/in-flight job, and join the workers. Completed
     * records stay claimable via poll/drain. Idempotent; the
     * destructor calls it.
     */
    void drainAndStop() NXSIM_EXCLUDES(mu_) NXSIM_RELEASES(job_ticket);

    /** Release the engine pool when constructed with startPaused. */
    void resume() NXSIM_EXCLUDES(mu_);

    /** Snapshot of the thread-safe stats block. */
    JobServerStats stats() const NXSIM_EXCLUDES(mu_);

    int workerCount() const;
    int windowCount() const;
    const nx::NxConfig &config() const { return cfg_; }

  private:
    struct Pending
    {
        Ticket ticket = 0;
        int window = 0;
        uint64_t windowSeq = 0;
        JobSpec spec;
        std::chrono::steady_clock::time_point pasteTime;
    };

    void workerLoop(int w) NXSIM_EXCLUDES(mu_);
    [[nodiscard]] AsyncJob claimLocked(Ticket t) NXSIM_REQUIRES(mu_);

    // Immutable after construction (workers are spawned last, so every
    // thread observes the finished setup): safe to read without mu_.
    nx::NxConfig cfg_;
    JobServerConfig jcfg_;

    // One modelled engine pair per worker (engine k <-> worker k). The
    // vectors never change shape after construction and engine k is
    // touched only by worker thread k, so the pool needs no lock.
    std::vector<std::unique_ptr<nx::CompressEngine>> comp_;
    std::vector<std::unique_ptr<nx::DecompressEngine>> decomp_;
    std::vector<std::unique_ptr<e842::E842Engine>> e842_;
    std::vector<std::thread> workers_;

    mutable nx::Mutex mu_;
    nx::CondVar workCv_;   ///< work arrived / stop
    nx::CondVar doneCv_;   ///< a job completed

    std::vector<std::deque<Pending>> fifo_
        NXSIM_GUARDED_BY(mu_);                  ///< per-window FIFOs
    std::vector<uint64_t> windowPastes_
        NXSIM_GUARDED_BY(mu_);                  ///< paste seq per window
    std::map<Ticket, AsyncJob> done_
        NXSIM_GUARDED_BY(mu_);                  ///< unclaimed completions
    std::set<Ticket> claimed_ NXSIM_GUARDED_BY(mu_);

    Ticket nextTicket_ NXSIM_GUARDED_BY(mu_) = 1;
    uint64_t dispatchSeq_ NXSIM_GUARDED_BY(mu_) = 0;
    uint64_t crbSeq_ NXSIM_GUARDED_BY(mu_) = 0;
    size_t queuedTotal_ NXSIM_GUARDED_BY(mu_) = 0;
    size_t inFlight_ NXSIM_GUARDED_BY(mu_) = 0;
    /// Round-robin pop fairness cursor.
    size_t rrWindow_ NXSIM_GUARDED_BY(mu_) = 0;
    bool paused_ NXSIM_GUARDED_BY(mu_) = false;
    bool draining_ NXSIM_GUARDED_BY(mu_) = false;
    bool stopping_ NXSIM_GUARDED_BY(mu_) = false;
    bool joined_ NXSIM_GUARDED_BY(mu_) = false;

    // Stats (counters under mu_; recorders internally locked).
    uint64_t accepted_ NXSIM_GUARDED_BY(mu_) = 0;
    uint64_t completed_ NXSIM_GUARDED_BY(mu_) = 0;
    uint64_t busyRejects_ NXSIM_GUARDED_BY(mu_) = 0;
    std::vector<uint64_t> windowBusyRejects_ NXSIM_GUARDED_BY(mu_);
    uint64_t queueHighWater_ NXSIM_GUARDED_BY(mu_) = 0;
    uint64_t busyExhausted_ NXSIM_GUARDED_BY(mu_) = 0;
    uint64_t jobFaults_ NXSIM_GUARDED_BY(mu_) = 0;
    uint64_t faultsInjected_ NXSIM_GUARDED_BY(mu_) = 0;
    uint64_t bytesIn_ NXSIM_GUARDED_BY(mu_) = 0;
    uint64_t bytesOut_ NXSIM_GUARDED_BY(mu_) = 0;
    std::vector<sim::Tick> workerCycles_ NXSIM_GUARDED_BY(mu_);
    util::RunningStat queueDepth_ NXSIM_GUARDED_BY(mu_);
    util::LatencyRecorder waitLatency_;
    util::LatencyRecorder serviceCycles_;
};

} // namespace core

#endif // NXSIM_CORE_JOB_SERVER_H
