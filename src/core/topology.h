/**
 * @file
 * Chip and system topologies: how many accelerator units and cores a
 * chip carries and how many chips a system carries. Used by the
 * chip-level speedup comparison (E1), the scaling experiment (E6) and
 * the generation comparison (E11).
 */

#ifndef NXSIM_CORE_TOPOLOGY_H
#define NXSIM_CORE_TOPOLOGY_H

#include <string>

#include "nx/nx_config.h"

namespace core {

/** One processor chip: cores plus its accelerator unit(s). */
struct ChipTopology
{
    std::string name;
    nx::NxConfig accel;
    int cores = 0;
    int smtPerCore = 4;
    sim::Frequency coreClock{3.8e9};
};

/** A full system of identical chips. */
struct SystemTopology
{
    std::string name;
    ChipTopology chip;
    int chips = 1;

    /** Total accelerator units in the system. */
    int
    totalUnits() const
    {
        return chips * chip.accel.unitsPerChip;
    }

    /** Engine-bound aggregate compress rate (upper bound), bytes/s. */
    double
    peakSystemCompressBps() const
    {
        return chip.accel.peakCompressBps() *
            chip.accel.compressEnginesPerUnit *
            chip.accel.unitsPerChip * chips;
    }
};

/** POWER9 scale-out chip: 24 SMT4 cores, one NX unit. */
ChipTopology power9Chip();

/** z15 CP chip: 12 cores, one on-chip compression unit. */
ChipTopology z15Chip();

/** Two-socket POWER9 server (the Spark evaluation platform class). */
SystemTopology power9TwoSocket();

/** Sixteen-socket POWER9 enterprise system. */
SystemTopology power9MaxSystem();

/** Maximally configured z15: 5 CPC drawers x 4 CP chips. */
SystemTopology z15MaxSystem();

} // namespace core

#endif // NXSIM_CORE_TOPOLOGY_H
