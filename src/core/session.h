/**
 * @file
 * nx::Session — the servable hybrid HW/SW routing layer.
 *
 * The paper's headline result is that the accelerator only beats
 * software above a request-size crossover; in the production stacks
 * (zlibNX on AIX, zEDC on z/OS, QATzip on x86) that is not a benchmark
 * footnote but a *live routing decision* made per request by a session
 * object that owns the policy. This class is that layer for this
 * repo's modelled NX unit, shaped after QATzip's qzSession:
 *
 *  - the policy names the stream format (gzip / zlib / raw DEFLATE /
 *    842), software level, accelerator Huffman mode, and the
 *    input-size threshold: requests below the threshold run on the
 *    software codec (the CRB round trip would cost more than it
 *    saves), requests at/above it are pasted to the modelled
 *    accelerator through a core::JobServer;
 *  - the device path is never load-bearing for correctness: busy-
 *    reject exhaustion (the paste budget ran out), a closed window,
 *    or a faulted CSB after the retry budget all fall back to the
 *    software codec, which produces the output the caller sees —
 *    like qzCompress falling back to software when QAT is saturated;
 *  - translation faults are resubmitted (the paper's touch-and-
 *    resubmit page-fault protocol) up to SessionPolicy::faultRetries
 *    times before software takes over; other condition codes fall
 *    back immediately (a BadData stream will not get better);
 *  - accelerator-bound request bytes are staged through a page-
 *    aligned pinned BufferPool (acquire -> copy -> DMA -> release)
 *    instead of per-call allocation, the qatzip_mem discipline;
 *  - every routing and fallback decision is counted in stats(), so
 *    operators can see *why* traffic landed where it did.
 *
 * Sessions are thread-safe and can share one JobServer (many sessions,
 * one engine pool — the multi-requester shape of the paper's shared
 * queue), or own a private one.
 *
 * Lifecycle (machine-checked by nxstate): optionally configure() a
 * policy, then any number of compress()/decompress() calls, then at
 * most one close(). Using a closed session is a contract violation.
 */

#ifndef NXSIM_CORE_SESSION_H
#define NXSIM_CORE_SESSION_H

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/buffer_pool.h"
#include "core/job_server.h"
#include "util/ownership.h"
#include "util/protocol.h"
#include "util/thread_annotations.h"

namespace nx {

/** Stream format a session speaks. */
enum class SessionFormat : uint8_t
{
    Gzip,         ///< RFC 1952 member (CRC-32 trailer)
    Zlib,         ///< RFC 1950 stream (Adler-32 trailer)
    RawDeflate,   ///< bare RFC 1951 bit stream
    E842,         ///< 842-class memory-compression stream
};

/** Human-readable format name. */
const char *toString(SessionFormat f);

/** Where a request's output was actually produced. */
enum class Backend : uint8_t
{
    Software,
    Accelerator,
};

/** Human-readable backend name. */
const char *toString(Backend b);

/** Per-session routing and execution policy. */
struct SessionPolicy
{
    SessionFormat format = SessionFormat::Gzip;

    /** Software codec level (DEFLATE formats; 842 has no levels). */
    int level = 6;

    /** Accelerator Huffman-table mode (DEFLATE formats). */
    core::Mode mode = core::Mode::Auto;

    /**
     * Requests of at least this many input bytes go to the
     * accelerator; smaller ones run on the software codec. 0 routes
     * everything to the device (benchmarks); the default mirrors the
     * production libraries' crossover (libnxz: 4 KiB).
     */
    uint64_t accelThresholdBytes = 4096;

    /** VAS window this session pastes into. */
    int window = 0;

    /** Busy re-paste budget for one request (the paper's RC loop). */
    core::BackoffPolicy backoff;

    /**
     * Translation-fault resubmits before software fallback. Other
     * condition codes are not retried.
     */
    int faultRetries = 1;

    /** Never touch the device (maintenance drain, A/B baselines). */
    bool forceSoftware = false;

    /** Decompress output cap. */
    uint64_t maxOutputBytes = uint64_t{1} << 30;
};

/** One completed session request. */
struct SessionResult
{
    bool ok = false;
    std::string error;                ///< set when !ok
    std::vector<uint8_t> data;        ///< produced stream / payload

    /** Backend that produced `data`. */
    Backend backend = Backend::Software;

    /** Routed to the accelerator but completed in software. */
    bool fellBack = false;

    /** Device submissions issued for this request (0: pure software). */
    int deviceSubmits = 0;

    /**
     * Time of the leg that produced the output: modelled seconds on
     * the accelerator, measured wall seconds in software.
     */
    double seconds = 0.0;

    uint64_t inputBytes = 0;

    double
    ratio() const
    {
        return data.empty() ? 0.0
            : static_cast<double>(inputBytes) /
                static_cast<double>(data.size());
    }
};

/** Aggregate session counters (one consistent snapshot). */
struct SessionStats
{
    uint64_t requests = 0;
    uint64_t softwareRouted = 0;   ///< policy sent it to software
    uint64_t accelRouted = 0;      ///< policy sent it to the device

    /** Accel-routed requests whose output came from software. */
    uint64_t fallbacks = 0;
    /** Fallback cause: paste budget exhausted (all attempts Busy). */
    uint64_t busyExhausted = 0;
    /** Fallback cause: window closed (server draining/stopped). */
    uint64_t closedRejects = 0;
    /** Faulted device completions observed (each failed CSB). */
    uint64_t deviceFaults = 0;

    uint64_t bytesIn = 0;
    uint64_t bytesOut = 0;         ///< produced bytes of ok requests

    /** Staging-pool counters (see BufferPool). */
    BufferPoolStats pool;

    // Dispatch-layer view behind this session. On a shared JobServer
    // these aggregate every session's traffic, not just this one's —
    // the operator-facing saturation signals of the serving report.
    /** Pastes bounced off a full window FIFO. */
    uint64_t serverBusyRejects = 0;
    /** Deepest total FIFO backlog any accepted paste observed. */
    uint64_t serverQueueDepthHighWater = 0;
    /** Busy rejects split per VAS window. */
    std::vector<uint64_t> serverWindowBusyRejects;
};

/** The session. Thread-safe; non-copyable. */
NXSIM_PROTOCOL(Session, configure? -> {compress|decompress}* -> close?);
class Session
{
  public:
    /**
     * Open a session owning a private JobServer on @p cfg's modelled
     * chip (simple single-client shape).
     */
    explicit Session(const nx::NxConfig &cfg,
                     const SessionPolicy &policy = {},
                     const BufferPoolConfig &pool = {});

    /**
     * Open a session over a shared JobServer (many sessions, one
     * engine pool). @p server must outlive the session.
     */
    explicit Session(core::JobServer &server,
                     const SessionPolicy &policy = {},
                     const BufferPoolConfig &pool = {});

    ~Session();

    Session(const Session &) = delete;
    Session &operator=(const Session &) = delete;

    /**
     * Replace the policy. Legal only before the first request
     * (enforced by contract and by the nxstate protocol).
     */
    void configure(const SessionPolicy &policy) NXSIM_EXCLUDES(mu_);

    /** Compress @p input into a stream of the session's format. */
    [[nodiscard]] SessionResult compress(std::span<const uint8_t> input)
        NXSIM_EXCLUDES(mu_);

    /** Decompress a stream of the session's format. */
    [[nodiscard]] SessionResult decompress(
        std::span<const uint8_t> stream) NXSIM_EXCLUDES(mu_);

    /**
     * Close the session: further requests are a contract violation.
     * Drains the private JobServer when the session owns one; a
     * shared server is left running. Idempotent (the destructor
     * closes an open session).
     */
    void close() NXSIM_EXCLUDES(mu_) NXSIM_RELEASES(job_ticket);

    /** One consistent snapshot of the counters. */
    [[nodiscard]] SessionStats stats() const NXSIM_EXCLUDES(mu_);

    /**
     * The routing predicate, exported so tests can check the decision
     * against the policy without submitting: true when a request of
     * @p bytes input bytes goes to the accelerator.
     */
    [[nodiscard]] bool
    routesToAccelerator(uint64_t bytes) const
    {
        return !pol_.forceSoftware && bytes >= pol_.accelThresholdBytes;
    }

    const SessionPolicy &policy() const { return pol_; }

    /** The dispatch layer behind this session (shared or owned). */
    core::JobServer &server() { return *server_; }

  private:
    /** Fallback cause of one failed device leg. */
    enum class DeviceOutcome
    {
        Completed,       ///< out holds the accelerator result
        BusyExhausted,
        Closed,
        Faulted,
    };

    [[nodiscard]] SessionResult run(core::JobKind kind,
                                    std::span<const uint8_t> input)
        NXSIM_EXCLUDES(mu_);
    [[nodiscard]] DeviceOutcome deviceLeg(core::JobKind kind,
                                          std::span<const uint8_t> staged,
                                          SessionResult *out)
        NXSIM_EXCLUDES(mu_);
    [[nodiscard]] SessionResult softwareLeg(
        core::JobKind kind, std::span<const uint8_t> input) const;

    // Written by the constructor/configure() before the first request,
    // immutable afterwards (contract-enforced): read without mu_.
    SessionPolicy pol_;

    std::unique_ptr<core::JobServer> ownedServer_;
    core::JobServer *server_;   ///< owned or shared; never null
    BufferPool pool_;           ///< staging for accelerator requests

    mutable nx::Mutex mu_;
    bool closed_ NXSIM_GUARDED_BY(mu_) = false;
    bool used_ NXSIM_GUARDED_BY(mu_) = false;
    uint64_t requests_ NXSIM_GUARDED_BY(mu_) = 0;
    uint64_t softwareRouted_ NXSIM_GUARDED_BY(mu_) = 0;
    uint64_t accelRouted_ NXSIM_GUARDED_BY(mu_) = 0;
    uint64_t fallbacks_ NXSIM_GUARDED_BY(mu_) = 0;
    uint64_t busyExhausted_ NXSIM_GUARDED_BY(mu_) = 0;
    uint64_t closedRejects_ NXSIM_GUARDED_BY(mu_) = 0;
    uint64_t deviceFaults_ NXSIM_GUARDED_BY(mu_) = 0;
    uint64_t bytesIn_ NXSIM_GUARDED_BY(mu_) = 0;
    uint64_t bytesOut_ NXSIM_GUARDED_BY(mu_) = 0;
};

} // namespace nx

#endif // NXSIM_CORE_SESSION_H
