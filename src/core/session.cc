#include "core/session.h"

#include <chrono>

#include "e842/e842.h"
#include "util/checked.h"
#include "util/contracts.h"

namespace nx {

namespace {

using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point t0)
{
    return std::chrono::duration<double>(Clock::now() - t0).count();
}

/** CRB framing for the deflate-family session formats. */
Framing
framingOf(SessionFormat f)
{
    switch (f) {
      case SessionFormat::Gzip: return Framing::Gzip;
      case SessionFormat::Zlib: return Framing::Zlib;
      case SessionFormat::RawDeflate: return Framing::Raw;
      case SessionFormat::E842: break;   // no DEFLATE framing
    }
    return Framing::Raw;
}

} // namespace

const char *
toString(SessionFormat f)
{
    switch (f) {
      case SessionFormat::Gzip: return "gzip";
      case SessionFormat::Zlib: return "zlib";
      case SessionFormat::RawDeflate: return "raw-deflate";
      case SessionFormat::E842: return "842";
    }
    return "?";
}

const char *
toString(Backend b)
{
    switch (b) {
      case Backend::Software: return "software";
      case Backend::Accelerator: return "accelerator";
    }
    return "?";
}

Session::Session(const nx::NxConfig &cfg, const SessionPolicy &policy,
                 const BufferPoolConfig &pool)
    : pol_(policy),
      ownedServer_(std::make_unique<core::JobServer>(cfg)),
      server_(ownedServer_.get()), pool_(pool)
{
}

Session::Session(core::JobServer &server, const SessionPolicy &policy,
                 const BufferPoolConfig &pool)
    : pol_(policy), server_(&server), pool_(pool)
{
}

Session::~Session()
{
    close();
}

void
Session::configure(const SessionPolicy &policy)
{
    nx::MutexLock lk(mu_);
    NXSIM_EXPECT(!used_, "configure() after the first request");
    NXSIM_EXPECT(!closed_, "configure() on a closed session");
    pol_ = policy;
}

SessionResult
Session::compress(std::span<const uint8_t> input)
{
    return run(core::JobKind::Compress, input);
}

SessionResult
Session::decompress(std::span<const uint8_t> stream)
{
    return run(core::JobKind::Decompress, stream);
}

void
Session::close()
{
    {
        nx::MutexLock lk(mu_);
        if (closed_)
            return;
        closed_ = true;
    }
    if (ownedServer_)
        ownedServer_->drainAndStop();
}

SessionResult
Session::run(core::JobKind kind, std::span<const uint8_t> input)
{
    {
        nx::MutexLock lk(mu_);
        NXSIM_EXPECT(!closed_, "request on a closed session");
        used_ = true;
        ++requests_;
        bytesIn_ += input.size();
    }

    const bool toAccel = routesToAccelerator(input.size());
    SessionResult res;
    DeviceOutcome dev = DeviceOutcome::Faulted;
    if (toAccel) {
        // Stage the request into the pinned pool — the copy a
        // production stack pays so the DMA engine sees page-aligned,
        // never-paged memory — then paste from the staged bytes.
        auto lease = pool_.acquire(input.size());
        nx::copyBytes(lease.data(), input.data(), input.size());
        dev = deviceLeg(kind, lease.prefix(input.size()), &res);
    }

    if (!toAccel || dev != DeviceOutcome::Completed) {
        int submits = res.deviceSubmits;
        res = softwareLeg(kind, input);
        res.deviceSubmits = submits;
        res.fellBack = toAccel;
    }
    res.inputBytes = input.size();

    {
        nx::MutexLock lk(mu_);
        if (toAccel)
            ++accelRouted_;
        else
            ++softwareRouted_;
        if (res.fellBack)
            ++fallbacks_;
        switch (dev) {
          case DeviceOutcome::BusyExhausted: ++busyExhausted_; break;
          case DeviceOutcome::Closed: ++closedRejects_; break;
          case DeviceOutcome::Completed:
          case DeviceOutcome::Faulted:
            break;   // deviceFaults_ counted per faulted completion
        }
        if (res.ok)
            bytesOut_ += res.data.size();
    }
    return res;
}

Session::DeviceOutcome
Session::deviceLeg(core::JobKind kind, std::span<const uint8_t> staged,
                   SessionResult *out)
{
    core::JobSpec spec;
    spec.kind = kind;
    spec.codec = pol_.format == SessionFormat::E842
        ? core::Codec::E842 : core::Codec::Deflate;
    spec.framing = framingOf(pol_.format);
    spec.mode = pol_.mode;
    spec.maxOutput = pol_.maxOutputBytes;
    // The modelled DMA: the engine pulls the staged bytes out of the
    // pinned buffer into its own job copy.
    spec.payload.assign(staged.begin(), staged.end());

    NXSIM_EXPECT(pol_.faultRetries >= 0, "negative fault-retry budget");
    for (int attempt = 0; attempt <= pol_.faultRetries; ++attempt) {
        auto sub = server_->submitWithRetry(spec, pol_.window,
                                            pol_.backoff);
        if (sub.status == PasteStatus::Busy)
            return DeviceOutcome::BusyExhausted;
        if (sub.status == PasteStatus::Closed)
            return DeviceOutcome::Closed;
        ++out->deviceSubmits;
        core::AsyncJob job = server_->wait(sub.ticket);
        if (job.result.ok()) {
            out->ok = true;
            out->backend = Backend::Accelerator;
            out->data = std::move(job.result.data);
            out->seconds = job.result.seconds;
            return DeviceOutcome::Completed;
        }
        {
            nx::MutexLock lk(mu_);
            ++deviceFaults_;
        }
        // The paper's protocol: translation faults are resubmitted
        // (software touches the page and re-pastes); anything else is
        // terminal for the device leg — retrying BadData cannot help.
        if (job.result.csb.cc != CondCode::TranslationFault)
            break;
    }
    return DeviceOutcome::Faulted;
}

SessionResult
Session::softwareLeg(core::JobKind kind,
                     std::span<const uint8_t> input) const
{
    SessionResult out;
    out.backend = Backend::Software;
    if (pol_.format == SessionFormat::E842) {
        auto t0 = Clock::now();
        if (kind == core::JobKind::Compress) {
            auto r = e842::compress(input);
            out.ok = true;
            out.data = std::move(r.bytes);
        } else {
            auto r = e842::decompress(
                input, nx::checked_cast<size_t>(pol_.maxOutputBytes));
            out.ok = r.ok;
            if (r.ok)
                out.data = std::move(r.bytes);
            else
                out.error = r.error;
        }
        out.seconds = secondsSince(t0);
        return out;
    }

    core::SoftwareCodec codec(pol_.level);
    core::JobResult r = kind == core::JobKind::Compress
        ? codec.compress(input, framingOf(pol_.format))
        : codec.decompress(input, framingOf(pol_.format));
    out.ok = r.ok();
    out.seconds = r.seconds;
    if (r.ok())
        out.data = std::move(r.data);
    else
        out.error = std::string("software codec: ") +
            nx::toString(r.csb.cc);
    return out;
}

SessionStats
Session::stats() const
{
    SessionStats s;
    {
        nx::MutexLock lk(mu_);
        s.requests = requests_;
        s.softwareRouted = softwareRouted_;
        s.accelRouted = accelRouted_;
        s.fallbacks = fallbacks_;
        s.busyExhausted = busyExhausted_;
        s.closedRejects = closedRejects_;
        s.deviceFaults = deviceFaults_;
        s.bytesIn = bytesIn_;
        s.bytesOut = bytesOut_;
    }
    s.pool = pool_.stats();
    core::JobServerStats js = server_->stats();
    s.serverBusyRejects = js.busyRejects;
    s.serverQueueDepthHighWater = js.queueDepthHighWater;
    s.serverWindowBusyRejects = std::move(js.windowBusyRejects);
    return s;
}

} // namespace nx
