/**
 * @file
 * FaultInjector — a programmable fault source for the device path.
 *
 * Real NX jobs fail: translation faults on unpinned pages, target-DDE
 * overflow, transient CRB rejects. The modelled engines, fed valid
 * requests from the session layer, never do — so the fallback logic
 * that production stacks live on (libnxz retries the CRB, then gives
 * the job to zlib) would be dead, untested code. This hook makes those
 * failures injectable and deterministic: tests and the fuzz harness
 * arm it, the JobServer workers consult it before running each job,
 * and an injected fault surfaces to the client exactly like a real
 * engine-reported CSB failure.
 *
 * All state is atomic: arming and consuming race freely with the
 * worker pool, and the injector can be shared by any number of
 * servers/sessions. A default-constructed injector never fires.
 */

#ifndef NXSIM_CORE_FAULT_INJECTOR_H
#define NXSIM_CORE_FAULT_INJECTOR_H

#include <atomic>
#include <cstdint>

#include "nx/crb.h"

namespace nx {

/** The hook. Armed by tests; consumed by the device path per job. */
class FaultInjector
{
  public:
    FaultInjector() = default;
    FaultInjector(const FaultInjector &) = delete;
    FaultInjector &operator=(const FaultInjector &) = delete;

    /** Fail the next @p n jobs that reach the device with @p cc. */
    void
    failNext(int n, CondCode cc = CondCode::TranslationFault)
    {
        cc_.store(cc, std::memory_order_relaxed);
        failNext_.store(n, std::memory_order_release);
    }

    /**
     * Fail every @p n-th job (1 = every job; 0 disables). Counts from
     * the next job seen; composes with failNext (either trips it).
     */
    void
    failEveryNth(uint64_t n, CondCode cc = CondCode::TranslationFault)
    {
        cc_.store(cc, std::memory_order_relaxed);
        everyNth_.store(n, std::memory_order_release);
    }

    /** Disarm and zero the schedule (counters keep their totals). */
    void
    reset()
    {
        failNext_.store(0, std::memory_order_release);
        everyNth_.store(0, std::memory_order_release);
    }

    /**
     * Device-path check, called once per job about to execute. Returns
     * true when this job must fail, storing the condition code in
     * @p cc (when non-null). Each armed failNext() slot is consumed
     * exactly once even under concurrent callers.
     */
    [[nodiscard]] bool
    shouldFail(CondCode *cc = nullptr)
    {
        uint64_t seen =
            seen_.fetch_add(1, std::memory_order_acq_rel) + 1;
        bool fail = false;
        int n = failNext_.load(std::memory_order_acquire);
        while (n > 0 &&
               !failNext_.compare_exchange_weak(
                   n, n - 1, std::memory_order_acq_rel)) {
        }
        if (n > 0)
            fail = true;
        uint64_t every = everyNth_.load(std::memory_order_acquire);
        if (every != 0 && seen % every == 0)
            fail = true;
        if (fail) {
            injected_.fetch_add(1, std::memory_order_relaxed);
            if (cc != nullptr)
                *cc = cc_.load(std::memory_order_relaxed);
        }
        return fail;
    }

    /** Jobs failed by the injector so far. */
    uint64_t
    injected() const
    {
        return injected_.load(std::memory_order_acquire);
    }

    /** Jobs that consulted the injector so far. */
    uint64_t
    seen() const
    {
        return seen_.load(std::memory_order_acquire);
    }

  private:
    std::atomic<int> failNext_{0};
    std::atomic<uint64_t> everyNth_{0};
    std::atomic<uint64_t> seen_{0};
    std::atomic<uint64_t> injected_{0};
    std::atomic<CondCode> cc_{CondCode::TranslationFault};
};

} // namespace nx

#endif // NXSIM_CORE_FAULT_INJECTOR_H
