#include "core/device.h"

#include <algorithm>
#include <chrono>

#include "deflate/deflate_encoder.h"
#include "deflate/gzip_stream.h"
#include "deflate/inflate_decoder.h"
#include "deflate/zlib_stream.h"
#include "util/adler32.h"
#include "util/crc32.h"
#include "util/checked.h"

namespace core {

NxDevice::NxDevice(const nx::NxConfig &cfg) : cfg_(cfg)
{
    int nc = cfg.compressEnginesPerUnit * cfg.unitsPerChip;
    int nd = cfg.decompressEnginesPerUnit * cfg.unitsPerChip;
    for (int i = 0; i < nc; ++i)
        comp_.push_back(std::make_unique<nx::CompressEngine>(cfg));
    for (int i = 0; i < nd; ++i)
        decomp_.push_back(std::make_unique<nx::DecompressEngine>(cfg));
}

JobResult
runCompressJob(nx::CompressEngine &eng, const nx::NxConfig &cfg,
               std::span<const uint8_t> source, nx::Framing framing,
               Mode mode, uint64_t seq)
{
    Mode effective = mode;
    if (mode == Mode::Auto) {
        effective = source.size() < NxDevice::autoFhtThreshold()
            ? Mode::Fht : Mode::DhtSampled;
    }

    nx::Crb crb;
    crb.func = effective == Mode::Fht
        ? nx::FuncCode::CompressFht : nx::FuncCode::CompressDht;
    crb.framing = framing;
    crb.source = nx::DdeList::direct(0x1000, nx::checked_cast<uint32_t>(
        source.size()));
    // Worst-case expansion: FHT emits 9-bit codes for literals
    // 144-255, so incompressible data can grow by up to 12.5 %
    // (plus framing). Stored-block fallback does not exist in FHT
    // mode, so the target must cover the full bound.
    crb.target = nx::DdeList::direct(0x2000000, nx::checked_cast<uint32_t>(
        source.size() + source.size() / 7 + 1024));
    crb.seq = seq;

    nx::DhtMode dmode = effective == Mode::DhtTwoPass
        ? nx::DhtMode::TwoPass : nx::DhtMode::Sampled;

    auto res = eng.run(crb, source, dmode);

    JobResult out;
    out.csb = res.csb;
    out.data = std::move(res.output);
    out.engineCycles = res.timing.total();
    out.seconds = cfg.clock.toSeconds(out.engineCycles);
    return out;
}

JobResult
runDecompressJob(nx::DecompressEngine &eng, const nx::NxConfig &cfg,
                 std::span<const uint8_t> stream, nx::Framing framing,
                 uint64_t max_output, uint64_t seq)
{
    nx::Crb crb;
    crb.func = nx::FuncCode::Decompress;
    crb.framing = framing;
    crb.source = nx::DdeList::direct(0x1000, nx::checked_cast<uint32_t>(
        stream.size()));
    crb.target = nx::DdeList::direct(0x2000000, nx::checked_cast<uint32_t>(
        max_output));
    crb.seq = seq;

    auto res = eng.run(crb, stream);

    JobResult out;
    out.csb = res.csb;
    out.data = std::move(res.output);
    out.engineCycles = res.timing.total();
    out.seconds = cfg.clock.toSeconds(out.engineCycles);
    return out;
}

JobResult
NxDevice::compress(std::span<const uint8_t> source, nx::Framing framing,
                   Mode mode)
{
    auto &eng = *comp_[nextComp_];
    nextComp_ = (nextComp_ + 1) % comp_.size();
    return runCompressJob(eng, cfg_, source, framing, mode, seq_++);
}

JobResult
NxDevice::decompress(std::span<const uint8_t> stream, nx::Framing framing,
                     uint64_t max_output)
{
    auto &eng = *decomp_[nextDecomp_];
    nextDecomp_ = (nextDecomp_ + 1) % decomp_.size();
    return runDecompressJob(eng, cfg_, stream, framing, max_output,
                            seq_++);
}

JobResult
NxDevice::compressLarge(std::span<const uint8_t> source,
                        size_t chunk_bytes, Mode mode)
{
    JobResult out;
    out.csb.cc = nx::CondCode::Success;
    out.csb.valid = true;

    std::vector<sim::Tick> engineBusy(comp_.size(), 0);
    size_t next = 0;
    size_t off = 0;
    do {
        size_t n = std::min(chunk_bytes, source.size() - off);
        auto job = compress(source.subspan(off, n),
                            nx::Framing::Gzip, mode);
        if (!job.ok()) {
            out.csb.cc = job.csb.cc;
            out.data.clear();
            return out;
        }
        out.data.insert(out.data.end(), job.data.begin(),
                        job.data.end());
        engineBusy[next] += job.engineCycles;
        next = (next + 1) % engineBusy.size();
        off += n;
    } while (off < source.size());

    out.csb.processedBytes = source.size();
    out.csb.producedBytes = out.data.size();
    out.engineCycles = *std::max_element(engineBusy.begin(),
                                         engineBusy.end());
    out.seconds = cfg_.clock.toSeconds(out.engineCycles);
    return out;
}

JobResult
NxDevice::decompressLarge(std::span<const uint8_t> file,
                          uint64_t max_output)
{
    JobResult out;
    out.csb.valid = true;

    std::vector<sim::Tick> engineBusy(decomp_.size(), 0);
    size_t next = 0;
    size_t off = 0;
    uint64_t produced = 0;
    while (off < file.size()) {
        // Each member is one decompress CRB on the next engine.
        auto member = deflate::gzipUnwrap(file.subspan(off));
        if (!member.ok) {
            out.csb.cc = nx::CondCode::BadData;
            out.data.clear();
            return out;
        }
        auto job = decompress(file.subspan(off, member.memberBytes),
                              nx::Framing::Gzip,
                              max_output - produced);
        if (!job.ok()) {
            out.csb.cc = job.csb.cc;
            out.data.clear();
            return out;
        }
        out.data.insert(out.data.end(), job.data.begin(),
                        job.data.end());
        produced += job.data.size();
        engineBusy[next] += job.engineCycles;
        next = (next + 1) % engineBusy.size();
        off += member.memberBytes;
    }

    out.csb.cc = nx::CondCode::Success;
    out.csb.processedBytes = file.size();
    out.csb.producedBytes = out.data.size();
    out.engineCycles = engineBusy.empty() ? 0
        : *std::max_element(engineBusy.begin(), engineBusy.end());
    out.seconds = cfg_.clock.toSeconds(out.engineCycles);
    return out;
}

namespace {

using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point t0)
{
    return std::chrono::duration<double>(Clock::now() - t0).count();
}

} // namespace

JobResult
SoftwareCodec::compress(std::span<const uint8_t> source,
                        nx::Framing framing)
{
    JobResult out;
    auto t0 = Clock::now();
    deflate::DeflateOptions opts;
    opts.level = level_;
    auto res = deflate::deflateCompress(source, opts);
    switch (framing) {
      case nx::Framing::Raw:
        out.data = std::move(res.bytes);
        out.csb.checksum = util::crc32(source);
        break;
      case nx::Framing::Gzip:
        out.data = deflate::gzipWrap(res.bytes, source);
        out.csb.checksum = util::crc32(source);
        break;
      case nx::Framing::Zlib:
        out.data = deflate::zlibWrap(res.bytes, source);
        out.csb.checksum = util::adler32(source);
        break;
    }
    out.seconds = secondsSince(t0);
    out.csb.cc = nx::CondCode::Success;
    out.csb.valid = true;
    out.csb.processedBytes = source.size();
    out.csb.producedBytes = out.data.size();
    return out;
}

JobResult
SoftwareCodec::decompress(std::span<const uint8_t> stream,
                          nx::Framing framing)
{
    JobResult out;
    auto t0 = Clock::now();
    deflate::InflateResult inf;
    switch (framing) {
      case nx::Framing::Raw:
        inf = deflate::inflateDecompress(stream);
        break;
      case nx::Framing::Gzip: {
        auto res = deflate::gzipUnwrap(stream);
        if (!res.ok) {
            out.csb.cc = nx::CondCode::BadData;
            out.csb.valid = true;
            return out;
        }
        inf = std::move(res.inflate);
        break;
      }
      case nx::Framing::Zlib: {
        auto res = deflate::zlibUnwrap(stream);
        if (!res.ok) {
            out.csb.cc = nx::CondCode::BadData;
            out.csb.valid = true;
            return out;
        }
        inf = std::move(res.inflate);
        break;
      }
    }
    if (!inf.ok()) {
        out.csb.cc = nx::CondCode::BadData;
        out.csb.valid = true;
        return out;
    }
    out.seconds = secondsSince(t0);
    out.csb.cc = nx::CondCode::Success;
    out.csb.valid = true;
    out.csb.processedBytes = stream.size();
    out.csb.producedBytes = inf.bytes.size();
    out.data = std::move(inf.bytes);
    return out;
}

} // namespace core
