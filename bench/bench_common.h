/**
 * @file
 * Shared helpers for the experiment benches: host calibration of the
 * software baseline, modelled-rate measurement of the accelerator, and
 * common formatting. Every bench regenerates one table/figure of the
 * paper (see DESIGN.md's experiment index) and prints paper-vs-measured
 * where the abstract states a number.
 */

#ifndef NXSIM_BENCH_BENCH_COMMON_H
#define NXSIM_BENCH_BENCH_COMMON_H

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "core/device.h"
#include "core/nxzip.h"
#include "core/topology.h"
#include "deflate/host_cal.h"
#include "util/checked.h"
#include "util/contracts.h"
#include "util/table.h"
#include "workloads/corpus.h"

namespace bench {

/** Modelled accelerator throughput/ratio over a buffer. */
struct AccelRates
{
    double compressBps = 0.0;     ///< source bytes / modelled seconds
    double decompressBps = 0.0;   ///< output bytes / modelled seconds
    double ratio = 1.0;
};

/**
 * Push @p data through one device in @p job_bytes requests and return
 * modelled rates.
 */
inline AccelRates
measureAccel(const nx::NxConfig &cfg, std::span<const uint8_t> data,
             core::Mode mode = core::Mode::DhtSampled,
             size_t job_bytes = 1 << 20)
{
    // job_bytes == 0 would loop forever below; make the precondition
    // loud instead of hanging a bench run.
    NXSIM_EXPECT(job_bytes > 0, "job_bytes must be positive");
    core::NxDevice dev(cfg);
    AccelRates out;
    double comp_secs = 0.0;
    double decomp_secs = 0.0;
    uint64_t in_bytes = 0;
    uint64_t comp_bytes = 0;

    for (size_t off = 0; off < data.size(); off += job_bytes) {
        size_t n = std::min(job_bytes, data.size() - off);
        auto job = dev.compress(data.subspan(off, n),
                                nx::Framing::Gzip, mode);
        if (!job.ok())
            continue;
        comp_secs += job.seconds;
        in_bytes = nx::checkedAdd(in_bytes, static_cast<uint64_t>(n));
        comp_bytes = nx::checkedAdd(
            comp_bytes, static_cast<uint64_t>(job.data.size()));

        auto djob = dev.decompress(job.data, nx::Framing::Gzip);
        if (djob.ok())
            decomp_secs += djob.seconds;
    }
    if (comp_secs > 0.0)
        out.compressBps = static_cast<double>(in_bytes) / comp_secs;
    if (decomp_secs > 0.0)
        out.decompressBps = static_cast<double>(in_bytes) / decomp_secs;
    if (comp_bytes > 0)
        out.ratio = static_cast<double>(in_bytes) /
            static_cast<double>(comp_bytes);
    return out;
}

/** Format a speedup multiple like "388x". */
inline std::string
fmtX(double x)
{
    return util::Table::fmt(x, x >= 100 ? 0 : 1) + "x";
}

/** One standard banner so bench output is self-describing. */
inline void
banner(const std::string &id, const std::string &what)
{
    std::printf("\n### %s — %s\n", id.c_str(), what.c_str());
}

} // namespace bench

#endif // NXSIM_BENCH_BENCH_COMMON_H
