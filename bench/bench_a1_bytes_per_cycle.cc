/**
 * @file
 * A1 [ablation] — Match-pipe width (bytes per cycle) sweep.
 *
 * The defining trade of the design: widening the match pipe multiplies
 * throughput but stresses the banked hash table (more lookups per
 * cycle -> more conflicts). The token stream — and hence the ratio —
 * is width-independent in this microarchitecture; what moves is the
 * stall fraction and the achieved fraction of the ideal W-bytes/cycle.
 */

#include "bench_common.h"

#include "nx/dht_generator.h"
#include "nx/huffman_stage.h"
#include "nx/match_pipeline.h"

int
main()
{
    bench::banner("A1", "match-pipe width ablation");

    auto data = workloads::makeMixed(4 << 20, 3103);

    util::Table t("A1: bytes/cycle vs rate and bank stalls (2 GHz)");
    t.header({"width B/cyc", "modelled rate", "ideal rate",
              "efficiency", "stall cycles/MB", "ratio"});
    for (int w : {1, 2, 4, 8, 16}) {
        auto cfg = nx::NxConfig::power9();
        cfg.compressBytesPerCycle = w;
        nx::MatchPipeline pipe(cfg);
        auto res = pipe.run(data);

        double secs = cfg.clock.toSeconds(res.cycles);
        double rate = static_cast<double>(data.size()) / secs;
        double ideal = cfg.clock.hz() * w;
        double stalls_per_mb = static_cast<double>(
            res.bankStallCycles) /
            (static_cast<double>(data.size()) / (1 << 20));

        // Ratio via the encode stage with exact DHT.
        nx::DhtGenerator gen(cfg);
        auto dht = gen.generate(res.tokens, data.size(),
                                nx::DhtMode::TwoPass);
        nx::HuffmanStage huff(cfg);
        auto enc = huff.encodeDynamic(res.tokens, dht.codes);
        double ratio = static_cast<double>(data.size()) /
            static_cast<double>(enc.bytes.size());

        t.row({std::to_string(w), util::Table::fmtRate(rate),
               util::Table::fmtRate(ideal),
               util::Table::fmt(100.0 * rate / ideal, 1) + "%",
               util::Table::fmt(stalls_per_mb, 0),
               util::Table::fmt(ratio)});
    }
    t.note("P9 ships W=4, z15 W=8; efficiency erodes as W grows past "
           "the bank count's ability to serve row lookups");
    t.print();
    return 0;
}
