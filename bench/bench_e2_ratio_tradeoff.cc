/**
 * @file
 * E2 [reconstructed] — Compression ratio vs throughput trade-off.
 *
 * The paper's central design argument: the accelerator gives up a
 * little compression ratio (way-limited hash table, sampled DHT)
 * relative to high software levels, in exchange for orders of
 * magnitude more throughput. This bench prints the (ratio, rate)
 * frontier for software levels 1/3/6/9 and the accelerator's three
 * table modes, over the same mixed corpus.
 */

#include "bench_common.h"

int
main()
{
    bench::banner("E2", "compression ratio vs throughput frontier");

    const size_t corpus_bytes = 8 << 20;
    auto data = workloads::makeMixed(corpus_bytes, 2002);

    std::vector<int> levels = {1, 3, 6, 9};
    auto sw = deflate::measureSoftwareRates(data, levels, 0.25);

    auto cfg = core::power9Chip().accel;
    auto fht = bench::measureAccel(cfg, data, core::Mode::Fht);
    auto dht = bench::measureAccel(cfg, data, core::Mode::DhtSampled);
    auto dht2 = bench::measureAccel(cfg, data, core::Mode::DhtTwoPass);

    util::Table t("E2: ratio vs rate (POWER9 accel vs software levels)");
    t.header({"codec", "ratio", "rate", "ratio vs zlib-9",
              "rate vs zlib-9"});
    double r9 = sw.ratio[9];
    double b9 = sw.compressBps[9];
    for (int level : levels) {
        t.row({"software level " + std::to_string(level),
               util::Table::fmt(sw.ratio[level]),
               util::Table::fmtRate(sw.compressBps[level]),
               util::Table::fmt(100.0 * sw.ratio[level] / r9, 1) + "%",
               bench::fmtX(sw.compressBps[level] / b9)});
    }
    auto add = [&](const char *name, const bench::AccelRates &a) {
        t.row({name, util::Table::fmt(a.ratio),
               util::Table::fmtRate(a.compressBps),
               util::Table::fmt(100.0 * a.ratio / r9, 1) + "%",
               bench::fmtX(a.compressBps / b9)});
    };
    add("accel FHT", fht);
    add("accel DHT (sampled)", dht);
    add("accel DHT (two-pass)", dht2);

    t.note("paper shape: accel ratio lands between zlib-1 and zlib-6 "
           "(~90-97% of zlib-9) at 2-3 orders of magnitude more rate");
    t.print();
    return 0;
}
