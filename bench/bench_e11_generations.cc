/**
 * @file
 * E11 [abstract] — Generation comparison: POWER9 vs z15.
 *
 * Paper claim: the z15 unit doubles the POWER9 compression rate (and
 * the maximal z15 topology reaches 280 GB/s; that aggregate view is
 * E6). This bench pushes identical corpus bytes through both presets
 * and prints per-generation rate, latency and ratio.
 */

#include <cstdio>

#include "bench_common.h"
#include "nx/compress_engine.h"

int
main()
{
    bench::banner("E11", "POWER9 vs z15 per-engine comparison");

    auto data = workloads::makeMixed(8 << 20, 1111);
    auto p9 = nx::NxConfig::power9();
    auto z15 = nx::NxConfig::z15();

    util::Table t("E11: generation comparison (same input bytes)");
    t.header({"metric", "POWER9", "z15", "z15/P9"});

    auto ap = bench::measureAccel(p9, data, core::Mode::DhtSampled);
    auto az = bench::measureAccel(z15, data, core::Mode::DhtSampled);

    t.row({"compress rate", util::Table::fmtRate(ap.compressBps),
           util::Table::fmtRate(az.compressBps),
           bench::fmtX(az.compressBps / ap.compressBps)});
    t.row({"decompress rate", util::Table::fmtRate(ap.decompressBps),
           util::Table::fmtRate(az.decompressBps),
           bench::fmtX(az.decompressBps / ap.decompressBps)});
    t.row({"compression ratio", util::Table::fmt(ap.ratio),
           util::Table::fmt(az.ratio),
           util::Table::fmt(az.ratio / ap.ratio, 3)});

    // Small-request latency (64 KiB FHT), the user-visible metric.
    for (const auto *cfg : {&p9, &z15}) {
        (void)cfg;
    }
    auto latency = [&](const nx::NxConfig &cfg) {
        nx::CompressEngine eng(cfg);
        nx::Crb crb;
        crb.func = nx::FuncCode::CompressFht;
        crb.framing = nx::Framing::Gzip;
        crb.source = nx::DdeList::direct(0, 64 << 10);
        crb.target = nx::DdeList::direct(0, 160 << 10);
        auto job = eng.run(crb,
            std::span<const uint8_t>(data.data(), 64 << 10));
        return cfg.clock.toSeconds(job.timing.total()) * 1e6;
    };
    double lp = latency(p9);
    double lz = latency(z15);
    t.row({"64 KiB FHT latency",
           util::Table::fmt(lp, 1) + " us",
           util::Table::fmt(lz, 1) + " us",
           util::Table::fmt(lz / lp, 2)});

    t.note("paper: z15 doubles the POWER9 compression rate");
    t.print();

    std::printf("\nE11 summary: z15/P9 compress rate ratio %.2fx "
                "(paper 2x)\n", az.compressBps / ap.compressBps);
    return 0;
}
