/**
 * @file
 * E1 [abstract] — The headline speedup table.
 *
 * Paper claims (POWER9): a single on-chip accelerator is 388x faster
 * than zlib software on one general-purpose core, and 13x faster than
 * the *entire chip* of cores running the software.
 *
 * Method: measure our software codec (the zlib-equivalent baseline) on
 * this host at levels 1/6/9 over a mixed enterprise corpus, model the
 * accelerator over the same bytes, and recompute both ratios from
 * first principles. The host core stands in for the POWER9 core (see
 * DESIGN.md, substitutions).
 */

#include <cstdio>

#include "bench_common.h"

int
main()
{
    bench::banner("E1",
        "accelerator vs software speedup (single core and whole chip)");

    const size_t corpus_bytes = 8 << 20;
    auto data = workloads::makeMixed(corpus_bytes, 1001);

    // Software baseline, measured on this host.
    std::vector<int> levels = {1, 6, 9};
    auto sw = deflate::measureSoftwareRates(data, levels, 0.3);

    // Accelerator, modelled.
    auto chip = core::power9Chip();
    auto accel = bench::measureAccel(chip.accel, data,
                                     core::Mode::DhtSampled);

    util::Table t("E1: compression throughput and speedup (POWER9)");
    t.header({"codec", "ratio", "rate", "vs zlib-6 1-core",
              "vs whole chip"});

    double chip_sw_bps = sw.compressBps[6] * chip.cores;
    for (int level : levels) {
        t.row({"software level " + std::to_string(level),
               util::Table::fmt(sw.ratio[level]),
               util::Table::fmtRate(sw.compressBps[level]),
               bench::fmtX(sw.compressBps[level] / sw.compressBps[6]),
               bench::fmtX(sw.compressBps[level] / chip_sw_bps)});
    }
    t.row({"NX accelerator (DHT)",
           util::Table::fmt(accel.ratio),
           util::Table::fmtRate(accel.compressBps),
           bench::fmtX(accel.compressBps / sw.compressBps[6]),
           bench::fmtX(accel.compressBps / chip_sw_bps)});

    t.note("paper: 388x over one core, 13x over the whole chip "
           "(24-core POWER9; host core stands in for a P9 core)");
    t.note("whole chip = level-6 rate x " +
           std::to_string(chip.cores) + " cores, perfect scaling "
           "(favours the baseline)");
    t.print();

    double single = accel.compressBps / sw.compressBps[6];
    double whole = accel.compressBps / chip_sw_bps;
    std::printf("\nE1 summary: single-core speedup %.0fx "
                "(paper 388x), whole-chip %.1fx (paper 13x)\n",
                single, whole);
    return 0;
}
