/**
 * @file
 * E8 [reconstructed] — Decompression throughput: accelerator vs
 * software inflate, per corpus member and per table mode.
 *
 * Expected shape: decompression is cheaper per byte than compression
 * (no match search), so the engine's decompress rate exceeds its
 * compress rate; software inflate is several times faster than
 * software deflate but still orders of magnitude behind the engine.
 */

#include "bench_common.h"

#include "deflate/deflate_encoder.h"
#include "deflate/inflate_decoder.h"

#include <chrono>

namespace {

double
measureSwInflate(std::span<const uint8_t> stream, uint64_t out_bytes)
{
    using Clock = std::chrono::steady_clock;
    auto t0 = Clock::now();
    uint64_t total = 0;
    int iters = 0;
    double secs;
    do {
        auto res = deflate::inflateDecompress(stream);
        total += res.bytes.size();
        ++iters;
        secs = std::chrono::duration<double>(Clock::now() - t0).count();
    } while (secs < 0.1);
    (void)out_bytes;
    return static_cast<double>(total) / secs;
}

} // namespace

int
main()
{
    bench::banner("E8", "decompression throughput, accel vs software");

    auto cfg = core::power9Chip().accel;
    auto corpus = workloads::standardCorpus(2 << 20);

    util::Table t("E8: decompress rate by corpus member (POWER9)");
    t.header({"file", "ratio", "sw inflate", "accel decomp",
              "speedup"});
    for (const auto &file : corpus) {
        auto stream = deflate::deflateCompress(file.data).bytes;
        double sw_bps = measureSwInflate(stream, file.data.size());
        auto accel = bench::measureAccel(cfg, file.data,
                                         core::Mode::DhtSampled);
        double r = static_cast<double>(file.data.size()) /
            static_cast<double>(stream.size());
        t.row({file.name, util::Table::fmt(r),
               util::Table::fmtRate(sw_bps),
               util::Table::fmtRate(accel.decompressBps),
               bench::fmtX(accel.decompressBps / sw_bps)});
    }
    t.note("accel decompress rate is output-side; engine peak " +
           util::Table::fmtRate(cfg.peakDecompressBps()));
    t.note("paper shape: decompress engine outruns compress engine; "
           "two orders of magnitude over software inflate");
    t.print();
    return 0;
}
