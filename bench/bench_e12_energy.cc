/**
 * @file
 * E12 [abstract, qualitative] — Energy per compressed byte.
 *
 * The abstract lists power/energy efficiency among the advances. With
 * measured software rates and modelled engine rates, energy/byte =
 * power x time/byte; the accelerator's three-orders-of-magnitude
 * advantage comes almost entirely from the rate gap, so it is robust
 * to the (parameterised) wattage guesses. Labelled a proxy in
 * EXPERIMENTS.md like E9.
 */

#include "bench_common.h"

#include "nx/energy_model.h"

int
main()
{
    bench::banner("E12", "energy per byte: engine vs core");

    const uint64_t bytes = 1 << 30;    // per-GB accounting
    auto data = workloads::makeMixed(8 << 20, 1201);

    std::vector<int> levels = {1, 6};
    auto sw = deflate::measureSoftwareRates(data, levels, 0.25);
    auto accel = bench::measureAccel(core::power9Chip().accel, data,
                                     core::Mode::DhtSampled);

    nx::EnergyParams p;
    util::Table t("E12: energy to compress 1 GiB (POWER9 parameters)");
    t.header({"path", "rate", "power W", "time s", "energy J",
              "nJ/byte"});
    for (int level : levels) {
        auto e = nx::softwareEnergy(p, bytes, sw.compressBps[level]);
        t.row({"software level " + std::to_string(level),
               util::Table::fmtRate(sw.compressBps[level]),
               util::Table::fmt(p.coreWatts, 1),
               util::Table::fmt(e.seconds, 1),
               util::Table::fmt(e.joules, 1),
               util::Table::fmt(e.nanojoulesPerByte, 1)});
    }
    auto ea = nx::acceleratorEnergy(p, bytes, accel.compressBps);
    t.row({"NX accelerator",
           util::Table::fmtRate(accel.compressBps),
           util::Table::fmt(p.engineWatts, 1),
           util::Table::fmt(ea.seconds, 3),
           util::Table::fmt(ea.joules, 3),
           util::Table::fmt(ea.nanojoulesPerByte, 3)});

    auto e6 = nx::softwareEnergy(p, bytes, sw.compressBps[6]);
    t.note("energy advantage vs level 6: " +
           bench::fmtX(e6.joules / ea.joules) +
           " (rate gap x power gap; wattages are parameters)");
    t.print();
    return 0;
}
