/**
 * @file
 * E9 [abstract] — Area proxy: the accelerator's state inventory.
 *
 * Paper claim: one POWER9 accelerator occupies < 0.5 % of the chip.
 * We have no physical design, so this bench prints the SRAM/register
 * inventory the modelled microarchitecture implies and expresses it
 * against the host chip's cache SRAM as an order-of-magnitude proxy.
 * Labelled qualitative in DESIGN.md/EXPERIMENTS.md.
 */

#include <cstdio>

#include "bench_common.h"
#include "nx/area_model.h"

namespace {

void
printInventory(const nx::NxConfig &cfg)
{
    auto inv = nx::buildAreaInventory(cfg);
    util::Table t("E9: accelerator state inventory (" + cfg.name + ")");
    t.header({"block", "KiB", "note"});
    for (const auto &item : inv.items) {
        t.row({item.name,
               util::Table::fmt(static_cast<double>(item.bits) / 8192.0,
                                1),
               item.note});
    }
    t.row({"TOTAL", util::Table::fmt(inv.totalKiB(), 1), ""});
    double frac = static_cast<double>(inv.totalBits()) /
        static_cast<double>(nx::chipSramBitsReference(cfg));
    t.note("fraction of chip cache SRAM (proxy): " +
           util::Table::fmt(100.0 * frac, 3) + "% — paper: < 0.5% of "
           "chip area");
    t.print();
}

} // namespace

int
main()
{
    bench::banner("E9", "area proxy: accelerator state inventory");
    printInventory(nx::NxConfig::power9());
    printInventory(nx::NxConfig::z15());
    return 0;
}
