/**
 * @file
 * E10 [reconstructed] — Page-fault handling: throughput vs fault
 * probability under the two software strategies (resubmit-on-fault vs
 * touch-pages-first).
 *
 * The paper's integration story: user-mode submission means the engine
 * can hit unresident pages; the CSB reports partial progress and
 * software resubmits. Expected shape: resubmission cost grows sharply
 * with fault rate; pre-touching flattens the curve at a modest fixed
 * cost, crossing over at a few-percent fault probability.
 */

#include "bench_common.h"

#include "nx/page_fault_model.h"

int
main()
{
    bench::banner("E10",
        "throughput vs page-fault rate, two handling strategies");

    util::Table t("E10: effective rate vs source-page fault "
                  "probability (POWER9, 1 MiB jobs)");
    t.header({"fault prob", "resubmit rate", "resubmit slowdown",
              "resubmits/job", "touch-first rate",
              "touch-first slowdown", "better"});

    for (double p : {0.0, 0.005, 0.01, 0.02, 0.05, 0.1, 0.2, 0.5}) {
        nx::FaultModelConfig cfg;
        cfg.chip = core::power9Chip().accel;
        cfg.jobBytes = 1 << 20;
        cfg.faultProbPerPage = p;
        cfg.jobs = 200;

        cfg.strategy = nx::FaultStrategy::ResubmitOnFault;
        auto resub = runFaultModel(cfg);
        cfg.strategy = nx::FaultStrategy::TouchPagesFirst;
        auto touch = runFaultModel(cfg);

        t.row({util::Table::fmt(100.0 * p, 1) + "%",
               util::Table::fmtRate(resub.effectiveBps),
               bench::fmtX(resub.slowdown),
               util::Table::fmt(resub.meanResubmits, 1),
               util::Table::fmtRate(touch.effectiveBps),
               bench::fmtX(touch.slowdown),
               resub.effectiveBps >= touch.effectiveBps
                   ? "resubmit" : "touch-first"});
    }
    t.note("paper shape: resubmission degrades steeply with fault "
           "rate; pre-touching pages bounds the loss");
    t.print();
    return 0;
}
