/**
 * @file
 * E4 [reconstructed] — Request latency vs size, overhead breakdown,
 * and the software/accelerator crossover.
 *
 * On-chip accelerators have a fixed per-request cost (paste, CRB
 * fetch, DMA setup, completion) that dominates small jobs; the paper
 * discusses why user-mode dispatch (VAS) keeps that overhead in the
 * microseconds, making even tens-of-KB requests profitable. This
 * bench prints the modelled latency decomposition across request
 * sizes and finds the break-even size against measured software time.
 */

#include <cstdio>

#include "bench_common.h"
#include "nx/compress_engine.h"

int
main()
{
    bench::banner("E4",
        "request latency vs size; dispatch/DMA/engine breakdown");

    auto cfg = core::power9Chip().accel;
    auto full = workloads::makeText(16 << 20, 4004);

    util::Table t("E4: compress request latency breakdown (POWER9, "
                  "DHT sampled)");
    t.header({"size", "dispatch us", "dmaIn us", "dhtGen us",
              "match us", "encode us", "total us", "accel rate",
              "sw level-6 us", "winner"});

    core::SoftwareCodec sw(6);

    for (size_t size : {size_t{1} << 10, size_t{4} << 10,
                        size_t{16} << 10, size_t{64} << 10,
                        size_t{256} << 10, size_t{1} << 20,
                        size_t{4} << 20, size_t{16} << 20}) {
        std::span<const uint8_t> src(full.data(), size);

        nx::CompressEngine eng(cfg);
        nx::Crb crb;
        crb.func = size < 32 * 1024 ? nx::FuncCode::CompressFht
                                    : nx::FuncCode::CompressDht;
        crb.framing = nx::Framing::Gzip;
        crb.source = nx::DdeList::direct(0x1000,
            static_cast<uint32_t>(size));
        crb.target = nx::DdeList::direct(0x2000000,
            static_cast<uint32_t>(size * 2 + 4096));
        auto job = eng.run(crb, src);
        if (job.csb.cc != nx::CondCode::Success)
            continue;

        auto us = [&](sim::Tick c) {
            return util::Table::fmt(cfg.clock.toSeconds(c) * 1e6, 1);
        };
        double accel_us = cfg.clock.toSeconds(job.timing.total()) * 1e6;
        double accel_bps = static_cast<double>(size) /
            cfg.clock.toSeconds(job.timing.total());

        // Software wall time, measured (repeat small sizes).
        double sw_secs = 0.0;
        int iters = 0;
        do {
            auto sj = sw.compress(src, nx::Framing::Gzip);
            sw_secs += sj.seconds;
            ++iters;
        } while (sw_secs < 0.05 && iters < 1000);
        double sw_us = sw_secs / iters * 1e6;

        t.row({util::Table::fmtBytes(size),
               us(job.timing.dispatch), us(job.timing.dmaIn),
               us(job.timing.dhtGen), us(job.timing.match),
               us(job.timing.encode),
               util::Table::fmt(accel_us, 1),
               util::Table::fmtRate(accel_bps),
               util::Table::fmt(sw_us, 1),
               accel_us < sw_us ? "accel" : "software"});
    }
    t.note("paper shape: fixed ~us dispatch overhead amortizes by "
           "tens of KB; accelerator wins from small-KB sizes upward");
    t.note("total overlaps the streaming stages; columns need not sum");
    t.print();
    return 0;
}
