/**
 * @file
 * E5 [reconstructed] — Sampled DHT: ratio loss and rate gain vs the
 * sample size, against two-pass (exact) DHT and FHT.
 *
 * The POWER9 stack samples a prefix of the request to build the
 * dynamic Huffman table in one pass; the paper discusses this as the
 * key trade that avoids buffering whole requests on chip. Expected
 * shape: a few KB of sample recovers most of the two-pass ratio; the
 * two-pass mode costs an extra full pass of cycles.
 */

#include "bench_common.h"

#include "nx/compress_engine.h"

namespace {

struct Point
{
    double ratio;
    double bps;
};

Point
run(const nx::NxConfig &cfg, std::span<const uint8_t> data,
    nx::FuncCode func, nx::DhtMode mode, uint64_t sample)
{
    nx::CompressEngine eng(cfg);
    double secs = 0.0;
    uint64_t out = 0;
    const size_t job = 1 << 20;
    for (size_t off = 0; off < data.size(); off += job) {
        size_t n = std::min(job, data.size() - off);
        nx::Crb crb;
        crb.func = func;
        crb.framing = nx::Framing::Raw;
        crb.source = nx::DdeList::direct(0, static_cast<uint32_t>(n));
        crb.target = nx::DdeList::direct(0,
            static_cast<uint32_t>(n * 2 + 4096));
        auto res = eng.run(crb, data.subspan(off, n), mode, sample);
        secs += cfg.clock.toSeconds(res.timing.total());
        out += res.output.size();
    }
    return {static_cast<double>(data.size()) / out,
            static_cast<double>(data.size()) / secs};
}

} // namespace

int
main()
{
    bench::banner("E5",
        "sampled-DHT: ratio and rate vs sample size (1 MiB jobs)");

    // Homogeneous (stationary) stream: the sampling strategy assumes
    // the prefix represents the rest, which holds for the paper's
    // per-file evaluation. bench_e2 covers the heterogeneous case.
    auto cfg = core::power9Chip().accel;
    auto data = workloads::makeLog(8 << 20, 5005);

    auto fht = run(cfg, data, nx::FuncCode::CompressFht,
                   nx::DhtMode::Sampled, 0);
    auto two = run(cfg, data, nx::FuncCode::CompressDht,
                   nx::DhtMode::TwoPass, 0);

    util::Table t("E5: DHT strategy vs ratio and modelled rate");
    t.header({"strategy", "ratio", "% of two-pass ratio", "rate",
              "rate vs two-pass"});
    t.row({"FHT (no tables)", util::Table::fmt(fht.ratio),
           util::Table::fmt(100.0 * fht.ratio / two.ratio, 1) + "%",
           util::Table::fmtRate(fht.bps), bench::fmtX(fht.bps / two.bps)});
    for (uint64_t sample : {1u << 10, 4u << 10, 16u << 10, 64u << 10,
                            256u << 10}) {
        auto p = run(cfg, data, nx::FuncCode::CompressDht,
                     nx::DhtMode::Sampled, sample);
        t.row({"DHT sample " + util::Table::fmtBytes(sample),
               util::Table::fmt(p.ratio),
               util::Table::fmt(100.0 * p.ratio / two.ratio, 1) + "%",
               util::Table::fmtRate(p.bps),
               bench::fmtX(p.bps / two.bps)});
    }
    t.row({"DHT two-pass (exact)", util::Table::fmt(two.ratio),
           "100.0%", util::Table::fmtRate(two.bps), "1.0x"});
    t.note("paper shape: a 16-32 KiB sample recovers ~97-99% of the "
           "exact-DHT ratio at nearly the FHT rate");
    t.print();
    return 0;
}
