/**
 * @file
 * A5 [ablation] — History window size vs ratio and buffer SRAM.
 *
 * DEFLATE caps the window at 32 KiB; the hardware could have shipped
 * less to save the two on-chip window buffers. This bench quantifies
 * what smaller windows cost in ratio across data types — the answer
 * (several percent on long-range-redundant data, nothing on local
 * data) is the justification for paying for the full 32 KiB.
 */

#include "bench_common.h"

#include "nx/dht_generator.h"
#include "nx/huffman_stage.h"
#include "nx/match_pipeline.h"

int
main()
{
    bench::banner("A5", "history window size ablation");

    util::Table t("A5: window bytes vs ratio (exact DHT)");
    t.header({"data", "4 KiB", "8 KiB", "16 KiB", "32 KiB"});

    for (const auto &file : workloads::standardCorpus(2 << 20)) {
        if (file.name == "zeros" || file.name == "random")
            continue;
        std::vector<std::string> cells = {file.name};
        for (int window : {4096, 8192, 16384, 32768}) {
            auto cfg = nx::NxConfig::power9();
            cfg.windowBytes = window;
            nx::MatchPipeline pipe(cfg);
            auto res = pipe.run(file.data);
            nx::DhtGenerator gen(cfg);
            auto dht = gen.generate(res.tokens, file.data.size(),
                                    nx::DhtMode::TwoPass);
            nx::HuffmanStage huff(cfg);
            auto enc = huff.encodeDynamic(res.tokens, dht.codes);
            cells.push_back(util::Table::fmt(
                static_cast<double>(file.data.size()) /
                static_cast<double>(enc.bytes.size())));
        }
        t.row(cells);
    }
    t.note("window buffer SRAM scales linearly; ratio gains justify "
           "the full RFC 1951 32 KiB");
    t.print();
    return 0;
}
