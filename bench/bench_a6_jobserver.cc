/**
 * @file
 * A6 [extension] — JobServer dispatch-path scaling: real threads
 * through the asynchronous dispatch layer (core::JobServer) vs the
 * analytic VAS queueing model (nx::VasModel / simulateChip).
 *
 * The measured half runs P producer threads pasting compress jobs into
 * bounded window FIFOs while W engine workers execute the actual
 * compression and charge modelled engine cycles. The analytic half
 * runs the discrete-event VAS simulation with the same engine count,
 * job size and FIFO depth. The two columns to compare are the
 * aggregate modelled rate (should scale with W until the paste path
 * saturates) and the busy-reject count (should fall as engines are
 * added, in both models).
 */

#include <cstdio>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "core/job_server.h"
#include "nx/vas.h"

namespace {

constexpr int kProducers = 8;
constexpr int kJobsPerProducer = 12;
constexpr size_t kJobBytes = size_t{128} << 10;
constexpr int kFifoDepth = 8;

core::JobServerStats
runPool(const nx::NxConfig &cfg, int workers)
{
    core::JobServerConfig jcfg;
    jcfg.workers = workers;
    jcfg.windows = 4;
    jcfg.window.fifoDepth = kFifoDepth;
    core::JobServer srv(cfg, jcfg);

    auto payload = workloads::makeMixed(kJobBytes, 0xa6);
    std::vector<std::thread> producers;
    for (int p = 0; p < kProducers; ++p) {
        producers.emplace_back([&srv, &payload, p] {
            core::BackoffPolicy patient;
            patient.maxAttempts = 1 << 20;
            for (int j = 0; j < kJobsPerProducer; ++j) {
                core::JobSpec spec;
                spec.kind = core::JobKind::Compress;
                spec.mode = core::Mode::DhtSampled;
                spec.payload = payload;
                auto r = srv.submitWithRetry(
                    spec, (p + j) % srv.windowCount(), patient);
                NXSIM_EXPECT(r.accepted(), "bench submit must land");
            }
        });
    }
    for (auto &t : producers)
        t.join();
    (void)srv.drain();
    auto st = srv.stats();
    srv.drainAndStop();
    return st;
}

void
measuredSweep(const char *name, const nx::NxConfig &cfg)
{
    util::Table t(std::string("A6a: ") + name +
                  " JobServer worker sweep (" +
                  std::to_string(kProducers) + " producers, 128 KiB "
                  "jobs, FIFO depth " + std::to_string(kFifoDepth) +
                  ")");
    t.header({"workers", "jobs", "agg modelled rate", "wall p50 us",
              "wall p99 us", "busy-rejects", "mean q depth"});
    for (int w : {1, 2, 4, 8}) {
        auto st = runPool(cfg, w);
        double secs = st.modelledSeconds(cfg);
        t.row({std::to_string(w), std::to_string(st.completed),
               util::Table::fmtRate(secs > 0
                   ? static_cast<double>(st.bytesIn) / secs
                   : 0),
               util::Table::fmt(st.wait.p50 * 1e6, 1),
               util::Table::fmt(st.wait.p99 * 1e6, 1),
               std::to_string(st.busyRejects),
               util::Table::fmt(st.meanQueueDepth, 2)});
    }
    t.note("wall percentiles are host paste-to-CSB times; the rate "
           "column is bytesIn over the busiest worker's modelled "
           "engine cycles");
    t.print();
}

void
analyticSweep(const char *name, const nx::NxConfig &base)
{
    util::Table t(std::string("A6b: ") + name +
                  " analytic VAS model, same geometry");
    t.header({"engines", "agg rate", "engine util", "busy-rejects",
              "mean q depth"});
    for (int w : {1, 2, 4, 8}) {
        nx::VasSimConfig sc;
        sc.chip = base;
        sc.chip.compressEnginesPerUnit = w;
        // The measured producers fire-and-forget their whole burst, so
        // the offered load is the outstanding-job count, not the
        // thread count: model it as that many closed-loop requesters
        // hammering one bounded FIFO.
        sc.requesters = kProducers * kJobsPerProducer / 2;
        sc.jobBytes = kJobBytes;
        sc.window.fifoDepth = kFifoDepth;
        sc.horizonCycles = 20000000;
        sc.warmupCycles = 1000000;
        auto res = simulateChip(sc);
        t.row({std::to_string(w), util::Table::fmtRate(res.aggregateBps),
               util::Table::fmt(100.0 * res.utilization, 1) + "%",
               std::to_string(res.busyRejects),
               util::Table::fmt(res.meanQueueDepth, 1)});
    }
    t.note("expected shape match with A6a: rate grows with engines, "
           "busy-rejects collapse once service keeps up with pastes");
    t.print();
}

} // namespace

int
main()
{
    bench::banner("A6",
                  "asynchronous dispatch layer vs analytic VAS model");

    for (const auto &chip : {core::power9Chip(), core::z15Chip()}) {
        measuredSweep(chip.name.c_str(), chip.accel);
        analyticSweep(chip.name.c_str(), chip.accel);
    }
    return 0;
}
