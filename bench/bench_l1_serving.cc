/**
 * @file
 * L1 [extension] — traffic-scale serving: many client sessions over
 * one shared dispatch layer, driven by open-loop Poisson, bursty and
 * closed-loop arrival processes across a serving-shaped request mix.
 *
 * Where A6 measured the raw dispatch path with identical jobs, L1
 * measures the *served* system: nx::Session routing (software below
 * the crossover, accelerator above, fallback under pressure) under a
 * sweep of workers x windows x fifoDepth, reporting throughput,
 * p50/p99/p999 wall latency, busy-reject and fallback rates, and
 * per-client fairness.
 *
 * Modes:
 *   (default)        full sweep, human tables
 *   --smoke          the scaled-down CI sweep (load::l1SmokeScenarios)
 *   --json           machine mode: print the schema-versioned JSON to
 *                    stdout instead of tables
 *   --out PATH       also persist the JSON to PATH (the repo-root
 *                    BENCH_l1_serving.json convention; see DESIGN.md)
 *   --chip NAME      power9 (default) or z15
 *   --clients N      clients for the full sweep (default 8)
 *
 * Fixed seeds make the request schedule deterministic: the same flags
 * always plan identical traffic (pinned by each scenario's
 * schedule_digest in the JSON); only wall-clock timings vary.
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

#include "bench_common.h"
#include "load/scenarios.h"
#include "load/slo_report.h"

namespace {

struct Options
{
    bool smoke = false;
    bool json = false;
    std::string out;
    std::string chip = "power9";
    int clients = 8;
};

int
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s [--smoke] [--json] [--out PATH] "
                 "[--chip power9|z15] [--clients N]\n",
                 argv0);
    return 2;
}

bool
parse(int argc, char **argv, Options *opt)
{
    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        if (a == "--smoke") {
            opt->smoke = true;
        } else if (a == "--json") {
            opt->json = true;
        } else if (a == "--out" && i + 1 < argc) {
            opt->out = argv[++i];
        } else if (a == "--chip" && i + 1 < argc) {
            opt->chip = argv[++i];
        } else if (a == "--clients" && i + 1 < argc) {
            opt->clients = std::stoi(argv[++i]);
            if (opt->clients <= 0)
                return false;
        } else {
            return false;
        }
    }
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    Options opt;
    if (!parse(argc, argv, &opt))
        return usage(argv[0]);

    core::ChipTopology chip;
    if (opt.chip == "power9") {
        chip = core::power9Chip();
    } else if (opt.chip == "z15") {
        chip = core::z15Chip();
    } else {
        return usage(argv[0]);
    }

    if (!opt.json)
        bench::banner("L1", "traffic-scale serving over nx::Session (" +
                                chip.name +
                                (opt.smoke ? ", smoke sweep)" :
                                             ", full sweep)"));

    auto scenarios = opt.smoke ? load::l1SmokeScenarios()
                               : load::l1FullScenarios(opt.clients);
    std::vector<load::NamedReport> runs;
    runs.reserve(scenarios.size());
    for (const load::Scenario &sc : scenarios) {
        load::LoadGen gen(sc.cfg);
        load::LoadReport rep = gen.run(chip.accel);
        if (!opt.json)
            load::printReport(sc.name, rep);
        runs.emplace_back(sc.name, std::move(rep));
    }

    load::BenchRunInfo info;
    info.chip = chip.name;
    info.smoke = opt.smoke;
    std::string json = load::benchJson(info, runs);

    if (opt.json)
        std::fputs(json.c_str(), stdout);
    if (!opt.out.empty()) {
        std::ofstream f(opt.out, std::ios::binary | std::ios::trunc);
        if (!f) {
            std::fprintf(stderr, "cannot write %s\n", opt.out.c_str());
            return 1;
        }
        f << json;
    }
    return 0;
}
