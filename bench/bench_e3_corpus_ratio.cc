/**
 * @file
 * E3 [reconstructed] — Per-file compression ratio across the corpus.
 *
 * Regenerates the per-data-type ratio comparison (the paper evaluates
 * on standard corpora; we use the synthetic stand-ins, see DESIGN.md).
 * Columns: software levels 1/6/9 and the accelerator's FHT and sampled
 * DHT modes. The expected shape: accel-DHT tracks zlib-6 within a few
 * percent on every member; FHT loses most on skewed-alphabet data;
 * random stays ~1.0 everywhere.
 */

#include "bench_common.h"

#include "deflate/deflate_encoder.h"

namespace {

double
swRatio(std::span<const uint8_t> data, int level)
{
    deflate::DeflateOptions opts;
    opts.level = level;
    auto res = deflate::deflateCompress(data, opts);
    return static_cast<double>(data.size()) /
        static_cast<double>(res.bytes.size());
}

} // namespace

int
main()
{
    bench::banner("E3", "per-file compression ratio across data types");

    const size_t file_bytes = 2 << 20;
    auto corpus = workloads::standardCorpus(file_bytes);
    auto cfg = core::power9Chip().accel;

    util::Table t("E3: compression ratio by corpus member");
    t.header({"file", "zlib-1", "zlib-6", "zlib-9", "accel FHT",
              "accel DHT", "DHT/zlib-6"});
    for (const auto &file : corpus) {
        auto fht = bench::measureAccel(cfg, file.data, core::Mode::Fht);
        auto dht = bench::measureAccel(cfg, file.data,
                                       core::Mode::DhtSampled);
        double z6 = swRatio(file.data, 6);
        t.row({file.name,
               util::Table::fmt(swRatio(file.data, 1)),
               util::Table::fmt(z6),
               util::Table::fmt(swRatio(file.data, 9)),
               util::Table::fmt(fht.ratio),
               util::Table::fmt(dht.ratio),
               util::Table::fmt(100.0 * dht.ratio / z6, 1) + "%"});
    }
    t.note("gzip framing overhead included in accel ratios "
           "(raw DEFLATE for software) — pads small differences");
    t.print();
    return 0;
}
