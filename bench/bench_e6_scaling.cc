/**
 * @file
 * E6 [abstract] — Aggregate compression rate scaling: requesters per
 * chip, and chips per system up to the maximal z15 topology.
 *
 * Paper claim: a maximally configured z15 (5 CPC drawers x 4 CP chips)
 * sustains up to 280 GB/s of on-chip compression, "the highest in the
 * industry". This bench runs the VAS queueing simulation per chip and
 * scales across chips, printing the requester sweep (saturation
 * behaviour, latency growth) and the per-system aggregate table.
 */

#include <cstdio>

#include "bench_common.h"
#include "nx/vas.h"

namespace {

void
requesterSweep(const char *name, const nx::NxConfig &cfg)
{
    util::Table t(std::string("E6a: ") + name +
                  " chip requester sweep (1 MiB jobs)");
    t.header({"requesters", "agg rate", "engine util", "mean q depth",
              "mean latency us", "p99 latency us"});
    for (int r : {1, 2, 4, 8, 16, 32, 64}) {
        nx::VasSimConfig sc;
        sc.chip = cfg;
        sc.requesters = r;
        sc.jobBytes = 1 << 20;
        sc.horizonCycles = 20000000;
        sc.warmupCycles = 1000000;
        auto res = simulateChip(sc);
        t.row({std::to_string(r),
               util::Table::fmtRate(res.aggregateBps),
               util::Table::fmt(100.0 * res.utilization, 1) + "%",
               util::Table::fmt(res.meanQueueDepth, 1),
               util::Table::fmt(cfg.clock.toSeconds(
                   static_cast<sim::Tick>(res.meanLatencyCycles)) * 1e6,
                   1),
               util::Table::fmt(cfg.clock.toSeconds(
                   static_cast<sim::Tick>(res.p99LatencyCycles)) * 1e6,
                   1)});
    }
    t.print();
}

} // namespace

int
main()
{
    bench::banner("E6", "multi-requester and multi-chip rate scaling");

    requesterSweep("POWER9", core::power9Chip().accel);
    requesterSweep("z15", core::z15Chip().accel);

    // Open-arrival latency curve: the user-visible effect of running
    // the engine near saturation.
    {
        auto cfg = core::power9Chip().accel;
        nx::VasSimConfig base;
        base.chip = cfg;
        base.jobBytes = 256 << 10;
        base.horizonCycles = 40000000;
        base.warmupCycles = 2000000;
        base.openArrival = true;

        nx::ServiceModel svc{cfg};
        double svc_rate = 1.0 / cfg.clock.toSeconds(
            svc.compressCycles(base.jobBytes));

        util::Table t("E6c: POWER9 open-arrival latency vs offered "
                      "load (256 KiB jobs)");
        t.header({"offered load", "arrivals/s", "mean latency us",
                  "p99 latency us", "mean q depth"});
        for (double rho : {0.2, 0.4, 0.6, 0.8, 0.9, 0.95}) {
            auto sc = base;
            sc.arrivalsPerSec = rho * svc_rate;
            auto res = simulateChip(sc);
            t.row({util::Table::fmt(rho, 2),
                   util::Table::fmt(sc.arrivalsPerSec, 0),
                   util::Table::fmt(cfg.clock.toSeconds(
                       static_cast<sim::Tick>(res.meanLatencyCycles))
                       * 1e6, 1),
                   util::Table::fmt(cfg.clock.toSeconds(
                       static_cast<sim::Tick>(res.p99LatencyCycles))
                       * 1e6, 1),
                   util::Table::fmt(res.meanQueueDepth, 2)});
        }
        t.note("M/D/1-shaped knee approaching saturation: size "
               "accelerator provisioning by p99, not mean");
        t.print();
    }

    util::Table t("E6b: system aggregate compression rate");
    t.header({"system", "chips", "per-chip sustained", "aggregate"});
    struct Sys
    {
        core::SystemTopology topo;
    };
    for (const auto &topo : {core::power9TwoSocket(),
                             core::power9MaxSystem(),
                             core::z15MaxSystem()}) {
        nx::VasSimConfig sc;
        sc.chip = topo.chip.accel;
        sc.requesters = 32;    // saturating load per chip
        sc.jobBytes = 1 << 20;
        sc.horizonCycles = 20000000;
        sc.warmupCycles = 1000000;
        auto chip = simulateChip(sc);
        auto sys = simulateSystem(sc, topo.chips);
        t.row({topo.name, std::to_string(topo.chips),
               util::Table::fmtRate(chip.aggregateBps),
               util::Table::fmtRate(sys.aggregateBps)});
    }
    t.note("paper: maximally configured z15 topology sustains up to "
           "280 GB/s");
    t.print();
    return 0;
}
