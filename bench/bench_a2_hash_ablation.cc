/**
 * @file
 * A2 [ablation] — Hash-table geometry vs match quality.
 *
 * Sweeps set count (indexBits) and associativity (ways): more ways
 * approximate deeper software chains (better matches, bigger SRAM);
 * more sets reduce aliasing. Reported: compression ratio with exact
 * DHT (isolating match quality from table quality) and the SRAM cost.
 */

#include "bench_common.h"

#include "nx/dht_generator.h"
#include "nx/hash_table.h"
#include "nx/huffman_stage.h"
#include "nx/match_pipeline.h"

int
main()
{
    bench::banner("A2", "hash-table geometry ablation");

    auto data = workloads::makeMixed(4 << 20, 3203);

    util::Table t("A2: sets x ways vs ratio and SRAM");
    t.header({"indexBits", "ways", "SRAM KiB", "matched bytes %",
              "ratio (exact DHT)"});
    for (int index_bits : {10, 12, 14}) {
        for (int ways : {1, 2, 4, 8}) {
            auto cfg = nx::NxConfig::power9();
            cfg.hash.indexBits = index_bits;
            cfg.hash.ways = ways;
            nx::MatchPipeline pipe(cfg);
            auto res = pipe.run(data);

            nx::DhtGenerator gen(cfg);
            auto dht = gen.generate(res.tokens, data.size(),
                                    nx::DhtMode::TwoPass);
            nx::HuffmanStage huff(cfg);
            auto enc = huff.encodeDynamic(res.tokens, dht.codes);
            double ratio = static_cast<double>(data.size()) /
                static_cast<double>(enc.bytes.size());
            double matched = 100.0 *
                static_cast<double>(res.matchedBytes) /
                static_cast<double>(data.size());

            nx::BankedHashTable table(cfg.hash);
            t.row({std::to_string(index_bits), std::to_string(ways),
                   util::Table::fmt(static_cast<double>(
                       table.sramBits()) / 8192.0, 1),
                   util::Table::fmt(matched, 1),
                   util::Table::fmt(ratio)});
        }
    }
    t.note("shipped point: 2^12-13 sets x 4 ways — past that, ratio "
           "gains flatten while SRAM doubles");
    t.print();
    return 0;
}
