/**
 * @file
 * E7 [abstract] — Apache Spark TPC-DS end-to-end speedup.
 *
 * Paper claim: on a POWER9 system, routing Spark's shuffle/storage
 * compression through the on-chip accelerators speeds the TPC-DS
 * workload up by 23 % end-to-end versus the software codec baseline.
 *
 * Method: measure the software codec on representative shuffle bytes
 * (TPC-DS-like rows, see workloads/tpcds_gen.h), model the accelerator
 * on the same bytes, and feed both (rate, ratio) pairs into the Spark
 * stage-pipeline model. The query suite's compute/shuffle mix is
 * calibrated so the baseline spends a realistic ~25-30 % of wall time
 * in the codec (Spark+zlib measurements in the literature land there);
 * the speedup is then *computed*, not assumed.
 */

#include <cstdio>

#include "bench_common.h"
#include "workloads/spark_model.h"
#include "workloads/tpcds_gen.h"

int
main()
{
    bench::banner("E7", "Spark TPC-DS end-to-end with codec offload");

    // Codec characteristics on representative shuffle bytes.
    auto shuffle = workloads::makeShufflePartition(6 << 20);
    std::vector<int> levels = {1, 6};
    auto sw = deflate::measureSoftwareRates(shuffle, levels, 0.3);
    auto accel = bench::measureAccel(core::power9Chip().accel, shuffle,
                                     core::Mode::DhtSampled);

    workloads::CodecModel swCodec{"software zlib-1",
        sw.compressBps[1], sw.decompressBps, sw.ratio[1], true};
    workloads::CodecModel nxCodec{"NX accelerator",
        accel.compressBps, accel.decompressBps, accel.ratio, false};

    workloads::ClusterConfig cluster;
    cluster.nodes = 2;             // two-socket POWER9 server class
    cluster.executorCores = 40;
    cluster.accelPerNode = 1;

    auto queries = workloads::makeTpcdsQueries(20, 2020, 1000.0);
    auto cmp = workloads::compareSuite(queries, cluster, swCodec,
                                       nxCodec);

    // Baseline codec share for the Amdahl context.
    double base_total = 0.0, base_codec = 0.0;
    for (const auto &q : queries) {
        auto qt = workloads::runQuery(q, cluster, swCodec);
        base_total += qt.totalSeconds;
        base_codec += qt.codecSeconds;
    }

    util::Table t("E7: TPC-DS suite, software codec vs accelerator");
    t.header({"codec", "rate (per core/dev)", "ratio",
              "suite time", "speedup"});
    t.row({swCodec.name, util::Table::fmtRate(swCodec.compressBps),
           util::Table::fmt(swCodec.ratio),
           util::Table::fmt(cmp.totalA, 1) + " s", "baseline"});
    t.row({nxCodec.name, util::Table::fmtRate(nxCodec.compressBps),
           util::Table::fmt(nxCodec.ratio),
           util::Table::fmt(cmp.totalB, 1) + " s",
           util::Table::fmt(cmp.speedupPct, 1) + "%"});
    t.note("paper: 23% end-to-end on Apache Spark TPC-DS (POWER9)");
    t.note("baseline codec share of wall time: " +
           util::Table::fmt(100.0 * base_codec / base_total, 1) + "%");
    t.print();

    // Per-query detail for the five largest queries.
    util::Table d("E7 detail: five largest queries");
    d.header({"query", "sw total s", "sw codec s", "accel total s",
              "gain %"});
    std::vector<size_t> idx(queries.size());
    for (size_t i = 0; i < idx.size(); ++i)
        idx[i] = i;
    std::sort(idx.begin(), idx.end(), [&](size_t a, size_t b) {
        return cmp.perQueryA[a].totalSeconds >
            cmp.perQueryA[b].totalSeconds;
    });
    for (size_t k = 0; k < 5 && k < idx.size(); ++k) {
        const auto &a = cmp.perQueryA[idx[k]];
        const auto &b = cmp.perQueryB[idx[k]];
        d.row({a.query, util::Table::fmt(a.totalSeconds, 2),
               util::Table::fmt(a.codecSeconds, 2),
               util::Table::fmt(b.totalSeconds, 2),
               util::Table::fmt(100.0 * (a.totalSeconds -
                   b.totalSeconds) / a.totalSeconds, 1) + "%"});
    }
    d.print();

    std::printf("\nE7 summary: end-to-end speedup %.1f%% "
                "(paper 23%%)\n", cmp.speedupPct);
    return 0;
}
