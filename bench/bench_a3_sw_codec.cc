/**
 * @file
 * A3 [ablation] — Software baseline microbenchmarks (google-benchmark).
 *
 * Validates that our zlib-equivalent baseline has zlib's *shape*:
 * throughput falls and ratio rises with level; lazy matching costs
 * time and buys ratio; inflate is several times faster than deflate.
 * These are the properties E1/E2's speedup math depends on.
 */

#include <benchmark/benchmark.h>

#include "deflate/deflate_encoder.h"
#include "deflate/inflate_decoder.h"
#include "workloads/corpus.h"

namespace {

const std::vector<uint8_t> &
sample()
{
    static const auto data = workloads::makeMixed(2 << 20, 9901);
    return data;
}

void
BM_DeflateLevel(benchmark::State &state)
{
    deflate::DeflateOptions opts;
    opts.level = static_cast<int>(state.range(0));
    size_t out = 0;
    for (auto _ : state) {
        auto res = deflate::deflateCompress(sample(), opts);
        out = res.bytes.size();
        benchmark::DoNotOptimize(res.bytes.data());
    }
    state.SetBytesProcessed(
        state.iterations() * static_cast<int64_t>(sample().size()));
    state.counters["ratio"] = static_cast<double>(sample().size()) /
        static_cast<double>(out);
}
BENCHMARK(BM_DeflateLevel)->DenseRange(1, 9, 2)
    ->Unit(benchmark::kMillisecond);

void
BM_Inflate(benchmark::State &state)
{
    deflate::DeflateOptions opts;
    opts.level = static_cast<int>(state.range(0));
    auto stream = deflate::deflateCompress(sample(), opts).bytes;
    for (auto _ : state) {
        auto res = deflate::inflateDecompress(stream);
        benchmark::DoNotOptimize(res.bytes.data());
    }
    state.SetBytesProcessed(
        state.iterations() * static_cast<int64_t>(sample().size()));
}
BENCHMARK(BM_Inflate)->Arg(1)->Arg(6)->Unit(benchmark::kMillisecond);

void
BM_Lz77Only(benchmark::State &state)
{
    deflate::Lz77Matcher matcher(
        deflate::levelParams(static_cast<int>(state.range(0))));
    for (auto _ : state) {
        auto tokens = matcher.tokenize(sample());
        benchmark::DoNotOptimize(tokens.data());
    }
    state.SetBytesProcessed(
        state.iterations() * static_cast<int64_t>(sample().size()));
}
BENCHMARK(BM_Lz77Only)->Arg(1)->Arg(6)->Arg(9)
    ->Unit(benchmark::kMillisecond);

void
BM_HuffmanOnly(benchmark::State &state)
{
    // Entropy-coding cost in isolation: tokens precomputed.
    deflate::Lz77Matcher matcher(deflate::levelParams(6));
    auto tokens = matcher.tokenize(sample());
    deflate::SymbolFreqs freqs;
    freqs.accumulate(tokens);
    for (auto _ : state) {
        auto codes = deflate::buildDynamicCodes(freqs);
        util::BitWriter bw;
        deflate::writeDynamicHeader(bw, codes);
        deflate::emitTokens(bw, tokens, codes.litlen, codes.dist);
        auto bytes = bw.take();
        benchmark::DoNotOptimize(bytes.data());
    }
    state.SetBytesProcessed(
        state.iterations() * static_cast<int64_t>(sample().size()));
}
BENCHMARK(BM_HuffmanOnly)->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
