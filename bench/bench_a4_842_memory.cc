/**
 * @file
 * A4 [ablation/extension] — 842 vs DEFLATE on the NX unit.
 *
 * The POWER9 NX unit carries both engine types; the paper's DEFLATE
 * engines serve storage/network data while 842 serves memory
 * expansion. This bench shows why that split exists: on 4 KiB
 * memory-page-sized requests, 842's fixed-format pipeline delivers
 * several times lower request latency at a lower — but still useful —
 * ratio, while DEFLATE wins decisively on ratio for large streams.
 */

#include "bench_common.h"

#include "e842/e842_engine.h"
#include "nx/compress_engine.h"

namespace {

struct Row
{
    double latencyUs;
    double ratio;
    double bps;
};

Row
runDeflate(const nx::NxConfig &cfg, std::span<const uint8_t> data,
           size_t job)
{
    nx::CompressEngine eng(cfg);
    double secs = 0.0;
    uint64_t out = 0;
    int jobs = 0;
    for (size_t off = 0; off + job <= data.size(); off += job) {
        nx::Crb crb;
        crb.func = job <= 32 * 1024 ? nx::FuncCode::CompressFht
                                    : nx::FuncCode::CompressDht;
        crb.framing = nx::Framing::Raw;
        crb.source = nx::DdeList::direct(0,
            static_cast<uint32_t>(job));
        crb.target = nx::DdeList::direct(0,
            static_cast<uint32_t>(job * 2 + 4096));
        auto res = eng.run(crb, data.subspan(off, job));
        secs += cfg.clock.toSeconds(res.timing.total());
        out += res.output.size();
        ++jobs;
    }
    double total = static_cast<double>(job) * jobs;
    return {secs / jobs * 1e6, total / static_cast<double>(out),
            total / secs};
}

Row
run842(std::span<const uint8_t> data, size_t job)
{
    e842::E842Engine eng;
    double secs = 0.0;
    uint64_t out = 0;
    int jobs = 0;
    for (size_t off = 0; off + job <= data.size(); off += job) {
        auto res = eng.compressJob(data.subspan(off, job));
        secs += res.seconds;
        out += res.output.size();
        ++jobs;
    }
    double total = static_cast<double>(job) * jobs;
    return {secs / jobs * 1e6, total / static_cast<double>(out),
            total / secs};
}

} // namespace

int
main()
{
    bench::banner("A4", "842 vs DEFLATE engines on the same unit");

    auto cfg = core::power9Chip().accel;
    auto pages = workloads::makeBinary(4 << 20, 4204);
    auto text = workloads::makeText(4 << 20, 4205);

    util::Table t("A4: per-request latency and ratio by engine type");
    t.header({"data", "request", "codec", "latency us", "ratio",
              "rate"});
    struct Case
    {
        const char *name;
        std::span<const uint8_t> data;
        size_t job;
    };
    for (const Case &c : {Case{"binary pages", pages, 4096},
                          Case{"binary pages", pages, 64 * 1024},
                          Case{"text stream", text, 1 << 20}}) {
        auto d = runDeflate(cfg, c.data, c.job);
        auto e = run842(c.data, c.job);
        t.row({c.name, util::Table::fmtBytes(c.job), "DEFLATE",
               util::Table::fmt(d.latencyUs, 2),
               util::Table::fmt(d.ratio),
               util::Table::fmtRate(d.bps)});
        t.row({c.name, util::Table::fmtBytes(c.job), "842",
               util::Table::fmt(e.latencyUs, 2),
               util::Table::fmt(e.ratio),
               util::Table::fmtRate(e.bps)});
    }
    t.note("842: fixed-format, no entropy pass -> lower latency, "
           "lower ratio; why memory expansion uses it and storage "
           "uses DEFLATE");
    t.print();
    return 0;
}
