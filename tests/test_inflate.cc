/**
 * @file
 * Inflater tests against hand-constructed streams (independent of our
 * encoder) and malformed-input error paths.
 */

#include <gtest/gtest.h>

#include <string>

#include "deflate/constants.h"
#include "deflate/gzip_stream.h"
#include "deflate/inflate_decoder.h"
#include "util/bitstream.h"

using deflate::inflateDecompress;
using deflate::InflateStatus;
using util::BitWriter;

namespace {

/** Write a fixed-Huffman literal symbol (RFC 1951 3.2.6). */
void
writeFixedLiteral(BitWriter &bw, int sym)
{
    ASSERT_LT(sym, 144);
    // Symbols 0..143: 8-bit codes 00110000..10111111, MSB first.
    uint32_t code = 0b00110000 + static_cast<uint32_t>(sym);
    bw.writeBits(util::reverseBits(code, 8), 8);
}

/** Write the fixed-Huffman end-of-block symbol (7 zero bits). */
void
writeFixedEob(BitWriter &bw)
{
    bw.writeBits(0, 7);
}

} // namespace

TEST(Inflate, HandBuiltFixedBlock)
{
    // BFINAL=1, BTYPE=01 (fixed), literals "Hi", EOB.
    BitWriter bw;
    bw.writeBits(1, 1);
    bw.writeBits(1, 2);
    writeFixedLiteral(bw, 'H');
    writeFixedLiteral(bw, 'i');
    writeFixedEob(bw);
    auto stream = bw.take();

    auto res = inflateDecompress(stream);
    ASSERT_TRUE(res.ok());
    EXPECT_EQ(std::string(res.bytes.begin(), res.bytes.end()), "Hi");
    EXPECT_EQ(res.stats.fixedBlocks, 1u);
    EXPECT_EQ(res.stats.literals, 2u);
}

TEST(Inflate, HandBuiltFixedBlockWithMatch)
{
    // "abcabc": 3 literals then match(len=3, dist=3).
    BitWriter bw;
    bw.writeBits(1, 1);
    bw.writeBits(1, 2);
    writeFixedLiteral(bw, 'a');
    writeFixedLiteral(bw, 'b');
    writeFixedLiteral(bw, 'c');
    // Length 3 = code 257 -> fixed code space 0000001 (7 bits), no extra.
    bw.writeBits(util::reverseBits(0b0000001, 7), 7);
    // Distance 3 = code 2 -> 5-bit code 00010, no extra.
    bw.writeBits(util::reverseBits(0b00010, 5), 5);
    writeFixedEob(bw);
    auto stream = bw.take();

    auto res = inflateDecompress(stream);
    ASSERT_TRUE(res.ok());
    EXPECT_EQ(std::string(res.bytes.begin(), res.bytes.end()), "abcabc");
    EXPECT_EQ(res.stats.matches, 1u);
    EXPECT_EQ(res.stats.matchedBytes, 3u);
}

TEST(Inflate, HandBuiltStoredBlock)
{
    BitWriter bw;
    bw.writeBits(1, 1);    // BFINAL
    bw.writeBits(0, 2);    // stored
    bw.alignToByte();
    bw.writeU16le(5);
    bw.writeU16le(static_cast<uint16_t>(~5));
    const char *payload = "hello";
    bw.writeBytes(std::span<const uint8_t>(
        reinterpret_cast<const uint8_t *>(payload), 5));
    auto stream = bw.take();

    auto res = inflateDecompress(stream);
    ASSERT_TRUE(res.ok());
    EXPECT_EQ(std::string(res.bytes.begin(), res.bytes.end()), "hello");
    EXPECT_EQ(res.stats.storedBlocks, 1u);
}

TEST(Inflate, MultipleBlocks)
{
    BitWriter bw;
    // Non-final stored block "ab".
    bw.writeBits(0, 1);
    bw.writeBits(0, 2);
    bw.alignToByte();
    bw.writeU16le(2);
    bw.writeU16le(static_cast<uint16_t>(~2));
    bw.writeByte('a');
    bw.writeByte('b');
    // Final fixed block "c".
    bw.writeBits(1, 1);
    bw.writeBits(1, 2);
    writeFixedLiteral(bw, 'c');
    writeFixedEob(bw);
    auto stream = bw.take();

    auto res = inflateDecompress(stream);
    ASSERT_TRUE(res.ok());
    EXPECT_EQ(std::string(res.bytes.begin(), res.bytes.end()), "abc");
}

TEST(Inflate, EmptyInputIsTruncated)
{
    auto res = inflateDecompress({});
    EXPECT_EQ(res.status, InflateStatus::TruncatedInput);
}

TEST(Inflate, BadBlockTypeRejected)
{
    BitWriter bw;
    bw.writeBits(1, 1);
    bw.writeBits(3, 2);    // BTYPE=11 reserved
    bw.writeBits(0, 16);
    auto stream = bw.take();
    auto res = inflateDecompress(stream);
    EXPECT_EQ(res.status, InflateStatus::BadBlockType);
}

TEST(Inflate, StoredLengthComplementChecked)
{
    BitWriter bw;
    bw.writeBits(1, 1);
    bw.writeBits(0, 2);
    bw.alignToByte();
    bw.writeU16le(5);
    bw.writeU16le(1234);    // wrong NLEN
    auto stream = bw.take();
    auto res = inflateDecompress(stream);
    EXPECT_EQ(res.status, InflateStatus::BadStoredLength);
}

TEST(Inflate, TruncatedStoredPayload)
{
    BitWriter bw;
    bw.writeBits(1, 1);
    bw.writeBits(0, 2);
    bw.alignToByte();
    bw.writeU16le(100);
    bw.writeU16le(static_cast<uint16_t>(~100));
    bw.writeByte('x');    // only 1 of 100 bytes
    auto stream = bw.take();
    auto res = inflateDecompress(stream);
    EXPECT_EQ(res.status, InflateStatus::TruncatedInput);
}

TEST(Inflate, DistanceBeyondOutputRejected)
{
    BitWriter bw;
    bw.writeBits(1, 1);
    bw.writeBits(1, 2);
    writeFixedLiteral(bw, 'a');
    // match len 3, dist 4 (> 1 byte of history).
    bw.writeBits(util::reverseBits(0b0000001, 7), 7);
    bw.writeBits(util::reverseBits(0b00011, 5), 5);    // dist code 3 = 4
    writeFixedEob(bw);
    auto stream = bw.take();
    auto res = inflateDecompress(stream);
    EXPECT_EQ(res.status, InflateStatus::BadDistance);
}

TEST(Inflate, TruncatedMidSymbol)
{
    BitWriter bw;
    bw.writeBits(1, 1);
    bw.writeBits(1, 2);
    writeFixedLiteral(bw, 'a');
    // Stream ends with no EOB; the trailing zero padding of take()
    // decodes as part of an incomplete symbol or EOB+overrun.
    auto stream = bw.take();
    auto res = inflateDecompress(stream);
    // Zero padding happens to look like EOB (0000000) here, so Ok is
    // acceptable; anything but a crash/garbage is fine. Accept either
    // Ok with "a" or TruncatedInput.
    if (res.ok())
        EXPECT_EQ(res.bytes.size(), 1u);
    else
        EXPECT_EQ(res.status, InflateStatus::TruncatedInput);
}

TEST(Inflate, OutputLimitEnforced)
{
    // 1 MiB of zeros compresses tiny; cap output at 1000 bytes.
    BitWriter bw;
    bw.writeBits(1, 1);
    bw.writeBits(1, 2);
    writeFixedLiteral(bw, 0);
    // Repeat match(len=258, dist=1) many times.
    for (int i = 0; i < 100; ++i) {
        // Length 258 = code 285: fixed litlen code 11000101 (8 bits).
        bw.writeBits(util::reverseBits(0b11000101, 8), 8);
        bw.writeBits(util::reverseBits(0b00000, 5), 5);    // dist 1
    }
    writeFixedEob(bw);
    auto stream = bw.take();
    auto res = inflateDecompress(stream, 1000);
    EXPECT_EQ(res.status, InflateStatus::OutputLimit);
}

TEST(Inflate, GarbageInputDoesNotCrash)
{
    util::BitWriter bw;
    for (int i = 0; i < 256; ++i)
        bw.writeByte(static_cast<uint8_t>(i * 37 + 11));
    auto stream = bw.take();
    auto res = inflateDecompress(stream);
    // Any error status is acceptable; only Ok would be suspicious for
    // this particular byte pattern (and even Ok is legal in principle).
    SUCCEED();
}

TEST(Inflate, OverSubscribedDynamicCodeLengths)
{
    // Dynamic block whose code-length alphabet assigns 1-bit codes to
    // all 19 symbols: only two 1-bit codes exist, so the Kraft sum is
    // over-subscribed and table construction must fail cleanly.
    BitWriter bw;
    bw.writeBits(1, 1);     // BFINAL
    bw.writeBits(2, 2);     // BTYPE=10 dynamic
    bw.writeBits(0, 5);     // HLIT  = 257
    bw.writeBits(0, 5);     // HDIST = 1
    bw.writeBits(15, 4);    // HCLEN = 19
    for (int i = 0; i < 19; ++i)
        bw.writeBits(1, 3);
    auto stream = bw.take();
    auto res = inflateDecompress(stream);
    EXPECT_EQ(res.status, InflateStatus::BadCodeLengths);
}

namespace {

/**
 * A dynamic block whose code-length run overshoots the declared
 * hlit+hdist total: 200 one-length codes followed by a symbol-18 run
 * of 138 zeros lands at 338 of the 258 declared lengths. The decoder
 * must reject the run before growing the length array past the
 * declared total (the nxtaint-found bug; also the corpus entry
 * fuzz/corpus/inflate/dynhdr-run-overflow.bin).
 */
std::vector<uint8_t>
buildRunOvershootStream()
{
    BitWriter bw;
    bw.writeBits(1, 1);      // BFINAL
    bw.writeBits(2, 2);      // BTYPE=10 dynamic
    bw.writeBits(0, 5);      // HLIT  = 257
    bw.writeBits(0, 5);      // HDIST = 1 -> 258 lengths declared
    bw.writeBits(14, 4);     // HCLEN = 18 CL-code lengths follow
    // kClcOrder positions 2 (symbol 18) and 17 (symbol 1) get 1-bit
    // codes — exactly Kraft-complete: sym 1 -> code 0, sym 18 -> 1.
    for (int i = 0; i < 18; ++i)
        bw.writeBits(i == 2 || i == 17 ? 1 : 0, 3);
    for (int i = 0; i < 200; ++i)
        bw.writeBits(0, 1);    // sym 1: two hundred lengths of one
    bw.writeBits(1, 1);        // sym 18 ...
    bw.writeBits(127, 7);      // ... run of 11+127 = 138 zeros
    return bw.take();
}

} // namespace

TEST(Inflate, CodeLengthRunOvershootRejected)
{
    auto stream = buildRunOvershootStream();
    auto res = inflateDecompress(stream);
    EXPECT_EQ(res.status, InflateStatus::BadCodeLengths);
}

TEST(Inflate, DynamicHeaderCountsOutOfRange)
{
    // HLIT=31 encodes 288 litlen codes, above the legal 286.
    BitWriter bw;
    bw.writeBits(1, 1);
    bw.writeBits(2, 2);
    bw.writeBits(31, 5);    // HLIT = 288
    bw.writeBits(0, 5);
    bw.writeBits(0, 4);
    bw.writeBits(0, 32);    // padding so the header itself isn't short
    auto stream = bw.take();
    auto res = inflateDecompress(stream);
    EXPECT_EQ(res.status, InflateStatus::BadCodeLengths);
}

TEST(Inflate, TruncatedGzipHeader)
{
    // Shorter than the 10-byte fixed header + 8-byte trailer.
    std::vector<uint8_t> shortHdr = {0x1f, 0x8b, 0x08, 0x00};
    auto res = deflate::gzipUnwrap(shortHdr);
    EXPECT_FALSE(res.ok);
    EXPECT_FALSE(res.error.empty());

    // Valid magic but FEXTRA length pointing past the end.
    std::vector<uint8_t> badExtra = {
        0x1f, 0x8b, 0x08, 0x04,    // magic, deflate, FLG=FEXTRA
        0, 0, 0, 0,                // MTIME
        0, 3,                      // XFL, OS
        0xff, 0x7f,                // XLEN = 32767, way past the end
        0, 0, 0, 0, 0, 0, 0, 0,    // filler so size >= 18
    };
    auto res2 = deflate::gzipUnwrap(badExtra);
    EXPECT_FALSE(res2.ok);
    EXPECT_EQ(res2.error, "truncated FEXTRA");

    // Wrong magic bytes.
    std::vector<uint8_t> badMagic(20, 0x00);
    auto res3 = deflate::gzipUnwrap(badMagic);
    EXPECT_FALSE(res3.ok);
    EXPECT_EQ(res3.error, "bad magic");
}

TEST(Inflate, StatusToStringCoversEveryValue)
{
    EXPECT_STREQ(toString(InflateStatus::Ok), "Ok");
    EXPECT_STREQ(toString(InflateStatus::TruncatedInput),
                 "TruncatedInput");
    EXPECT_STREQ(toString(InflateStatus::BadBlockType), "BadBlockType");
    EXPECT_STREQ(toString(InflateStatus::BadStoredLength),
                 "BadStoredLength");
    EXPECT_STREQ(toString(InflateStatus::BadCodeLengths),
                 "BadCodeLengths");
    EXPECT_STREQ(toString(InflateStatus::BadSymbol), "BadSymbol");
    EXPECT_STREQ(toString(InflateStatus::BadDistance), "BadDistance");
    EXPECT_STREQ(toString(InflateStatus::OutputLimit), "OutputLimit");
}
