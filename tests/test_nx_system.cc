/**
 * @file
 * System-layer accelerator tests: CRB validation, VAS queueing
 * simulation invariants, the page-fault model, and the area inventory.
 */

#include <gtest/gtest.h>

#include "nx/area_model.h"
#include "nx/crb.h"
#include "nx/page_fault_model.h"
#include "nx/vas.h"

using nx::CondCode;
using nx::Crb;
using nx::DdeList;
using nx::FaultModelConfig;
using nx::FaultStrategy;
using nx::NxConfig;
using nx::VasSimConfig;

TEST(Crb, DdeListTotals)
{
    DdeList l;
    l.entries.push_back({0x1000, 100});
    l.entries.push_back({0x4000, 200});
    EXPECT_EQ(l.totalBytes(), 300u);
    EXPECT_EQ(DdeList::direct(0x0, 42).totalBytes(), 42u);
}

TEST(Crb, ValidationCatchesMissingTarget)
{
    Crb crb;
    crb.source = DdeList::direct(0x1000, 10);
    EXPECT_EQ(validateCrb(crb), CondCode::BadCrb);
    crb.target = DdeList::direct(0x2000, 10);
    EXPECT_EQ(validateCrb(crb), CondCode::Success);
}

TEST(Crb, ValidationCatchesBadOffset)
{
    Crb crb;
    crb.source = DdeList::direct(0x1000, 10);
    crb.target = DdeList::direct(0x2000, 10);
    crb.sourceOffset = 11;
    EXPECT_EQ(validateCrb(crb), CondCode::BadCrb);
}

TEST(CondCode, Names)
{
    EXPECT_STREQ(toString(CondCode::Success), "Success");
    EXPECT_STREQ(toString(CondCode::TranslationFault),
                 "TranslationFault");
}

class VasSimTest : public ::testing::Test
{
  protected:
    VasSimConfig
    baseConfig()
    {
        VasSimConfig cfg;
        cfg.chip = NxConfig::power9();
        cfg.jobBytes = 1 << 20;
        cfg.requesters = 4;
        cfg.horizonCycles = 4000000;
        cfg.warmupCycles = 200000;
        return cfg;
    }
};

TEST_F(VasSimTest, CompletesJobs)
{
    auto res = simulateChip(baseConfig());
    EXPECT_GT(res.jobsCompleted, 0u);
    EXPECT_GT(res.aggregateBps, 0.0);
    EXPECT_GT(res.meanLatencyCycles, 0.0);
}

TEST_F(VasSimTest, ThroughputSaturatesAtEnginePeak)
{
    auto cfg = baseConfig();
    cfg.requesters = 64;
    cfg.horizonCycles = 8000000;
    auto res = simulateChip(cfg);
    double peak = cfg.chip.peakCompressBps() *
        cfg.chip.compressEnginesPerUnit;
    EXPECT_LE(res.aggregateBps, peak * 1.02);
    EXPECT_GT(res.aggregateBps, peak * 0.5);
}

TEST_F(VasSimTest, MoreRequestersMoreThroughputUntilSaturation)
{
    // Small jobs leave dispatch/think gaps a single requester cannot
    // fill; extra requesters close them until the engine saturates.
    auto cfg = baseConfig();
    cfg.jobBytes = 64 * 1024;
    cfg.thinkCycles = 20000;
    cfg.requesters = 1;
    double one = simulateChip(cfg).aggregateBps;
    cfg.requesters = 4;
    double four = simulateChip(cfg).aggregateBps;
    EXPECT_GT(four, one * 1.5);
    double peak = cfg.chip.peakCompressBps();
    EXPECT_LE(four, peak * 1.02);
}

TEST_F(VasSimTest, LatencyGrowsUnderSaturation)
{
    auto cfg = baseConfig();
    cfg.requesters = 2;
    double lat2 = simulateChip(cfg).meanLatencyCycles;
    cfg.requesters = 64;
    double lat64 = simulateChip(cfg).meanLatencyCycles;
    EXPECT_GT(lat64, lat2 * 2);
}

TEST_F(VasSimTest, SystemScalesLinearly)
{
    auto cfg = baseConfig();
    cfg.requesters = 32;
    auto one = simulateChip(cfg);
    auto sys = simulateSystem(cfg, 20);
    EXPECT_NEAR(sys.aggregateBps, one.aggregateBps * 20,
                one.aggregateBps * 0.01);
}

TEST_F(VasSimTest, UtilizationBounded)
{
    auto cfg = baseConfig();
    cfg.requesters = 64;
    auto res = simulateChip(cfg);
    EXPECT_GT(res.utilization, 0.5);
    EXPECT_LE(res.utilization, 1.0);
}

TEST_F(VasSimTest, DecompressEnginesServeDecompressJobs)
{
    auto cfg = baseConfig();
    cfg.decompress = true;
    cfg.requesters = 8;
    auto res = simulateChip(cfg);
    EXPECT_GT(res.jobsCompleted, 0u);
    // Decompress engines are faster per byte than compress engines.
    auto comp = baseConfig();
    comp.requesters = 8;
    auto cres = simulateChip(comp);
    EXPECT_GT(res.aggregateBps, cres.aggregateBps * 1.5);
    double peak = cfg.chip.peakDecompressBps() *
        cfg.chip.decompressEnginesPerUnit;
    EXPECT_LE(res.aggregateBps, peak * 1.02);
}

TEST_F(VasSimTest, OpenArrivalLatencyGrowsWithLoad)
{
    auto cfg = baseConfig();
    cfg.openArrival = true;
    cfg.jobBytes = 256 << 10;
    cfg.horizonCycles = 30000000;
    cfg.warmupCycles = 1000000;

    nx::ServiceModel svc{cfg.chip};
    double svc_rate = 1.0 / cfg.chip.clock.toSeconds(
        svc.compressCycles(cfg.jobBytes));

    cfg.arrivalsPerSec = 0.2 * svc_rate;
    auto light = simulateChip(cfg);
    cfg.arrivalsPerSec = 0.9 * svc_rate;
    auto heavy = simulateChip(cfg);

    EXPECT_GT(light.jobsCompleted, 50u);
    EXPECT_GT(heavy.jobsCompleted, light.jobsCompleted * 2);
    EXPECT_GT(heavy.meanLatencyCycles,
              light.meanLatencyCycles * 1.5);
    EXPECT_GT(heavy.p99LatencyCycles, heavy.meanLatencyCycles);
}

TEST_F(VasSimTest, OpenArrivalDeterministicForSeed)
{
    auto cfg = baseConfig();
    cfg.openArrival = true;
    cfg.arrivalsPerSec = 3000;
    cfg.seed = 99;
    auto a = simulateChip(cfg);
    auto b = simulateChip(cfg);
    EXPECT_EQ(a.jobsCompleted, b.jobsCompleted);
    EXPECT_DOUBLE_EQ(a.meanLatencyCycles, b.meanLatencyCycles);
}

TEST(PageFaultModel, NoFaultsNoSlowdown)
{
    FaultModelConfig cfg;
    cfg.chip = NxConfig::power9();
    cfg.faultProbPerPage = 0.0;
    cfg.jobs = 20;
    auto res = runFaultModel(cfg);
    EXPECT_NEAR(res.slowdown, 1.0, 1e-9);
    EXPECT_EQ(res.totalFaults, 0u);
}

TEST(PageFaultModel, FaultsSlowResubmitStrategy)
{
    FaultModelConfig cfg;
    cfg.chip = NxConfig::power9();
    cfg.faultProbPerPage = 0.05;
    cfg.strategy = FaultStrategy::ResubmitOnFault;
    cfg.jobs = 50;
    auto res = runFaultModel(cfg);
    EXPECT_GT(res.slowdown, 1.5);
    EXPECT_GT(res.meanResubmits, 1.0);
}

TEST(PageFaultModel, TouchFirstBeatsResubmitAtHighFaultRates)
{
    FaultModelConfig cfg;
    cfg.chip = NxConfig::power9();
    cfg.faultProbPerPage = 0.2;
    cfg.jobs = 50;

    cfg.strategy = FaultStrategy::ResubmitOnFault;
    auto resub = runFaultModel(cfg);
    cfg.strategy = FaultStrategy::TouchPagesFirst;
    auto touch = runFaultModel(cfg);
    EXPECT_GT(touch.effectiveBps, resub.effectiveBps);
}

TEST(PageFaultModel, ResubmitBeatsTouchFirstWhenResident)
{
    FaultModelConfig cfg;
    cfg.chip = NxConfig::power9();
    cfg.faultProbPerPage = 0.0;
    cfg.jobs = 20;

    cfg.strategy = FaultStrategy::ResubmitOnFault;
    auto resub = runFaultModel(cfg);
    cfg.strategy = FaultStrategy::TouchPagesFirst;
    auto touch = runFaultModel(cfg);
    // Touch-first pays the touch cost even with everything resident.
    EXPECT_GE(resub.effectiveBps, touch.effectiveBps);
}

TEST(PageFaultModel, Deterministic)
{
    FaultModelConfig cfg;
    cfg.chip = NxConfig::power9();
    cfg.faultProbPerPage = 0.1;
    cfg.seed = 42;
    auto a = runFaultModel(cfg);
    auto b = runFaultModel(cfg);
    EXPECT_DOUBLE_EQ(a.effectiveBps, b.effectiveBps);
    EXPECT_EQ(a.totalFaults, b.totalFaults);
}

TEST(AreaModel, InventoryIsPlausible)
{
    auto inv = nx::buildAreaInventory(NxConfig::power9());
    EXPECT_GE(inv.items.size(), 6u);
    // Total accelerator state: tens to a few hundred KiB.
    EXPECT_GT(inv.totalKiB(), 64.0);
    EXPECT_LT(inv.totalKiB(), 2048.0);
}

TEST(AreaModel, TinyFractionOfChipSram)
{
    auto cfg = NxConfig::power9();
    auto inv = nx::buildAreaInventory(cfg);
    double frac = static_cast<double>(inv.totalBits()) /
        static_cast<double>(nx::chipSramBitsReference(cfg));
    EXPECT_LT(frac, 0.005);    // the paper's < 0.5 % claim, SRAM proxy
}

TEST(AreaModel, Z15CarriesMoreState)
{
    auto p9 = nx::buildAreaInventory(NxConfig::power9());
    auto z15 = nx::buildAreaInventory(NxConfig::z15());
    EXPECT_GT(z15.totalBits(), p9.totalBits());
}
