/**
 * @file
 * Workload generator tests: determinism, size exactness, and — most
 * importantly — the compressibility ordering the experiments depend on.
 * Also covers the TPC-DS generator and the Spark pipeline model.
 */

#include <gtest/gtest.h>

#include "deflate/deflate_encoder.h"
#include "workloads/corpus.h"
#include "workloads/spark_model.h"
#include "workloads/tpcds_gen.h"

namespace {

double
ratioOf(const std::vector<uint8_t> &data)
{
    auto res = deflate::deflateCompress(data);
    return static_cast<double>(data.size()) /
        static_cast<double>(res.bytes.size());
}

} // namespace

TEST(Corpus, ExactSizes)
{
    for (size_t n : {size_t{1}, size_t{1000}, size_t{65536}}) {
        EXPECT_EQ(workloads::makeText(n, 1).size(), n);
        EXPECT_EQ(workloads::makeLog(n, 1).size(), n);
        EXPECT_EQ(workloads::makeJson(n, 1).size(), n);
        EXPECT_EQ(workloads::makeCsv(n, 1).size(), n);
        EXPECT_EQ(workloads::makeSource(n, 1).size(), n);
        EXPECT_EQ(workloads::makeHtml(n, 1).size(), n);
        EXPECT_EQ(workloads::makeBinary(n, 1).size(), n);
        EXPECT_EQ(workloads::makeRandom(n, 1).size(), n);
        EXPECT_EQ(workloads::makeZeros(n).size(), n);
        EXPECT_EQ(workloads::makeMixed(n, 1).size(), n);
    }
}

TEST(Corpus, Deterministic)
{
    auto a = workloads::makeLog(10000, 42);
    auto b = workloads::makeLog(10000, 42);
    EXPECT_EQ(a, b);
    auto c = workloads::makeLog(10000, 43);
    EXPECT_NE(a, c);
}

TEST(Corpus, CompressibilityOrdering)
{
    const size_t n = 256 * 1024;
    double zeros = ratioOf(workloads::makeZeros(n));
    double html = ratioOf(workloads::makeHtml(n, 2));
    double text = ratioOf(workloads::makeText(n, 2));
    double binary = ratioOf(workloads::makeBinary(n, 2));
    double random = ratioOf(workloads::makeRandom(n, 2));

    EXPECT_GT(zeros, 100.0);
    EXPECT_GT(html, text);
    EXPECT_GT(text, 1.5);
    EXPECT_GT(binary, 1.3);
    EXPECT_LT(random, 1.01);
    EXPECT_GT(binary, random);
}

TEST(Corpus, StandardSuiteShape)
{
    auto suite = workloads::standardCorpus(4096);
    EXPECT_EQ(suite.size(), 9u);
    EXPECT_EQ(suite.front().name, "zeros");
    EXPECT_EQ(suite.back().name, "random");
    for (const auto &f : suite)
        EXPECT_EQ(f.data.size(), 4096u);
}

TEST(Tpcds, StoreSalesShape)
{
    auto data = workloads::makeStoreSales(100000);
    EXPECT_EQ(data.size(), 100000u);
    // Pipe-delimited rows with newlines.
    size_t pipes = 0, newlines = 0;
    for (uint8_t b : data) {
        pipes += b == '|';
        newlines += b == '\n';
    }
    EXPECT_GT(newlines, 500u);
    EXPECT_GT(pipes, newlines * 7);
    // DB rows compress well (the premise of the whole paper).
    EXPECT_GT(ratioOf(data), 2.0);
}

TEST(Tpcds, ShufflePartitionCompressesWell)
{
    auto data = workloads::makeShufflePartition(100000);
    EXPECT_GT(ratioOf(data), 2.5);
}

TEST(SparkModel, QuerySuiteDeterministic)
{
    auto a = workloads::makeTpcdsQueries(10, 7, 1000.0);
    auto b = workloads::makeTpcdsQueries(10, 7, 1000.0);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
        ASSERT_EQ(a[i].stages.size(), b[i].stages.size());
        EXPECT_EQ(a[i].stages[0].storageReadBytes,
                  b[i].stages[0].storageReadBytes);
    }
}

TEST(SparkModel, FasterCodecNeverSlower)
{
    auto queries = workloads::makeTpcdsQueries(10, 7, 1000.0);
    workloads::ClusterConfig cluster;

    workloads::CodecModel slow{"sw", 40e6, 200e6, 3.0, true};
    workloads::CodecModel fast{"accel", 8e9, 16e9, 2.8, false};

    auto cmp = workloads::compareSuite(queries, cluster, slow, fast);
    EXPECT_GT(cmp.speedupPct, 0.0);
    EXPECT_LT(cmp.speedupPct, 100.0);
    EXPECT_GT(cmp.totalA, cmp.totalB);
}

TEST(SparkModel, IdenticalCodecsNoSpeedup)
{
    auto queries = workloads::makeTpcdsQueries(5, 9, 500.0);
    workloads::ClusterConfig cluster;
    workloads::CodecModel c{"sw", 40e6, 200e6, 3.0, true};
    auto cmp = workloads::compareSuite(queries, cluster, c, c);
    EXPECT_NEAR(cmp.speedupPct, 0.0, 1e-9);
}

TEST(SparkModel, CodecShareBoundsSpeedup)
{
    // Amdahl: end-to-end speedup cannot exceed the baseline codec
    // share of runtime.
    auto queries = workloads::makeTpcdsQueries(10, 11, 1000.0);
    workloads::ClusterConfig cluster;
    workloads::CodecModel slow{"sw", 40e6, 200e6, 3.0, true};
    workloads::CodecModel fast{"accel", 8e9, 16e9, 2.8, false};

    double total = 0.0, codec = 0.0;
    for (const auto &q : queries) {
        auto t = workloads::runQuery(q, cluster, slow);
        total += t.totalSeconds;
        codec += t.codecSeconds;
    }
    auto cmp = workloads::compareSuite(queries, cluster, slow, fast);
    EXPECT_LE(cmp.speedupPct, 100.0 * codec / total + 1.0);
}

TEST(SparkModel, BetterRatioShrinksIo)
{
    auto queries = workloads::makeTpcdsQueries(5, 13, 2000.0);
    workloads::ClusterConfig cluster;
    cluster.diskBps = 0.5e9;    // I/O-bound regime
    workloads::CodecModel low{"low-ratio", 8e9, 16e9, 1.5, false};
    workloads::CodecModel high{"high-ratio", 8e9, 16e9, 4.0, false};
    double tLow = 0.0, tHigh = 0.0;
    for (const auto &q : queries) {
        tLow += workloads::runQuery(q, cluster, low).totalSeconds;
        tHigh += workloads::runQuery(q, cluster, high).totalSeconds;
    }
    EXPECT_LT(tHigh, tLow);
}
