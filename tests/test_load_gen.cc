/**
 * @file
 * Deterministic small-scale tests of the serving load generator
 * (load/load_gen.h) and its workload mix (ctest label: load —
 * ci.sh's TSan stage picks it up via `-L 'concurrency|load'`).
 *
 * The planning layer (who sends what, when) is a pure function of the
 * config, so those tests assert exact equality. The execution layer
 * runs real client threads against a real JobServer; there the tests
 * assert conservation laws (submitted = completed + failed, stats
 * balance, fairness bounds), never timings.
 *
 * gtest assertions run on the main thread only; LoadGen aggregates
 * worker outcomes internally and the main thread checks the report.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <set>
#include <utility>

#include "load/load_gen.h"
#include "load/scenarios.h"
#include "workloads/corpus.h"

namespace {

using load::ArrivalKind;
using load::LoadGen;
using load::LoadGenConfig;
using load::LoadReport;
using load::WorkloadMix;
using load::WorkloadMixConfig;

nx::NxConfig
testChip()
{
    return nx::NxConfig::power9();
}

/** A small, fast config: 4 clients x 10 requests, tiny think times. */
LoadGenConfig
smallConfig(ArrivalKind kind)
{
    LoadGenConfig cfg;
    cfg.clients = 4;
    cfg.requestsPerClient = 10;
    cfg.arrival.kind = kind;
    cfg.arrival.ratePerSec = 5000.0;
    cfg.arrival.thinkSeconds = 0.0002;
    cfg.mix.variantsPerClass = 2;
    cfg.seed = 77;
    cfg.workers = 2;
    cfg.windows = 2;
    cfg.fifoDepth = 4;
    return cfg;
}

// ---------------------------------------------------------------------------
// WorkloadMix
// ---------------------------------------------------------------------------

TEST(WorkloadMix, SamplingIsDeterministicPerRngSeed)
{
    WorkloadMix mix(load::defaultServingMix());
    util::Xoshiro256 a(9), b(9);
    for (int i = 0; i < 200; ++i) {
        auto ra = mix.sample(a);
        auto rb = mix.sample(b);
        ASSERT_EQ(ra.classIndex, rb.classIndex);
        ASSERT_EQ(ra.variantIndex, rb.variantIndex);
        ASSERT_EQ(ra.kind, rb.kind);
        ASSERT_EQ(ra.payload, rb.payload);   // same pooled pointer
    }
}

TEST(WorkloadMix, SampleRespectsClassWeights)
{
    // Two classes at 9:1 — over 10k draws the heavy class must
    // dominate roughly in proportion.
    WorkloadMixConfig cfg;
    cfg.classes = {
        {"heavy", 9.0, nx::SessionFormat::Gzip, load::Content::Text,
         256, 512, 0.0},
        {"light", 1.0, nx::SessionFormat::Gzip, load::Content::Text,
         256, 512, 0.0},
    };
    WorkloadMix mix(cfg);
    util::Xoshiro256 rng(4);
    int heavy = 0;
    for (int i = 0; i < 10000; ++i)
        if (mix.sample(rng).classIndex == 0)
            ++heavy;
    EXPECT_NEAR(heavy, 9000, 300);
}

TEST(WorkloadMix, PayloadSizesStayInClassRange)
{
    WorkloadMixConfig cfg;
    cfg.classes = {{"ranged", 1.0, nx::SessionFormat::Gzip,
                    load::Content::Log, 1000, 2000, 0.0}};
    cfg.variantsPerClass = 8;
    WorkloadMix mix(cfg);
    for (size_t v = 0; v < 8; ++v) {
        size_t n = mix.variant(0, v).size();
        EXPECT_GE(n, 1000u);
        EXPECT_LE(n, 2000u);
    }
}

TEST(WorkloadMix, DecompressRequestsCarryTheOracle)
{
    WorkloadMixConfig cfg;
    cfg.classes = {{"dec", 1.0, nx::SessionFormat::Zlib,
                    load::Content::Json, 1024, 4096, 1.0}};
    WorkloadMix mix(cfg);
    util::Xoshiro256 rng(1);
    for (int i = 0; i < 20; ++i) {
        auto r = mix.sample(rng);
        ASSERT_EQ(r.kind, core::JobKind::Decompress);
        ASSERT_NE(r.original, nullptr);
        // The payload is the compressed stream, not the source.
        ASSERT_NE(r.payload, r.original);
        EXPECT_EQ(*r.original, mix.variant(r.classIndex, r.variantIndex));
    }
}

// ---------------------------------------------------------------------------
// Plan + schedule digest
// ---------------------------------------------------------------------------

TEST(LoadGenPlan, DigestIsDeterministic)
{
    auto cfg = smallConfig(ArrivalKind::OpenPoisson);
    EXPECT_EQ(load::planScheduleDigest(cfg),
              load::planScheduleDigest(cfg));
    EXPECT_NE(load::planScheduleDigest(cfg), 0u);
}

TEST(LoadGenPlan, DigestCoversEveryPlanInput)
{
    auto base = smallConfig(ArrivalKind::OpenPoisson);
    uint64_t d0 = load::planScheduleDigest(base);

    auto seed = base;
    seed.seed += 1;
    EXPECT_NE(load::planScheduleDigest(seed), d0);

    auto clients = base;
    clients.clients += 1;
    EXPECT_NE(load::planScheduleDigest(clients), d0);

    auto reqs = base;
    reqs.requestsPerClient += 1;
    EXPECT_NE(load::planScheduleDigest(reqs), d0);

    auto kind = base;
    kind.arrival.kind = ArrivalKind::Bursty;
    EXPECT_NE(load::planScheduleDigest(kind), d0);

    auto rate = base;
    rate.arrival.ratePerSec *= 2.0;
    EXPECT_NE(load::planScheduleDigest(rate), d0);
}

TEST(LoadGenPlan, GeometryDoesNotChangeTheSchedule)
{
    // Workers/windows/fifo shape the *system under test*, not the
    // offered traffic: the plan digest must not move.
    auto base = smallConfig(ArrivalKind::OpenPoisson);
    auto geo = base;
    geo.workers = 1;
    geo.windows = 1;
    geo.fifoDepth = 64;
    EXPECT_EQ(load::planScheduleDigest(geo),
              load::planScheduleDigest(base));
}

TEST(LoadGenPlan, SmokeScenarioDigestsAreDistinct)
{
    auto scenarios = load::l1SmokeScenarios();
    ASSERT_GE(scenarios.size(), 11u);
    std::vector<uint64_t> digests;
    for (const auto &sc : scenarios) {
        // Poisson grid points share traffic shape but not seeds, so
        // every scenario's digest is unique.
        digests.push_back(load::planScheduleDigest(sc.cfg));
    }
    std::sort(digests.begin(), digests.end());
    EXPECT_EQ(std::adjacent_find(digests.begin(), digests.end()),
              digests.end());
}

TEST(LoadGenPlan, FullSweepCoversTheGrid)
{
    auto scenarios = load::l1FullScenarios(8);
    // >= 3x3 workers x fifoDepth grid plus windows/bursty/closed
    // points (the ISSUE acceptance floor).
    ASSERT_GE(scenarios.size(), 14u);
    std::set<std::pair<int, int>> grid;
    std::set<int> windows;
    bool sawBursty = false, sawClosed = false;
    for (const auto &sc : scenarios) {
        grid.insert({sc.cfg.workers, sc.cfg.fifoDepth});
        windows.insert(sc.cfg.windows);
        sawBursty |= sc.cfg.arrival.kind == ArrivalKind::Bursty;
        sawClosed |= sc.cfg.arrival.kind == ArrivalKind::ClosedLoop;
    }
    EXPECT_GE(grid.size(), 9u);
    EXPECT_GE(windows.size(), 3u);
    EXPECT_TRUE(sawBursty);
    EXPECT_TRUE(sawClosed);
}

// ---------------------------------------------------------------------------
// Execution
// ---------------------------------------------------------------------------

void
checkBalance(const LoadReport &rep, const LoadGenConfig &cfg)
{
    const uint64_t planned =
        static_cast<uint64_t>(cfg.clients) *
        static_cast<uint64_t>(cfg.requestsPerClient);
    EXPECT_EQ(rep.submitted, planned);
    EXPECT_EQ(rep.completed + rep.failed, rep.submitted);
    EXPECT_EQ(rep.failed, 0u);
    EXPECT_EQ(rep.accelRouted + rep.softwareRouted, rep.submitted);
    EXPECT_LE(rep.fallbacks, rep.accelRouted);

    // Warmup split: the leading fraction is excluded from the SLO
    // window but still counted in the totals.
    const uint64_t warmupPerClient = static_cast<uint64_t>(
        cfg.warmupFraction * cfg.requestsPerClient);
    EXPECT_EQ(rep.measured,
              planned - static_cast<uint64_t>(cfg.clients) *
                            warmupPerClient);
    EXPECT_EQ(rep.latency.count, rep.measured);

    // Per-client fairness: equal budgets, no failures => every client
    // completed the same count.
    ASSERT_EQ(rep.perClientCompleted.size(),
              static_cast<size_t>(cfg.clients));
    EXPECT_DOUBLE_EQ(rep.fairnessMinOverMax, 1.0);
    EXPECT_EQ(std::accumulate(rep.perClientCompleted.begin(),
                              rep.perClientCompleted.end(), uint64_t{0}),
              rep.completed);

    // Window counters came through from the dispatch layer.
    EXPECT_EQ(rep.windowBusyRejects.size(),
              static_cast<size_t>(rep.windows));
    EXPECT_EQ(std::accumulate(rep.windowBusyRejects.begin(),
                              rep.windowBusyRejects.end(), uint64_t{0}),
              rep.busyRejects);

    EXPECT_GT(rep.elapsedSeconds, 0.0);
    EXPECT_GT(rep.throughputRps, 0.0);
    EXPECT_GT(rep.bytesIn, 0u);
    EXPECT_LE(rep.latency.p50, rep.latency.p99);
    EXPECT_LE(rep.latency.p99, rep.latency.p999);
    EXPECT_LE(rep.latency.p999, rep.latency.max);
}

TEST(LoadGenRun, OpenPoissonCompletesEverything)
{
    auto cfg = smallConfig(ArrivalKind::OpenPoisson);
    LoadGen gen(cfg);
    auto rep = gen.run(testChip());
    checkBalance(rep, cfg);
    EXPECT_EQ(rep.arrival, ArrivalKind::OpenPoisson);
    EXPECT_EQ(rep.scheduleDigest, gen.scheduleDigest());
}

TEST(LoadGenRun, BurstyCompletesEverything)
{
    auto cfg = smallConfig(ArrivalKind::Bursty);
    LoadGen gen(cfg);
    auto rep = gen.run(testChip());
    checkBalance(rep, cfg);
    EXPECT_EQ(rep.arrival, ArrivalKind::Bursty);
}

TEST(LoadGenRun, ClosedLoopCompletesEverything)
{
    auto cfg = smallConfig(ArrivalKind::ClosedLoop);
    LoadGen gen(cfg);
    auto rep = gen.run(testChip());
    checkBalance(rep, cfg);
    EXPECT_EQ(rep.arrival, ArrivalKind::ClosedLoop);
}

TEST(LoadGenRun, ReportEchoesTheConfig)
{
    auto cfg = smallConfig(ArrivalKind::OpenPoisson);
    auto rep = LoadGen(cfg).run(testChip());
    EXPECT_EQ(rep.clients, cfg.clients);
    EXPECT_EQ(rep.requestsPerClient, cfg.requestsPerClient);
    EXPECT_EQ(rep.seed, cfg.seed);
    EXPECT_EQ(rep.workers, cfg.workers);
    EXPECT_EQ(rep.windows, cfg.windows);
    EXPECT_EQ(rep.fifoDepth, cfg.fifoDepth);
    EXPECT_EQ(rep.scheduleDigest, load::planScheduleDigest(cfg));
}

TEST(LoadGenRun, StartPausedServerIsReleasedAndLeftRunning)
{
    // A startPaused server cannot complete anything until resume();
    // LoadGen must release it after the client gate or every wait()
    // would deadlock. Afterwards the external server keeps serving.
    auto cfg = smallConfig(ArrivalKind::OpenPoisson);
    core::JobServerConfig jcfg;
    jcfg.workers = cfg.workers;
    jcfg.windows = cfg.windows;
    jcfg.window.fifoDepth = cfg.fifoDepth;
    jcfg.startPaused = true;
    core::JobServer server(testChip(), jcfg);

    LoadGen gen(cfg);
    auto rep = gen.run(server);
    checkBalance(rep, cfg);

    // Still accepting after the run: the server was not drained.
    core::JobSpec spec;
    spec.payload = workloads::makeText(1024, 5);
    auto sub = server.submitWithRetry(spec);
    ASSERT_TRUE(sub.accepted());
    EXPECT_TRUE(server.wait(sub.ticket).result.ok());
    server.drainAndStop();
    auto ss = server.stats();
    EXPECT_EQ(ss.completed, ss.submitted);
}

TEST(LoadGenRun, TinyFifoSurfacesBackpressureCounters)
{
    // Everything accelerator-routed into one window of depth 1: the
    // queue high-water mark must register, and any busy rejects must
    // be attributed to the window that bounced them.
    LoadGenConfig cfg;
    cfg.clients = 4;
    cfg.requestsPerClient = 8;
    cfg.arrival.ratePerSec = 50000.0;   // effectively simultaneous
    cfg.mix.classes = {{"bulk", 1.0, nx::SessionFormat::Gzip,
                        load::Content::Log, 32768, 65536, 0.0}};
    cfg.mix.variantsPerClass = 2;
    cfg.seed = 3;
    cfg.workers = 1;
    cfg.windows = 1;
    cfg.fifoDepth = 1;
    cfg.policy.accelThresholdBytes = 0;
    cfg.policy.backoff.maxAttempts = 1 << 20;   // never exhaust

    auto rep = LoadGen(cfg).run(testChip());
    EXPECT_EQ(rep.completed, rep.submitted);
    EXPECT_EQ(rep.softwareRouted, 0u);
    EXPECT_EQ(rep.fallbacks, 0u);
    EXPECT_GE(rep.queueDepthHighWater, 1u);
    ASSERT_EQ(rep.windowBusyRejects.size(), 1u);
    EXPECT_EQ(rep.windowBusyRejects[0], rep.busyRejects);
    EXPECT_EQ(rep.pasteAttempts, rep.busyRejects + rep.submitted);
}

TEST(LoadGenRun, CapturedResultsMatchTheOracles)
{
    auto cfg = smallConfig(ArrivalKind::OpenPoisson);
    cfg.captureResults = true;
    LoadGen gen(cfg);
    auto rep = gen.run(testChip());
    ASSERT_EQ(rep.captured.size(), rep.submitted);

    // Replay the oracle pool: same mix config => identical payloads.
    WorkloadMix oracle(cfg.mix);
    for (const auto &cr : rep.captured) {
        ASSERT_TRUE(cr.ok);
        if (cr.kind == core::JobKind::Decompress) {
            // Decompressing the prepared stream must reproduce the
            // prepared source, whatever backend served it.
            EXPECT_EQ(cr.data,
                      oracle.variant(cr.classIndex, cr.variantIndex))
                << "client " << cr.client << " req " << cr.requestIndex;
        } else {
            EXPECT_FALSE(cr.data.empty());
        }
    }
}

TEST(LoadGenRun, PerClientOutcomeSlotsCoverAllClients)
{
    auto cfg = smallConfig(ArrivalKind::ClosedLoop);
    cfg.clients = 7;
    auto rep = LoadGen(cfg).run(testChip());
    ASSERT_EQ(rep.perClientCompleted.size(), 7u);
    for (uint64_t c : rep.perClientCompleted)
        EXPECT_EQ(c, static_cast<uint64_t>(cfg.requestsPerClient));
}

} // namespace
