/**
 * @file
 * Multi-session concurrency suite for nx::Session (ctest label:
 * concurrency — ci.sh runs it under ThreadSanitizer).
 *
 * The session layer's concurrency claims: many sessions can share one
 * JobServer engine pool, one session can be driven from many threads,
 * and the per-session stats block stays consistent — all while a fault
 * injector is knocking out a fraction of the device jobs, so the
 * fallback path races the happy path.
 *
 * gtest assertions run on the main thread only; worker threads record
 * outcomes and the main thread checks them afterwards. Sized to finish
 * well under 10 s with TSan instrumentation.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "core/fault_injector.h"
#include "core/session.h"
#include "load/load_gen.h"
#include "workloads/corpus.h"

namespace {

using core::JobServer;
using core::JobServerConfig;
using nx::Session;
using nx::SessionFormat;
using nx::SessionPolicy;

constexpr uint64_t kThreshold = 256;

nx::NxConfig
testChip()
{
    return nx::NxConfig::power9();
}

/** Payload sizes straddle the threshold so both routes race. */
std::vector<uint8_t>
payloadFor(uint64_t seed)
{
    size_t n = (seed % 2 == 0) ? 64 + seed % 128
                               : 2 * kThreshold + seed % 4096;
    return workloads::makeMixed(n, seed);
}

TEST(SessionStress, ManySessionsSharedServerWithFaultsAllRoundTrip)
{
    const size_t kSessions = 4;
    const size_t kRequests = 32;
    const SessionFormat formats[] = {
        SessionFormat::Gzip, SessionFormat::Zlib,
        SessionFormat::RawDeflate, SessionFormat::E842};

    nx::FaultInjector faults;
    faults.failEveryNth(5);   // every 5th device job faults
    JobServerConfig jcfg;
    jcfg.workers = 3;
    jcfg.windows = 2;
    jcfg.window.fifoDepth = 8;
    jcfg.faultInjector = &faults;
    JobServer srv(testChip(), jcfg);

    std::vector<std::unique_ptr<Session>> sessions;
    for (size_t s = 0; s < kSessions; ++s) {
        SessionPolicy pol;
        pol.format = formats[s % 4];
        pol.accelThresholdBytes = kThreshold;
        pol.window = static_cast<int>(s) % jcfg.windows;
        pol.backoff.maxAttempts = 1000;   // acceptance must happen
        pol.faultRetries = 0;   // every injected fault falls back
        sessions.push_back(std::make_unique<Session>(srv, pol));
    }

    // Each thread drives its own session: compress, decompress the
    // produced stream through the same session, compare to the source.
    std::vector<int> mismatches(kSessions, 0);
    std::vector<int> failures(kSessions, 0);
    std::vector<std::thread> drivers;
    drivers.reserve(kSessions);
    for (size_t s = 0; s < kSessions; ++s) {
        drivers.emplace_back([&, s] {
            for (size_t j = 0; j < kRequests; ++j) {
                uint64_t seed = 1000 * s + j;
                auto payload = payloadFor(seed);
                auto c = sessions[s]->compress(payload);
                if (!c.ok) {
                    ++failures[s];
                    continue;
                }
                auto d = sessions[s]->decompress(c.data);
                if (!d.ok) {
                    ++failures[s];
                    continue;
                }
                if (d.data != payload)
                    ++mismatches[s];
            }
        });
    }
    for (auto &t : drivers)
        t.join();

    uint64_t requests = 0, fallbacks = 0, deviceFaults = 0;
    for (size_t s = 0; s < kSessions; ++s) {
        EXPECT_EQ(failures[s], 0) << "session " << s;
        EXPECT_EQ(mismatches[s], 0) << "session " << s;
        auto st = sessions[s]->stats();
        // 2 requests per iteration (compress + decompress).
        EXPECT_EQ(st.requests, 2 * kRequests) << "session " << s;
        EXPECT_EQ(st.softwareRouted + st.accelRouted, st.requests);
        EXPECT_LE(st.fallbacks, st.accelRouted);
        // Each accel-routed request stages exactly one pool buffer
        // and returns it before completing.
        EXPECT_EQ(st.pool.acquires, st.accelRouted);
        EXPECT_EQ(st.pool.releases, st.pool.acquires);
        EXPECT_EQ(st.pool.freeSlabs, st.pool.slabCount);
        requests += st.requests;
        fallbacks += st.fallbacks;
        deviceFaults += st.deviceFaults;
        sessions[s]->close();
    }
    EXPECT_EQ(requests, 2 * kSessions * kRequests);

    srv.drainAndStop();
    auto st = srv.stats();
    EXPECT_EQ(st.completed, st.submitted);
    // The injector really fired, and every injected fault surfaced as
    // a faulted job (inputs are valid, so there are no organic faults
    // besides injected ones).
    EXPECT_GT(st.faultsInjected, 0u);
    EXPECT_EQ(st.jobFaults, st.faultsInjected);
    EXPECT_EQ(st.faultsInjected, faults.injected());
    // Sessions saw every faulted completion (fault retries may turn
    // one request into several device faults; counts still match the
    // server's view because each faulted CSB is observed exactly once).
    EXPECT_EQ(deviceFaults, st.jobFaults);
    EXPECT_GT(fallbacks, 0u);
}

TEST(SessionStress, OneSessionManyThreads)
{
    const int kThreads = 6;
    const int kPerThread = 24;
    SessionPolicy pol;
    pol.format = SessionFormat::Gzip;
    pol.accelThresholdBytes = kThreshold;
    pol.backoff.maxAttempts = 1000;
    Session sess(testChip(), pol);

    std::vector<int> bad(kThreads, 0);
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
            for (int j = 0; j < kPerThread; ++j) {
                uint64_t seed =
                    static_cast<uint64_t>(t) * 100 +
                    static_cast<uint64_t>(j);
                auto payload = payloadFor(seed);
                auto c = sess.compress(payload);
                if (!c.ok) {
                    ++bad[static_cast<size_t>(t)];
                    continue;
                }
                auto d = sess.decompress(c.data);
                if (!d.ok || d.data != payload)
                    ++bad[static_cast<size_t>(t)];
            }
        });
    }
    for (auto &t : threads)
        t.join();
    for (int t = 0; t < kThreads; ++t)
        EXPECT_EQ(bad[static_cast<size_t>(t)], 0) << "thread " << t;

    auto st = sess.stats();
    EXPECT_EQ(st.requests,
              static_cast<uint64_t>(2 * kThreads * kPerThread));
    EXPECT_EQ(st.softwareRouted + st.accelRouted, st.requests);
    EXPECT_EQ(st.fallbacks, 0u);   // no injector, no backpressure cliff
    EXPECT_EQ(st.pool.releases, st.pool.acquires);
    sess.close();
}

TEST(SessionStress, SessionsComeAndGoWhileTheServerKeepsRunning)
{
    // Session churn against a long-lived server: sessions open, issue
    // a few requests, and close, in waves, from several threads. The
    // shared server must be unaffected by session lifetimes.
    JobServerConfig jcfg;
    jcfg.workers = 2;
    jcfg.windows = 2;
    JobServer srv(testChip(), jcfg);

    const int kThreads = 4, kWaves = 6;
    std::atomic<int> bad{0};
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
            for (int w = 0; w < kWaves; ++w) {
                SessionPolicy pol;
                pol.format = (t % 2 == 0) ? SessionFormat::Gzip
                                          : SessionFormat::E842;
                pol.accelThresholdBytes = kThreshold;
                pol.window = t % 2;
                pol.backoff.maxAttempts = 1000;
                Session sess(srv, pol);
                uint64_t seed =
                    static_cast<uint64_t>(t) * 1000 +
                    static_cast<uint64_t>(w);
                auto payload = payloadFor(seed);
                auto c = sess.compress(payload);
                auto d = c.ok ? sess.decompress(c.data)
                              : nx::SessionResult{};
                if (!d.ok || d.data != payload)
                    bad.fetch_add(1, std::memory_order_relaxed);
                sess.close();
            }
        });
    }
    for (auto &t : threads)
        t.join();
    EXPECT_EQ(bad.load(), 0);

    srv.drainAndStop();
    auto st = srv.stats();
    EXPECT_EQ(st.completed, st.submitted);
    EXPECT_EQ(st.jobFaults, 0u);
}

TEST(SessionStress, LoadGenMixedArrivalsSurviveFaultInjection)
{
    // The full load harness — every arrival kind over the serving mix —
    // against one shared server whose device path faults every 4th
    // job. The clients must never see a failure (software fallback is
    // load-bearing), the server must lose no tickets, and every
    // fallback's output must be bit-identical to the pure-software
    // path for the same payload.
    nx::FaultInjector faults;
    faults.failEveryNth(4);
    JobServerConfig jcfg;
    jcfg.workers = 3;
    jcfg.windows = 2;
    jcfg.window.fifoDepth = 4;
    jcfg.faultInjector = &faults;
    JobServer srv(testChip(), jcfg);

    load::LoadGenConfig base;
    base.clients = 5;
    base.requestsPerClient = 16;
    base.arrival.ratePerSec = 4000.0;
    base.arrival.thinkSeconds = 0.0002;
    base.mix.variantsPerClass = 2;
    base.workers = jcfg.workers;
    base.windows = jcfg.windows;
    base.fifoDepth = jcfg.window.fifoDepth;
    base.policy.accelThresholdBytes = kThreshold;
    base.policy.backoff.maxAttempts = 1000;
    base.policy.faultRetries = 0;   // every injected fault falls back
    base.captureResults = true;

    // Pure-software oracle sessions, one per format in the mix.
    std::vector<std::unique_ptr<Session>> oracles;
    auto oracleFor = [&](SessionFormat f) -> Session & {
        for (auto &s : oracles)
            if (s->policy().format == f)
                return *s;
        SessionPolicy pol = base.policy;
        pol.format = f;
        pol.forceSoftware = true;
        oracles.push_back(std::make_unique<Session>(srv, pol));
        return *oracles.back();
    };

    uint64_t fallbacks = 0, submitted = 0;
    uint64_t seed = 0xFA117;
    for (auto kind : {load::ArrivalKind::OpenPoisson,
                      load::ArrivalKind::Bursty,
                      load::ArrivalKind::ClosedLoop}) {
        auto cfg = base;
        cfg.arrival.kind = kind;
        cfg.seed = seed++;
        load::LoadGen gen(cfg);
        auto rep = gen.run(srv);

        EXPECT_EQ(rep.failed, 0u) << toString(kind);
        EXPECT_EQ(rep.completed, rep.submitted) << toString(kind);
        submitted += rep.submitted;
        fallbacks += rep.fallbacks;

        load::WorkloadMix oracleMix(cfg.mix);
        for (const auto &cr : rep.captured) {
            ASSERT_TRUE(cr.ok);
            if (!cr.fellBack || cr.kind != core::JobKind::Compress)
                continue;
            // A fallback compress must have produced exactly what the
            // software leg produces for the same bytes.
            const auto &src = oracleMix.variant(cr.classIndex,
                                                cr.variantIndex);
            auto fmt = cfg.mix.classes[cr.classIndex].format;
            auto sw = oracleFor(fmt).compress(src);
            ASSERT_TRUE(sw.ok);
            EXPECT_EQ(cr.data, sw.data)
                << toString(kind) << " client " << cr.client << " req "
                << cr.requestIndex;
        }
    }
    // Three runs of 80 requests each at a 1-in-4 fault rate: fallbacks
    // must actually have happened, or the oracle loop proved nothing.
    EXPECT_EQ(submitted, 3u * 5u * 16u);
    EXPECT_GT(fallbacks, 0u);

    for (auto &s : oracles)
        s->close();
    srv.drainAndStop();
    auto st = srv.stats();
    // No lost tickets: everything accepted was completed and claimed.
    EXPECT_EQ(st.completed, st.submitted);
    EXPECT_GT(st.faultsInjected, 0u);
    EXPECT_EQ(st.jobFaults, st.faultsInjected);
    EXPECT_EQ(st.faultsInjected, faults.injected());
}

} // namespace
