/**
 * @file
 * Determinism and distribution sanity tests for util::Xoshiro256.
 */

#include <gtest/gtest.h>

#include "util/prng.h"

using util::Xoshiro256;

TEST(Prng, DeterministicForSeed)
{
    Xoshiro256 a(42), b(42);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Prng, DifferentSeedsDiverge)
{
    Xoshiro256 a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        if (a.next() == b.next())
            ++same;
    EXPECT_EQ(same, 0);
}

TEST(Prng, UniformInUnitInterval)
{
    Xoshiro256 r(7);
    double sum = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i) {
        double u = r.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Prng, BelowRespectsBound)
{
    Xoshiro256 r(9);
    for (int i = 0; i < 10000; ++i)
        ASSERT_LT(r.below(17), 17u);
}

TEST(Prng, RangeIsInclusive)
{
    Xoshiro256 r(11);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 10000; ++i) {
        int64_t v = r.range(-3, 3);
        ASSERT_GE(v, -3);
        ASSERT_LE(v, 3);
        saw_lo |= v == -3;
        saw_hi |= v == 3;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Prng, ExponentialHasRequestedMean)
{
    Xoshiro256 r(13);
    double sum = 0;
    const int n = 200000;
    for (int i = 0; i < n; ++i)
        sum += r.exponential(5.0);
    EXPECT_NEAR(sum / n, 5.0, 0.1);
}

TEST(Prng, ChanceExtremes)
{
    Xoshiro256 r(15);
    for (int i = 0; i < 1000; ++i) {
        EXPECT_FALSE(r.chance(0.0));
        EXPECT_TRUE(r.chance(1.0));
    }
}

TEST(Prng, ZipfSkewsTowardLowRanks)
{
    Xoshiro256 r(17);
    uint64_t low = 0, high = 0;
    for (int i = 0; i < 20000; ++i) {
        uint64_t v = r.zipf(1000, 1.2);
        ASSERT_LT(v, 1000u);
        if (v < 10)
            ++low;
        if (v >= 500)
            ++high;
    }
    EXPECT_GT(low, high * 2);
}
