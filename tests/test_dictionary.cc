/**
 * @file
 * Preset-dictionary and multi-member tests: deflate/inflate with
 * dictionaries, the zlib FDICT container, gzip member concatenation,
 * and the device-level parallel compressLarge/decompressLarge path.
 */

#include <gtest/gtest.h>

#include "core/device.h"
#include "core/topology.h"
#include "deflate/deflate_encoder.h"
#include "deflate/gzip_stream.h"
#include "deflate/inflate_decoder.h"
#include "deflate/zlib_stream.h"
#include "workloads/corpus.h"
#include "workloads/tpcds_gen.h"

using deflate::deflateCompress;
using deflate::deflateCompressWithDict;
using deflate::inflateDecompressWithDict;

TEST(Dictionary, RoundTripWithSharedPrefix)
{
    auto dict = workloads::makeJson(16384, 101);
    // Input that shares structure with the dictionary.
    auto input = workloads::makeJson(8192, 101);

    auto res = deflateCompressWithDict(input, dict);
    auto out = inflateDecompressWithDict(res.bytes, dict);
    ASSERT_TRUE(out.ok()) << deflate::toString(out.status);
    EXPECT_EQ(out.bytes, input);
}

TEST(Dictionary, ImprovesRatioOnSmallSimilarPayloads)
{
    // The DB-page use case: many small pages sharing a schema.
    workloads::TpcdsConfig cfg;
    auto dict = workloads::makeStoreSales(32768, cfg);
    cfg.seed = 777;
    auto page = workloads::makeStoreSales(4096, cfg);

    auto plain = deflateCompress(page);
    auto with = deflateCompressWithDict(page, dict);
    EXPECT_LT(with.bytes.size(), plain.bytes.size());

    auto out = inflateDecompressWithDict(with.bytes, dict);
    ASSERT_TRUE(out.ok());
    EXPECT_EQ(out.bytes, page);
}

TEST(Dictionary, WrongDictionaryFailsOrCorrupts)
{
    auto dict = workloads::makeText(8192, 102);
    auto wrong = workloads::makeText(8192, 103);
    auto input = workloads::makeText(4096, 102);

    auto res = deflateCompressWithDict(input, dict);
    auto out = inflateDecompressWithDict(res.bytes, wrong);
    // Decoding with the wrong dictionary either errors or produces
    // different bytes; it must never return the original content.
    if (out.ok()) {
        EXPECT_NE(out.bytes, input);
    }
}

TEST(Dictionary, EmptyDictEqualsPlain)
{
    auto input = workloads::makeLog(20000, 104);
    auto plain = deflateCompress(input);
    auto with = deflateCompressWithDict(input, {});
    auto out = inflateDecompressWithDict(with.bytes, {});
    ASSERT_TRUE(out.ok());
    EXPECT_EQ(out.bytes, input);
    // Same matcher, same blocks: identical streams expected.
    EXPECT_EQ(with.bytes, plain.bytes);
}

TEST(Dictionary, OnlyLast32KUsed)
{
    // A dictionary larger than the window: matches can only come from
    // the tail; the encoder must not emit distances past 32 KiB.
    auto dict = workloads::makeText(100000, 105);
    auto input = workloads::makeText(4096, 105);
    auto res = deflateCompressWithDict(input, dict);
    std::span<const uint8_t> tail(dict);
    tail = tail.subspan(dict.size() - deflate::kWindowSize);
    auto out = inflateDecompressWithDict(res.bytes, tail);
    ASSERT_TRUE(out.ok());
    EXPECT_EQ(out.bytes, input);
}

TEST(ZlibFdict, RoundTrip)
{
    auto dict = workloads::makeCsv(16384, 106);
    auto input = workloads::makeCsv(8192, 107);
    auto raw = deflateCompressWithDict(input, dict);
    auto stream = deflate::zlibWrapWithDict(raw.bytes, input, dict);
    auto res = deflate::zlibUnwrapWithDict(stream, dict);
    ASSERT_TRUE(res.ok) << res.error;
    EXPECT_EQ(res.inflate.bytes, input);
}

TEST(ZlibFdict, MissingDictionaryRejected)
{
    auto dict = workloads::makeCsv(4096, 108);
    auto input = workloads::makeCsv(2048, 109);
    auto raw = deflateCompressWithDict(input, dict);
    auto stream = deflate::zlibWrapWithDict(raw.bytes, input, dict);
    auto res = deflate::zlibUnwrapWithDict(stream, {});
    EXPECT_FALSE(res.ok);
    EXPECT_EQ(res.error, "dictionary required");
}

TEST(ZlibFdict, DictIdMismatchRejected)
{
    auto dict = workloads::makeCsv(4096, 110);
    auto wrong = workloads::makeCsv(4096, 111);
    auto input = workloads::makeCsv(2048, 112);
    auto raw = deflateCompressWithDict(input, dict);
    auto stream = deflate::zlibWrapWithDict(raw.bytes, input, dict);
    auto res = deflate::zlibUnwrapWithDict(stream, wrong);
    EXPECT_FALSE(res.ok);
    EXPECT_EQ(res.error, "DICTID mismatch");
}

TEST(ZlibFdict, PlainStreamStillDecodes)
{
    auto input = workloads::makeText(10000, 113);
    auto raw = deflateCompress(input);
    auto stream = deflate::zlibWrap(raw.bytes, input);
    auto res = deflate::zlibUnwrapWithDict(stream, {});
    ASSERT_TRUE(res.ok) << res.error;
    EXPECT_EQ(res.inflate.bytes, input);
}

TEST(GzipMultiMember, ConcatenationDecodes)
{
    auto a = workloads::makeText(30000, 114);
    auto b = workloads::makeLog(40000, 115);
    auto ma = deflate::gzipWrap(deflateCompress(a).bytes, a);
    auto mb = deflate::gzipWrap(deflateCompress(b).bytes, b);
    std::vector<uint8_t> file(ma);
    file.insert(file.end(), mb.begin(), mb.end());

    auto res = deflate::gzipUnwrapAll(file);
    ASSERT_TRUE(res.ok) << res.error;
    EXPECT_EQ(res.members, 2u);
    std::vector<uint8_t> both(a);
    both.insert(both.end(), b.begin(), b.end());
    EXPECT_EQ(res.bytes, both);
}

TEST(GzipMultiMember, SingleMemberStillWorks)
{
    auto a = workloads::makeText(5000, 116);
    auto ma = deflate::gzipWrap(deflateCompress(a).bytes, a);
    auto res = deflate::gzipUnwrapAll(ma);
    ASSERT_TRUE(res.ok);
    EXPECT_EQ(res.members, 1u);
    EXPECT_EQ(res.bytes, a);
}

TEST(GzipMultiMember, TrailingGarbageRejected)
{
    auto a = workloads::makeText(5000, 117);
    auto file = deflate::gzipWrap(deflateCompress(a).bytes, a);
    file.push_back(0x42);
    auto res = deflate::gzipUnwrapAll(file);
    EXPECT_FALSE(res.ok);
}

class CompressLargeTest : public ::testing::Test
{
  protected:
    core::NxDevice
    makeDualEngineDevice()
    {
        auto cfg = nx::NxConfig::power9();
        cfg.compressEnginesPerUnit = 2;
        cfg.decompressEnginesPerUnit = 2;
        return core::NxDevice(cfg);
    }
};

TEST_F(CompressLargeTest, RoundTrip)
{
    auto dev = makeDualEngineDevice();
    auto input = workloads::makeMixed(10 << 20, 118);
    auto c = dev.compressLarge(input, 2 << 20);
    ASSERT_TRUE(c.ok());
    auto d = dev.decompressLarge(c.data);
    ASSERT_TRUE(d.ok());
    EXPECT_EQ(d.data, input);
}

TEST_F(CompressLargeTest, ParallelismReducesModelledTime)
{
    auto input = workloads::makeText(8 << 20, 119);

    core::NxDevice one(nx::NxConfig::power9());
    auto serial = one.compress(input, nx::Framing::Gzip,
                               core::Mode::DhtSampled);
    ASSERT_TRUE(serial.ok());

    auto dev = makeDualEngineDevice();
    auto par = dev.compressLarge(input, 1 << 20);
    ASSERT_TRUE(par.ok());
    // Two engines in parallel: max-of-sums should be well below the
    // single-engine serial time.
    EXPECT_LT(par.seconds, serial.seconds * 0.7);
}

TEST_F(CompressLargeTest, OutputIsValidMultiMemberGzip)
{
    auto dev = makeDualEngineDevice();
    auto input = workloads::makeCsv(5 << 20, 120);
    auto c = dev.compressLarge(input, 1 << 20);
    ASSERT_TRUE(c.ok());
    auto res = deflate::gzipUnwrapAll(c.data);
    ASSERT_TRUE(res.ok) << res.error;
    EXPECT_EQ(res.members, 5u);
    EXPECT_EQ(res.bytes, input);
}

TEST_F(CompressLargeTest, EmptyInput)
{
    auto dev = makeDualEngineDevice();
    std::vector<uint8_t> empty;
    auto c = dev.compressLarge(empty);
    ASSERT_TRUE(c.ok());
    auto d = dev.decompressLarge(c.data);
    ASSERT_TRUE(d.ok());
    EXPECT_TRUE(d.data.empty());
}
