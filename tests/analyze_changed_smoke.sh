#!/usr/bin/env sh
# Smoke test for tools/analyze_changed.sh against a synthetic
# two-commit repository. Exercises the properties the script
# guarantees rather than any particular analyzer's rule set:
#
#  1. changed-file selection is quote-safe: a filename containing a
#     space ("src/bad name.cc") must reach the analyzers as a single
#     operand, or the driver's finding filter never matches it and
#     the expected taint finding disappears;
#  2. `--` forwards analyzer args verbatim (--format=sarif shows up
#     as SARIF on stdout);
#  3. an unchanged tree exits 0 with the "no changed source files"
#     notice;
#  4. a bogus NXSIM_ANALYZE_BINDIR is a usage error (exit 2).
#
# Usage: analyze_changed_smoke.sh <repo-source-dir> <build-dir>
#
# Exits 77 (ctest SKIP_RETURN_CODE) when git is unavailable.
set -eu

src=${1:?usage: analyze_changed_smoke.sh <repo-source-dir> <build-dir>}
bindir=${2:?usage: analyze_changed_smoke.sh <repo-source-dir> <build-dir>}

command -v git >/dev/null 2>&1 || {
    echo "analyze_changed_smoke: git not available, skipping"
    exit 77
}

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT INT TERM

fail()
{
    echo "analyze_changed_smoke: FAIL: $1" >&2
    exit 1
}

# --- Build the synthetic repo: two commits, the second adding a
# taint-vulnerable file whose name contains a space. ---------------
cd "$tmp"
git init -q .
git config user.email smoke@example.invalid
git config user.name smoke
git config commit.gpgsign false

mkdir -p src tools
cp "$src/tools/analyze_changed.sh" tools/analyze_changed.sh

cat > src/clean.cc <<'EOF'
int
answer()
{
    return 42;
}
EOF
git add -A
git commit -qm "baseline"

cat > "src/bad name.cc" <<'EOF'
#include <cstdint>
#include <vector>

struct BitReader
{
    uint32_t readBits(int n);
};

void
grow(BitReader &br, std::vector<uint8_t> &out)
{
    unsigned n = br.readBits(16);
    out.resize(n);
}
EOF
git add -A
git commit -qm "add vulnerable file with a space in its name"

export NXSIM_ANALYZE_BINDIR="$bindir"

# --- 1. Quote-safe selection: the spaced filename must surface the
# taint-alloc-size finding (exit 1). -------------------------------
status=0
out=$(sh tools/analyze_changed.sh HEAD~1 2>&1) || status=$?
[ "$status" = 1 ] || fail "expected exit 1 on vulnerable diff, got $status: $out"
case $out in
  *"bad name.cc"*taint-alloc-size*|*taint-alloc-size*"bad name.cc"*) ;;
  *) fail "taint finding for 'src/bad name.cc' missing from: $out" ;;
esac

# --- 2. `--` forwarding: SARIF on stdout. -------------------------
status=0
out=$(sh tools/analyze_changed.sh HEAD~1 -- --format=sarif 2>&1) || status=$?
[ "$status" = 1 ] || fail "expected exit 1 with forwarded args, got $status"
case $out in
  *'"ruleId": "taint-alloc-size"'*) ;;
  *) fail "forwarded --format=sarif did not produce SARIF: $out" ;;
esac
case $out in
  *'"uri": "src/bad name.cc"'*) ;;
  *) fail "SARIF result does not name the spaced file: $out" ;;
esac

# --- 3. Empty diff: clean exit and the notice. --------------------
status=0
out=$(sh tools/analyze_changed.sh HEAD 2>&1) || status=$?
[ "$status" = 0 ] || fail "expected exit 0 on empty diff, got $status: $out"
case $out in
  *"no changed source files"*) ;;
  *) fail "empty diff did not print the notice: $out" ;;
esac

# --- 4. Bogus bindir is a usage error. ----------------------------
status=0
out=$(NXSIM_ANALYZE_BINDIR="$tmp/nonexistent" \
      sh tools/analyze_changed.sh HEAD~1 2>&1) || status=$?
[ "$status" = 2 ] || fail "expected exit 2 on bogus bindir, got $status: $out"

echo "analyze_changed_smoke: PASS"
