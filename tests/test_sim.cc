/**
 * @file
 * Simulation substrate tests: ticks/frequency math, event-queue
 * ordering and determinism, and the DMA port cost model.
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.h"
#include "sim/memory_model.h"
#include "sim/ticks.h"

using sim::ceilDiv;
using sim::DmaParams;
using sim::DmaPort;
using sim::EventQueue;
using sim::Frequency;
using sim::Tick;

TEST(Frequency, Conversions)
{
    Frequency f(2.0e9);
    EXPECT_DOUBLE_EQ(f.ghz(), 2.0);
    EXPECT_DOUBLE_EQ(f.toSeconds(2000000000ull), 1.0);
    EXPECT_EQ(f.fromSeconds(1.0), 2000000000ull);
    EXPECT_EQ(f.fromSeconds(0.0), 0ull);
}

TEST(Frequency, RateComputation)
{
    Frequency f(1.0e9);
    // 1e9 bytes in 1e9 cycles at 1 GHz = 1 GB/s.
    EXPECT_DOUBLE_EQ(f.rate(1000000000ull, 1000000000ull), 1.0e9);
    EXPECT_DOUBLE_EQ(f.rate(100, 0), 0.0);
}

TEST(CeilDiv, Basics)
{
    EXPECT_EQ(ceilDiv(0, 8), 0u);
    EXPECT_EQ(ceilDiv(1, 8), 1u);
    EXPECT_EQ(ceilDiv(8, 8), 1u);
    EXPECT_EQ(ceilDiv(9, 8), 2u);
}

TEST(EventQueue, RunsInTimeOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(30, [&] { order.push_back(3); });
    eq.schedule(10, [&] { order.push_back(1); });
    eq.schedule(20, [&] { order.push_back(2); });
    eq.run();
    ASSERT_EQ(order.size(), 3u);
    EXPECT_EQ(order[0], 1);
    EXPECT_EQ(order[1], 2);
    EXPECT_EQ(order[2], 3);
    EXPECT_EQ(eq.now(), 30u);
}

TEST(EventQueue, SameTickIsFifo)
{
    EventQueue eq;
    std::vector<int> order;
    for (int i = 0; i < 10; ++i)
        eq.schedule(5, [&order, i] { order.push_back(i); });
    eq.run();
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(EventQueue, HandlersCanSchedule)
{
    EventQueue eq;
    int fired = 0;
    std::function<void()> chain = [&] {
        ++fired;
        if (fired < 5)
            eq.scheduleIn(10, chain);
    };
    eq.schedule(0, chain);
    eq.run();
    EXPECT_EQ(fired, 5);
    EXPECT_EQ(eq.now(), 40u);
}

TEST(EventQueue, HorizonStopsExecution)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(10, [&] { ++fired; });
    eq.schedule(100, [&] { ++fired; });
    eq.run(50);
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(eq.now(), 50u);
    EXPECT_EQ(eq.pending(), 1u);
}

#if NXSIM_CONTRACTS_ENABLED

// Scheduling in the past used to silently clamp to now(), which hid
// stale-tick bugs in the dispatch models. It is now a contract
// violation — see EventQueue::schedule.
TEST(EventQueueDeathTest, PastSchedulingAborts)
{
    EXPECT_DEATH(
        {
            EventQueue eq;
            eq.schedule(100, [&] {
                eq.schedule(5, [] {});    // in the past
            });
            eq.run();
        },
        "event scheduled in the past");
}

TEST(EventQueueDeathTest, ScheduleInOverflowAborts)
{
    EXPECT_DEATH(
        {
            EventQueue eq;
            eq.schedule(100, [&] { eq.scheduleIn(~Tick{0}, [] {}); });
            eq.run();
        },
        "add overflow");
}

#endif // NXSIM_CONTRACTS_ENABLED

TEST(EventQueue, SchedulingAtNowIsAllowed)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(100, [&] {
        eq.schedule(eq.now(), [&] { ++fired; });    // same tick: legal
    });
    eq.run();
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(eq.now(), 100u);
}

TEST(DmaPort, ZeroBytesIsFree)
{
    DmaPort port{DmaParams{}};
    EXPECT_EQ(port.transferCycles(0), 0u);
}

TEST(DmaPort, CostScalesWithSize)
{
    DmaParams p;
    p.bytesPerCycle = 64.0;
    p.startupCycles = 100;
    p.perPageCycles = 4;
    DmaPort port{p};
    Tick small = port.transferCycles(4096);
    Tick big = port.transferCycles(1 << 20);
    EXPECT_GT(big, small);
    // 1 MiB at 64 B/cycle = 16384 data cycles + 256 pages * 4 + 100.
    EXPECT_EQ(big, 16384u + 1024u + 100u);
}

TEST(DmaPort, StartupDominatesSmallTransfers)
{
    DmaParams p;
    p.startupCycles = 1000;
    DmaPort port{p};
    Tick t = port.transferCycles(64);
    EXPECT_GE(t, 1000u);
    EXPECT_LE(t, 1010u);
}

TEST(DmaPort, StatsAccumulate)
{
    DmaPort port{DmaParams{}};
    port.recordTransfer(4096);
    port.recordTransfer(4096);
    EXPECT_EQ(port.stats().get("transfers"), 2u);
    EXPECT_EQ(port.stats().get("bytes"), 8192u);
    EXPECT_GT(port.stats().get("cycles"), 0u);
}
