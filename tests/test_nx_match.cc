/**
 * @file
 * Accelerator match-stage tests: banked hash table semantics, the
 * match pipeline's functional correctness (token streams reproduce the
 * input) and its timing behaviour (streaming floor, stalls, the
 * compressible-runs-faster effect).
 */

#include <gtest/gtest.h>

#include "deflate/lz77.h"
#include "nx/hash_table.h"
#include "nx/match_pipeline.h"
#include "workloads/corpus.h"

using nx::BankedHashTable;
using nx::HashConfig;
using nx::MatchPipeline;
using nx::NxConfig;

TEST(BankedHashTable, InsertAndLookupRecencyOrder)
{
    HashConfig cfg;
    cfg.indexBits = 4;
    cfg.ways = 4;
    BankedHashTable t(cfg);
    t.insert(3, 100);
    t.insert(3, 200);
    t.insert(3, 300);
    auto hits = t.lookup(3);
    ASSERT_EQ(hits.size(), 3u);
    EXPECT_EQ(hits[0], 300u);
    EXPECT_EQ(hits[1], 200u);
    EXPECT_EQ(hits[2], 100u);
}

TEST(BankedHashTable, EvictsOldestBeyondWays)
{
    HashConfig cfg;
    cfg.indexBits = 4;
    cfg.ways = 2;
    BankedHashTable t(cfg);
    t.insert(7, 1);
    t.insert(7, 2);
    t.insert(7, 3);    // evicts 1
    auto hits = t.lookup(7);
    ASSERT_EQ(hits.size(), 2u);
    EXPECT_EQ(hits[0], 3u);
    EXPECT_EQ(hits[1], 2u);
}

TEST(BankedHashTable, ClearForgets)
{
    HashConfig cfg;
    BankedHashTable t(cfg);
    t.insert(0, 42);
    t.clear();
    EXPECT_TRUE(t.lookup(0).empty());
}

TEST(BankedHashTable, HashUsesMinMatchPrefix)
{
    HashConfig cfg;
    cfg.minMatch = 4;
    BankedHashTable t(cfg);
    const uint8_t a[] = {1, 2, 3, 4, 0};
    const uint8_t b[] = {1, 2, 3, 5, 0};
    // Differing 4th byte must (usually) change the hash; at minimum the
    // function must read it. Weak check: not guaranteed different, but
    // with this hash they are.
    EXPECT_NE(t.hashAt(a), t.hashAt(b));
}

TEST(BankedHashTable, SramBitsScaleWithGeometry)
{
    HashConfig small;
    small.indexBits = 10;
    HashConfig big;
    big.indexBits = 14;
    EXPECT_GT(BankedHashTable(big).sramBits(),
              BankedHashTable(small).sramBits() * 8);
}

class MatchPipelineTest : public ::testing::Test
{
  protected:
    NxConfig cfg_ = NxConfig::power9();
};

TEST_F(MatchPipelineTest, TokensReproduceText)
{
    auto input = workloads::makeText(256 * 1024, 21);
    MatchPipeline pipe(cfg_);
    auto res = pipe.run(input);
    EXPECT_TRUE(deflate::tokensReproduce(res.tokens, input));
}

TEST_F(MatchPipelineTest, TokensReproduceAllCorpusMembers)
{
    for (const auto &file : workloads::standardCorpus(64 * 1024)) {
        MatchPipeline pipe(cfg_);
        auto res = pipe.run(file.data);
        EXPECT_TRUE(deflate::tokensReproduce(res.tokens, file.data))
            << file.name;
    }
}

TEST_F(MatchPipelineTest, EmptyInput)
{
    MatchPipeline pipe(cfg_);
    auto res = pipe.run({});
    EXPECT_TRUE(res.tokens.empty());
    EXPECT_EQ(res.cycles, 0u);
}

TEST_F(MatchPipelineTest, StreamingFloorRespected)
{
    auto input = workloads::makeRandom(64 * 1024, 22);
    MatchPipeline pipe(cfg_);
    auto res = pipe.run(input);
    uint64_t floor = (input.size() +
        static_cast<size_t>(cfg_.compressBytesPerCycle) - 1) /
        static_cast<size_t>(cfg_.compressBytesPerCycle);
    EXPECT_GE(res.cycles, floor);
    EXPECT_EQ(res.rows, floor);
}

TEST_F(MatchPipelineTest, CompressibleDataRunsNoSlower)
{
    auto text = workloads::makeText(1 << 20, 23);
    auto rand = workloads::makeRandom(1 << 20, 24);
    MatchPipeline p1(cfg_);
    MatchPipeline p2(cfg_);
    auto rText = p1.run(text);
    auto rRand = p2.run(rand);
    // Matches cover bytes without lookups, so compressible input needs
    // no more cycles (typically fewer stalls).
    EXPECT_LE(rText.cycles, rRand.cycles + rRand.cycles / 10);
    EXPECT_LT(rText.lookups, rRand.lookups);
}

TEST_F(MatchPipelineTest, WindowLimitRespected)
{
    // Repeat a chunk beyond the 32 KiB window; matches must not refer
    // farther back than the window.
    auto chunk = workloads::makeText(1024, 25);
    std::vector<uint8_t> input;
    auto filler = workloads::makeRandom(40000, 26);
    input.insert(input.end(), chunk.begin(), chunk.end());
    input.insert(input.end(), filler.begin(), filler.end());
    input.insert(input.end(), chunk.begin(), chunk.end());

    MatchPipeline pipe(cfg_);
    auto res = pipe.run(input);
    ASSERT_TRUE(deflate::tokensReproduce(res.tokens, input));
    for (const auto &t : res.tokens) {
        if (!t.isLiteral()) {
            EXPECT_LE(t.dist, cfg_.windowBytes);
        }
    }
}

TEST_F(MatchPipelineTest, MinMatchRespected)
{
    auto input = workloads::makeMixed(128 * 1024, 27);
    MatchPipeline pipe(cfg_);
    auto res = pipe.run(input);
    for (const auto &t : res.tokens) {
        if (!t.isLiteral()) {
            EXPECT_GE(t.length, cfg_.hash.minMatch);
        }
    }
}

TEST_F(MatchPipelineTest, WiderPipeFewerCycles)
{
    auto input = workloads::makeText(1 << 20, 28);
    NxConfig narrow = cfg_;
    narrow.compressBytesPerCycle = 2;
    NxConfig wide = cfg_;
    wide.compressBytesPerCycle = 8;
    MatchPipeline pn(narrow);
    MatchPipeline pw(wide);
    auto rn = pn.run(input);
    auto rw = pw.run(input);
    EXPECT_LT(rw.cycles, rn.cycles);
    // Tokens are identical — the pipe width is timing-only.
    ASSERT_EQ(rw.tokens.size(), rn.tokens.size());
}

TEST_F(MatchPipelineTest, MatchQualityBelowSoftwareLevel9)
{
    // The paper's trade-off: hardware's way-limited table finds fewer /
    // shorter matches than software's deep chains.
    auto input = workloads::makeText(512 * 1024, 29);
    MatchPipeline pipe(cfg_);
    auto hw = pipe.run(input);

    deflate::Lz77Matcher sw(deflate::levelParams(9));
    auto swTokens = sw.tokenize(input);

    auto hwStats = deflate::summarize(hw.tokens);
    auto swStats = deflate::summarize(swTokens);
    // Software should cover at least as many bytes with matches.
    EXPECT_GE(swStats.matchedBytes + swStats.matchedBytes / 20,
              hwStats.matchedBytes);
}

TEST_F(MatchPipelineTest, DeterministicAcrossRuns)
{
    auto input = workloads::makeJson(128 * 1024, 30);
    MatchPipeline p1(cfg_);
    MatchPipeline p2(cfg_);
    auto r1 = p1.run(input);
    auto r2 = p2.run(input);
    EXPECT_EQ(r1.cycles, r2.cycles);
    ASSERT_EQ(r1.tokens.size(), r2.tokens.size());
}

TEST_F(MatchPipelineTest, StatsAccumulateAcrossRuns)
{
    auto input = workloads::makeText(64 * 1024, 31);
    MatchPipeline pipe(cfg_);
    (void)pipe.run(input);
    uint64_t after1 = pipe.stats().get("cycles");
    (void)pipe.run(input);
    EXPECT_EQ(pipe.stats().get("runs"), 2u);
    EXPECT_GT(pipe.stats().get("cycles"), after1);
}
