/**
 * @file
 * Unit tests for LSB-first bit packing, byte alignment, peek/consume and
 * overrun semantics of util::BitWriter / util::BitReader.
 */

#include <gtest/gtest.h>

#include "util/bitstream.h"

using util::BitReader;
using util::BitWriter;
using util::reverseBits;

TEST(BitWriter, PacksLsbFirst)
{
    BitWriter bw;
    bw.writeBits(0b1, 1);
    bw.writeBits(0b01, 2);
    bw.writeBits(0b10110, 5);
    auto bytes = bw.take();
    ASSERT_EQ(bytes.size(), 1u);
    // bit0=1, bits1-2=01, bits3-7=10110 -> 0b10110'01'1
    EXPECT_EQ(bytes[0], 0b10110011);
}

TEST(BitWriter, AlignPadsWithZeros)
{
    BitWriter bw;
    bw.writeBits(0b11, 2);
    bw.alignToByte();
    bw.writeByte(0xab);
    auto bytes = bw.take();
    ASSERT_EQ(bytes.size(), 2u);
    EXPECT_EQ(bytes[0], 0b00000011);
    EXPECT_EQ(bytes[1], 0xab);
}

TEST(BitWriter, LittleEndianHelpers)
{
    BitWriter bw;
    bw.writeU16le(0x1234);
    bw.writeU32le(0xdeadbeef);
    auto bytes = bw.take();
    ASSERT_EQ(bytes.size(), 6u);
    EXPECT_EQ(bytes[0], 0x34);
    EXPECT_EQ(bytes[1], 0x12);
    EXPECT_EQ(bytes[2], 0xef);
    EXPECT_EQ(bytes[3], 0xbe);
    EXPECT_EQ(bytes[4], 0xad);
    EXPECT_EQ(bytes[5], 0xde);
}

TEST(BitWriter, BitsWrittenTracksUnflushed)
{
    BitWriter bw;
    EXPECT_EQ(bw.bitsWritten(), 0u);
    bw.writeBits(0x7, 3);
    EXPECT_EQ(bw.bitsWritten(), 3u);
    bw.writeBits(0xff, 8);
    EXPECT_EQ(bw.bitsWritten(), 11u);
}

TEST(BitReader, ReadsBackWhatWriterWrote)
{
    BitWriter bw;
    bw.writeBits(0x5, 3);
    bw.writeBits(0x1234, 16);
    bw.writeBits(0x1, 1);
    bw.writeBits(0xabcde, 20);
    auto bytes = bw.take();

    BitReader br(bytes);
    EXPECT_EQ(br.readBits(3), 0x5u);
    EXPECT_EQ(br.readBits(16), 0x1234u);
    EXPECT_EQ(br.readBits(1), 0x1u);
    EXPECT_EQ(br.readBits(20), 0xabcdeu);
    EXPECT_FALSE(br.overrun());
}

TEST(BitReader, PeekDoesNotConsume)
{
    std::vector<uint8_t> data = {0xa5, 0x5a};
    BitReader br(data);
    EXPECT_EQ(br.peekBits(8), 0xa5u);
    EXPECT_EQ(br.peekBits(8), 0xa5u);
    br.consumeBits(4);
    EXPECT_EQ(br.peekBits(8), 0xaau);    // low nibble of 0x5a ++ high of a5
}

TEST(BitReader, OverrunFlagsOnPastEnd)
{
    std::vector<uint8_t> data = {0xff};
    BitReader br(data);
    EXPECT_EQ(br.readBits(8), 0xffu);
    EXPECT_FALSE(br.overrun());
    br.readBits(1);
    EXPECT_TRUE(br.overrun());
}

TEST(BitReader, AlignDiscardsPartialByte)
{
    std::vector<uint8_t> data = {0b00000111, 0x42};
    BitReader br(data);
    EXPECT_EQ(br.readBits(3), 0b111u);
    br.alignToByte();
    EXPECT_EQ(br.readBits(8), 0x42u);
}

TEST(BitReader, ReadBytesDrainsBitBufferFirst)
{
    std::vector<uint8_t> data = {0x01, 0x02, 0x03, 0x04};
    BitReader br(data);
    EXPECT_EQ(br.readBits(8), 0x01u);
    uint8_t out[3];
    ASSERT_TRUE(br.readBytes(out, 3));
    EXPECT_EQ(out[0], 0x02);
    EXPECT_EQ(out[1], 0x03);
    EXPECT_EQ(out[2], 0x04);
    EXPECT_TRUE(br.exhausted());
}

TEST(BitReader, BytesConsumedRoundsUp)
{
    std::vector<uint8_t> data = {0xff, 0xff, 0xff};
    BitReader br(data);
    br.readBits(3);
    EXPECT_EQ(br.bytesConsumed(), 1u);
    br.readBits(8);
    EXPECT_EQ(br.bytesConsumed(), 2u);
}

TEST(ReverseBits, KnownValues)
{
    EXPECT_EQ(reverseBits(0b1, 1), 0b1u);
    EXPECT_EQ(reverseBits(0b100, 3), 0b001u);
    EXPECT_EQ(reverseBits(0b1011, 4), 0b1101u);
    EXPECT_EQ(reverseBits(0x1, 15), 0x4000u);
}

TEST(ReverseBits, Involution)
{
    for (uint32_t v = 0; v < 256; ++v)
        EXPECT_EQ(reverseBits(reverseBits(v, 9), 9), v);
}
