/**
 * @file
 * CRC-32 and Adler-32 against published test vectors, plus incremental
 * update equivalence.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "util/adler32.h"
#include "util/crc32.h"

namespace {

std::vector<uint8_t>
bytesOf(const std::string &s)
{
    return {s.begin(), s.end()};
}

} // namespace

TEST(Crc32, EmptyIsZero)
{
    EXPECT_EQ(util::crc32({}), 0u);
}

TEST(Crc32, KnownVectors)
{
    // Standard check value for "123456789".
    EXPECT_EQ(util::crc32(bytesOf("123456789")), 0xcbf43926u);
    EXPECT_EQ(util::crc32(bytesOf("a")), 0xe8b7be43u);
    EXPECT_EQ(util::crc32(bytesOf("abc")), 0x352441c2u);
    EXPECT_EQ(util::crc32(bytesOf(
        "The quick brown fox jumps over the lazy dog")), 0x414fa339u);
}

TEST(Crc32, IncrementalMatchesOneShot)
{
    auto data = bytesOf("hello, incremental crc world");
    util::Crc32 inc;
    for (size_t i = 0; i < data.size(); i += 3) {
        size_t n = std::min<size_t>(3, data.size() - i);
        inc.update(std::span<const uint8_t>(data.data() + i, n));
    }
    EXPECT_EQ(inc.value(), util::crc32(data));
}

TEST(Crc32, ResetRestores)
{
    util::Crc32 c;
    c.update(bytesOf("junk"));
    c.reset();
    c.update(bytesOf("123456789"));
    EXPECT_EQ(c.value(), 0xcbf43926u);
}

TEST(Adler32, EmptyIsOne)
{
    EXPECT_EQ(util::adler32({}), 1u);
}

TEST(Adler32, KnownVectors)
{
    // RFC 1950 example value for "Wikipedia".
    EXPECT_EQ(util::adler32(bytesOf("Wikipedia")), 0x11e60398u);
    EXPECT_EQ(util::adler32(bytesOf("a")), 0x00620062u);
    EXPECT_EQ(util::adler32(bytesOf("abc")), 0x024d0127u);
}

TEST(Adler32, IncrementalMatchesOneShot)
{
    std::vector<uint8_t> data(100000);
    for (size_t i = 0; i < data.size(); ++i)
        data[i] = static_cast<uint8_t>(i * 31 + 7);
    util::Adler32 inc;
    for (size_t i = 0; i < data.size(); i += 7777) {
        size_t n = std::min<size_t>(7777, data.size() - i);
        inc.update(std::span<const uint8_t>(data.data() + i, n));
    }
    EXPECT_EQ(inc.value(), util::adler32(data));
}

TEST(Crc32Combine, MatchesDirectConcatenation)
{
    auto a = bytesOf("the first chunk of a split stream");
    auto b = bytesOf("and the second, checksummed independently");
    uint32_t ca = util::crc32(a);
    uint32_t cb = util::crc32(b);
    std::vector<uint8_t> ab(a);
    ab.insert(ab.end(), b.begin(), b.end());
    EXPECT_EQ(util::crc32Combine(ca, cb, b.size()), util::crc32(ab));
}

TEST(Crc32Combine, EmptySecondChunkIsIdentity)
{
    auto a = bytesOf("only one chunk");
    uint32_t ca = util::crc32(a);
    EXPECT_EQ(util::crc32Combine(ca, util::crc32({}), 0), ca);
}

TEST(Crc32Combine, ManySplitsAssociative)
{
    std::vector<uint8_t> data(100000);
    for (size_t i = 0; i < data.size(); ++i)
        data[i] = static_cast<uint8_t>(i * 131 + 5);
    uint32_t whole = util::crc32(data);

    // Combine 7 uneven chunks left to right.
    size_t cuts[] = {13, 1000, 4096, 4097, 60000, 99999, 100000};
    uint32_t acc = 0;
    bool first = true;
    size_t prev = 0;
    for (size_t cut : cuts) {
        std::span<const uint8_t> part(data.data() + prev, cut - prev);
        uint32_t c = util::crc32(part);
        acc = first ? c : util::crc32Combine(acc, c, part.size());
        first = false;
        prev = cut;
    }
    EXPECT_EQ(acc, whole);
}

TEST(Adler32Combine, MatchesDirectConcatenation)
{
    auto a = bytesOf("adler first piece");
    auto b = bytesOf("adler second piece with more bytes");
    uint32_t ca = util::adler32(a);
    uint32_t cb = util::adler32(b);
    std::vector<uint8_t> ab(a);
    ab.insert(ab.end(), b.begin(), b.end());
    EXPECT_EQ(util::adler32Combine(ca, cb, b.size()),
              util::adler32(ab));
}

TEST(Adler32Combine, LongSecondChunk)
{
    std::vector<uint8_t> a(70000, 0xab);
    std::vector<uint8_t> b(130001);
    for (size_t i = 0; i < b.size(); ++i)
        b[i] = static_cast<uint8_t>(i);
    std::vector<uint8_t> ab(a);
    ab.insert(ab.end(), b.begin(), b.end());
    EXPECT_EQ(util::adler32Combine(util::adler32(a), util::adler32(b),
                                   b.size()),
              util::adler32(ab));
}

TEST(Adler32, LargeBufferModularReduction)
{
    // Exceeds the deferred-reduction chunk (kNmax) multiple times with
    // max-value bytes, stressing the modular arithmetic.
    std::vector<uint8_t> data(1 << 16, 0xff);
    uint32_t v = util::adler32(data);
    // Reference computed with the definition directly.
    uint32_t a = 1, b = 0;
    for (uint8_t byte : data) {
        a = (a + byte) % 65521;
        b = (b + a) % 65521;
    }
    EXPECT_EQ(v, (b << 16) | a);
}
