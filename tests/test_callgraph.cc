/**
 * @file
 * Call-graph construction edge cases (tools/common/callgraph.h): the
 * definition scanner across free/method/out-of-line/constructor forms,
 * overload resolution by arity, receiver typing through references and
 * pointers, recursion and mutual-recursion SCCs with the bottom-up
 * fixpoint, and the degrade-to-unknown contract for externals —
 * unresolved must mean target < 0, never a wrong edge.
 */

#include <map>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/callgraph.h"

namespace {

using nxcommon::CallGraph;
using nxcommon::CallSite;
using nxcommon::FunctionDef;
using nxcommon::SourceFile;

CallGraph
graphOf(const std::string &content)
{
    return CallGraph::build({SourceFile{"src/x.cc", content}});
}

const FunctionDef *
fn(const CallGraph &g, std::string_view name, std::string_view cls = "")
{
    for (const FunctionDef &f : g.functions())
        if (f.name == name && f.cls == cls)
            return &f;
    return nullptr;
}

int
idOf(const CallGraph &g, std::string_view name, std::string_view cls = "")
{
    for (size_t i = 0; i < g.functions().size(); ++i)
        if (g.functions()[i].name == name && g.functions()[i].cls == cls)
            return static_cast<int>(i);
    return -1;
}

/** The resolved callee name set of @p caller — matched by name alone,
 * so class members work too ("" entries mean unresolved). */
std::vector<std::string>
calleesOf(const CallGraph &g, std::string_view caller)
{
    std::vector<std::string> out;
    int id = -1;
    for (size_t i = 0; i < g.functions().size(); ++i)
        if (g.functions()[i].name == caller)
            id = static_cast<int>(i);
    if (id < 0)
        return out;
    for (const CallSite &cs : g.callsOf(id))
        out.push_back(cs.target < 0
                          ? std::string{}
                          : g.functions()[static_cast<size_t>(cs.target)]
                                .name);
    return out;
}

// ---------------------------------------------------------------------------
// definitions
// ---------------------------------------------------------------------------

TEST(CallgraphDefs, FreeMethodAndOutOfLineForms)
{
    auto g = graphOf(
        "int twice(int x) { return x * 2; }\n"
        "class Codec {\n"
        "  public:\n"
        "    int encode(int v) { return v; }\n"
        "    int decode(int v);\n"
        "};\n"
        "int Codec::decode(int v) { return v; }\n");
    ASSERT_NE(fn(g, "twice"), nullptr);
    EXPECT_EQ(fn(g, "twice")->returnType, "int");
    EXPECT_EQ(fn(g, "twice")->params, std::vector<std::string>{"x"});
    ASSERT_NE(fn(g, "encode", "Codec"), nullptr);
    ASSERT_NE(fn(g, "decode", "Codec"), nullptr)
        << "out-of-line Codec::decode must carry its class";
    EXPECT_EQ(fn(g, "decode", "Codec")->line, 7);
}

TEST(CallgraphDefs, ConstructorInitializerListAndDestructor)
{
    auto g = graphOf(
        "class Pool {\n"
        "  public:\n"
        "    Pool(int n, int k) : n_(n), k_{k} { setup(); }\n"
        "    ~Pool() { teardown(); }\n"
        "  private:\n"
        "    void setup() {}\n"
        "    void teardown() {}\n"
        "    int n_;\n"
        "    int k_;\n"
        "};\n");
    const FunctionDef *ctor = fn(g, "Pool", "Pool");
    ASSERT_NE(ctor, nullptr);
    EXPECT_EQ(ctor->params, (std::vector<std::string>{"n", "k"}));
    ASSERT_NE(fn(g, "~Pool", "Pool"), nullptr);
    // Bodies behind an initializer list still get their calls.
    EXPECT_EQ(calleesOf(g, "Pool"),
              std::vector<std::string>{"setup"});
}

TEST(CallgraphDefs, TrailingReturnTypeAndQualifiers)
{
    auto g = graphOf(
        "struct S {\n"
        "    auto size() const noexcept -> unsigned { return 0; }\n"
        "};\n"
        "std::vector<int> make() { return {}; }\n");
    ASSERT_NE(fn(g, "size", "S"), nullptr);
    ASSERT_NE(fn(g, "make"), nullptr);
    EXPECT_EQ(fn(g, "make")->returnType, "vector");
}

TEST(CallgraphDefs, ControlBlocksAreNotFunctions)
{
    auto g = graphOf(
        "void f(int n) {\n"
        "    if (n > 0) { n = 1; }\n"
        "    for (int i = 0; i < n; ++i) { n += i; }\n"
        "    while (n) { --n; }\n"
        "    switch (n) { default: break; }\n"
        "}\n");
    EXPECT_EQ(g.functions().size(), 1u);
}

TEST(CallgraphDefs, DefaultArgumentsLowerMinArity)
{
    auto g = graphOf("void send(int a, int b = 0, int c = 1) {}\n");
    const FunctionDef *f = fn(g, "send");
    ASSERT_NE(f, nullptr);
    EXPECT_EQ(f->params.size(), 3u);
    EXPECT_EQ(f->minArity, 1u);
}

// ---------------------------------------------------------------------------
// resolution
// ---------------------------------------------------------------------------

TEST(CallgraphResolve, OverloadsByArity)
{
    auto g = graphOf(
        "int enc(int a) { return a; }\n"
        "int enc(int a, int b) { return a + b; }\n"
        "int use() { return enc(1) + enc(1, 2); }\n");
    int one = idOf(g, "use");
    ASSERT_GE(one, 0);
    const auto &calls = g.callsOf(one);
    ASSERT_EQ(calls.size(), 2u);
    ASSERT_GE(calls[0].target, 0);
    ASSERT_GE(calls[1].target, 0);
    EXPECT_EQ(g.functions()[static_cast<size_t>(calls[0].target)]
                  .params.size(),
              1u);
    EXPECT_EQ(g.functions()[static_cast<size_t>(calls[1].target)]
                  .params.size(),
              2u);
}

TEST(CallgraphResolve, AmbiguousArityDegradesToUnknown)
{
    auto g = graphOf(
        "int enc(int a) { return a; }\n"
        "int enc(long a) { return 0; }\n"
        "int use() { return enc(1); }\n");
    const auto &calls = g.callsOf(idOf(g, "use"));
    ASSERT_EQ(calls.size(), 1u);
    EXPECT_LT(calls[0].target, 0)
        << "two same-arity candidates must not resolve arbitrarily";
}

TEST(CallgraphResolve, MethodCallsThroughReferencesAndPointers)
{
    auto g = graphOf(
        "class Codec {\n"
        "  public:\n"
        "    int encode(int v) { return v; }\n"
        "};\n"
        "int byRef(Codec &c) { return c.encode(1); }\n"
        "int byPtr(Codec *c) { return c->encode(2); }\n"
        "int byLocal() {\n"
        "    Codec c;\n"
        "    return c.encode(3);\n"
        "}\n");
    for (const char *caller : {"byRef", "byPtr", "byLocal"}) {
        auto callees = calleesOf(g, caller);
        ASSERT_EQ(callees.size(), 1u) << caller;
        EXPECT_EQ(callees[0], "encode") << caller;
    }
}

TEST(CallgraphResolve, ThisAndUnqualifiedCallsResolveInClass)
{
    auto g = graphOf(
        "class Srv {\n"
        "  public:\n"
        "    void run() {\n"
        "        step();\n"
        "        this->step();\n"
        "    }\n"
        "  private:\n"
        "    void step() {}\n"
        "};\n");
    auto callees = calleesOf(g, "run");
    ASSERT_EQ(callees.size(), 2u);
    EXPECT_EQ(callees[0], "step");
    EXPECT_EQ(callees[1], "step");
}

TEST(CallgraphResolve, UnresolvedExternalsDegradeToUnknownCallee)
{
    auto g = graphOf(
        "void f(std::vector<int> &v, int n) {\n"
        "    v.resize(n);\n"
        "    std::sort(v.begin(), v.end());\n"
        "    memcpy(nullptr, nullptr, 0);\n"
        "    NXSIM_EXPECT(n > 0, \"positive\");\n"
        "}\n");
    const auto &calls = g.callsOf(idOf(g, "f"));
    ASSERT_GE(calls.size(), 4u);
    for (const CallSite &cs : calls)
        EXPECT_LT(cs.target, 0) << cs.name
                                << " has no in-tree definition";
}

TEST(CallgraphResolve, DeclarationsAreNotCalls)
{
    auto g = graphOf(
        "class Codec { public: int encode(int v) { return v; } };\n"
        "void f() {\n"
        "    Codec c;\n"
        "    int encode = 0;\n"
        "    (void)encode;\n"
        "}\n"
        "int g2() { Codec helper(); return 0; }\n");
    // `Codec helper()` is the most-vexing-parse declaration: an ident
    // directly before the name means declaration, not call.
    EXPECT_TRUE(g.callsOf(idOf(g, "g2")).empty());
    EXPECT_TRUE(g.callsOf(idOf(g, "f")).empty());
}

TEST(CallgraphResolve, CrossFileOutOfLineResolution)
{
    auto g = CallGraph::build(
        {SourceFile{"src/a.h",
                    "class Pump {\n"
                    "  public:\n"
                    "    void fill(int n);\n"
                    "    void spin() { fill(1); }\n"
                    "};\n"},
         SourceFile{"src/a.cc",
                    "void Pump::fill(int n) { (void)n; }\n"
                    "void drive(Pump &p) { p.fill(2); }\n"}});
    int spin = idOf(g, "spin", "Pump");
    int drive = idOf(g, "drive");
    int fill = idOf(g, "fill", "Pump");
    ASSERT_GE(spin, 0);
    ASSERT_GE(drive, 0);
    ASSERT_GE(fill, 0);
    ASSERT_EQ(g.callsOf(spin).size(), 1u);
    EXPECT_EQ(g.callsOf(spin)[0].target, fill);
    ASSERT_EQ(g.callsOf(drive).size(), 1u);
    EXPECT_EQ(g.callsOf(drive)[0].target, fill);
}

// ---------------------------------------------------------------------------
// SCCs and the bottom-up fixpoint
// ---------------------------------------------------------------------------

TEST(CallgraphScc, BottomUpOrderPutsCalleesFirst)
{
    auto g = graphOf(
        "int leaf() { return 1; }\n"
        "int mid() { return leaf(); }\n"
        "int top() { return mid(); }\n");
    std::map<int, size_t> sccOrder;
    for (size_t i = 0; i < g.sccs().size(); ++i)
        for (int id : g.sccs()[i])
            sccOrder[id] = i;
    EXPECT_LT(sccOrder[idOf(g, "leaf")], sccOrder[idOf(g, "mid")]);
    EXPECT_LT(sccOrder[idOf(g, "mid")], sccOrder[idOf(g, "top")]);
}

TEST(CallgraphScc, MutualRecursionSharesOneScc)
{
    auto g = graphOf(
        "int odd(int n);\n"
        "int even(int n) { return n == 0 ? 1 : odd(n - 1); }\n"
        "int odd(int n) { return n == 0 ? 0 : even(n - 1); }\n"
        "int self(int n) { return n ? self(n - 1) : 0; }\n");
    std::map<int, size_t> sccOf;
    for (size_t i = 0; i < g.sccs().size(); ++i)
        for (int id : g.sccs()[i])
            sccOf[id] = i;
    EXPECT_EQ(sccOf[idOf(g, "even")], sccOf[idOf(g, "odd")]);
    EXPECT_NE(sccOf[idOf(g, "even")], sccOf[idOf(g, "self")]);
    // Every function lands in exactly one SCC.
    size_t members = 0;
    for (const auto &scc : g.sccs())
        members += scc.size();
    EXPECT_EQ(members, g.functions().size());
}

TEST(CallgraphScc, FixpointIteratesRecursiveSccToConvergence)
{
    auto g = graphOf(
        "int sink() { return 9; }\n"
        "int odd(int n);\n"
        "int even(int n) { return n == 0 ? sink() : odd(n - 1); }\n"
        "int odd(int n) { return n == 0 ? 0 : even(n - 1); }\n");
    // Summary: "reaches sink()" — true directly for even, and only
    // discoverable for odd through a second round over the SCC.
    std::map<int, bool> reaches;
    g.forEachBottomUp([&](int id) {
        bool now = false;
        for (const CallSite &cs : g.callsOf(id)) {
            if (cs.target < 0)
                continue;
            if (g.functions()[static_cast<size_t>(cs.target)].name ==
                    "sink" ||
                reaches[cs.target])
                now = true;
        }
        bool changed = now && !reaches[id];
        reaches[id] = reaches[id] || now;
        return changed;
    });
    EXPECT_TRUE(reaches[idOf(g, "even")]);
    EXPECT_TRUE(reaches[idOf(g, "odd")])
        << "SCC fixpoint must propagate through mutual recursion";
    EXPECT_FALSE(reaches[idOf(g, "sink")]);
}

// ---------------------------------------------------------------------------
// lookups
// ---------------------------------------------------------------------------

TEST(CallgraphLookup, FunctionAtAndCallAt)
{
    auto g = graphOf(
        "int helper() { return 1; }\n"
        "int use() { return helper(); }\n");
    int use = idOf(g, "use");
    ASSERT_GE(use, 0);
    const auto &calls = g.callsOf(use);
    ASSERT_EQ(calls.size(), 1u);
    EXPECT_EQ(g.functionAt(0, calls[0].nameIdx), use);
    const CallSite *cs = g.callAt(0, calls[0].nameIdx);
    ASSERT_NE(cs, nullptr);
    EXPECT_EQ(cs->name, "helper");
    EXPECT_EQ(g.callAt(0, 0), nullptr);
}

TEST(CallgraphLookup, RealTreeBuildsAndResolvesSomething)
{
    // Smoke over the actual sources: the graph must build, find a
    // healthy number of definitions, and resolve at least some edges.
    auto load = nxcommon::loadTree(NXSIM_SOURCE_DIR,
                                   {"src", "tools", "fuzz"});
    auto g = CallGraph::build(load.files);
    EXPECT_GT(g.functions().size(), 200u);
    size_t resolved = 0;
    size_t total = 0;
    for (size_t i = 0; i < g.functions().size(); ++i)
        for (const CallSite &cs : g.callsOf(static_cast<int>(i))) {
            ++total;
            if (cs.target >= 0)
                ++resolved;
        }
    EXPECT_GT(total, 500u);
    EXPECT_GT(resolved, 100u);
}

} // namespace
