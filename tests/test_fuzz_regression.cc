/**
 * @file
 * Deterministic replay of the checked-in fuzz corpus (under
 * fuzz/corpus/) through the fuzz harness entry points, under plain
 * ctest. This keeps
 * past crashers fixed and the harness invariants (differential
 * agreement, round-trip identity, output caps) enforced by tier-1 even
 * when no fuzzing toolchain is configured.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <vector>

#include "harness.h"

namespace {

namespace fs = std::filesystem;

std::vector<uint8_t>
readFile(const fs::path &p)
{
    std::ifstream f(p, std::ios::binary);
    return {std::istreambuf_iterator<char>(f),
            std::istreambuf_iterator<char>()};
}

/** Replay every regular file in fuzz/corpus/<target> through fn. */
void
replayDir(const char *target, int (*fn)(std::span<const uint8_t>))
{
    fs::path dir = fs::path(NXSIM_FUZZ_CORPUS_DIR) / target;
    ASSERT_TRUE(fs::is_directory(dir))
        << "missing corpus dir " << dir
        << " (regenerate with the fuzz_make_corpus tool)";
    size_t files = 0;
    for (const auto &e : fs::directory_iterator(dir)) {
        if (!e.is_regular_file())
            continue;
        auto bytes = readFile(e.path());
        SCOPED_TRACE(e.path().string());
        EXPECT_EQ(fn(bytes), 0);
        ++files;
    }
    EXPECT_GT(files, 0u) << "empty corpus dir " << dir;
}

} // namespace

TEST(FuzzRegression, InflateCorpus)
{
    replayDir("inflate", fuzz::fuzzInflate);
}

TEST(FuzzRegression, GzipCorpus)
{
    replayDir("gzip", fuzz::fuzzGzip);
}

TEST(FuzzRegression, E842Corpus)
{
    replayDir("e842", fuzz::fuzzE842);
}

TEST(FuzzRegression, RoundtripCorpus)
{
    replayDir("roundtrip", fuzz::fuzzRoundtrip);
}

TEST(FuzzRegression, SessionCorpus)
{
    replayDir("session", fuzz::fuzzSession);
}
