/**
 * @file
 * SARIF output tests. The interesting property is byte-for-byte
 * stability: CI uploads the analyzer runs to code-scanning backends
 * that diff on content, so the serializer is held to a golden file
 * (tests/golden/sarif.json) rather than to spot-checked substrings.
 */

#include "common/diag.h"

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/fileset.h"

namespace {

using nxcommon::Finding;
using nxcommon::RuleInfo;

std::vector<RuleInfo>
demoRules()
{
    return {
        {"demo-rule", "a demonstration rule"},
        {"io-error", "file could not be read"},
    };
}

std::vector<Finding>
demoFindings()
{
    return {
        {"src/a.cc", 12, "demo-rule",
         "message with \"quotes\" and\nnewline"},
        // line 0 (whole-file finding) must clamp to startLine 1.
        {"src/whole_file.cc", 0, "io-error", "cannot read file"},
    };
}

TEST(Sarif, MatchesGoldenFile)
{
    std::string golden;
    ASSERT_TRUE(nxcommon::loadFile(
        std::string(NXSIM_SOURCE_DIR) + "/tests/golden/sarif.json",
        golden));
    EXPECT_EQ(nxcommon::formatSarif("nxtool", demoRules(), demoFindings()),
              golden);
}

TEST(Sarif, EmptyRunStillCarriesToolAndSchema)
{
    std::string out = nxcommon::formatSarif("nxempty", {}, {});
    EXPECT_NE(out.find("\"version\": \"2.1.0\""), std::string::npos);
    EXPECT_NE(out.find("\"name\": \"nxempty\""), std::string::npos);
    EXPECT_NE(out.find("\"rules\": []"), std::string::npos);
    EXPECT_NE(out.find("\"results\": []"), std::string::npos);
    EXPECT_EQ(out.back(), '\n');
}

TEST(Sarif, LineZeroClampsToOne)
{
    std::string out = nxcommon::formatSarif(
        "nxtool", demoRules(),
        {{"src/x.cc", 0, "demo-rule", "whole-file"}});
    EXPECT_NE(out.find("\"startLine\": 1"), std::string::npos);
    EXPECT_EQ(out.find("\"startLine\": 0"), std::string::npos);
}

} // namespace
