/**
 * @file
 * Death tests for the contracts layer (src/util/contracts.h) and
 * value tests for the checked conversions (src/util/checked.h). The
 * death tests only exist when contracts are compiled in; the tier-1
 * build keeps NXSIM_CONTRACTS=ON exactly so these stay live.
 */

#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "util/checked.h"
#include "util/contracts.h"

namespace {

TEST(Contracts, PassingContractsAreSilent)
{
    NXSIM_EXPECT(1 + 1 == 2);
    NXSIM_ASSERT(true, "never printed");
    NXSIM_ENSURE(42 > 0);
    SUCCEED();
}

#if NXSIM_CONTRACTS_ENABLED

TEST(ContractsDeathTest, AssertAbortsWithLocation)
{
    EXPECT_DEATH(NXSIM_ASSERT(false, "boom"),
                 "NXSIM_ASSERT failed: false — boom");
}

TEST(ContractsDeathTest, ExpectAbortsWithExpression)
{
    int x = 3;
    EXPECT_DEATH(NXSIM_EXPECT(x == 4), "NXSIM_EXPECT failed: x == 4");
}

TEST(ContractsDeathTest, EnsureAborts)
{
    EXPECT_DEATH(NXSIM_ENSURE(false), "NXSIM_ENSURE failed");
}

TEST(ContractsDeathTest, UnreachableAborts)
{
    EXPECT_DEATH(NXSIM_UNREACHABLE("bad switch arm"),
                 "NXSIM_UNREACHABLE");
}

#endif // NXSIM_CONTRACTS_ENABLED

TEST(CheckedCast, ValuePreservingConversionsPass)
{
    EXPECT_EQ(nx::checked_cast<uint8_t>(255), 255);
    EXPECT_EQ(nx::checked_cast<uint16_t>(size_t{65535}), 65535);
    EXPECT_EQ(nx::checked_cast<int>(uint64_t{1} << 30), 1 << 30);
    EXPECT_EQ(nx::checked_cast<uint32_t>(int64_t{0}), 0u);
    // Signed -> unsigned of a non-negative value is fine.
    EXPECT_EQ(nx::checked_cast<unsigned>(123), 123u);
}

TEST(CheckedCast, EnumSourcesConvertThroughUnderlyingType)
{
    enum class Kind : uint8_t { A = 2, B = 7 };
    EXPECT_EQ(nx::checked_cast<uint32_t>(Kind::B), 7u);
    EXPECT_EQ(nx::truncate_cast<uint8_t>(Kind::A), 2u);
}

#if NXSIM_CONTRACTS_ENABLED

TEST(CheckedCastDeathTest, OverflowingNarrowingAborts)
{
    EXPECT_DEATH((void)nx::checked_cast<uint8_t>(256),
                 "narrowing changed the value");
    EXPECT_DEATH((void)nx::checked_cast<uint16_t>(size_t{1} << 16),
                 "narrowing changed the value");
}

TEST(CheckedCastDeathTest, NegativeToUnsignedAborts)
{
    EXPECT_DEATH((void)nx::checked_cast<uint32_t>(-1),
                 "narrowing changed the value");
}

TEST(CheckedArithmeticDeathTest, AddOverflowAborts)
{
    uint64_t big = ~uint64_t{0};
    EXPECT_DEATH((void)nx::checkedAdd(big, uint64_t{1}), "add overflow");
    uint32_t big32 = ~uint32_t{0};
    EXPECT_DEATH((void)nx::checkedAdd(big32, uint32_t{1}),
                 "add overflow");
}

TEST(CheckedArithmeticDeathTest, MulOverflowAborts)
{
    uint64_t big = uint64_t{1} << 33;
    EXPECT_DEATH((void)nx::checkedMul(big, big), "mul overflow");
}

TEST(CopyBytesDeathTest, NullWithNonzeroSizeAborts)
{
    uint8_t buf[4] = {0};
    EXPECT_DEATH(nx::copyBytes(buf, nullptr, 4), "copyBytes");
    EXPECT_DEATH(nx::copyBytes(nullptr, buf, 4), "copyBytes");
}

#endif // NXSIM_CONTRACTS_ENABLED

TEST(TruncateCast, DropsBitsOnPurpose)
{
    EXPECT_EQ(nx::truncate_cast<uint8_t>(0x1ff), 0xff);
    EXPECT_EQ(nx::truncate_cast<uint16_t>(~0), 0xffff);
    EXPECT_EQ(nx::truncate_cast<uint8_t>(uint64_t{0xa5a5a5a5a5a5a5a5}),
              0xa5);
}

TEST(CheckedArithmetic, InRangeResultsAreExact)
{
    EXPECT_EQ(nx::checkedAdd(uint32_t{3}, uint32_t{4}), 7u);
    EXPECT_EQ(nx::checkedMul(uint64_t{1} << 20, uint64_t{1} << 20),
              uint64_t{1} << 40);
}

TEST(CopyBytes, ZeroLengthIsANoOpEvenWithNull)
{
    nx::copyBytes(nullptr, nullptr, 0);    // the BitReader regression
    SUCCEED();
}

TEST(CopyBytes, CopiesData)
{
    std::vector<uint8_t> src = {1, 2, 3, 4, 5};
    std::vector<uint8_t> dst(5, 0);
    nx::copyBytes(dst.data(), src.data(), src.size());
    EXPECT_EQ(dst, src);
}

} // namespace
