/**
 * @file
 * 842-class codec tests: round trips over every corpus shape, opcode
 * coverage (zeros, repeat, short-data, indices), malformed-stream
 * rejection, and the engine timing model.
 */

#include <gtest/gtest.h>

#include "e842/e842.h"
#include "e842/e842_engine.h"
#include "util/bitstream.h"
#include "util/prng.h"
#include "workloads/corpus.h"

using e842::compress;
using e842::decompress;

namespace {

void
roundTrip(const std::vector<uint8_t> &input, const char *what)
{
    auto c = compress(input);
    auto d = decompress(c.bytes);
    ASSERT_TRUE(d.ok) << what << ": " << d.error;
    EXPECT_EQ(d.bytes, input) << what;
}

} // namespace

TEST(E842, EmptyInput)
{
    roundTrip({}, "empty");
    auto c = compress({});
    EXPECT_LE(c.bytes.size(), 2u);    // just OP_END
}

TEST(E842, SubChunkSizes)
{
    // 1..7 bytes exercise SHORT_DATA alone.
    for (size_t n = 1; n <= 7; ++n) {
        std::vector<uint8_t> input(n);
        for (size_t i = 0; i < n; ++i)
            input[i] = static_cast<uint8_t>(0x41 + i);
        roundTrip(input, "short");
        auto c = compress(input);
        EXPECT_EQ(c.stats.shortDataOps, 1u);
        EXPECT_EQ(c.stats.chunks, 0u);
    }
}

TEST(E842, UnalignedTail)
{
    auto input = workloads::makeText(1003, 21);    // 125 chunks + 3
    roundTrip(input, "tail");
}

TEST(E842, ZerosUseZeroOp)
{
    auto input = workloads::makeZeros(4096);
    auto c = compress(input);
    auto d = decompress(c.bytes);
    ASSERT_TRUE(d.ok);
    EXPECT_EQ(d.bytes, input);
    // First chunk is ZEROS, the rest collapse into REPEAT ops.
    EXPECT_GE(c.stats.zeroOps, 1u);
    EXPECT_GE(c.stats.repeatOps, 1u);
    EXPECT_LT(c.bytes.size(), 64u);
}

TEST(E842, RepeatRunCompresses)
{
    std::vector<uint8_t> input;
    for (int i = 0; i < 512; ++i) {
        const uint8_t pat[8] = {1, 2, 3, 4, 5, 6, 7, 8};
        input.insert(input.end(), pat, pat + 8);
    }
    auto c = compress(input);
    auto d = decompress(c.bytes);
    ASSERT_TRUE(d.ok);
    EXPECT_EQ(d.bytes, input);
    EXPECT_GE(c.stats.repeatOps, 8u);    // 511 repeats / 64 per op
    EXPECT_LT(c.bytes.size(), 64u);
}

TEST(E842, IndexReuseAcrossChunks)
{
    // Two interleaved 8-byte patterns: after warmup everything should
    // hit the I8 ring.
    std::vector<uint8_t> input;
    const uint8_t a[8] = {9, 9, 1, 1, 2, 2, 3, 3};
    const uint8_t b[8] = {7, 7, 4, 4, 5, 5, 6, 6};
    for (int i = 0; i < 100; ++i) {
        input.insert(input.end(), a, a + 8);
        input.insert(input.end(), b, b + 8);
    }
    auto c = compress(input);
    auto d = decompress(c.bytes);
    ASSERT_TRUE(d.ok);
    EXPECT_EQ(d.bytes, input);
    EXPECT_GT(c.stats.indexBits, c.stats.literalBits);
    // ~13 bits per chunk once warmed: far below 8 bytes.
    EXPECT_LT(c.bytes.size(), input.size() / 3);
}

TEST(E842, AllCorpusMembersRoundTrip)
{
    for (const auto &file : workloads::standardCorpus(64 * 1024))
        roundTrip(file.data, file.name.c_str());
}

TEST(E842, RandomDataExpandsOnlySlightly)
{
    auto input = workloads::makeRandom(64 * 1024, 31);
    auto c = compress(input);
    auto d = decompress(c.bytes);
    ASSERT_TRUE(d.ok);
    EXPECT_EQ(d.bytes, input);
    // 5 opcode bits per 64 data bits worst case: <= ~8 % expansion.
    EXPECT_LT(c.bytes.size(),
              input.size() + input.size() / 11 + 16);
}

TEST(E842, RatioBelowDeflateOnText)
{
    // 842 trades ratio for latency — DEFLATE should beat it on text.
    auto input = workloads::makeText(256 * 1024, 32);
    auto c842 = compress(input);
    EXPECT_GT(c842.bytes.size(), input.size() / 4);
    auto d = decompress(c842.bytes);
    ASSERT_TRUE(d.ok);
    EXPECT_EQ(d.bytes, input);
}

TEST(E842, DeterministicOutput)
{
    auto input = workloads::makeMixed(32 * 1024, 33);
    auto a = compress(input);
    auto b = compress(input);
    EXPECT_EQ(a.bytes, b.bytes);
}

TEST(E842, TruncatedStreamRejected)
{
    auto input = workloads::makeText(8192, 34);
    auto c = compress(input);
    for (size_t cut : {size_t{1}, c.bytes.size() / 2,
                       c.bytes.size() - 1}) {
        std::vector<uint8_t> trunc(c.bytes.begin(),
                                   c.bytes.begin() +
                                       static_cast<long>(cut));
        auto d = decompress(trunc);
        // Truncation may expose a valid END opcode early in rare
        // alignments; a wrong-but-ok result is acceptable only if it
        // is a strict prefix mismatch — require not-ok or smaller out.
        if (d.ok) {
            EXPECT_LT(d.bytes.size(), input.size());
        }
    }
}

TEST(E842, BitFlipsNeverCrash)
{
    auto input = workloads::makeJson(16384, 35);
    auto c = compress(input);
    util::Xoshiro256 rng(36);
    for (int trial = 0; trial < 200; ++trial) {
        auto corrupted = c.bytes;
        size_t byte = rng.below(corrupted.size());
        corrupted[byte] ^= static_cast<uint8_t>(
            1u << rng.below(8));
        auto d = decompress(corrupted, input.size() * 4);
        // Must terminate with ok or a clean error — the harness
        // reaching this line is the assertion.
        (void)d;
    }
    SUCCEED();
}

TEST(E842, RepeatWithNoHistoryRejected)
{
    // Hand-build: opcode REPEAT (28) first. 5 bits LSB-first.
    util::BitWriter bw;
    bw.writeBits(28, 5);
    bw.writeBits(0, 6);
    auto stream = bw.take();
    auto d = decompress(stream);
    EXPECT_FALSE(d.ok);
}

TEST(E842, IndexBeyondHistoryRejected)
{
    // I8 opcode referencing slot 200 with empty history.
    util::BitWriter bw;
    bw.writeBits(1, 5);      // kOpI8
    bw.writeBits(200, 8);
    bw.writeBits(30, 5);     // END
    auto stream = bw.take();
    auto d = decompress(stream);
    EXPECT_FALSE(d.ok);
}

TEST(E842Engine, TimingScalesAndIsFast)
{
    e842::E842Engine eng;
    auto small = workloads::makeBinary(64 * 1024, 37);
    auto large = workloads::makeBinary(1 << 20, 37);
    auto js = eng.compressJob(small);
    auto jl = eng.compressJob(large);
    ASSERT_TRUE(js.ok);
    ASSERT_TRUE(jl.ok);
    EXPECT_GT(jl.cycles, js.cycles);
    // 8 B/cycle at 2 GHz = 16 GB/s engine bound.
    double bps = static_cast<double>(large.size()) / jl.seconds;
    EXPECT_GT(bps, 4e9);
    EXPECT_LE(bps, 16.1e9);
}

TEST(E842Engine, DecompressJobRoundTrip)
{
    e842::E842Engine eng;
    auto input = workloads::makeCsv(256 * 1024, 38);
    auto c = eng.compressJob(input);
    ASSERT_TRUE(c.ok);
    auto d = eng.decompressJob(c.output);
    ASSERT_TRUE(d.ok);
    EXPECT_EQ(d.output, input);
}

TEST(E842Engine, BadStreamReportsNotOk)
{
    e842::E842Engine eng;
    std::vector<uint8_t> garbage(100, 0xff);
    auto d = eng.decompressJob(garbage);
    EXPECT_FALSE(d.ok);
}
