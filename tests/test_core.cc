/**
 * @file
 * Public API tests: NxDevice, SoftwareCodec, nxzip::Context (mode
 * selection, fallback policy), and topology presets.
 */

#include <gtest/gtest.h>

#include "core/device.h"
#include "core/nxzip.h"
#include "core/topology.h"
#include "workloads/corpus.h"

using core::Mode;
using core::NxDevice;
using core::SoftwareCodec;

TEST(Topology, Presets)
{
    auto p9 = core::power9Chip();
    EXPECT_EQ(p9.cores, 24);
    EXPECT_EQ(p9.accel.compressBytesPerCycle, 4);

    auto z15 = core::z15Chip();
    EXPECT_EQ(z15.accel.compressBytesPerCycle,
              p9.accel.compressBytesPerCycle * 2);

    auto zmax = core::z15MaxSystem();
    EXPECT_EQ(zmax.chips, 20);
    // The abstract's 280 GB/s claim: engine-bound peak of the max
    // topology should be in that neighbourhood (we model 2 engines x
    // 16 GB/s x 20 chips = 640 GB/s peak; sustained rates from the
    // benches land near the claim).
    EXPECT_GT(zmax.peakSystemCompressBps(), 200e9);
}

TEST(NxDevice, CompressDecompressRoundTrip)
{
    NxDevice dev(nx::NxConfig::power9());
    auto input = workloads::makeText(300000, 71);
    auto c = dev.compress(input, nx::Framing::Gzip, Mode::DhtSampled);
    ASSERT_TRUE(c.ok());
    EXPECT_LT(c.data.size(), input.size());
    auto d = dev.decompress(c.data, nx::Framing::Gzip);
    ASSERT_TRUE(d.ok());
    EXPECT_EQ(d.data, input);
}

TEST(NxDevice, AllFramingsRoundTrip)
{
    NxDevice dev(nx::NxConfig::z15());
    auto input = workloads::makeCsv(100000, 72);
    for (auto framing : {nx::Framing::Raw, nx::Framing::Gzip,
                         nx::Framing::Zlib}) {
        auto c = dev.compress(input, framing, Mode::Auto);
        ASSERT_TRUE(c.ok());
        auto d = dev.decompress(c.data, framing);
        ASSERT_TRUE(d.ok());
        EXPECT_EQ(d.data, input);
    }
}

TEST(NxDevice, AutoModePicksFhtForSmallJobs)
{
    NxDevice dev(nx::NxConfig::power9());
    auto small = workloads::makeText(1024, 73);
    auto big = workloads::makeText(1 << 20, 73);
    auto cs = dev.compress(small, nx::Framing::Raw, Mode::Auto);
    auto cb = dev.compress(big, nx::Framing::Raw, Mode::Auto);
    ASSERT_TRUE(cs.ok());
    ASSERT_TRUE(cb.ok());
    // FHT: small job stream starts with BTYPE=01; DHT with BTYPE=10.
    // Bit 0 is BFINAL=1, bits 1-2 are BTYPE (LSB first).
    EXPECT_EQ((cs.data[0] >> 1) & 0x3, 1);    // fixed
    EXPECT_EQ((cb.data[0] >> 1) & 0x3, 2);    // dynamic
}

TEST(NxDevice, RoundRobinAcrossEngines)
{
    auto cfg = nx::NxConfig::power9();
    cfg.compressEnginesPerUnit = 2;    // hypothetical dual-engine unit
    NxDevice dev(cfg);
    ASSERT_GE(dev.compressEngineCount(), 2);
    auto input = workloads::makeText(10000, 74);
    (void)dev.compress(input);
    (void)dev.compress(input);
    EXPECT_EQ(dev.compressEngine(0).stats().get("jobs"), 1u);
    EXPECT_EQ(dev.compressEngine(1).stats().get("jobs"), 1u);
}

TEST(NxDevice, ReportsModelledSeconds)
{
    NxDevice dev(nx::NxConfig::power9());
    auto input = workloads::makeText(1 << 20, 75);
    auto c = dev.compress(input);
    ASSERT_TRUE(c.ok());
    EXPECT_GT(c.seconds, 0.0);
    EXPECT_GT(c.sourceBps(), 1e9);    // an on-chip engine is GB/s-class
    EXPECT_LE(c.sourceBps(), dev.config().peakCompressBps() * 1.01);
}

TEST(SoftwareCodec, RoundTripAndTiming)
{
    SoftwareCodec sw(6);
    auto input = workloads::makeJson(200000, 76);
    auto c = sw.compress(input, nx::Framing::Gzip);
    ASSERT_TRUE(c.ok());
    EXPECT_GT(c.seconds, 0.0);
    auto d = sw.decompress(c.data, nx::Framing::Gzip);
    ASSERT_TRUE(d.ok());
    EXPECT_EQ(d.data, input);
}

TEST(SoftwareCodec, BadStreamReported)
{
    SoftwareCodec sw(6);
    std::vector<uint8_t> garbage(100, 0x3c);
    auto d = sw.decompress(garbage, nx::Framing::Gzip);
    EXPECT_FALSE(d.ok());
}

TEST(Nxzip, ContextRoundTrip)
{
    nxzip::Context ctx(core::power9Chip());
    auto input = workloads::makeMixed(500000, 77);
    auto c = ctx.compress(input);
    ASSERT_TRUE(c.ok) << c.error;
    EXPECT_EQ(c.path, nxzip::Path::Accelerator);
    EXPECT_GT(c.ratio(), 1.0);

    auto d = ctx.decompress(c.data);
    ASSERT_TRUE(d.ok) << d.error;
    EXPECT_EQ(d.data, input);
}

TEST(Nxzip, SmallRequestsStayOnCore)
{
    nxzip::Context ctx(core::power9Chip());
    auto input = workloads::makeText(512, 78);
    auto c = ctx.compress(input);
    ASSERT_TRUE(c.ok);
    EXPECT_EQ(c.path, nxzip::Path::Software);
    auto d = ctx.decompress(c.data);
    ASSERT_TRUE(d.ok);
    EXPECT_EQ(d.data, input);
}

TEST(Nxzip, CrossPathInterop)
{
    // Software-compressed streams decompress on the accelerator path
    // and vice versa.
    nxzip::Options opts;
    opts.minAccelBytes = 1;    // force accel even for small streams
    nxzip::Context accel(core::power9Chip(), opts);

    nxzip::Options swOpts;
    swOpts.minAccelBytes = UINT64_MAX;    // force software
    nxzip::Context software(core::power9Chip(), swOpts);

    auto input = workloads::makeLog(100000, 79);

    auto cs = software.compress(input);
    ASSERT_TRUE(cs.ok);
    auto da = accel.decompress(cs.data);
    ASSERT_TRUE(da.ok) << da.error;
    EXPECT_EQ(da.data, input);

    auto ca = accel.compress(input);
    ASSERT_TRUE(ca.ok);
    auto ds = software.decompress(ca.data);
    ASSERT_TRUE(ds.ok) << ds.error;
    EXPECT_EQ(ds.data, input);
}

TEST(Nxzip, AcceleratorMuchFasterThanSoftware)
{
    // The headline claim, at unit-test scale: modelled accelerator
    // time for a 4 MiB job must be orders of magnitude below measured
    // software time.
    nxzip::Context ctx(core::power9Chip());
    auto input = workloads::makeText(4 << 20, 80);
    auto accel = ctx.compress(input);
    ASSERT_TRUE(accel.ok);

    core::SoftwareCodec sw(6);
    auto soft = sw.compress(input);
    ASSERT_TRUE(soft.ok());
    EXPECT_GT(soft.seconds / accel.seconds, 20.0);
}

TEST(Nxzip, EmptyInput)
{
    nxzip::Context ctx(core::power9Chip());
    std::vector<uint8_t> empty;
    auto c = ctx.compress(empty);
    ASSERT_TRUE(c.ok) << c.error;
    auto d = ctx.decompress(c.data);
    ASSERT_TRUE(d.ok) << d.error;
    EXPECT_TRUE(d.data.empty());
}
