/**
 * @file
 * Compress/decompress engine tests: CRB handling, functional round
 * trips through the independent software inflater (and the reverse:
 * software streams through the accelerator decompressor), framing,
 * checksums, error condition codes, and timing-model invariants.
 */

#include <gtest/gtest.h>

#include "deflate/deflate_encoder.h"
#include "deflate/gzip_stream.h"
#include "deflate/inflate_decoder.h"
#include "nx/compress_engine.h"
#include "nx/decompress_engine.h"
#include "util/adler32.h"
#include "util/crc32.h"
#include "workloads/corpus.h"

using nx::CompressEngine;
using nx::CondCode;
using nx::Crb;
using nx::DdeList;
using nx::DecompressEngine;
using nx::DhtMode;
using nx::Framing;
using nx::FuncCode;
using nx::NxConfig;

namespace {

Crb
makeCrb(FuncCode func, Framing framing, size_t source_bytes,
        size_t target_bytes)
{
    Crb crb;
    crb.func = func;
    crb.framing = framing;
    crb.source = DdeList::direct(0x10000,
        static_cast<uint32_t>(source_bytes));
    crb.target = DdeList::direct(0x20000,
        static_cast<uint32_t>(target_bytes));
    return crb;
}

} // namespace

class CompressEngineTest : public ::testing::Test
{
  protected:
    NxConfig cfg_ = NxConfig::power9();
};

TEST_F(CompressEngineTest, FhtRawRoundTrip)
{
    auto input = workloads::makeText(200000, 41);
    CompressEngine eng(cfg_);
    auto crb = makeCrb(FuncCode::CompressFht, Framing::Raw,
                       input.size(), input.size() * 2);
    auto job = eng.run(crb, input);
    ASSERT_EQ(job.csb.cc, CondCode::Success);
    EXPECT_EQ(job.csb.processedBytes, input.size());
    auto out = deflate::inflateDecompress(job.output);
    ASSERT_TRUE(out.ok());
    EXPECT_EQ(out.bytes, input);
}

TEST_F(CompressEngineTest, DhtSampledRoundTrip)
{
    auto input = workloads::makeLog(300000, 42);
    CompressEngine eng(cfg_);
    auto crb = makeCrb(FuncCode::CompressDht, Framing::Raw,
                       input.size(), input.size() * 2);
    auto job = eng.run(crb, input, DhtMode::Sampled);
    ASSERT_EQ(job.csb.cc, CondCode::Success);
    auto out = deflate::inflateDecompress(job.output);
    ASSERT_TRUE(out.ok());
    EXPECT_EQ(out.bytes, input);
    EXPECT_EQ(out.stats.dynamicBlocks, 1u);
}

TEST_F(CompressEngineTest, DhtTwoPassRoundTrip)
{
    auto input = workloads::makeCsv(300000, 43);
    CompressEngine eng(cfg_);
    auto crb = makeCrb(FuncCode::CompressDht, Framing::Raw,
                       input.size(), input.size() * 2);
    auto job = eng.run(crb, input, DhtMode::TwoPass);
    ASSERT_EQ(job.csb.cc, CondCode::Success);
    auto out = deflate::inflateDecompress(job.output);
    ASSERT_TRUE(out.ok());
    EXPECT_EQ(out.bytes, input);
}

TEST_F(CompressEngineTest, AllCorpusMembersAllModes)
{
    for (const auto &file : workloads::standardCorpus(32 * 1024)) {
        for (auto func : {FuncCode::CompressFht,
                          FuncCode::CompressDht, FuncCode::Wrap}) {
            CompressEngine eng(cfg_);
            auto crb = makeCrb(func, Framing::Raw, file.data.size(),
                               file.data.size() * 2 + 1024);
            auto job = eng.run(crb, file.data);
            ASSERT_EQ(job.csb.cc, CondCode::Success) << file.name;
            auto out = deflate::inflateDecompress(job.output);
            ASSERT_TRUE(out.ok()) << file.name;
            EXPECT_EQ(out.bytes, file.data) << file.name;
        }
    }
}

TEST_F(CompressEngineTest, GzipFramingVerifies)
{
    auto input = workloads::makeJson(100000, 44);
    CompressEngine eng(cfg_);
    auto crb = makeCrb(FuncCode::CompressDht, Framing::Gzip,
                       input.size(), input.size() * 2);
    auto job = eng.run(crb, input);
    ASSERT_EQ(job.csb.cc, CondCode::Success);
    auto res = deflate::gzipUnwrap(job.output);
    ASSERT_TRUE(res.ok) << res.error;
    EXPECT_EQ(res.inflate.bytes, input);
    EXPECT_EQ(job.csb.checksum, util::crc32(input));
}

TEST_F(CompressEngineTest, ZlibFramingVerifies)
{
    auto input = workloads::makeHtml(100000, 45);
    CompressEngine eng(cfg_);
    auto crb = makeCrb(FuncCode::CompressFht, Framing::Zlib,
                       input.size(), input.size() * 2);
    auto job = eng.run(crb, input);
    ASSERT_EQ(job.csb.cc, CondCode::Success);
    EXPECT_EQ(job.csb.checksum, util::adler32(input));
}

TEST_F(CompressEngineTest, WrapModeStores)
{
    auto input = workloads::makeRandom(150000, 46);
    CompressEngine eng(cfg_);
    auto crb = makeCrb(FuncCode::Wrap, Framing::Raw, input.size(),
                       input.size() + 4096);
    auto job = eng.run(crb, input);
    ASSERT_EQ(job.csb.cc, CondCode::Success);
    // Stored framing: ~5 bytes per 64 KiB block of overhead.
    EXPECT_LT(job.output.size(), input.size() + 64);
    EXPECT_GE(job.output.size(), input.size());
    auto out = deflate::inflateDecompress(job.output);
    ASSERT_TRUE(out.ok());
    EXPECT_EQ(out.bytes, input);
}

TEST_F(CompressEngineTest, OutputOverflowReported)
{
    auto input = workloads::makeRandom(100000, 47);
    CompressEngine eng(cfg_);
    auto crb = makeCrb(FuncCode::CompressFht, Framing::Raw,
                       input.size(), 1000);    // tiny target
    auto job = eng.run(crb, input);
    EXPECT_EQ(job.csb.cc, CondCode::OutputOverflow);
    EXPECT_TRUE(job.output.empty());
}

TEST_F(CompressEngineTest, BadCrbRejected)
{
    CompressEngine eng(cfg_);
    Crb crb;    // no target DDE
    crb.func = FuncCode::CompressFht;
    auto job = eng.run(crb, {});
    EXPECT_EQ(job.csb.cc, CondCode::BadCrb);
}

TEST_F(CompressEngineTest, DecompressFuncRejected)
{
    CompressEngine eng(cfg_);
    auto crb = makeCrb(FuncCode::Decompress, Framing::Raw, 10, 10);
    std::vector<uint8_t> dummy(10, 0);
    auto job = eng.run(crb, dummy);
    EXPECT_EQ(job.csb.cc, CondCode::BadCrb);
}

TEST_F(CompressEngineTest, TimingBreakdownConsistent)
{
    auto input = workloads::makeText(1 << 20, 48);
    CompressEngine eng(cfg_);
    auto crb = makeCrb(FuncCode::CompressDht, Framing::Gzip,
                       input.size(), input.size() * 2);
    auto job = eng.run(crb, input);
    ASSERT_EQ(job.csb.cc, CondCode::Success);
    const auto &t = job.timing;
    EXPECT_EQ(t.dispatch, cfg_.dispatchCycles);
    EXPECT_EQ(t.completion, cfg_.completionCycles);
    EXPECT_GT(t.match, 0u);
    EXPECT_GT(t.encode, 0u);
    EXPECT_GT(t.dhtGen, 0u);
    EXPECT_GE(t.total(), t.dispatch + t.match + t.completion);
    // Modelled throughput cannot exceed the engine's peak.
    double secs = cfg_.clock.toSeconds(t.total());
    EXPECT_LE(static_cast<double>(input.size()) / secs,
              cfg_.peakCompressBps() * 1.01);
}

TEST_F(CompressEngineTest, FhtFasterButBiggerThanDht)
{
    auto input = workloads::makeText(1 << 20, 49);
    CompressEngine e1(cfg_);
    CompressEngine e2(cfg_);
    auto crbF = makeCrb(FuncCode::CompressFht, Framing::Raw,
                        input.size(), input.size() * 2);
    auto crbD = makeCrb(FuncCode::CompressDht, Framing::Raw,
                        input.size(), input.size() * 2);
    auto fht = e1.run(crbF, input);
    auto dht = e2.run(crbD, input, DhtMode::Sampled);
    ASSERT_EQ(fht.csb.cc, CondCode::Success);
    ASSERT_EQ(dht.csb.cc, CondCode::Success);
    EXPECT_LE(fht.timing.total(), dht.timing.total());
    EXPECT_GT(fht.output.size(), dht.output.size());
}

class DecompressEngineTest : public ::testing::Test
{
  protected:
    NxConfig cfg_ = NxConfig::power9();
};

TEST_F(DecompressEngineTest, AcceptsSoftwareStreams)
{
    // Cross-check: streams produced by the software encoder at every
    // level must decode on the accelerator model.
    auto input = workloads::makeMixed(200000, 50);
    for (int level : {0, 1, 6, 9}) {
        deflate::DeflateOptions opts;
        opts.level = level;
        auto stream = deflate::deflateCompress(input, opts).bytes;
        DecompressEngine eng(cfg_);
        auto crb = makeCrb(FuncCode::Decompress, Framing::Raw,
                           stream.size(), input.size() + 4096);
        auto job = eng.run(crb, stream);
        ASSERT_EQ(job.csb.cc, CondCode::Success) << "level " << level;
        EXPECT_EQ(job.output, input) << "level " << level;
    }
}

TEST_F(DecompressEngineTest, AcceptsAcceleratorStreams)
{
    auto input = workloads::makeLog(200000, 51);
    CompressEngine comp(cfg_);
    auto ccrb = makeCrb(FuncCode::CompressDht, Framing::Gzip,
                        input.size(), input.size() * 2);
    auto cjob = comp.run(ccrb, input);
    ASSERT_EQ(cjob.csb.cc, CondCode::Success);

    DecompressEngine eng(cfg_);
    auto dcrb = makeCrb(FuncCode::Decompress, Framing::Gzip,
                        cjob.output.size(), input.size() + 4096);
    auto djob = eng.run(dcrb, cjob.output);
    ASSERT_EQ(djob.csb.cc, CondCode::Success);
    EXPECT_EQ(djob.output, input);
    EXPECT_EQ(djob.csb.checksum, util::crc32(input));
}

TEST_F(DecompressEngineTest, BadDataReported)
{
    std::vector<uint8_t> garbage(1000, 0xA7);
    DecompressEngine eng(cfg_);
    auto crb = makeCrb(FuncCode::Decompress, Framing::Gzip,
                       garbage.size(), 1 << 20);
    auto job = eng.run(crb, garbage);
    EXPECT_EQ(job.csb.cc, CondCode::BadData);
}

TEST_F(DecompressEngineTest, OutputOverflowReported)
{
    auto input = workloads::makeZeros(100000);
    auto stream = deflate::deflateCompress(input).bytes;
    DecompressEngine eng(cfg_);
    auto crb = makeCrb(FuncCode::Decompress, Framing::Raw,
                       stream.size(), 1000);
    auto job = eng.run(crb, stream);
    EXPECT_EQ(job.csb.cc, CondCode::OutputOverflow);
}

TEST_F(DecompressEngineTest, TimingScalesWithOutput)
{
    auto small = workloads::makeText(64 * 1024, 52);
    auto large = workloads::makeText(1 << 20, 52);
    auto s1 = deflate::deflateCompress(small).bytes;
    auto s2 = deflate::deflateCompress(large).bytes;
    DecompressEngine e1(cfg_);
    DecompressEngine e2(cfg_);
    auto j1 = e1.run(makeCrb(FuncCode::Decompress, Framing::Raw,
                             s1.size(), small.size() + 4096), s1);
    auto j2 = e2.run(makeCrb(FuncCode::Decompress, Framing::Raw,
                             s2.size(), large.size() + 4096), s2);
    ASSERT_EQ(j1.csb.cc, CondCode::Success);
    ASSERT_EQ(j2.csb.cc, CondCode::Success);
    EXPECT_GT(j2.timing.total(), j1.timing.total());
    // Output-side throughput bounded by the engine's peak.
    double secs = cfg_.clock.toSeconds(j2.timing.total());
    EXPECT_LE(static_cast<double>(large.size()) / secs,
              cfg_.peakDecompressBps() * 1.01);
}

TEST_F(DecompressEngineTest, Z15FasterThanPower9)
{
    auto input = workloads::makeText(1 << 20, 53);
    auto stream = deflate::deflateCompress(input).bytes;
    DecompressEngine p9(NxConfig::power9());
    DecompressEngine z15(NxConfig::z15());
    auto crb = makeCrb(FuncCode::Decompress, Framing::Raw,
                       stream.size(), input.size() + 4096);
    auto jp = p9.run(crb, stream);
    auto jz = z15.run(crb, stream);
    ASSERT_EQ(jp.csb.cc, CondCode::Success);
    ASSERT_EQ(jz.csb.cc, CondCode::Success);
    EXPECT_LT(jz.timing.total(), jp.timing.total());
}
