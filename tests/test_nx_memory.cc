/**
 * @file
 * MemoryImage + DDE scatter/gather tests: sparse semantics, gather
 * order, scatter overflow, fragmented-source equivalence through the
 * engines, and resubmission via sourceOffset.
 */

#include <gtest/gtest.h>

#include "deflate/inflate_decoder.h"
#include "nx/compress_engine.h"
#include "nx/decompress_engine.h"
#include "nx/memory_image.h"
#include "workloads/corpus.h"

using nx::CondCode;
using nx::Crb;
using nx::Dde;
using nx::DdeList;
using nx::MemoryImage;

TEST(MemoryImage, UntouchedReadsZero)
{
    MemoryImage mem;
    auto v = mem.read(0x123456, 100);
    ASSERT_EQ(v.size(), 100u);
    for (uint8_t b : v)
        EXPECT_EQ(b, 0);
    EXPECT_EQ(mem.pageCount(), 0u);
}

TEST(MemoryImage, WriteReadRoundTripAcrossPages)
{
    MemoryImage mem;
    auto data = workloads::makeText(10000, 51);
    mem.write(4090, data);    // straddles page boundaries
    auto back = mem.read(4090, data.size());
    EXPECT_EQ(back, data);
    EXPECT_GE(mem.pageCount(), 3u);
}

TEST(MemoryImage, GatherConcatenatesInOrder)
{
    MemoryImage mem;
    std::vector<uint8_t> a = {1, 2, 3};
    std::vector<uint8_t> b = {4, 5};
    mem.write(0x1000, a);
    mem.write(0x9000, b);
    DdeList list;
    list.entries.push_back({0x9000, 2});
    list.entries.push_back({0x1000, 3});
    auto v = mem.gather(list);
    std::vector<uint8_t> expect = {4, 5, 1, 2, 3};
    EXPECT_EQ(v, expect);
}

TEST(MemoryImage, ScatterSplitsAcrossEntries)
{
    MemoryImage mem;
    std::vector<uint8_t> data = {9, 8, 7, 6, 5, 4};
    DdeList list;
    list.entries.push_back({0x100, 4});
    list.entries.push_back({0x200, 4});
    ASSERT_TRUE(mem.scatter(list, data));
    auto p1 = mem.read(0x100, 4);
    auto p2 = mem.read(0x200, 2);
    EXPECT_EQ(p1, (std::vector<uint8_t>{9, 8, 7, 6}));
    EXPECT_EQ(p2, (std::vector<uint8_t>{5, 4}));
}

TEST(MemoryImage, ScatterOverflowRejected)
{
    MemoryImage mem;
    std::vector<uint8_t> data(100, 1);
    DdeList list = DdeList::direct(0x0, 50);
    EXPECT_FALSE(mem.scatter(list, data));
}

class EngineDmaTest : public ::testing::Test
{
  protected:
    nx::NxConfig cfg_ = nx::NxConfig::power9();
};

TEST_F(EngineDmaTest, FragmentedSourceEqualsFlat)
{
    auto input = workloads::makeLog(200000, 52);

    // Flat run.
    nx::CompressEngine flatEng(cfg_);
    Crb flat;
    flat.func = nx::FuncCode::CompressDht;
    flat.framing = nx::Framing::Gzip;
    flat.source = DdeList::direct(0, static_cast<uint32_t>(
        input.size()));
    flat.target = DdeList::direct(0, static_cast<uint32_t>(
        input.size() * 2));
    auto flatJob = flatEng.run(flat, input);
    ASSERT_EQ(flatJob.csb.cc, CondCode::Success);

    // Same bytes scattered over 7 discontiguous ranges.
    MemoryImage mem;
    Crb frag;
    frag.func = nx::FuncCode::CompressDht;
    frag.framing = nx::Framing::Gzip;
    size_t off = 0;
    uint64_t addr = 0x100000;
    int pieces = 7;
    for (int i = 0; i < pieces; ++i) {
        size_t n = i + 1 == pieces
            ? input.size() - off
            : input.size() / static_cast<size_t>(pieces);
        mem.write(addr, std::span<const uint8_t>(
            input.data() + off, n));
        frag.source.entries.push_back(
            {addr, static_cast<uint32_t>(n)});
        off += n;
        addr += n + 0x5000;    // gaps between pieces
    }
    frag.target = DdeList::direct(0x4000000,
        static_cast<uint32_t>(input.size() * 2));

    nx::CompressEngine fragEng(cfg_);
    auto fragJob = fragEng.runDma(frag, mem);
    ASSERT_EQ(fragJob.csb.cc, CondCode::Success);

    // Identical compressed bytes, and they land in the target range.
    EXPECT_EQ(fragJob.output, flatJob.output);
    auto stored = mem.read(0x4000000, fragJob.output.size());
    EXPECT_EQ(stored, fragJob.output);
    // Fragmentation costs DMA setup cycles.
    EXPECT_GT(fragJob.timing.dmaIn, flatJob.timing.dmaIn);
}

TEST_F(EngineDmaTest, ScatteredTargetDecompresses)
{
    auto input = workloads::makeCsv(100000, 53);
    MemoryImage mem;
    mem.write(0x1000, input);

    nx::CompressEngine ceng(cfg_);
    Crb crb;
    crb.func = nx::FuncCode::CompressFht;
    crb.framing = nx::Framing::Gzip;
    crb.source = DdeList::direct(0x1000,
        static_cast<uint32_t>(input.size()));
    // Target scattered over small chunks.
    for (int i = 0; i < 40; ++i)
        crb.target.entries.push_back(
            {0x2000000 + static_cast<uint64_t>(i) * 0x10000,
             4096});
    auto cjob = ceng.runDma(crb, mem);
    ASSERT_EQ(cjob.csb.cc, CondCode::Success);

    // Decompress by gathering from the scattered target.
    nx::DecompressEngine deng(cfg_);
    Crb dcrb;
    dcrb.func = nx::FuncCode::Decompress;
    dcrb.framing = nx::Framing::Gzip;
    size_t remain = cjob.output.size();
    for (int i = 0; remain > 0; ++i) {
        auto n = static_cast<uint32_t>(std::min<size_t>(remain, 4096));
        dcrb.source.entries.push_back(
            {0x2000000 + static_cast<uint64_t>(i) * 0x10000, n});
        remain -= n;
    }
    dcrb.target = DdeList::direct(0x8000000,
        static_cast<uint32_t>(input.size() + 4096));
    auto djob = deng.runDma(dcrb, mem);
    ASSERT_EQ(djob.csb.cc, CondCode::Success);
    EXPECT_EQ(djob.output, input);
    auto out = mem.read(0x8000000, input.size());
    EXPECT_EQ(out, input);
}

TEST_F(EngineDmaTest, SourceOffsetSkipsResubmittedPrefix)
{
    auto input = workloads::makeText(50000, 54);
    MemoryImage mem;
    mem.write(0x1000, input);

    nx::CompressEngine eng(cfg_);
    Crb crb;
    crb.func = nx::FuncCode::CompressFht;
    crb.framing = nx::Framing::Raw;
    crb.source = DdeList::direct(0x1000,
        static_cast<uint32_t>(input.size()));
    crb.target = DdeList::direct(0x2000000,
        static_cast<uint32_t>(input.size() * 2));
    crb.sourceOffset = 30000;    // resume as after a fault at 30000

    auto job = eng.runDma(crb, mem);
    ASSERT_EQ(job.csb.cc, CondCode::Success);
    EXPECT_EQ(job.csb.processedBytes, input.size() - 30000);
    auto res = deflate::inflateDecompress(job.output);
    ASSERT_TRUE(res.ok());
    std::vector<uint8_t> tail(input.begin() + 30000, input.end());
    EXPECT_EQ(res.bytes, tail);
}

TEST_F(EngineDmaTest, TargetTooSmallOverflowsCleanly)
{
    auto input = workloads::makeRandom(100000, 55);
    MemoryImage mem;
    mem.write(0x1000, input);
    nx::CompressEngine eng(cfg_);
    Crb crb;
    crb.func = nx::FuncCode::CompressFht;
    crb.framing = nx::Framing::Raw;
    crb.source = DdeList::direct(0x1000,
        static_cast<uint32_t>(input.size()));
    crb.target = DdeList::direct(0x2000000, 512);
    auto job = eng.runDma(crb, mem);
    EXPECT_EQ(job.csb.cc, CondCode::OutputOverflow);
    EXPECT_TRUE(job.output.empty());
}
