/**
 * @file
 * Edge-case coverage for the shared analyzer tokenizer
 * (tools/common/lexer.h) and the shared allow() grammar built on it
 * (tools/common/allow.h): raw string literals (including prefixed and
 * multi-line ones), digit separators, escaped quotes in char
 * literals, preprocessor lines with trailing comments, and multi-line
 * allow blocks. Every analyzer inherits whatever this lexer decides,
 * so these cases are pinned once, here.
 */

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/allow.h"
#include "common/diag.h"
#include "common/lexer.h"

namespace {

using nxlex::Lexer;
using nxlex::Tok;
using nxlex::Token;

std::vector<Token>
lex(std::string_view s)
{
    return Lexer(s).run();
}

/** Tokens of one kind, in order. */
std::vector<std::string>
texts(const std::vector<Token> &toks, Tok kind)
{
    std::vector<std::string> out;
    for (const Token &t : toks)
        if (t.kind == kind)
            out.push_back(t.text);
    return out;
}

// ---------------------------------------------------------------------------
// raw strings
// ---------------------------------------------------------------------------

TEST(LexerRawString, BasicRawStringIsOneToken)
{
    auto toks = lex("auto s = R\"(no \" escapes /* here */)\";");
    auto strs = texts(toks, Tok::Str);
    ASSERT_EQ(strs.size(), 1u);
    EXPECT_EQ(strs[0], "R\"(no \" escapes /* here */)\"");
    // Nothing inside leaked out as idents.
    for (const auto &id : texts(toks, Tok::Ident))
        EXPECT_NE(id, "escapes");
}

TEST(LexerRawString, DelimiterGuardsEmbeddedCloser)
{
    auto toks = lex("auto s = R\"x(a )\" b)x\"; int tail;");
    auto strs = texts(toks, Tok::Str);
    ASSERT_EQ(strs.size(), 1u);
    EXPECT_EQ(strs[0], "R\"x(a )\" b)x\"");
    auto ids = texts(toks, Tok::Ident);
    EXPECT_NE(std::find(ids.begin(), ids.end(), "tail"), ids.end());
}

TEST(LexerRawString, PrefixedRawStringKeepsPrefix)
{
    auto toks = lex("auto s = u8R\"(data)\";");
    auto strs = texts(toks, Tok::Str);
    ASSERT_EQ(strs.size(), 1u);
    EXPECT_EQ(strs[0], "u8R\"(data)\"");
}

TEST(LexerRawString, MultiLineRawStringTracksLines)
{
    auto toks = lex("auto s = R\"(a\nb\nc)\";\nint after;");
    ASSERT_FALSE(toks.empty());
    const Token *str = nullptr;
    const Token *after = nullptr;
    for (const Token &t : toks) {
        if (t.kind == Tok::Str)
            str = &t;
        if (t.kind == Tok::Ident && t.text == "after")
            after = &t;
    }
    ASSERT_NE(str, nullptr);
    ASSERT_NE(after, nullptr);
    EXPECT_EQ(str->line, 1);
    EXPECT_EQ(str->endLine, 3);
    EXPECT_EQ(after->line, 4);
}

TEST(LexerRawString, CommentMarkerInsideRawStringIsNotAComment)
{
    auto toks = lex("auto s = R\"(// nxlint: allow(x))\"; int n;");
    EXPECT_TRUE(texts(toks, Tok::Comment).empty());
}

// ---------------------------------------------------------------------------
// numbers
// ---------------------------------------------------------------------------

TEST(LexerNumber, DigitSeparatorsStayOneToken)
{
    auto toks = lex("int a = 1'000'000; int b = 0xFF'FF;");
    auto nums = texts(toks, Tok::Number);
    ASSERT_EQ(nums.size(), 2u);
    EXPECT_EQ(nums[0], "1'000'000");
    EXPECT_EQ(nums[1], "0xFF'FF");
    // The separators must not open char literals.
    EXPECT_TRUE(texts(toks, Tok::Chr).empty());
}

TEST(LexerNumber, ExponentSignsBelongToTheNumber)
{
    auto toks = lex("double d = 1.5e-3; double h = 0x1p+4;");
    auto nums = texts(toks, Tok::Number);
    ASSERT_EQ(nums.size(), 2u);
    EXPECT_EQ(nums[0], "1.5e-3");
    EXPECT_EQ(nums[1], "0x1p+4");
}

// ---------------------------------------------------------------------------
// char literals
// ---------------------------------------------------------------------------

TEST(LexerChar, EscapedQuoteDoesNotEndTheLiteral)
{
    auto toks = lex("char q = '\\''; char b = '\\\\'; int tail;");
    auto chrs = texts(toks, Tok::Chr);
    ASSERT_EQ(chrs.size(), 2u);
    EXPECT_EQ(chrs[0], "'\\''");
    EXPECT_EQ(chrs[1], "'\\\\'");
    auto ids = texts(toks, Tok::Ident);
    EXPECT_NE(std::find(ids.begin(), ids.end(), "tail"), ids.end());
}

TEST(LexerChar, CommentMarkerInsideCharIsNotAComment)
{
    auto toks = lex("char c = '/'; char d = '/'; // real comment\n");
    ASSERT_EQ(texts(toks, Tok::Comment).size(), 1u);
    EXPECT_EQ(texts(toks, Tok::Chr).size(), 2u);
}

// ---------------------------------------------------------------------------
// preprocessor lines
// ---------------------------------------------------------------------------

TEST(LexerPp, TrailingLineCommentSplitsOffTheDirective)
{
    auto toks = lex("#include \"x.h\"  // nxdeps: allow(x): why\n");
    ASSERT_EQ(toks.size(), 2u);
    EXPECT_EQ(toks[0].kind, Tok::Pp);
    EXPECT_EQ(nxlex::trim(toks[0].text), "#include \"x.h\"");
    EXPECT_EQ(toks[1].kind, Tok::Comment);
    EXPECT_EQ(toks[1].line, 1);
}

TEST(LexerPp, BlockCommentInsideDirectiveIsASpace)
{
    auto toks = lex("#define N /* docs */ 4\nint after;");
    ASSERT_GE(toks.size(), 2u);
    EXPECT_EQ(toks[0].kind, Tok::Pp);
    EXPECT_EQ(nxlex::trim(toks[0].text), "#define N   4");
}

TEST(LexerPp, ContinuationJoinsIntoOneToken)
{
    auto toks = lex("#define M(a) \\\n    ((a) + 1)\nint after;");
    ASSERT_GE(toks.size(), 2u);
    EXPECT_EQ(toks[0].kind, Tok::Pp);
    EXPECT_EQ(toks[0].line, 1);
    EXPECT_EQ(toks[0].endLine, 2);
    const Token &after = toks[1];
    EXPECT_EQ(after.text, "int");
    EXPECT_EQ(after.line, 3);
}

TEST(LexerPp, CommentMarkerInsideDirectiveStringIsKept)
{
    auto toks = lex("#define URL \"http://x\"\n");
    ASSERT_EQ(toks.size(), 1u);
    EXPECT_EQ(toks[0].kind, Tok::Pp);
    EXPECT_NE(toks[0].text.find("http://x"), std::string::npos);
}

// ---------------------------------------------------------------------------
// multi-line allow blocks (the grammar every analyzer shares)
// ---------------------------------------------------------------------------

const std::vector<nxcommon::RuleInfo> kRules = {
    {"some-rule", "test rule"},
    {"bare-allow", ""},
    {"stale-allow", ""},
};

TEST(AllowGrammar, MultiLineJustificationCoversWholeBlockAndNextLine)
{
    auto toks = lex("int before;\n"
                    "// nxlint: allow(some-rule): the justification\n"
                    "// continues over several comment lines and\n"
                    "// still covers the next code line.\n"
                    "int target;\n");
    std::vector<nxcommon::Finding> findings;
    auto allows =
        nxcommon::collectAllows(toks, "nxlint", kRules, findings, "f.cc");
    EXPECT_TRUE(findings.empty());
    ASSERT_EQ(allows.size(), 1u);
    // Covers every comment line of the block plus the code line below.
    for (int line = 2; line <= 5; ++line)
        EXPECT_EQ(allows[0].lines.count(line), 1u) << "line " << line;
    EXPECT_EQ(allows[0].lines.count(1), 0u);
    EXPECT_EQ(allows[0].lines.count(6), 0u);
}

TEST(AllowGrammar, BlockIsInterruptedByCode)
{
    // `int before;` keeps the allow out of file scope: it covers only
    // its own line and the next code line, not anything later.
    auto toks = lex("int before;\n"
                    "// nxlint: allow(some-rule): why\n"
                    "int code;\n"
                    "int later;\n");
    std::vector<nxcommon::Finding> findings;
    auto allows =
        nxcommon::collectAllows(toks, "nxlint", kRules, findings, "f.cc");
    ASSERT_EQ(allows.size(), 1u);
    EXPECT_FALSE(allows[0].fileScope);
    EXPECT_EQ(allows[0].lines.count(3), 1u);
    EXPECT_EQ(allows[0].lines.count(4), 0u);
}

TEST(AllowGrammar, OtherToolsTagIsIgnored)
{
    auto toks = lex("// nxtaint: allow(some-rule): not for nxlint\n"
                    "int code;\n");
    std::vector<nxcommon::Finding> findings;
    auto allows =
        nxcommon::collectAllows(toks, "nxlint", kRules, findings, "f.cc");
    EXPECT_TRUE(allows.empty());
    EXPECT_TRUE(findings.empty());
}

} // namespace
