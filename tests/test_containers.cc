/**
 * @file
 * gzip (RFC 1952) and zlib (RFC 1950) container tests: wrap/unwrap round
 * trips, header parsing, checksum verification, corruption detection.
 */

#include <gtest/gtest.h>

#include <string>

#include "deflate/deflate_encoder.h"
#include "deflate/gzip_stream.h"
#include "deflate/zlib_stream.h"
#include "util/prng.h"

using deflate::deflateCompress;
using deflate::gzipUnwrap;
using deflate::gzipWrap;
using deflate::zlibUnwrap;
using deflate::zlibWrap;

namespace {

std::vector<uint8_t>
sampleData(size_t n, uint64_t seed)
{
    util::Xoshiro256 rng(seed);
    std::vector<uint8_t> v(n);
    for (size_t i = 0; i < n; ++i)
        v[i] = rng.chance(0.7) ? static_cast<uint8_t>('a' + i % 17)
                               : static_cast<uint8_t>(rng.next());
    return v;
}

} // namespace

TEST(Gzip, RoundTrip)
{
    auto data = sampleData(50000, 1);
    auto raw = deflateCompress(data).bytes;
    auto member = gzipWrap(raw, data);
    auto res = gzipUnwrap(member);
    ASSERT_TRUE(res.ok) << res.error;
    EXPECT_EQ(res.inflate.bytes, data);
}

TEST(Gzip, NameFieldPreserved)
{
    auto data = sampleData(100, 2);
    auto raw = deflateCompress(data).bytes;
    auto member = gzipWrap(raw, data, "file.txt");
    auto res = gzipUnwrap(member);
    ASSERT_TRUE(res.ok) << res.error;
    EXPECT_EQ(res.header.name, "file.txt");
    EXPECT_EQ(res.inflate.bytes, data);
}

TEST(Gzip, EmptyPayload)
{
    std::vector<uint8_t> data;
    auto raw = deflateCompress(data).bytes;
    auto member = gzipWrap(raw, data);
    auto res = gzipUnwrap(member);
    ASSERT_TRUE(res.ok) << res.error;
    EXPECT_TRUE(res.inflate.bytes.empty());
}

TEST(Gzip, BadMagicRejected)
{
    auto data = sampleData(100, 3);
    auto member = gzipWrap(deflateCompress(data).bytes, data);
    member[0] = 0x00;
    auto res = gzipUnwrap(member);
    EXPECT_FALSE(res.ok);
    EXPECT_EQ(res.error, "bad magic");
}

TEST(Gzip, CrcMismatchDetected)
{
    auto data = sampleData(1000, 4);
    auto member = gzipWrap(deflateCompress(data).bytes, data);
    member[member.size() - 5] ^= 0xff;    // corrupt stored CRC
    auto res = gzipUnwrap(member);
    EXPECT_FALSE(res.ok);
    EXPECT_EQ(res.error, "CRC mismatch");
}

TEST(Gzip, IsizeMismatchDetected)
{
    auto data = sampleData(1000, 5);
    auto member = gzipWrap(deflateCompress(data).bytes, data);
    member[member.size() - 1] ^= 0x01;    // corrupt ISIZE
    auto res = gzipUnwrap(member);
    EXPECT_FALSE(res.ok);
    EXPECT_EQ(res.error, "ISIZE mismatch");
}

TEST(Gzip, TruncatedMemberRejected)
{
    auto data = sampleData(1000, 6);
    auto member = gzipWrap(deflateCompress(data).bytes, data);
    member.resize(12);
    auto res = gzipUnwrap(member);
    EXPECT_FALSE(res.ok);
}

TEST(Gzip, PayloadCorruptionDetected)
{
    auto data = sampleData(5000, 7);
    auto member = gzipWrap(deflateCompress(data).bytes, data);
    member[member.size() / 2] ^= 0x55;
    auto res = gzipUnwrap(member);
    // Either inflate fails outright or the CRC catches it.
    EXPECT_FALSE(res.ok);
}

TEST(Gzip, FullHeaderFieldsRoundTrip)
{
    auto data = sampleData(20000, 20);
    deflate::GzipWriteOptions opts;
    opts.name = "payload.bin";
    opts.comment = "produced by nxsim";
    opts.extra = {0x41, 0x42, 0x04, 0x00, 1, 2, 3, 4};    // subfield
    opts.mtime = 1720000000;
    opts.headerCrc = true;
    auto member = deflate::gzipWrapEx(
        deflate::deflateCompress(data).bytes, data, opts);

    auto res = deflate::gzipUnwrap(member);
    ASSERT_TRUE(res.ok) << res.error;
    EXPECT_EQ(res.header.name, "payload.bin");
    EXPECT_EQ(res.header.comment, "produced by nxsim");
    EXPECT_EQ(res.header.extra, opts.extra);
    EXPECT_EQ(res.header.mtime, 1720000000u);
    EXPECT_TRUE(res.header.hcrcPresent);
    EXPECT_TRUE(res.header.hcrcValid);
    EXPECT_EQ(res.inflate.bytes, data);
}

TEST(Gzip, HeaderCrcCatchesHeaderCorruption)
{
    auto data = sampleData(1000, 21);
    deflate::GzipWriteOptions opts;
    opts.name = "x";
    opts.headerCrc = true;
    auto member = deflate::gzipWrapEx(
        deflate::deflateCompress(data).bytes, data, opts);
    member[10] ^= 0x01;    // corrupt the name field
    auto res = deflate::gzipUnwrap(member);
    EXPECT_FALSE(res.ok);
    EXPECT_EQ(res.error, "header CRC mismatch");
}

TEST(Gzip, TruncatedExtraRejected)
{
    auto data = sampleData(100, 22);
    deflate::GzipWriteOptions opts;
    opts.extra = std::vector<uint8_t>(64, 0x5a);
    auto member = deflate::gzipWrapEx(
        deflate::deflateCompress(data).bytes, data, opts);
    member.resize(14);    // cuts inside FEXTRA
    auto res = deflate::gzipUnwrap(member);
    EXPECT_FALSE(res.ok);
}

TEST(Zlib, RoundTrip)
{
    auto data = sampleData(30000, 8);
    auto raw = deflateCompress(data).bytes;
    auto stream = zlibWrap(raw, data);
    auto res = zlibUnwrap(stream);
    ASSERT_TRUE(res.ok) << res.error;
    EXPECT_EQ(res.inflate.bytes, data);
}

TEST(Zlib, HeaderCheckBitsValid)
{
    auto data = sampleData(10, 9);
    for (int level : {0, 1, 6, 9}) {
        auto stream = zlibWrap(deflateCompress(data).bytes, data, level);
        unsigned cmf = stream[0], flg = stream[1];
        EXPECT_EQ((cmf * 256 + flg) % 31, 0u) << "level " << level;
        EXPECT_EQ(cmf & 0x0f, 8u);
    }
}

TEST(Zlib, AdlerMismatchDetected)
{
    auto data = sampleData(1000, 10);
    auto stream = zlibWrap(deflateCompress(data).bytes, data);
    stream[stream.size() - 1] ^= 0x01;
    auto res = zlibUnwrap(stream);
    EXPECT_FALSE(res.ok);
    EXPECT_EQ(res.error, "Adler-32 mismatch");
}

TEST(Zlib, FcheckFailureRejected)
{
    auto data = sampleData(100, 11);
    auto stream = zlibWrap(deflateCompress(data).bytes, data);
    stream[1] ^= 0x01;
    auto res = zlibUnwrap(stream);
    EXPECT_FALSE(res.ok);
    EXPECT_EQ(res.error, "FCHECK failed");
}

TEST(Zlib, TooShortRejected)
{
    std::vector<uint8_t> stream = {0x78, 0x9c};
    auto res = zlibUnwrap(stream);
    EXPECT_FALSE(res.ok);
}
