/**
 * @file
 * nx::Session verification suite (ctest label: session).
 *
 * The session layer is only trustworthy if its routing is *provably*
 * transparent: whatever the policy decides, the bytes the caller gets
 * must be exactly what the chosen backend's direct API would have
 * produced. Four families:
 *
 *  - differential: for every (format x backend x size-straddling-the-
 *    threshold) cell, Session output is bit-identical to the direct
 *    sync path (SoftwareCodec / e842::compress on the software side,
 *    NxDevice / e842::E842Engine on the accelerator side);
 *  - routing properties: the live decision matches
 *    routesToAccelerator() and the policy exactly at and around the
 *    threshold boundary, and is visible in stats();
 *  - fault injection: busy exhaustion, closed windows, retryable and
 *    terminal device faults all complete the request correctly in
 *    software and are counted;
 *  - lifecycle: close semantics and the configure-before-use contract
 *    (death tests).
 *
 * The multi-threaded stress lives in test_session_stress.cc under the
 * `concurrency` label so the TSan stage runs it.
 */

#include <gtest/gtest.h>

#include <vector>

#include "core/device.h"
#include "core/fault_injector.h"
#include "core/session.h"
#include "e842/e842.h"
#include "e842/e842_engine.h"
#include "workloads/corpus.h"

namespace {

using core::JobServer;
using core::JobServerConfig;
using nx::Backend;
using nx::Session;
using nx::SessionFormat;
using nx::SessionPolicy;

constexpr uint64_t kThreshold = 1024;

const SessionFormat kFormats[] = {
    SessionFormat::Gzip, SessionFormat::Zlib,
    SessionFormat::RawDeflate, SessionFormat::E842};

nx::NxConfig
testChip()
{
    return nx::NxConfig::power9();
}

SessionPolicy
basePolicy(SessionFormat f)
{
    SessionPolicy p;
    p.format = f;
    p.accelThresholdBytes = kThreshold;
    return p;
}

nx::Framing
framingOf(SessionFormat f)
{
    switch (f) {
      case SessionFormat::Gzip: return nx::Framing::Gzip;
      case SessionFormat::Zlib: return nx::Framing::Zlib;
      default: return nx::Framing::Raw;
    }
}

/** Direct software-path oracle (what SW-routed output must equal). */
std::vector<uint8_t>
swCompress(SessionFormat f, int level, std::span<const uint8_t> in)
{
    if (f == SessionFormat::E842)
        return e842::compress(in).bytes;
    core::SoftwareCodec codec(level);
    auto r = codec.compress(in, framingOf(f));
    EXPECT_TRUE(r.ok());
    return r.data;
}

/** Direct accelerator-path oracle (the synchronous device API). */
std::vector<uint8_t>
hwCompress(SessionFormat f, std::span<const uint8_t> in, core::Mode mode)
{
    if (f == SessionFormat::E842)
        return e842::E842Engine().compressJob(in).output;
    core::NxDevice dev(testChip());
    auto r = dev.compress(in, framingOf(f), mode);
    EXPECT_TRUE(r.ok());
    return r.data;
}

std::vector<uint8_t>
swDecompress(SessionFormat f, int level, std::span<const uint8_t> in)
{
    if (f == SessionFormat::E842) {
        auto r = e842::decompress(in);
        EXPECT_TRUE(r.ok);
        return r.bytes;
    }
    core::SoftwareCodec codec(level);
    auto r = codec.decompress(in, framingOf(f));
    EXPECT_TRUE(r.ok());
    return r.data;
}

// ---------------------------------------------------------------------------
// Differential: Session output == direct sync path, every cell.
// ---------------------------------------------------------------------------

class SessionDifferential
    : public ::testing::TestWithParam<SessionFormat>
{
};

TEST_P(SessionDifferential, CompressMatchesDirectPathBothBackends)
{
    SessionFormat f = GetParam();
    Session sess(testChip(), basePolicy(f));
    // Sizes straddling the threshold: three software cells, three
    // accelerator cells, including both exact boundary neighbours.
    const size_t sizes[] = {1, kThreshold / 2, kThreshold - 1,
                            kThreshold, kThreshold + 1, 4 * kThreshold};
    for (size_t n : sizes) {
        SCOPED_TRACE(testing::Message()
                     << toString(f) << " n=" << n);
        auto payload = workloads::makeText(n, 42 + n);
        auto res = sess.compress(payload);
        ASSERT_TRUE(res.ok) << res.error;
        EXPECT_FALSE(res.fellBack);
        if (n >= kThreshold) {
            EXPECT_EQ(res.backend, Backend::Accelerator);
            EXPECT_EQ(res.data,
                      hwCompress(f, payload, sess.policy().mode));
        } else {
            EXPECT_EQ(res.backend, Backend::Software);
            EXPECT_EQ(res.data,
                      swCompress(f, sess.policy().level, payload));
        }
        EXPECT_EQ(res.inputBytes, n);
    }
    auto st = sess.stats();
    EXPECT_EQ(st.requests, 6u);
    EXPECT_EQ(st.softwareRouted, 3u);
    EXPECT_EQ(st.accelRouted, 3u);
    EXPECT_EQ(st.fallbacks, 0u);
    sess.close();
}

TEST_P(SessionDifferential, DecompressMatchesDirectPathBothBackends)
{
    SessionFormat f = GetParam();
    auto payload = workloads::makeText(3000, 7);
    auto stream = swCompress(f, 6, payload);

    // Software cell: threshold just above the stream size.
    {
        auto pol = basePolicy(f);
        pol.accelThresholdBytes = stream.size() + 1;
        Session sess(testChip(), pol);
        auto res = sess.decompress(stream);
        ASSERT_TRUE(res.ok) << res.error;
        EXPECT_EQ(res.backend, Backend::Software);
        EXPECT_EQ(res.data, payload);
        EXPECT_EQ(res.data, swDecompress(f, 6, stream));
        sess.close();
    }
    // Accelerator cell: threshold exactly at the stream size (the
    // boundary is inclusive on the accelerator side).
    {
        auto pol = basePolicy(f);
        pol.accelThresholdBytes = stream.size();
        Session sess(testChip(), pol);
        auto res = sess.decompress(stream);
        ASSERT_TRUE(res.ok) << res.error;
        EXPECT_EQ(res.backend, Backend::Accelerator);
        EXPECT_EQ(res.data, payload);
        sess.close();
    }
}

TEST_P(SessionDifferential, RoundTripAcrossBackends)
{
    // Compress on one backend, decompress on the other: the formats
    // are interoperable across backends by construction.
    SessionFormat f = GetParam();
    auto payload = workloads::makeLog(8 << 10, 3);

    auto hwPol = basePolicy(f);
    hwPol.accelThresholdBytes = 0;      // everything to the device
    Session hw(testChip(), hwPol);
    auto c = hw.compress(payload);
    ASSERT_TRUE(c.ok) << c.error;
    EXPECT_EQ(c.backend, Backend::Accelerator);

    auto swPol = basePolicy(f);
    swPol.forceSoftware = true;
    Session sw(testChip(), swPol);
    auto d = sw.decompress(c.data);
    ASSERT_TRUE(d.ok) << d.error;
    EXPECT_EQ(d.backend, Backend::Software);
    EXPECT_EQ(d.data, payload);
    hw.close();
    sw.close();
}

TEST_P(SessionDifferential, FallbackOutputBitIdenticalToSoftware)
{
    // Under a permanently faulting device, accelerator-routed requests
    // must still produce exactly the software stream.
    SessionFormat f = GetParam();
    nx::FaultInjector faults;
    faults.failEveryNth(1);     // every device job faults
    JobServerConfig jcfg;
    jcfg.workers = 2;
    jcfg.faultInjector = &faults;
    JobServer srv(testChip(), jcfg);

    auto pol = basePolicy(f);
    pol.faultRetries = 1;
    Session sess(srv, pol);
    auto payload = workloads::makeText(4 * kThreshold, 11);
    auto res = sess.compress(payload);
    ASSERT_TRUE(res.ok) << res.error;
    EXPECT_TRUE(res.fellBack);
    EXPECT_EQ(res.backend, Backend::Software);
    EXPECT_EQ(res.data, swCompress(f, pol.level, payload));

    auto d = sess.decompress(res.data);
    ASSERT_TRUE(d.ok) << d.error;
    EXPECT_EQ(d.data, payload);

    auto st = sess.stats();
    EXPECT_EQ(st.fallbacks, st.accelRouted);
    EXPECT_GE(st.deviceFaults, st.accelRouted);
    sess.close();
    srv.drainAndStop();
}

INSTANTIATE_TEST_SUITE_P(AllFormats, SessionDifferential,
                         ::testing::ValuesIn(kFormats),
                         [](const auto &pinfo) {
                             switch (pinfo.param) {
                               case SessionFormat::Gzip: return "Gzip";
                               case SessionFormat::Zlib: return "Zlib";
                               case SessionFormat::RawDeflate:
                                 return "RawDeflate";
                               case SessionFormat::E842: return "E842";
                             }
                             return "Unknown";
                         });

// ---------------------------------------------------------------------------
// Routing properties at the threshold boundary.
// ---------------------------------------------------------------------------

TEST(SessionRouting, DecisionMatchesPolicyAroundThreshold)
{
    for (SessionFormat f : kFormats) {
        for (uint64_t delta : {uint64_t{0}, uint64_t{1}, uint64_t{2}}) {
            for (bool below : {true, false}) {
                uint64_t n = below ? kThreshold - 1 - delta
                                   : kThreshold + delta;
                SCOPED_TRACE(testing::Message()
                             << toString(f) << " n=" << n);
                Session sess(testChip(), basePolicy(f));
                EXPECT_EQ(sess.routesToAccelerator(n), !below);
                auto res = sess.compress(
                    workloads::makeText(n, 5));
                ASSERT_TRUE(res.ok);
                EXPECT_EQ(res.backend == Backend::Accelerator, !below);
                auto st = sess.stats();
                EXPECT_EQ(st.accelRouted, below ? 0u : 1u);
                EXPECT_EQ(st.softwareRouted, below ? 1u : 0u);
                sess.close();
            }
        }
    }
}

TEST(SessionRouting, ZeroThresholdRoutesEverythingToDevice)
{
    auto pol = basePolicy(SessionFormat::Gzip);
    pol.accelThresholdBytes = 0;
    Session sess(testChip(), pol);
    auto res = sess.compress(workloads::makeText(16, 1));
    ASSERT_TRUE(res.ok);
    EXPECT_EQ(res.backend, Backend::Accelerator);
    EXPECT_EQ(sess.stats().accelRouted, 1u);
    sess.close();
}

TEST(SessionRouting, ForceSoftwareNeverTouchesTheDevice)
{
    auto pol = basePolicy(SessionFormat::Zlib);
    pol.forceSoftware = true;
    Session sess(testChip(), pol);
    for (size_t n : {size_t{16}, size_t{64 * 1024}}) {
        EXPECT_FALSE(sess.routesToAccelerator(n));
        auto res = sess.compress(workloads::makeText(n, 2));
        ASSERT_TRUE(res.ok);
        EXPECT_EQ(res.backend, Backend::Software);
        EXPECT_FALSE(res.fellBack);
        EXPECT_EQ(res.deviceSubmits, 0);
    }
    auto st = sess.stats();
    EXPECT_EQ(st.accelRouted, 0u);
    EXPECT_EQ(st.pool.acquires, 0u);   // no staging for software legs
    sess.close();
}

// ---------------------------------------------------------------------------
// Fault injection and fallback accounting.
// ---------------------------------------------------------------------------

TEST(SessionFaults, TranslationFaultIsResubmittedThenSucceeds)
{
    nx::FaultInjector faults;
    faults.failNext(1, nx::CondCode::TranslationFault);
    JobServerConfig jcfg;
    jcfg.faultInjector = &faults;
    JobServer srv(testChip(), jcfg);

    auto pol = basePolicy(SessionFormat::Gzip);
    pol.faultRetries = 2;
    Session sess(srv, pol);
    auto payload = workloads::makeText(2 * kThreshold, 9);
    auto res = sess.compress(payload);
    ASSERT_TRUE(res.ok) << res.error;
    EXPECT_EQ(res.backend, Backend::Accelerator);   // retry succeeded
    EXPECT_FALSE(res.fellBack);
    EXPECT_EQ(res.deviceSubmits, 2);
    EXPECT_EQ(res.data, hwCompress(SessionFormat::Gzip, payload,
                                   pol.mode));
    auto st = sess.stats();
    EXPECT_EQ(st.deviceFaults, 1u);
    EXPECT_EQ(st.fallbacks, 0u);
    sess.close();
    srv.drainAndStop();
    EXPECT_EQ(srv.stats().jobFaults, 1u);
    EXPECT_EQ(srv.stats().faultsInjected, 1u);
}

TEST(SessionFaults, TerminalConditionCodeFallsBackWithoutRetry)
{
    nx::FaultInjector faults;
    faults.failNext(2, nx::CondCode::OutputOverflow);
    JobServerConfig jcfg;
    jcfg.faultInjector = &faults;
    JobServer srv(testChip(), jcfg);

    auto pol = basePolicy(SessionFormat::Gzip);
    pol.faultRetries = 3;   // budget exists but must not be spent
    Session sess(srv, pol);
    auto payload = workloads::makeText(2 * kThreshold, 10);
    auto res = sess.compress(payload);
    ASSERT_TRUE(res.ok) << res.error;
    EXPECT_TRUE(res.fellBack);
    EXPECT_EQ(res.deviceSubmits, 1);   // OutputOverflow is not retried
    EXPECT_EQ(res.data, swCompress(SessionFormat::Gzip, pol.level,
                                   payload));
    EXPECT_EQ(sess.stats().deviceFaults, 1u);
    sess.close();
    srv.drainAndStop();
}

TEST(SessionFaults, RetryBudgetExhaustionFallsBack)
{
    nx::FaultInjector faults;
    faults.failNext(3, nx::CondCode::TranslationFault);
    JobServerConfig jcfg;
    jcfg.faultInjector = &faults;
    JobServer srv(testChip(), jcfg);

    auto pol = basePolicy(SessionFormat::Zlib);
    pol.faultRetries = 2;   // 3 submissions, all faulted
    Session sess(srv, pol);
    auto payload = workloads::makeText(2 * kThreshold, 12);
    auto res = sess.compress(payload);
    ASSERT_TRUE(res.ok) << res.error;
    EXPECT_TRUE(res.fellBack);
    EXPECT_EQ(res.deviceSubmits, 3);
    auto st = sess.stats();
    EXPECT_EQ(st.deviceFaults, 3u);
    EXPECT_EQ(st.fallbacks, 1u);
    sess.close();
    srv.drainAndStop();
}

TEST(SessionFaults, BusyExhaustionFallsBackAndIsCounted)
{
    // One window of depth 1, engines gated: the FIFO stays full, so
    // every session paste busy-rejects until the budget runs out.
    JobServerConfig jcfg;
    jcfg.workers = 1;
    jcfg.windows = 1;
    jcfg.window.fifoDepth = 1;
    jcfg.startPaused = true;
    JobServer srv(testChip(), jcfg);
    core::JobSpec filler;
    filler.kind = core::JobKind::Compress;
    filler.payload = workloads::makeText(256, 1);
    auto fill = srv.submitAsync(filler);
    ASSERT_TRUE(fill.accepted());

    auto pol = basePolicy(SessionFormat::Gzip);
    pol.backoff.maxAttempts = 3;
    pol.backoff.initialDelay = std::chrono::microseconds(1);
    pol.backoff.maxDelay = std::chrono::microseconds(2);
    Session sess(srv, pol);
    auto payload = workloads::makeText(2 * kThreshold, 13);
    auto res = sess.compress(payload);
    ASSERT_TRUE(res.ok) << res.error;
    EXPECT_TRUE(res.fellBack);
    EXPECT_EQ(res.backend, Backend::Software);
    EXPECT_EQ(res.data, swCompress(SessionFormat::Gzip, pol.level,
                                   payload));
    auto st = sess.stats();
    EXPECT_EQ(st.busyExhausted, 1u);
    EXPECT_EQ(st.fallbacks, 1u);
    EXPECT_EQ(st.deviceFaults, 0u);

    srv.resume();
    sess.close();
    srv.drainAndStop();
    // The server-side observable (satellite of the same story).
    EXPECT_EQ(srv.stats().busyExhausted, 1u);
    EXPECT_GE(srv.stats().busyRejects, 3u);
}

TEST(SessionFaults, ClosedServerFallsBack)
{
    JobServer srv(testChip());
    srv.drainAndStop();
    Session sess(srv, basePolicy(SessionFormat::RawDeflate));
    auto payload = workloads::makeText(2 * kThreshold, 14);
    auto res = sess.compress(payload);
    ASSERT_TRUE(res.ok) << res.error;
    EXPECT_TRUE(res.fellBack);
    EXPECT_EQ(res.data, swCompress(SessionFormat::RawDeflate, 6,
                                   payload));
    EXPECT_EQ(sess.stats().closedRejects, 1u);
    sess.close();
}

TEST(SessionFaults, CorruptStreamFailsOnBothPaths)
{
    auto payload = workloads::makeText(4 * kThreshold, 15);
    auto stream = swCompress(SessionFormat::Gzip, 6, payload);
    stream[stream.size() / 2] ^= 0xFF;   // corrupt the deflate body

    auto pol = basePolicy(SessionFormat::Gzip);
    pol.accelThresholdBytes = 1;   // device path first
    Session sess(testChip(), pol);
    auto res = sess.decompress(stream);
    EXPECT_FALSE(res.ok);
    EXPECT_FALSE(res.error.empty());
    // BadData is terminal on the device, then software also rejects.
    EXPECT_TRUE(res.fellBack);
    sess.close();
}

// ---------------------------------------------------------------------------
// Stats and pool integration.
// ---------------------------------------------------------------------------

TEST(SessionStats, CountersAddUpAcrossMixedTraffic)
{
    Session sess(testChip(), basePolicy(SessionFormat::Gzip));
    uint64_t expectIn = 0;
    int accel = 0, sw = 0;
    for (int i = 0; i < 12; ++i) {
        size_t n = (i % 2 == 0) ? 256 : 2 * kThreshold;
        auto res = sess.compress(
            workloads::makeText(n, 100 + static_cast<uint64_t>(i)));
        ASSERT_TRUE(res.ok);
        expectIn += n;
        (n >= kThreshold ? accel : sw) += 1;
    }
    auto st = sess.stats();
    EXPECT_EQ(st.requests, 12u);
    EXPECT_EQ(st.softwareRouted + st.accelRouted, st.requests);
    EXPECT_EQ(st.accelRouted, static_cast<uint64_t>(accel));
    EXPECT_EQ(st.softwareRouted, static_cast<uint64_t>(sw));
    EXPECT_EQ(st.bytesIn, expectIn);
    EXPECT_GT(st.bytesOut, 0u);
    EXPECT_EQ(st.fallbacks, 0u);
    // Every accel-routed request staged exactly one pool buffer, all
    // released by request end, all served from the same hot slab.
    EXPECT_EQ(st.pool.acquires, st.accelRouted);
    EXPECT_EQ(st.pool.releases, st.pool.acquires);
    EXPECT_EQ(st.pool.poolHits, st.pool.acquires);
    EXPECT_EQ(st.pool.heapFallbacks, 0u);
    EXPECT_EQ(st.pool.freeSlabs, st.pool.slabCount);
    sess.close();
}

TEST(SessionStats, ExhaustedPoolStillServesRequests)
{
    nx::BufferPoolConfig pool;
    pool.slabCount = 0;   // every staging acquire heap-falls-back
    auto pol = basePolicy(SessionFormat::Gzip);
    pol.accelThresholdBytes = 1;
    Session sess(testChip(), pol, pool);
    auto payload = workloads::makeText(4096, 21);
    auto res = sess.compress(payload);
    ASSERT_TRUE(res.ok);
    EXPECT_EQ(res.backend, Backend::Accelerator);
    auto st = sess.stats();
    EXPECT_EQ(st.pool.heapFallbacks, 1u);
    EXPECT_EQ(st.pool.poolHits, 0u);
    sess.close();
}

// ---------------------------------------------------------------------------
// Lifecycle contracts.
// ---------------------------------------------------------------------------

TEST(SessionLifecycle, ConfigureBeforeFirstRequestTakesEffect)
{
    Session sess(testChip());
    SessionPolicy pol = basePolicy(SessionFormat::Zlib);
    pol.forceSoftware = true;
    sess.configure(pol);
    auto res = sess.compress(workloads::makeText(64 << 10, 3));
    ASSERT_TRUE(res.ok);
    EXPECT_EQ(res.backend, Backend::Software);
    sess.close();
}

TEST(SessionLifecycle, CloseIsIdempotentAndStatsSurvive)
{
    Session sess(testChip(), basePolicy(SessionFormat::Gzip));
    auto res = sess.compress(workloads::makeText(128, 4));
    ASSERT_TRUE(res.ok);
    sess.close();
    sess.close();   // runtime-idempotent (the destructor closes too)
    EXPECT_EQ(sess.stats().requests, 1u);
}

TEST(SessionLifecycleDeathTest, RequestAfterCloseAborts)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    Session sess(testChip(), basePolicy(SessionFormat::Gzip));
    sess.close();
    auto data = workloads::makeText(64, 5);
    EXPECT_DEATH((void)sess.compress(data),
                 "request on a closed session");
}

TEST(SessionLifecycleDeathTest, ConfigureAfterUseAborts)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    Session sess(testChip(), basePolicy(SessionFormat::Gzip));
    (void)sess.compress(workloads::makeText(64, 6));
    SessionPolicy pol;
    EXPECT_DEATH(sess.configure(pol),
                 "configure\\(\\) after the first request");
    sess.close();
}

} // namespace
