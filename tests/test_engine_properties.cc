/**
 * @file
 * Parameterized property suite over the accelerator engines: for a
 * grid of (generation, mode, data shape, size), every compressed
 * stream must round-trip through the independent software inflater
 * with correct checksums, and the timing model must respect its
 * invariants (peak-rate bound, monotonicity in input size).
 */

#include <gtest/gtest.h>

#include <tuple>

#include "core/device.h"
#include "core/job_server.h"
#include "core/topology.h"
#include "deflate/gzip_stream.h"
#include "util/crc32.h"
#include "workloads/corpus.h"

namespace {

enum class Gen { P9, Z15 };
enum class Data { Text, Log, Json, Binary, Random, Zeros, Mixed };

const char *
genName(Gen g)
{
    return g == Gen::P9 ? "P9" : "Z15";
}

const char *
dataName(Data d)
{
    switch (d) {
      case Data::Text: return "Text";
      case Data::Log: return "Log";
      case Data::Json: return "Json";
      case Data::Binary: return "Binary";
      case Data::Random: return "Random";
      case Data::Zeros: return "Zeros";
      case Data::Mixed: return "Mixed";
    }
    return "?";
}

const char *
modeName(core::Mode m)
{
    switch (m) {
      case core::Mode::Fht: return "Fht";
      case core::Mode::DhtSampled: return "DhtSampled";
      case core::Mode::DhtTwoPass: return "DhtTwoPass";
      case core::Mode::Auto: return "Auto";
    }
    return "?";
}

std::vector<uint8_t>
makeData(Data d, size_t n, uint64_t seed)
{
    switch (d) {
      case Data::Text: return workloads::makeText(n, seed);
      case Data::Log: return workloads::makeLog(n, seed);
      case Data::Json: return workloads::makeJson(n, seed);
      case Data::Binary: return workloads::makeBinary(n, seed);
      case Data::Random: return workloads::makeRandom(n, seed);
      case Data::Zeros: return workloads::makeZeros(n);
      case Data::Mixed: return workloads::makeMixed(n, seed);
    }
    return {};
}

using Param = std::tuple<Gen, core::Mode, Data, size_t>;

std::string
paramName(const ::testing::TestParamInfo<Param> &info)
{
    return std::string(genName(std::get<0>(info.param))) + "_" +
        modeName(std::get<1>(info.param)) + "_" +
        dataName(std::get<2>(info.param)) + "_" +
        std::to_string(std::get<3>(info.param));
}

} // namespace

class EngineProperty : public ::testing::TestWithParam<Param>
{
};

TEST_P(EngineProperty, RoundTripWithChecksumAndRateBound)
{
    auto [gen, mode, data, size] = GetParam();
    auto cfg = gen == Gen::P9 ? nx::NxConfig::power9()
                              : nx::NxConfig::z15();
    auto input = makeData(data, size, 0xabc + size);

    core::NxDevice dev(cfg);
    auto c = dev.compress(input, nx::Framing::Gzip, mode);
    ASSERT_TRUE(c.ok());

    // Independent decode path with CRC verification.
    auto res = deflate::gzipUnwrap(c.data);
    ASSERT_TRUE(res.ok) << res.error;
    EXPECT_EQ(res.inflate.bytes, input);
    EXPECT_EQ(c.csb.checksum, util::crc32(input));

    // Device decode path agrees.
    auto d = dev.decompress(c.data, nx::Framing::Gzip);
    ASSERT_TRUE(d.ok());
    EXPECT_EQ(d.data, input);

    // Timing invariants.
    EXPECT_GT(c.engineCycles, 0u);
    if (!input.empty()) {
        EXPECT_LE(c.sourceBps(), cfg.peakCompressBps() * 1.01);
        double out_bps = static_cast<double>(d.data.size()) /
            d.seconds;
        EXPECT_LE(out_bps, cfg.peakDecompressBps() * 1.01);
    }
}

INSTANTIATE_TEST_SUITE_P(Grid, EngineProperty,
    ::testing::Combine(
        ::testing::Values(Gen::P9, Gen::Z15),
        ::testing::Values(core::Mode::Fht, core::Mode::DhtSampled,
                          core::Mode::DhtTwoPass),
        ::testing::Values(Data::Text, Data::Log, Data::Json,
                          Data::Binary, Data::Random, Data::Zeros,
                          Data::Mixed),
        ::testing::Values(size_t{0}, size_t{1}, size_t{4096},
                          size_t{100000})),
    paramName);

/** Size monotonicity of the compress timing model, per generation. */
class EngineTiming : public ::testing::TestWithParam<Gen>
{
};

TEST_P(EngineTiming, CyclesMonotonicInSize)
{
    auto cfg = GetParam() == Gen::P9 ? nx::NxConfig::power9()
                                     : nx::NxConfig::z15();
    core::NxDevice dev(cfg);
    auto base = workloads::makeText(1 << 20, 7);
    sim::Tick prev = 0;
    for (size_t size : {size_t{16} << 10, size_t{128} << 10,
                        size_t{1} << 20}) {
        auto c = dev.compress(
            std::span<const uint8_t>(base.data(), size),
            nx::Framing::Raw, core::Mode::DhtSampled);
        ASSERT_TRUE(c.ok());
        EXPECT_GT(c.engineCycles, prev);
        prev = c.engineCycles;
    }
}

INSTANTIATE_TEST_SUITE_P(Gens, EngineTiming,
    ::testing::Values(Gen::P9, Gen::Z15),
    [](const ::testing::TestParamInfo<Gen> &pinfo) {
        return std::string(genName(pinfo.param));
    });

/**
 * Async/sync equivalence: for the same job list, results coming back
 * through the multithreaded core::JobServer must be bit-identical to
 * NxDevice's synchronous path — same stream bytes, same checksum, same
 * modelled engine cycles — across all four core::Mode values, per
 * generation. This is the contract that lets the dispatch layer sit in
 * front of the engines without changing any functional behaviour.
 */
class AsyncSyncEquivalence : public ::testing::TestWithParam<Gen>
{
};

TEST_P(AsyncSyncEquivalence, JobServerMatchesDeviceBitForBit)
{
    auto cfg = GetParam() == Gen::P9 ? nx::NxConfig::power9()
                                     : nx::NxConfig::z15();

    // A job list crossing every mode with payloads that straddle the
    // Auto FHT/DHT threshold and mix data shapes.
    struct Job
    {
        core::Mode mode;
        std::vector<uint8_t> payload;
    };
    std::vector<Job> jobList;
    size_t below = core::NxDevice::autoFhtThreshold() / 2;
    size_t above = core::NxDevice::autoFhtThreshold() * 2;
    uint64_t seed = 0x5eed;
    for (core::Mode mode : {core::Mode::Fht, core::Mode::DhtSampled,
                            core::Mode::DhtTwoPass, core::Mode::Auto}) {
        jobList.push_back({mode, workloads::makeText(below, seed++)});
        jobList.push_back({mode, workloads::makeMixed(above, seed++)});
        jobList.push_back({mode, workloads::makeRandom(4096, seed++)});
        jobList.push_back({mode, {}});    // empty payload edge
    }

    // Synchronous reference.
    core::NxDevice dev(cfg);
    std::vector<core::JobResult> sync;
    for (const Job &j : jobList)
        sync.push_back(dev.compress(j.payload, nx::Framing::Gzip,
                                    j.mode));

    // Same list through the threaded dispatch layer.
    core::JobServerConfig jcfg;
    jcfg.workers = 3;
    jcfg.windows = 2;
    core::JobServer srv(cfg, jcfg);
    std::vector<core::Ticket> tickets;
    for (size_t i = 0; i < jobList.size(); ++i) {
        core::JobSpec spec;
        spec.kind = core::JobKind::Compress;
        spec.mode = jobList[i].mode;
        spec.payload = jobList[i].payload;
        auto r = srv.submitWithRetry(spec,
                                     static_cast<int>(i) %
                                         srv.windowCount());
        ASSERT_TRUE(r.accepted());
        tickets.push_back(r.ticket);
    }

    for (size_t i = 0; i < tickets.size(); ++i) {
        auto async = srv.wait(tickets[i]);
        ASSERT_TRUE(async.result.ok()) << "job " << i;
        ASSERT_TRUE(sync[i].ok()) << "job " << i;
        EXPECT_EQ(async.result.data, sync[i].data) << "job " << i;
        EXPECT_EQ(async.result.csb.checksum, sync[i].csb.checksum);
        EXPECT_EQ(async.result.engineCycles, sync[i].engineCycles);

        // Decompress equivalence on the non-empty streams.
        if (jobList[i].payload.empty())
            continue;
        auto dSync = dev.decompress(sync[i].data, nx::Framing::Gzip);
        core::JobSpec dSpec;
        dSpec.kind = core::JobKind::Decompress;
        dSpec.payload = async.result.data;
        auto dTicket = srv.submitWithRetry(dSpec);
        ASSERT_TRUE(dTicket.accepted());
        auto dAsync = srv.wait(dTicket.ticket);
        ASSERT_TRUE(dAsync.result.ok());
        ASSERT_TRUE(dSync.ok());
        EXPECT_EQ(dAsync.result.data, dSync.data);
        EXPECT_EQ(dAsync.result.data, jobList[i].payload);
        EXPECT_EQ(dAsync.result.engineCycles, dSync.engineCycles);
    }
}

INSTANTIATE_TEST_SUITE_P(Gens, AsyncSyncEquivalence,
    ::testing::Values(Gen::P9, Gen::Z15),
    [](const ::testing::TestParamInfo<Gen> &pinfo) {
        return std::string(genName(pinfo.param));
    });
