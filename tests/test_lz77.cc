/**
 * @file
 * LZ77 matcher tests: token validity (tokensReproduce), window limits,
 * lazy-vs-fast behaviour, and the token helpers.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <string>

#include "deflate/lz77.h"
#include "util/prng.h"

using deflate::expandTokens;
using deflate::levelParams;
using deflate::Lz77Matcher;
using deflate::summarize;
using deflate::Token;
using deflate::tokensReproduce;

namespace {

std::vector<uint8_t>
bytesOf(const std::string &s)
{
    return {s.begin(), s.end()};
}

std::vector<uint8_t>
randomBytes(size_t n, uint64_t seed)
{
    util::Xoshiro256 rng(seed);
    std::vector<uint8_t> v(n);
    for (auto &b : v)
        b = static_cast<uint8_t>(rng.next());
    return v;
}

std::vector<uint8_t>
repetitiveText(size_t n, uint64_t seed)
{
    static const char *words[] = {"the", "quick", "brown", "fox",
        "jumps", "over", "lazy", "dog", "compression", "accelerator"};
    util::Xoshiro256 rng(seed);
    std::vector<uint8_t> v;
    while (v.size() < n) {
        const char *w = words[rng.below(10)];
        v.insert(v.end(), w, w + std::strlen(w));
        v.push_back(' ');
    }
    v.resize(n);
    return v;
}

} // namespace

TEST(Token, Helpers)
{
    Token l = Token::lit(0x41);
    EXPECT_TRUE(l.isLiteral());
    EXPECT_EQ(l.literal, 0x41);
    Token m = Token::match(17, 300);
    EXPECT_FALSE(m.isLiteral());
    EXPECT_EQ(m.length, 17);
    EXPECT_EQ(m.dist, 300);
}

TEST(ExpandTokens, RebuildsOverlappedCopy)
{
    // "abcabcabc" via a classic overlapping match (dist 3, len 6).
    std::vector<Token> tokens = {
        Token::lit('a'), Token::lit('b'), Token::lit('c'),
        Token::match(6, 3),
    };
    auto out = expandTokens(tokens);
    EXPECT_EQ(std::string(out.begin(), out.end()), "abcabcabc");
}

TEST(ExpandTokens, InvalidDistanceReturnsEmpty)
{
    std::vector<Token> tokens = {Token::lit('x'), Token::match(3, 5)};
    EXPECT_TRUE(expandTokens(tokens).empty());
}

TEST(TokensReproduce, DetectsCorruption)
{
    auto input = bytesOf("abcabcabc");
    std::vector<Token> good = {
        Token::lit('a'), Token::lit('b'), Token::lit('c'),
        Token::match(6, 3),
    };
    EXPECT_TRUE(tokensReproduce(good, input));
    std::vector<Token> bad = good;
    bad[3] = Token::match(6, 2);
    EXPECT_FALSE(tokensReproduce(bad, input));
    std::vector<Token> shortTokens(good.begin(), good.end() - 1);
    EXPECT_FALSE(tokensReproduce(shortTokens, input));
}

TEST(Lz77, EmptyInput)
{
    Lz77Matcher m(levelParams(6));
    auto tokens = m.tokenize({});
    EXPECT_TRUE(tokens.empty());
}

TEST(Lz77, AllLiteralsOnRandomData)
{
    auto input = randomBytes(4096, 1);
    Lz77Matcher m(levelParams(6));
    auto tokens = m.tokenize(input);
    ASSERT_TRUE(tokensReproduce(tokens, input));
    auto s = summarize(tokens);
    // Random bytes have almost no 3-byte repeats within 32 KB; expect the
    // stream to be dominated by literals.
    EXPECT_GT(s.literals * 10, s.matchedBytes);
}

TEST(Lz77, FindsLongRunMatch)
{
    std::vector<uint8_t> input(1000, 'x');
    Lz77Matcher m(levelParams(6));
    auto tokens = m.tokenize(input);
    ASSERT_TRUE(tokensReproduce(tokens, input));
    auto s = summarize(tokens);
    // One literal then RLE-style matches at distance 1.
    EXPECT_LE(s.literals, 3u);
    EXPECT_GE(s.matchedBytes, 990u);
}

TEST(Lz77, MaxMatchLengthRespected)
{
    std::vector<uint8_t> input(10000, 'y');
    Lz77Matcher m(levelParams(9));
    auto tokens = m.tokenize(input);
    for (const Token &t : tokens) {
        if (!t.isLiteral()) {
            EXPECT_LE(t.length, deflate::kMaxMatch);
        }
    }
    EXPECT_TRUE(tokensReproduce(tokens, input));
}

TEST(Lz77, WindowLimitRespected)
{
    // Two identical 1 KB chunks separated by > 32 KB of random data:
    // the second copy must NOT be matched against the first.
    auto chunk = repetitiveText(1024, 3);
    auto filler = randomBytes(40000, 4);
    std::vector<uint8_t> input;
    input.insert(input.end(), chunk.begin(), chunk.end());
    input.insert(input.end(), filler.begin(), filler.end());
    input.insert(input.end(), chunk.begin(), chunk.end());

    Lz77Matcher m(levelParams(9));
    auto tokens = m.tokenize(input);
    ASSERT_TRUE(tokensReproduce(tokens, input));
    for (const Token &t : tokens) {
        if (!t.isLiteral()) {
            EXPECT_LE(t.dist, deflate::kWindowSize);
        }
    }
}

TEST(Lz77, TextCompressesWell)
{
    auto input = repetitiveText(64 * 1024, 5);
    Lz77Matcher m(levelParams(6));
    auto tokens = m.tokenize(input);
    ASSERT_TRUE(tokensReproduce(tokens, input));
    auto s = summarize(tokens);
    // Word-repetitive text should be mostly matches.
    EXPECT_GT(s.matchedBytes, s.literals * 4);
}

TEST(Lz77, HigherLevelNeverWorseTokens)
{
    auto input = repetitiveText(32 * 1024, 6);
    Lz77Matcher fast(levelParams(1));
    Lz77Matcher best(levelParams(9));
    auto tf = fast.tokenize(input);
    auto tb = best.tokenize(input);
    ASSERT_TRUE(tokensReproduce(tf, input));
    ASSERT_TRUE(tokensReproduce(tb, input));
    // Level 9 should produce no more tokens than level 1 (better
    // matching => fewer, longer tokens). Allow small slack for lazy
    // corner cases.
    EXPECT_LE(tb.size(), tf.size() + tf.size() / 20);
}

TEST(Lz77, FastModeMatchesGreedily)
{
    auto input = bytesOf("abcdXabcdabcd");
    Lz77Matcher m(levelParams(1));    // non-lazy
    auto tokens = m.tokenize(input);
    ASSERT_TRUE(tokensReproduce(tokens, input));
    auto s = summarize(tokens);
    EXPECT_GE(s.matches, 1u);
}

TEST(Lz77, StoreLevelEmitsOnlyLiterals)
{
    auto input = repetitiveText(1000, 7);
    Lz77Matcher m(levelParams(0));
    auto tokens = m.tokenize(input);
    EXPECT_EQ(tokens.size(), input.size());
    for (const Token &t : tokens)
        EXPECT_TRUE(t.isLiteral());
}

TEST(Lz77, DeterministicAcrossRuns)
{
    auto input = repetitiveText(8192, 8);
    Lz77Matcher m1(levelParams(6));
    Lz77Matcher m2(levelParams(6));
    auto t1 = m1.tokenize(input);
    auto t2 = m2.tokenize(input);
    ASSERT_EQ(t1.size(), t2.size());
    for (size_t i = 0; i < t1.size(); ++i) {
        EXPECT_EQ(t1[i].length, t2[i].length);
        EXPECT_EQ(t1[i].dist, t2[i].dist);
        EXPECT_EQ(t1[i].literal, t2[i].literal);
    }
}

TEST(Lz77, HistoryPrimedTokenizeReferencesHistory)
{
    // tokenize(buf, start) must emit tokens only for [start, end) but
    // may reference the primed history — the streaming/dictionary
    // primitive.
    auto chunk = repetitiveText(4096, 10);
    std::vector<uint8_t> buf(chunk);
    buf.insert(buf.end(), chunk.begin(), chunk.end());

    Lz77Matcher m(levelParams(6));
    auto tokens = m.tokenize(buf, chunk.size());
    // Tokens cover exactly the second copy.
    size_t covered = 0;
    bool crossed = false;
    for (const auto &t : tokens) {
        if (t.isLiteral()) {
            ++covered;
        } else {
            if (t.dist > covered)
                crossed = true;    // reaches into the history
            covered += t.length;
        }
    }
    EXPECT_EQ(covered, chunk.size());
    EXPECT_TRUE(crossed);
    // The duplicate chunk should compress to almost pure matches.
    auto s = summarize(tokens);
    EXPECT_GT(s.matchedBytes, chunk.size() * 9 / 10);
}

TEST(LevelParams, TableMatchesZlibShape)
{
    // Spot-check the level table: effort knobs must grow with level.
    auto p1 = levelParams(1);
    auto p6 = levelParams(6);
    auto p9 = levelParams(9);
    EXPECT_FALSE(p1.lazy);
    EXPECT_TRUE(p6.lazy);
    EXPECT_LT(p1.maxChain, p6.maxChain);
    EXPECT_LT(p6.maxChain, p9.maxChain);
    EXPECT_LE(p6.niceLength, p9.niceLength);
    EXPECT_TRUE(levelParams(0).store);
    // Out-of-range clamps to the strongest setting.
    EXPECT_EQ(levelParams(42).maxChain, p9.maxChain);
}

TEST(Lz77, ChainStepsGrowWithLevel)
{
    auto input = repetitiveText(64 * 1024, 9);
    Lz77Matcher fast(levelParams(1));
    Lz77Matcher best(levelParams(9));
    fast.tokenize(input);
    uint64_t fastSteps = fast.chainSteps();
    best.tokenize(input);
    uint64_t bestSteps = best.chainSteps();
    EXPECT_GT(bestSteps, fastSteps);
}
