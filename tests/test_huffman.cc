/**
 * @file
 * Huffman coder tests: canonical code construction, length limiting,
 * decode-table validity checks, and encode/decode round trips.
 */

#include <gtest/gtest.h>

#include <numeric>

#include "deflate/huffman.h"
#include "util/prng.h"

using deflate::buildCodeLengths;
using deflate::HuffmanCode;
using deflate::HuffmanDecodeTable;

namespace {

/** Kraft sum in units of 2^-max over nonzero lengths. */
uint64_t
kraftSum(const std::vector<uint8_t> &lengths, int max_bits)
{
    uint64_t k = 0;
    for (uint8_t l : lengths)
        if (l)
            k += 1ull << (max_bits - l);
    return k;
}

} // namespace

TEST(BuildCodeLengths, EmptyFrequencies)
{
    std::vector<uint64_t> freqs(10, 0);
    auto lengths = buildCodeLengths(freqs, 15);
    for (uint8_t l : lengths)
        EXPECT_EQ(l, 0);
}

TEST(BuildCodeLengths, SingleSymbolGetsOneBit)
{
    std::vector<uint64_t> freqs(10, 0);
    freqs[3] = 100;
    auto lengths = buildCodeLengths(freqs, 15);
    EXPECT_EQ(lengths[3], 1);
    for (size_t i = 0; i < lengths.size(); ++i) {
        if (i != 3) {
            EXPECT_EQ(lengths[i], 0);
        }
    }
}

TEST(BuildCodeLengths, TwoSymbols)
{
    std::vector<uint64_t> freqs = {5, 0, 1000};
    auto lengths = buildCodeLengths(freqs, 15);
    EXPECT_EQ(lengths[0], 1);
    EXPECT_EQ(lengths[2], 1);
    EXPECT_EQ(lengths[1], 0);
}

TEST(BuildCodeLengths, KraftCompleteness)
{
    util::Xoshiro256 rng(123);
    for (int trial = 0; trial < 50; ++trial) {
        std::vector<uint64_t> freqs(286);
        for (auto &f : freqs)
            f = rng.below(1000);
        auto lengths = buildCodeLengths(freqs, 15);
        int used = 0;
        for (uint8_t l : lengths)
            if (l)
                ++used;
        if (used >= 2) {
            EXPECT_EQ(kraftSum(lengths, 15), 1ull << 15);
        }
    }
}

TEST(BuildCodeLengths, RespectsMaxBitsWithSkewedFreqs)
{
    // Fibonacci-like frequencies force deep unbalanced trees.
    std::vector<uint64_t> freqs(40);
    uint64_t a = 1, b = 1;
    for (auto &f : freqs) {
        f = a;
        uint64_t t = a + b;
        a = b;
        b = t;
    }
    auto lengths = buildCodeLengths(freqs, 15);
    for (uint8_t l : lengths) {
        EXPECT_GT(l, 0);
        EXPECT_LE(l, 15);
    }
    EXPECT_EQ(kraftSum(lengths, 15), 1ull << 15);

    auto lengths7 = buildCodeLengths(freqs, 7);
    // 40 symbols cannot all fit in 7 bits... 2^7=128 >= 40, they can.
    for (uint8_t l : lengths7)
        EXPECT_LE(l, 7);
    EXPECT_EQ(kraftSum(lengths7, 7), 1ull << 7);
}

TEST(BuildCodeLengths, FrequentSymbolsGetShorterCodes)
{
    std::vector<uint64_t> freqs = {1000, 1, 1, 1, 1, 1, 1, 1};
    auto lengths = buildCodeLengths(freqs, 15);
    for (size_t i = 1; i < freqs.size(); ++i)
        EXPECT_LE(lengths[0], lengths[i]);
}

TEST(HuffmanCode, FixedLitLenMatchesRfc)
{
    const auto &c = HuffmanCode::fixedLitLen();
    EXPECT_EQ(c.length(0), 8);
    EXPECT_EQ(c.length(143), 8);
    EXPECT_EQ(c.length(144), 9);
    EXPECT_EQ(c.length(255), 9);
    EXPECT_EQ(c.length(256), 7);
    EXPECT_EQ(c.length(279), 7);
    EXPECT_EQ(c.length(280), 8);
    EXPECT_EQ(c.length(287), 8);
    // RFC 1951: literal 0 encodes as 00110000 (MSB-first); our stored
    // code is bit-reversed for the LSB-first writer.
    EXPECT_EQ(c.code(0), util::reverseBits(0b00110000, 8));
    // Symbol 256 encodes as 0000000.
    EXPECT_EQ(c.code(256), 0u);
}

TEST(HuffmanCode, CanonicalOrdering)
{
    // lengths {2,1,3,3} -> canonical codes per RFC: B=0, A=10, C=110,
    // D=111.
    std::vector<uint8_t> lengths = {2, 1, 3, 3};
    HuffmanCode c(lengths);
    EXPECT_EQ(c.code(1), util::reverseBits(0b0, 1));
    EXPECT_EQ(c.code(0), util::reverseBits(0b10, 2));
    EXPECT_EQ(c.code(2), util::reverseBits(0b110, 3));
    EXPECT_EQ(c.code(3), util::reverseBits(0b111, 3));
}

TEST(HuffmanCode, CostBitsSums)
{
    std::vector<uint8_t> lengths = {2, 1, 3, 3};
    HuffmanCode c(lengths);
    std::vector<uint64_t> freqs = {10, 20, 5, 1};
    EXPECT_EQ(c.costBits(freqs), 10u * 2 + 20u * 1 + 5u * 3 + 1u * 3);
}

TEST(HuffmanDecodeTable, RejectsOversubscribed)
{
    std::vector<uint8_t> lengths = {1, 1, 1};    // Kraft sum 1.5
    HuffmanDecodeTable t;
    EXPECT_FALSE(t.init(lengths));
}

TEST(HuffmanDecodeTable, RejectsIncompleteMultiSymbol)
{
    std::vector<uint8_t> lengths = {2, 2, 2};    // Kraft sum 0.75
    HuffmanDecodeTable t;
    EXPECT_FALSE(t.init(lengths));
}

TEST(HuffmanDecodeTable, AcceptsDegenerateSingleSymbol)
{
    std::vector<uint8_t> lengths = {0, 1, 0};
    HuffmanDecodeTable t;
    EXPECT_TRUE(t.init(lengths));
}

TEST(HuffmanDecodeTable, RoundTripRandomAlphabets)
{
    util::Xoshiro256 rng(99);
    for (int trial = 0; trial < 20; ++trial) {
        size_t nsyms = 2 + rng.below(280);
        std::vector<uint64_t> freqs(nsyms);
        for (auto &f : freqs)
            f = rng.below(500);
        freqs[0] = 1;    // ensure at least one used symbol
        auto lengths = buildCodeLengths(freqs, 15);
        HuffmanCode code(lengths);
        HuffmanDecodeTable table;
        ASSERT_TRUE(table.init(lengths));

        // Encode a random symbol sequence drawn from used symbols.
        std::vector<int> used;
        for (size_t s = 0; s < nsyms; ++s)
            if (lengths[s])
                used.push_back(static_cast<int>(s));
        ASSERT_FALSE(used.empty());

        std::vector<int> msg(200);
        util::BitWriter bw;
        for (auto &m : msg) {
            m = used[rng.below(used.size())];
            code.writeSymbol(bw, m);
        }
        auto bytes = bw.take();
        util::BitReader br(bytes);
        for (int expected : msg)
            ASSERT_EQ(table.decode(br), expected);
    }
}

TEST(HuffmanDecodeTable, SevenBitClcAlphabet)
{
    std::vector<uint64_t> freqs(19, 3);
    auto lengths = buildCodeLengths(freqs, 7);
    HuffmanCode code(lengths);
    HuffmanDecodeTable table;
    ASSERT_TRUE(table.init(lengths, 7));
    util::BitWriter bw;
    for (int s = 0; s < 19; ++s)
        code.writeSymbol(bw, s);
    auto bytes = bw.take();
    util::BitReader br(bytes);
    for (int s = 0; s < 19; ++s)
        ASSERT_EQ(table.decode(br), s);
}
