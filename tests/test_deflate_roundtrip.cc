/**
 * @file
 * End-to-end software codec round trips: deflateCompress -> inflate for
 * every level, several data shapes and sizes, including parameterized
 * property-style sweeps.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <tuple>

#include "deflate/deflate_encoder.h"
#include "deflate/inflate_decoder.h"
#include "util/prng.h"

using deflate::DeflateOptions;
using deflate::deflateCompress;
using deflate::inflateDecompress;

namespace {

enum class Shape
{
    Random,
    Zeros,
    Text,
    Cyclic,
    NearlyZero,
    Ascending,
};

const char *
shapeName(Shape s)
{
    switch (s) {
      case Shape::Random: return "Random";
      case Shape::Zeros: return "Zeros";
      case Shape::Text: return "Text";
      case Shape::Cyclic: return "Cyclic";
      case Shape::NearlyZero: return "NearlyZero";
      case Shape::Ascending: return "Ascending";
    }
    return "?";
}

std::vector<uint8_t>
makeData(Shape shape, size_t n, uint64_t seed)
{
    util::Xoshiro256 rng(seed);
    std::vector<uint8_t> v(n);
    switch (shape) {
      case Shape::Random:
        for (auto &b : v)
            b = static_cast<uint8_t>(rng.next());
        break;
      case Shape::Zeros:
        break;
      case Shape::Text: {
        static const char *words[] = {"lorem", "ipsum", "dolor", "sit",
            "amet", "consectetur", "adipiscing", "elit", "sed", "do"};
        size_t i = 0;
        while (i < n) {
            const char *w = words[rng.below(10)];
            size_t len = std::strlen(w);
            for (size_t j = 0; j < len && i < n; ++j)
                v[i++] = static_cast<uint8_t>(w[j]);
            if (i < n)
                v[i++] = ' ';
        }
        break;
      }
      case Shape::Cyclic:
        for (size_t i = 0; i < n; ++i)
            v[i] = static_cast<uint8_t>(i % 251);
        break;
      case Shape::NearlyZero:
        for (auto &b : v)
            b = rng.chance(0.02) ? static_cast<uint8_t>(rng.next()) : 0;
        break;
      case Shape::Ascending:
        for (size_t i = 0; i < n; ++i)
            v[i] = static_cast<uint8_t>(i & 0xff);
        break;
    }
    return v;
}

} // namespace

/** (level, shape, size) sweep. */
class RoundTrip : public ::testing::TestWithParam<
    std::tuple<int, Shape, size_t>>
{
};

TEST_P(RoundTrip, LosslessAtEveryLevel)
{
    auto [level, shape, size] = GetParam();
    auto input = makeData(shape, size,
                          0xc0ffee + size + static_cast<size_t>(level));

    DeflateOptions opts;
    opts.level = level;
    auto compressed = deflateCompress(input, opts);
    auto out = inflateDecompress(compressed.bytes);
    ASSERT_TRUE(out.ok()) << "level " << level << " shape "
        << shapeName(shape) << " size " << size << ": "
        << deflate::toString(out.status);
    ASSERT_EQ(out.bytes.size(), input.size());
    EXPECT_TRUE(out.bytes == input);
}

namespace {

std::string
roundTripName(
    const ::testing::TestParamInfo<std::tuple<int, Shape, size_t>> &info)
{
    int level = std::get<0>(info.param);
    Shape shape = std::get<1>(info.param);
    size_t size = std::get<2>(info.param);
    return std::string("L") + std::to_string(level) + "_" +
        shapeName(shape) + "_" + std::to_string(size);
}

} // namespace

INSTANTIATE_TEST_SUITE_P(Levels, RoundTrip,
    ::testing::Combine(
        ::testing::Values(0, 1, 2, 3, 4, 5, 6, 7, 8, 9),
        ::testing::Values(Shape::Random, Shape::Zeros, Shape::Text,
                          Shape::Cyclic, Shape::NearlyZero,
                          Shape::Ascending),
        ::testing::Values(size_t{0}, size_t{1}, size_t{100},
                          size_t{65536}, size_t{300000})),
    roundTripName);

TEST(DeflateEncoder, EmptyInputProducesValidStream)
{
    auto res = deflateCompress({});
    EXPECT_FALSE(res.bytes.empty());
    auto out = inflateDecompress(res.bytes);
    ASSERT_TRUE(out.ok());
    EXPECT_TRUE(out.bytes.empty());
}

TEST(DeflateEncoder, RandomDataFallsBackToStored)
{
    auto input = makeData(Shape::Random, 200000, 42);
    auto res = deflateCompress(input);
    // Incompressible data should mostly use stored blocks, keeping
    // expansion under the stored-block framing overhead (~0.03 %).
    EXPECT_GE(res.storedBlocks, 1u);
    EXPECT_LT(res.bytes.size(), input.size() + input.size() / 100 + 64);
}

TEST(DeflateEncoder, TextUsesDynamicBlocksAndCompresses)
{
    auto input = makeData(Shape::Text, 200000, 43);
    auto res = deflateCompress(input);
    EXPECT_GE(res.dynamicBlocks, 1u);
    EXPECT_LT(res.bytes.size(), input.size() / 3);
}

TEST(DeflateEncoder, ZerosCompressExtremely)
{
    auto input = makeData(Shape::Zeros, 1 << 20, 0);
    auto res = deflateCompress(input);
    EXPECT_LT(res.bytes.size(), 2048u);
    auto out = inflateDecompress(res.bytes);
    ASSERT_TRUE(out.ok());
    EXPECT_EQ(out.bytes, input);
}

TEST(DeflateEncoder, ForceFixedProducesOnlyFixedBlocks)
{
    auto input = makeData(Shape::Text, 100000, 44);
    DeflateOptions opts;
    opts.forceFixed = true;
    auto res = deflateCompress(input, opts);
    EXPECT_EQ(res.dynamicBlocks, 0u);
    EXPECT_EQ(res.storedBlocks, 0u);
    EXPECT_GE(res.fixedBlocks, 1u);
    auto out = inflateDecompress(res.bytes);
    ASSERT_TRUE(out.ok());
    EXPECT_EQ(out.bytes, input);
}

TEST(DeflateEncoder, HigherLevelsNeverMuchWorse)
{
    auto input = makeData(Shape::Text, 300000, 45);
    size_t prev = SIZE_MAX;
    for (int level : {1, 6, 9}) {
        DeflateOptions opts;
        opts.level = level;
        auto res = deflateCompress(input, opts);
        // Allow 2 % slack (lazy heuristics are not strictly monotonic).
        EXPECT_LT(res.bytes.size(), prev + prev / 50 + 64)
            << "level " << level;
        prev = res.bytes.size();
        auto out = inflateDecompress(res.bytes);
        ASSERT_TRUE(out.ok());
        ASSERT_EQ(out.bytes, input);
    }
}

TEST(DeflateEncoder, SmallBlockSizeStillRoundTrips)
{
    auto input = makeData(Shape::Text, 100000, 46);
    DeflateOptions opts;
    opts.blockBytes = 4096;
    auto res = deflateCompress(input, opts);
    EXPECT_GE(res.dynamicBlocks + res.fixedBlocks + res.storedBlocks,
              20u);
    auto out = inflateDecompress(res.bytes);
    ASSERT_TRUE(out.ok());
    EXPECT_EQ(out.bytes, input);
}

TEST(DeflateEncoder, MultiBlockBoundariesExact)
{
    // Sizes straddling the block size expose off-by-one block loops.
    for (size_t size : {(1u << 18) - 1, 1u << 18, (1u << 18) + 1}) {
        auto input = makeData(Shape::Cyclic, size, size);
        auto res = deflateCompress(input);
        auto out = inflateDecompress(res.bytes);
        ASSERT_TRUE(out.ok()) << size;
        ASSERT_EQ(out.bytes, input) << size;
    }
}

TEST(DeflateEncoder, StatsAreConsistent)
{
    auto input = makeData(Shape::Text, 100000, 47);
    auto res = deflateCompress(input);
    EXPECT_GT(res.tokenCount, 0u);
    EXPECT_GT(res.chainSteps, 0u);
    EXPECT_EQ(res.storedBlocks + res.fixedBlocks + res.dynamicBlocks,
              1u);
}
