/**
 * @file
 * Drives nxdeps (tools/nxdeps) on in-memory fixture trees — one
 * violating and one clean case per rule, the suppression grammar, and
 * the DOT emitter — then runs it over the real tree (NXSIM_SOURCE_DIR)
 * and requires a clean report, so a layering regression anywhere in
 * the repo fails this binary as well as the `nxdeps` ctest.
 */

#include <algorithm>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "nxdeps/nxdeps.h"

namespace {

using nxdeps::Analysis;
using nxdeps::analyzeFiles;
using nxdeps::Finding;
using nxdeps::SourceFile;

bool
fired(const Analysis &an, std::string_view rule)
{
    return std::any_of(an.findings.begin(), an.findings.end(),
                       [&](const Finding &f) { return f.rule == rule; });
}

std::string
dump(const Analysis &an)
{
    std::string out;
    for (const Finding &f : an.findings)
        out += nxdeps::format(f) + "\n";
    return out;
}

// ---------------------------------------------------------------------------
// moduleOf / layers
// ---------------------------------------------------------------------------

TEST(NxdepsModuleOf, SrcDirsAndTopLevelTrees)
{
    EXPECT_EQ(nxdeps::moduleOf("src/nx/crb.h"), "nx");
    EXPECT_EQ(nxdeps::moduleOf("src/util/checked.h"), "util");
    EXPECT_EQ(nxdeps::moduleOf("tools/nxlint/nxlint.cc"), "tools");
    EXPECT_EQ(nxdeps::moduleOf("tests/test_crb.cc"), "tests");
    EXPECT_EQ(nxdeps::moduleOf("fuzz/harness.h"), "fuzz");
    EXPECT_EQ(nxdeps::moduleOf("README.md"), "");
}

TEST(NxdepsLayers, DeclaredOrderIsMonotone)
{
    const auto &ls = nxdeps::layers();
    ASSERT_FALSE(ls.empty());
    EXPECT_EQ(ls.front().module, "util");
    EXPECT_EQ(ls.front().rank, 0);
    int prev = -1;
    for (const auto &l : ls) {
        EXPECT_GE(l.rank, prev);
        prev = l.rank;
    }
    EXPECT_EQ(ls.back().module, "tests");
}

// ---------------------------------------------------------------------------
// layer-order
// ---------------------------------------------------------------------------

TEST(NxdepsLayerOrder, UpwardIncludeFires)
{
    Analysis an = analyzeFiles({
        {"src/util/helper.h", "#include \"core/device.h\"\n"},
        {"src/core/device.h", "int d;\n"},
    });
    ASSERT_TRUE(fired(an, "layer-order")) << dump(an);
    EXPECT_EQ(an.findings[0].file, "src/util/helper.h");
    EXPECT_EQ(an.findings[0].line, 1);
}

TEST(NxdepsLayerOrder, PeerCrossIncludeFires)
{
    // deflate and e842 sit on the same layer: codecs stay independent.
    Analysis an = analyzeFiles({
        {"src/deflate/x.h", "#include \"e842/y.h\"\n"},
        {"src/e842/y.h", "int y;\n"},
    });
    ASSERT_TRUE(fired(an, "layer-order")) << dump(an);
    EXPECT_NE(an.findings[0].message.find("peers"), std::string::npos);
}

TEST(NxdepsLayerOrder, DownwardIncludesAreClean)
{
    Analysis an = analyzeFiles({
        {"src/core/device.h", "#include \"nx/crb.h\"\n"
                              "#include \"util/checked.h\"\n"},
        {"src/nx/crb.h", "#include \"util/checked.h\"\n"},
        {"src/util/checked.h", "int c;\n"},
        {"tests/test_device.cc", "#include \"core/device.h\"\n"},
    });
    EXPECT_TRUE(an.findings.empty()) << dump(an);
}

TEST(NxdepsLayerOrder, SameModuleIsNeverALayerViolation)
{
    Analysis an = analyzeFiles({
        {"src/nx/a.h", "#include \"nx/b.h\"\n"},
        {"src/nx/b.h", "int b;\n"},
    });
    EXPECT_FALSE(fired(an, "layer-order")) << dump(an);
}

TEST(NxdepsLayerOrder, SystemIncludesAreIgnored)
{
    Analysis an = analyzeFiles({
        {"src/util/x.h", "#include <vector>\n"
                         "#include \"third_party/zlib.h\"\n"},
    });
    EXPECT_TRUE(an.findings.empty()) << dump(an);
}

// ---------------------------------------------------------------------------
// cycles
// ---------------------------------------------------------------------------

TEST(NxdepsCycles, FileIncludeCycleFires)
{
    Analysis an = analyzeFiles({
        {"src/nx/a.h", "#include \"nx/b.h\"\n"},
        {"src/nx/b.h", "#include \"nx/a.h\"\n"},
    });
    ASSERT_TRUE(fired(an, "include-cycle")) << dump(an);
}

TEST(NxdepsCycles, ModuleCycleWithoutFileCycleFires)
{
    // No file-level cycle: a -> b and c -> a are distinct files. The
    // condensed module graph still has alpha <-> beta.
    Analysis an = analyzeFiles({
        {"src/nx/a.h", "#include \"core/b.h\"\n"},
        {"src/core/b.h", "int b;\n"},
        {"src/core/c.h", "#include \"nx/a.h\"\n"},
        {"src/nx/d.h", "int d;\n"},
    });
    EXPECT_FALSE(fired(an, "include-cycle")) << dump(an);
    EXPECT_TRUE(fired(an, "module-cycle")) << dump(an);
}

TEST(NxdepsCycles, SelfIncludeIsACycle)
{
    Analysis an = analyzeFiles({
        {"src/nx/a.h", "#include \"nx/a.h\"\n"},
    });
    EXPECT_TRUE(fired(an, "include-cycle")) << dump(an);
}

// ---------------------------------------------------------------------------
// cc-include / private-include
// ---------------------------------------------------------------------------

TEST(NxdepsCcInclude, IncludingATranslationUnitFires)
{
    Analysis an = analyzeFiles({
        {"src/nx/a.cc", "#include \"nx/b.cc\"\n"},
        {"src/nx/b.cc", "int b;\n"},
    });
    ASSERT_TRUE(fired(an, "cc-include")) << dump(an);
}

TEST(NxdepsPrivateInclude, CrossModuleInternalHeaderFires)
{
    Analysis an = analyzeFiles({
        {"src/core/a.h", "#include \"nx/internal/tables.h\"\n"
                         "#include \"nx/crb_internal.h\"\n"},
        {"src/nx/internal/tables.h", "int t;\n"},
        {"src/nx/crb_internal.h", "int c;\n"},
    });
    EXPECT_EQ(std::count_if(an.findings.begin(), an.findings.end(),
                            [](const Finding &f) {
                                return f.rule == "private-include";
                            }),
              2)
        << dump(an);
}

TEST(NxdepsPrivateInclude, OwnModuleInternalsAreClean)
{
    Analysis an = analyzeFiles({
        {"src/nx/a.cc", "#include \"nx/internal/tables.h\"\n"},
        {"src/nx/internal/tables.h", "int t;\n"},
    });
    EXPECT_FALSE(fired(an, "private-include")) << dump(an);
}

// ---------------------------------------------------------------------------
// scanner details
// ---------------------------------------------------------------------------

TEST(NxdepsScanner, CommentedAndQuotedIncludesAreIgnored)
{
    Analysis an = analyzeFiles({
        {"src/util/x.cc",
         "// #include \"core/device.h\"\n"
         "/* #include \"core/device.h\" */\n"
         "const char *s = \"#include \\\"core/device.h\\\"\";\n"},
        {"src/core/device.h", "int d;\n"},
    });
    EXPECT_TRUE(an.findings.empty()) << dump(an);
}

TEST(NxdepsScanner, IncluderRelativeResolutionWorks)
{
    // bench files include siblings without a path prefix.
    Analysis an = analyzeFiles({
        {"bench/bench_a.cc", "#include \"bench_common.h\"\n"},
        {"bench/bench_common.h", "int b;\n"},
    });
    EXPECT_TRUE(an.findings.empty()) << dump(an);
}

// ---------------------------------------------------------------------------
// suppressions
// ---------------------------------------------------------------------------

TEST(NxdepsSuppression, JustifiedAllowSuppressesSameLine)
{
    Analysis an = analyzeFiles({
        {"src/util/x.h",
         "#include \"core/device.h\" "
         "// nxdeps: allow(layer-order): transitional, tracked in #42\n"},
        {"src/core/device.h", "int d;\n"},
    });
    EXPECT_FALSE(fired(an, "layer-order")) << dump(an);
    EXPECT_FALSE(fired(an, "bare-allow")) << dump(an);
}

TEST(NxdepsSuppression, JustifiedAllowSuppressesNextLine)
{
    Analysis an = analyzeFiles({
        {"src/util/x.h",
         "int before;\n"
         "// nxdeps: allow(layer-order): transitional, tracked in #42\n"
         "#include \"core/device.h\"\n"},
        {"src/core/device.h", "int d;\n"},
    });
    EXPECT_FALSE(fired(an, "layer-order")) << dump(an);
}

TEST(NxdepsSuppression, FileScopeAllowCoversWholeFile)
{
    Analysis an = analyzeFiles({
        {"src/util/x.h",
         "// nxdeps: allow(layer-order): legacy shim, tracked in #42\n"
         "#include \"core/device.h\"\n"
         "#include \"core/job_server.h\"\n"},
        {"src/core/device.h", "int d;\n"},
        {"src/core/job_server.h", "int j;\n"},
    });
    EXPECT_FALSE(fired(an, "layer-order")) << dump(an);
}

TEST(NxdepsSuppression, BareAllowIsItselfAFinding)
{
    Analysis an = analyzeFiles({
        {"src/util/x.h",
         "#include \"core/device.h\" // nxdeps: allow(layer-order)\n"},
        {"src/core/device.h", "int d;\n"},
    });
    // Without a justification nothing is suppressed, and the bare
    // allow() is reported on top of the violation itself.
    EXPECT_TRUE(fired(an, "bare-allow")) << dump(an);
    EXPECT_TRUE(fired(an, "layer-order")) << dump(an);
}

TEST(NxdepsSuppression, UnknownRuleInAllowFires)
{
    Analysis an = analyzeFiles({
        {"src/util/x.h",
         "int y; // nxdeps: allow(no-such-rule): whatever\n"},
    });
    EXPECT_TRUE(fired(an, "bare-allow")) << dump(an);
}

TEST(NxdepsSuppression, ProseMentionInDocCommentDoesNotParse)
{
    Analysis an = analyzeFiles({
        {"src/util/x.h",
         "/**\n"
         " * Write `// nxdeps: allow(rule-id): why` to suppress.\n"
         " */\n"
         "int y;\n"},
    });
    EXPECT_TRUE(an.findings.empty()) << dump(an);
}

TEST(NxdepsSuppression, UnusedAllowIsStale)
{
    Analysis an = analyzeFiles({
        {"src/util/x.h",
         "int before;\n"
         "// nxdeps: allow(layer-order): was needed before the split\n"
         "#include \"util/y.h\"\n"},
        {"src/util/y.h", "int y;\n"},
    });
    ASSERT_TRUE(fired(an, "stale-allow")) << dump(an);
    EXPECT_EQ(an.findings[0].line, 2);
    EXPECT_NE(an.findings[0].message.find("layer-order"),
              std::string::npos);
}

TEST(NxdepsSuppression, UsedAllowIsNotStale)
{
    Analysis an = analyzeFiles({
        {"src/util/x.h",
         "#include \"core/device.h\" "
         "// nxdeps: allow(layer-order): transitional, tracked in #42\n"},
        {"src/core/device.h", "int d;\n"},
    });
    EXPECT_FALSE(fired(an, "stale-allow")) << dump(an);
}

TEST(NxdepsSuppression, StaleAllowItselfCanBeExcused)
{
    // A suppression kept for a platform-conditional include can be
    // excused with allow(stale-allow) in the same comment block.
    Analysis an = analyzeFiles({
        {"src/util/x.h",
         "int before;\n"
         "// nxdeps: allow(stale-allow): include is ifdef'd per target\n"
         "// nxdeps: allow(layer-order): only on z15 builds\n"
         "#include \"util/y.h\"\n"},
        {"src/util/y.h", "int y;\n"},
    });
    EXPECT_FALSE(fired(an, "stale-allow")) << dump(an);
}

TEST(NxdepsSuppression, MultiLineJustificationCoversNextCodeLine)
{
    // The allow's justification continues over a second `//` line; the
    // include after the whole block is still covered.
    Analysis an = analyzeFiles({
        {"src/util/x.h",
         "int before;\n"
         "// nxdeps: allow(layer-order): transitional while the device\n"
         "// model moves down a layer, tracked in #42\n"
         "#include \"core/device.h\"\n"},
        {"src/core/device.h", "int d;\n"},
    });
    EXPECT_FALSE(fired(an, "layer-order")) << dump(an);
    EXPECT_FALSE(fired(an, "stale-allow")) << dump(an);
}

// ---------------------------------------------------------------------------
// unknown-module
// ---------------------------------------------------------------------------

TEST(NxdepsUnknownModule, UnlistedSrcDirectoryFires)
{
    Analysis an = analyzeFiles({
        {"src/mystery/a.h", "int a;\n"},
        {"src/mystery/b.h", "int b;\n"},
    });
    // One finding per module, not per file.
    EXPECT_EQ(std::count_if(an.findings.begin(), an.findings.end(),
                            [](const Finding &f) {
                                return f.rule == "unknown-module";
                            }),
              1)
        << dump(an);
    EXPECT_NE(an.findings[0].message.find("mystery"), std::string::npos);
}

TEST(NxdepsUnknownModule, DeclaredModulesAndNonSrcTreesAreClean)
{
    Analysis an = analyzeFiles({
        {"src/util/a.h", "int a;\n"},
        {"src/core/b.h", "int b;\n"},
        {"bench/bench_x.cc", "int x;\n"},
        {"tools/nxlint/y.cc", "int y;\n"},
    });
    EXPECT_FALSE(fired(an, "unknown-module")) << dump(an);
}

// ---------------------------------------------------------------------------
// DOT output
// ---------------------------------------------------------------------------

TEST(NxdepsDot, EmitsModulesEdgesAndLayers)
{
    Analysis an = analyzeFiles({
        {"src/core/device.h", "#include \"nx/crb.h\"\n"},
        {"src/nx/crb.h", "#include \"util/checked.h\"\n"},
        {"src/util/checked.h", "int c;\n"},
    });
    const std::string &dot = an.moduleDot;
    EXPECT_NE(dot.find("digraph"), std::string::npos);
    EXPECT_NE(dot.find("rankdir=BT"), std::string::npos);
    EXPECT_NE(dot.find("\"core\" -> \"nx\""), std::string::npos);
    EXPECT_NE(dot.find("\"nx\" -> \"util\""), std::string::npos);
    EXPECT_NE(dot.find("rank=same"), std::string::npos);
    EXPECT_EQ(dot.find("\"util\" -> "), std::string::npos);
}

// ---------------------------------------------------------------------------
// the real tree
// ---------------------------------------------------------------------------

TEST(NxdepsRealTree, RepoIsClean)
{
    Analysis an = nxdeps::analyzeTree(NXSIM_SOURCE_DIR);
    EXPECT_TRUE(an.findings.empty()) << dump(an);
    // The architecture diagram in DESIGN.md is generated from this.
    EXPECT_NE(an.moduleDot.find("\"core\" -> \"nx\""), std::string::npos);
}

} // namespace
