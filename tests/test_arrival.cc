/**
 * @file
 * Statistical property tests for the load-harness arrival processes
 * (load/arrival.h): seeded determinism, Poisson mean within tolerance
 * over large draws, bursty duty-cycle bounds, and closed-loop
 * think-time correctness.
 *
 * Statistical assertions use fixed seeds, so the observed sample means
 * are deterministic — the tolerances guard against implementation
 * drift, not against run-to-run flakiness.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "load/arrival.h"

namespace {

using load::ArrivalConfig;
using load::ArrivalKind;
using load::ArrivalProcess;

ArrivalConfig
poisson(double rate)
{
    ArrivalConfig a;
    a.kind = ArrivalKind::OpenPoisson;
    a.ratePerSec = rate;
    return a;
}

ArrivalConfig
bursty(double on, double off, double rate)
{
    ArrivalConfig a;
    a.kind = ArrivalKind::Bursty;
    a.burstOnSeconds = on;
    a.burstOffSeconds = off;
    a.burstRatePerSec = rate;
    return a;
}

ArrivalConfig
closedLoop(double think)
{
    ArrivalConfig a;
    a.kind = ArrivalKind::ClosedLoop;
    a.thinkSeconds = think;
    return a;
}

double
meanDelay(ArrivalProcess &p, size_t n)
{
    double sum = 0.0;
    for (size_t i = 0; i < n; ++i)
        sum += p.nextDelaySeconds();
    return sum / static_cast<double>(n);
}

TEST(Arrival, KindNamesAreStable)
{
    // These strings appear in BENCH_*.json; renaming them is a schema
    // change.
    EXPECT_STREQ(toString(ArrivalKind::OpenPoisson), "open-poisson");
    EXPECT_STREQ(toString(ArrivalKind::Bursty), "bursty");
    EXPECT_STREQ(toString(ArrivalKind::ClosedLoop), "closed-loop");
}

TEST(Arrival, DutyCycleMatchesDwellMeans)
{
    auto a = bursty(0.005, 0.015, 8000.0);
    EXPECT_DOUBLE_EQ(a.dutyCycle(), 0.25);
    auto b = bursty(0.010, 0.010, 1000.0);
    EXPECT_DOUBLE_EQ(b.dutyCycle(), 0.5);
}

TEST(Arrival, MeanRatePerSecPerKind)
{
    EXPECT_DOUBLE_EQ(poisson(2000.0).meanRatePerSec(), 2000.0);
    // Bursty long-run rate is burstRate x dutyCycle.
    EXPECT_DOUBLE_EQ(bursty(0.005, 0.015, 8000.0).meanRatePerSec(),
                     2000.0);
    // Closed loops have no offered rate: completion-driven.
    EXPECT_DOUBLE_EQ(closedLoop(0.001).meanRatePerSec(), 0.0);
}

TEST(Arrival, SameSeedSameDelaySequence)
{
    for (const auto &cfg : {poisson(500.0), bursty(0.01, 0.02, 3000.0),
                            closedLoop(0.002)}) {
        ArrivalProcess a(cfg, 42);
        ArrivalProcess b(cfg, 42);
        for (int i = 0; i < 1000; ++i)
            ASSERT_DOUBLE_EQ(a.nextDelaySeconds(), b.nextDelaySeconds())
                << toString(cfg.kind) << " draw " << i;
    }
}

TEST(Arrival, DifferentSeedsDiverge)
{
    ArrivalProcess a(poisson(500.0), 1);
    ArrivalProcess b(poisson(500.0), 2);
    int equal = 0;
    for (int i = 0; i < 100; ++i)
        if (a.nextDelaySeconds() == b.nextDelaySeconds())
            ++equal;
    EXPECT_LT(equal, 3);
}

TEST(Arrival, DelaysAreStrictlyPositive)
{
    for (const auto &cfg : {poisson(10000.0),
                            bursty(0.001, 0.001, 50000.0),
                            closedLoop(0.0001)}) {
        ArrivalProcess p(cfg, 7);
        for (int i = 0; i < 10000; ++i)
            ASSERT_GT(p.nextDelaySeconds(), 0.0) << toString(cfg.kind);
    }
}

TEST(Arrival, PoissonMeanWithinTolerance)
{
    // 100k exponential draws at rate 2000/s: sample mean of the
    // inter-arrival time converges on 1/2000 s. 2% tolerance is ~6
    // standard errors at this sample size.
    const double rate = 2000.0;
    ArrivalProcess p(poisson(rate), 0xA11CE);
    double mean = meanDelay(p, 100000);
    EXPECT_NEAR(mean, 1.0 / rate, 0.02 / rate);
}

TEST(Arrival, PoissonMeanScalesWithRate)
{
    ArrivalProcess slow(poisson(100.0), 9);
    ArrivalProcess fast(poisson(10000.0), 9);
    double mSlow = meanDelay(slow, 20000);
    double mFast = meanDelay(fast, 20000);
    EXPECT_NEAR(mSlow / mFast, 100.0, 5.0);
}

TEST(Arrival, BurstyLongRunRateMatchesDutyCycle)
{
    // ON 5 ms / OFF 15 ms at 8000/s while ON: the long-run rate is
    // 8000 x 0.25 = 2000/s, so the mean delay over a horizon spanning
    // many dwell cycles is 0.5 ms. 100k draws cover ~12k ON dwells.
    auto cfg = bursty(0.005, 0.015, 8000.0);
    ArrivalProcess p(cfg, 0xB0B);
    double mean = meanDelay(p, 100000);
    double expect = 1.0 / cfg.meanRatePerSec();
    EXPECT_NEAR(mean, expect, 0.05 * expect);
}

TEST(Arrival, BurstyDelaysBoundedByModulation)
{
    // Duty-cycle bounds: the long-run mean delay must sit strictly
    // between the pure-ON mean (1/burstRate: as if OFF never happened)
    // and a slack multiple of the modulated mean.
    auto cfg = bursty(0.004, 0.012, 5000.0);
    ArrivalProcess p(cfg, 3);
    double mean = meanDelay(p, 50000);
    EXPECT_GT(mean, 1.0 / cfg.burstRatePerSec);
    double modulated = 1.0 / cfg.meanRatePerSec();
    EXPECT_GT(mean, 0.8 * modulated);
    EXPECT_LT(mean, 1.2 * modulated);
}

TEST(Arrival, BurstyEmitsGapsSpanningOffDwells)
{
    // Some inter-arrival gaps must cross an OFF dwell: far larger than
    // anything a pure Poisson stream at the burst rate would plausibly
    // produce in this many draws.
    auto cfg = bursty(0.002, 0.020, 10000.0);
    ArrivalProcess p(cfg, 11);
    double biggest = 0.0;
    for (int i = 0; i < 10000; ++i)
        biggest = std::max(biggest, p.nextDelaySeconds());
    EXPECT_GT(biggest, cfg.burstOffSeconds / 2.0);
}

TEST(Arrival, ClosedLoopThinkTimeMeanWithinTolerance)
{
    const double think = 0.0005;
    ArrivalProcess p(closedLoop(think), 0xC105ED);
    double mean = meanDelay(p, 100000);
    EXPECT_NEAR(mean, think, 0.02 * think);
}

TEST(Arrival, ScheduleIsCumulativeAndMonotone)
{
    ArrivalProcess a(poisson(1000.0), 21);
    auto at = a.schedule(500);
    ASSERT_EQ(at.size(), 500u);
    // Strictly increasing absolute offsets...
    for (size_t i = 1; i < at.size(); ++i)
        ASSERT_GT(at[i], at[i - 1]);
    // ...equal to the running sum of the raw delay stream.
    ArrivalProcess b(poisson(1000.0), 21);
    double t = 0.0;
    for (size_t i = 0; i < at.size(); ++i) {
        t += b.nextDelaySeconds();
        ASSERT_DOUBLE_EQ(at[i], t);
    }
}

TEST(Arrival, ScheduleAdvancesTheStream)
{
    ArrivalProcess p(poisson(1000.0), 5);
    auto first = p.schedule(100);
    auto second = p.schedule(100);
    // The second batch continues where the first stopped, so its first
    // offset restarts from zero but reflects *later* draws.
    ArrivalProcess fresh(poisson(1000.0), 5);
    auto freshFirst = fresh.schedule(100);
    EXPECT_EQ(first, freshFirst);
    EXPECT_NE(second, freshFirst);
}

TEST(Arrival, BurstyFirstArrivalIsPartOfABurst)
{
    // The modulation starts in an ON dwell, so the first delay is a
    // burst-rate gap — over many seeds its mean tracks 1/burstRate,
    // not the modulated long-run mean. A long ON dwell makes the
    // probability of crossing into an OFF dwell on draw one negligible.
    auto cfg = bursty(10.0, 0.150, 1000.0);
    double sum = 0.0;
    const int kSeeds = 2000;
    for (int s = 0; s < kSeeds; ++s) {
        ArrivalProcess p(cfg, static_cast<uint64_t>(s));
        sum += p.nextDelaySeconds();
    }
    double mean = sum / kSeeds;
    EXPECT_NEAR(mean, 1.0 / cfg.burstRatePerSec,
                0.1 / cfg.burstRatePerSec);
}

TEST(ArrivalDeathTest, InvalidConfigsAreContractViolations)
{
    EXPECT_DEATH(ArrivalProcess(poisson(0.0), 1), "positive rate");
    EXPECT_DEATH(ArrivalProcess(bursty(0.0, 0.01, 100.0), 1),
                 "positive dwell");
    EXPECT_DEATH(ArrivalProcess(closedLoop(0.0), 1), "positive think");
}

} // namespace
