/**
 * @file
 * Streaming codec tests: DeflateStream window carry and flush
 * semantics, InflateStream resumability at arbitrary split points,
 * and property-style random chunking round trips between all four
 * encoder/decoder combinations.
 */

#include <gtest/gtest.h>

#include "deflate/deflate_stream.h"
#include "deflate/inflate_decoder.h"
#include "deflate/inflate_stream.h"
#include "util/bitstream.h"
#include "util/prng.h"
#include "workloads/corpus.h"

using deflate::DeflateOptions;
using deflate::DeflateStream;
using deflate::Flush;
using deflate::InflateStream;
using deflate::StreamStatus;

namespace {

/** Compress via the streaming encoder in chunks of @p chunk bytes. */
std::vector<uint8_t>
streamCompress(std::span<const uint8_t> input, size_t chunk,
               int level = 6)
{
    DeflateOptions opts;
    opts.level = level;
    DeflateStream ds(opts);
    std::vector<uint8_t> out;
    size_t off = 0;
    while (off < input.size()) {
        size_t n = std::min(chunk, input.size() - off);
        bool last = off + n >= input.size();
        ds.write(input.subspan(off, n),
                 last ? Flush::Finish : Flush::None, out);
        off += n;
    }
    if (input.empty())
        ds.write({}, Flush::Finish, out);
    return out;
}

/** Decompress via the streaming decoder in chunks of @p chunk bytes. */
bool
streamDecompress(std::span<const uint8_t> stream, size_t chunk,
                 std::vector<uint8_t> &out)
{
    InflateStream is;
    size_t off = 0;
    while (off < stream.size()) {
        size_t n = std::min(chunk, stream.size() - off);
        auto st = is.feed(stream.subspan(off, n), out);
        if (st == StreamStatus::Error)
            return false;
        off += n;
        if (st == StreamStatus::Done)
            return true;
    }
    return is.feed({}, out) == StreamStatus::Done;
}

} // namespace

TEST(DeflateStream, SingleShotMatchesOneShotSemantics)
{
    auto input = workloads::makeText(100000, 81);
    auto stream = streamCompress(input, input.size());
    auto res = deflate::inflateDecompress(stream);
    ASSERT_TRUE(res.ok());
    EXPECT_EQ(res.bytes, input);
}

TEST(DeflateStream, TinyChunksRoundTrip)
{
    auto input = workloads::makeLog(50000, 82);
    auto stream = streamCompress(input, 777);
    auto res = deflate::inflateDecompress(stream);
    ASSERT_TRUE(res.ok());
    EXPECT_EQ(res.bytes, input);
}

TEST(DeflateStream, WindowCarryCompressesAcrossChunks)
{
    // The same 4 KiB page fed repeatedly in separate chunks: with
    // window carry, chunks 2..N should compress to almost nothing.
    auto page = workloads::makeText(4096, 83);
    DeflateStream ds;
    std::vector<uint8_t> out;
    for (int i = 0; i < 16; ++i)
        ds.write(page, Flush::None, out);
    ds.write({}, Flush::Finish, out);

    auto res = deflate::inflateDecompress(out);
    ASSERT_TRUE(res.ok());
    ASSERT_EQ(res.bytes.size(), page.size() * 16);
    // Cross-chunk matches must make this far smaller than 16
    // independent compressions of the page.
    deflate::DeflateOptions opts;
    auto one = deflate::deflateCompress(page, opts);
    EXPECT_LT(out.size(), one.bytes.size() * 4);
}

TEST(DeflateStream, SyncFlushMakesPrefixDecodable)
{
    auto part1 = workloads::makeJson(20000, 84);
    auto part2 = workloads::makeJson(20000, 85);

    DeflateStream ds;
    std::vector<uint8_t> out;
    ds.write(part1, Flush::Sync, out);
    size_t sync_point = out.size();

    // The bytes up to the sync point must decode to exactly part1
    // through the *streaming* decoder.
    InflateStream is;
    std::vector<uint8_t> decoded;
    auto st = is.feed(std::span<const uint8_t>(out.data(), sync_point),
                      decoded);
    EXPECT_EQ(st, StreamStatus::NeedMoreInput);    // stream not final
    EXPECT_EQ(decoded, part1);

    ds.write(part2, Flush::Finish, out);
    st = is.feed(std::span<const uint8_t>(out.data() + sync_point,
                                          out.size() - sync_point),
                 decoded);
    EXPECT_EQ(st, StreamStatus::Done);
    std::vector<uint8_t> both(part1);
    both.insert(both.end(), part2.begin(), part2.end());
    EXPECT_EQ(decoded, both);
}

TEST(DeflateStream, SyncFlushEndsOnByteBoundaryWithMarker)
{
    auto input = workloads::makeText(10000, 86);
    DeflateStream ds;
    std::vector<uint8_t> out;
    ds.write(input, Flush::Sync, out);
    ASSERT_GE(out.size(), 4u);
    // Z_SYNC_FLUSH marker tail: 00 00 FF FF.
    EXPECT_EQ(out[out.size() - 4], 0x00);
    EXPECT_EQ(out[out.size() - 3], 0x00);
    EXPECT_EQ(out[out.size() - 2], 0xff);
    EXPECT_EQ(out[out.size() - 1], 0xff);
}

TEST(DeflateStream, EmptyInputFinish)
{
    DeflateStream ds;
    std::vector<uint8_t> out;
    ds.write({}, Flush::Finish, out);
    EXPECT_TRUE(ds.finished());
    auto res = deflate::inflateDecompress(out);
    ASSERT_TRUE(res.ok());
    EXPECT_TRUE(res.bytes.empty());
}

TEST(DeflateStream, TotalsTrack)
{
    auto input = workloads::makeText(30000, 87);
    DeflateStream ds;
    std::vector<uint8_t> out;
    ds.write(input, Flush::Finish, out);
    EXPECT_EQ(ds.totalIn(), input.size());
    EXPECT_EQ(ds.totalOut(), out.size());
}

TEST(InflateStream, ByteAtATime)
{
    auto input = workloads::makeCsv(20000, 88);
    auto stream = deflate::deflateCompress(input).bytes;
    std::vector<uint8_t> out;
    ASSERT_TRUE(streamDecompress(stream, 1, out));
    EXPECT_EQ(out, input);
}

TEST(InflateStream, AllBlockTypesByteAtATime)
{
    // Level 0 (stored), 1 (mostly fixed for small), 6 (dynamic).
    for (int level : {0, 1, 6}) {
        auto input = workloads::makeText(30000, 89);
        deflate::DeflateOptions opts;
        opts.level = level;
        opts.blockBytes = 8192;    // several blocks
        auto stream = deflate::deflateCompress(input, opts).bytes;
        std::vector<uint8_t> out;
        ASSERT_TRUE(streamDecompress(stream, 1, out)) << level;
        EXPECT_EQ(out, input) << level;
    }
}

TEST(InflateStream, ErrorOnGarbage)
{
    std::vector<uint8_t> garbage(64, 0x6e);    // BTYPE=3 quickly
    InflateStream is;
    std::vector<uint8_t> out;
    auto st = is.feed(garbage, out);
    EXPECT_EQ(st, StreamStatus::Error);
}

TEST(InflateStream, CodeLengthRunOvershootRejected)
{
    // Dynamic header whose symbol-18 run overshoots the declared
    // hlit+hdist total (same stream as the one-shot decoder test and
    // fuzz/corpus/inflate/dynhdr-run-overflow.bin): the incremental
    // decoder must reject the run before growing its length array.
    util::BitWriter bw;
    bw.writeBits(1, 1);      // BFINAL
    bw.writeBits(2, 2);      // BTYPE=10 dynamic
    bw.writeBits(0, 5);      // HLIT  = 257
    bw.writeBits(0, 5);      // HDIST = 1 -> 258 lengths declared
    bw.writeBits(14, 4);     // HCLEN = 18
    for (int i = 0; i < 18; ++i)
        bw.writeBits(i == 2 || i == 17 ? 1 : 0, 3);
    for (int i = 0; i < 200; ++i)
        bw.writeBits(0, 1);    // sym 1 x200
    bw.writeBits(1, 1);        // sym 18 ...
    bw.writeBits(127, 7);      // ... run of 138 zeros -> 338 > 258
    auto stream = bw.take();

    InflateStream is;
    std::vector<uint8_t> out;
    auto st = is.feed(stream, out);
    EXPECT_EQ(st, StreamStatus::Error);
    EXPECT_EQ(is.error(), deflate::InflateStatus::BadCodeLengths);
}

TEST(InflateStream, TrailingBytesLeftBuffered)
{
    auto input = workloads::makeText(5000, 90);
    auto stream = deflate::deflateCompress(input).bytes;
    stream.push_back(0xAA);    // trailer-like extra byte
    stream.push_back(0xBB);
    InflateStream is;
    std::vector<uint8_t> out;
    auto st = is.feed(stream, out);
    EXPECT_EQ(st, StreamStatus::Done);
    EXPECT_EQ(out, input);
    EXPECT_GE(is.bufferedBits(), 16u);
}

/** Property sweep: random chunk sizes on both sides. */
class StreamingChunks : public ::testing::TestWithParam<int>
{
};

TEST_P(StreamingChunks, RandomSplitRoundTrip)
{
    util::Xoshiro256 rng(static_cast<uint64_t>(GetParam()) * 7919);
    auto input = workloads::makeMixed(
        40000 + rng.below(100000),
        static_cast<uint64_t>(9000 + GetParam()));

    // Random write chunking with occasional sync flushes.
    DeflateStream ds;
    std::vector<uint8_t> stream;
    size_t off = 0;
    while (off < input.size()) {
        size_t n = 1 + rng.below(9000);
        n = std::min(n, input.size() - off);
        bool last = off + n >= input.size();
        Flush f = last ? Flush::Finish
                       : (rng.chance(0.2) ? Flush::Sync : Flush::None);
        ds.write(std::span<const uint8_t>(input).subspan(off, n), f,
                 stream);
        off += n;
    }

    // Random read chunking.
    InflateStream is;
    std::vector<uint8_t> out;
    size_t roff = 0;
    StreamStatus st = StreamStatus::NeedMoreInput;
    while (roff < stream.size()) {
        size_t n = 1 + rng.below(5000);
        n = std::min(n, stream.size() - roff);
        st = is.feed(std::span<const uint8_t>(stream).subspan(roff, n),
                     out);
        ASSERT_NE(st, StreamStatus::Error);
        roff += n;
    }
    EXPECT_EQ(st, StreamStatus::Done);
    EXPECT_EQ(out, input);
}

INSTANTIATE_TEST_SUITE_P(Seeds, StreamingChunks,
                         ::testing::Range(0, 12));

TEST(Streaming, OneShotDecoderAcceptsStreamedOutput)
{
    auto input = workloads::makeBinary(60000, 91);
    auto stream = streamCompress(input, 4096);
    auto res = deflate::inflateDecompress(stream);
    ASSERT_TRUE(res.ok());
    EXPECT_EQ(res.bytes, input);
}

TEST(Streaming, StreamingDecoderAcceptsOneShotOutput)
{
    auto input = workloads::makeHtml(60000, 92);
    auto stream = deflate::deflateCompress(input).bytes;
    std::vector<uint8_t> out;
    ASSERT_TRUE(streamDecompress(stream, 313, out));
    EXPECT_EQ(out, input);
}
