/**
 * @file
 * Concurrency suite for core::JobServer (ctest label: concurrency;
 * ci.sh runs it under ThreadSanitizer).
 *
 * Three families:
 *   - deterministic stress: M producer threads x mixed compress/
 *     decompress jobs with seeded PRNG payloads; every ticket
 *     completes, every output round-trips, per-window FIFO dispatch
 *     order holds.
 *   - backpressure: a full window busy-rejects (never blocks), the
 *     capped-backoff retry helper converges, and a saturated server
 *     drains cleanly on shutdown with no lost or double-completed
 *     jobs. Determinism comes from startPaused: FIFOs are filled
 *     while the engine pool is gated.
 *   - stats: the thread-safe stats block is consistent with the run.
 *
 * gtest assertions run on the main thread only (gtest's macros are
 * not thread-safe); producer threads just record tickets.
 *
 * Sized to finish well under 10 s with TSan instrumentation: payloads
 * are a few KiB and job counts are in the low hundreds.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <thread>
#include <vector>

#include "core/job_server.h"
#include "deflate/gzip_stream.h"
#include "util/prng.h"
#include "workloads/corpus.h"

namespace {

using core::AsyncJob;
using core::JobKind;
using core::JobServer;
using core::JobServerConfig;
using core::JobSpec;
using core::Ticket;

nx::NxConfig
testChip()
{
    return nx::NxConfig::power9();
}

JobSpec
compressSpec(std::vector<uint8_t> payload,
             core::Mode mode = core::Mode::Auto)
{
    JobSpec s;
    s.kind = JobKind::Compress;
    s.mode = mode;
    s.payload = std::move(payload);
    return s;
}

JobSpec
decompressSpec(std::vector<uint8_t> stream)
{
    JobSpec s;
    s.kind = JobKind::Decompress;
    s.payload = std::move(stream);
    return s;
}

/** Mixed-shape payload from a seeded PRNG, 1 B .. ~16 KiB. */
std::vector<uint8_t>
seededPayload(uint64_t seed)
{
    util::Xoshiro256 rng(seed);
    size_t n = 1 + static_cast<size_t>(rng.below(16 * 1024));
    switch (rng.below(3)) {
      case 0: return workloads::makeText(n, seed);
      case 1: return workloads::makeRandom(n, seed);
      default: return workloads::makeMixed(n, seed);
    }
}

/** Per-window dispatch order must equal paste order. */
void
expectFifoOrderPerWindow(const std::vector<AsyncJob> &jobs)
{
    std::map<int, std::vector<const AsyncJob *>> byWindow;
    for (const AsyncJob &j : jobs)
        byWindow[j.window].push_back(&j);
    for (auto &[window, list] : byWindow) {
        std::sort(list.begin(), list.end(),
                  [](const AsyncJob *a, const AsyncJob *b) {
                      return a->dispatchSeq < b->dispatchSeq;
                  });
        for (size_t i = 1; i < list.size(); ++i) {
            EXPECT_LT(list[i - 1]->windowSeq, list[i]->windowSeq)
                << "window " << window
                << " dispatched out of paste order";
        }
    }
}

// ---------------------------------------------------------------------------
// Deterministic stress
// ---------------------------------------------------------------------------

TEST(JobServerStress, ManyProducersMixedJobsAllCompleteAndRoundTrip)
{
    const size_t kProducers = 4;
    const size_t kJobsPerProducer = 24;
    auto cfg = testChip();

    // Pre-build job inputs on the main thread so producers only paste.
    // Even-indexed jobs compress a payload; odd-indexed jobs decompress
    // a stream of the same payload produced by the synchronous device.
    core::NxDevice dev(cfg);
    std::vector<std::vector<JobSpec>> specs(kProducers);
    std::vector<std::vector<std::vector<uint8_t>>> expect(kProducers);
    for (size_t p = 0; p < kProducers; ++p) {
        for (size_t j = 0; j < kJobsPerProducer; ++j) {
            uint64_t seed = 1000u * p + j;
            auto payload = seededPayload(seed);
            if (j % 2 == 0) {
                specs[p].push_back(compressSpec(payload));
            } else {
                auto c = dev.compress(payload, nx::Framing::Gzip,
                                      core::Mode::Auto);
                ASSERT_TRUE(c.ok());
                specs[p].push_back(decompressSpec(std::move(c.data)));
            }
            expect[p].push_back(std::move(payload));
        }
    }

    JobServerConfig jcfg;
    jcfg.workers = 3;
    jcfg.windows = 2;
    jcfg.window.fifoDepth = 8;
    JobServer srv(cfg, jcfg);

    core::BackoffPolicy patient;
    patient.maxAttempts = 1000;    // acceptance must eventually happen
    patient.maxDelay = std::chrono::microseconds(1000);

    std::vector<std::vector<Ticket>> tickets(kProducers);
    std::vector<std::thread> producers;
    producers.reserve(kProducers);
    for (size_t p = 0; p < kProducers; ++p) {
        tickets[p].resize(specs[p].size(), 0);
        producers.emplace_back([&, p] {
            for (size_t j = 0; j < specs[p].size(); ++j) {
                int window = static_cast<int>(
                    (p + j) %
                    static_cast<size_t>(srv.windowCount()));
                auto r = srv.submitWithRetry(specs[p][j], window, patient);
                if (r.accepted())
                    tickets[p][j] = r.ticket;
            }
        });
    }
    for (auto &t : producers)
        t.join();

    // Every ticket completes, and every output round-trips.
    std::vector<AsyncJob> all;
    for (size_t p = 0; p < kProducers; ++p) {
        for (size_t j = 0; j < tickets[p].size(); ++j) {
            ASSERT_NE(tickets[p][j], 0u)
                << "producer " << p << " job " << j << " never accepted";
            AsyncJob done = srv.wait(tickets[p][j]);
            ASSERT_TRUE(done.result.ok())
                << "producer " << p << " job " << j;
            if (specs[p][j].kind == JobKind::Compress) {
                auto res = deflate::gzipUnwrap(done.result.data);
                ASSERT_TRUE(res.ok);
                EXPECT_EQ(res.inflate.bytes, expect[p][j]);
            } else {
                EXPECT_EQ(done.result.data, expect[p][j]);
            }
            all.push_back(std::move(done));
        }
    }
    expectFifoOrderPerWindow(all);

    auto st = srv.stats();
    EXPECT_EQ(st.submitted, kProducers * kJobsPerProducer);
    EXPECT_EQ(st.completed, st.submitted);
    EXPECT_EQ(st.wait.count, st.completed);
    EXPECT_EQ(st.service.count, st.completed);
}

TEST(JobServerStress, SingleWindowDispatchIsExactlyPasteOrder)
{
    auto cfg = testChip();
    JobServerConfig jcfg;
    jcfg.workers = 2;
    jcfg.windows = 1;
    jcfg.window.fifoDepth = 0;    // unbounded: all pastes accepted
    jcfg.startPaused = true;      // fill the FIFO before any pop
    JobServer srv(cfg, jcfg);

    const int kJobs = 32;
    std::vector<Ticket> tickets;
    for (int j = 0; j < kJobs; ++j) {
        auto r = srv.submitAsync(
            compressSpec(workloads::makeText(512, static_cast<uint64_t>(j))));
        ASSERT_TRUE(r.accepted());
        tickets.push_back(r.ticket);
    }
    srv.resume();

    auto jobs = srv.drain();
    ASSERT_EQ(jobs.size(), static_cast<size_t>(kJobs));
    expectFifoOrderPerWindow(jobs);
    // Paste order within the single window is the submission order.
    std::sort(jobs.begin(), jobs.end(),
              [](const AsyncJob &a, const AsyncJob &b) {
                  return a.dispatchSeq < b.dispatchSeq;
              });
    for (size_t j = 0; j < jobs.size(); ++j)
        EXPECT_EQ(jobs[j].ticket, tickets[j]);
}

// ---------------------------------------------------------------------------
// Backpressure: busy-reject, retry convergence, clean shutdown
// ---------------------------------------------------------------------------

TEST(JobServerBackpressure, FullWindowReturnsBusyWithoutBlocking)
{
    auto cfg = testChip();
    JobServerConfig jcfg;
    jcfg.workers = 1;
    jcfg.windows = 1;
    jcfg.window.fifoDepth = 3;
    jcfg.startPaused = true;
    JobServer srv(cfg, jcfg);

    auto spec = compressSpec(workloads::makeText(1024, 7));
    for (int j = 0; j < 3; ++j)
        ASSERT_TRUE(srv.submitAsync(spec).accepted());

    // FIFO full and the engine pool is gated: paste must be rejected,
    // not queued or blocked.
    for (int j = 0; j < 4; ++j) {
        auto r = srv.submitAsync(spec);
        EXPECT_EQ(r.status, nx::PasteStatus::Busy);
        EXPECT_EQ(r.ticket, 0u);
    }
    EXPECT_EQ(srv.stats().busyRejects, 4u);

    // Rejected pastes are not lost work — the client still owns the
    // spec and may re-paste once the engines drain the FIFO.
    srv.resume();
    auto jobs = srv.drain();
    EXPECT_EQ(jobs.size(), 3u);
    for (const auto &j : jobs)
        EXPECT_TRUE(j.result.ok());
}

TEST(JobServerBackpressure, RetryBackoffConvergesOnceServerDrains)
{
    auto cfg = testChip();
    JobServerConfig jcfg;
    jcfg.workers = 1;
    jcfg.windows = 1;
    jcfg.window.fifoDepth = 1;
    jcfg.startPaused = true;
    JobServer srv(cfg, jcfg);

    ASSERT_TRUE(
        srv.submitAsync(compressSpec(workloads::makeText(2048, 1)))
            .accepted());

    // Un-gate the engines shortly after the retry loop starts spinning.
    std::thread resumer([&srv] {
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
        srv.resume();
    });

    core::BackoffPolicy policy;
    policy.maxAttempts = 200;
    policy.initialDelay = std::chrono::microseconds(100);
    policy.maxDelay = std::chrono::microseconds(2000);
    auto r = srv.submitWithRetry(
        compressSpec(workloads::makeText(2048, 2)), 0, policy);
    resumer.join();

    ASSERT_TRUE(r.accepted());
    EXPECT_GT(r.attempts, 1);    // it really was busy-rejected first
    EXPECT_GE(srv.stats().busyRejects, 1u);

    auto jobs = srv.drain();
    EXPECT_EQ(jobs.size(), 2u);
}

TEST(JobServerBackpressure, RetryGivesUpAfterMaxAttempts)
{
    auto cfg = testChip();
    JobServerConfig jcfg;
    jcfg.workers = 1;
    jcfg.windows = 1;
    jcfg.window.fifoDepth = 1;
    jcfg.startPaused = true;
    JobServer srv(cfg, jcfg);

    ASSERT_TRUE(
        srv.submitAsync(compressSpec(workloads::makeText(256, 1)))
            .accepted());

    core::BackoffPolicy policy;
    policy.maxAttempts = 3;
    policy.initialDelay = std::chrono::microseconds(10);
    policy.maxDelay = std::chrono::microseconds(50);
    auto r = srv.submitWithRetry(
        compressSpec(workloads::makeText(256, 2)), 0, policy);

    EXPECT_EQ(r.status, nx::PasteStatus::Busy);
    EXPECT_EQ(r.attempts, 3);
    EXPECT_EQ(srv.stats().busyRejects, 3u);

    srv.resume();
    auto jobs = srv.drain();
    EXPECT_EQ(jobs.size(), 1u);    // the rejected job was never enqueued
}

TEST(JobServerBackpressure, SaturatedServerDrainsCleanlyOnShutdown)
{
    auto cfg = testChip();
    JobServerConfig jcfg;
    jcfg.workers = 2;
    jcfg.windows = 4;
    jcfg.window.fifoDepth = 4;
    jcfg.startPaused = true;
    JobServer srv(cfg, jcfg);

    // Fill every window to capacity while the engine pool is gated.
    std::vector<Ticket> tickets;
    for (int w = 0; w < jcfg.windows; ++w) {
        for (int j = 0; j < jcfg.window.fifoDepth; ++j) {
            auto r = srv.submitAsync(
                compressSpec(seededPayload(
                    static_cast<uint64_t>(16 * w + j))),
                w);
            ASSERT_TRUE(r.accepted());
            tickets.push_back(r.ticket);
        }
        EXPECT_EQ(srv.submitAsync(compressSpec(seededPayload(99)), w)
                      .status,
                  nx::PasteStatus::Busy);
    }

    // Shutdown with everything still queued: drainAndStop must run
    // every accepted job to completion, not discard them.
    srv.drainAndStop();

    auto st = srv.stats();
    EXPECT_EQ(st.submitted, tickets.size());
    EXPECT_EQ(st.completed, tickets.size());
    EXPECT_EQ(st.busyRejects, static_cast<uint64_t>(jcfg.windows));

    // After shutdown the window is closed, not busy.
    EXPECT_EQ(srv.submitAsync(compressSpec(seededPayload(1))).status,
              nx::PasteStatus::Closed);

    // No lost and no double-completed jobs: each ticket claimable
    // exactly once, and drain() afterwards finds nothing left.
    std::set<Ticket> seen;
    for (Ticket t : tickets) {
        AsyncJob done;
        ASSERT_TRUE(srv.poll(t, &done));
        EXPECT_TRUE(done.result.ok());
        EXPECT_TRUE(seen.insert(done.ticket).second);
    }
    EXPECT_EQ(seen.size(), tickets.size());
    EXPECT_TRUE(srv.drain().empty());
}

// ---------------------------------------------------------------------------
// Stats block
// ---------------------------------------------------------------------------

TEST(JobServerStats, BusyExhaustionIsCountedServerSide)
{
    auto cfg = testChip();
    JobServerConfig jcfg;
    jcfg.workers = 1;
    jcfg.windows = 1;
    jcfg.window.fifoDepth = 1;
    jcfg.startPaused = true;
    JobServer srv(cfg, jcfg);
    ASSERT_TRUE(
        srv.submitAsync(compressSpec(workloads::makeText(256, 1)))
            .accepted());

    core::BackoffPolicy policy;
    policy.maxAttempts = 2;
    policy.initialDelay = std::chrono::microseconds(10);
    policy.maxDelay = std::chrono::microseconds(20);
    // Two retry helpers give up against the gated full FIFO; a raw
    // submitAsync busy-reject is NOT an exhaustion.
    EXPECT_EQ(srv.submitWithRetry(
                      compressSpec(workloads::makeText(256, 2)), 0,
                      policy)
                  .status,
              nx::PasteStatus::Busy);
    EXPECT_EQ(srv.submitWithRetry(
                      compressSpec(workloads::makeText(256, 3)), 0,
                      policy)
                  .status,
              nx::PasteStatus::Busy);
    EXPECT_EQ(srv.submitAsync(compressSpec(workloads::makeText(256, 4)))
                  .status,
              nx::PasteStatus::Busy);

    auto st = srv.stats();
    EXPECT_EQ(st.busyExhausted, 2u);
    EXPECT_EQ(st.busyRejects, 5u);   // 2 + 2 + 1 pastes bounced

    srv.resume();
    srv.drainAndStop();
}

TEST(JobServerFaults, InjectedFaultCompletesWithInjectedCode)
{
    auto cfg = testChip();
    nx::FaultInjector faults;
    faults.failNext(1, nx::CondCode::TranslationFault);
    JobServerConfig jcfg;
    jcfg.workers = 1;
    jcfg.faultInjector = &faults;
    JobServer srv(cfg, jcfg);

    auto r1 = srv.submitAsync(compressSpec(workloads::makeText(512, 1)));
    ASSERT_TRUE(r1.accepted());
    auto j1 = srv.wait(r1.ticket);
    EXPECT_FALSE(j1.result.ok());
    EXPECT_EQ(j1.result.csb.cc, nx::CondCode::TranslationFault);
    EXPECT_TRUE(j1.result.data.empty());

    // The injector plan is spent: the same job now succeeds.
    auto r2 = srv.submitAsync(compressSpec(workloads::makeText(512, 1)));
    ASSERT_TRUE(r2.accepted());
    auto j2 = srv.wait(r2.ticket);
    EXPECT_TRUE(j2.result.ok());

    srv.drainAndStop();
    auto st = srv.stats();
    EXPECT_EQ(st.jobFaults, 1u);
    EXPECT_EQ(st.faultsInjected, 1u);
    EXPECT_EQ(faults.injected(), 1u);
    EXPECT_EQ(st.completed, 2u);
}

TEST(JobServerE842, AsyncJobsMatchTheDirectEngine)
{
    auto cfg = testChip();
    JobServerConfig jcfg;
    jcfg.workers = 2;
    JobServer srv(cfg, jcfg);

    auto payload = workloads::makeText(8 * 1024, 9);
    e842::E842Engine direct;   // same (default) config as the server's

    JobSpec comp;
    comp.kind = JobKind::Compress;
    comp.codec = core::Codec::E842;
    comp.payload = payload;
    auto rc = srv.submitAsync(comp);
    ASSERT_TRUE(rc.accepted());
    auto jc = srv.wait(rc.ticket);
    ASSERT_TRUE(jc.result.ok());
    EXPECT_EQ(jc.result.data, direct.compressJob(payload).output);
    EXPECT_GT(jc.result.engineCycles, 0u);

    JobSpec dec;
    dec.kind = JobKind::Decompress;
    dec.codec = core::Codec::E842;
    dec.payload = jc.result.data;
    auto rd = srv.submitAsync(dec);
    ASSERT_TRUE(rd.accepted());
    auto jd = srv.wait(rd.ticket);
    ASSERT_TRUE(jd.result.ok());
    EXPECT_EQ(jd.result.data, payload);

    srv.drainAndStop();
    auto st = srv.stats();
    EXPECT_EQ(st.completed, 2u);
    EXPECT_EQ(st.jobFaults, 0u);
}

TEST(JobServerStats, RecordsDepthLatencyAndEngineCycles)
{
    auto cfg = testChip();
    JobServerConfig jcfg;
    jcfg.workers = 2;
    jcfg.windows = 2;
    jcfg.window.fifoDepth = 0;
    jcfg.startPaused = true;    // guarantees a non-trivial queue depth
    JobServer srv(cfg, jcfg);

    const int kJobs = 20;
    uint64_t bytesIn = 0;
    for (int j = 0; j < kJobs; ++j) {
        auto payload = workloads::makeMixed(
            4096, static_cast<uint64_t>(j));
        bytesIn += payload.size();
        ASSERT_TRUE(
            srv.submitAsync(compressSpec(std::move(payload)), j % 2)
                .accepted());
    }
    srv.resume();
    auto jobs = srv.drain();
    ASSERT_EQ(jobs.size(), static_cast<size_t>(kJobs));

    auto st = srv.stats();
    EXPECT_EQ(st.bytesIn, bytesIn);
    EXPECT_GT(st.bytesOut, 0u);
    EXPECT_GT(st.meanQueueDepth, 1.0);    // FIFO really backed up
    EXPECT_EQ(st.wait.count, static_cast<uint64_t>(kJobs));
    EXPECT_EQ(st.service.count, static_cast<uint64_t>(kJobs));
    EXPECT_GE(st.wait.p99, st.wait.p50);
    EXPECT_GE(st.service.p99, st.service.p50);
    EXPECT_GT(st.engineCyclesSum, 0u);
    // The parallel makespan can never exceed the serial sum (equality
    // is legal: a fast worker may drain the whole FIFO alone).
    EXPECT_GE(st.engineCyclesSum, st.engineCyclesMax);

    // Modelled aggregate rate is bounded by the engine-pool peak.
    double modelled = st.modelledSeconds(cfg);
    ASSERT_GT(modelled, 0.0);
    double bps = static_cast<double>(st.bytesIn) / modelled;
    EXPECT_LE(bps,
              cfg.peakCompressBps() * srv.workerCount() * 1.01);
}

TEST(JobServerStats, QueueHighWaterTracksTheDeepestBacklog)
{
    // Deterministic backlog: gate the engines, paste N jobs, and the
    // high-water mark must read exactly N (total across FIFOs), not a
    // sampled average.
    auto cfg = testChip();
    JobServerConfig jcfg;
    jcfg.workers = 1;
    jcfg.windows = 2;
    jcfg.window.fifoDepth = 0;   // unbounded: all pastes accepted
    jcfg.startPaused = true;
    JobServer srv(cfg, jcfg);

    EXPECT_EQ(srv.stats().queueDepthHighWater, 0u);
    const int kJobs = 7;
    for (int j = 0; j < kJobs; ++j)
        ASSERT_TRUE(srv.submitAsync(
                           compressSpec(workloads::makeText(
                               512, static_cast<uint64_t>(j))),
                           j % 2)
                        .accepted());
    EXPECT_EQ(srv.stats().queueDepthHighWater,
              static_cast<uint64_t>(kJobs));

    srv.resume();
    (void)srv.drain();
    // Draining cannot rewind the mark.
    EXPECT_EQ(srv.stats().queueDepthHighWater,
              static_cast<uint64_t>(kJobs));
}

TEST(JobServerStats, BusyRejectsAreAttributedToTheirWindow)
{
    // Fill window 1 of a gated server and bounce off it three times;
    // the per-window counters must name the guilty FIFO and sum to
    // the aggregate count.
    auto cfg = testChip();
    JobServerConfig jcfg;
    jcfg.workers = 1;
    jcfg.windows = 3;
    jcfg.window.fifoDepth = 2;
    jcfg.startPaused = true;
    JobServer srv(cfg, jcfg);

    auto spec = compressSpec(workloads::makeText(512, 9));
    for (int j = 0; j < 2; ++j)
        ASSERT_TRUE(srv.submitAsync(spec, 1).accepted());
    for (int j = 0; j < 3; ++j)
        EXPECT_EQ(srv.submitAsync(spec, 1).status,
                  nx::PasteStatus::Busy);
    // Other windows have room: accepted, and their counters stay 0.
    ASSERT_TRUE(srv.submitAsync(spec, 0).accepted());
    ASSERT_TRUE(srv.submitAsync(spec, 2).accepted());

    auto st = srv.stats();
    ASSERT_EQ(st.windowBusyRejects.size(), 3u);
    EXPECT_EQ(st.windowBusyRejects[0], 0u);
    EXPECT_EQ(st.windowBusyRejects[1], 3u);
    EXPECT_EQ(st.windowBusyRejects[2], 0u);
    EXPECT_EQ(st.busyRejects, 3u);

    srv.resume();
    srv.drainAndStop();
}

} // namespace
