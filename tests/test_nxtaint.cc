/**
 * @file
 * Drives nxtaint (tools/nxtaint) on small in-memory fixtures: one
 * flagging and one clean case per source, sink, and sanitizer rule,
 * the suppression grammar with stale-allow detection, and a
 * deliberately vulnerable decoder fixture that must light up every
 * taint rule at once. The real-tree invocation (which must be clean)
 * runs both here and as the separate `nxtaint` ctest.
 */

#include <algorithm>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "nxtaint/nxtaint.h"

namespace {

using nxtaint::analyzeFile;
using nxtaint::Finding;

std::vector<std::string>
rulesOf(const std::vector<Finding> &fs)
{
    std::vector<std::string> out;
    for (const Finding &f : fs)
        out.push_back(f.rule);
    return out;
}

bool
fired(const std::vector<Finding> &fs, std::string_view rule)
{
    return std::any_of(fs.begin(), fs.end(), [&](const Finding &f) {
        return f.rule == rule;
    });
}

std::string
dump(const std::vector<Finding> &fs)
{
    std::string out;
    for (const Finding &f : fs)
        out += nxtaint::format(f) + "\n";
    return out;
}

// ---------------------------------------------------------------------------
// sources
// ---------------------------------------------------------------------------

TEST(NxtaintSource, BitReaderResultTaintsVariable)
{
    auto fs = analyzeFile(
        "src/deflate/x.cc",
        "void f(util::BitReader &br, std::vector<uint8_t> &out) {\n"
        "    unsigned n = br.readBits(16);\n"
        "    out.resize(n);\n"
        "}\n");
    ASSERT_TRUE(fired(fs, "taint-alloc-size")) << dump(fs);
    EXPECT_EQ(fs[0].line, 3);
    EXPECT_NE(fs[0].message.find("'n'"), std::string::npos);
}

TEST(NxtaintSource, InlineSourceCallIsTainted)
{
    auto fs = analyzeFile(
        "src/deflate/x.cc",
        "int f(util::BitReader &br) {\n"
        "    return kTable[br.readBits(5)];\n"
        "}\n");
    ASSERT_TRUE(fired(fs, "taint-index")) << dump(fs);
    EXPECT_NE(fs[0].message.find("readBits() result"), std::string::npos);
}

TEST(NxtaintSource, UntrustedParameterIsTainted)
{
    auto fs = analyzeFile(
        "src/deflate/x.cc",
        "void f(NXSIM_UNTRUSTED std::span<const uint8_t> data,\n"
        "       std::vector<uint8_t> &out) {\n"
        "    out.resize(data[0]);\n"
        "}\n");
    ASSERT_TRUE(fired(fs, "taint-alloc-size")) << dump(fs);
    EXPECT_NE(fs[0].message.find("NXSIM_UNTRUSTED parameter 'data'"),
              std::string::npos);
}

TEST(NxtaintSource, PlainParameterIsNotTainted)
{
    auto fs = analyzeFile(
        "src/deflate/x.cc",
        "void f(std::span<const uint8_t> data, std::vector<uint8_t> &out) {\n"
        "    out.resize(data[0]);\n"
        "}\n");
    EXPECT_TRUE(fs.empty()) << dump(fs);
}

TEST(NxtaintSource, TaintPropagatesThroughArithmetic)
{
    auto fs = analyzeFile(
        "src/deflate/x.cc",
        "void f(util::BitReader &br, std::vector<uint8_t> &out) {\n"
        "    unsigned n = br.readBits(5);\n"
        "    size_t m = n + 4;\n"
        "    out.resize(m);\n"
        "}\n");
    ASSERT_TRUE(fired(fs, "taint-alloc-size")) << dump(fs);
    EXPECT_EQ(fs[0].line, 4);
}

TEST(NxtaintSource, ReassignmentWithCleanValueClearsTaint)
{
    auto fs = analyzeFile(
        "src/deflate/x.cc",
        "void f(util::BitReader &br, std::vector<uint8_t> &out) {\n"
        "    unsigned n = br.readBits(5);\n"
        "    n = 4;\n"
        "    out.resize(n);\n"
        "}\n");
    EXPECT_TRUE(fs.empty()) << dump(fs);
}

TEST(NxtaintSource, TaintDoesNotLeakAcrossFunctions)
{
    auto fs = analyzeFile(
        "src/deflate/x.cc",
        "void f(util::BitReader &br) {\n"
        "    unsigned n = br.readBits(8);\n"
        "    (void)n;\n"
        "}\n"
        "void g(std::vector<uint8_t> &out, unsigned n) {\n"
        "    out.resize(n);\n"
        "}\n");
    EXPECT_TRUE(fs.empty()) << dump(fs);
}

// ---------------------------------------------------------------------------
// sinks
// ---------------------------------------------------------------------------

TEST(NxtaintSinkCopySize, MemcpyAndCopyBytesFire)
{
    auto fs = analyzeFile(
        "src/deflate/x.cc",
        "void f(util::BitReader &br, uint8_t *d, const uint8_t *s) {\n"
        "    size_t n = br.readBits(16);\n"
        "    std::memcpy(d, s, n);\n"
        "    nx::copyBytes(d, s, n);\n"
        "}\n");
    auto rs = rulesOf(fs);
    EXPECT_EQ(std::count(rs.begin(), rs.end(),
                         std::string("taint-copy-size")),
              2)
        << dump(fs);
}

TEST(NxtaintSinkCopySize, LiteralSizeIsClean)
{
    auto fs = analyzeFile(
        "src/deflate/x.cc",
        "void f(util::BitReader &br, uint8_t *d, const uint8_t *s) {\n"
        "    unsigned n = br.readBits(16);\n"
        "    (void)n;\n"
        "    std::memcpy(d, s, 8);\n"
        "}\n");
    EXPECT_TRUE(fs.empty()) << dump(fs);
}

TEST(NxtaintSinkAllocSize, ResizeReserveAssignInsertFire)
{
    // insert(end, n, fill) is the exact shape of the code-length run
    // bug fixed in the inflate decoders.
    auto fs = analyzeFile(
        "src/deflate/x.cc",
        "void f(util::BitReader &br, std::vector<uint8_t> &out) {\n"
        "    size_t n = 11 + br.readBits(7);\n"
        "    out.resize(n);\n"
        "    out.reserve(n);\n"
        "    out.assign(n, 0);\n"
        "    out.insert(out.end(), n, 0);\n"
        "}\n");
    auto rs = rulesOf(fs);
    EXPECT_EQ(std::count(rs.begin(), rs.end(),
                         std::string("taint-alloc-size")),
              4)
        << dump(fs);
}

TEST(NxtaintSinkAllocSize, FreeFunctionResizeIsNotASink)
{
    // Only member resize/reserve are allocation sinks.
    auto fs = analyzeFile(
        "src/deflate/x.cc",
        "void f(util::BitReader &br) {\n"
        "    unsigned n = br.readBits(4);\n"
        "    resize(n);\n"
        "}\n");
    EXPECT_TRUE(fs.empty()) << dump(fs);
}

TEST(NxtaintSinkIndex, TaintedSubscriptFires)
{
    auto fs = analyzeFile(
        "src/deflate/x.cc",
        "int f(util::BitReader &br, const int *table) {\n"
        "    unsigned v = br.readBits(7);\n"
        "    return table[v];\n"
        "}\n");
    ASSERT_TRUE(fired(fs, "taint-index")) << dump(fs);
    EXPECT_EQ(fs[0].line, 3);
}

TEST(NxtaintSinkIndex, UntaintedSubscriptIsClean)
{
    auto fs = analyzeFile(
        "src/deflate/x.cc",
        "int f(util::BitReader &br, const int *table) {\n"
        "    unsigned v = br.readBits(7);\n"
        "    (void)v;\n"
        "    return table[3];\n"
        "}\n");
    EXPECT_TRUE(fs.empty()) << dump(fs);
}

TEST(NxtaintSinkShift, TaintedShiftAmountFires)
{
    auto fs = analyzeFile(
        "src/deflate/x.cc",
        "unsigned f(util::BitReader &br) {\n"
        "    unsigned s = br.readBits(5);\n"
        "    return 1u << s;\n"
        "}\n");
    ASSERT_TRUE(fired(fs, "taint-shift")) << dump(fs);
}

TEST(NxtaintSinkShift, StreamInsertionIsNotAShift)
{
    auto fs = analyzeFile(
        "src/deflate/x.cc",
        "void f(util::BitReader &br, std::ostream &os) {\n"
        "    unsigned n = br.readBits(8);\n"
        "    os << \"n=\" << n;\n"
        "}\n");
    EXPECT_FALSE(fired(fs, "taint-shift")) << dump(fs);
}

TEST(NxtaintSinkLoopBound, TaintedLoopBoundFires)
{
    auto fs = analyzeFile(
        "src/deflate/x.cc",
        "void f(util::BitReader &br, std::vector<uint8_t> &out) {\n"
        "    unsigned n = br.readBits(16);\n"
        "    for (unsigned i = 0; i < n; ++i)\n"
        "        out.push_back(0);\n"
        "}\n");
    ASSERT_TRUE(fired(fs, "taint-loop-bound")) << dump(fs);
    EXPECT_EQ(fs[0].line, 3);
}

TEST(NxtaintSinkLoopBound, WhileConditionFiresToo)
{
    auto fs = analyzeFile(
        "src/deflate/x.cc",
        "void f(util::BitReader &br, std::vector<uint8_t> &out) {\n"
        "    unsigned n = br.readBits(16);\n"
        "    while (out.size() < n)\n"
        "        out.push_back(0);\n"
        "}\n");
    EXPECT_TRUE(fired(fs, "taint-loop-bound")) << dump(fs);
}

// ---------------------------------------------------------------------------
// sanitizers
// ---------------------------------------------------------------------------

TEST(NxtaintSanitizer, IfComparisonSanitizes)
{
    auto fs = analyzeFile(
        "src/deflate/x.cc",
        "void f(util::BitReader &br, std::vector<uint8_t> &out) {\n"
        "    unsigned n = br.readBits(16);\n"
        "    if (n > 1024)\n"
        "        return;\n"
        "    out.resize(n);\n"
        "    for (unsigned i = 0; i < n; ++i)\n"
        "        out[i] = 0;\n"
        "}\n");
    EXPECT_TRUE(fs.empty()) << dump(fs);
}

TEST(NxtaintSanitizer, ContractMacroSanitizes)
{
    auto fs = analyzeFile(
        "src/deflate/x.cc",
        "void f(util::BitReader &br, std::vector<uint8_t> &out) {\n"
        "    unsigned n = br.readBits(16);\n"
        "    NXSIM_EXPECT(n <= 1024, \"header length in range\");\n"
        "    out.resize(n);\n"
        "}\n");
    EXPECT_TRUE(fs.empty()) << dump(fs);
}

TEST(NxtaintSanitizer, CheckedCastWrapperSanitizes)
{
    auto fs = analyzeFile(
        "src/deflate/x.cc",
        "void f(util::BitReader &br, std::vector<uint8_t> &out) {\n"
        "    unsigned n = br.readBits(16);\n"
        "    out.resize(nx::checked_cast<uint8_t>(n));\n"
        "}\n");
    EXPECT_TRUE(fs.empty()) << dump(fs);
}

TEST(NxtaintSanitizer, StdMinAssignmentSanitizes)
{
    auto fs = analyzeFile(
        "src/deflate/x.cc",
        "void f(util::BitReader &br, std::vector<uint8_t> &out) {\n"
        "    unsigned n = br.readBits(16);\n"
        "    size_t m = std::min<size_t>(n, out.size());\n"
        "    out.resize(m);\n"
        "}\n");
    EXPECT_TRUE(fs.empty()) << dump(fs);
}

TEST(NxtaintSanitizer, ConstantMaskSanitizes)
{
    auto fs = analyzeFile(
        "src/deflate/x.cc",
        "int f(util::BitReader &br, const int *table) {\n"
        "    unsigned v = br.readBits(9);\n"
        "    return table[v & 0x1f] + table[v % kTableSize];\n"
        "}\n");
    EXPECT_TRUE(fs.empty()) << dump(fs);
}

TEST(NxtaintSanitizer, GeometryQueriesOnTaintedBufferAreClean)
{
    // data's *contents* are attacker-controlled; data.size() is the
    // local buffer geometry, which is what checks compare against.
    auto fs = analyzeFile(
        "src/deflate/x.cc",
        "void f(NXSIM_UNTRUSTED std::span<const uint8_t> data,\n"
        "       std::vector<uint8_t> &out) {\n"
        "    out.resize(data.size());\n"
        "}\n");
    EXPECT_TRUE(fs.empty()) << dump(fs);
}

TEST(NxtaintSanitizer, SizeCallDoesNotSanitizeTheBufferItself)
{
    // Comparing data.size() must not mark data's contents clean.
    auto fs = analyzeFile(
        "src/deflate/x.cc",
        "void f(NXSIM_UNTRUSTED std::span<const uint8_t> data,\n"
        "       std::vector<uint8_t> &out) {\n"
        "    if (data.size() < 4)\n"
        "        return;\n"
        "    out.resize(data[0]);\n"
        "}\n");
    EXPECT_TRUE(fired(fs, "taint-alloc-size")) << dump(fs);
}

TEST(NxtaintSanitizer, LoopBoundSanitizedByPriorCheckIsClean)
{
    auto fs = analyzeFile(
        "src/deflate/x.cc",
        "void f(util::BitReader &br, std::vector<uint8_t> &out) {\n"
        "    unsigned n = br.readBits(4);\n"
        "    if (n >= kNumClc)\n"
        "        return;\n"
        "    for (unsigned i = 0; i < n; ++i)\n"
        "        out.push_back(0);\n"
        "}\n");
    EXPECT_TRUE(fs.empty()) << dump(fs);
}

// ---------------------------------------------------------------------------
// the deliberately vulnerable fixture
// ---------------------------------------------------------------------------

TEST(NxtaintVulnerableFixture, EveryTaintRuleFires)
{
    // A compact header decoder written the wrong way on purpose: every
    // taint rule must light up, proving end-to-end source -> sink
    // coverage on realistic decode-loop code.
    auto fs = analyzeFile(
        "src/deflate/bad_decoder.cc",
        "void decode(util::BitReader &br, std::vector<uint8_t> &out) {\n"
        "    unsigned count = br.readBits(16);\n"
        "    out.reserve(count);\n"
        "    unsigned shift = br.readBits(5);\n"
        "    unsigned base = 1u << shift;\n"
        "    (void)base;\n"
        "    for (unsigned i = 0; i < count; ++i)\n"
        "        out.push_back(kTable[br.readBits(4)]);\n"
        "}\n");
    EXPECT_TRUE(fired(fs, "taint-alloc-size")) << dump(fs);
    EXPECT_TRUE(fired(fs, "taint-shift")) << dump(fs);
    EXPECT_TRUE(fired(fs, "taint-loop-bound")) << dump(fs);
    EXPECT_TRUE(fired(fs, "taint-index")) << dump(fs);
    EXPECT_EQ(fs.size(), 4u) << dump(fs);
}

// ---------------------------------------------------------------------------
// suppressions
// ---------------------------------------------------------------------------

TEST(NxtaintSuppression, JustifiedAllowSuppressesNextLine)
{
    auto fs = analyzeFile(
        "src/deflate/x.cc",
        "void f(util::BitReader &br, std::vector<uint8_t> &out) {\n"
        "    unsigned n = br.readBits(16);\n"
        "    // nxtaint: allow(taint-alloc-size): capped by the framing\n"
        "    out.resize(n);\n"
        "}\n");
    EXPECT_TRUE(fs.empty()) << dump(fs);
}

TEST(NxtaintSuppression, MultiLineJustificationCoversNextCodeLine)
{
    auto fs = analyzeFile(
        "src/deflate/x.cc",
        "void f(util::BitReader &br, std::vector<uint8_t> &out) {\n"
        "    unsigned n = br.readBits(16);\n"
        "    // nxtaint: allow(taint-alloc-size): the 16-bit field is\n"
        "    // validated against the container cap by the caller\n"
        "    out.resize(n);\n"
        "}\n");
    EXPECT_TRUE(fs.empty()) << dump(fs);
}

TEST(NxtaintSuppression, BareAllowIsAFindingAndSuppressesNothing)
{
    auto fs = analyzeFile(
        "src/deflate/x.cc",
        "void f(util::BitReader &br, std::vector<uint8_t> &out) {\n"
        "    unsigned n = br.readBits(16);\n"
        "    // nxtaint: allow(taint-alloc-size)\n"
        "    out.resize(n);\n"
        "}\n");
    EXPECT_TRUE(fired(fs, "bare-allow")) << dump(fs);
    EXPECT_TRUE(fired(fs, "taint-alloc-size")) << dump(fs);
}

TEST(NxtaintSuppression, UnknownRuleInAllowFires)
{
    auto fs = analyzeFile(
        "src/deflate/x.cc",
        "int a; // nxtaint: allow(no-such-rule): why\n");
    ASSERT_TRUE(fired(fs, "bare-allow")) << dump(fs);
    EXPECT_NE(fs[0].message.find("no-such-rule"), std::string::npos);
}

TEST(NxtaintSuppression, FileScopeAllowBeforeAnyCode)
{
    auto fs = analyzeFile(
        "src/deflate/x.cc",
        "// nxtaint: allow(taint-index): table is 1 << maxBits entries\n"
        "#include \"a.h\"\n"
        "int f(util::BitReader &br, const int *table) {\n"
        "    return table[br.readBits(5)];\n"
        "}\n");
    EXPECT_TRUE(fs.empty()) << dump(fs);
}

TEST(NxtaintSuppression, UnusedAllowIsStale)
{
    auto fs = analyzeFile(
        "src/deflate/x.cc",
        "void f(std::vector<uint8_t> &out) {\n"
        "    // nxtaint: allow(taint-alloc-size): was tainted once\n"
        "    out.resize(4);\n"
        "}\n");
    ASSERT_TRUE(fired(fs, "stale-allow")) << dump(fs);
    EXPECT_EQ(fs[0].line, 2);
    EXPECT_NE(fs[0].message.find("taint-alloc-size"), std::string::npos);
}

TEST(NxtaintSuppression, StaleAllowItselfCanBeExcused)
{
    auto fs = analyzeFile(
        "src/deflate/x.cc",
        "void f(std::vector<uint8_t> &out) {\n"
        "    // nxtaint: allow(stale-allow): taint is ifdef'd per target\n"
        "    // nxtaint: allow(taint-alloc-size): only on z15 builds\n"
        "    out.resize(4);\n"
        "}\n");
    EXPECT_FALSE(fired(fs, "stale-allow")) << dump(fs);
}

TEST(NxtaintSuppression, MentionInProseDoesNotSuppress)
{
    auto fs = analyzeFile(
        "src/deflate/x.cc",
        "/* docs: write `// nxtaint: allow(taint-index): why` */\n"
        "int f(util::BitReader &br, const int *table) {\n"
        "    return table[br.readBits(5)];\n"
        "}\n");
    EXPECT_TRUE(fired(fs, "taint-index")) << dump(fs);
}

// ---------------------------------------------------------------------------
// cross-function propagation (call-graph summaries)
// ---------------------------------------------------------------------------

TEST(NxtaintCross, TaintedArgReachingCalleeSinkFlagsCallSite)
{
    auto fs = analyzeFile(
        "src/deflate/x.cc",
        "void copyBody(uint8_t *dst, const uint8_t *src, size_t n) {\n"
        "    memcpy(dst, src, n);\n"
        "}\n"
        "void f(util::BitReader &br, uint8_t *dst, const uint8_t *s) {\n"
        "    size_t n = br.readBits(16);\n"
        "    copyBody(dst, s, n);\n"
        "}\n");
    ASSERT_TRUE(fired(fs, "taint-copy-size")) << dump(fs);
    const Finding *cross = nullptr;
    for (const Finding &f : fs)
        if (f.line == 6)
            cross = &f;
    ASSERT_NE(cross, nullptr) << dump(fs);
    EXPECT_NE(cross->message.find("call chain"), std::string::npos);
    EXPECT_NE(cross->message.find("copyBody -> memcpy"),
              std::string::npos)
        << cross->message;
}

TEST(NxtaintCross, HelperReturningSourceTaintsCaller)
{
    auto fs = analyzeFile(
        "src/deflate/x.cc",
        "unsigned readLen(util::BitReader &br) {\n"
        "    return br.readBits(16);\n"
        "}\n"
        "void f(util::BitReader &br, std::vector<uint8_t> &out) {\n"
        "    out.resize(readLen(br));\n"
        "}\n");
    ASSERT_TRUE(fired(fs, "taint-alloc-size")) << dump(fs);
    EXPECT_EQ(fs[0].line, 5);
}

TEST(NxtaintCross, ArgFlowsThroughToResult)
{
    auto fs = analyzeFile(
        "src/deflate/x.cc",
        "size_t scaled(size_t v) { return v * 2; }\n"
        "void f(util::BitReader &br, std::vector<uint8_t> &out) {\n"
        "    size_t n = br.readBits(12);\n"
        "    out.resize(scaled(n));\n"
        "}\n");
    ASSERT_TRUE(fired(fs, "taint-alloc-size")) << dump(fs);
}

TEST(NxtaintCross, CalleeWithInternalCheckIsCleanAtCallSite)
{
    auto fs = analyzeFile(
        "src/deflate/x.cc",
        "void copyChecked(uint8_t *dst, const uint8_t *s, size_t n) {\n"
        "    if (n > kMaxBlock)\n"
        "        return;\n"
        "    memcpy(dst, s, n);\n"
        "}\n"
        "void f(util::BitReader &br, uint8_t *dst, const uint8_t *s) {\n"
        "    size_t n = br.readBits(16);\n"
        "    copyChecked(dst, s, n);\n"
        "}\n");
    EXPECT_TRUE(fs.empty()) << dump(fs);
}

TEST(NxtaintCross, ResolvedCalleeNotReturningArgIsClean)
{
    // Before summaries, `headerCost(n)` was conservatively tainted
    // because n is; the summary proves the result ignores its arg.
    auto fs = analyzeFile(
        "src/deflate/x.cc",
        "size_t headerCost(size_t n) { (void)n; return 4; }\n"
        "void f(util::BitReader &br, std::vector<uint8_t> &out) {\n"
        "    size_t n = br.readBits(16);\n"
        "    out.resize(headerCost(n));\n"
        "}\n");
    EXPECT_TRUE(fs.empty()) << dump(fs);
}

TEST(NxtaintCross, UnresolvedExternalStaysConservative)
{
    auto fs = analyzeFile(
        "src/deflate/x.cc",
        "void f(util::BitReader &br, std::vector<uint8_t> &out) {\n"
        "    size_t n = br.readBits(16);\n"
        "    out.resize(externalTransform(n));\n"
        "}\n");
    ASSERT_TRUE(fired(fs, "taint-alloc-size")) << dump(fs);
}

TEST(NxtaintCross, TwoHopChainIsReported)
{
    auto fs = analyzeFile(
        "src/deflate/x.cc",
        "void leafCopy(uint8_t *d, const uint8_t *s, size_t n) {\n"
        "    memcpy(d, s, n);\n"
        "}\n"
        "void midCopy(uint8_t *d, const uint8_t *s, size_t n) {\n"
        "    leafCopy(d, s, n);\n"
        "}\n"
        "void f(util::BitReader &br, uint8_t *d, const uint8_t *s) {\n"
        "    size_t n = br.readBits(16);\n"
        "    midCopy(d, s, n);\n"
        "}\n");
    ASSERT_TRUE(fired(fs, "taint-copy-size")) << dump(fs);
    bool chained = false;
    for (const Finding &f : fs)
        if (f.message.find("midCopy -> leafCopy -> memcpy") !=
            std::string::npos)
            chained = true;
    EXPECT_TRUE(chained) << dump(fs);
}

TEST(NxtaintCross, LaunderingAcrossFilesIsCaught)
{
    auto fs = nxtaint::analyzeFiles(
        {{"src/deflate/helper.cc",
          "void rawFill(std::vector<uint8_t> &out, size_t n) {\n"
          "    out.resize(n);\n"
          "}\n"},
         {"src/deflate/user.cc",
          "void f(util::BitReader &br, std::vector<uint8_t> &out) {\n"
          "    rawFill(out, br.readBits(16));\n"
          "}\n"}});
    ASSERT_TRUE(fired(fs, "taint-alloc-size")) << dump(fs);
    EXPECT_EQ(fs[0].file, "src/deflate/user.cc");
    EXPECT_EQ(fs[0].line, 2);
}

TEST(NxtaintCross, VulnerableFixtureHelperLaunderedTaint)
{
    // The acceptance fixture: a deliberately vulnerable decoder that
    // launders every hop through helpers — each flow must still fire.
    auto fs = analyzeFile(
        "src/deflate/vuln.cc",
        "static size_t decodeCount(util::BitReader &br) {\n"
        "    return br.readBits(16);\n"
        "}\n"
        "static void storeAt(std::vector<uint8_t> &v, size_t i) {\n"
        "    v[i] = 0;\n"
        "}\n"
        "static void growTo(std::vector<uint8_t> &v, size_t n) {\n"
        "    v.reserve(n);\n"
        "}\n"
        "void decode(util::BitReader &br, std::vector<uint8_t> &out) {\n"
        "    size_t count = decodeCount(br);\n"
        "    growTo(out, count);\n"
        "    storeAt(out, count);\n"
        "}\n");
    EXPECT_TRUE(fired(fs, "taint-alloc-size")) << dump(fs);
    EXPECT_TRUE(fired(fs, "taint-index")) << dump(fs);
    // Both findings land in decode(), at the laundering call sites.
    for (const Finding &f : fs)
        EXPECT_GE(f.line, 11) << dump(fs);
}

// ---------------------------------------------------------------------------
// plumbing + the real tree
// ---------------------------------------------------------------------------

TEST(NxtaintFormat, MatchesFileLineRuleMessage)
{
    Finding f{"src/deflate/x.cc", 7, "taint-index", "msg"};
    EXPECT_EQ(nxtaint::format(f), "src/deflate/x.cc:7: taint-index: msg");
}

TEST(NxtaintRules, TableIsPopulatedAndUnique)
{
    const auto &rs = nxtaint::rules();
    EXPECT_GE(rs.size(), 8u);
    for (size_t i = 0; i < rs.size(); ++i)
        for (size_t j = i + 1; j < rs.size(); ++j)
            EXPECT_NE(rs[i].id, rs[j].id);
}

TEST(NxtaintRealTree, RepoIsClean)
{
    auto fs = nxtaint::analyzeTree(NXSIM_SOURCE_DIR);
    EXPECT_TRUE(fs.empty()) << dump(fs);
}

} // namespace
