/**
 * @file
 * DHT generator tests: sampled vs two-pass table quality, completeness
 * of sampled codes (every symbol encodable), and cycle accounting.
 */

#include <gtest/gtest.h>

#include "deflate/constants.h"
#include "nx/dht_generator.h"
#include "nx/match_pipeline.h"
#include "workloads/corpus.h"

using nx::DhtGenerator;
using nx::DhtMode;
using nx::MatchPipeline;
using nx::NxConfig;

class DhtTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        cfg_ = NxConfig::power9();
        input_ = workloads::makeText(512 * 1024, 61);
        MatchPipeline pipe(cfg_);
        tokens_ = pipe.run(input_).tokens;
    }

    NxConfig cfg_;
    std::vector<uint8_t> input_;
    std::vector<deflate::Token> tokens_;
};

TEST_F(DhtTest, SampledCodesCoverWholeAlphabet)
{
    DhtGenerator gen(cfg_);
    auto res = gen.generate(tokens_, input_.size(), DhtMode::Sampled,
                            4096);
    // The frequency floor guarantees every symbol a code, so tokens in
    // the unsampled tail can never hit a zero-length code.
    for (int s = 0; s < deflate::kNumLitLen; ++s)
        EXPECT_GT(res.codes.litlen.length(s), 0) << "litlen " << s;
    for (int s = 0; s < deflate::kNumDist; ++s)
        EXPECT_GT(res.codes.dist.length(s), 0) << "dist " << s;
}

TEST_F(DhtTest, SampleBytesCapped)
{
    DhtGenerator gen(cfg_);
    auto res = gen.generate(tokens_, input_.size(), DhtMode::Sampled,
                            8192);
    EXPECT_LE(res.sampleBytes, 8192u + deflate::kMaxMatch);
    auto resAll = gen.generate(tokens_, input_.size(),
                               DhtMode::Sampled, 1u << 30);
    EXPECT_LE(resAll.sampleBytes, input_.size());
}

TEST_F(DhtTest, TwoPassCostsMoreCyclesThanSampled)
{
    DhtGenerator gen(cfg_);
    auto sampled = gen.generate(tokens_, input_.size(),
                                DhtMode::Sampled, 16384);
    auto twoPass = gen.generate(tokens_, input_.size(),
                                DhtMode::TwoPass);
    EXPECT_LT(sampled.cycles, twoPass.cycles);
}

TEST_F(DhtTest, TwoPassTablesAtLeastAsGoodAsSampled)
{
    DhtGenerator gen(cfg_);
    auto sampled = gen.generate(tokens_, input_.size(),
                                DhtMode::Sampled, 4096);
    auto twoPass = gen.generate(tokens_, input_.size(),
                                DhtMode::TwoPass);

    deflate::SymbolFreqs freqs;
    freqs.accumulate(tokens_);
    uint64_t costSampled = deflate::tokenCostBits(
        freqs, sampled.codes.litlen, sampled.codes.dist);
    uint64_t costTwoPass = deflate::tokenCostBits(
        freqs, twoPass.codes.litlen, twoPass.codes.dist);
    EXPECT_LE(costTwoPass, costSampled);
}

TEST_F(DhtTest, LargerSamplesImproveTables)
{
    DhtGenerator gen(cfg_);
    deflate::SymbolFreqs freqs;
    freqs.accumulate(tokens_);

    uint64_t prev_cost = UINT64_MAX;
    for (uint64_t sample : {1024u, 16384u, 262144u}) {
        auto res = gen.generate(tokens_, input_.size(),
                                DhtMode::Sampled, sample);
        uint64_t cost = deflate::tokenCostBits(
            freqs, res.codes.litlen, res.codes.dist);
        // Not strictly monotone in theory, but for homogeneous text it
        // should be (allow 1 % slack).
        EXPECT_LE(cost, prev_cost + prev_cost / 100) << sample;
        prev_cost = cost;
    }
}

TEST_F(DhtTest, CyclesIncludeBuildCost)
{
    DhtGenerator gen(cfg_);
    auto res = gen.generate(tokens_, input_.size(), DhtMode::Sampled,
                            1024);
    EXPECT_GE(res.cycles, cfg_.dhtBuildCycles);
}

TEST_F(DhtTest, EmptyTokenStream)
{
    DhtGenerator gen(cfg_);
    std::vector<deflate::Token> empty;
    auto res = gen.generate(empty, 0, DhtMode::TwoPass);
    // EOB must still be encodable.
    EXPECT_GT(res.codes.litlen.length(deflate::kEob), 0);
}
