/**
 * @file
 * Unit tests for RunningStat, Percentiles, StatSet and the
 * LatencyRecorder snapshot (including the p999 tail percentile the
 * serving SLO report keys on).
 */

#include <gtest/gtest.h>

#include "util/latency_recorder.h"
#include "util/stats.h"
#include "util/table.h"

using util::Percentiles;
using util::RunningStat;
using util::StatSet;

TEST(RunningStat, EmptyIsZero)
{
    RunningStat s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(RunningStat, MeanMinMaxSum)
{
    RunningStat s;
    for (double v : {1.0, 2.0, 3.0, 4.0})
        s.add(v);
    EXPECT_EQ(s.count(), 4u);
    EXPECT_DOUBLE_EQ(s.mean(), 2.5);
    EXPECT_DOUBLE_EQ(s.min(), 1.0);
    EXPECT_DOUBLE_EQ(s.max(), 4.0);
    EXPECT_DOUBLE_EQ(s.sum(), 10.0);
}

TEST(RunningStat, VarianceMatchesDefinition)
{
    RunningStat s;
    for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.add(v);
    // Sample variance of the classic dataset = 32/7.
    EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
}

TEST(Percentiles, ExactOnSmallSet)
{
    Percentiles p;
    for (int i = 1; i <= 100; ++i)
        p.add(i);
    EXPECT_NEAR(p.percentile(0), 1.0, 1e-9);
    EXPECT_NEAR(p.percentile(50), 50.5, 1e-9);
    EXPECT_NEAR(p.percentile(100), 100.0, 1e-9);
    EXPECT_NEAR(p.percentile(99), 99.01, 0.01);
}

TEST(Percentiles, EmptyReturnsZero)
{
    Percentiles p;
    EXPECT_DOUBLE_EQ(p.percentile(50), 0.0);
}

TEST(StatSet, IncrementAndGet)
{
    StatSet s;
    EXPECT_EQ(s.get("missing"), 0u);
    s.inc("cycles");
    s.inc("cycles", 9);
    EXPECT_EQ(s.get("cycles"), 10u);
    s.set("cycles", 3);
    EXPECT_EQ(s.get("cycles"), 3u);
}

TEST(StatSet, DumpIsSortedAndPrefixed)
{
    StatSet s;
    s.inc("b", 2);
    s.inc("a", 1);
    std::string d = s.dump("eng0");
    EXPECT_NE(d.find("eng0.a = 1"), std::string::npos);
    EXPECT_NE(d.find("eng0.b = 2"), std::string::npos);
    EXPECT_LT(d.find("eng0.a"), d.find("eng0.b"));
}

TEST(Table, RendersHeaderAndRows)
{
    util::Table t("demo");
    t.header({"col1", "column2"});
    t.row({"a", "b"});
    t.row({"longer", "x"});
    std::string s = t.str();
    EXPECT_NE(s.find("demo"), std::string::npos);
    EXPECT_NE(s.find("col1"), std::string::npos);
    EXPECT_NE(s.find("longer"), std::string::npos);
}

TEST(Table, FormatHelpers)
{
    EXPECT_EQ(util::Table::fmt(3.14159, 2), "3.14");
    EXPECT_EQ(util::Table::fmtBytes(2048), "2.00 KiB");
    EXPECT_EQ(util::Table::fmtRate(2.5e9), "2.50 GB/s");
}

TEST(LatencyRecorder, SnapshotExposesTailPercentiles)
{
    // 1..10000 in scrambled order: the exact quantiles are known, and
    // p999 must sit strictly between p99 and max — the tail the p50/p99
    // pair alone cannot see.
    util::LatencyRecorder rec;
    for (int i = 0; i < 10000; ++i)
        rec.record(static_cast<double>((i * 7919) % 10000 + 1));
    auto s = rec.snapshot();
    EXPECT_EQ(s.count, 10000u);
    EXPECT_DOUBLE_EQ(s.min, 1.0);
    EXPECT_DOUBLE_EQ(s.max, 10000.0);
    EXPECT_NEAR(s.p50, 5000.0, 2.0);
    EXPECT_NEAR(s.p99, 9900.0, 2.0);
    EXPECT_NEAR(s.p999, 9990.0, 2.0);
    EXPECT_LT(s.p99, s.p999);
    EXPECT_LE(s.p999, s.max);
}

TEST(LatencyRecorder, EmptySnapshotIsAllZero)
{
    util::LatencyRecorder rec;
    auto s = rec.snapshot();
    EXPECT_EQ(s.count, 0u);
    EXPECT_DOUBLE_EQ(s.p50, 0.0);
    EXPECT_DOUBLE_EQ(s.p999, 0.0);
}
