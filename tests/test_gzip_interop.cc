/**
 * @file
 * Interoperability against the REAL gzip implementation installed on
 * the host (when present): streams produced by the accelerator model
 * and by our software codec must gunzip cleanly, and streams produced
 * by system gzip must decode through both of our decoders. This is
 * the strongest external check that the bit format is right.
 *
 * All tests skip gracefully when /usr/bin/gzip is unavailable.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

#include "core/nxzip.h"
#include "core/topology.h"
#include "deflate/gzip_stream.h"
#include "workloads/corpus.h"

namespace {

bool
haveGzip()
{
    return std::system("command -v gzip > /dev/null 2>&1") == 0;
}

std::string
tmpPath(const std::string &name)
{
    return std::string("/tmp/nxsim_interop_") + name;
}

void
writeFile(const std::string &path, const std::vector<uint8_t> &data)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(reinterpret_cast<const char *>(data.data()),
              static_cast<std::streamsize>(data.size()));
    ASSERT_TRUE(out.good());
}

std::vector<uint8_t>
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    return {std::istreambuf_iterator<char>(in),
            std::istreambuf_iterator<char>()};
}

int
run(const std::string &cmd)
{
    return std::system(cmd.c_str());
}

} // namespace

class GzipInterop : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        if (!haveGzip())
            GTEST_SKIP() << "system gzip not available";
    }
};

TEST_F(GzipInterop, SystemGunzipAcceptsAcceleratorOutput)
{
    auto input = workloads::makeMixed(300000, 71);
    nxzip::Context ctx(core::power9Chip());
    auto c = ctx.compress(input);
    ASSERT_TRUE(c.ok);
    ASSERT_EQ(c.path, nxzip::Path::Accelerator);

    auto gz = tmpPath("accel.gz");
    auto out = tmpPath("accel.out");
    writeFile(gz, c.data);
    ASSERT_EQ(run("gunzip -c " + gz + " > " + out + " 2>/dev/null"),
              0);
    EXPECT_EQ(readFile(out), input);
}

TEST_F(GzipInterop, SystemGunzipAcceptsSoftwareOutput)
{
    auto input = workloads::makeLog(200000, 72);
    for (int level : {0, 1, 6, 9}) {
        core::SoftwareCodec sw(level);
        auto c = sw.compress(input, nx::Framing::Gzip);
        ASSERT_TRUE(c.ok());
        auto gz = tmpPath("sw" + std::to_string(level) + ".gz");
        auto out = tmpPath("sw" + std::to_string(level) + ".out");
        writeFile(gz, c.data);
        ASSERT_EQ(run("gunzip -c " + gz + " > " + out +
                      " 2>/dev/null"),
                  0)
            << "level " << level;
        EXPECT_EQ(readFile(out), input) << "level " << level;
    }
}

TEST_F(GzipInterop, SystemGunzipAcceptsEveryAcceleratorMode)
{
    auto input = workloads::makeJson(150000, 73);
    core::NxDevice dev(nx::NxConfig::z15());
    for (auto mode : {core::Mode::Fht, core::Mode::DhtSampled,
                      core::Mode::DhtTwoPass}) {
        auto c = dev.compress(input, nx::Framing::Gzip, mode);
        ASSERT_TRUE(c.ok());
        auto gz = tmpPath("mode.gz");
        auto out = tmpPath("mode.out");
        writeFile(gz, c.data);
        ASSERT_EQ(run("gunzip -c " + gz + " > " + out +
                      " 2>/dev/null"),
                  0);
        EXPECT_EQ(readFile(out), input);
    }
}

TEST_F(GzipInterop, WeAcceptSystemGzipOutput)
{
    auto input = workloads::makeText(250000, 74);
    auto raw = tmpPath("sysgzip.in");
    auto gz = tmpPath("sysgzip.in.gz");
    writeFile(raw, input);
    for (const char *level : {"-1", "-6", "-9"}) {
        ASSERT_EQ(run(std::string("gzip -kf ") + level + " " + raw),
                  0);
        auto stream = readFile(gz);
        ASSERT_FALSE(stream.empty());

        // One-shot software decoder.
        auto res = deflate::gzipUnwrap(stream);
        ASSERT_TRUE(res.ok) << res.error << " at gzip " << level;
        EXPECT_EQ(res.inflate.bytes, input);

        // Accelerator decompress engine.
        nxzip::Context ctx(core::power9Chip());
        auto d = ctx.decompress(stream);
        ASSERT_TRUE(d.ok) << d.error;
        EXPECT_EQ(d.path, nxzip::Path::Accelerator);
        EXPECT_EQ(d.data, input);
    }
}

TEST_F(GzipInterop, GunzipAcceptsCompressLargeMultiMember)
{
    // compressLarge emits concatenated gzip members; gunzip must
    // treat the file as one logical stream.
    auto cfg = nx::NxConfig::power9();
    cfg.compressEnginesPerUnit = 2;
    core::NxDevice dev(cfg);
    auto input = workloads::makeMixed(3 << 20, 76);
    auto c = dev.compressLarge(input, 1 << 20);
    ASSERT_TRUE(c.ok());

    auto gz = tmpPath("multi.gz");
    auto out = tmpPath("multi.out");
    writeFile(gz, c.data);
    ASSERT_EQ(run("gunzip -c " + gz + " > " + out + " 2>/dev/null"),
              0);
    EXPECT_EQ(readFile(out), input);
}

TEST_F(GzipInterop, WeAcceptConcatenatedSystemGzipMembers)
{
    auto a = workloads::makeText(50000, 77);
    auto b = workloads::makeLog(60000, 78);
    auto fa = tmpPath("cat_a");
    auto fb = tmpPath("cat_b");
    writeFile(fa, a);
    writeFile(fb, b);
    ASSERT_EQ(run("gzip -kf " + fa + " " + fb), 0);
    ASSERT_EQ(run("cat " + fa + ".gz " + fb + ".gz > " +
                  tmpPath("cat.gz")),
              0);
    auto file = readFile(tmpPath("cat.gz"));
    auto res = deflate::gzipUnwrapAll(file);
    ASSERT_TRUE(res.ok) << res.error;
    EXPECT_EQ(res.members, 2u);
    std::vector<uint8_t> both(a);
    both.insert(both.end(), b.begin(), b.end());
    EXPECT_EQ(res.bytes, both);
}

TEST_F(GzipInterop, BinaryDataBothDirections)
{
    auto input = workloads::makeBinary(100000, 75);

    // Ours -> gunzip.
    nxzip::Context ctx(core::z15Chip());
    auto c = ctx.compress(input);
    ASSERT_TRUE(c.ok);
    auto gz = tmpPath("bin.gz");
    auto out = tmpPath("bin.out");
    writeFile(gz, c.data);
    ASSERT_EQ(run("gunzip -c " + gz + " > " + out + " 2>/dev/null"),
              0);
    EXPECT_EQ(readFile(out), input);

    // gzip -> ours.
    auto raw = tmpPath("bin.in");
    writeFile(raw, input);
    ASSERT_EQ(run("gzip -kf " + raw), 0);
    auto stream = readFile(raw + ".gz");
    auto d = ctx.decompress(stream);
    ASSERT_TRUE(d.ok) << d.error;
    EXPECT_EQ(d.data, input);
}
