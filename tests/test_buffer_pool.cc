/**
 * @file
 * Edge-case suite for nx::BufferPool (ctest label: session).
 *
 * The pool's value is in its failure modes: exhaustion must degrade to
 * counted heap fallbacks (never block, never fail), misuse must abort
 * at the faulty call (death tests on the contract messages), and the
 * page-table lookup must resolve exactly the pointers the pool owns.
 * Alignment and release-poisoning are checked byte-for-byte.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <thread>
#include <vector>

#include "core/buffer_pool.h"

namespace {

using nx::BufferPool;
using nx::BufferPoolConfig;

uintptr_t
addr(const uint8_t *p)
{
    return reinterpret_cast<uintptr_t>(p);
}

TEST(BufferPool, EveryBufferIsPageAligned)
{
    BufferPoolConfig cfg;
    cfg.slabBytes = 1000;   // deliberately not a page multiple
    cfg.slabCount = 4;
    BufferPool pool(cfg);
    // Slab size is rounded up to whole pages.
    EXPECT_EQ(pool.slabBytes() % BufferPool::kPageBytes, 0u);
    EXPECT_GE(pool.slabBytes(), cfg.slabBytes);

    // Pool-served and heap-fallback buffers alike are page-aligned.
    std::vector<BufferPool::Lease> leases;
    for (int i = 0; i < 6; ++i) {
        leases.push_back(pool.acquire(512));
        ASSERT_TRUE(leases.back().valid());
        EXPECT_EQ(addr(leases.back().data()) % BufferPool::kPageBytes,
                  0u);
    }
    auto st = pool.stats();
    EXPECT_EQ(st.poolHits, 4u);
    EXPECT_EQ(st.heapFallbacks, 2u);
}

TEST(BufferPool, ExhaustionFallsBackToHeapAndRecovers)
{
    BufferPoolConfig cfg;
    cfg.slabCount = 2;
    BufferPool pool(cfg);

    auto a = pool.acquire(64);
    auto b = pool.acquire(64);
    EXPECT_TRUE(a.fromPool());
    EXPECT_TRUE(b.fromPool());
    EXPECT_EQ(pool.stats().freeSlabs, 0u);

    // Dry pool: acquire still succeeds, from the heap, and is counted.
    auto c = pool.acquire(64);
    ASSERT_TRUE(c.valid());
    EXPECT_FALSE(c.fromPool());
    EXPECT_FALSE(pool.owns(c.data()));
    EXPECT_EQ(pool.stats().heapFallbacks, 1u);

    // Returning a slab refills the pool; the next acquire hits again.
    a.release();
    auto d = pool.acquire(64);
    EXPECT_TRUE(d.fromPool());
    EXPECT_EQ(pool.stats().poolHits, 3u);
}

TEST(BufferPool, OversizeRequestBypassesThePool)
{
    BufferPool pool;   // default 64 KiB slabs
    auto big = pool.acquire(pool.slabBytes() + 1);
    ASSERT_TRUE(big.valid());
    EXPECT_FALSE(big.fromPool());
    EXPECT_GE(big.size(), pool.slabBytes() + 1);
    EXPECT_EQ(addr(big.data()) % BufferPool::kPageBytes, 0u);
    auto st = pool.stats();
    EXPECT_EQ(st.heapFallbacks, 1u);
    EXPECT_EQ(st.freeSlabs, st.slabCount);   // pool untouched
}

TEST(BufferPool, LifoReuseServesTheHotSlab)
{
    BufferPoolConfig cfg;
    cfg.slabCount = 4;
    BufferPool pool(cfg);
    uint8_t *first = nullptr;
    {
        auto l = pool.acquire(128);
        first = l.data();
    }
    // The just-released slab is the next one handed out (cache-warm
    // reuse, the point of a LIFO free list).
    auto l2 = pool.acquire(128);
    EXPECT_EQ(l2.data(), first);
}

TEST(BufferPool, ReleasedSlabIsPoisoned)
{
    BufferPoolConfig cfg;
    cfg.slabCount = 1;
    BufferPool pool(cfg);
    uint8_t *p = nullptr;
    {
        auto l = pool.acquire(256);
        p = l.data();
        std::fill(p, p + 256, uint8_t{0x11});
    }
    // Same slab comes back; its contents must be the poison pattern,
    // not the previous request's bytes.
    auto l2 = pool.acquire(256);
    ASSERT_EQ(l2.data(), p);
    EXPECT_TRUE(std::all_of(p, p + pool.slabBytes(), [](uint8_t b) {
        return b == BufferPool::kPoisonByte;
    }));
}

TEST(BufferPool, PoisoningCanBeDisabled)
{
    BufferPoolConfig cfg;
    cfg.slabCount = 1;
    cfg.poisonOnRelease = false;
    BufferPool pool(cfg);
    uint8_t *p = nullptr;
    {
        auto l = pool.acquire(16);
        p = l.data();
        p[0] = 0x42;
    }
    auto l2 = pool.acquire(16);
    ASSERT_EQ(l2.data(), p);
    EXPECT_EQ(p[0], 0x42);
}

TEST(BufferPool, PageTableResolvesInteriorAndForeignPointers)
{
    BufferPoolConfig cfg;
    cfg.slabCount = 3;
    BufferPool pool(cfg);
    auto l = pool.acquire(64);

    EXPECT_TRUE(pool.owns(l.data()));
    EXPECT_TRUE(pool.owns(l.data() + 1));                   // interior
    EXPECT_TRUE(pool.owns(l.data() + pool.slabBytes() - 1));  // last byte
    uint8_t stack_byte = 0;
    EXPECT_FALSE(pool.owns(&stack_byte));
    EXPECT_FALSE(pool.owns(nullptr));

    auto heap = std::vector<uint8_t>(64);
    EXPECT_FALSE(pool.owns(heap.data()));
}

TEST(BufferPool, StatsBalanceAfterChurn)
{
    BufferPoolConfig cfg;
    cfg.slabCount = 3;
    BufferPool pool(cfg);
    for (int round = 0; round < 10; ++round) {
        std::vector<BufferPool::Lease> held;
        for (int i = 0; i < 5; ++i)   // 3 pool + 2 heap per round
            held.push_back(pool.acquire(1024));
    }
    auto st = pool.stats();
    EXPECT_EQ(st.acquires, 50u);
    EXPECT_EQ(st.releases, 50u);
    EXPECT_EQ(st.poolHits, 30u);
    EXPECT_EQ(st.heapFallbacks, 20u);
    EXPECT_EQ(st.freeSlabs, st.slabCount);
    EXPECT_EQ(st.pinnedBytes, st.slabCount * st.slabBytes);
}

TEST(BufferPool, MoveTransfersOwnershipWithoutDoubleRelease)
{
    BufferPoolConfig cfg;
    cfg.slabCount = 2;
    BufferPool pool(cfg);
    auto a = pool.acquire(32);
    uint8_t *p = a.data();
    BufferPool::Lease b = std::move(a);
    EXPECT_FALSE(a.valid());   // NOLINT(bugprone-use-after-move): moved-from state is specified
    EXPECT_EQ(b.data(), p);
    b.release();
    b.release();   // explicit release is idempotent
    EXPECT_EQ(pool.stats().releases, 1u);
    EXPECT_EQ(pool.stats().freeSlabs, pool.stats().slabCount);
}

TEST(BufferPool, ZeroByteAcquireStillYieldsABuffer)
{
    BufferPool pool;
    auto l = pool.acquire(0);
    ASSERT_TRUE(l.valid());
    EXPECT_TRUE(l.fromPool());
    EXPECT_EQ(l.size(), pool.slabBytes());
}

TEST(BufferPool, ConcurrentChurnKeepsTheFreeListConsistent)
{
    // Smoke-level concurrency (the TSan-labeled stress lives in
    // test_session_stress.cc): hammer acquire/release from several
    // threads, then check the books balance.
    BufferPoolConfig cfg;
    cfg.slabCount = 4;
    cfg.slabBytes = 8 << 10;
    BufferPool pool(cfg);
    const int kThreads = 8, kIters = 200;
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&pool, t] {
            for (int i = 0; i < kIters; ++i) {
                auto l = pool.acquire(1024);
                l.data()[0] = static_cast<uint8_t>(t);
                l.data()[1023] = static_cast<uint8_t>(i);
            }
        });
    }
    for (auto &t : threads)
        t.join();
    auto st = pool.stats();
    EXPECT_EQ(st.acquires, static_cast<uint64_t>(kThreads) * kIters);
    EXPECT_EQ(st.releases, st.acquires);
    EXPECT_EQ(st.poolHits + st.heapFallbacks, st.acquires);
    EXPECT_EQ(st.freeSlabs, st.slabCount);
}

// ---------------------------------------------------------------------------
// Contract violations (death tests).
// ---------------------------------------------------------------------------

TEST(BufferPoolDeathTest, DoubleReleaseAborts)
{
    BufferPool pool;
    auto l = pool.acquire(64);
    uint8_t *p = l.data();
    l.release();
    EXPECT_DEATH(pool.releaseSlab(p), "double release of a pool slab");
}

TEST(BufferPoolDeathTest, InteriorPointerReleaseAborts)
{
    BufferPool pool;
    auto l = pool.acquire(64);
    EXPECT_DEATH(pool.releaseSlab(l.data() + 1),
                 "interior pointer");
}

TEST(BufferPoolDeathTest, ForeignPointerReleaseAborts)
{
    BufferPool pool;
    std::vector<uint8_t> heap(64);
    EXPECT_DEATH(pool.releaseSlab(heap.data()),
                 "pointer the pool does not own");
}

TEST(BufferPoolDeathTest, DestroyingWithOutstandingLeaseAborts)
{
    EXPECT_DEATH(
        {
            auto *pool = new BufferPool();
            auto l = pool->acquire(64);
            delete pool;   // l still outstanding
        },
        "destroyed with leased slabs");
}

} // namespace
