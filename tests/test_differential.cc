/**
 * @file
 * Differential and fuzz tests across independent implementations:
 *
 *  - the one-shot inflater vs the streaming inflater must agree on
 *    every stream (valid or corrupted) — same bytes or both error;
 *  - the accelerator decompress engine vs software inflate on the
 *    same streams;
 *  - bit-flip fuzz over encoder outputs must never produce a crash,
 *    and whenever a decoder accepts a corrupted gzip member the CRC
 *    must catch it at the container level;
 *  - random valid streams from all three encoders (one-shot,
 *    streaming, accelerator) decode identically everywhere.
 */

#include <gtest/gtest.h>

#include "core/device.h"
#include "core/topology.h"
#include "deflate/deflate_encoder.h"
#include "deflate/deflate_stream.h"
#include "deflate/gzip_stream.h"
#include "deflate/inflate_decoder.h"
#include "deflate/inflate_stream.h"
#include "util/prng.h"
#include "workloads/corpus.h"

namespace {

/** Run the streaming inflater over the whole stream in one feed. */
std::pair<bool, std::vector<uint8_t>>
streamInflate(std::span<const uint8_t> stream)
{
    deflate::InflateStream is;
    std::vector<uint8_t> out;
    auto st = is.feed(stream, out);
    return {st == deflate::StreamStatus::Done, std::move(out)};
}

std::vector<uint8_t>
randomInput(util::Xoshiro256 &rng)
{
    size_t n = rng.below(120000);
    switch (rng.below(5)) {
      case 0: return workloads::makeText(n, rng.next());
      case 1: return workloads::makeLog(n, rng.next());
      case 2: return workloads::makeBinary(n, rng.next());
      case 3: return workloads::makeRandom(n, rng.next());
      default: return workloads::makeMixed(n, rng.next());
    }
}

} // namespace

TEST(Differential, OneShotVsStreamingOnValidStreams)
{
    util::Xoshiro256 rng(0xd1ff);
    for (int trial = 0; trial < 30; ++trial) {
        auto input = randomInput(rng);
        deflate::DeflateOptions opts;
        opts.level = static_cast<int>(rng.below(10));
        opts.blockBytes = 4096 + rng.below(1 << 17);
        auto stream = deflate::deflateCompress(input, opts).bytes;

        auto one = deflate::inflateDecompress(stream);
        auto [ok, streamed] = streamInflate(stream);
        ASSERT_TRUE(one.ok()) << trial;
        ASSERT_TRUE(ok) << trial;
        EXPECT_EQ(one.bytes, streamed) << trial;
        EXPECT_EQ(one.bytes, input) << trial;
    }
}

TEST(Differential, DecodersAgreeOnCorruptedStreams)
{
    util::Xoshiro256 rng(0xc0de);
    auto input = workloads::makeMixed(60000, 2);
    auto stream = deflate::deflateCompress(input).bytes;

    int both_error = 0, both_ok_same = 0, disagreements = 0;
    for (int trial = 0; trial < 300; ++trial) {
        auto corrupted = stream;
        // 1-3 random bit flips.
        int flips = 1 + static_cast<int>(rng.below(3));
        for (int f = 0; f < flips; ++f)
            corrupted[rng.below(corrupted.size())] ^=
                static_cast<uint8_t>(1u << rng.below(8));

        auto one = deflate::inflateDecompress(
            corrupted, input.size() * 4);
        auto [ok, streamed] = streamInflate(corrupted);

        // The streaming decoder cannot see "truncated" — it just
        // waits for more input — so compare only decided outcomes:
        // if both decided OK, outputs must match; if one-shot hit a
        // hard format error, the streamed decode must not have
        // produced a *successful complete* different answer.
        if (one.ok() && ok) {
            if (one.bytes == streamed)
                ++both_ok_same;
            else
                ++disagreements;
        } else if (!one.ok() && !ok) {
            ++both_error;
        }
        // Mixed outcomes are possible only via truncation semantics;
        // they are not disagreements.
    }
    EXPECT_EQ(disagreements, 0);
    // Corruption usually surfaces as an error on the one-shot side
    // and NeedMoreInput (undecided) on the streaming side, so only a
    // subset lands in the decided-error bucket on both.
    EXPECT_GE(both_error, 1);
    // Raw DEFLATE has no integrity check: a flipped literal or
    // extra-bits field often still yields a VALID stream with wrong
    // content — both decoders accept it and agree on the wrong bytes.
    // That is the motivation for the container CRC, which the next
    // test shows catching every such case.
    EXPECT_GE(both_ok_same, 1);
}

TEST(Differential, GzipCrcCatchesSilentCorruption)
{
    // Whenever a corrupted gzip member still parses, the CRC check
    // must reject payload damage (flips in the header name field or
    // trailer may legitimately pass/fail differently).
    util::Xoshiro256 rng(0xcafe);
    auto input = workloads::makeText(40000, 3);
    auto member = deflate::gzipWrap(
        deflate::deflateCompress(input).bytes, input);

    int silent_wrong_payload = 0;
    for (int trial = 0; trial < 300; ++trial) {
        auto corrupted = member;
        // Corrupt strictly inside the DEFLATE payload.
        size_t lo = 10, hi = corrupted.size() - 8;
        corrupted[lo + rng.below(hi - lo)] ^=
            static_cast<uint8_t>(1u << rng.below(8));
        auto res = deflate::gzipUnwrap(corrupted);
        if (res.ok && res.inflate.bytes != input)
            ++silent_wrong_payload;
    }
    EXPECT_EQ(silent_wrong_payload, 0);
}

TEST(Differential, ThreeEncodersOneTruth)
{
    util::Xoshiro256 rng(0x3e3e);
    core::NxDevice dev(nx::NxConfig::power9());
    for (int trial = 0; trial < 10; ++trial) {
        auto input = randomInput(rng);

        // Encoder 1: one-shot software.
        auto s1 = deflate::deflateCompress(input).bytes;
        // Encoder 2: streaming software with random chunking.
        deflate::DeflateStream ds;
        std::vector<uint8_t> s2;
        size_t off = 0;
        while (off < input.size()) {
            size_t n = std::min<size_t>(1 + rng.below(30000),
                                        input.size() - off);
            bool last = off + n >= input.size();
            ds.write(std::span<const uint8_t>(input).subspan(off, n),
                     last ? deflate::Flush::Finish
                          : deflate::Flush::None,
                     s2);
            off += n;
        }
        if (input.empty())
            ds.write({}, deflate::Flush::Finish, s2);
        // Encoder 3: accelerator model (raw framing).
        auto s3job = dev.compress(input, nx::Framing::Raw,
                                  core::Mode::DhtSampled);
        ASSERT_TRUE(s3job.ok());

        for (const auto *stream : {&s1, &s2, &s3job.data}) {
            auto one = deflate::inflateDecompress(*stream);
            ASSERT_TRUE(one.ok()) << trial;
            EXPECT_EQ(one.bytes, input) << trial;
            auto [ok, streamed] = streamInflate(*stream);
            ASSERT_TRUE(ok) << trial;
            EXPECT_EQ(streamed, input) << trial;
        }
    }
}

TEST(Differential, AcceleratorDecompressAgreesWithSoftware)
{
    util::Xoshiro256 rng(0xfeed);
    core::NxDevice dev(nx::NxConfig::z15());
    for (int trial = 0; trial < 10; ++trial) {
        auto input = randomInput(rng);
        deflate::DeflateOptions opts;
        opts.level = static_cast<int>(1 + rng.below(9));
        auto raw = deflate::deflateCompress(input, opts).bytes;
        auto member = deflate::gzipWrap(raw, input);

        auto sw = deflate::gzipUnwrap(member);
        auto hw = dev.decompress(member, nx::Framing::Gzip);
        ASSERT_TRUE(sw.ok) << trial;
        ASSERT_TRUE(hw.ok()) << trial;
        EXPECT_EQ(sw.inflate.bytes, hw.data) << trial;
    }
}
