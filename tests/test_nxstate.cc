/**
 * @file
 * Drives nxstate (tools/nxstate) on small in-memory fixture trees:
 * protocol declaration parsing (macro and comment forms, conflicts,
 * malformed specs), the CFG walker's must-violation semantics across
 * branches and loops, ticket lifecycle tracking, lock-order cycle
 * detection, and the shared suppression grammar. The real-tree
 * invocation (which must be clean) runs both here and as the separate
 * `nxstate` ctest.
 */

#include <algorithm>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "nxstate/nxstate.h"

namespace {

using nxstate::Analysis;
using nxstate::analyzeFiles;
using nxstate::Finding;
using nxstate::SourceFile;

/** Canonical stream protocol used by most fixtures. */
const char *kStreamProto =
    "// nxstate: protocol(Stream: open? -> write* -> write[Finish])\n";

std::vector<Finding>
run(const std::string &body, const std::string &extraDecls = {})
{
    std::vector<SourceFile> files;
    files.push_back({"src/fix.cc", kStreamProto + extraDecls + body});
    return analyzeFiles(files).findings;
}

bool
fired(const std::vector<Finding> &fs, std::string_view rule)
{
    return std::any_of(fs.begin(), fs.end(), [&](const Finding &f) {
        return f.rule == rule;
    });
}

std::string
dump(const std::vector<Finding> &fs)
{
    std::string out;
    for (const Finding &f : fs)
        out += nxstate::format(f) + "\n";
    return out;
}

// ---------------------------------------------------------------------------
// protocol declarations
// ---------------------------------------------------------------------------

TEST(NxstateDecl, MacroAndCommentFormsBothRegister)
{
    std::vector<SourceFile> files;
    files.push_back({"src/a.h",
                     "NXSIM_PROTOCOL(S, begin -> end);\n"
                     "// nxstate: protocol(T: go* -> stop)\n"});
    files.push_back({"src/b.cc",
                     "void f() { S s; s.end(); }\n"
                     "void g() { T t; t.stop(); t.go(); }\n"});
    auto fs = analyzeFiles(files).findings;
    EXPECT_TRUE(fired(fs, "protocol-order")) << dump(fs);
    EXPECT_TRUE(fired(fs, "use-after-finish")) << dump(fs);
}

TEST(NxstateDecl, HeaderProtocolGovernsOtherFiles)
{
    std::vector<SourceFile> files;
    files.push_back({"src/s.h", kStreamProto});
    files.push_back({"src/user.cc",
                     "void f() {\n"
                     "    Stream s;\n"
                     "    s.write(buf, Finish);\n"
                     "    s.open();\n"
                     "}\n"});
    auto fs = analyzeFiles(files).findings;
    EXPECT_TRUE(fired(fs, "use-after-finish")) << dump(fs);
    EXPECT_EQ(fs[0].file, "src/user.cc");
}

TEST(NxstateDecl, ConflictingSpecsAreReported)
{
    auto fs = run("", "// nxstate: protocol(Stream: open -> close)\n");
    EXPECT_TRUE(fired(fs, "protocol-decl")) << dump(fs);
}

TEST(NxstateDecl, DuplicateIdenticalSpecIsClean)
{
    auto fs = run("", kStreamProto);
    EXPECT_TRUE(fs.empty()) << dump(fs);
}

TEST(NxstateDecl, MalformedSpecIsReported)
{
    std::vector<SourceFile> files;
    files.push_back({"src/a.h",
                     "// nxstate: protocol(Bad: open ->)\n"
                     "NXSIM_PROTOCOL(AlsoBad, -> write);\n"
                     "NXSIM_TICKET_PROTOCOL(T, bogusrole(x));\n"});
    auto fs = analyzeFiles(files).findings;
    ASSERT_EQ(fs.size(), 3u) << dump(fs);
    for (const Finding &f : fs)
        EXPECT_EQ(f.rule, "protocol-decl");
}

TEST(NxstateDecl, ProtocolExampleInBlockCommentIsIgnored)
{
    // Doc prose (block comments, or line comments not starting with
    // the `nxstate:` tag) must never register protocols.
    auto fs = run("/* e.g. // nxstate: protocol(Stream: z) */\n"
                  "// see also protocol(Stream: y)\n");
    EXPECT_TRUE(fs.empty()) << dump(fs);
}

// ---------------------------------------------------------------------------
// straight-line ordering
// ---------------------------------------------------------------------------

TEST(NxstateOrder, LegalSequenceIsClean)
{
    auto fs = run("void f() {\n"
                  "    Stream s;\n"
                  "    s.open();\n"
                  "    s.write(a);\n"
                  "    s.write(b);\n"
                  "    s.write(c, Finish);\n"
                  "}\n");
    EXPECT_TRUE(fs.empty()) << dump(fs);
}

TEST(NxstateOrder, OptionalAndRepeatedPhasesMaySkip)
{
    // open? and write* are both skippable: finishing immediately is
    // legal, as is finishing without open.
    auto fs = run("void f() { Stream s; s.write(a, Finish); }\n"
                  "void g() { Stream s; s.write(a); s.write(b, Finish); }\n");
    EXPECT_TRUE(fs.empty()) << dump(fs);
}

TEST(NxstateOrder, CallBeforeReachablePhaseFires)
{
    auto fs = run("void f() {\n"
                  "    Stream s;\n"
                  "    s.write(a);\n"
                  "    s.open();\n"
                  "}\n");
    ASSERT_TRUE(fired(fs, "protocol-order")) << dump(fs);
    EXPECT_EQ(fs[0].line, 5);
}

TEST(NxstateOrder, RequiredPhaseIsNamedAsBlocker)
{
    auto fs = run("void f() { Init i; i.finish(); }\n",
                  "// nxstate: protocol(Init: setup -> finish)\n");
    ASSERT_TRUE(fired(fs, "protocol-order")) << dump(fs);
    EXPECT_NE(fs[0].message.find("'setup'"), std::string::npos)
        << fs[0].message;
}

TEST(NxstateOrder, UnconstrainedMethodsAreIgnored)
{
    auto fs = run("void f() {\n"
                  "    Stream s;\n"
                  "    s.size();\n"
                  "    s.write(a, Finish);\n"
                  "    s.size();\n"
                  "}\n");
    EXPECT_TRUE(fs.empty()) << dump(fs);
}

TEST(NxstateOrder, UseAfterFinishFires)
{
    auto fs = run("void f() {\n"
                  "    Stream s;\n"
                  "    s.write(a, Finish);\n"
                  "    s.write(b);\n"
                  "}\n");
    EXPECT_TRUE(fired(fs, "use-after-finish")) << dump(fs);
}

TEST(NxstateOrder, DoubleFinishFires)
{
    auto fs = run("void f() {\n"
                  "    Stream s;\n"
                  "    s.write(a, Finish);\n"
                  "    s.write(b, Finish);\n"
                  "}\n");
    EXPECT_TRUE(fired(fs, "double-finish")) << dump(fs);
}

TEST(NxstateOrder, RepeatablePlusFinalPhaseIsClean)
{
    auto fs = run("void f() { Srv s; s.submit(x); s.stop(); s.stop(); }\n",
                  "// nxstate: protocol(Srv: submit* -> stop+)\n");
    EXPECT_TRUE(fs.empty()) << dump(fs);
}

TEST(NxstateOrder, SubmitAfterStopFires)
{
    auto fs = run("void f() { Srv s; s.stop(); s.submit(x); }\n",
                  "// nxstate: protocol(Srv: submit* -> stop+)\n");
    EXPECT_TRUE(fired(fs, "use-after-finish")) << dump(fs);
}

TEST(NxstateOrder, TwoObjectsAreTrackedIndependently)
{
    auto fs = run("void f() {\n"
                  "    Stream a;\n"
                  "    Stream b;\n"
                  "    a.write(x, Finish);\n"
                  "    b.write(y);\n"
                  "    b.write(z, Finish);\n"
                  "}\n");
    EXPECT_TRUE(fs.empty()) << dump(fs);
}

// ---------------------------------------------------------------------------
// control flow: must-violation semantics
// ---------------------------------------------------------------------------

TEST(NxstateCfg, FinishOnOneBranchOnlyIsClean)
{
    // On the else path the stream is still writable, so the trailing
    // write is not a must-violation.
    auto fs = run("void f(bool c) {\n"
                  "    Stream s;\n"
                  "    if (c) {\n"
                  "        s.write(a, Finish);\n"
                  "        return;\n"
                  "    }\n"
                  "    s.write(b);\n"
                  "    s.write(b, Finish);\n"
                  "}\n");
    EXPECT_TRUE(fs.empty()) << dump(fs);
}

TEST(NxstateCfg, FinishOnBothBranchesThenUseFires)
{
    auto fs = run("void f(bool c) {\n"
                  "    Stream s;\n"
                  "    if (c) s.write(a, Finish);\n"
                  "    else s.write(b, Finish);\n"
                  "    s.write(x);\n"
                  "}\n");
    EXPECT_TRUE(fired(fs, "use-after-finish")) << dump(fs);
}

TEST(NxstateCfg, MaybeFinishedThenUseIsClean)
{
    // if-without-else: the fall-through path never finished.
    auto fs = run("void f(bool c) {\n"
                  "    Stream s;\n"
                  "    if (c) s.write(a, Finish);\n"
                  "    s.write(x);\n"
                  "}\n");
    EXPECT_TRUE(fs.empty()) << dump(fs);
}

TEST(NxstateCfg, WriteInLoopIsClean)
{
    auto fs = run("void f(int n) {\n"
                  "    Stream s;\n"
                  "    for (int i = 0; i < n; ++i)\n"
                  "        s.write(chunk[i]);\n"
                  "    s.write(last, Finish);\n"
                  "}\n");
    EXPECT_TRUE(fs.empty()) << dump(fs);
}

TEST(NxstateCfg, FinishInsideLoopFiresAcrossIterations)
{
    auto fs = run("void f(int n) {\n"
                  "    Stream s;\n"
                  "    for (int i = 0; i < n; ++i)\n"
                  "        s.write(chunk[i], Finish);\n"
                  "}\n");
    EXPECT_TRUE(fired(fs, "double-finish")) << dump(fs);
}

TEST(NxstateCfg, FinishThenBreakInLoopIsClean)
{
    auto fs = run("void f(int n) {\n"
                  "    Stream s;\n"
                  "    while (more()) {\n"
                  "        s.write(a, Finish);\n"
                  "        break;\n"
                  "    }\n"
                  "}\n");
    EXPECT_TRUE(fs.empty()) << dump(fs);
}

TEST(NxstateCfg, CodeAfterReturnIsDead)
{
    auto fs = run("void f() {\n"
                  "    Stream s;\n"
                  "    s.write(a, Finish);\n"
                  "    return;\n"
                  "    s.write(b);\n"
                  "}\n");
    EXPECT_TRUE(fs.empty()) << dump(fs);
}

TEST(NxstateCfg, SwitchCasesDoNotAccumulate)
{
    auto fs = run("void f(int k) {\n"
                  "    Stream s;\n"
                  "    switch (k) {\n"
                  "    case 0: s.write(a); break;\n"
                  "    case 1: s.write(b); break;\n"
                  "    }\n"
                  "    s.write(c, Finish);\n"
                  "}\n");
    EXPECT_TRUE(fs.empty()) << dump(fs);
}

// ---------------------------------------------------------------------------
// tickets
// ---------------------------------------------------------------------------

const char *kTicketDecl =
    "NXSIM_TICKET_PROTOCOL(Srv, issue(submit), claim(wait), poll(poll), "
    "drain(drain), stop(stop));\n";

TEST(NxstateTicket, WaitOnceIsClean)
{
    auto fs = run("void f(Srv &srv) {\n"
                  "    auto r = srv.submit(spec);\n"
                  "    srv.poll(r.ticket);\n"
                  "    srv.wait(r.ticket);\n"
                  "}\n",
                  kTicketDecl);
    EXPECT_TRUE(fs.empty()) << dump(fs);
}

TEST(NxstateTicket, DoubleWaitFires)
{
    auto fs = run("void f(Srv &srv) {\n"
                  "    auto r = srv.submit(spec);\n"
                  "    srv.wait(r.ticket);\n"
                  "    srv.wait(r.ticket);\n"
                  "}\n",
                  kTicketDecl);
    ASSERT_TRUE(fired(fs, "ticket-double-claim")) << dump(fs);
    EXPECT_EQ(fs[0].line, 6);   // second wait (decls occupy lines 1-2)
}

TEST(NxstateTicket, PollAfterDrainFires)
{
    auto fs = run("void f(Srv &srv) {\n"
                  "    auto r = srv.submit(spec);\n"
                  "    srv.drain();\n"
                  "    srv.poll(r.ticket);\n"
                  "}\n",
                  kTicketDecl);
    EXPECT_TRUE(fired(fs, "ticket-double-claim")) << dump(fs);
}

TEST(NxstateTicket, ClaimedBeforeDrainStaysClean)
{
    auto fs = run("void f(Srv &srv) {\n"
                  "    auto r = srv.submit(spec);\n"
                  "    srv.wait(r.ticket);\n"
                  "    srv.drain();\n"
                  "}\n",
                  kTicketDecl);
    EXPECT_TRUE(fs.empty()) << dump(fs);
}

TEST(NxstateTicket, AliasIsTracked)
{
    auto fs = run("void f(Srv &srv) {\n"
                  "    auto t = srv.submit(spec).ticket;\n"
                  "    auto u = t;\n"
                  "    srv.wait(t);\n"
                  "    srv.wait(u);\n"
                  "}\n",
                  kTicketDecl);
    EXPECT_TRUE(fired(fs, "ticket-double-claim")) << dump(fs);
}

TEST(NxstateTicket, TwoTicketsAreIndependent)
{
    auto fs = run("void f(Srv &srv) {\n"
                  "    auto a = srv.submit(s1);\n"
                  "    auto b = srv.submit(s2);\n"
                  "    srv.wait(a.ticket);\n"
                  "    srv.wait(b.ticket);\n"
                  "}\n",
                  kTicketDecl);
    EXPECT_TRUE(fs.empty()) << dump(fs);
}

TEST(NxstateTicket, WaitInBranchThenJoinStaysClean)
{
    // Claimed on only one path: not claimed on every path, so the
    // later wait is not a must-double-claim.
    auto fs = run("void f(Srv &srv, bool c) {\n"
                  "    auto r = srv.submit(spec);\n"
                  "    if (c) srv.wait(r.ticket);\n"
                  "    else srv.wait(r.ticket);\n"
                  "}\n",
                  kTicketDecl);
    EXPECT_TRUE(fs.empty()) << dump(fs);
}

// ---------------------------------------------------------------------------
// lock order
// ---------------------------------------------------------------------------

TEST(NxstateLock, ConsistentOrderIsClean)
{
    auto fs = run("struct T {\n"
                  "    void f() { MutexLock a(mu_); MutexLock b(aux_); }\n"
                  "    void g() { MutexLock a(mu_); MutexLock b(aux_); }\n"
                  "};\n");
    EXPECT_TRUE(fs.empty()) << dump(fs);
}

TEST(NxstateLock, InvertedPairFires)
{
    auto fs = run("struct T {\n"
                  "    void f() { MutexLock a(mu_); MutexLock b(aux_); }\n"
                  "    void g() { MutexLock a(aux_); MutexLock b(mu_); }\n"
                  "};\n");
    ASSERT_TRUE(fired(fs, "lock-cycle")) << dump(fs);
    EXPECT_NE(fs[0].message.find("T::mu_"), std::string::npos)
        << fs[0].message;
}

TEST(NxstateLock, ScopeExitReleasesHeldLocks)
{
    // The braces end lk1's scope, so lk2 is not acquired under it.
    auto fs = run("struct T {\n"
                  "    void f() { { MutexLock lk1(mu_); } MutexLock lk2(aux_); }\n"
                  "    void g() { { MutexLock lk1(aux_); } MutexLock lk2(mu_); }\n"
                  "};\n");
    EXPECT_TRUE(fs.empty()) << dump(fs);
}

TEST(NxstateLock, StdGuardsAndFreeMutexesParticipate)
{
    auto fs = run(
        "void f() { std::lock_guard<std::mutex> a(gMu); "
        "std::unique_lock<std::mutex> b(gAux); }\n"
        "void g() { std::scoped_lock a(gAux); std::lock_guard b(gMu); }\n");
    EXPECT_TRUE(fired(fs, "lock-cycle")) << dump(fs);
}

TEST(NxstateLock, DotAlwaysEmitsGraph)
{
    std::vector<SourceFile> files;
    files.push_back(
        {"src/a.cc",
         "struct T { void f() { MutexLock a(mu_); MutexLock b(aux_); } };\n"});
    Analysis an = analyzeFiles(files);
    EXPECT_NE(an.lockDot.find("digraph"), std::string::npos);
    EXPECT_NE(an.lockDot.find("\"T::mu_\" -> \"T::aux_\""),
              std::string::npos)
        << an.lockDot;
}

// ---------------------------------------------------------------------------
// suppressions
// ---------------------------------------------------------------------------

TEST(NxstateAllow, JustifiedAllowSuppresses)
{
    auto fs = run("void f() {\n"
                  "    Stream s;\n"
                  "    s.write(a, Finish);\n"
                  "    // nxstate: allow(double-finish): test fixture\n"
                  "    s.write(b, Finish);\n"
                  "}\n");
    EXPECT_TRUE(fs.empty()) << dump(fs);
}

TEST(NxstateAllow, StaleAllowFires)
{
    auto fs = run("void f() {\n"
                  "    Stream s;\n"
                  "    // nxstate: allow(double-finish): nothing here\n"
                  "    s.write(a);\n"
                  "}\n");
    EXPECT_TRUE(fired(fs, "stale-allow")) << dump(fs);
}

TEST(NxstateAllow, BareAllowFires)
{
    auto fs = run("// nxstate: allow(double-finish)\n");
    EXPECT_TRUE(fired(fs, "bare-allow")) << dump(fs);
}

// ---------------------------------------------------------------------------
// the real tree
// ---------------------------------------------------------------------------

TEST(NxstateRealTree, RepoIsClean)
{
    Analysis an = nxstate::analyzeTree(NXSIM_SOURCE_DIR);
    EXPECT_TRUE(an.findings.empty()) << dump(an.findings);
    // The real lock graph knows the JobServer mutex.
    EXPECT_NE(an.lockDot.find("JobServer::mu_"), std::string::npos)
        << an.lockDot;
}

} // namespace
