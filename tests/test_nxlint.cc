/**
 * @file
 * Drives nxlint (tools/nxlint) on small in-memory fixtures: one
 * positive (rule fires) and one negative (clean) case per rule, plus
 * the suppression machinery and the lexer's comment/string blindness.
 * The real-tree invocation is the separate `nxlint` ctest.
 */

#include <algorithm>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "nxlint/nxlint.h"

namespace {

using nxlint::Finding;
using nxlint::lintFile;

std::vector<std::string>
rulesOf(const std::vector<Finding> &fs)
{
    std::vector<std::string> out;
    for (const Finding &f : fs)
        out.push_back(f.rule);
    return out;
}

bool
fired(const std::vector<Finding> &fs, std::string_view rule)
{
    return std::any_of(fs.begin(), fs.end(), [&](const Finding &f) {
        return f.rule == rule;
    });
}

// ---------------------------------------------------------------------------
// include-guard
// ---------------------------------------------------------------------------

TEST(NxlintIncludeGuard, WrongGuardNameFires)
{
    auto fs = lintFile("src/nx/crb.h",
                       "#ifndef WRONG_GUARD\n#define WRONG_GUARD\n"
                       "#endif\n");
    ASSERT_TRUE(fired(fs, "include-guard"));
    EXPECT_NE(fs[0].message.find("NXSIM_NX_CRB_H"), std::string::npos);
}

TEST(NxlintIncludeGuard, MissingGuardFires)
{
    auto fs = lintFile("src/nx/crb.h", "int x;\n");
    EXPECT_TRUE(fired(fs, "include-guard"));
}

TEST(NxlintIncludeGuard, MismatchedDefineFires)
{
    auto fs = lintFile("src/nx/crb.h",
                       "#ifndef NXSIM_NX_CRB_H\n#define OTHER\n#endif\n");
    EXPECT_TRUE(fired(fs, "include-guard"));
}

TEST(NxlintIncludeGuard, CorrectGuardIsClean)
{
    auto fs = lintFile("src/nx/crb.h",
                       "// doc comment first is fine\n"
                       "#ifndef NXSIM_NX_CRB_H\n"
                       "#define NXSIM_NX_CRB_H\n"
                       "int x;\n"
                       "#endif\n");
    EXPECT_FALSE(fired(fs, "include-guard")) << nxlint::format(fs[0]);
}

TEST(NxlintIncludeGuard, DoesNotApplyToSourceFiles)
{
    EXPECT_FALSE(fired(lintFile("src/nx/crb.cc", "int x;\n"),
                       "include-guard"));
}

// ---------------------------------------------------------------------------
// using-namespace-header
// ---------------------------------------------------------------------------

TEST(NxlintUsingNamespace, FiresInHeader)
{
    auto fs = lintFile("src/nx/a.h",
                       "#ifndef NXSIM_NX_A_H\n#define NXSIM_NX_A_H\n"
                       "using namespace std;\n#endif\n");
    EXPECT_TRUE(fired(fs, "using-namespace-header"));
}

TEST(NxlintUsingNamespace, AllowedInSourceFiles)
{
    EXPECT_FALSE(fired(lintFile("src/nx/a.cc", "using namespace std;\n"),
                       "using-namespace-header"));
}

TEST(NxlintUsingNamespace, UsingDeclarationIsClean)
{
    auto fs = lintFile("src/nx/a.h",
                       "#ifndef NXSIM_NX_A_H\n#define NXSIM_NX_A_H\n"
                       "using std::vector;\n#endif\n");
    EXPECT_FALSE(fired(fs, "using-namespace-header"));
}

// ---------------------------------------------------------------------------
// banned-call / banned-include
// ---------------------------------------------------------------------------

TEST(NxlintBannedCall, AssertFiresInLibraryCode)
{
    auto fs = lintFile("src/deflate/x.cc", "void f() { assert(ok()); }\n");
    ASSERT_TRUE(fired(fs, "banned-call"));
    EXPECT_NE(fs[0].message.find("NXSIM_ASSERT"), std::string::npos);
}

TEST(NxlintBannedCall, SprintfAndAtoiFire)
{
    auto fs = lintFile("src/core/x.cc",
                       "void f(char *b) { sprintf(b, \"x\"); "
                       "int v = atoi(b); (void)v; }\n");
    auto rs = rulesOf(fs);
    EXPECT_EQ(std::count(rs.begin(), rs.end(), std::string("banned-call")),
              2);
}

TEST(NxlintBannedCall, MemberNamedAssertIsClean)
{
    auto fs = lintFile("src/nx/x.cc",
                       "void f(T &t) { t.assert(1); t->abort(2); }\n");
    EXPECT_FALSE(fired(fs, "banned-call"));
}

TEST(NxlintBannedCall, InsideStringOrCommentIsClean)
{
    auto fs = lintFile("src/nx/x.cc",
                       "// abort(x) in prose\n"
                       "const char *s = \"assert(true)\";\n");
    EXPECT_FALSE(fired(fs, "banned-call"));
}

TEST(NxlintBannedCall, ToolsAndFuzzAreOutOfScope)
{
    EXPECT_FALSE(fired(lintFile("fuzz/harness.cc",
                                "void f() { abort(); }\n"),
                       "banned-call"));
}

TEST(NxlintBannedInclude, CassertFires)
{
    auto fs = lintFile("src/nx/x.cc", "#include <cassert>\nint x;\n");
    EXPECT_TRUE(fired(fs, "banned-include"));
}

TEST(NxlintBannedInclude, ContractsHeaderIsClean)
{
    auto fs = lintFile("src/nx/x.cc",
                       "#include \"util/contracts.h\"\nint x;\n");
    EXPECT_FALSE(fired(fs, "banned-include"));
}

// ---------------------------------------------------------------------------
// raw-memcpy
// ---------------------------------------------------------------------------

TEST(NxlintRawMemcpy, RuntimeSizeFires)
{
    auto fs = lintFile("src/nx/x.cc",
                       "void f(void *d, void *s, size_t n) "
                       "{ std::memcpy(d, s, n); }\n");
    ASSERT_TRUE(fired(fs, "raw-memcpy"));
    EXPECT_NE(fs[0].message.find("copyBytes"), std::string::npos);
}

TEST(NxlintRawMemcpy, LiteralAndSizeofSizesAreClean)
{
    auto fs = lintFile("src/nx/x.cc",
                       "void f(void *d, void *s) {\n"
                       "  std::memcpy(d, s, 8);\n"
                       "  std::memcpy(d, s, sizeof(uint64_t));\n"
                       "}\n");
    EXPECT_FALSE(fired(fs, "raw-memcpy"));
}

TEST(NxlintRawMemcpy, UtilIsWhitelisted)
{
    auto fs = lintFile("src/util/bitstream.cc",
                       "void f(void *d, void *s, size_t n) "
                       "{ std::memcpy(d, s, n); }\n");
    EXPECT_FALSE(fired(fs, "raw-memcpy"));
}

// ---------------------------------------------------------------------------
// narrow-cast
// ---------------------------------------------------------------------------

TEST(NxlintNarrowCast, NarrowTargetsFire)
{
    auto fs = lintFile("src/deflate/x.cc",
                       "uint8_t f(size_t n) "
                       "{ return static_cast<uint8_t>(n); }\n");
    ASSERT_TRUE(fired(fs, "narrow-cast"));
    EXPECT_NE(fs[0].message.find("checked_cast"), std::string::npos);
}

TEST(NxlintNarrowCast, QualifiedAndMultiwordTypesFire)
{
    auto fs = lintFile("src/deflate/x.cc",
                       "void f(long v) {\n"
                       "  auto a = static_cast<std::uint16_t>(v);\n"
                       "  auto b = static_cast<unsigned int>(v);\n"
                       "  (void)a; (void)b;\n"
                       "}\n");
    auto rs = rulesOf(fs);
    EXPECT_EQ(std::count(rs.begin(), rs.end(), std::string("narrow-cast")),
              2);
}

TEST(NxlintNarrowCast, WideAndPointerCastsAreClean)
{
    auto fs = lintFile("src/deflate/x.cc",
                       "void f(int v, void *p) {\n"
                       "  auto a = static_cast<uint64_t>(v);\n"
                       "  auto b = static_cast<size_t>(v);\n"
                       "  auto c = static_cast<uint8_t *>(p);\n"
                       "  auto d = static_cast<double>(v);\n"
                       "  (void)a; (void)b; (void)c; (void)d;\n"
                       "}\n");
    EXPECT_FALSE(fired(fs, "narrow-cast"));
}

TEST(NxlintNarrowCast, CheckedCastHelpersAreClean)
{
    auto fs = lintFile("src/deflate/x.cc",
                       "uint8_t f(size_t n) "
                       "{ return nx::checked_cast<uint8_t>(n); }\n");
    EXPECT_FALSE(fired(fs, "narrow-cast"));
}

// ---------------------------------------------------------------------------
// nodiscard-status
// ---------------------------------------------------------------------------

TEST(NxlintNodiscard, StatusReturnWithoutAttributeFires)
{
    auto fs = lintFile("src/nx/a.h",
                       "#ifndef NXSIM_NX_A_H\n#define NXSIM_NX_A_H\n"
                       "CondCode validate(const Crb &c);\n"
                       "JobResult run();\n"
                       "EngineStatus poll();\n"
                       "#endif\n");
    auto rs = rulesOf(fs);
    EXPECT_EQ(std::count(rs.begin(), rs.end(),
                         std::string("nodiscard-status")),
              3);
}

TEST(NxlintNodiscard, AttributedDeclarationsAreClean)
{
    auto fs = lintFile("src/nx/a.h",
                       "#ifndef NXSIM_NX_A_H\n#define NXSIM_NX_A_H\n"
                       "[[nodiscard]] CondCode validate(const Crb &c);\n"
                       "[[nodiscard]] inline JobResult run();\n"
                       "#endif\n");
    EXPECT_FALSE(fired(fs, "nodiscard-status"));
}

TEST(NxlintNodiscard, ParametersAndSourceFilesAreClean)
{
    auto header = lintFile("src/nx/a.h",
                           "#ifndef NXSIM_NX_A_H\n#define NXSIM_NX_A_H\n"
                           "const char *toString(CondCode cc);\n"
                           "void log(CondCode cc, int n);\n"
                           "#endif\n");
    EXPECT_FALSE(fired(header, "nodiscard-status"));
    auto source = lintFile("src/nx/a.cc", "CondCode validate() {}\n");
    EXPECT_FALSE(fired(source, "nodiscard-status"));
}

// ---------------------------------------------------------------------------
// todo-tag
// ---------------------------------------------------------------------------

TEST(NxlintTodoTag, UntaggedTodoAndFixmeFire)
{
    auto fs = lintFile("src/nx/x.cc",
                       "// TODO: make this faster\n"
                       "int a;\n"
                       "/* FIXME handle z15 */\n"
                       "int b;\n");
    auto rs = rulesOf(fs);
    EXPECT_EQ(std::count(rs.begin(), rs.end(), std::string("todo-tag")),
              2);
    EXPECT_EQ(fs[0].line, 1);
    EXPECT_EQ(fs[1].line, 3);
}

TEST(NxlintTodoTag, TaggedTodoIsClean)
{
    auto fs = lintFile("src/nx/x.cc",
                       "// TODO(#42): make this faster\n"
                       "// FIXME(#7): off-by-one near EOF\n"
                       "int a;\n");
    EXPECT_FALSE(fired(fs, "todo-tag"));
}

TEST(NxlintTodoTag, ProseContainingTodoWordIsClean)
{
    auto fs = lintFile("src/nx/x.cc", "// TODOs are tracked upstream\n");
    EXPECT_FALSE(fired(fs, "todo-tag"));
}

// ---------------------------------------------------------------------------
// raw-thread
// ---------------------------------------------------------------------------

TEST(NxlintRawThread, StdThreadFiresInLibraryCode)
{
    auto fs = lintFile("src/nx/x.cc",
                       "void f() { std::thread t([] {}); t.join(); }\n");
    ASSERT_TRUE(fired(fs, "raw-thread"));
    EXPECT_NE(fs[0].message.find("JobServer"), std::string::npos);
}

TEST(NxlintRawThread, JthreadAndAsyncFire)
{
    auto fs = lintFile("src/deflate/x.cc",
                       "void f() {\n"
                       "  std::jthread t([] {});\n"
                       "  auto fut = std::async([] { return 1; });\n"
                       "  (void)fut;\n"
                       "}\n");
    auto rs = rulesOf(fs);
    EXPECT_EQ(std::count(rs.begin(), rs.end(), std::string("raw-thread")),
              2);
}

TEST(NxlintRawThread, DetachFiresEvenInWhitelistedFiles)
{
    auto fs = lintFile("src/core/job_server.cc",
                       "void f(std::thread &t) { t.detach(); }\n");
    ASSERT_TRUE(fired(fs, "raw-thread"));
    EXPECT_NE(fs[0].message.find("detach"), std::string::npos);

    auto arrow = lintFile("src/nx/x.cc",
                          "void f(std::thread *t) { t->detach(); }\n");
    EXPECT_TRUE(fired(arrow, "raw-thread"));
}

TEST(NxlintRawThread, JobServerAndUtilAreWhitelisted)
{
    const char *body = "void f() { std::thread t([] {}); t.join(); }\n";
    EXPECT_FALSE(fired(lintFile("src/core/job_server.cc", body),
                       "raw-thread"));
    EXPECT_FALSE(fired(lintFile("src/util/pool.cc", body), "raw-thread"));
}

TEST(NxlintRawThread, LoadGenClientThreadsAreWhitelisted)
{
    // The load generator's client threads are the requesters the
    // JobServer serves, so they cannot be routed through it.
    const char *body = "void f() { std::thread t([] {}); t.join(); }\n";
    EXPECT_FALSE(fired(lintFile("src/load/load_gen.cc", body),
                       "raw-thread"));
    // Only the .cc is whitelisted, and only that one file in load/.
    EXPECT_TRUE(fired(lintFile("src/load/load_gen.h", body),
                      "raw-thread"));
    EXPECT_TRUE(fired(lintFile("src/load/arrival.cc", body),
                      "raw-thread"));
    // detach() stays banned even inside the whitelisted file.
    EXPECT_TRUE(fired(lintFile("src/load/load_gen.cc",
                               "void f() { std::thread t([] {}); "
                               "t.detach(); }\n"),
                      "raw-thread"));
}

TEST(NxlintRawThread, TestsToolsAndFreeDetachAreClean)
{
    // Outside src/ the rule does not apply: tests and benches spawn
    // producer threads directly by design.
    const char *body = "void f() { std::thread t([] {}); t.detach(); }\n";
    EXPECT_FALSE(fired(lintFile("tests/x.cc", body), "raw-thread"));
    EXPECT_FALSE(fired(lintFile("bench/x.cc", body), "raw-thread"));
    // A free function named detach (no member access) is a different
    // thing entirely.
    auto fs = lintFile("src/nx/x.cc", "void g() { detach(); }\n");
    EXPECT_FALSE(fired(fs, "raw-thread"));
    // std::mutex and condition_variable stay allowed everywhere.
    auto sync = lintFile("src/nx/x.cc",
                         "std::mutex m;\nstd::condition_variable cv;\n");
    EXPECT_FALSE(fired(sync, "raw-thread"));
}

// ---------------------------------------------------------------------------
// mutex-annotation
// ---------------------------------------------------------------------------

TEST(NxlintMutexAnnotation, UnannotatedStdMutexMemberFires)
{
    auto fs = lintFile("src/nx/pool.h",
                       "class Pool {\n"
                       "  private:\n"
                       "    std::mutex mu_;\n"
                       "    int count_ = 0;\n"
                       "};\n");
    ASSERT_TRUE(fired(fs, "mutex-annotation"));
    for (const Finding &f : fs) {
        if (f.rule == "mutex-annotation") {
            EXPECT_NE(f.message.find("NXSIM_GUARDED_BY(mu_)"),
                      std::string::npos);
        }
    }
}

TEST(NxlintMutexAnnotation, GuardedSiblingIsClean)
{
    auto fs = lintFile("src/nx/pool.h",
                       "class Pool {\n"
                       "  private:\n"
                       "    mutable std::mutex mu_;\n"
                       "    int count_ NXSIM_GUARDED_BY(mu_) = 0;\n"
                       "};\n");
    EXPECT_FALSE(fired(fs, "mutex-annotation"));
}

TEST(NxlintMutexAnnotation, NxMutexMemberFires)
{
    auto fs = lintFile("src/core/pool.h",
                       "class Pool {\n"
                       "    mutable nx::Mutex mu_;\n"
                       "};\n");
    EXPECT_TRUE(fired(fs, "mutex-annotation"));
}

TEST(NxlintMutexAnnotation, GuardMustNameTheRightMutex)
{
    // A GUARDED_BY naming some other mutex does not cover mu_.
    auto fs = lintFile("src/nx/pool.h",
                       "class Pool {\n"
                       "    std::mutex mu_;\n"
                       "    std::mutex other_;\n"
                       "    int n_ NXSIM_GUARDED_BY(other_) = 0;\n"
                       "};\n");
    EXPECT_TRUE(fired(fs, "mutex-annotation"));
}

TEST(NxlintMutexAnnotation, ReferenceMemberIsExempt)
{
    // A Mutex& borrows a capability owned elsewhere; there is nothing
    // in this class for it to guard.
    auto fs = lintFile("src/util/lock.h",
                       "class Borrower {\n"
                       "    nx::Mutex &mu_;\n"
                       "};\n");
    EXPECT_FALSE(fired(fs, "mutex-annotation"));
}

TEST(NxlintMutexAnnotation, SourceFilesAndNonSrcAreExempt)
{
    const char *body = "class P { std::mutex mu_; };\n";
    EXPECT_FALSE(fired(lintFile("src/nx/pool.cc", body),
                       "mutex-annotation"));
    EXPECT_FALSE(fired(lintFile("tests/helper.h", body),
                       "mutex-annotation"));
    EXPECT_FALSE(fired(lintFile("bench/helper.h", body),
                       "mutex-annotation"));
}

TEST(NxlintMutexAnnotation, JustifiedAllowSuppresses)
{
    auto fs = lintFile(
        "src/util/wrap.h",
        "class Wrap {\n"
        "    // nxlint: allow(mutex-annotation): wrapper owns the raw "
        "mutex\n"
        "    std::mutex mu_;\n"
        "};\n");
    EXPECT_FALSE(fired(fs, "mutex-annotation"));
}

// ---------------------------------------------------------------------------
// suppressions
// ---------------------------------------------------------------------------

TEST(NxlintSuppression, JustifiedAllowSuppressesSameLine)
{
    auto fs = lintFile("src/deflate/x.cc",
                       "uint8_t f(size_t n) { return "
                       "static_cast<uint8_t>(n); } "
                       "// nxlint: allow(narrow-cast): measured hot path\n");
    EXPECT_FALSE(fired(fs, "narrow-cast"));
}

TEST(NxlintSuppression, JustifiedAllowSuppressesNextLine)
{
    auto fs = lintFile("src/deflate/x.cc",
                       "int before;\n"
                       "// nxlint: allow(narrow-cast): lookup table index\n"
                       "uint8_t f(size_t n) "
                       "{ return static_cast<uint8_t>(n); }\n");
    EXPECT_FALSE(fired(fs, "narrow-cast"));
}

TEST(NxlintSuppression, AllowDoesNotLeakPastItsLine)
{
    // The leading declaration keeps the allow comment out of the
    // file-scope region, so it only covers the line below it.
    auto fs = lintFile("src/deflate/x.cc",
                       "int before;\n"
                       "// nxlint: allow(narrow-cast): first cast only\n"
                       "uint8_t f(size_t n) "
                       "{ return static_cast<uint8_t>(n); }\n"
                       "uint8_t g(size_t n) "
                       "{ return static_cast<uint8_t>(n); }\n");
    ASSERT_TRUE(fired(fs, "narrow-cast"));
    EXPECT_EQ(fs[0].line, 4);
}

TEST(NxlintSuppression, BareAllowWithoutReasonIsAFinding)
{
    auto fs = lintFile("src/deflate/x.cc",
                       "uint8_t f(size_t n) { return "
                       "static_cast<uint8_t>(n); } "
                       "// nxlint: allow(narrow-cast)\n");
    // The suppression is rejected, so BOTH rules fire.
    EXPECT_TRUE(fired(fs, "bare-allow"));
    EXPECT_TRUE(fired(fs, "narrow-cast"));
}

TEST(NxlintSuppression, UnknownRuleInAllowIsAFinding)
{
    auto fs = lintFile("src/nx/x.cc",
                       "int a; // nxlint: allow(no-such-rule): why\n");
    ASSERT_TRUE(fired(fs, "bare-allow"));
    EXPECT_NE(fs[0].message.find("no-such-rule"), std::string::npos);
}

TEST(NxlintSuppression, FileScopeAllowBeforeAnyCode)
{
    auto fs = lintFile("src/deflate/x.cc",
                       "// nxlint: allow(narrow-cast): generated table\n"
                       "#include \"a.h\"\n"
                       "uint8_t f(size_t n) "
                       "{ return static_cast<uint8_t>(n); }\n"
                       "uint8_t g(size_t n) "
                       "{ return static_cast<uint8_t>(n); }\n");
    EXPECT_FALSE(fired(fs, "narrow-cast"));
}

TEST(NxlintSuppression, UnusedAllowIsStale)
{
    auto fs = lintFile("src/deflate/x.cc",
                       "int before;\n"
                       "// nxlint: allow(narrow-cast): was needed before "
                       "the helper landed\n"
                       "uint8_t f(uint8_t n) { return n; }\n");
    ASSERT_TRUE(fired(fs, "stale-allow"));
    EXPECT_EQ(fs[0].line, 2);
    EXPECT_NE(fs[0].message.find("narrow-cast"), std::string::npos);
}

TEST(NxlintSuppression, UsedAllowIsNotStale)
{
    auto fs = lintFile("src/deflate/x.cc",
                       "int before;\n"
                       "// nxlint: allow(narrow-cast): lookup table index\n"
                       "uint8_t f(size_t n) "
                       "{ return static_cast<uint8_t>(n); }\n");
    EXPECT_FALSE(fired(fs, "stale-allow"));
}

TEST(NxlintSuppression, StaleAllowItselfCanBeExcused)
{
    // A suppression kept for a platform-conditional construct can be
    // excused with allow(stale-allow) leading the comment block.
    auto fs = lintFile("src/deflate/x.cc",
                       "int before;\n"
                       "// nxlint: allow(stale-allow): cast is ifdef'd "
                       "per target\n"
                       "// nxlint: allow(narrow-cast): only on z15 builds\n"
                       "uint8_t f(uint8_t n) { return n; }\n");
    EXPECT_FALSE(fired(fs, "stale-allow"));
}

TEST(NxlintSuppression, MultiLineJustificationCoversNextCodeLine)
{
    // The justification continues over a second `//` line; the cast
    // after the whole comment block is still covered.
    auto fs = lintFile("src/deflate/x.cc",
                       "int before;\n"
                       "// nxlint: allow(narrow-cast): the table index is\n"
                       "// masked to 8 bits two lines up\n"
                       "uint8_t f(size_t n) "
                       "{ return static_cast<uint8_t>(n); }\n");
    EXPECT_FALSE(fired(fs, "narrow-cast"));
    EXPECT_FALSE(fired(fs, "stale-allow"));
}

TEST(NxlintSuppression, MentionInProseDoesNotSuppress)
{
    auto fs = lintFile("src/deflate/x.cc",
                       "/* docs: write `// nxlint: allow(narrow-cast): "
                       "why` to suppress */\n"
                       "uint8_t f(size_t n) "
                       "{ return static_cast<uint8_t>(n); }\n");
    EXPECT_TRUE(fired(fs, "narrow-cast"));
}

// ---------------------------------------------------------------------------
// plumbing
// ---------------------------------------------------------------------------

TEST(NxlintFormat, MatchesFileLineRuleMessage)
{
    Finding f{"src/nx/crb.h", 12, "narrow-cast", "msg"};
    EXPECT_EQ(nxlint::format(f), "src/nx/crb.h:12: narrow-cast: msg");
}

TEST(NxlintRules, TableIsPopulatedAndUnique)
{
    const auto &rs = nxlint::rules();
    EXPECT_GE(rs.size(), 13u);
    for (size_t i = 0; i < rs.size(); ++i)
        for (size_t j = i + 1; j < rs.size(); ++j)
            EXPECT_NE(rs[i].id, rs[j].id);
}

TEST(NxlintScratchFile, UnrecognizedPathGetsStrictestScope)
{
    auto fs = lintFile("scratch.cc",
                       "void f() { assert(1); }\n"
                       "uint8_t g(size_t n) "
                       "{ return static_cast<uint8_t>(n); }\n");
    EXPECT_TRUE(fired(fs, "banned-call"));
    EXPECT_TRUE(fired(fs, "narrow-cast"));
}

TEST(NxlintFindings, AreSortedByLine)
{
    auto fs = lintFile("src/nx/x.cc",
                       "void f() { abort(); }\n"
                       "// TODO: later\n"
                       "uint8_t g(size_t n) "
                       "{ return static_cast<uint8_t>(n); }\n");
    ASSERT_EQ(fs.size(), 3u);
    EXPECT_LE(fs[0].line, fs[1].line);
    EXPECT_LE(fs[1].line, fs[2].line);
}

} // namespace
