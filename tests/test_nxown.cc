/**
 * @file
 * Drives nxown (tools/nxown) on small in-memory fixture trees:
 * annotation harvesting and classification (RAII destructors, by-arg
 * and drain-all releases, malformed annotations), the CFG walker's
 * exists-leak / must-double-release semantics, transfer forms
 * (std::move, return, NXSIM_TRANSFERS, unknown callees), derived
 * cross-function summaries over the call graph, and the shared
 * suppression grammar. The real-tree invocation (which must be clean)
 * runs both here and as the separate `nxown` ctest; the inversion
 * differential — dropping the pool_buffer release annotations must
 * surface the real acquire sites — is the evidence that the clean run
 * is earned rather than vacuous.
 */

#include <algorithm>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "nxown/nxown.h"

namespace {

using nxown::analyzeFiles;
using nxown::analyzeTree;
using nxown::Finding;
using nxown::Options;
using nxown::SourceFile;

/** Canonical vocabulary used by most fixtures: a non-RAII int handle
 * acquired from Pool, released by-arg via put() or wholesale via
 * drainAll(). */
const char *kPoolDecl =
    "struct Pool {\n"
    "    int acquire(int n) NXSIM_ACQUIRES(buf);\n"
    "    void put(int h) NXSIM_RELEASES(buf);\n"
    "    void drainAll() NXSIM_RELEASES(buf);\n"
    "};\n";

std::vector<Finding>
run(const std::string &body, const std::string &decls = kPoolDecl)
{
    std::vector<SourceFile> files;
    files.push_back({"src/fix.cc", decls + body});
    return analyzeFiles(files);
}

bool
fired(const std::vector<Finding> &fs, std::string_view rule)
{
    return std::any_of(fs.begin(), fs.end(), [&](const Finding &f) {
        return f.rule == rule;
    });
}

std::string
dump(const std::vector<Finding> &fs)
{
    std::string out;
    for (const Finding &f : fs)
        out += nxown::format(f) + "\n";
    return out;
}

// ---------------------------------------------------------------------------
// leak detection (exists-path semantics)
// ---------------------------------------------------------------------------

TEST(NxownLeak, EarlyReturnPathLeaks)
{
    // kPoolDecl is 5 lines; the acquire binding lands on line 7.
    auto fs = run("int f(Pool &p, bool c) {\n"
                  "    auto h = p.acquire(4);\n"
                  "    if (c)\n"
                  "        return 0;\n"
                  "    p.put(h);\n"
                  "    return 1;\n"
                  "}\n");
    ASSERT_EQ(fs.size(), 1u) << dump(fs);
    EXPECT_EQ(fs[0].rule, "own-leak");
    EXPECT_EQ(fs[0].line, 7);
}

TEST(NxownLeak, ReleasedOnEveryPathIsClean)
{
    auto fs = run("int f(Pool &p, bool c) {\n"
                  "    auto h = p.acquire(4);\n"
                  "    if (c) {\n"
                  "        p.put(h);\n"
                  "        return 0;\n"
                  "    }\n"
                  "    p.put(h);\n"
                  "    return 1;\n"
                  "}\n");
    EXPECT_TRUE(fs.empty()) << dump(fs);
}

TEST(NxownLeak, FallingOffTheEndLeaks)
{
    auto fs = run("void f(Pool &p) {\n"
                  "    auto h = p.acquire(4);\n"
                  "}\n");
    ASSERT_EQ(fs.size(), 1u) << dump(fs);
    EXPECT_EQ(fs[0].rule, "own-leak");
}

TEST(NxownLeak, RaiiHolderExitsClean)
{
    // A RELEASES destructor marks Lease as RAII: its handles exit
    // clean without an explicit release.
    auto fs = run("int f(Pool &p) {\n"
                  "    auto l = p.acquire(8);\n"
                  "    return 0;\n"
                  "}\n",
                  "struct Lease {\n"
                  "    ~Lease() NXSIM_RELEASES(buf);\n"
                  "};\n"
                  "struct Pool {\n"
                  "    Lease acquire(int n) NXSIM_ACQUIRES(buf);\n"
                  "};\n");
    EXPECT_TRUE(fs.empty()) << dump(fs);
}

TEST(NxownLeak, ConditionMentioningHandleGuardsExits)
{
    // `if (!r.accepted()) return -1;` — the analyzer cannot model the
    // predicate, so once the code branches on the handle its exits
    // stop counting as leaks (the submitWithRetry not-accepted idiom).
    auto fs = run("int f(Pool &p) {\n"
                  "    auto r = p.acquire(1);\n"
                  "    if (!r.accepted())\n"
                  "        return -1;\n"
                  "    p.put(r);\n"
                  "    return 0;\n"
                  "}\n");
    EXPECT_TRUE(fs.empty()) << dump(fs);
}

TEST(NxownLeak, ContractMacroGuardsLikeACondition)
{
    auto fs = run("int f(Pool &p) {\n"
                  "    auto r = p.acquire(1);\n"
                  "    NXSIM_EXPECT(r.accepted(), \"submit accepted\");\n"
                  "    return 0;\n"
                  "}\n");
    EXPECT_TRUE(fs.empty()) << dump(fs);
}

TEST(NxownLeak, DrainAllReleasesEveryLiveHandle)
{
    auto fs = run("int f(Pool &p) {\n"
                  "    auto a = p.acquire(1);\n"
                  "    auto b = p.acquire(2);\n"
                  "    p.drainAll();\n"
                  "    return 0;\n"
                  "}\n");
    EXPECT_TRUE(fs.empty()) << dump(fs);
}

TEST(NxownLeak, ReceiverReleaseOnHolderMethod)
{
    // close() is a method of the holder type (Lease = what acquire
    // returns), so `l.close()` releases the receiver's handle.
    const char *decls = "struct Lease {\n"
                        "    void close() NXSIM_RELEASES(buf);\n"
                        "};\n"
                        "struct Pool {\n"
                        "    Lease acquire(int n) NXSIM_ACQUIRES(buf);\n"
                        "};\n";
    auto clean = run("int f(Pool &p) {\n"
                     "    auto l = p.acquire(4);\n"
                     "    l.close();\n"
                     "    return 0;\n"
                     "}\n",
                     decls);
    EXPECT_TRUE(clean.empty()) << dump(clean);
    auto leak = run("int f(Pool &p) {\n"
                    "    auto l = p.acquire(4);\n"
                    "    return 0;\n"
                    "}\n",
                    decls);
    EXPECT_TRUE(fired(leak, "own-leak")) << dump(leak);
}

// ---------------------------------------------------------------------------
// double release / release after transfer (must semantics)
// ---------------------------------------------------------------------------

TEST(NxownRelease, DoubleReleaseIsReported)
{
    auto fs = run("int f(Pool &p) {\n"
                  "    auto h = p.acquire(4);\n"
                  "    p.put(h);\n"
                  "    p.put(h);\n"
                  "    return 0;\n"
                  "}\n");
    ASSERT_EQ(fs.size(), 1u) << dump(fs);
    EXPECT_EQ(fs[0].rule, "own-double-release");
    EXPECT_EQ(fs[0].line, 9); // reported at the second put()
}

TEST(NxownRelease, ReleaseOnOneBranchOnlyIsNotDouble)
{
    // Must-semantics: the second put() sees {Held, Released}, not
    // {Released}, so branchy code never yields maybe-findings.
    auto fs = run("int f(Pool &p, bool c) {\n"
                  "    auto h = p.acquire(4);\n"
                  "    if (c)\n"
                  "        p.put(h);\n"
                  "    p.put(h);\n"
                  "    return 0;\n"
                  "}\n");
    EXPECT_FALSE(fired(fs, "own-double-release")) << dump(fs);
}

TEST(NxownRelease, ReleaseAfterStdMoveIsReported)
{
    auto fs = run("int f(Pool &p) {\n"
                  "    auto h = p.acquire(4);\n"
                  "    sink(std::move(h));\n"
                  "    p.put(h);\n"
                  "    return 0;\n"
                  "}\n");
    ASSERT_EQ(fs.size(), 1u) << dump(fs);
    EXPECT_EQ(fs[0].rule, "own-release-unacquired");
}

TEST(NxownRelease, ReturningTheHandleTransfersToCaller)
{
    auto fs = run("int f(Pool &p) {\n"
                  "    auto h = p.acquire(4);\n"
                  "    return h;\n"
                  "}\n");
    EXPECT_TRUE(fs.empty()) << dump(fs);
}

TEST(NxownRelease, TransfersAnnotationMovesTheArgument)
{
    auto fs = run("int f(Pool &p, Q &q) {\n"
                  "    auto h = p.acquire(4);\n"
                  "    q.push(h);\n"
                  "    return 0;\n"
                  "}\n"
                  "int g(Pool &p, Q &q) {\n"
                  "    auto h = p.acquire(4);\n"
                  "    q.push(h);\n"
                  "    p.put(h);\n"
                  "    return 0;\n"
                  "}\n",
                  std::string(kPoolDecl) +
                      "struct Q {\n"
                      "    void push(int t) NXSIM_TRANSFERS(buf);\n"
                      "};\n");
    // f: transfer ends the obligation. g: releasing after an explicit
    // transfer is a must-finding.
    ASSERT_EQ(fs.size(), 1u) << dump(fs);
    EXPECT_EQ(fs[0].rule, "own-release-unacquired");
}

TEST(NxownRelease, UnknownCalleeIsNeverAFinding)
{
    // Passing the handle (or a member path of it) to a function the
    // analyzer cannot see into is a possible hand-off: no leak at the
    // exit, and no release-after-transfer on a later put().
    auto fs = run("int f(Pool &p) {\n"
                  "    auto h = p.acquire(4);\n"
                  "    stash(h);\n"
                  "    return 0;\n"
                  "}\n"
                  "int g(Pool &p) {\n"
                  "    auto h = p.acquire(4);\n"
                  "    observe(h);\n"
                  "    p.put(h);\n"
                  "    return 0;\n"
                  "}\n");
    EXPECT_TRUE(fs.empty()) << dump(fs);
}

// ---------------------------------------------------------------------------
// derived cross-function summaries
// ---------------------------------------------------------------------------

TEST(NxownCross, CalleeReleasingItsParamConsumesCallerHandle)
{
    // finish() releases its parameter, so the call graph summary makes
    // `finish(p, h)` consume h — proven by the put() afterwards being
    // a double release (an unknown callee would have made it silent).
    auto fs = run("void finish(Pool &p, int t) {\n"
                  "    p.put(t);\n"
                  "}\n"
                  "int f(Pool &p) {\n"
                  "    auto h = p.acquire(4);\n"
                  "    finish(p, h);\n"
                  "    p.put(h);\n"
                  "    return 0;\n"
                  "}\n");
    ASSERT_EQ(fs.size(), 1u) << dump(fs);
    EXPECT_EQ(fs[0].rule, "own-double-release");
    EXPECT_EQ(fs[0].line, 12);
}

TEST(NxownCross, CalleeReturningHeldHandleActsAsAcquirer)
{
    auto fs = run("int grab(Pool &p) {\n"
                  "    return p.acquire(4);\n"
                  "}\n"
                  "int f(Pool &p) {\n"
                  "    auto h = grab(p);\n"
                  "    return 0;\n"
                  "}\n");
    ASSERT_EQ(fs.size(), 1u) << dump(fs);
    EXPECT_EQ(fs[0].rule, "own-leak");
    EXPECT_EQ(fs[0].line, 10);
}

TEST(NxownCross, HelperChainBalancesAcrossFiles)
{
    std::vector<SourceFile> files;
    files.push_back({"src/pool.h", kPoolDecl});
    files.push_back({"src/helper.cc",
                     "int grab(Pool &p) {\n"
                     "    auto h = p.acquire(4);\n"
                     "    return h;\n"
                     "}\n"
                     "void finish(Pool &p, int t) {\n"
                     "    p.put(t);\n"
                     "}\n"});
    files.push_back({"src/user.cc",
                     "int f(Pool &p) {\n"
                     "    auto h = grab(p);\n"
                     "    finish(p, h);\n"
                     "    return 0;\n"
                     "}\n"});
    auto fs = analyzeFiles(files);
    EXPECT_TRUE(fs.empty()) << dump(fs);
}

// ---------------------------------------------------------------------------
// annotations
// ---------------------------------------------------------------------------

TEST(NxownAnnotation, MalformedTagAndPlacementAreReported)
{
    std::vector<SourceFile> files;
    files.push_back({"src/a.h",
                     "struct P {\n"
                     "    int acquire(int n) NXSIM_ACQUIRES();\n"
                     "    void put(int h) NXSIM_RELEASES(a.b);\n"
                     "};\n"
                     "int x = 3;\n"
                     "NXSIM_ACQUIRES(tok);\n"});
    auto fs = analyzeFiles(files);
    ASSERT_EQ(fs.size(), 3u) << dump(fs);
    for (const Finding &f : fs)
        EXPECT_EQ(f.rule, "own-annotation");
}

TEST(NxownAnnotation, SiblingAnnotationGroupsAreSkipped)
{
    // Thread-safety annotations sit between the parameter list and the
    // ownership macro on the real BufferPool::acquire; the harvester
    // walks over them.
    auto fs = run("int f(Pool &p) {\n"
                  "    auto h = p.acquire(4);\n"
                  "    return 0;\n"
                  "}\n",
                  "struct Pool {\n"
                  "    int acquire(int n) NXSIM_EXCLUDES(mu_)"
                  " NXSIM_ACQUIRES(buf);\n"
                  "};\n");
    ASSERT_EQ(fs.size(), 1u) << dump(fs);
    EXPECT_EQ(fs[0].rule, "own-leak");
}

// ---------------------------------------------------------------------------
// suppressions
// ---------------------------------------------------------------------------

TEST(NxownAllow, AllowSuppressesAndStaleIsReported)
{
    auto suppressed =
        run("int f(Pool &p) {\n"
            "    // nxown: allow(own-leak): handed to the device table,\n"
            "    // reclaimed by the teardown sweep\n"
            "    auto h = p.acquire(4);\n"
            "    return 0;\n"
            "}\n");
    EXPECT_TRUE(suppressed.empty()) << dump(suppressed);

    auto stale = run("int f(Pool &p) {\n"
                     "    // nxown: allow(own-leak): nothing leaks here\n"
                     "    auto h = p.acquire(4);\n"
                     "    p.put(h);\n"
                     "    return 0;\n"
                     "}\n");
    ASSERT_EQ(stale.size(), 1u) << dump(stale);
    EXPECT_EQ(stale[0].rule, "stale-allow");
}

TEST(NxownAllow, BareAllowIsReported)
{
    auto fs = run("// nxown: allow(own-leak)\n"
                  "int f(Pool &p) { return 0; }\n");
    EXPECT_TRUE(fired(fs, "bare-allow")) << dump(fs);
}

// ---------------------------------------------------------------------------
// the real tree
// ---------------------------------------------------------------------------

TEST(NxownTree, RealTreeIsClean)
{
    auto fs = analyzeTree(NXSIM_SOURCE_DIR);
    EXPECT_TRUE(fs.empty()) << dump(fs);
}

TEST(NxownTree, InvertingPoolReleasesSurfacesRealAcquires)
{
    // The differential that keeps the clean run honest: drop every
    // pool_buffer RELEASES annotation (including the Lease RAII
    // destructor) and each real BufferPool::acquire call site must
    // surface as an own-leak — in particular the Session hot path.
    Options opt;
    opt.ignoreReleaseTags = {"pool_buffer"};
    auto fs = analyzeTree(NXSIM_SOURCE_DIR, opt);
    ASSERT_FALSE(fs.empty()) << "inversion surfaced nothing";
    for (const Finding &f : fs)
        EXPECT_EQ(f.rule, "own-leak") << dump(fs);
    EXPECT_TRUE(std::any_of(fs.begin(), fs.end(), [](const Finding &f) {
        return f.file == "src/core/session.cc";
    })) << dump(fs);
}

TEST(NxownTree, IgnoreReleaseTagsDropsReleasesAndRaiiMarkers)
{
    // The knob itself, on a deterministic fixture: code that balances
    // via an explicit receiver release and code that relies on a RAII
    // destructor both turn into leaks once their tag's RELEASES
    // annotations are ignored. (A dropped by-arg release decays into
    // an unknown callee, which conservatively guards the handle — so
    // the differential signal comes from receiver and RAII forms, the
    // shapes the real Lease uses.)
    std::vector<SourceFile> files;
    files.push_back({"src/fix.cc",
                     "struct Lease {\n"
                     "    ~Lease() NXSIM_RELEASES(raii_buf);\n"
                     "};\n"
                     "struct CLease {\n"
                     "    void close() NXSIM_RELEASES(expl_buf);\n"
                     "};\n"
                     "struct RaiiPool {\n"
                     "    Lease take(int n) NXSIM_ACQUIRES(raii_buf);\n"
                     "};\n"
                     "struct CPool {\n"
                     "    CLease grab(int n) NXSIM_ACQUIRES(expl_buf);\n"
                     "};\n"
                     "int f(CPool &p) {\n"
                     "    auto h = p.grab(4);\n"
                     "    h.close();\n"
                     "    return 0;\n"
                     "}\n"
                     "int g(RaiiPool &p) {\n"
                     "    auto l = p.take(8);\n"
                     "    return 0;\n"
                     "}\n"});
    EXPECT_TRUE(analyzeFiles(files).empty());
    Options both;
    both.ignoreReleaseTags = {"expl_buf", "raii_buf"};
    auto fs = analyzeFiles(files, both);
    ASSERT_EQ(fs.size(), 2u) << dump(fs);
    EXPECT_EQ(fs[0].rule, "own-leak");
    EXPECT_EQ(fs[1].rule, "own-leak");
}

} // namespace
