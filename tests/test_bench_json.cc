/**
 * @file
 * Golden-file and schema tests for the BENCH_*.json emission layer
 * (load/slo_report.h).
 *
 * Two layers of pinning:
 *
 *  1. Byte-exact golden: a synthetic, fully hand-filled pair of
 *     LoadReports serializes to exactly tests/golden/bench_l1.json.
 *     Any formatting or key-order drift — which would break downstream
 *     diff tooling — fails here first. Regenerate deliberately with
 *     NXSIM_REGEN_GOLDEN=1 after bumping kBenchJsonSchemaVersion.
 *
 *  2. The persisted repo-root BENCH_l1_serving.json is schema-valid:
 *     right version, required keys, monotone latency percentiles, and
 *     every scenario's schedule_digest matches a recomputation from
 *     the canonical scenario set (load/scenarios.h) — so the committed
 *     trajectory provably came from the committed traffic plans.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "load/scenarios.h"
#include "load/slo_report.h"

#ifndef NXSIM_SOURCE_DIR
#error "tests/CMakeLists.txt must define NXSIM_SOURCE_DIR"
#endif

namespace {

using load::BenchRunInfo;
using load::LoadReport;
using load::NamedReport;

std::string
slurp(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return {};
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

/** All values of `"key": <value>` in @p json, as raw value strings. */
std::vector<std::string>
values(const std::string &json, const std::string &key)
{
    std::vector<std::string> out;
    const std::string needle = "\"" + key + "\": ";
    size_t pos = 0;
    while ((pos = json.find(needle, pos)) != std::string::npos) {
        size_t start = pos + needle.size();
        size_t end = json.find_first_of(",\n", start);
        out.push_back(json.substr(start, end - start));
        pos = end;
    }
    return out;
}

/**
 * A synthetic report with every field set to a distinct, readable
 * value: the golden file doubles as format documentation.
 */
LoadReport
syntheticReport(uint64_t seed)
{
    LoadReport r;
    r.clients = 6;
    r.requestsPerClient = 12;
    r.arrival = seed % 2 == 0 ? load::ArrivalKind::OpenPoisson
                              : load::ArrivalKind::Bursty;
    r.seed = seed;
    r.workers = 2;
    r.windows = 2;
    r.fifoDepth = 4;
    r.scheduleDigest = 0x0123456789abcdefull ^ seed;

    r.elapsedSeconds = 0.125;
    r.submitted = 72;
    r.completed = 72;
    r.failed = 0;
    r.measured = 66;
    r.bytesIn = 1 << 20;
    r.bytesOut = 1 << 18;
    r.throughputRps = 576.0;
    r.throughputBps = 8388608.0;

    r.latency.count = 66;
    r.latency.mean = 0.00125;
    r.latency.min = 0.0001;
    r.latency.max = 0.01;
    r.latency.p50 = 0.001;
    r.latency.p90 = 0.002;
    r.latency.p99 = 0.004;
    r.latency.p999 = 0.008;

    r.pasteAttempts = 80;
    r.busyRejects = 8;
    r.busyRejectRate = 0.1;
    r.accelRouted = 48;
    r.softwareRouted = 24;
    r.fallbacks = 3;
    r.fallbackRate = 0.0625;
    r.deviceFaults = 1;
    r.queueDepthHighWater = 5;
    r.windowBusyRejects = {5, 3};
    r.perClientCompleted = {12, 12, 12, 12, 12, 12};
    r.fairnessMinOverMax = 1.0;
    return r;
}

std::string
syntheticJson()
{
    BenchRunInfo info;
    info.chip = "POWER9";
    info.smoke = true;
    std::vector<NamedReport> runs;
    runs.emplace_back("poisson-w2-f4", syntheticReport(2));
    runs.emplace_back("bursty-w2-f4", syntheticReport(3));
    return benchJson(info, runs);
}

const std::string kGoldenPath =
    std::string(NXSIM_SOURCE_DIR) + "/tests/golden/bench_l1.json";
const std::string kBenchPath =
    std::string(NXSIM_SOURCE_DIR) + "/BENCH_l1_serving.json";

TEST(BenchJsonGolden, ByteExactAgainstGoldenFile)
{
    std::string actual = syntheticJson();
    if (std::getenv("NXSIM_REGEN_GOLDEN") != nullptr) {
        std::ofstream out(kGoldenPath, std::ios::binary);
        out << actual;
        GTEST_SKIP() << "regenerated " << kGoldenPath;
    }
    std::string golden = slurp(kGoldenPath);
    ASSERT_FALSE(golden.empty()) << "missing golden: " << kGoldenPath;
    EXPECT_EQ(actual, golden)
        << "benchJson output drifted from the golden file. If the "
           "schema change is intentional, bump kBenchJsonSchemaVersion "
           "and rerun with NXSIM_REGEN_GOLDEN=1.";
}

TEST(BenchJsonGolden, EndsWithSingleNewline)
{
    std::string s = syntheticJson();
    ASSERT_GE(s.size(), 2u);
    EXPECT_EQ(s.back(), '\n');
    EXPECT_NE(s[s.size() - 2], '\n');
}

TEST(BenchJsonGolden, EmptyRunListSerializes)
{
    BenchRunInfo info;
    info.chip = "z15";
    std::string s = benchJson(info, {});
    EXPECT_NE(s.find("\"scenarios\": []"), std::string::npos);
    EXPECT_NE(s.find("\"chip\": \"z15\""), std::string::npos);
    EXPECT_NE(s.find("\"smoke\": false"), std::string::npos);
}

TEST(BenchJsonGolden, DigestRendersAsFixedWidthHex)
{
    auto ds = values(syntheticJson(), "schedule_digest");
    ASSERT_EQ(ds.size(), 2u);
    for (const auto &d : ds) {
        // "0x" + 16 hex digits inside quotes.
        ASSERT_EQ(d.size(), 20u) << d;
        EXPECT_EQ(d.substr(0, 3), "\"0x");
        EXPECT_EQ(d.back(), '"');
    }
}

TEST(BenchJsonGolden, SchemaVersionIsCurrent)
{
    auto vs = values(syntheticJson(), "schema_version");
    ASSERT_EQ(vs.size(), 1u);
    EXPECT_EQ(vs[0], std::to_string(load::kBenchJsonSchemaVersion));
}

// ---------------------------------------------------------------------------
// The persisted repo-root trajectory file.
// ---------------------------------------------------------------------------

class PersistedBench : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        json_ = slurp(kBenchPath);
        ASSERT_FALSE(json_.empty())
            << "missing " << kBenchPath
            << " — run tools/bench_to_json.sh to regenerate";
    }

    std::string json_;
};

TEST_F(PersistedBench, HasVersionedHeader)
{
    auto ver = values(json_, "schema_version");
    ASSERT_EQ(ver.size(), 1u);
    EXPECT_EQ(ver[0], std::to_string(load::kBenchJsonSchemaVersion));
    auto bench = values(json_, "bench");
    ASSERT_EQ(bench.size(), 1u);
    EXPECT_EQ(bench[0], "\"bench_l1_serving\"");
    auto chip = values(json_, "chip");
    ASSERT_EQ(chip.size(), 1u);
    EXPECT_TRUE(chip[0] == "\"POWER9\"" || chip[0] == "\"z15\"")
        << chip[0];
}

TEST_F(PersistedBench, EveryScenarioCarriesRequiredKeys)
{
    size_t n = values(json_, "name").size();
    ASSERT_GE(n, 1u);
    for (const char *key :
         {"arrival", "clients", "requests_per_client", "seed", "workers",
          "windows", "fifo_depth", "schedule_digest", "elapsed_seconds",
          "submitted", "completed", "failed", "measured", "bytes_in",
          "bytes_out", "throughput_rps", "throughput_bps", "count",
          "mean", "p50", "p90", "p99", "p999", "paste_attempts",
          "busy_rejects", "busy_reject_rate", "accel_routed",
          "software_routed", "fallbacks", "fallback_rate",
          "device_faults", "queue_depth_high_water",
          "window_busy_rejects", "fairness_min_over_max",
          "per_client_completed"}) {
        EXPECT_EQ(values(json_, key).size(), n) << key;
    }
}

TEST_F(PersistedBench, LatencyPercentilesAreMonotone)
{
    auto p50 = values(json_, "p50");
    auto p90 = values(json_, "p90");
    auto p99 = values(json_, "p99");
    auto p999 = values(json_, "p999");
    ASSERT_EQ(p50.size(), p999.size());
    for (size_t i = 0; i < p50.size(); ++i) {
        double a = std::stod(p50[i]), b = std::stod(p90[i]),
               c = std::stod(p99[i]), d = std::stod(p999[i]);
        EXPECT_LE(a, b) << "scenario " << i;
        EXPECT_LE(b, c) << "scenario " << i;
        EXPECT_LE(c, d) << "scenario " << i;
        EXPECT_GT(a, 0.0) << "scenario " << i;
    }
}

TEST_F(PersistedBench, EveryScenarioCompletedItsTraffic)
{
    auto sub = values(json_, "submitted");
    auto comp = values(json_, "completed");
    auto fail = values(json_, "failed");
    ASSERT_EQ(sub.size(), comp.size());
    for (size_t i = 0; i < sub.size(); ++i) {
        EXPECT_EQ(sub[i], comp[i]) << "scenario " << i;
        EXPECT_EQ(fail[i], "0") << "scenario " << i;
    }
}

TEST_F(PersistedBench, DigestsMatchTheCanonicalScenarioPlans)
{
    // The "smoke" field names which canonical sweep produced the file;
    // recompute every plan digest from load/scenarios.h and require
    // name and digest to appear paired, in order.
    auto smoke = values(json_, "smoke");
    ASSERT_EQ(smoke.size(), 1u);
    auto clients = values(json_, "clients");
    ASSERT_GE(clients.size(), 1u);
    auto scenarios = smoke[0] == "true"
        ? load::l1SmokeScenarios()
        : load::l1FullScenarios(std::stoi(clients[0]));

    auto names = values(json_, "name");
    auto digests = values(json_, "schedule_digest");
    ASSERT_EQ(names.size(), scenarios.size());
    ASSERT_EQ(digests.size(), scenarios.size());
    for (size_t i = 0; i < scenarios.size(); ++i) {
        EXPECT_EQ(names[i], "\"" + scenarios[i].name + "\"");
        char buf[24];
        std::snprintf(buf, sizeof(buf), "\"0x%016llx\"",
                      static_cast<unsigned long long>(
                          load::planScheduleDigest(scenarios[i].cfg)));
        EXPECT_EQ(digests[i], buf) << scenarios[i].name;
    }
}

TEST_F(PersistedBench, SweepShapeMeetsTheAcceptanceFloor)
{
    // >= 3x3 workers x fifoDepth grid and all three arrival kinds.
    auto workers = values(json_, "workers");
    auto fifos = values(json_, "fifo_depth");
    std::set<std::pair<std::string, std::string>> grid;
    for (size_t i = 0; i < workers.size(); ++i)
        grid.insert({workers[i], fifos[i]});
    EXPECT_GE(grid.size(), 9u);
    EXPECT_NE(json_.find("\"open-poisson\""), std::string::npos);
    EXPECT_NE(json_.find("\"bursty\""), std::string::npos);
    EXPECT_NE(json_.find("\"closed-loop\""), std::string::npos);
}

} // namespace
