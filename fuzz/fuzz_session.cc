#include "harness.h"

extern "C" int
LLVMFuzzerTestOneInput(const uint8_t *data, size_t size)
{
    return fuzz::fuzzSession({data, size});
}
