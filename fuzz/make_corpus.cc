/**
 * @file
 * Seed-corpus generator: writes small, diverse, deterministic inputs
 * for each fuzz target into fuzz/corpus/<target>/. The generated files
 * are checked into git; re-run this tool (build target
 * fuzz_make_corpus, argument = corpus root) only when the stream
 * formats change, and commit the result.
 */

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "deflate/deflate_encoder.h"
#include "deflate/gzip_stream.h"
#include "deflate/zlib_stream.h"
#include "e842/e842.h"
#include "workloads/corpus.h"

namespace {

namespace fs = std::filesystem;

void
save(const fs::path &dir, const std::string &name,
     std::span<const uint8_t> bytes)
{
    fs::create_directories(dir);
    std::ofstream f(dir / name, std::ios::binary);
    f.write(reinterpret_cast<const char *>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

std::vector<uint8_t>
deflateAt(std::span<const uint8_t> input, int level)
{
    deflate::DeflateOptions opts;
    opts.level = level;
    return deflate::deflateCompress(input, opts).bytes;
}

} // namespace

int
main(int argc, char **argv)
{
    fs::path root = argc > 1 ? argv[1] : "fuzz/corpus";

    auto text = workloads::makeText(2000, 1);
    auto log = workloads::makeLog(3000, 2);
    auto bin = workloads::makeBinary(1500, 3);
    auto json = workloads::makeJson(2500, 4);
    auto rnd = workloads::makeRandom(800, 5);
    auto zeros = workloads::makeZeros(4096);

    // --- inflate: raw DEFLATE streams of every block flavour ---------
    save(root / "inflate", "text-l6.bin", deflateAt(text, 6));
    save(root / "inflate", "log-l1.bin", deflateAt(log, 1));
    save(root / "inflate", "bin-l9.bin", deflateAt(bin, 9));
    save(root / "inflate", "stored-l0.bin", deflateAt(rnd, 0));
    save(root / "inflate", "zeros-l6.bin", deflateAt(zeros, 6));
    {
        deflate::DeflateOptions opts;
        opts.forceFixed = true;
        save(root / "inflate", "fixed.bin",
             deflate::deflateCompress(text, opts).bytes);
    }
    {
        // Multi-block stream: small blockBytes forces block boundaries.
        deflate::DeflateOptions opts;
        opts.blockBytes = 512;
        save(root / "inflate", "multiblock.bin",
             deflate::deflateCompress(json, opts).bytes);
    }
    save(root / "inflate", "empty-input.bin",
         deflateAt(std::span<const uint8_t>{}, 6));

    // --- gzip: container framing, gzip and zlib --------------------
    save(root / "gzip", "basic.gz", deflate::gzipWrap(
        deflateAt(text, 6), text, "seed.txt"));
    {
        deflate::GzipWriteOptions w;
        w.name = "n.bin";
        w.comment = "seed comment";
        w.extra = {0x01, 0x02, 0x03, 0x04};
        w.headerCrc = true;
        w.mtime = 0x5f000000;
        save(root / "gzip", "all-fields.gz", deflate::gzipWrapEx(
            deflateAt(log, 6), log, w));
    }
    {
        auto m1 = deflate::gzipWrap(deflateAt(text, 6), text, "");
        auto m2 = deflate::gzipWrap(deflateAt(bin, 1), bin, "");
        m1.insert(m1.end(), m2.begin(), m2.end());
        save(root / "gzip", "two-members.gz", m1);
    }
    save(root / "gzip", "stream.zlib",
         deflate::zlibWrap(deflateAt(json, 6), json));
    save(root / "gzip", "tiny.gz", deflate::gzipWrap(
        deflateAt(std::span<const uint8_t>{}, 6), {}, ""));

    // --- e842: streams from every opcode family --------------------
    save(root / "e842", "text.842", e842::compress(text).bytes);
    save(root / "e842", "zeros.842", e842::compress(zeros).bytes);
    save(root / "e842", "random.842", e842::compress(rnd).bytes);
    {
        // Periodic data exercises REPEAT and the index templates.
        std::vector<uint8_t> periodic;
        for (int i = 0; i < 600; ++i)
            periodic.push_back(static_cast<uint8_t>("NXGZIP42"[i % 8]));
        save(root / "e842", "periodic.842",
             e842::compress(periodic).bytes);
    }
    {
        // Tail shorter than a chunk exercises SHORT_DATA.
        std::vector<uint8_t> odd(json.begin(), json.begin() + 21);
        save(root / "e842", "shortdata.842", e842::compress(odd).bytes);
    }

    // --- roundtrip: [level byte][mode byte][payload] ----------------
    auto seedRt = [&](const std::string &name, uint8_t level,
                      uint8_t mode, std::span<const uint8_t> payload) {
        std::vector<uint8_t> v = {level, mode};
        v.insert(v.end(), payload.begin(), payload.end());
        save(root / "roundtrip", name, v);
    };
    seedRt("text-l6-dht.bin", 6, 1, text);
    seedRt("log-l1-fht.bin", 1, 0, log);
    seedRt("bin-l9-dht.bin", 9, 1, bin);
    seedRt("zeros-l6-fht.bin", 6, 0, zeros);
    seedRt("rnd-l0-fht.bin", 0, 0, rnd);
    seedRt("empty-l6-dht.bin", 6, 1, {});

    // --- session: [format][log2 thresh][retries][fault plan][payload]
    // Seeds cover each format on both sides of its routing threshold
    // and each fault-plan family (one-shot translation faults, one-shot
    // terminal faults, periodic faults, clean runs).
    auto seedSession = [&](const std::string &name, uint8_t format,
                           uint8_t log2Thresh, uint8_t retries,
                           uint8_t faultPlan,
                           std::span<const uint8_t> payload) {
        std::vector<uint8_t> v = {format, log2Thresh, retries,
                                  faultPlan};
        v.insert(v.end(), payload.begin(), payload.end());
        save(root / "session", name, v);
    };
    seedSession("gzip-accel-clean.bin", 0, 8, 1, 0x00, text);
    seedSession("gzip-sw-clean.bin", 0, 11, 1, 0x00, rnd);
    seedSession("zlib-accel-xlate-fault.bin", 1, 6, 2, 0x02, log);
    seedSession("raw-accel-terminal-fault.bin", 2, 4, 1, 0x11, json);
    seedSession("e842-accel-periodic.bin", 3, 5, 0, 0x80, bin);
    seedSession("e842-sw-small.bin", 3, 11, 1, 0x00,
                std::span<const uint8_t>(zeros).first(64));
    seedSession("gzip-fault-storm.bin", 0, 0, 2, 0xFF, text);
    seedSession("empty-payload.bin", 0, 4, 1, 0x00, {});
    return 0;
}
