/**
 * @file
 * Standalone driver for the fuzz harnesses when the toolchain has no
 * libFuzzer (GCC builds). Implements the subset of the libFuzzer CLI
 * that ci.sh and developers need:
 *
 *   fuzz_inflate CORPUS_DIR... FILE...   replay inputs deterministically
 *   fuzz_inflate -time=30 DIR            mutation-fuzz for 30 seconds
 *   fuzz_inflate -runs=100000 DIR        mutation-fuzz for N execs
 *
 * Options: -time=SECONDS, -runs=N, -max_len=BYTES (default 4096),
 * -seed=S. With no positional arguments the target's seeded corpus
 * (fuzz/corpus/<target>, compiled in) is used. Mutations are simple
 * havoc-style edits (bit flips, byte ops, truncate/extend, splice)
 * driven by the repo's deterministic Xoshiro PRNG, so a given
 * (-seed, corpus) pair replays identically.
 */

#include <algorithm>
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <ctime>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "util/prng.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t *data, size_t size);

namespace {

namespace fs = std::filesystem;

/**
 * The input being executed right now; dumped to crash-input.bin when a
 * FUZZ_CHECK abort or a signal fires so the crasher can be added to
 * fuzz/corpus/. (ASan exits without a signal — re-run with the same
 * -seed to reproduce; execution is fully deterministic.)
 */
const std::vector<uint8_t> *g_current = nullptr;

void
dumpCurrentAndDie(int sig)
{
    if (g_current != nullptr) {
        std::ofstream f("crash-input.bin", std::ios::binary);
        f.write(reinterpret_cast<const char *>(g_current->data()),
                static_cast<std::streamsize>(g_current->size()));
        std::fprintf(stderr,
                     "crashing input (%zu bytes) saved to "
                     "crash-input.bin\n", g_current->size());
    }
    std::signal(sig, SIG_DFL);
    std::raise(sig);
}

std::vector<uint8_t>
readFile(const fs::path &p)
{
    std::ifstream f(p, std::ios::binary);
    return {std::istreambuf_iterator<char>(f),
            std::istreambuf_iterator<char>()};
}

void
collectInputs(const std::string &arg, std::vector<fs::path> &files)
{
    fs::path p(arg);
    std::error_code ec;
    if (fs::is_directory(p, ec)) {
        for (const auto &e : fs::directory_iterator(p, ec))
            if (e.is_regular_file())
                files.push_back(e.path());
    } else if (fs::is_regular_file(p, ec)) {
        files.push_back(p);
    } else {
        std::fprintf(stderr, "warning: no such input: %s\n",
                     arg.c_str());
    }
}

/** One havoc mutation in place. */
void
mutate(std::vector<uint8_t> &buf, util::Xoshiro256 &rng, size_t max_len,
       const std::vector<std::vector<uint8_t>> &corpus)
{
    switch (rng.below(8)) {
      case 0:    // bit flip
        if (!buf.empty())
            buf[rng.below(buf.size())] ^=
                static_cast<uint8_t>(1u << rng.below(8));
        break;
      case 1:    // random byte
        if (!buf.empty())
            buf[rng.below(buf.size())] =
                static_cast<uint8_t>(rng.next());
        break;
      case 2:    // interesting byte
        if (!buf.empty()) {
            static constexpr uint8_t kInteresting[] = {
                0x00, 0x01, 0x7f, 0x80, 0xff, 0x08, 0x1f, 0x8b};
            buf[rng.below(buf.size())] =
                kInteresting[rng.below(std::size(kInteresting))];
        }
        break;
      case 3:    // insert byte
        if (buf.size() < max_len)
            buf.insert(buf.begin() +
                           static_cast<long>(rng.below(buf.size() + 1)),
                       static_cast<uint8_t>(rng.next()));
        break;
      case 4:    // erase byte
        if (!buf.empty())
            buf.erase(buf.begin() +
                      static_cast<long>(rng.below(buf.size())));
        break;
      case 5:    // truncate
        if (!buf.empty())
            buf.resize(rng.below(buf.size()) + 1);
        break;
      case 6: {    // append random run
        size_t n = rng.below(32) + 1;
        while (n-- && buf.size() < max_len)
            buf.push_back(static_cast<uint8_t>(rng.next()));
        break;
      }
      default:    // splice with another corpus entry
        if (!corpus.empty()) {
            const auto &other = corpus[rng.below(corpus.size())];
            if (!other.empty() && !buf.empty()) {
                size_t at = rng.below(buf.size());
                size_t from = rng.below(other.size());
                size_t n = std::min({rng.below(64) + 1,
                                     buf.size() - at,
                                     other.size() - from});
                std::memcpy(buf.data() + at, other.data() + from, n);
            }
        }
        break;
    }
}

} // namespace

int
main(int argc, char **argv)
{
    uint64_t runs = 0;
    uint64_t timeSec = 0;
    size_t maxLen = 4096;
    uint64_t seed = 0x5eed;
    std::vector<fs::path> files;

    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        if (a.rfind("-runs=", 0) == 0)
            runs = std::stoull(a.substr(6));
        else if (a.rfind("-time=", 0) == 0)
            timeSec = std::stoull(a.substr(6));
        else if (a.rfind("-max_len=", 0) == 0)
            maxLen = std::stoull(a.substr(9));
        else if (a.rfind("-seed=", 0) == 0)
            seed = std::stoull(a.substr(6));
        else if (a == "-help" || a == "--help") {
            std::fprintf(stderr,
                         "usage: %s [-runs=N] [-time=SEC] [-max_len=N] "
                         "[-seed=S] [corpus_dir|file]...\n", argv[0]);
            return 0;
        } else if (!a.empty() && a[0] == '-') {
            std::fprintf(stderr, "ignoring unknown option %s\n",
                         a.c_str());
        } else {
            collectInputs(a, files);
        }
    }

    if (files.empty()) {
        // Default to the compiled-in seeded corpus for this target:
        // fuzz/corpus/<name> where <name> is argv[0] minus "fuzz_".
        std::string base = fs::path(argv[0]).filename().string();
        if (base.rfind("fuzz_", 0) == 0)
            base = base.substr(5);
        collectInputs(std::string(NXSIM_FUZZ_CORPUS_DIR) + "/" + base,
                      files);
    }
    std::sort(files.begin(), files.end());

    std::vector<std::vector<uint8_t>> corpus;
    corpus.reserve(files.size());
    for (const auto &f : files)
        corpus.push_back(readFile(f));

    std::signal(SIGABRT, dumpCurrentAndDie);
    std::signal(SIGSEGV, dumpCurrentAndDie);

    // Phase 1: deterministic replay of every input.
    uint64_t execs = 0;
    for (size_t i = 0; i < corpus.size(); ++i) {
        g_current = &corpus[i];
        LLVMFuzzerTestOneInput(corpus[i].data(), corpus[i].size());
        ++execs;
    }
    g_current = nullptr;
    std::fprintf(stderr, "replayed %zu corpus inputs\n", corpus.size());

    // Phase 2: havoc mutation loop.
    if (runs == 0 && timeSec == 0)
        return 0;
    util::Xoshiro256 rng(seed);
    std::time_t deadline = std::time(nullptr) +
        static_cast<std::time_t>(timeSec);
    uint64_t mutated = 0;
    while ((runs == 0 || mutated < runs) &&
           (timeSec == 0 || std::time(nullptr) < deadline)) {
        std::vector<uint8_t> buf;
        if (!corpus.empty() && rng.below(8) != 0)
            buf = corpus[rng.below(corpus.size())];
        size_t edits = rng.below(8) + 1;
        for (size_t e = 0; e < edits; ++e)
            mutate(buf, rng, maxLen, corpus);
        if (buf.size() > maxLen)
            buf.resize(maxLen);
        g_current = &buf;
        LLVMFuzzerTestOneInput(buf.data(), buf.size());
        g_current = nullptr;
        ++mutated;
        ++execs;
        if (mutated % 50000 == 0)
            std::fprintf(stderr, "#%llu execs\n",
                         static_cast<unsigned long long>(execs));
    }
    std::fprintf(stderr, "done: %llu execs (%llu mutated)\n",
                 static_cast<unsigned long long>(execs),
                 static_cast<unsigned long long>(mutated));
    return 0;
}
