/**
 * @file
 * Fuzz entry points for the byte-stream decode paths.
 *
 * Each function consumes attacker-controlled bytes and must terminate
 * without crashing, sanitizer reports, or unbounded allocation — errors
 * are only ever reported through the library's status types. The same
 * entry points back three drivers: libFuzzer targets (fuzz_*.cc), the
 * standalone mutation driver (standalone_main.cc, used when the
 * toolchain lacks libFuzzer), and the deterministic corpus replay in
 * tests/test_fuzz_regression.cc.
 */

#ifndef NXSIM_FUZZ_HARNESS_H
#define NXSIM_FUZZ_HARNESS_H

#include <cstddef>
#include <cstdint>
#include <span>

namespace fuzz {

/** Raw DEFLATE bytes -> one-shot and streaming inflaters (differential). */
int fuzzInflate(std::span<const uint8_t> data);

/** gzip / zlib container parsing (headers, trailers, multi-member). */
int fuzzGzip(std::span<const uint8_t> data);

/** 842-class stream decode, plus compress-decompress identity. */
int fuzzE842(std::span<const uint8_t> data);

/**
 * Differential round trip: payload compressed through both the software
 * DeflateEncoder and the NX CompressEngine at a fuzzer-chosen level,
 * inflated back, outputs asserted byte-identical with matching CRC32.
 */
int fuzzRoundtrip(std::span<const uint8_t> data);

/**
 * nx::Session routing layer under a fuzzer-chosen policy (format,
 * threshold, retry budget) and fault plan (header-driven
 * FaultInjector programming against a shared JobServer). The
 * invariant: whatever the routing and fallback path taken, the
 * session's compressed output decodes to the payload through the pure
 * software oracle, and the session round-trips its own stream.
 * Format: [format][log2 threshold][retries][fault plan][payload...].
 */
int fuzzSession(std::span<const uint8_t> data);

} // namespace fuzz

#endif // NXSIM_FUZZ_HARNESS_H
