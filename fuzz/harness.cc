#include "harness.h"

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "core/fault_injector.h"
#include "core/session.h"
#include "deflate/deflate_encoder.h"
#include "deflate/gzip_stream.h"
#include "deflate/inflate_decoder.h"
#include "deflate/inflate_stream.h"
#include "deflate/zlib_stream.h"
#include "e842/e842.h"
#include "nx/compress_engine.h"
#include "nx/crb.h"
#include "util/crc32.h"

namespace fuzz {

namespace {

/**
 * Hard assertion that survives NDEBUG: fuzzing builds are usually
 * RelWithDebInfo, where assert() is compiled out.
 */
#define FUZZ_CHECK(cond, msg)                                          \
    do {                                                               \
        if (!(cond)) {                                                 \
            std::fprintf(stderr, "FUZZ_CHECK failed: %s (%s:%d)\n",    \
                         msg, __FILE__, __LINE__);                     \
            std::abort();                                              \
        }                                                              \
    } while (0)

/** Output cap: bounds memory per exec without masking logic bugs. */
constexpr size_t kMaxOutput = size_t{1} << 20;

} // namespace

int
fuzzInflate(std::span<const uint8_t> data)
{
    auto one = deflate::inflateDecompress(data, kMaxOutput);

    // Differential leg: the independent streaming inflater must agree
    // whenever both decoders reach a decided, successful outcome. Skip
    // large inputs — the streaming decoder has no output cap, and a
    // max-expansion stream grows ~1032x.
    if (data.size() <= 4096) {
        deflate::InflateStream is;
        std::vector<uint8_t> streamed;
        auto st = is.feed(data, streamed);
        if (one.ok() && st == deflate::StreamStatus::Done)
            FUZZ_CHECK(one.bytes == streamed,
                       "one-shot and streaming inflate disagree");
        if (!one.ok() && one.status != deflate::InflateStatus::OutputLimit
            && one.status != deflate::InflateStatus::TruncatedInput)
            FUZZ_CHECK(st != deflate::StreamStatus::Done,
                       "streaming accepted what one-shot rejected");
    }

    // The dictionary path shares the distance checks; drive it too.
    static const std::vector<uint8_t> dict(512, 0x41);
    (void)deflate::inflateDecompressWithDict(data, dict, kMaxOutput);
    return 0;
}

int
fuzzGzip(std::span<const uint8_t> data)
{
    (void)deflate::gzipUnwrap(data);
    (void)deflate::gzipUnwrapAll(data);
    (void)deflate::zlibUnwrap(data);
    static const std::vector<uint8_t> dict = {'f', 'u', 'z', 'z'};
    (void)deflate::zlibUnwrapWithDict(data, dict);
    return 0;
}

int
fuzzE842(std::span<const uint8_t> data)
{
    // Decode arbitrary bytes: must only ever fail via res.error.
    auto dec = e842::decompress(data, kMaxOutput);
    if (dec.ok)
        FUZZ_CHECK(dec.bytes.size() <= kMaxOutput,
                   "e842 output exceeded max_output");

    // Output-limit contract, with a cap small enough that fuzz-sized
    // inputs can actually overrun it (corpus: shortdata-limit.842).
    constexpr size_t kTinyCap = 64;
    auto tiny = e842::decompress(data, kTinyCap);
    if (tiny.ok)
        FUZZ_CHECK(tiny.bytes.size() <= kTinyCap,
                   "e842 output exceeded small max_output");

    // Identity: our own encoder's output must decode to the input.
    auto enc = e842::compress(data);
    auto rt = e842::decompress(enc.bytes, data.size() + 8);
    FUZZ_CHECK(rt.ok, "e842 cannot decode its own stream");
    FUZZ_CHECK(rt.bytes.size() == data.size() &&
                   std::equal(rt.bytes.begin(), rt.bytes.end(),
                              data.begin()),
               "e842 round trip mismatch");
    return 0;
}

int
fuzzRoundtrip(std::span<const uint8_t> data)
{
    if (data.size() < 2)
        return 0;
    int level = data[0] % 10;
    bool dht = (data[1] & 1) != 0;
    auto payload = data.subspan(2);

    // Software encoder leg.
    deflate::DeflateOptions opts;
    opts.level = level;
    auto sw = deflate::deflateCompress(payload, opts);
    auto swDec = deflate::inflateDecompress(sw.bytes,
                                            payload.size() + 64);
    FUZZ_CHECK(swDec.ok(), "software deflate stream does not inflate");
    FUZZ_CHECK(swDec.bytes.size() == payload.size() &&
                   std::equal(swDec.bytes.begin(), swDec.bytes.end(),
                              payload.begin()),
               "software round trip mismatch");

    // NX engine leg (model of the hardware compress pipeline).
    static nx::NxConfig cfg = nx::NxConfig::power9();
    static nx::CompressEngine eng(cfg);
    nx::Crb crb;
    crb.func = dht ? nx::FuncCode::CompressDht : nx::FuncCode::CompressFht;
    crb.framing = nx::Framing::Raw;
    crb.source = nx::DdeList::direct(
        0x10000, static_cast<uint32_t>(payload.size()));
    crb.target = nx::DdeList::direct(
        0x20000,
        static_cast<uint32_t>(payload.size() + payload.size() / 2 + 4096));
    auto job = eng.run(crb, payload);
    FUZZ_CHECK(job.csb.cc == nx::CondCode::Success,
               "NX compress CRB failed on valid input");
    auto nxDec = deflate::inflateDecompress(job.output,
                                            payload.size() + 64);
    FUZZ_CHECK(nxDec.ok(), "NX deflate stream does not inflate");
    FUZZ_CHECK(nxDec.bytes == swDec.bytes,
               "NX and software decompressed outputs differ");
    FUZZ_CHECK(util::crc32(nxDec.bytes) == util::crc32(payload),
               "round-trip CRC32 mismatch");
    return 0;
}

namespace {

/**
 * Long-lived engine pool + fault hook shared across session execs,
 * like the static CompressEngine in fuzzRoundtrip: session churn
 * against a persistent server is exactly the production shape, and
 * reusing the workers keeps per-exec cost at fuzzing speed.
 */
struct SessionRig
{
    nx::FaultInjector injector;
    core::JobServer server;

    SessionRig()
        : server(nx::NxConfig::power9(), config(&injector))
    {
    }

    static core::JobServerConfig
    config(nx::FaultInjector *inj)
    {
        core::JobServerConfig jcfg;
        jcfg.workers = 2;
        jcfg.windows = 1;
        jcfg.window.fifoDepth = 8;
        jcfg.faultInjector = inj;
        return jcfg;
    }
};

/** Pure-software decode of a session-format stream. */
std::vector<uint8_t>
oracleDecode(nx::SessionFormat f, std::span<const uint8_t> stream,
             bool *ok)
{
    if (f == nx::SessionFormat::E842) {
        auto r = e842::decompress(stream, kMaxOutput);
        *ok = r.ok;
        return std::move(r.bytes);
    }
    nx::Framing framing = f == nx::SessionFormat::Gzip
        ? nx::Framing::Gzip
        : (f == nx::SessionFormat::Zlib ? nx::Framing::Zlib
                                        : nx::Framing::Raw);
    core::SoftwareCodec codec(6);
    auto r = codec.decompress(stream, framing);
    *ok = r.ok();
    return std::move(r.data);
}

} // namespace

int
fuzzSession(std::span<const uint8_t> data)
{
    if (data.size() < 4)
        return 0;
    static SessionRig rig;

    nx::SessionPolicy pol;
    switch (data[0] % 4) {
      case 0: pol.format = nx::SessionFormat::Gzip; break;
      case 1: pol.format = nx::SessionFormat::Zlib; break;
      case 2: pol.format = nx::SessionFormat::RawDeflate; break;
      default: pol.format = nx::SessionFormat::E842; break;
    }
    pol.level = 1 + (data[0] / 4) % 9;
    pol.accelThresholdBytes = uint64_t{1} << (data[1] % 12);
    pol.faultRetries = data[2] % 3;
    pol.maxOutputBytes = kMaxOutput;
    pol.backoff.maxAttempts = 4;
    pol.backoff.initialDelay = std::chrono::microseconds(1);
    pol.backoff.maxDelay = std::chrono::microseconds(10);

    // The fault plan byte programs the shared injector for this exec:
    // low bits pick one-shot faults (count and condition code), the
    // high bit adds a periodic failure underneath.
    uint8_t plan = data[3];
    rig.injector.reset();
    if (plan & 0x0F) {
        nx::CondCode cc = (plan & 0x10) ? nx::CondCode::OutputOverflow
                                        : nx::CondCode::TranslationFault;
        rig.injector.failNext(plan & 0x0F, cc);
    }
    if (plan & 0x80)
        rig.injector.failEveryNth(2 + ((plan >> 5) & 0x3));

    auto payload = data.subspan(4);
    {
        nx::Session sess(rig.server, pol);

        // Whatever routing/fallback path the policy and faults force,
        // the produced stream must decode to the payload through the
        // pure software oracle...
        auto c = sess.compress(payload);
        FUZZ_CHECK(c.ok, "session compress failed");
        FUZZ_CHECK(c.backend == nx::Backend::Software || !pol.forceSoftware,
                   "forceSoftware violated");
        bool ok = false;
        auto decoded = oracleDecode(pol.format, c.data, &ok);
        FUZZ_CHECK(ok, "session stream rejected by the software oracle");
        FUZZ_CHECK(decoded.size() == payload.size() &&
                       std::equal(decoded.begin(), decoded.end(),
                                  payload.begin()),
                   "session stream does not decode to the payload");

        // ...and the session must round-trip its own stream, again
        // regardless of which backend each leg lands on.
        auto d = sess.decompress(c.data);
        FUZZ_CHECK(d.ok, "session decompress failed");
        FUZZ_CHECK(d.data.size() == payload.size() &&
                       std::equal(d.data.begin(), d.data.end(),
                                  payload.begin()),
                   "session round trip mismatch");

        auto st = sess.stats();
        FUZZ_CHECK(st.requests == 2, "request count wrong");
        FUZZ_CHECK(st.softwareRouted + st.accelRouted == st.requests,
                   "routing counters do not add up");
        FUZZ_CHECK(st.fallbacks <= st.accelRouted,
                   "more fallbacks than accelerator-routed requests");
        FUZZ_CHECK(st.pool.releases == st.pool.acquires,
                   "leaked pool buffers");
        sess.close();
    }
    // Disarm the injector so queued-but-unrelated work and the next
    // exec start from a clean fault state.
    rig.injector.reset();

    // Exercise the raw ticket discipline below the session layer once
    // per exec: paste directly, claim the ticket with wait(). The
    // not-accepted early-out and the wait() are exactly the
    // acquire/release pair nxown checks against the job_ticket
    // annotations.
    core::JobSpec spec;
    spec.kind = core::JobKind::Compress;
    spec.payload.assign(payload.begin(), payload.end());
    auto r = rig.server.submitWithRetry(spec, 0, pol.backoff);
    if (!r.accepted())
        return 0;
    core::AsyncJob job = rig.server.wait(r.ticket);
    FUZZ_CHECK(job.ticket == r.ticket,
               "wait() claimed a different ticket than it was given");
    return 0;
}

} // namespace fuzz
