#!/usr/bin/env sh
# Line-coverage gate for the session layer (the ci.sh coverage stage).
#
# Expects a build tree configured with the `coverage` preset
# (NXSIM_COVERAGE=ON) in which the `session`-labeled ctest suites have
# already run, so the .gcda counters exist. Runs gcov over
# src/core/session.cc and fails when the executed-line percentage
# falls below the checked-in minimum in tools/coverage_baseline.txt —
# a one-way ratchet: raise the baseline when coverage improves, never
# lower it to make a regression pass.
#
# Usage: tools/coverage_gate.sh [build-dir]   (default: build-coverage)
set -eu

cd "$(dirname "$0")/.."
build=${1:-build-coverage}
baseline_file=tools/coverage_baseline.txt

if ! command -v gcov >/dev/null 2>&1; then
    echo "coverage_gate: gcov not found; cannot gate" >&2
    exit 1
fi
if [ ! -f "$baseline_file" ]; then
    echo "coverage_gate: missing $baseline_file" >&2
    exit 1
fi

fail=0
# Baseline format: "<source-file> <min-percent>" per line, # comments.
grep -v '^[[:space:]]*#' "$baseline_file" | while read -r src min; do
    [ -n "$src" ] || continue
    name=$(basename "$src")
    gcda=$(find "$build" -name "$name.gcda" | head -n 1)
    if [ -z "$gcda" ]; then
        echo "coverage_gate: no $name.gcda under $build — did the" \
             "session-labeled tests run in the coverage build?" >&2
        exit 1
    fi
    # gcov prints "File '<path>'" then "Lines executed:P% of N"; take
    # the percentage reported for the gated source file itself. The
    # .gcda is passed directly: CMake's <src>.cc.o object naming breaks
    # gcov's -o <dir> <source> stem resolution.
    pct=$(gcov -n "$gcda" 2>/dev/null |
        awk -v f="$src" '
            /^File/ { cur = $0 }
            /^Lines executed/ && index(cur, f) {
                sub(/^Lines executed:/, "");
                sub(/% of.*/, "");
                print; exit
            }')
    if [ -z "$pct" ]; then
        echo "coverage_gate: gcov produced no line data for $src" >&2
        exit 1
    fi
    ok=$(awk -v p="$pct" -v m="$min" 'BEGIN { print (p + 0 >= m + 0) }')
    if [ "$ok" = 1 ]; then
        echo "coverage_gate: $src ${pct}% >= ${min}% minimum — OK"
    else
        echo "coverage_gate: $src ${pct}% is below the ${min}%" \
             "minimum in $baseline_file" >&2
        exit 1
    fi
done || fail=1
exit "$fail"
