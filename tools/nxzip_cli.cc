/**
 * @file
 * nxzip — a gzip-compatible command-line tool over the library.
 *
 * Usage:
 *   nxzip [-d] [-1|-6|-9] [-c chip] [-m fht|dht|auto|sw] <in> <out>
 *
 * Compresses <in> to a gzip member at <out> (or decompresses with
 * -d). The output interoperates with standard gzip/gunzip — the
 * integration tests exercise exactly that. `-m sw` forces the
 * software codec; other modes go through the accelerator model and
 * print the modelled device time.
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "core/nxzip.h"
#include "core/topology.h"
#include "util/checked.h"
#include "util/table.h"

namespace {

std::vector<uint8_t>
readFile(const std::string &path, bool &ok)
{
    std::ifstream in(path, std::ios::binary);
    ok = static_cast<bool>(in);
    return {std::istreambuf_iterator<char>(in),
            std::istreambuf_iterator<char>()};
}

bool
writeFile(const std::string &path, const std::vector<uint8_t> &data)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    // size_t -> streamsize is a sign change; make it checked rather
    // than hoping no one ever writes a >2^63-byte result.
    out.write(reinterpret_cast<const char *>(data.data()),
              nx::checked_cast<std::streamsize>(data.size()));
    return static_cast<bool>(out);
}

int
usage()
{
    std::fprintf(stderr,
        "usage: nxzip [-d] [-1|-6|-9] [-c power9|z15] "
        "[-m fht|dht|dht2|auto|sw] <in> <out>\n");
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    bool decompress = false;
    int level = 6;
    std::string chip = "power9";
    std::string mode = "auto";
    std::vector<std::string> files;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "-d") {
            decompress = true;
        } else if (arg.size() == 2 && arg[0] == '-' &&
                   arg[1] >= '0' && arg[1] <= '9') {
            level = arg[1] - '0';
        } else if (arg == "-c" && i + 1 < argc) {
            chip = argv[++i];
        } else if (arg == "-m" && i + 1 < argc) {
            mode = argv[++i];
        } else if (!arg.empty() && arg[0] == '-') {
            return usage();
        } else {
            files.push_back(arg);
        }
    }
    if (files.size() != 2)
        return usage();

    bool ok = false;
    auto input = readFile(files[0], ok);
    if (!ok) {
        std::fprintf(stderr, "nxzip: cannot read %s\n",
                     files[0].c_str());
        return 1;
    }

    core::ChipTopology topo;
    if (chip == "z15")
        topo = core::z15Chip();
    else if (chip == "power9")
        topo = core::power9Chip();
    else
        return usage();    // an unknown chip must not silently model POWER9
    nxzip::Options opts;
    opts.framing = nx::Framing::Gzip;
    opts.softwareLevel = level;
    if (mode == "fht")
        opts.mode = core::Mode::Fht;
    else if (mode == "dht")
        opts.mode = core::Mode::DhtSampled;
    else if (mode == "dht2")
        opts.mode = core::Mode::DhtTwoPass;
    else if (mode == "auto")
        opts.mode = core::Mode::Auto;
    else if (mode == "sw")
        opts.minAccelBytes = UINT64_MAX;    // everything on the core
    else
        return usage();

    nxzip::Context ctx(topo, opts);
    nxzip::Result res = decompress ? ctx.decompress(input)
                                   : ctx.compress(input);
    if (!res.ok) {
        std::fprintf(stderr, "nxzip: %s\n", res.error.c_str());
        return 1;
    }
    if (!writeFile(files[1], res.data)) {
        std::fprintf(stderr, "nxzip: cannot write %s\n",
                     files[1].c_str());
        return 1;
    }

    std::fprintf(stderr,
        "nxzip: %s %zu -> %zu bytes (%s path, %s, %.1f us)\n",
        decompress ? "decompressed" : "compressed", input.size(),
        res.data.size(),
        res.path == nxzip::Path::Accelerator ? "accelerator"
                                             : "software",
        util::Table::fmtRate(res.seconds > 0
            ? static_cast<double>(input.size()) / res.seconds
            : 0).c_str(),
        res.seconds * 1e6);
    return 0;
}
