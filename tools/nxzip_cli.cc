/**
 * @file
 * nxzip — a gzip-compatible command-line tool over the library.
 *
 * Usage:
 *   nxzip [-d] [-j N] [-1|-6|-9] [-c chip] [-m fht|dht|auto|sw] <in> <out>
 *
 * Compresses <in> to a gzip member at <out> (or decompresses with
 * -d). The output interoperates with standard gzip/gunzip — the
 * integration tests exercise exactly that. `-m sw` forces the
 * software codec; other modes go through the accelerator model and
 * print the modelled device time.
 *
 * `-j N` routes the request through core::JobServer with N engine
 * workers: the input is split into ~1 MiB chunks (compress) or gzip
 * members (decompress), each chunk dispatched asynchronously to the
 * pool, and the members reassembled in paste order — the pigz shape.
 * gunzip accepts the resulting multi-member concatenation.
 */

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <span>
#include <string>
#include <vector>

#include "core/job_server.h"
#include "core/nxzip.h"
#include "core/topology.h"
#include "deflate/gzip_stream.h"
#include "util/checked.h"
#include "util/table.h"

namespace {

std::vector<uint8_t>
readFile(const std::string &path, bool &ok)
{
    std::ifstream in(path, std::ios::binary);
    ok = static_cast<bool>(in);
    return {std::istreambuf_iterator<char>(in),
            std::istreambuf_iterator<char>()};
}

bool
writeFile(const std::string &path, const std::vector<uint8_t> &data)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    // size_t -> streamsize is a sign change; make it checked rather
    // than hoping no one ever writes a >2^63-byte result.
    out.write(reinterpret_cast<const char *>(data.data()),
              nx::checked_cast<std::streamsize>(data.size()));
    return static_cast<bool>(out);
}

int
usage()
{
    std::fprintf(stderr,
        "usage: nxzip [-d] [-j N] [-1|-6|-9] [-c power9|z15] "
        "[-m fht|dht|dht2|auto|sw] <in> <out>\n");
    return 2;
}

/**
 * The -j path: chunk the request, paste every chunk into the
 * JobServer's windows with the RC-busy retry loop, reassemble in paste
 * order, and report the modelled parallel time (busiest engine) plus
 * the backpressure the run generated.
 */
int
runParallel(bool decompress, int workers, const core::ChipTopology &topo,
            core::Mode mode, const std::vector<uint8_t> &input,
            const std::string &outPath)
{
    std::vector<core::JobSpec> specs;
    if (decompress) {
        // Split on gzip member boundaries; each member inflates
        // independently on its own engine. (The boundary scan inflates
        // once on the host; the engines then do the modelled work.)
        size_t off = 0;
        while (off < input.size()) {
            auto m = deflate::gzipUnwrap(
                std::span<const uint8_t>(input).subspan(off));
            if (!m.ok) {
                std::fprintf(stderr, "nxzip: %s\n", m.error.c_str());
                return 1;
            }
            core::JobSpec s;
            s.kind = core::JobKind::Decompress;
            s.payload.assign(input.begin() +
                                 nx::checked_cast<std::ptrdiff_t>(off),
                             input.begin() +
                                 nx::checked_cast<std::ptrdiff_t>(
                                     off + m.memberBytes));
            specs.push_back(std::move(s));
            off += m.memberBytes;
        }
        if (specs.empty()) {
            std::fprintf(stderr, "nxzip: empty gzip input\n");
            return 1;
        }
    } else {
        const size_t kChunk = size_t{1} << 20;
        size_t off = 0;
        do {    // do/while so empty input still emits one member
            size_t n = std::min(kChunk, input.size() - off);
            core::JobSpec s;
            s.kind = core::JobKind::Compress;
            s.mode = mode;
            s.payload.assign(input.begin() +
                                 nx::checked_cast<std::ptrdiff_t>(off),
                             input.begin() +
                                 nx::checked_cast<std::ptrdiff_t>(off + n));
            specs.push_back(std::move(s));
            off += n;
        } while (off < input.size());
    }

    core::JobServerConfig jcfg;
    jcfg.workers = workers;
    core::JobServer srv(topo.accel, jcfg);

    core::BackoffPolicy patient;    // a CLI run never gives up
    patient.maxAttempts = 1 << 20;
    std::vector<core::Ticket> tickets;
    for (size_t i = 0; i < specs.size(); ++i) {
        auto r = srv.submitWithRetry(
            specs[i],
            nx::checked_cast<int>(
                i % nx::checked_cast<size_t>(srv.windowCount())),
            patient);
        if (!r.accepted()) {
            std::fprintf(stderr, "nxzip: submit rejected (%s)\n",
                         nx::toString(r.status));
            return 1;
        }
        tickets.push_back(r.ticket);
    }

    std::vector<uint8_t> out;
    for (size_t i = 0; i < tickets.size(); ++i) {
        auto job = srv.wait(tickets[i]);
        if (!job.result.ok()) {
            std::fprintf(stderr, "nxzip: chunk %zu failed (%s)\n", i,
                         nx::toString(job.result.csb.cc));
            return 1;
        }
        out.insert(out.end(), job.result.data.begin(),
                   job.result.data.end());
    }

    auto st = srv.stats();
    srv.drainAndStop();
    if (!writeFile(outPath, out)) {
        std::fprintf(stderr, "nxzip: cannot write %s\n", outPath.c_str());
        return 1;
    }
    double seconds = st.modelledSeconds(topo.accel);
    std::fprintf(stderr,
        "nxzip: %s %zu -> %zu bytes (parallel x%d, %zu jobs, "
        "%llu busy-rejects, %s modelled, %.1f us)\n",
        decompress ? "decompressed" : "compressed", input.size(),
        out.size(), srv.workerCount(), specs.size(),
        static_cast<unsigned long long>(st.busyRejects),
        util::Table::fmtRate(seconds > 0
            ? static_cast<double>(input.size()) / seconds
            : 0).c_str(),
        seconds * 1e6);
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    bool decompress = false;
    int level = 6;
    int jobs = 0;
    std::string chip = "power9";
    std::string mode = "auto";
    std::vector<std::string> files;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "-d") {
            decompress = true;
        } else if (arg.size() == 2 && arg[0] == '-' &&
                   arg[1] >= '0' && arg[1] <= '9') {
            level = arg[1] - '0';
        } else if (arg == "-c" && i + 1 < argc) {
            chip = argv[++i];
        } else if (arg == "-m" && i + 1 < argc) {
            mode = argv[++i];
        } else if (arg == "-j" && i + 1 < argc) {
            jobs = std::atoi(argv[++i]);    // tools/ scope; 0 on junk
            if (jobs < 1)
                return usage();
        } else if (!arg.empty() && arg[0] == '-') {
            return usage();
        } else {
            files.push_back(arg);
        }
    }
    if (files.size() != 2)
        return usage();

    bool ok = false;
    auto input = readFile(files[0], ok);
    if (!ok) {
        std::fprintf(stderr, "nxzip: cannot read %s\n",
                     files[0].c_str());
        return 1;
    }

    core::ChipTopology topo;
    if (chip == "z15")
        topo = core::z15Chip();
    else if (chip == "power9")
        topo = core::power9Chip();
    else
        return usage();    // an unknown chip must not silently model POWER9
    nxzip::Options opts;
    opts.framing = nx::Framing::Gzip;
    opts.softwareLevel = level;
    if (mode == "fht")
        opts.mode = core::Mode::Fht;
    else if (mode == "dht")
        opts.mode = core::Mode::DhtSampled;
    else if (mode == "dht2")
        opts.mode = core::Mode::DhtTwoPass;
    else if (mode == "auto")
        opts.mode = core::Mode::Auto;
    else if (mode == "sw")
        opts.minAccelBytes = UINT64_MAX;    // everything on the core
    else
        return usage();

    if (jobs > 0) {
        if (mode == "sw") {
            std::fprintf(stderr,
                         "nxzip: -j needs the accelerator (-m sw "
                         "runs on the core)\n");
            return usage();
        }
        return runParallel(decompress, jobs, topo, opts.mode, input,
                           files[1]);
    }

    nxzip::Context ctx(topo, opts);
    nxzip::Result res = decompress ? ctx.decompress(input)
                                   : ctx.compress(input);
    if (!res.ok) {
        std::fprintf(stderr, "nxzip: %s\n", res.error.c_str());
        return 1;
    }
    if (!writeFile(files[1], res.data)) {
        std::fprintf(stderr, "nxzip: cannot write %s\n",
                     files[1].c_str());
        return 1;
    }

    std::fprintf(stderr,
        "nxzip: %s %zu -> %zu bytes (%s path, %s, %.1f us)\n",
        decompress ? "decompressed" : "compressed", input.size(),
        res.data.size(),
        res.path == nxzip::Path::Accelerator ? "accelerator"
                                             : "software",
        util::Table::fmtRate(res.seconds > 0
            ? static_cast<double>(input.size()) / res.seconds
            : 0).c_str(),
        res.seconds * 1e6);
    return 0;
}
