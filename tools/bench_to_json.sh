#!/usr/bin/env sh
# Regenerate a repo-root BENCH_*.json from a serving bench's --json
# mode, with a schema sanity gate between the run and the move so a
# broken emitter can never clobber the checked-in trajectory file.
#
# Currently wired for bench_l1_serving; the shape generalises: every
# serving-class bench emits one schema-versioned JSON at the repo root
# (see DESIGN.md, "BENCH_*.json trajectory convention").
#
# Usage: tools/bench_to_json.sh [--smoke] [build-dir]
#   --smoke     run the scaled-down CI sweep (default: full sweep)
#   build-dir   build tree holding bench_l1_serving (default: first of
#               build, build-ci that has it)
set -eu

cd "$(dirname "$0")/.."

mode=""
build=""
for a in "$@"; do
    case "$a" in
      --smoke) mode="--smoke" ;;
      *) build="$a" ;;
    esac
done
if [ -z "$build" ]; then
    for d in build build-ci; do
        if [ -x "$d/bench/bench_l1_serving" ]; then
            build=$d
            break
        fi
    done
fi
bin="$build/bench/bench_l1_serving"
if [ ! -x "$bin" ]; then
    echo "bench_to_json: $bin not built" >&2
    exit 2
fi

out=BENCH_l1_serving.json
tmp=$(mktemp "${TMPDIR:-/tmp}/bench_l1.XXXXXX")
trap 'rm -f "$tmp"' EXIT

# shellcheck disable=SC2086  # $mode is intentionally word-split
"$bin" $mode --json > "$tmp"

# Schema gate: the keys the golden test and downstream diffs key on
# must be present before the file is allowed to land at the root.
for key in '"schema_version": 1' '"bench": "bench_l1_serving"' \
           '"scenarios"' '"schedule_digest"' '"p999"' \
           '"fairness_min_over_max"'; do
    if ! grep -q "$key" "$tmp"; then
        echo "bench_to_json: emitted JSON is missing $key — refusing" \
             "to update $out" >&2
        exit 1
    fi
done

mv "$tmp" "$out"
trap - EXIT
echo "bench_to_json: wrote $out ($(wc -c < "$out") bytes," \
     "$(grep -c '"name"' "$out") scenarios)"
