/**
 * @file
 * nxdeps — the include-graph / architecture-conformance checker.
 *
 * nxlint (tools/nxlint) judges files one at a time; nxdeps is the
 * flow-aware half of the static-analysis stack: it parses every
 * `#include` in the tree, resolves each one to the project file it
 * names, and checks the resulting graph against the architecture the
 * modules are supposed to form. The layer order is declared in ONE
 * place — the table behind layers() in nxdeps.cc — and everything
 * else (violation messages, the --dot diagram, the DESIGN.md figure)
 * derives from it:
 *
 *   util < sim < {deflate, e842} < nx < core < workloads
 *        < {tools, fuzz, bench, examples} < tests
 *
 * Modules inside one brace group are peers: neither may include the
 * other. Rules: `layer-order` (no include from a lower layer into a
 * higher one, no peer cross-includes), `include-cycle` (file-level
 * cycles), `module-cycle` (cycles in the condensed module graph),
 * `cc-include` (including a .cc/.cpp translation unit), and
 * `private-include` (reaching into another module's `internal/`
 * directory or `*_internal.h` headers instead of its public surface).
 *
 * Findings print as `file:line: rule-id: message` and can be
 * suppressed where they fire with
 *
 *     // nxdeps: allow(rule-id): why this instance is fine
 *
 * on the include's line, on a comment-only line directly above, or at
 * file scope in the leading comment before any code. The
 * justification is mandatory; a bare allow() is itself a finding
 * (`bare-allow`), exactly as in nxlint.
 */

#ifndef NXSIM_NXDEPS_NXDEPS_H
#define NXSIM_NXDEPS_NXDEPS_H

#include <string>
#include <string_view>
#include <vector>

#include "common/diag.h"
#include "common/fileset.h"

namespace nxdeps {

/** One diagnostic (the shared analyzer-family shape). */
using Finding = nxcommon::Finding;

/** Rule metadata for --list-rules and the docs. */
using RuleInfo = nxcommon::RuleInfo;

/** One row of the declared layering (the single source of truth). */
struct LayerInfo
{
    std::string_view module;   ///< e.g. "deflate"
    int rank = 0;              ///< low includes nothing above it
};

/** One input file: tree-relative path plus its full contents. */
using SourceFile = nxcommon::SourceFile;

/** Everything one run produces. */
struct Analysis
{
    std::vector<Finding> findings;

    /** GraphViz DOT of the module graph (layers as ranks). */
    std::string moduleDot;
};

/** All rules, in the order they are checked. */
const std::vector<RuleInfo> &rules();

/** The declared layer order, lowest first. */
const std::vector<LayerInfo> &layers();

/**
 * Module owning @p path: the directory under src/ ("src/nx/crb.h" ->
 * "nx"), or the top-level tree for everything else ("tools/...",
 * "tests/..."). Empty when the path has no module prefix.
 */
[[nodiscard]] std::string moduleOf(std::string_view path);

/**
 * Analyze an in-memory tree (fixture trees in tests, or the real one
 * loaded by analyzeTree). Paths must be tree-relative, '/'-separated.
 */
[[nodiscard]] Analysis analyzeFiles(const std::vector<SourceFile> &files);

/**
 * Load every *.h / *.hpp / *.cc / *.cpp under @p root's src/, tools/,
 * fuzz/, bench/, tests/ and examples/ subtrees (or @p root itself when
 * none of those exist) and analyze them. Unreadable files produce an
 * "io-error" finding.
 */
[[nodiscard]] Analysis analyzeTree(const std::string &root);

/** Render a finding as `file:line: rule-id: message`. */
std::string format(const Finding &f);

} // namespace nxdeps

#endif // NXSIM_NXDEPS_NXDEPS_H
