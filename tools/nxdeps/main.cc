/**
 * @file
 * nxdeps CLI — a thin ToolSpec over the shared analyzer driver
 * (tools/common/driver.h owns argument parsing, --format=json, file
 * lists and the 0/1/2 exit-code convention).
 *
 * Usage:
 *   nxdeps [--list-rules] [--layers] [--dot] [--format=text|json]
 *          [--root=<dir>] [<repo-root> | <file>...]
 *
 * nxdeps is a whole-tree tool: its checks need the global include
 * graph, so explicit file arguments analyze the tree at --root
 * (default ".") and report only findings landing in those files.
 * `--dot` prints the module graph as GraphViz DOT instead of findings
 * — that output is what the DESIGN.md architecture figure is
 * generated from. `--layers` prints the declared layer table.
 */

#include <cstdio>
#include <string>

#include "common/driver.h"
#include "nxdeps/nxdeps.h"

int
main(int argc, char **argv)
{
    nxcommon::ToolSpec spec;
    spec.name = "nxdeps";
    spec.usageArgs =
        "[--layers] [--dot] [--root=<dir>] [<repo-root> | <file>...]";
    spec.rules = &nxdeps::rules();
    spec.analyzeTree = [](const std::string &root) {
        return nxdeps::analyzeTree(root).findings;
    };
    spec.modes.emplace_back("--dot", [](const std::string &root) {
        std::printf("%s", nxdeps::analyzeTree(root).moduleDot.c_str());
        return 0;
    });
    spec.modes.emplace_back("--layers", [](const std::string &) {
        for (const nxdeps::LayerInfo &l : nxdeps::layers())
            std::printf("%d  %s\n", l.rank,
                        std::string(l.module).c_str());
        return 0;
    });
    return nxcommon::runTool(argc, argv, spec);
}
