/**
 * @file
 * nxdeps CLI.
 *
 * Usage:
 *   nxdeps [--list-rules] [--layers] [--dot] [<repo-root>]
 *
 * Analyzes the include graph of the tree rooted at <repo-root>
 * (default: the current directory). `--dot` prints the module graph
 * as GraphViz DOT instead of findings — that output is what the
 * DESIGN.md architecture figure is generated from. Exit status:
 * 0 clean, 1 findings, 2 usage or I/O error.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "nxdeps/nxdeps.h"

namespace {

int
listRules()
{
    for (const nxdeps::RuleInfo &r : nxdeps::rules())
        std::printf("%-16s %s\n", std::string(r.id).c_str(),
                    std::string(r.summary).c_str());
    return 0;
}

int
listLayers()
{
    for (const nxdeps::LayerInfo &l : nxdeps::layers())
        std::printf("%d  %s\n", l.rank, std::string(l.module).c_str());
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    bool dot = false;
    std::vector<std::string> roots;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--list-rules")
            return listRules();
        if (arg == "--layers")
            return listLayers();
        if (arg == "--dot") {
            dot = true;
            continue;
        }
        if (arg == "--help" || arg == "-h") {
            std::printf("usage: nxdeps [--list-rules] [--layers] [--dot] "
                        "[<repo-root>]\n");
            return 0;
        }
        if (!arg.empty() && arg[0] == '-') {
            std::fprintf(stderr, "nxdeps: unknown option %s\n",
                         arg.c_str());
            return 2;
        }
        roots.push_back(arg);
    }
    if (roots.size() > 1) {
        std::fprintf(stderr, "nxdeps: expected at most one root\n");
        return 2;
    }
    std::string root = roots.empty() ? "." : roots.front();

    nxdeps::Analysis an = nxdeps::analyzeTree(root);
    if (dot) {
        std::printf("%s", an.moduleDot.c_str());
        return 0;
    }

    bool ioError = false;
    for (const nxdeps::Finding &f : an.findings) {
        std::printf("%s\n", nxdeps::format(f).c_str());
        ioError = ioError || f.rule == "io-error";
    }
    if (ioError)
        return 2;
    if (!an.findings.empty()) {
        std::fprintf(stderr, "nxdeps: %zu finding%s\n",
                     an.findings.size(),
                     an.findings.size() == 1 ? "" : "s");
        return 1;
    }
    return 0;
}
