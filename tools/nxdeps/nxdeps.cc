/**
 * @file
 * nxdeps implementation: a line-level scanner (comments and string
 * literals stripped, so a quoted `#include` never counts), an include
 * resolver that mirrors the project's CMake include roots, and graph
 * checks over the result. Zero dependencies beyond the standard
 * library, same as nxlint, so it runs on every ctest invocation.
 */

#include "nxdeps/nxdeps.h"

#include <algorithm>
#include <cctype>
#include <map>
#include <set>
#include <sstream>

#include "common/allow.h"
#include "common/fileset.h"
#include "common/lexer.h"

namespace nxdeps {

namespace {

// ---------------------------------------------------------------------------
// Declared architecture — THE single place the layer order lives.
// ---------------------------------------------------------------------------

const std::vector<LayerInfo> kLayers = {
    {"util", 0},                     // leaf helpers; includes nothing above
    {"sim", 1},                      // ticks/events/memory timing
    {"deflate", 2}, {"e842", 2},     // codecs — peers, mutually blind
    {"nx", 3},                       // modelled engines
    {"core", 4},                     // device + dispatch layer
    {"workloads", 5},                // corpus/workload generators
    {"load", 6},                     // serving load harness
    {"tools", 7}, {"fuzz", 7},       // harnesses — peers
    {"bench", 7}, {"examples", 7},
    {"tests", 8},                    // may see everything below
};

const std::vector<RuleInfo> kRules = {
    {"layer-order",
     "a module may include only modules at or below its declared layer; "
     "same-layer peers (deflate/e842, tools/fuzz/bench/examples) are "
     "mutually off limits"},
    {"include-cycle", "no cycles in the file-level include graph"},
    {"module-cycle", "no cycles in the condensed module graph"},
    {"cc-include", "never include a .cc/.cpp translation unit"},
    {"private-include",
     "another module's internal/ directory and *_internal.h headers are "
     "off limits; go through its public headers"},
    {"unknown-module",
     "every directory under src/ must appear in the declared layer "
     "table; an unlisted module would be silently unchecked"},
    {"bare-allow",
     "nxdeps suppressions must name a known rule and justify it: "
     "// nxdeps: allow(<rule>): <why>"},
    {"stale-allow",
     "an allow() that no longer suppresses any finding is itself a "
     "finding; delete it"},
    {"io-error", "file could not be read"},
};

int
rankOf(std::string_view module)
{
    for (const LayerInfo &l : kLayers)
        if (l.module == module)
            return l.rank;
    return -1;    // unknown module: layering not declared for it
}

// ---------------------------------------------------------------------------
// Line scanner
// ---------------------------------------------------------------------------

std::string_view
trim(std::string_view v)
{
    while (!v.empty() &&
           std::isspace(static_cast<unsigned char>(v.front())))
        v.remove_prefix(1);
    while (!v.empty() && std::isspace(static_cast<unsigned char>(v.back())))
        v.remove_suffix(1);
    return v;
}

/**
 * Split a file into per-line code streams (comments and block comments
 * stripped). String/char literals stay in the code stream — the
 * include target itself is a quoted string — but are tracked so a `//`
 * or a quote inside one never opens a comment. Directives are
 * recognized only at line start, so a directive quoted inside code
 * never parses as one. (Suppression comments are NOT parsed here: the
 * shared token-based collector in tools/common/allow.h owns that.)
 */
std::vector<std::string>
scanLines(std::string_view content)
{
    std::vector<std::string> lines;
    std::string cur;
    bool inBlock = false;
    bool inLine = false;
    bool inStr = false;
    bool inChr = false;
    for (size_t i = 0; i < content.size(); ++i) {
        char c = content[i];
        char next = i + 1 < content.size() ? content[i + 1] : '\0';
        if (c == '\n') {
            lines.push_back(std::move(cur));
            cur.clear();
            inLine = false;
            inStr = false;    // unterminated literal: keep lines sane
            inChr = false;
            continue;
        }
        if (inLine) {
            // comment text: ignored
        } else if (inBlock) {
            if (c == '*' && next == '/') {
                inBlock = false;
                ++i;
            }
        } else if (inStr) {
            cur += c;
            if (c == '\\' && next != '\0') {
                cur += next;
                ++i;
            } else if (c == '"') {
                inStr = false;
            }
        } else if (inChr) {
            cur += c;
            if (c == '\\' && next != '\0') {
                cur += next;
                ++i;
            } else if (c == '\'') {
                inChr = false;
            }
        } else if (c == '/' && next == '/') {
            inLine = true;
            ++i;
        } else if (c == '/' && next == '*') {
            inBlock = true;
            ++i;
        } else if (c == '"') {
            inStr = true;
            cur += c;
        } else if (c == '\'') {
            inChr = true;
            cur += c;
        } else {
            cur += c;
        }
    }
    lines.push_back(std::move(cur));
    return lines;
}

struct Include
{
    std::string target;   ///< the quoted path, verbatim
    int line = 0;         ///< 1-based
};

/**
 * Parse one file's quoted includes (string-literal stripping above
 * leaves the directive's own quotes in the code stream).
 */
std::vector<Include>
scanIncludes(std::string_view content)
{
    std::vector<Include> out;
    std::vector<std::string> lines = scanLines(content);
    for (size_t n = 0; n < lines.size(); ++n) {
        int lineNo = static_cast<int>(n) + 1;
        std::string_view code = trim(lines[n]);
        if (code.rfind("#", 0) != 0)
            continue;
        std::string_view rest = trim(code.substr(1));
        if (rest.rfind("include", 0) != 0)
            continue;
        rest = trim(rest.substr(7));
        if (rest.empty() || rest.front() != '"')
            continue;
        size_t close = rest.find('"', 1);
        if (close != std::string_view::npos)
            out.push_back({std::string(rest.substr(1, close - 1)), lineNo});
    }
    return out;
}

// ---------------------------------------------------------------------------
// Path handling and include resolution
// ---------------------------------------------------------------------------

/** Lexically normalize a '/'-separated path ("a/./b/../c" -> "a/c"). */
std::string
normalize(std::string_view p)
{
    std::vector<std::string> parts;
    size_t i = 0;
    while (i <= p.size()) {
        size_t j = p.find('/', i);
        if (j == std::string_view::npos)
            j = p.size();
        std::string_view part = p.substr(i, j - i);
        if (part == "..") {
            if (!parts.empty())
                parts.pop_back();
        } else if (!part.empty() && part != ".") {
            parts.emplace_back(part);
        }
        i = j + 1;
        if (j == p.size())
            break;
    }
    std::string out;
    for (const std::string &part : parts) {
        if (!out.empty())
            out += '/';
        out += part;
    }
    return out;
}

std::string
dirOf(std::string_view path)
{
    size_t slash = path.rfind('/');
    return slash == std::string_view::npos
               ? std::string{}
               : std::string(path.substr(0, slash));
}

/**
 * Resolve a quoted include against the project include roots, in the
 * order the build exposes them: the includer's own directory (bench
 * and fuzz use sibling includes), then src/, then the harness roots.
 * Returns npos for anything that is not a project file (system or
 * third-party headers).
 */
size_t
resolve(const std::map<std::string, size_t, std::less<>> &byPath,
        std::string_view includerDir, std::string_view target)
{
    std::vector<std::string> candidates;
    if (!includerDir.empty())
        candidates.push_back(normalize(std::string(includerDir) + "/" +
                                       std::string(target)));
    for (std::string_view root : {"src/", "tools/", "fuzz/", "bench/"})
        candidates.push_back(normalize(std::string(root) +
                                       std::string(target)));
    candidates.push_back(normalize(target));
    for (const std::string &c : candidates) {
        auto it = byPath.find(c);
        if (it != byPath.end())
            return it->second;
    }
    return static_cast<size_t>(-1);
}

bool
isPrivateHeader(std::string_view path)
{
    if (path.find("/internal/") != std::string_view::npos)
        return true;
    size_t slash = path.rfind('/');
    std::string_view name =
        slash == std::string_view::npos ? path : path.substr(slash + 1);
    size_t dot = name.rfind('.');
    std::string_view stem = dot == std::string_view::npos
                                ? name
                                : name.substr(0, dot);
    return stem.ends_with("_internal");
}

bool
isTranslationUnit(std::string_view path)
{
    return path.ends_with(".cc") || path.ends_with(".cpp");
}

// ---------------------------------------------------------------------------
// Cycle detection (shared by the file and module graphs)
// ---------------------------------------------------------------------------

struct Edge
{
    size_t to;
    size_t fileIdx;   ///< file carrying the representative include
    int line;
};

/**
 * DFS three-color cycle scan. For every back edge, reports the cycle
 * as the chain of node names from the revisited node to the top of
 * the stack. Nodes are visited in index order, so reports are
 * deterministic for a sorted input.
 */
void
findCycles(const std::vector<std::vector<Edge>> &adj,
           const std::vector<std::string> &names,
           const std::vector<SourceFile> &files, std::string_view rule,
           std::string_view what, std::vector<Finding> &out)
{
    enum class Color { White, Grey, Black };
    std::vector<Color> color(adj.size(), Color::White);
    std::vector<size_t> stack;

    struct Frame
    {
        size_t node;
        size_t next = 0;
    };

    for (size_t start = 0; start < adj.size(); ++start) {
        if (color[start] != Color::White)
            continue;
        std::vector<Frame> frames{{start}};
        color[start] = Color::Grey;
        stack.push_back(start);
        while (!frames.empty()) {
            Frame &f = frames.back();
            if (f.next >= adj[f.node].size()) {
                color[f.node] = Color::Black;
                stack.pop_back();
                frames.pop_back();
                continue;
            }
            const Edge &e = adj[f.node][f.next++];
            if (color[e.to] == Color::Grey) {
                // Back edge: the cycle is stack[pos..] plus this edge.
                auto pos = std::find(stack.begin(), stack.end(), e.to);
                std::string chain;
                for (auto it = pos; it != stack.end(); ++it)
                    chain += names[*it] + " -> ";
                chain += names[e.to];
                out.push_back(
                    {files[e.fileIdx].path, e.line, std::string(rule),
                     std::string(what) + " cycle: " + chain});
            } else if (color[e.to] == Color::White) {
                color[e.to] = Color::Grey;
                stack.push_back(e.to);
                frames.push_back({e.to});
            }
        }
    }
}

} // namespace

// ---------------------------------------------------------------------------
// Public API
// ---------------------------------------------------------------------------

const std::vector<RuleInfo> &
rules()
{
    return kRules;
}

const std::vector<LayerInfo> &
layers()
{
    return kLayers;
}

std::string
moduleOf(std::string_view path)
{
    std::string norm = normalize(path);
    size_t slash = norm.find('/');
    if (slash == std::string::npos)
        return {};
    std::string first = norm.substr(0, slash);
    if (first != "src")
        return first;
    size_t slash2 = norm.find('/', slash + 1);
    if (slash2 == std::string::npos)
        return {};
    return norm.substr(slash + 1, slash2 - slash - 1);
}

Analysis
analyzeFiles(const std::vector<SourceFile> &files)
{
    Analysis an;

    // Sorted index so every downstream report is deterministic.
    std::vector<size_t> order(files.size());
    for (size_t i = 0; i < order.size(); ++i)
        order[i] = i;
    std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
        return files[a].path < files[b].path;
    });

    std::map<std::string, size_t, std::less<>> byPath;
    for (size_t i : order)
        byPath.emplace(normalize(files[i].path), i);

    std::vector<std::vector<Include>> scanned(files.size());
    std::vector<std::vector<nxcommon::Allow>> allows(files.size());
    std::vector<Finding> raw;
    for (size_t i : order) {
        scanned[i] = scanIncludes(files[i].content);
        // Suppressions come from the shared token-based collector so
        // the grammar (and bare-allow / stale-allow semantics) is
        // byte-for-byte the same across all four analyzers.
        std::vector<nxlex::Token> toks =
            nxlex::Lexer(files[i].content).run();
        allows[i] = nxcommon::collectAllows(toks, "nxdeps", kRules, raw,
                                            files[i].path);
    }

    // Every directory under src/ must be in the layer table, else its
    // files would sail through every layering check unexamined. One
    // finding per unknown module, on its first file in path order.
    std::set<std::string> unknownReported;
    for (size_t i : order) {
        std::string norm = normalize(files[i].path);
        if (norm.rfind("src/", 0) != 0)
            continue;
        std::string mod = moduleOf(norm);
        if (mod.empty() || rankOf(mod) >= 0 ||
            !unknownReported.insert(mod).second)
            continue;
        raw.push_back({files[i].path, 1, "unknown-module",
                       "module '" + mod + "' (src/" + mod +
                           ") is not in the declared layer table; add "
                           "it to kLayers with an explicit rank"});
    }

    // File-level include graph plus the condensed module graph.
    std::vector<std::vector<Edge>> fileAdj(files.size());
    std::map<std::string, size_t, std::less<>> moduleIdx;
    std::vector<std::string> moduleNames;
    std::map<std::pair<size_t, size_t>, Edge> moduleEdges;

    auto internModule = [&](const std::string &m) {
        auto it = moduleIdx.find(m);
        if (it != moduleIdx.end())
            return it->second;
        size_t idx = moduleNames.size();
        moduleIdx.emplace(m, idx);
        moduleNames.push_back(m);
        return idx;
    };

    for (size_t i : order) {
        const SourceFile &from = files[i];
        std::string fromMod = moduleOf(from.path);
        int fromRank = rankOf(fromMod);
        std::string fromDir = dirOf(normalize(from.path));
        for (const Include &inc : scanned[i]) {
            size_t to = resolve(byPath, fromDir, inc.target);
            if (to == static_cast<size_t>(-1))
                continue;    // not a project file
            const SourceFile &target = files[to];
            std::string toMod = moduleOf(target.path);
            int toRank = rankOf(toMod);

            fileAdj[i].push_back({to, i, inc.line});
            if (!fromMod.empty() && !toMod.empty() && fromMod != toMod) {
                size_t a = internModule(fromMod);
                size_t b = internModule(toMod);
                moduleEdges.emplace(std::make_pair(a, b),
                                    Edge{b, i, inc.line});
            }

            if (isTranslationUnit(target.path)) {
                raw.push_back(
                    {from.path, inc.line, "cc-include",
                     "includes translation unit " + target.path +
                         "; include the module's header instead"});
            }
            if (fromMod != toMod && isPrivateHeader(target.path)) {
                raw.push_back(
                    {from.path, inc.line, "private-include",
                     target.path + " is private to module '" + toMod +
                         "'; include its public headers instead"});
            }
            if (fromMod != toMod && fromRank >= 0 && toRank >= 0) {
                if (toRank > fromRank) {
                    raw.push_back(
                        {from.path, inc.line, "layer-order",
                         "module '" + fromMod + "' (layer " +
                             std::to_string(fromRank) + ") includes " +
                             target.path + " from module '" + toMod +
                             "' (layer " + std::to_string(toRank) +
                             "); the declared order puts " + fromMod +
                             " below " + toMod});
                } else if (toRank == fromRank) {
                    raw.push_back(
                        {from.path, inc.line, "layer-order",
                         "modules '" + fromMod + "' and '" + toMod +
                             "' are peers at layer " +
                             std::to_string(fromRank) +
                             "; neither may include the other"});
                }
            }
        }
    }

    std::vector<std::string> fileNames(files.size());
    for (size_t i = 0; i < files.size(); ++i)
        fileNames[i] = files[i].path;
    findCycles(fileAdj, fileNames, files, "include-cycle", "include",
               raw);

    std::vector<std::vector<Edge>> modAdj(moduleNames.size());
    for (const auto &kv : moduleEdges)
        modAdj[kv.first.first].push_back(kv.second);
    findCycles(modAdj, moduleNames, files, "module-cycle", "module", raw);

    // Apply suppressions per owning file (the shared post-pass also
    // reports unused allows as stale-allow; bare-allow findings are
    // never suppressible).
    std::vector<std::vector<Finding>> perFile(files.size());
    for (Finding &f : raw) {
        auto it = byPath.find(normalize(f.file));
        if (it == byPath.end())
            an.findings.push_back(std::move(f));
        else
            perFile[it->second].push_back(std::move(f));
    }
    for (size_t i : order)
        nxcommon::applyAllows(std::move(perFile[i]), allows[i],
                              files[i].path, an.findings);
    nxcommon::sortFindings(an.findings);

    // Module graph as DOT: declared layers become same-rank rows, so
    // `dot` draws the architecture diagram DESIGN.md embeds.
    std::ostringstream dot;
    dot << "digraph nxdeps_modules {\n"
        << "  rankdir=BT;\n"
        << "  node [shape=box];\n";
    std::map<int, std::vector<std::string>> byRank;
    for (const std::string &m : moduleNames) {
        int r = rankOf(m);
        if (r >= 0)
            byRank[r].push_back(m);
    }
    for (const auto &kv : byRank) {
        dot << "  { rank=same;";
        for (const std::string &m : kv.second)
            dot << " \"" << m << "\";";
        dot << " }  // layer " << kv.first << "\n";
    }
    for (const auto &kv : moduleEdges)
        dot << "  \"" << moduleNames[kv.first.first] << "\" -> \""
            << moduleNames[kv.first.second] << "\";\n";
    dot << "}\n";
    an.moduleDot = dot.str();
    return an;
}

Analysis
analyzeTree(const std::string &root)
{
    nxcommon::TreeLoad tree = nxcommon::loadTree(
        root, {"src", "tools", "fuzz", "bench", "tests", "examples"});
    Analysis an = analyzeFiles(tree.files);
    an.findings.insert(an.findings.begin(), tree.ioErrors.begin(),
                       tree.ioErrors.end());
    return an;
}

std::string
format(const Finding &f)
{
    return nxcommon::formatText(f);
}

} // namespace nxdeps
