/**
 * @file
 * Shared analyzer CLI. See driver.h for the contract.
 */

#include "common/driver.h"

#include <cstdio>
#include <filesystem>
#include <set>

#include "common/fileset.h"

namespace nxcommon {

namespace {

int
listRules(const ToolSpec &spec)
{
    for (const RuleInfo &r : *spec.rules)
        std::printf("%-24s %s\n", std::string(r.id).c_str(),
                    std::string(r.summary).c_str());
    return 0;
}

/** Strip a leading "./" so `git diff` output and tree labels agree. */
std::string
normalizeArg(std::string_view arg)
{
    while (arg.rfind("./", 0) == 0)
        arg.remove_prefix(2);
    return std::string(arg);
}

} // namespace

int
runTool(int argc, char **argv, const ToolSpec &spec)
{
    enum class Format
    {
        Text,
        Json,
        Sarif
    };
    Format format = Format::Text;
    std::string rootFlag = ".";
    std::function<int(const std::string &)> mode;
    std::vector<std::string> args;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--list-rules")
            return listRules(spec);
        if (arg == "--help" || arg == "-h") {
            std::string flags =
                "[--list-rules] [--format=text|json|sarif]";
            for (const auto &m : spec.modes)
                flags += " [" + m.first + "]";
            std::printf("usage: %s %s %s\n", spec.name.c_str(),
                        flags.c_str(), spec.usageArgs.c_str());
            return 0;
        }
        if (arg == "--format=json") {
            format = Format::Json;
            continue;
        }
        if (arg == "--format=sarif") {
            format = Format::Sarif;
            continue;
        }
        if (arg == "--format=text") {
            format = Format::Text;
            continue;
        }
        if (arg.rfind("--root=", 0) == 0) {
            rootFlag = arg.substr(7);
            continue;
        }
        bool isMode = false;
        for (const auto &m : spec.modes) {
            if (arg == m.first) {
                mode = m.second;
                isMode = true;
                break;
            }
        }
        if (isMode)
            continue;
        if (!arg.empty() && arg[0] == '-') {
            std::fprintf(stderr, "%s: unknown option %s\n",
                         spec.name.c_str(), arg.c_str());
            return 2;
        }
        args.push_back(arg);
    }

    if (mode) {
        std::string root = args.empty() ? rootFlag : args.front();
        return mode(root);
    }
    if (args.empty())
        args.push_back(rootFlag);

    std::vector<Finding> findings;
    std::vector<std::string> fileArgs;
    for (const std::string &arg : args) {
        std::error_code ec;
        if (std::filesystem::is_directory(arg, ec)) {
            for (Finding &f : spec.analyzeTree(arg))
                findings.push_back(std::move(f));
        } else {
            fileArgs.push_back(arg);
        }
    }

    if (!fileArgs.empty() && spec.analyzeFile) {
        // Per-file tool: analyze each listed file in isolation.
        for (const std::string &path : fileArgs) {
            std::string content;
            if (!loadFile(path, content)) {
                findings.push_back(
                    {path, 0, "io-error", "cannot read file"});
                continue;
            }
            for (Finding &f : spec.analyzeFile(path, content))
                findings.push_back(std::move(f));
        }
    } else if (!fileArgs.empty()) {
        // Whole-tree tool given explicit files: its checks need the
        // global graph, so analyze the tree once and keep only the
        // findings landing in the listed files.
        std::set<std::string> wanted;
        for (const std::string &path : fileArgs) {
            std::string norm = normalizeArg(path);
            wanted.insert(norm);
            std::string rel = relFromTree(norm);
            if (!rel.empty())
                wanted.insert(rel);
        }
        for (Finding &f : spec.analyzeTree(rootFlag)) {
            if (wanted.count(normalizeArg(f.file)) != 0)
                findings.push_back(std::move(f));
        }
    }

    bool ioError = false;
    for (const Finding &f : findings)
        ioError = ioError || f.rule == "io-error";

    if (format == Format::Json) {
        std::fputs(formatJson(spec.name, findings).c_str(), stdout);
    } else if (format == Format::Sarif) {
        std::fputs(
            formatSarif(spec.name, *spec.rules, findings).c_str(),
            stdout);
    } else {
        for (const Finding &f : findings)
            std::printf("%s\n", formatText(f).c_str());
        if (!findings.empty())
            std::fprintf(stderr, "%s: %zu finding%s\n", spec.name.c_str(),
                         findings.size(),
                         findings.size() == 1 ? "" : "s");
    }
    if (ioError)
        return 2;
    return findings.empty() ? 0 : 1;
}

} // namespace nxcommon
