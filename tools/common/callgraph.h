/**
 * @file
 * Project-wide call graph over the shared lexer — the interprocedural
 * engine under the analyzer family. nxtaint's cross-function taint
 * summaries and nxown's derived acquire/release summaries are both
 * built on this one graph, the same way every analyzer shares one
 * lexer and one allow() grammar.
 *
 * What it extracts, entirely at token level (no compiler frontend,
 * same philosophy as the analyzers that consume it):
 *
 *  - Function definitions: free functions, in-class methods (with the
 *    enclosing-class stack tracked through nested classes), and
 *    out-of-line `X::f(...)` definitions. Each definition records its
 *    parameter-list and body token ranges, parameter names, arity
 *    bounds (default arguments lower the minimum), and the return
 *    type identifier nearest the name.
 *  - Call sites inside every body: free calls `f(a, b)`, qualified
 *    calls `ns::f(...)`, and member calls `x.m(...)` / `p->m(...)`
 *    with the receiver's simple path.
 *  - Resolution by name + arity: a call resolves to a definition only
 *    when exactly one candidate matches (overloads are told apart by
 *    argument count). Member calls resolve through the receiver's
 *    declared type when the body or parameter list declares it
 *    (`Codec &c` / `Codec *c` / `Codec c`); `this`-calls resolve into
 *    the enclosing class. Anything else — std:: calls, macros,
 *    fields whose type is not visible — stays an unknown callee
 *    (target < 0), which consumers must treat conservatively: an
 *    unresolved external is never a finding by itself.
 *  - SCCs (Tarjan) emitted in bottom-up order: every callee's SCC
 *    comes before its callers', so per-function summaries computed in
 *    scc() order see their dependencies finished, and mutual
 *    recursion is handled by iterating each SCC to a fixpoint
 *    (forEachBottomUp).
 */

#ifndef NXSIM_COMMON_CALLGRAPH_H
#define NXSIM_COMMON_CALLGRAPH_H

#include <string>
#include <vector>

#include "common/fileset.h"
#include "common/lexer.h"

namespace nxcommon {

/** One function definition found in the token stream. */
struct FunctionDef
{
    std::string name;        ///< unqualified; "~X" for destructors
    std::string cls;         ///< enclosing class, "" for free functions
    std::string returnType;  ///< nearest type identifier, "" if unknown
    size_t fileIdx = 0;      ///< index into the analyzed file list
    int line = 0;            ///< line of the function name
    size_t nameIdx = 0;      ///< token index of the name ("" if none)
    size_t paramOpen = 0;    ///< `(` of the parameter list
    size_t paramClose = 0;   ///< matching `)`
    size_t bodyBegin = 0;    ///< `{` of the body
    size_t bodyEnd = 0;      ///< matching `}`
    std::vector<std::string> params;   ///< parameter names, in order
    size_t minArity = 0;     ///< params without default arguments
};

/** One call site inside a function body. */
struct CallSite
{
    std::string name;        ///< callee as spelled (unqualified)
    std::string recv;        ///< dotted receiver path, "" for free calls
    std::string qual;        ///< `Q::f(...)` qualifier, "" otherwise
    int target = -1;         ///< resolved function id; -1 = unknown callee
    size_t nameIdx = 0;      ///< token index of the callee name
    int line = 0;
    /** Argument token ranges (into the owning file's merged tokens). */
    std::vector<std::pair<size_t, size_t>> args;
};

/** The graph. Build once per analysis run, read from everywhere. */
class CallGraph
{
  public:
    /** Lex + operator-merge @p files and build the graph. */
    static CallGraph build(const std::vector<SourceFile> &files);

    /** Build from pre-merged token streams (parallel to @p paths) —
     * the analyzers already lex for allow() collection, so this avoids
     * a third pass over every file. */
    static CallGraph build(std::vector<std::string> paths,
                           std::vector<std::vector<nxlex::Token>> merged);

    [[nodiscard]] const std::vector<FunctionDef> &functions() const
    {
        return fns_;
    }

    /** Call sites of function @p id, in token order. */
    [[nodiscard]] const std::vector<CallSite> &callsOf(int id) const
    {
        return calls_[static_cast<size_t>(id)];
    }

    /** Merged tokens of file @p fileIdx (what every index refers to). */
    [[nodiscard]] const std::vector<nxlex::Token> &
    tokens(size_t fileIdx) const
    {
        return toks_[fileIdx];
    }

    [[nodiscard]] const std::vector<std::string> &paths() const
    {
        return paths_;
    }

    /** SCCs in bottom-up (callee-first) order. */
    [[nodiscard]] const std::vector<std::vector<int>> &sccs() const
    {
        return sccs_;
    }

    /** Id of the function whose body contains token @p tokIdx of file
     * @p fileIdx, or -1. */
    [[nodiscard]] int functionAt(size_t fileIdx, size_t tokIdx) const;

    /** The call site whose callee name sits at @p tokIdx, or nullptr. */
    [[nodiscard]] const CallSite *callAt(size_t fileIdx,
                                         size_t tokIdx) const;

    /**
     * Run @p recompute over every function in bottom-up SCC order;
     * within an SCC, iterate until no member reports a change (the
     * summary fixpoint for mutual recursion). @p recompute returns
     * true when the function's summary changed. Iteration per SCC is
     * capped — summaries must be monotone for the cap to be exact.
     */
    template <typename Fn>
    void
    forEachBottomUp(Fn recompute) const
    {
        for (const std::vector<int> &scc : sccs_) {
            bool changed = true;
            for (int round = 0; changed && round < 8; ++round) {
                changed = false;
                for (int id : scc)
                    changed = recompute(id) || changed;
            }
        }
    }

  private:
    std::vector<std::string> paths_;
    std::vector<std::vector<nxlex::Token>> toks_;
    std::vector<FunctionDef> fns_;
    std::vector<std::vector<CallSite>> calls_;
    std::vector<std::vector<int>> sccs_;
    /** Per file: (bodyBegin, id) sorted — bodies never nest, so
     * functionAt is a binary search. */
    std::vector<std::vector<std::pair<size_t, int>>> byFile_;
};

} // namespace nxcommon

#endif // NXSIM_COMMON_CALLGRAPH_H
