/**
 * @file
 * Implementation of the shared allow() grammar. Token-based: a
 * suppression must BE a `//` line comment starting with the tool tag —
 * prose that merely mentions the syntax, or examples inside block doc
 * comments, never parse as suppressions (or misfire as bare-allow).
 */

#include "common/allow.h"

namespace nxcommon {

using nxlex::Tok;
using nxlex::Token;
using nxlex::trim;

std::vector<Allow>
collectAllows(const std::vector<Token> &toks, std::string_view tag,
              const std::vector<RuleInfo> &rules,
              std::vector<Finding> &findings, std::string_view file)
{
    std::string prefix = std::string(tag) + ":";
    std::vector<Allow> allows;
    bool sawCode = false;
    for (size_t ti = 0; ti < toks.size(); ++ti) {
        const Token &t = toks[ti];
        if (t.kind != Tok::Comment) {
            // Preprocessor lines (guards, includes) don't end the
            // file-level comment region; real code does.
            if (t.kind != Tok::Pp)
                sawCode = true;
            continue;
        }
        std::string_view body{t.text};
        if (body.rfind("//", 0) != 0)
            continue;
        body.remove_prefix(2);
        body = trim(body);
        if (body.rfind(prefix, 0) != 0)
            continue;
        body.remove_prefix(prefix.size());
        size_t pos = 0;
        while ((pos = body.find("allow(", pos)) != std::string::npos) {
            std::string_view rest = body.substr(pos);
            pos += 6;
            rest.remove_prefix(6);
            size_t close = rest.find(')');
            if (close == std::string_view::npos)
                continue;
            std::string rule{trim(rest.substr(0, close))};
            std::string_view tail = trim(rest.substr(close + 1));
            if (!knownRule(rules, rule) || rule == "bare-allow") {
                findings.push_back({std::string(file), t.line,
                                    "bare-allow",
                                    "allow() names unknown rule '" + rule +
                                        "'"});
                continue;
            }
            if (tail.empty() || tail.front() != ':' ||
                trim(tail.substr(1)).empty()) {
                findings.push_back(
                    {std::string(file), t.line, "bare-allow",
                     "allow(" + rule +
                         ") needs a justification: allow(" + rule +
                         "): <why>"});
                continue;
            }
            Allow a;
            a.rule = rule;
            a.commentLine = t.line;
            if (!sawCode) {
                a.fileScope = true;
                allows.push_back(std::move(a));
                continue;
            }
            // A justification may continue across directly following
            // `//` lines; the whole contiguous comment block (plus the
            // next code line, when the comment starts its line) is
            // covered.
            int lastLine = t.endLine;
            for (size_t j = ti + 1; j < toks.size(); ++j) {
                const Token &c = toks[j];
                if (c.kind != Tok::Comment || !c.firstOnLine ||
                    c.line != lastLine + 1)
                    break;
                lastLine = c.endLine;
            }
            for (int l = t.line; l <= lastLine; ++l)
                a.lines.insert(l);
            if (t.firstOnLine)
                a.lines.insert(lastLine + 1);
            allows.push_back(std::move(a));
        }
    }
    return allows;
}

bool
allowMatches(std::vector<Allow> &allows, std::string_view rule, int line)
{
    bool hit = false;
    for (Allow &a : allows) {
        if (a.rule != rule)
            continue;
        if (a.fileScope || a.lines.count(line) != 0) {
            a.used = true;
            hit = true;
        }
    }
    return hit;
}

void
applyAllows(std::vector<Finding> &&raw, std::vector<Allow> &allows,
            std::string_view file, std::vector<Finding> &out)
{
    for (Finding &f : raw) {
        if (f.rule != "bare-allow" && allowMatches(allows, f.rule, f.line))
            continue;
        out.push_back(std::move(f));
    }
    // An allow that suppressed nothing is itself a finding — unless an
    // allow(stale-allow) on the same lines excuses it (e.g. a
    // suppression kept for a platform-conditional construct).
    for (size_t ai = 0; ai < allows.size(); ++ai) {
        const Allow &a = allows[ai];
        if (a.used || a.rule == "stale-allow")
            continue;
        if (allowMatches(allows, "stale-allow", a.commentLine))
            continue;
        out.push_back({std::string(file), a.commentLine, "stale-allow",
                       "allow(" + a.rule +
                           ") suppresses nothing; delete it or fix the "
                           "rule id"});
    }
}

} // namespace nxcommon
