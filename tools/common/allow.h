/**
 * @file
 * The shared `allow()` suppression grammar. Every analyzer accepts
 *
 *     // <tool>: allow(rule-id): why this instance is fine
 *
 * on the finding's line, on a comment-only line directly above (the
 * justification may continue across further `//` lines; the whole
 * block plus the next code line is covered), or at file scope in the
 * leading comment before any code. The justification after the colon
 * is mandatory: a bare allow() — missing justification or unknown rule
 * — is itself a finding (rule `bare-allow`), and an allow that no
 * longer suppresses anything is one too (rule `stale-allow`), unless
 * an allow(stale-allow) on the same lines excuses it.
 *
 * This file is the single implementation all four tools share; only
 * the tool tag ("nxlint", "nxdeps", "nxtaint", "nxstate") and the rule
 * table differ per caller.
 */

#ifndef NXSIM_COMMON_ALLOW_H
#define NXSIM_COMMON_ALLOW_H

#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "common/diag.h"
#include "common/lexer.h"

namespace nxcommon {

/**
 * One parsed allow directive. `used` is set when it suppresses a raw
 * finding; an allow that stays unused is reported as stale-allow —
 * the suppression budget stays honest because a suppression that
 * outlives its finding has to be deleted.
 */
struct Allow
{
    std::string rule;
    bool fileScope = false;
    std::set<int> lines;
    int commentLine = 0;
    bool used = false;
};

/**
 * Parse every `<tag>: allow(rule): why` in @p toks' comment tokens.
 * Malformed directives (unknown rule, missing justification) append
 * bare-allow findings to @p findings. @p tag is the tool name without
 * the colon ("nxlint").
 */
std::vector<Allow> collectAllows(const std::vector<nxlex::Token> &toks,
                                 std::string_view tag,
                                 const std::vector<RuleInfo> &rules,
                                 std::vector<Finding> &findings,
                                 std::string_view file);

/** True (and marks the allow used) when some allow covers rule@line. */
bool allowMatches(std::vector<Allow> &allows, std::string_view rule,
                  int line);

/**
 * Standard post-pass: drop findings covered by an allow (bare-allow is
 * never suppressible), then report unused allows as stale-allow. The
 * surviving findings are appended to @p out unsorted; callers sort.
 */
void applyAllows(std::vector<Finding> &&raw, std::vector<Allow> &allows,
                 std::string_view file, std::vector<Finding> &out);

} // namespace nxcommon

#endif // NXSIM_COMMON_ALLOW_H
