/**
 * @file
 * Token-stream helpers shared by the statement-level analyzers
 * (nxtaint, nxstate). The lexer (common/lexer.h) emits one Punct token
 * per character; analyses that care about `<<` vs `<` or `->` vs `-`
 * run their token stream through mergeOperators() first, which also
 * drops comments and preprocessor directives (suppressions are
 * harvested from the raw stream before that).
 */

#ifndef NXSIM_COMMON_TOKENS_H
#define NXSIM_COMMON_TOKENS_H

#include <algorithm>
#include <string>
#include <string_view>
#include <vector>

#include "common/lexer.h"

namespace nxcommon {

inline bool
isPunct(const std::vector<nxlex::Token> &t, size_t i, std::string_view s)
{
    return i < t.size() && t[i].kind == nxlex::Tok::Punct && t[i].text == s;
}

inline bool
isIdent(const std::vector<nxlex::Token> &t, size_t i)
{
    return i < t.size() && t[i].kind == nxlex::Tok::Ident;
}

inline bool
isIdent(const std::vector<nxlex::Token> &t, size_t i, std::string_view name)
{
    return i < t.size() && t[i].kind == nxlex::Tok::Ident &&
           t[i].text == name;
}

/**
 * Strip comments/preprocessor directives and merge the standard
 * multi-character operators (greedy, longest first). Tokens that merge
 * must share a source line, so `a < b\n> c` never becomes a shift.
 */
inline std::vector<nxlex::Token>
mergeOperators(const std::vector<nxlex::Token> &raw)
{
    using nxlex::Tok;
    using nxlex::Token;
    static const std::vector<std::string> kThree = {"<<=", ">>=", "->*",
                                                    "..."};
    static const std::vector<std::string> kTwo = {
        "<<", ">>", "<=", ">=", "==", "!=", "&&", "||", "->", "::",
        "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "++", "--"};

    std::vector<Token> toks;
    for (const Token &t : raw)
        if (t.kind != Tok::Comment && t.kind != Tok::Pp)
            toks.push_back(t);

    std::vector<Token> out;
    size_t i = 0;
    auto punct = [&](size_t k) -> char {
        return k < toks.size() && toks[k].kind == Tok::Punct &&
                       toks[k].text.size() == 1
                   ? toks[k].text[0]
                   : '\0';
    };
    while (i < toks.size()) {
        char a = punct(i);
        if (a != '\0') {
            char b = punct(i + 1);
            char c = punct(i + 2);
            bool merged = false;
            if (b != '\0' && c != '\0' && toks[i].line == toks[i + 2].line) {
                std::string three{a};
                three += b;
                three += c;
                if (std::find(kThree.begin(), kThree.end(), three) !=
                    kThree.end()) {
                    Token t = toks[i];
                    t.text = three;
                    out.push_back(std::move(t));
                    i += 3;
                    merged = true;
                }
            }
            if (!merged && b != '\0' && toks[i].line == toks[i + 1].line) {
                std::string two{a};
                two += b;
                if (std::find(kTwo.begin(), kTwo.end(), two) != kTwo.end()) {
                    Token t = toks[i];
                    t.text = two;
                    out.push_back(std::move(t));
                    i += 2;
                    merged = true;
                }
            }
            if (merged)
                continue;
        }
        out.push_back(toks[i]);
        ++i;
    }
    return out;
}

/** Index of the matching close bracket for the open at @p i (depth
 * aware), or toks.size() when unbalanced. */
inline size_t
matchForward(const std::vector<nxlex::Token> &t, size_t i, char open,
             char close)
{
    int depth = 0;
    std::string o(1, open);
    std::string c(1, close);
    for (; i < t.size(); ++i) {
        if (isPunct(t, i, o))
            ++depth;
        else if (isPunct(t, i, c) && --depth == 0)
            return i;
    }
    return t.size();
}

/** Index of the matching open bracket for the close at @p i, or
 * toks.size() when unbalanced. */
inline size_t
matchBackward(const std::vector<nxlex::Token> &t, size_t i, char open,
              char close)
{
    int depth = 0;
    std::string o(1, open);
    std::string c(1, close);
    while (true) {
        if (isPunct(t, i, c))
            ++depth;
        else if (isPunct(t, i, o) && --depth == 0)
            return i;
        if (i == 0)
            break;
        --i;
    }
    return t.size();
}

/** Split [b, e) into top-level comma-separated argument ranges. */
inline void
splitArgs(const std::vector<nxlex::Token> &t, size_t b, size_t e,
          std::vector<std::pair<size_t, size_t>> &args)
{
    if (b >= e)
        return;
    int depth = 0;
    size_t start = b;
    for (size_t i = b; i < e; ++i) {
        if (isPunct(t, i, "(") || isPunct(t, i, "[") || isPunct(t, i, "{"))
            ++depth;
        else if (isPunct(t, i, ")") || isPunct(t, i, "]") ||
                 isPunct(t, i, "}"))
            --depth;
        else if (depth == 0 && isPunct(t, i, ","))
        {
            args.emplace_back(start, i);
            start = i + 1;
        }
    }
    args.emplace_back(start, e);
}

} // namespace nxcommon

#endif // NXSIM_COMMON_TOKENS_H
