/**
 * @file
 * Shared diagnostic types for the analyzer family (nxlint, nxdeps,
 * nxtaint, nxstate). Every tool reports the same Finding shape, prints
 * it the same way (`file:line: rule-id: message`), and serializes it
 * to the same JSON schema, so CI consumes one format no matter which
 * pass produced the finding.
 *
 * JSON schema (one object per run, stable across tools):
 *
 *   {
 *     "tool": "nxlint",
 *     "schema": 1,
 *     "count": 2,
 *     "findings": [
 *       {"file": "src/nx/crb.h", "line": 40,
 *        "rule": "narrow-cast", "message": "..."},
 *       ...
 *     ]
 *   }
 */

#ifndef NXSIM_COMMON_DIAG_H
#define NXSIM_COMMON_DIAG_H

#include <string>
#include <string_view>
#include <vector>

namespace nxcommon {

/** One diagnostic. */
struct Finding
{
    std::string file;       ///< path as given to the analyzer
    int line = 0;           ///< 1-based; 0 for whole-file findings
    std::string rule;       ///< rule id, e.g. "narrow-cast"
    std::string message;
};

/** Rule metadata for --list-rules and the docs. */
struct RuleInfo
{
    std::string_view id;
    std::string_view summary;
};

/** Is @p id one of @p rules? */
[[nodiscard]] bool knownRule(const std::vector<RuleInfo> &rules,
                             std::string_view id);

/** Render a finding as `file:line: rule-id: message`. */
[[nodiscard]] std::string formatText(const Finding &f);

/** Serialize a whole run in the shared JSON schema above. */
[[nodiscard]] std::string formatJson(std::string_view tool,
                                     const std::vector<Finding> &findings);

/**
 * Serialize a whole run as SARIF 2.1.0 (the GitHub code-scanning
 * ingestion format): one run, the tool's rule table under
 * tool.driver.rules, one result per finding with the rule id, message
 * and physical location. Whole-file findings (line 0) clamp to line 1
 * — SARIF requires startLine >= 1.
 */
[[nodiscard]] std::string
formatSarif(std::string_view tool, const std::vector<RuleInfo> &rules,
            const std::vector<Finding> &findings);

/** Deterministic report order: (file, line, rule, message). */
void sortFindings(std::vector<Finding> &findings);

} // namespace nxcommon

#endif // NXSIM_COMMON_DIAG_H
