/**
 * @file
 * Tree walking shared by every analyzer CLI and *Tree() entry point.
 */

#include "common/fileset.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>

namespace nxcommon {

namespace fs = std::filesystem;

bool
loadFile(const std::string &path, std::string &content)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return false;
    std::ostringstream ss;
    ss << in.rdbuf();
    content = ss.str();
    return true;
}

std::string
relFromTree(std::string_view path)
{
    for (std::string_view root : {"src/", "tools/", "fuzz/", "bench/",
                                  "tests/", "examples/"}) {
        if (path.substr(0, root.size()) == root)
            return std::string(path);
        std::string probe = "/" + std::string(root);
        size_t pos = path.rfind(probe);
        if (pos != std::string_view::npos)
            return std::string(path.substr(pos + 1));
    }
    return {};
}

TreeLoad
loadTree(const std::string &root, const std::vector<std::string> &subdirs)
{
    TreeLoad out;

    auto collect = [&](const fs::path &dir) {
        std::error_code ec;
        for (fs::recursive_directory_iterator
                 it(dir, fs::directory_options::skip_permission_denied,
                    ec),
             end;
             it != end && !ec; it.increment(ec)) {
            if (!it->is_regular_file(ec))
                continue;
            std::string ext = it->path().extension().string();
            if (ext != ".h" && ext != ".hpp" && ext != ".cc" &&
                ext != ".cpp")
                continue;
            std::error_code rec;
            fs::path rel = fs::relative(it->path(), root, rec);
            std::string label = rec ? it->path().generic_string()
                                    : rel.generic_string();
            std::string content;
            if (!loadFile(it->path().string(), content)) {
                out.ioErrors.push_back(
                    {label, 0, "io-error", "cannot read file"});
                continue;
            }
            out.files.push_back({label, std::move(content)});
        }
    };

    bool sawTree = false;
    for (const std::string &sub : subdirs) {
        fs::path dir = fs::path(root) / sub;
        std::error_code ec;
        if (fs::is_directory(dir, ec)) {
            sawTree = true;
            collect(dir);
        }
    }
    if (!sawTree)
        collect(root);

    std::sort(out.files.begin(), out.files.end(),
              [](const SourceFile &a, const SourceFile &b) {
                  return a.path < b.path;
              });
    std::sort(out.ioErrors.begin(), out.ioErrors.end(),
              [](const Finding &a, const Finding &b) {
                  return a.file < b.file;
              });
    return out;
}

} // namespace nxcommon
