/**
 * @file
 * The one CLI driver behind every analyzer binary. Each tool's main.cc
 * is a thin ToolSpec: the rule table, the analysis callbacks, and any
 * tool-specific modes (--dot, --layers). The driver owns everything
 * the four binaries used to duplicate — argument parsing, file
 * loading, `--format=json|text`, `--list-rules`, and the exit-code
 * convention:
 *
 *   0  clean
 *   1  findings
 *   2  usage error, or any io-error finding
 *
 * Invocation shapes (all tools):
 *
 *   <tool> [<repo-root>]          analyze the whole tree (default ".")
 *   <tool> <file>...              analyze just these files — the
 *                                 incremental mode tools/analyze_changed.sh
 *                                 drives with `git diff --name-only` output
 *
 * Per-file tools (nxlint, nxtaint) analyze listed files in isolation.
 * Whole-tree tools (nxdeps, nxstate — their checks need the global
 * graph) analyze the tree at --root (default ".") and report only the
 * findings landing in the listed files.
 */

#ifndef NXSIM_COMMON_DRIVER_H
#define NXSIM_COMMON_DRIVER_H

#include <functional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/diag.h"

namespace nxcommon {

struct ToolSpec
{
    std::string name;           ///< binary name for messages ("nxlint")
    std::string usageArgs;      ///< usage tail, e.g. "[<repo-root> | <file>...]"
    const std::vector<RuleInfo> *rules = nullptr;

    /** Analyze one in-memory file (per-file tools); leave empty for
     * whole-tree tools. */
    std::function<std::vector<Finding>(std::string_view path,
                                       std::string_view content)>
        analyzeFile;

    /** Analyze the tree rooted at @p root. Required. */
    std::function<std::vector<Finding>(const std::string &root)>
        analyzeTree;

    /** Tool-specific modes: flag -> handler(root) returning the exit
     * code (e.g. nxdeps --dot). The flag consumes no operand; the root
     * is the usual positional argument. */
    std::vector<std::pair<std::string,
                          std::function<int(const std::string &root)>>>
        modes;
};

/** Run the standard analyzer CLI for @p spec. Returns the exit code. */
[[nodiscard]] int runTool(int argc, char **argv, const ToolSpec &spec);

} // namespace nxcommon

#endif // NXSIM_COMMON_DRIVER_H
