/**
 * @file
 * The shared C++ tokenizer behind the project's static-analysis
 * tools: nxlint, nxdeps, nxtaint and nxstate all lex with this one
 * class, so every pass agrees byte-for-byte on what is a comment, a
 * string literal, or code.
 *
 * It is deliberately a lexer and nothing more: comments, string/char
 * literals (raw strings included), numbers, identifiers and whole
 * preprocessor directives (continuations joined). That is enough that
 * a banned identifier inside a string or comment never fires, and a
 * suppression comment is visible next to the code it excuses —
 * without taking a dependency on a real compiler frontend.
 *
 * A trailing `//` comment on a preprocessor line is emitted as its own
 * Comment token (the directive text stops before it), so a suppression
 * next to an `#include` reads exactly like one next to a statement.
 */

#ifndef NXSIM_COMMON_LEXER_H
#define NXSIM_COMMON_LEXER_H

#include <cctype>
#include <string>
#include <string_view>
#include <vector>

namespace nxlex {

enum class Tok
{
    Ident,
    Number,
    Punct,
    Str,
    Chr,
    Comment,
    Pp,         // one whole preprocessor directive (continuations joined)
};

struct Token
{
    Tok kind;
    std::string text;
    int line = 0;        // 1-based start line
    int endLine = 0;     // last physical line the token touches
    bool firstOnLine = false;
};

inline bool
identStart(char c)
{
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

inline bool
identChar(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

class Lexer
{
  public:
    explicit Lexer(std::string_view s) : s_(s) {}

    std::vector<Token>
    run()
    {
        std::vector<Token> out;
        while (i_ < s_.size()) {
            char c = s_[i_];
            if (c == '\n') {
                ++line_;
                atLineStart_ = true;
                ++i_;
                continue;
            }
            if (std::isspace(static_cast<unsigned char>(c))) {
                ++i_;
                continue;
            }
            Token t;
            t.line = line_;
            t.firstOnLine = atLineStart_;
            atLineStart_ = false;
            if (c == '#') {
                t.kind = Tok::Pp;
                t.text = readPpLine();
            } else if (c == '/' && peek(1) == '/') {
                t.kind = Tok::Comment;
                t.text = readLineComment();
            } else if (c == '/' && peek(1) == '*') {
                t.kind = Tok::Comment;
                t.text = readBlockComment();
            } else if (c == '"') {
                t.kind = Tok::Str;
                t.text = readString();
            } else if (c == '\'') {
                t.kind = Tok::Chr;
                t.text = readChar();
            } else if (std::isdigit(static_cast<unsigned char>(c)) ||
                       (c == '.' &&
                        std::isdigit(static_cast<unsigned char>(peek(1))))) {
                t.kind = Tok::Number;
                t.text = readNumber();
            } else if (identStart(c)) {
                t.kind = Tok::Ident;
                t.text = readIdent();
                // String/char literal prefixes: u8R"(... , L"...", etc.
                if ((i_ < s_.size()) &&
                    (s_[i_] == '"' || s_[i_] == '\'') &&
                    isLiteralPrefix(t.text)) {
                    if (s_[i_] == '\'') {
                        t.kind = Tok::Chr;
                        t.text += readChar();
                    } else if (t.text.back() == 'R') {
                        t.kind = Tok::Str;
                        t.text += readRawString();
                    } else {
                        t.kind = Tok::Str;
                        t.text += readString();
                    }
                }
            } else {
                t.kind = Tok::Punct;
                t.text = std::string(1, c);
                ++i_;
            }
            t.endLine = line_;
            out.push_back(std::move(t));
        }
        return out;
    }

  private:
    char
    peek(size_t ahead) const
    {
        return i_ + ahead < s_.size() ? s_[i_ + ahead] : '\0';
    }

    static bool
    isLiteralPrefix(const std::string &id)
    {
        return id == "u8" || id == "u" || id == "U" || id == "L" ||
               id == "R" || id == "u8R" || id == "uR" || id == "UR" ||
               id == "LR";
    }

    std::string
    readPpLine()
    {
        std::string text;
        bool inStr = false;
        bool inChr = false;
        while (i_ < s_.size()) {
            char c = s_[i_];
            if (c == '\\' && peek(1) == '\n') {
                text += ' ';
                i_ += 2;
                ++line_;
                continue;
            }
            if (c == '\n')
                break;
            if (inStr || inChr) {
                if (c == '\\' && peek(1) != '\0' && peek(1) != '\n') {
                    text += c;
                    text += s_[i_ + 1];
                    i_ += 2;
                    continue;
                }
                if (inStr && c == '"')
                    inStr = false;
                else if (inChr && c == '\'')
                    inChr = false;
            } else if (c == '"') {
                inStr = true;
            } else if (c == '\'') {
                inChr = true;
            } else if (c == '/' && peek(1) == '/') {
                // Trailing line comment: stop the directive here so the
                // comment lexes as its own token (allow() directives on
                // #include lines depend on this).
                break;
            } else if (c == '/' && peek(1) == '*') {
                // A block comment is one space to the preprocessor, and
                // the directive continues after it — even across lines.
                i_ += 2;
                while (i_ < s_.size() &&
                       !(s_[i_] == '*' && peek(1) == '/')) {
                    if (s_[i_] == '\n')
                        ++line_;
                    ++i_;
                }
                if (i_ < s_.size())
                    i_ += 2;
                text += ' ';
                continue;
            }
            text += c;
            ++i_;
        }
        return text;
    }

    std::string
    readLineComment()
    {
        size_t start = i_;
        while (i_ < s_.size() && s_[i_] != '\n')
            ++i_;
        return std::string(s_.substr(start, i_ - start));
    }

    std::string
    readBlockComment()
    {
        size_t start = i_;
        i_ += 2;
        while (i_ < s_.size()) {
            if (s_[i_] == '\n')
                ++line_;
            if (s_[i_] == '*' && peek(1) == '/') {
                i_ += 2;
                break;
            }
            ++i_;
        }
        return std::string(s_.substr(start, i_ - start));
    }

    std::string
    readString()
    {
        size_t start = i_;
        ++i_;
        while (i_ < s_.size() && s_[i_] != '"') {
            if (s_[i_] == '\\' && i_ + 1 < s_.size())
                ++i_;
            if (s_[i_] == '\n')
                ++line_;    // ill-formed C++, but keep line counts sane
            ++i_;
        }
        if (i_ < s_.size())
            ++i_;
        return std::string(s_.substr(start, i_ - start));
    }

    std::string
    readRawString()
    {
        size_t start = i_;
        ++i_;    // opening quote
        std::string delim;
        while (i_ < s_.size() && s_[i_] != '(')
            delim += s_[i_++];
        std::string close = ")" + delim + "\"";
        size_t end = s_.find(close, i_);
        if (end == std::string_view::npos) {
            i_ = s_.size();
        } else {
            for (size_t k = i_; k < end; ++k)
                if (s_[k] == '\n')
                    ++line_;
            i_ = end + close.size();
        }
        return std::string(s_.substr(start, i_ - start));
    }

    std::string
    readChar()
    {
        size_t start = i_;
        ++i_;
        while (i_ < s_.size() && s_[i_] != '\'') {
            if (s_[i_] == '\\' && i_ + 1 < s_.size())
                ++i_;
            ++i_;
        }
        if (i_ < s_.size())
            ++i_;
        return std::string(s_.substr(start, i_ - start));
    }

    std::string
    readNumber()
    {
        size_t start = i_;
        while (i_ < s_.size()) {
            char c = s_[i_];
            if (std::isalnum(static_cast<unsigned char>(c)) || c == '.' ||
                c == '\'') {
                ++i_;
                continue;
            }
            if ((c == '+' || c == '-') && i_ > start) {
                char p = s_[i_ - 1];
                if (p == 'e' || p == 'E' || p == 'p' || p == 'P') {
                    ++i_;
                    continue;
                }
            }
            break;
        }
        return std::string(s_.substr(start, i_ - start));
    }

    std::string
    readIdent()
    {
        size_t start = i_;
        while (i_ < s_.size() && identChar(s_[i_]))
            ++i_;
        return std::string(s_.substr(start, i_ - start));
    }

    std::string_view s_;
    size_t i_ = 0;
    int line_ = 1;
    bool atLineStart_ = true;
};

/** Trim ASCII whitespace from both ends (shared by the rule parsers). */
inline std::string_view
trim(std::string_view v)
{
    while (!v.empty() &&
           std::isspace(static_cast<unsigned char>(v.front())))
        v.remove_prefix(1);
    while (!v.empty() && std::isspace(static_cast<unsigned char>(v.back())))
        v.remove_suffix(1);
    return v;
}

} // namespace nxlex

#endif // NXSIM_COMMON_LEXER_H
