/**
 * @file
 * Shared source-tree loading for the analyzers. Every tool walks the
 * same way: the named subtrees of a repo root (or the root itself when
 * none of them exist — how the fixture tests drive it), only files
 * with .h, .hpp, .cc or .cpp extensions, labels tree-relative so rule
 * scoping and reports are stable no matter where the tool is invoked
 * from.
 */

#ifndef NXSIM_COMMON_FILESET_H
#define NXSIM_COMMON_FILESET_H

#include <string>
#include <string_view>
#include <vector>

#include "common/diag.h"

namespace nxcommon {

/** One input file: tree-relative path plus its full contents. */
struct SourceFile
{
    std::string path;
    std::string content;
};

/** What a tree walk produced. */
struct TreeLoad
{
    std::vector<SourceFile> files;      ///< sorted by path
    std::vector<Finding> ioErrors;      ///< rule "io-error", line 0
};

/**
 * Load every source file under @p root's @p subdirs (or @p root itself
 * when none of the subdirs exist). Unreadable files become io-error
 * findings rather than aborting the walk.
 */
[[nodiscard]] TreeLoad loadTree(const std::string &root,
                                const std::vector<std::string> &subdirs);

/** Read one file; false (and no mutation of @p content) on failure. */
[[nodiscard]] bool loadFile(const std::string &path, std::string &content);

/**
 * Strip a path down to its tree-relative form ("/abs/repo/src/x.h" ->
 * "src/x.h") when it contains a recognized tree prefix; empty
 * otherwise.
 */
[[nodiscard]] std::string relFromTree(std::string_view path);

} // namespace nxcommon

#endif // NXSIM_COMMON_FILESET_H
